// The paper's running example end to end: Figure 2's repair, Figure 1's
// constraint Shapley values, and Example 2.4's cell ranking.
//
//	go run ./examples/laliga
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/repair"
	"repro/internal/table"
)

func main() {
	ll := data.NewLaLiga()
	exp, err := core.NewExplainer(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("== Figure 2a: the dirty standings table ==")
	fmt.Print(ll.Dirty)
	fmt.Println("\n== Figure 1: the denial constraints ==")
	for _, c := range ll.DCs {
		fmt.Println(" ", c)
	}

	clean, diffs, err := exp.Repair(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Figure 2b: the repaired table (blue cells below) ==")
	fmt.Print(clean)
	fmt.Println()
	fmt.Print(table.FormatDiffs(ll.Dirty, diffs))

	// Figure 1's Shapley values: exact, 2^4 black-box runs.
	report, err := exp.ExplainConstraints(ctx, ll.CellOfInterest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Figure 1's Shapley values for the repair of t5[Country] ==")
	fmt.Print(report)
	fmt.Println("\n(paper: C1 = C2 = 1/6, C3 = 2/3, C4 = 0)")

	// Example 2.4's ranking: sampled, 35 cell players.
	cells, err := exp.ExplainCells(ctx, ll.CellOfInterest, core.CellExplainOptions{
		Samples: 3000,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Example 2.4: cell ranking (top 8 of 35) ==")
	for i, e := range cells.Entries {
		if i >= 8 {
			break
		}
		fmt.Printf("%3d. %-14s %+.4f ± %.4f\n", i+1, e.Name, e.Shapley, e.CI95)
	}
	fmt.Println("\n(paper: t5[League] ranks first; t1[Place] has no influence)")
}
