// Demo scenario 2 (§4 of the paper): a cell is repaired to the WRONG value
// because other dirty cells outvote the truth. The cell ranking points at
// the culprits; correcting the top-ranked culprit fixes the repair.
//
//	go run ./examples/celldebug
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/table"
)

func main() {
	// Three of four La Liga rows spell the country wrong; majority voting
	// will therefore "repair" the typo in row 4 to another wrong value.
	dirty := table.MustFromStrings(
		[]string{"Team", "City", "Country", "League", "Year", "Place"},
		[][]string{
			{"Espanyol", "Barcelona", "España", "La Liga", "2019", "1"},
			{"Getafe", "Getafe", "España", "La Liga", "2019", "2"},
			{"Levante", "Valencia", "Spain", "La Liga", "2019", "3"},
			{"Eibar", "Eibar", "Spein", "La Liga", "2019", "4"},
		})
	dcs, err := dc.ParseSet("C3: !(t1.League = t2.League & t1.Country != t2.Country)")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	sess, err := core.NewSession(repair.NewAlgorithm1(), dcs, dirty)
	if err != nil {
		log.Fatal(err)
	}
	cell, err := dirty.ParseRefName("t4[Country]")
	if err != nil {
		log.Fatal(err)
	}

	clean, _, err := sess.Repair(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t4[Country] (\"Spein\") is repaired to %q — the ground truth is \"Spain\".\n", clean.GetRef(cell))
	fmt.Println("why? ask T-REx for the influencing cells:")

	report, err := sess.Explainer().ExplainCells(ctx, cell, core.CellExplainOptions{Samples: 3000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range report.Entries {
		if i >= 6 {
			break
		}
		fmt.Printf("%3d. %-14s %+.4f\n", i+1, e.Name, e.Shapley)
	}
	fmt.Println("\nreading the ranking: t4[League] is the veto player (no League link,")
	fmt.Println("no repair at all); right behind it sit the España cells that supplied")
	fmt.Println("the wrong majority value.")

	// Correct the highest-ranked Country culprit and re-run.
	var culprit string
	for _, e := range report.Entries {
		if strings.Contains(e.Name, "[Country]") && e.Name != "t4[Country]" && e.Shapley > 0 {
			culprit = e.Name
			break
		}
	}
	ref, err := sess.Dirty().ParseRefName(culprit)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.SetCell(ref, table.String("Spain")); err != nil {
		log.Fatal(err)
	}
	fixed, _, err := sess.Repair(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter correcting %s to \"Spain\", t4[Country] repairs to %q — fixed.\n",
		culprit, fixed.GetRef(cell))
}
