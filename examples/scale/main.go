// Scale walkthrough: generate a synthetic standings table, inject errors,
// mine constraints back from the data, repair with the HoloClean-style
// cleaner, and explain one repair — the full pipeline the paper's
// architecture diagram (Figure 4) describes, at a size where sampling is
// the only option.
//
// The walkthrough ends with the session execution engine: the same
// explanation re-estimated serial versus fanned across all cores
// (bit-identical estimates — parallelism is scheduling, never semantics),
// and the engine's shared coalition cache hit rate across a session's
// explanation screens.
//
//	go run ./examples/scale [-rows 60] [-samples 100] [-workers 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dcdiscover"
	"repro/internal/repair"
)

func main() {
	rows := flag.Int("rows", 60, "table size (rows)")
	samples := flag.Int("samples", 100, "sampled permutations for the cell explanation")
	workers := flag.Int("workers", 0, "engine parallelism for the scaling demo; 0 = GOMAXPROCS")
	flag.Parse()

	// 1. Ground truth + injected errors.
	clean := data.GenerateSoccer(data.SoccerConfig{
		Leagues:        3,
		TeamsPerLeague: *rows / 3,
		Seed:           7,
	})
	// Errors go into Country: the mined FD League -> Country covers that
	// column (City errors would be undetectable here because Team -> City
	// has no support when every team appears once).
	dirty, injections, err := data.Inject(clean, data.InjectSpec{
		Rate:    0.03,
		Columns: []string{"Country"},
		Kinds:   []data.ErrorKind{data.ErrorTypo},
		Seed:    8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d rows, injected %d typos\n", dirty.NumRows(), len(injections))

	// 2. Mine the constraints instead of writing them by hand.
	cands := dcdiscover.Discover(dirty, dcdiscover.Options{MinConfidence: 0.85, MaxConstraints: 6})
	fmt.Println("mined constraints:")
	for _, c := range cands {
		fmt.Printf("   %s   [%s]\n", c.Constraint, c)
	}
	dcs := dcdiscover.Constraints(cands)

	// 3. Repair with the HoloClean-style probabilistic cleaner.
	exp, err := core.NewExplainer(repair.NewHoloSim(1), dcs, dirty)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	start := time.Now()
	cleaned, diffs, err := exp.Repair(ctx)
	if err != nil {
		log.Fatal(err)
	}
	restored := 0
	for _, inj := range injections {
		if cleaned.GetRef(inj.Ref).SameContent(inj.Clean) {
			restored++
		}
	}
	fmt.Printf("repaired %d cells in %v; restored %d/%d injected errors\n",
		len(diffs), time.Since(start).Round(time.Millisecond), restored, len(injections))

	// 4. Explain the first repaired injected cell.
	var explained bool
	var explCell = injections[0].Ref
	for _, inj := range injections {
		if !cleaned.GetRef(inj.Ref).SameContent(inj.Clean) {
			continue
		}
		explCell = inj.Ref
		start = time.Now()
		report, err := exp.ExplainCells(ctx, inj.Ref, core.CellExplainOptions{
			Samples:            *samples,
			Seed:               9,
			RestrictToRelevant: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncell explanation for %s (%v, %d players):\n",
			dirty.RefName(inj.Ref), time.Since(start).Round(time.Millisecond), len(report.Entries))
		for i, e := range report.Entries {
			if i >= 8 {
				break
			}
			fmt.Printf("%3d. %-14s %+.4f ± %.4f\n", i+1, e.Name, e.Shapley, e.CI95)
		}
		explained = true
		break
	}
	if !explained {
		fmt.Println("no injected error was repaired; nothing to explain")
		return
	}

	// 5. Multi-core scaling through the session engine: the identical
	// explanation, serial then fanned across the pool. The chunked fan-out
	// guarantees bit-identical estimates for any worker count, so the
	// speedup is pure scheduling.
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("\nmulti-core scaling of explain-cells (m=%d):\n", *samples)
	explainWith := func(cfg int) (*core.Report, time.Duration) {
		sess, err := core.NewSessionWith(repair.NewHoloSim(1), dcs, dirty, core.SessionOptions{Workers: cfg})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rep, err := sess.Explainer().ExplainCells(ctx, explCell, core.CellExplainOptions{
			Samples: *samples, Seed: 9, Workers: cfg, RestrictToRelevant: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep, time.Since(start)
	}
	serialRep, serialTime := explainWith(1)
	fmt.Printf("   workers=1:  %8v\n", serialTime.Round(time.Millisecond))
	if w <= 1 {
		fmt.Println("   (single worker configured; run on a multi-core host or pass -workers N for the comparison)")
	} else {
		parallelRep, parallelTime := explainWith(w)
		// Full-vector comparison: the fan-out's determinism contract is
		// bit-identity of every estimate, not just the top entry.
		identical := len(serialRep.Entries) == len(parallelRep.Entries)
		for i := 0; identical && i < len(serialRep.Entries); i++ {
			identical = serialRep.Entries[i] == parallelRep.Entries[i]
		}
		fmt.Printf("   workers=%-2d: %8v   (%.2fx speedup, all %d estimates bit-identical: %v)\n",
			w, parallelTime.Round(time.Millisecond),
			float64(serialTime)/float64(parallelTime), len(serialRep.Entries), identical)
	}

	// 6. The engine's shared coalition cache across a session's games: the
	// constraint ranking warms it, then the interaction screen and a repeat
	// ranking enumerate the same coalitions against pure hits.
	sess, err := core.NewSessionWith(repair.NewHoloSim(1), dcs, dirty, core.SessionOptions{Workers: w})
	if err != nil {
		log.Fatal(err)
	}
	screens := 0
	if _, err := sess.Explainer().ExplainConstraints(ctx, explCell); err == nil {
		screens++
	}
	hitsWarm, missesWarm := sess.Engine().CacheStats()
	if _, err := sess.Explainer().ExplainConstraintInteractions(ctx, explCell); err == nil {
		screens++
	}
	if _, err := sess.Explainer().ExplainConstraints(ctx, explCell); err == nil {
		screens++
	}
	hits, misses := sess.Engine().CacheStats()
	fmt.Printf("\nshared coalition cache across %d constraint screens: %d hits / %d misses (hit rate %.1f%%; first screen alone: %d/%d)\n",
		screens, hits, misses, 100*sess.Engine().HitRate(), hitsWarm, missesWarm)
}
