// Scale walkthrough: generate a synthetic standings table, inject errors,
// mine constraints back from the data, repair with the HoloClean-style
// cleaner, and explain one repair — the full pipeline the paper's
// architecture diagram (Figure 4) describes, at a size where sampling is
// the only option.
//
//	go run ./examples/scale [-rows 60] [-samples 100]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dcdiscover"
	"repro/internal/repair"
)

func main() {
	rows := flag.Int("rows", 60, "table size (rows)")
	samples := flag.Int("samples", 100, "sampled permutations for the cell explanation")
	flag.Parse()

	// 1. Ground truth + injected errors.
	clean := data.GenerateSoccer(data.SoccerConfig{
		Leagues:        3,
		TeamsPerLeague: *rows / 3,
		Seed:           7,
	})
	// Errors go into Country: the mined FD League -> Country covers that
	// column (City errors would be undetectable here because Team -> City
	// has no support when every team appears once).
	dirty, injections, err := data.Inject(clean, data.InjectSpec{
		Rate:    0.03,
		Columns: []string{"Country"},
		Kinds:   []data.ErrorKind{data.ErrorTypo},
		Seed:    8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d rows, injected %d typos\n", dirty.NumRows(), len(injections))

	// 2. Mine the constraints instead of writing them by hand.
	cands := dcdiscover.Discover(dirty, dcdiscover.Options{MinConfidence: 0.85, MaxConstraints: 6})
	fmt.Println("mined constraints:")
	for _, c := range cands {
		fmt.Printf("   %s   [%s]\n", c.Constraint, c)
	}
	dcs := dcdiscover.Constraints(cands)

	// 3. Repair with the HoloClean-style probabilistic cleaner.
	exp, err := core.NewExplainer(repair.NewHoloSim(1), dcs, dirty)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	start := time.Now()
	cleaned, diffs, err := exp.Repair(ctx)
	if err != nil {
		log.Fatal(err)
	}
	restored := 0
	for _, inj := range injections {
		if cleaned.GetRef(inj.Ref).SameContent(inj.Clean) {
			restored++
		}
	}
	fmt.Printf("repaired %d cells in %v; restored %d/%d injected errors\n",
		len(diffs), time.Since(start).Round(time.Millisecond), restored, len(injections))

	// 4. Explain the first repaired injected cell.
	var explained bool
	for _, inj := range injections {
		if !cleaned.GetRef(inj.Ref).SameContent(inj.Clean) {
			continue
		}
		start = time.Now()
		report, err := exp.ExplainCells(ctx, inj.Ref, core.CellExplainOptions{
			Samples:            *samples,
			Seed:               9,
			RestrictToRelevant: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncell explanation for %s (%v, %d players):\n",
			dirty.RefName(inj.Ref), time.Since(start).Round(time.Millisecond), len(report.Entries))
		for i, e := range report.Entries {
			if i >= 8 {
				break
			}
			fmt.Printf("%3d. %-14s %+.4f ± %.4f\n", i+1, e.Name, e.Shapley, e.CI95)
		}
		explained = true
		break
	}
	if !explained {
		fmt.Println("no injected error was repaired; nothing to explain")
	}
}
