// Quickstart: repair a small dirty table and explain one repaired cell in
// under a minute.
//
//	go run ./examples/quickstart
//
// The walkthrough builds a table in code, declares two denial constraints,
// runs the rule repairer, and prints both explanation rankings for the one
// repaired cell.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/table"
)

func main() {
	// 1. A dirty table: the zip code 10001 should determine the city, but
	// row 3 disagrees.
	dirty := table.MustFromStrings(
		[]string{"Name", "Zip", "City"},
		[][]string{
			{"Ada", "10001", "New York"},
			{"Ben", "10001", "New York"},
			{"Cal", "10001", "Now York"}, // typo
			{"Dee", "94103", "San Francisco"},
		})

	// 2. Constraints: Zip -> City as a denial constraint, plus an
	// (irrelevant here) Name key constraint.
	dcs, err := dc.ParseSet(`
Z1: !(t1.Zip = t2.Zip & t1.City != t2.City)
N1: !(t1.Name = t2.Name & t1.Zip != t2.Zip)
`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A black-box repairer. Any repair.Algorithm works; rules derived
	// from the constraints are the simplest choice.
	alg := repair.NewRuleRepair(dcs)

	// 4. The explainer ties the three inputs together.
	exp, err := core.NewExplainer(alg, dcs, dirty)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	clean, diffs, err := exp.Repair(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean table:")
	fmt.Print(clean)
	fmt.Println("\nrepaired cells:")
	fmt.Print(table.FormatDiffs(dirty, diffs))

	// 5. Explain the repair of t3[City]: which constraints and which cells
	// made it happen?
	cell, err := dirty.ParseRefName("t3[City]")
	if err != nil {
		log.Fatal(err)
	}
	constraints, err := exp.ExplainConstraints(ctx, cell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(constraints)

	cells, err := exp.ExplainCells(ctx, cell, core.CellExplainOptions{Samples: 2000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(cells)

	fmt.Println("\nreading the output: Z1 carries the whole constraint ranking, and the")
	fmt.Println("agreeing (Zip, City) cells of rows 1-2 top the cell ranking — they")
	fmt.Println("are the evidence the repair used.")
}
