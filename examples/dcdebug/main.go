// Demo scenario 1 (§4 of the paper): use the constraint ranking to debug a
// constraint set — remove the most influential DC, watch the repair
// change; remove a zero-influence DC, watch nothing change.
//
//	go run ./examples/dcdebug
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/repair"
)

func main() {
	ll := data.NewLaLiga()
	ctx := context.Background()
	sess, err := core.NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		log.Fatal(err)
	}

	report, err := sess.Explainer().ExplainConstraints(ctx, ll.CellOfInterest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("step 1 — rank the constraints for the repair of t5[Country]:")
	fmt.Print(report)

	show := func(label string) {
		clean, _, err := sess.Repair(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s t5[Country] -> %s\n", label, clean.GetRef(ll.CellOfInterest))
	}

	fmt.Println("\nstep 2 — iterate on the constraint set:")
	show("all of C1..C4:")

	top, _ := report.Top()
	if err := sess.RemoveDC(top.Name); err != nil {
		log.Fatal(err)
	}
	show(fmt.Sprintf("without %s (top ranked):", top.Name))
	fmt.Println("  -> still repaired: the pair {C1, C2} (joint Shapley 1/3) covers it")

	if err := sess.RemoveDC("C1"); err != nil {
		log.Fatal(err)
	}
	show("without C3 and C1:")
	fmt.Println("  -> repair gone: no pathway to Spain remains")

	if err := sess.AddDC("C3: !(t1.League = t2.League & t1.Country != t2.Country)"); err != nil {
		log.Fatal(err)
	}
	show("C3 restored:")

	fmt.Println("\nsession history:")
	for _, line := range sess.History {
		fmt.Println(" ", line)
	}
}
