// Package repro is a from-scratch Go reproduction of "T-REx: Table Repair
// Explanations" (Deutch, Frost, Gilad, Sheffer — SIGMOD 2020 demo,
// arXiv:2007.04450).
//
// The system explains the output of a black-box table-repair algorithm
// with Shapley values: given a repaired cell of interest, it ranks the
// denial constraints and the input table cells by their contribution to
// that repair. See README.md for the tour, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the paper-vs-measured record.
//
// Layout:
//
//	internal/table      typed in-memory tables, CSV, statistics, diffs
//	internal/dc         denial-constraint language and evaluation
//	internal/dcdiscover FastDCs-flavoured constraint mining
//	internal/repair     the black boxes: Algorithm 1, HoloSim, baselines
//	internal/shapley    exact and sampled Shapley computation
//	internal/core       the T-REx engine: games, explainer, sessions
//	internal/data       La Liga example, generators, error injection
//	internal/server     HTTP API + embedded GUI (Figure 3/4)
//	internal/bench      experiment implementations (DESIGN.md §4)
//	cmd/trex            CLI repair + explain
//	cmd/trex-server     web demo
//	cmd/trex-bench      regenerates every experiment
//	examples/           runnable walkthroughs of the public API
package repro
