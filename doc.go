// Package repro is a from-scratch Go reproduction of "T-REx: Table Repair
// Explanations" (Deutch, Frost, Gilad, Sheffer — SIGMOD 2020 demo,
// arXiv:2007.04450).
//
// The system explains the output of a black-box table-repair algorithm
// with Shapley values: given a repaired cell of interest, it ranks the
// denial constraints and the input table cells by their contribution to
// that repair. See README.md for the tour, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the paper-vs-measured record.
//
// # Evaluation fast path
//
// Cell-game evaluation is the hot loop: permutation sampling calls the
// black box once per coalition prefix, millions of times on real tables.
// Three layers keep that loop allocation-free and measured in
// BENCH_<n>.json (regenerate with `trex-bench -perf -out BENCH_<n>.json`):
//
//   - Pooled scratch tables (internal/core): instead of Clone()-ing the
//     dirty table per evaluation, each evaluation borrows a pooled working
//     copy, masks absent cells in place, runs the black box, and restores
//     only the touched cells via an undo list — zero steady-state
//     allocations per coalition evaluation (enforced by
//     TestCellGameEvalAllocs).
//   - Incremental prefix walks (internal/shapley.IncrementalGame): the
//     samplers detect games that support single-player coalition deltas
//     and drive them through the CoalitionWalk protocol — one SetRef per
//     permutation step instead of a full mask rebuild. Estimates are
//     bit-identical to the legacy clone path under a fixed seed (golden
//     equivalence tests; the clone path survives behind
//     core.CellGame.CloneEval for cross-validation).
//   - Packed, sharded coalition cache (internal/shapley.Cached): coalition
//     keys are uint64 bitmasks for ≤64 players (packed bytes above) spread
//     over 64 lock shards, so exact constraint-game enumeration no longer
//     serializes on one mutex, and violation scans reuse their hash
//     buckets across scans of one table generation
//     (internal/dc.ScanIndex, keyed on table.Generation).
//   - In-place repair protocol (internal/repair.ScratchRepairer): the
//     black boxes themselves no longer Clone() per run. RepairInto
//     refreshes a pooled work table (table.CopyFrom logs per-cell deltas)
//     and repairs it in place with pooled per-run buffers — statistics
//     (table.Stats.Reset), scan indexes, candidate domains — so the whole
//     eval→repair round trip allocates nothing in steady state. The scan
//     index follows single-cell edits through the table's bounded edit log
//     (table.EditsSince), rebuilding only the buckets whose composite key
//     involves the edited column. Both cell and group games drive the
//     samplers through CoalitionWalk, and pooled snapshots are
//     generation-guarded so Session edits between evaluations re-snapshot
//     instead of silently corrupting estimates. Golden tests pin
//     RepairInto to Repair and both walks to the clone paths bit for bit.
//
// Layout:
//
//	internal/table      typed in-memory tables, CSV, statistics, diffs
//	internal/dc         denial-constraint language and evaluation
//	internal/dcdiscover FastDCs-flavoured constraint mining
//	internal/repair     the black boxes: Algorithm 1, HoloSim, baselines
//	internal/shapley    exact and sampled Shapley computation
//	internal/core       the T-REx engine: games, explainer, sessions
//	internal/data       La Liga example, generators, error injection
//	internal/server     HTTP API + embedded GUI (Figure 3/4)
//	internal/bench      experiment implementations (DESIGN.md §4)
//	cmd/trex            CLI repair + explain
//	cmd/trex-server     web demo
//	cmd/trex-bench      regenerates every experiment
//	examples/           runnable walkthroughs of the public API
package repro
