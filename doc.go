// Package repro is a from-scratch Go reproduction of "T-REx: Table Repair
// Explanations" (Deutch, Frost, Gilad, Sheffer — SIGMOD 2020 demo,
// arXiv:2007.04450).
//
// The system explains the output of a black-box table-repair algorithm
// with Shapley values: given a repaired cell of interest, it ranks the
// denial constraints and the input table cells by their contribution to
// that repair. See README.md for the tour, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the paper-vs-measured record.
//
// # Evaluation fast path
//
// Cell-game evaluation is the hot loop: permutation sampling calls the
// black box once per coalition prefix, millions of times on real tables.
// Three layers keep that loop allocation-free and measured in
// BENCH_<n>.json (regenerate with `trex-bench -perf -out BENCH_<n>.json`):
//
//   - Pooled scratch tables (internal/core): instead of Clone()-ing the
//     dirty table per evaluation, each evaluation borrows a pooled working
//     copy, masks absent cells in place, runs the black box, and restores
//     only the touched cells via an undo list — zero steady-state
//     allocations per coalition evaluation (enforced by
//     TestCellGameEvalAllocs).
//   - Incremental prefix walks (internal/shapley.IncrementalGame): the
//     samplers detect games that support single-player coalition deltas
//     and drive them through the CoalitionWalk protocol — one SetRef per
//     permutation step instead of a full mask rebuild. Estimates are
//     bit-identical to the legacy clone path under a fixed seed (golden
//     equivalence tests; the clone path survives behind
//     core.CellGame.CloneEval for cross-validation).
//   - Packed, sharded coalition cache (internal/shapley.Cached): coalition
//     keys are uint64 bitmasks for ≤64 players (packed bytes above) spread
//     over 64 lock shards, so exact constraint-game enumeration no longer
//     serializes on one mutex, and violation scans reuse their hash
//     buckets across scans of one table generation
//     (internal/dc.ScanIndex, keyed on table.Generation).
//   - In-place repair protocol (internal/repair.ScratchRepairer): the
//     black boxes themselves no longer Clone() per run. RepairInto
//     refreshes a pooled work table (table.CopyFrom logs per-cell deltas)
//     and repairs it in place with pooled per-run buffers — statistics
//     (table.Stats.Reset), scan indexes, candidate domains — so the whole
//     eval→repair round trip allocates nothing in steady state. Both cell
//     and group games drive the samplers through CoalitionWalk, and pooled
//     snapshots are generation-guarded so Session edits between
//     evaluations re-snapshot instead of silently corrupting estimates.
//     Golden tests pin RepairInto to Repair and both walks to the clone
//     paths bit for bit.
//
// # The session execution engine
//
// Above the evaluation fast path sits internal/exec: one Engine per
// iterative session (core.Session constructs and owns it; every
// Session.Explainer carries it) that owns the compute and cache all of the
// session's hot paths draw from:
//
//   - Shared coalition cache (exec.CoalitionCache): one generation-keyed
//     cache spanning *all* of a session's games, keyed by (interned game
//     descriptor, packed coalition) — a single uint64 bitmask up to 64
//     players, packed []uint64 words above (allocation-free lookups; the
//     same packed keys replaced the per-game cache's string fallback).
//     Where per-game caches died with their game, this one survives it:
//     the constraint ranking, the interaction matrix, the Banzhaf
//     ablation, the why-not search and repeat explains of the same cell
//     all enumerate the same characteristic function and hit each other's
//     values. Invalidation is by table generation, lazily per shard:
//     Session.SetCell bumps the dirty table's mutation counter and no
//     value computed before the bump can satisfy a lookup after it
//     (hammer-tested under -race).
//   - Bounded worker pool (exec.Pool): one global helper budget per
//     session, borrowed non-blockingly so nested fan-outs (sampler workers
//     whose repair passes parallelize) degrade to caller-only execution
//     instead of oversubscribing. Repair black boxes reach it through
//     repair.PartitionedRepairer: all four fan the live set's full
//     violation derivations across disjoint buckets, and the FD chase
//     additionally computes per-group majorities concurrently, applying
//     them serially in the serial pass's group order. The serial path
//     remains the golden cross-validation reference — parallel output is
//     bit-identical by contract and by test.
//   - Deterministic parallel sampling (internal/shapley): the samplers'
//     fan-out schedules a chunk grid whose size and RNG streams depend
//     only on (Samples, Seed); chunk accumulators merge in chunk order, so
//     Workers=1 and Workers=N produce bit-identical estimates (CI asserts
//     this). One-marginal samplers (SamplePlayer, TopK) additionally morph
//     walks coalition-to-coalition through shapley.DeltaWalk (Exclude),
//     and the group walk restores its mask baseline from a precomputed
//     layout copy instead of re-walking every group per sample.
//
// Parallelism and caching are scheduling choices, never semantic ones:
// every layer's parallel/cached path is pinned bit-for-bit to its serial,
// uncached reference.
//
// # The session materialization layer
//
// The engine also materializes what repeat queries share — three layers,
// each invalidated by exactly the events that can change its answer:
//
//   - Repair-target cache (exec.RepairCache): the clean-table *diff* of
//     the full black-box repair, keyed by a repair descriptor (algorithm +
//     constraint-set fingerprint) and stamped with the table generation.
//     Every explain entry point re-resolves its target through
//     core.Explainer.Target; within one session state that is a pure
//     function of the inputs, so the first call per generation runs the
//     black box and every later call replays the diff — Target scans it
//     without materializing a clean table at all, Repair reconstructs
//     clone-plus-patch. SetCell invalidates by generation; AddDC/RemoveDC
//     re-key the descriptor (Engine.InvalidateCache). Golden tests pin
//     replayed answers to engine-free runs for all four black boxes.
//   - Incremental statistics (table.Stats.Sync): the per-column
//     distributions and row snapshot behind repair rules and column
//     sampling catch up from the table's edit log instead of rebuilding
//     wholesale — only columns touched by edits are re-observed (in row
//     order, reproducing the full rebuild's first-observed tie-break order
//     exactly; fuzz-proven equivalent, log overrun falls back to Reset).
//     The pooled run state of every black box (repair.pooledStats) and the
//     games' generation-guarded snapshots sync this way, so the edit
//     loop's per-evaluation statistics cost follows the edit, not the
//     table.
//   - Cache-aware deterministic sampling (exec.Binding): null-policy
//     coalition evaluations inside SampleAll, SamplePlayer and TopK
//     consult the shared coalition cache through a per-game binding —
//     the walks look up their membership mirror before running the black
//     box and memoize misses under the Lookup's generation stamp. Values
//     are deterministic per (coalition, generation) and the null policy
//     consumes no RNG during evaluation, so cache participation can never
//     change an estimate: Workers=1 ≡ Workers=N bit-identity and the
//     golden equivalence to engine-free explainers both survive (tested).
//     Sampled and exact paths over the same player roster intern one
//     descriptor, so a screen switch replays the other path's values.
//     Stochastic (ReplaceFromColumn) games never bind: a realization must
//     not be memoized as a value.
//
// # The edit model
//
// Every incremental layer above and below hangs off one primitive: the
// table's typed, bounded edit log. A mutation appends an Edit{Gen, Row,
// Col, Kind} to a fixed-size ring and bumps the table generation; a
// consumer holding a previously observed generation calls
// table.EditsSince and either replays the delta or — when the window
// overran or the schema changed — rebuilds wholesale. Three edit kinds
// cover the whole mutation surface:
//
//   - EditSet: one cell changed (Set/SetRef/SetByName, CopyFrom's
//     per-cell refresh deltas).
//   - EditInsert: one row appended at the tail (Append, IngestCSV).
//   - EditDelete: one row removed by swap-delete (DeleteRow): the last
//     row moves into the vacated index and the table shrinks by one.
//
// ApplyBatch brackets any mix of the three under a single generation:
// consumers replay the whole batch as one delta window and caches keyed
// by generation miss exactly once per batch, not once per operation.
// Batching groups generations — it is not atomicity; core.Session's
// ApplyBatch validates every operation up front (simulating the evolving
// row count) precisely because mid-batch failures would stay applied.
//
// The row-identity rule for deletes: DeleteRow(i) moves the last row
// into slot i, so survivors other than the moved row keep both their
// index and their bytes. Consumers never guess at that remapping — they
// resolve it symbolically through table.RowRemap, which folds an edit
// window into the exact retract/derive/re-observe sets — and cached
// CellRefs are never remapped at all: every cache that stores a row
// index stamps it with the generation it was observed at, structural
// edits always bump the generation, so a stale index is unreachable by
// construction. The editlog and cacheinval analyzers enforce both halves
// mechanically (no raw row-grid writes; no structural mutation path that
// skips the log).
//
// What each layer replays from a structural delta window, in order of
// increasing invalidation coarseness:
//
//	bucketSet          insert: hash the new tail row into its bucket;
//	                   delete: unhash the removed row, re-home the moved
//	                   row's index — no other bucket entry moves
//	prefilter bitmaps  extend for inserts, compact for deletes;
//	                   only the touched rows' bits are re-evaluated
//	LiveViolationSet   retract exactly the touched rows' pairs, derive
//	                   the inserted/moved rows against their buckets
//	Stats.Sync         insert-only window: observe the tail rows per
//	                   column; any delete: re-observe all columns (the
//	                   first-observed tie-break order is position-
//	                   dependent), still without a wholesale Reset
//	conditional stats  per-(column-pair) dirty bits; untouched pairs
//	                   keep their tables across structural edits
//	exec caches        generation-keyed (coalition values, repair
//	                   diffs, plans): nothing replays — the bumped
//	                   generation makes stale entries unreachable
//
// Structural edits enter through table.Append/DeleteRow/ApplyBatch and
// the streaming table.IngestCSV, surface in the session API as
// Session.InsertRow/DeleteRow/ApplyBatch/IngestCSV (history lines name
// the swap remap), and over HTTP as the insert_row/delete_row/batch
// fields of POST /api/session/{id}/edit plus the CSV-streaming POST
// /api/session/{id}/ingest. Snapshots spool history batch brackets and
// RestoreSession rejects unbalanced ones. The violations/{insert,delete,
// batch} BENCH_<n>.json rows track delta replay against a forced full
// rebuild; CI gates the insert and delete pairs at >=5x (`trex-bench
// -structural`).
//
// # The violation index
//
// Violation detection — "which pairs jointly satisfy a denied
// conjunction?" — is the inner question of every repair pass and every
// coalition evaluation. It is answered by three stacked layers in
// internal/dc, each maintained incrementally off the table's bounded edit
// log (table.EditsSince) and each with a strictly coarser invalidation
// trigger than the one below:
//
//   - bucketSet: one hash partition of the table over one join-column
//     signature (the composite of a constraint's t1.A = t2.A attributes,
//     canonicalized so int 1 ≡ float 1.0 and ±0.0 collapse; null and NaN
//     join cells exclude the row, since NULL = x is unknown and
//     NaN ≠ NaN). A cell edit moves one row between two buckets; only a
//     structural change (row count, schema) or edit-log overrun forces a
//     rebuild.
//   - ScanIndex: the per-goroutine cache of bucketSets keyed on (table
//     pointer, generation) plus, per constraint, the memoized join-column
//     resolution and the compiled predicate kernel (Kernel): every
//     operand's column index resolved once, evaluation running
//     predicate-at-a-time over a bucket's candidate rows with the fixed
//     operand hoisted and compared through typed column views
//     (table.IntCol/FloatCol/StringCol). Kernels and column resolutions
//     are schema-scoped — re-pointing the index at a clone recompiles
//     nothing — while buckets are table-scoped. The interpreted evaluator
//     (Predicate.Eval / SatisfiedPair) remains the cross-validation
//     reference: every nil-index scan runs it, and property tests fuzz
//     kernel against interpreter across randomized schemas, NaN/±0.0
//     values and all six operators.
//   - LiveViolationSet: the materialized answer — per-(constraint, table)
//     violation-pair lists, sorted (Row1, Row2). A cell edit retracts the
//     edited row's pairs and re-derives them against the row's current
//     bucket; a full re-derivation (first query, log overrun, table
//     switch) fans out across disjoint buckets on a worker pool for large
//     tables. Lists are golden-tested bit-identical to full rescans under
//     randomized edit sequences. All four black boxes consume it (the
//     rule and detect loops read lists, the FD chase visits only
//     violating groups), core.Session serves it to the edit loop
//     (Session.Violations, GET /api/session/{id}/violations), and the
//     Shapley samplers drive it implicitly: every mask/unmask SetRef and
//     every work-table refresh lands in the edit log, so the pooled run
//     state of the next repair pays per-edit maintenance instead of
//     per-bucket-squared rescans.
//
// # Constraint-set planning
//
// The layers above treat each denial constraint in isolation; the
// explanation workloads evaluate the whole DC set per coalition,
// thousands of times. internal/dc/plan compiles the set as one shared
// relational-algebra plan — (a) partition sharing: constraints whose
// canonical equality-join column sets are equal share one bucketSet
// outright, and a constraint with a pre-filter may adopt another's
// proper subset (missing at most one column) as a coarser shared
// partition, so edit-log delta replay runs once per shared partition
// instead of once per constraint; (b) predicate ordering by a
// statistics-free selectivity heuristic (operator class refined by
// operand arity, declaration order breaking ties); (c) pushdown of
// single-side predicates into per-row pre-filter bitmaps evaluated once
// per row per generation instead of once per candidate pair; (d) hash
// pre-sizing from cardinalities observed in earlier generations.
//
// Sessions compile lazily and memoize compiled plans in the engine's
// plan cache (exec.PlanCache) keyed by (schema identity, DC-set
// fingerprint); AddDC/RemoveDC invalidate and recompile, so the plan can
// never go stale against the constraint set (the cacheinval analyzer
// enforces the recompile on every mutation path). Every consumer —
// ScanIndex, LiveViolationSet, the four black boxes' planned repair
// paths, core.Session — takes the plan as an optional strategy: planned
// execution is bit-identical to the per-constraint reference path, which
// survives as the golden cross-check (fuzz and golden equivalence tests;
// subset coarsening re-checks full kernels on scans and is never used
// for group enumeration, which keeps exact partitions). The dcset
// scenario family in BENCH_<n>.json tracks the planner against the
// reference on shared-join-key DC sets; CI gates the scan pairs at
// >=1.5x (`trex-bench -speedup`).
//
// # Fault model and degradation ladder
//
// The robustness layer assumes three failure classes — abandoned or
// over-deadline requests, panicking black boxes, and memory/process
// pressure — and answers each one rung down a documented ladder, never
// with stale or torn results:
//
//   - Cooperative cancellation: every explain and repair entry point takes
//     a context.Context, polled at deterministic checkpoints (sample
//     boundaries in the shapley fan-out, bucket boundaries in the parallel
//     repair passes, coalition boundaries in exact enumeration). The hard
//     invariant is no partial-work poisoning: each core.Explainer entry
//     point runs inside a cache transaction (exec.Txn) that stages every
//     coalition value and repair diff it computes; the transaction commits
//     on success and is dropped on error or panic, so an aborted run
//     leaves the shared coalition cache, the repair-target cache, pooled
//     statistics and the live violation index bit-identical to never
//     having started (abort-then-rerun golden tests enforce this at every
//     cancellation site, fingerprinting cache state before and after).
//     Commits carry their original generation stamps, so a transaction
//     that outlived an edit publishes nothing.
//   - Admission control (internal/server): heavy endpoints pass a bounded
//     in-flight semaphore; a saturated server answers 429 with Retry-After
//     instead of queueing unboundedly. Per-request deadlines turn
//     over-budget computations into 408 after cancelling the underlying
//     work (the workers demonstrably return to the pool). Request bodies
//     are capped with http.MaxBytesReader and the listener carries
//     read/header/idle timeouts, so no single client can pin a connection.
//   - Panic quarantine: a panic inside a session-scoped request is
//     recovered at the handler, the request answers 409 with the panic
//     diagnostics, and the session is fenced — every later request to it
//     answers 409 until restart, because the panic may have torn black-box
//     scratch state. Other sessions and the process are unaffected; a
//     panic outside any session scope answers 500.
//   - Session survival: session state (table cells as kind-tagged values —
//     floats as IEEE-754 bit patterns so NaN and String("5")/Int(5)
//     distinctions survive — plus the DC set, edit history and worker
//     budget) snapshots to a versioned JSON spool file (SessionSnapshot,
//     snapshotVersion guards the format). An LRU with a live-session
//     budget snapshots-then-evicts idle sessions and transparently
//     restores on next touch; SIGTERM drains in-flight requests within a
//     deadline, snapshots every live session, and exits 0, so a restart
//     with the same spool directory answers bit-identically to the
//     process that died. Spool writes are atomic (temp file + rename); a
//     failed snapshot keeps the session live rather than losing it.
//   - Fault injection (internal/faults): the chaos suite drives all of the
//     above through deterministic seeded schedules that fire cancellation,
//     panics, slow workers, I/O errors and edit-log overruns at named
//     sites (worker start, bucket partition, cache store, edit replay,
//     snapshot write). Equal seeds fire equal (site, ordinal, kind)
//     triples on every platform, so every chaos failure reproduces from
//     its seed alone.
//
// # Linting
//
// The engine's cross-cutting invariants are enforced mechanically by
// trexlint (internal/lint, driven by cmd/trexlint), a go/analysis-style
// suite built on the standard library alone. It runs standalone (`go run
// ./cmd/trexlint ./...`), as a vet tool (`go vet -vettool=...`), and as
// the CI lint job; any unsuppressed finding fails the build. The
// analyzers, each born from a bug class an earlier PR fixed by hand:
//
//   - detmap: no unordered map iteration in the deterministic fan-out
//     packages (internal/shapley, internal/exec, internal/repair,
//     internal/dc). Workers=1 and Workers=N must be bit-identical (the
//     PR 4 contract), and map order is randomized per run. The sorted-keys
//     idiom — collect into a slice, then sort.*/slices.* it in the same
//     function — is recognized and exempt.
//   - seededrand: no math/rand globals and no time.Now/Since in engine
//     code; randomness must flow from seeded sources (rand.New,
//     SplitMix64) threaded from the caller, so equal seeds replay equal
//     runs (the PR 6 chaos-reproducibility contract).
//   - editlog: outside internal/table, no direct writes into table cell
//     storage ([]table.Value obtained from RowView or another alias) and
//     no structural writes into [][]table.Value row grids of aliasing
//     provenance (a raw slot swap is an unlogged swap-delete); mutations
//     go through Set/SetRef/Append/DeleteRow/ApplyBatch (or CopyFrom) so
//     the typed edit log stays the single source of truth for
//     incremental sync (PR 5, widened to the structural surface in
//     PR 10).
//   - cachekey: descriptor/key-builder functions must not stringify
//     table.Value via String or fmt — Value.AppendKey is the injective
//     encoding; String collapses distinct values (Int(5) vs String("5"))
//     and would alias cache entries (PR 4).
//   - txnbracket: every exported context-taking Explainer entry point in
//     internal/core opens with `defer e.finishEntry(e.begin(), &err)` so
//     no partial work escapes a failed entry (the PR 6 transaction
//     bracket); single-statement delegations are exempt.
//
// Four further analyzers are flow-sensitive: they reason about paths and
// cycles rather than single sites, on two shared layers. internal/lint/cfg
// builds a per-function control-flow graph (basic blocks over the full
// statement language — if/for/range/switch/select, labeled break/continue,
// goto — with a deterministic worklist solver, post-dominance queries via
// EveryPathHits, and check-free-cycle detection via CycleAvoiding), and
// internal/lint/dataflow summarizes each function's facts (allocations,
// mutex acquisitions with stable labels, table/DC-set mutation, cache
// invalidation, context polling) and propagates them over static call
// edges to a bounded depth:
//
//   - allocfree: functions reachable from a //lint:hotpath root — the
//     eval→repair spine: cache lookups/stores, packed-key encoding,
//     sampled-walk marginals, the serial RepairInto implementations — must
//     not allocate per call. Escaping allocation sites (escape to caller,
//     interface boxing, closure capture, zero-capacity append growth) are
//     reported with the site and its escape path; cap-guarded pool refills
//     and error exits are exempt.
//   - cacheinval: every write to Table.rows or a Session's dcs/alg must be
//     post-dominated by the invalidation surface (Table.logEdit /
//     Table.logStructural / Table.invalidateEdits /
//     Engine.InvalidateCache) — no path from a
//     mutation to return may skip invalidation, else the coalition cache
//     serves stale values (the PR 5/6 coherence contract). Session
//     DC-set/algorithm mutations must additionally be post-dominated by
//     the plan-refresh surface (Session.refreshPlan / PlanCache.Clear),
//     or the session keeps driving a constraint-set plan compiled for
//     constraints that no longer exist (the PR 9 planner contract).
//   - lockorder: mutex-acquisition-order cycles across a package (lock A
//     held while taking B in one function, B while taking A in another)
//     are reported at the first edge of the cycle; deferred unlocks hold
//     to function exit, RLock nesting is legal, function-local mutexes are
//     out of scope.
//   - ctxflow: in a context-accepting function, goroutines must be started
//     with the incoming context observed, and no loop may iterate without
//     consulting ctx on every back edge (directly, or via a callee that
//     transitively polls) — otherwise cancellation admits unbounded delay
//     (the PR 6 admission-control contract).
//
// Analyzer-to-invariant map, for review:
//
//	detmap      Workers=1 ≡ Workers=N (bit-identical results)
//	seededrand  equal seeds replay equal runs
//	editlog     edit log is the single source of truth
//	cachekey    cache keys are injective encodings
//	txnbracket  no partial work escapes a failed entry
//	allocfree   steady-state hot path allocates zero bytes
//	cacheinval  every mutation invalidates before returning
//	lockorder   lock acquisition order is acyclic per package
//	ctxflow     cancellation is observed on every iteration
//
// A finding is suppressed only by a justified directive on, or directly
// above, its line:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory — a reasonless directive is itself a finding
// (lintdirective) — and should argue why the invariant holds anyway
// (e.g. an XOR fold is order-independent, a buffer is private scratch).
// A directive that stops suppressing anything (the code moved or was
// fixed) is reported as stale, and one naming an unknown analyzer as a
// typo, so the suppression inventory cannot rot. Hot-path roots are
// declared the same way — `//lint:hotpath` directly above a function
// declaration seeds allocfree's reachability sweep. Never weaken an
// analyzer to make a finding go away.
//
// # Layout
//
//	internal/table      typed in-memory tables, CSV, statistics, diffs
//	internal/exec       session engine: shared coalition cache, worker pool
//	internal/dc         denial-constraint language and evaluation
//	internal/dcdiscover FastDCs-flavoured constraint mining
//	internal/repair     the black boxes: Algorithm 1, HoloSim, baselines
//	internal/shapley    exact and sampled Shapley computation
//	internal/core       the T-REx engine: games, explainer, sessions
//	internal/data       La Liga example, generators, error injection
//	internal/server     HTTP API + embedded GUI (Figure 3/4)
//	internal/bench      experiment implementations (DESIGN.md §4)
//	internal/lint       trexlint invariant analyzers (see # Linting)
//	internal/lint/cfg   per-function control-flow graphs + worklist solver
//	internal/lint/dataflow  bounded call-graph summaries for the analyzers
//	cmd/trex            CLI repair + explain
//	cmd/trex-server     web demo
//	cmd/trex-bench      regenerates every experiment
//	cmd/trexlint        standalone + vet-tool lint driver
//	examples/           runnable walkthroughs of the public API
package repro
