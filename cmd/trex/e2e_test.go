package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTrex compiles the trex binary into a temp dir — the end-to-end
// harness: unlike the in-process tests above, these exercise the real
// main(), flag parsing, exit codes and process output.
func buildTrex(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "trex")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building trex: %v\n%s", err, out)
	}
	return bin
}

func TestE2ETrexLaLigaRepair(t *testing.T) {
	bin := buildTrex(t)
	out, err := exec.Command(bin, "-laliga").CombinedOutput()
	if err != nil {
		t.Fatalf("trex -laliga: %v\n%s", err, out)
	}
	for _, want := range []string{
		"== Dirty table ==",
		"== Clean table ==",
		"== Repaired cells ==",
		"t5[Country]: España -> Spain",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestE2ETrexExplain(t *testing.T) {
	bin := buildTrex(t)
	out, err := exec.Command(bin, "-laliga", "-explain", "t5[Country]").CombinedOutput()
	if err != nil {
		t.Fatalf("trex explain: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Explanation (constraints) for repair of t5[Country]") ||
		!strings.Contains(string(out), "1. C3") {
		t.Errorf("constraint explanation shape wrong:\n%s", out)
	}
	out, err = exec.Command(bin, "-laliga", "-explain", "t5[Country]",
		"-kind", "cells", "-samples", "200", "-seed", "7", "-workers", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("trex explain cells: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Explanation (cells)") || !strings.Contains(string(out), "t5[League]") {
		t.Errorf("cell explanation shape wrong:\n%s", out)
	}
}

func TestE2ETrexExitCodes(t *testing.T) {
	bin := buildTrex(t)
	cases := [][]string{
		{},                               // no input selected
		{"-laliga", "-alg", "nope"},      // unknown algorithm
		{"-laliga", "-explain", "bogus"}, // bad cell reference
	}
	for _, args := range cases {
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("args %v: err = %v, want non-zero exit\n%s", args, err, out)
		}
		if code := ee.ExitCode(); code != 1 {
			t.Errorf("args %v: exit code %d, want 1", args, code)
		}
		if !strings.Contains(string(out), "trex:") {
			t.Errorf("args %v: stderr missing 'trex:' prefix:\n%s", args, out)
		}
	}
}
