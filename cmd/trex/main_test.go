package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestCLILaLigaRepair(t *testing.T) {
	out, err := runCLI(t, "-laliga")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== Clean table ==", "t5[Country]: España -> Spain", "t5[City]: Capital -> Madrid"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCLIExplainConstraints(t *testing.T) {
	out, err := runCLI(t, "-laliga", "-explain", "t5[Country]")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1. C3") || !strings.Contains(out, "+0.6667") {
		t.Errorf("constraint explanation wrong:\n%s", out)
	}
}

func TestCLIExplainCells(t *testing.T) {
	out, err := runCLI(t, "-laliga", "-explain", "t5[Country]", "-kind", "cells", "-samples", "400", "-seed", "42")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "t5[League]") {
		t.Errorf("cell explanation wrong:\n%s", out)
	}
}

func TestCLIFromFiles(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	dcsPath := filepath.Join(dir, "dcs.txt")
	if err := os.WriteFile(csvPath, []byte("A,B\nx,1\nx,2\nx,1\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dcsPath, []byte("C1: !(t1.A = t2.A & t1.B != t2.B)\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-table", csvPath, "-dcs", dcsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "t2[B]: 2 -> 1") {
		t.Errorf("file-based repair wrong:\n%s", out)
	}
}

// TestCLIDropRows: -drop deletes the listed 1-based rows by the
// swap-delete rule before repairing. Dropping the two violating rows of
// a three-row table leaves nothing to repair.
func TestCLIDropRows(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	dcsPath := filepath.Join(dir, "dcs.txt")
	if err := os.WriteFile(csvPath, []byte("A,B\nx,1\nx,2\nx,1\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dcsPath, []byte("C1: !(t1.A = t2.A & t1.B != t2.B)\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-table", csvPath, "-dcs", dcsPath, "-drop", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(none)") {
		t.Errorf("dropping the violating row must leave nothing to repair:\n%s", out)
	}
	// Duplicates collapse; descending application keeps original numbers.
	if _, err := runCLI(t, "-table", csvPath, "-dcs", dcsPath, "-drop", "3, 1,3"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"0", "4", "x"} {
		if _, err := runCLI(t, "-table", csvPath, "-dcs", dcsPath, "-drop", bad); err == nil {
			t.Errorf("-drop %q must error", bad)
		}
	}
}

func TestCLIAlgorithms(t *testing.T) {
	for _, alg := range []string{"algorithm1", "holosim", "greedy-holistic", "fd-chase"} {
		if _, err := runCLI(t, "-laliga", "-alg", alg); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // no input selected
		{"-laliga", "-alg", "nope"},         // unknown algorithm
		{"-laliga", "-explain", "bogus"},    // bad cell ref
		{"-laliga", "-explain", "t1[Team]"}, // unrepaired cell
		{"-laliga", "-explain", "t5[Country]", "-kind", "nope"}, // bad kind
		{"-table", "/nonexistent.csv", "-dcs", "/nonexistent.txt"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v must error", args)
		}
	}
}
