// Command trex repairs a table and explains repairs from the command line.
//
// Usage:
//
//	trex -laliga                                  # run the paper's example
//	trex -table dirty.csv -dcs constraints.txt    # repair a CSV
//	trex -laliga -explain "t5[Country]"           # constraint explanation
//	trex -laliga -explain "t5[Country]" -kind cells -samples 1000
//
// The -alg flag selects the black box: algorithm1 (default), holosim,
// greedy-holistic or fd-chase.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/repair"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trex:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trex", flag.ContinueOnError)
	var (
		tablePath = fs.String("table", "", "dirty table CSV path")
		dcsPath   = fs.String("dcs", "", "denial constraints file path")
		useLaLiga = fs.Bool("laliga", false, "use the paper's built-in La Liga example")
		algName   = fs.String("alg", "", "repair algorithm (algorithm1|rule-repair|holosim|greedy-holistic|fd-chase); default: algorithm1 for -laliga, rule-repair otherwise")
		explain   = fs.String("explain", "", "cell to explain, e.g. t5[Country]; empty = just repair")
		kind      = fs.String("kind", "constraints", "explanation kind: constraints or cells")
		samples   = fs.Int("samples", 500, "permutation samples for cell explanations")
		seed      = fs.Int64("seed", 1, "sampling seed")
		workers   = fs.Int("workers", 0, "engine parallelism (sampling fan-out and parallel repair passes); 0 = GOMAXPROCS — never changes results")
		dropRows  = fs.String("drop", "", "comma-separated 1-based rows to delete before repairing (swap-delete: the last row takes each vacated index)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var dirty *table.Table
	var dcs []*dc.Constraint
	switch {
	case *useLaLiga:
		ll := data.NewLaLiga()
		dirty, dcs = ll.Dirty, ll.DCs
	case *tablePath != "" && *dcsPath != "":
		var err error
		dirty, err = table.ReadCSVFile(*tablePath)
		if err != nil {
			return err
		}
		raw, err := os.ReadFile(*dcsPath)
		if err != nil {
			return err
		}
		dcs, err = dc.ParseSet(string(raw))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -laliga or both -table and -dcs (see -h)")
	}

	if *dropRows != "" {
		if err := dropTableRows(dirty, *dropRows); err != nil {
			return err
		}
	}

	name := *algName
	if name == "" {
		// algorithm1's rules are bound to the paper's soccer schema;
		// arbitrary CSV inputs get rules derived from their own DCs.
		if *useLaLiga {
			name = "algorithm1"
		} else {
			name = "rule-repair"
		}
	}
	alg, err := algorithmByName(name, dcs)
	if err != nil {
		return err
	}
	exp, err := core.NewExplainer(alg, dcs, dirty)
	if err != nil {
		return err
	}
	// One engine for the whole invocation: parallel repair bucket passes
	// and a coalition cache shared across the repair and explain phases.
	exp.Engine = exec.NewEngine(*workers)
	ctx := context.Background()

	clean, diffs, err := exp.Repair(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "== Dirty table ==")
	fmt.Fprint(out, dirty)
	fmt.Fprintln(out, "\n== Clean table ==")
	fmt.Fprint(out, clean)
	fmt.Fprintln(out, "\n== Repaired cells ==")
	if len(diffs) == 0 {
		fmt.Fprintln(out, "(none)")
	} else {
		fmt.Fprint(out, table.FormatDiffs(dirty, diffs))
	}

	if *explain == "" {
		return nil
	}
	cell, err := dirty.ParseRefName(*explain)
	if err != nil {
		return err
	}
	var report *core.Report
	switch *kind {
	case "constraints":
		report, err = exp.ExplainConstraints(ctx, cell)
	case "cells":
		report, err = exp.ExplainCells(ctx, cell, core.CellExplainOptions{Samples: *samples, Seed: *seed, Workers: *workers})
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, report)
	return nil
}

// dropTableRows deletes the listed 1-based rows through the table's
// swap-delete rule. Deleting in descending order keeps every listed
// number meaning a row of the original table: a swap only ever moves
// the current last row, which carries a larger original number than any
// remaining target.
func dropTableRows(t *table.Table, spec string) error {
	var rows []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad -drop row %q: %w", f, err)
		}
		if n < 1 || n > t.NumRows() {
			return fmt.Errorf("-drop row %d out of range 1..%d", n, t.NumRows())
		}
		rows = append(rows, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(rows)))
	prev := 0
	for _, n := range rows {
		if n == prev {
			continue
		}
		prev = n
		t.DeleteRow(n - 1)
	}
	return nil
}

func algorithmByName(name string, dcs []*dc.Constraint) (repair.Algorithm, error) {
	if name == "rule-repair" {
		return repair.NewRuleRepair(dcs), nil
	}
	for _, alg := range repair.All(1) {
		if alg.Name() == name {
			return alg, nil
		}
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}
