package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// buildTrexBench compiles the trex-bench binary into a temp dir.
func buildTrexBench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "trex-bench")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building trex-bench: %v\n%s", err, out)
	}
	return bin
}

func TestE2ETrexBenchList(t *testing.T) {
	bin := buildTrexBench(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("trex-bench -list: %v\n%s", err, out)
	}
	for _, want := range []string{"fig1", "fig2", "dcdebug"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestE2ETrexBenchExperiment(t *testing.T) {
	bin := buildTrexBench(t)
	out, err := exec.Command(bin, "-exp", "fig1").CombinedOutput()
	if err != nil {
		t.Fatalf("trex-bench -exp fig1: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "================ fig1:") ||
		!strings.Contains(string(out), "[fig1 done in") {
		t.Errorf("experiment output shape wrong:\n%s", out)
	}
	// An unknown experiment id must fail with exit code 1.
	cmd := exec.Command(bin, "-exp", "nope")
	out, err = cmd.CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("-exp nope: err = %v, want exit 1\n%s", err, out)
	}
}

// writePerfJSON writes a synthetic BENCH file for gate tests.
func writePerfJSON(t *testing.T, path string, ns map[string]float64) {
	t.Helper()
	report := bench.PerfReport{Go: "test", GOARCH: "amd64", GOOS: "linux"}
	for name, v := range ns {
		report.Results = append(report.Results, bench.PerfResult{Name: name, NsPerOp: v, N: 1})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestE2ETrexBenchGateExitCodes(t *testing.T) {
	bin := buildTrexBench(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "bad.json")
	writePerfJSON(t, base, map[string]float64{"s/one": 100})
	writePerfJSON(t, good, map[string]float64{"s/one": 105})
	writePerfJSON(t, bad, map[string]float64{"s/one": 1000})

	if out, err := exec.Command(bin, "-gate", good, "-against", base).CombinedOutput(); err != nil {
		t.Fatalf("passing gate must exit 0: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-gate", bad, "-against", base)
	out, err := cmd.CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("regressing gate: err = %v, want exit 1\n%s", err, out)
	}
	// -gate without -against is a usage error: exit 2.
	cmd = exec.Command(bin, "-gate", good)
	out, err = cmd.CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("-gate without -against: err = %v, want exit 2\n%s", err, out)
	}
	_ = out
}

func TestE2ETrexBenchPerfShortOut(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is slow")
	}
	bin := buildTrexBench(t)
	outPath := filepath.Join(t.TempDir(), "smoke.json")
	out, err := exec.Command(bin, "-perf", "-short", "-out", outPath).CombinedOutput()
	if err != nil {
		t.Fatalf("trex-bench -perf -short: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("perf report not written: %v", err)
	}
	var report bench.PerfReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("perf report not valid JSON: %v", err)
	}
	if len(report.Results) == 0 {
		t.Fatal("perf report has no rows")
	}
	for _, row := range report.Results {
		if row.Name == "" || row.NsPerOp <= 0 || row.N <= 0 {
			t.Fatalf("malformed perf row %+v", row)
		}
	}
}
