// Command trex-bench regenerates every experiment of the reproduction
// (DESIGN.md §4) and prints paper-vs-measured rows. EXPERIMENTS.md is
// produced from this tool's output.
//
// Usage:
//
//	trex-bench -exp all
//	trex-bench -exp fig1          # one experiment
//	trex-bench -list
//	trex-bench -perf -out BENCH_1.json   # machine-readable perf scenarios
//	trex-bench -perf -short              # CI smoke subset, no file
//	trex-bench -gate BENCH_3.json -against BENCH_2.json   # perf-regression gate
//	trex-bench -speedup BENCH_8.json      # constraint-set planner floor
//	trex-bench -structural BENCH_8.json   # structural delta-replay floor
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all'")
		list     = flag.Bool("list", false, "list experiment ids")
		perf     = flag.Bool("perf", false, "run the perf scenarios (ns/op, allocs/op) instead of experiments")
		out      = flag.String("out", "", "with -perf: write the JSON report to this path (e.g. BENCH_1.json)")
		short    = flag.Bool("short", false, "with -perf: skip the slow end-to-end scenarios")
		gate     = flag.String("gate", "", "compare this BENCH_<n>.json against -against and fail on regression")
		against  = flag.String("against", "", "with -gate: the baseline BENCH_<n>.json")
		tol      = flag.Float64("gate-tolerance", 0.25, "with -gate: allowed ns/op regression fraction")
		workers  = flag.Int("workers", 0, "with -perf: engine parallelism for the multi-core scenarios; 0 = GOMAXPROCS")
		speedup  = flag.String("speedup", "", "check the planner's planned-vs-perconstraint speedup inside this BENCH_<n>.json")
		minSpeed = flag.Float64("min-speedup", 1.5, "with -speedup: required planner speedup on dcset scan scenarios")
		structrl = flag.String("structural", "", "check the structural delta-vs-rebuild speedup inside this BENCH_<n>.json")
		minStrct = flag.Float64("min-structural", 5, "with -structural: required delta-replay speedup on insert/delete scenarios")
	)
	flag.Parse()

	if *structrl != "" {
		if err := bench.StructuralSpeedup(os.Stdout, *structrl, *minStrct); err != nil {
			fmt.Fprintf(os.Stderr, "trex-bench: structural: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *speedup != "" {
		if err := bench.PlannerSpeedup(os.Stdout, *speedup, *minSpeed); err != nil {
			fmt.Fprintf(os.Stderr, "trex-bench: speedup: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *gate != "" {
		if *against == "" {
			fmt.Fprintln(os.Stderr, "trex-bench: -gate requires -against <baseline.json>")
			os.Exit(2)
		}
		if err := bench.Gate(os.Stdout, *against, *gate, *tol); err != nil {
			fmt.Fprintf(os.Stderr, "trex-bench: gate: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range bench.IDs() {
			fmt.Printf("%-12s %s\n", id, bench.Describe(id))
		}
		return
	}
	if *perf {
		var err error
		if *out != "" {
			err = bench.WritePerfJSON(os.Stdout, *out, *short, *workers)
		} else {
			_, err = bench.RunPerf(os.Stdout, *short, *workers)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trex-bench: perf: %v\n", err)
			os.Exit(1)
		}
		return
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		if err := runOne(os.Stdout, id); err != nil {
			fmt.Fprintf(os.Stderr, "trex-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func runOne(w io.Writer, id string) error {
	fmt.Fprintf(w, "\n================ %s: %s ================\n", id, bench.Describe(id))
	start := time.Now()
	if err := bench.Run(w, id); err != nil {
		return err
	}
	fmt.Fprintf(w, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}
