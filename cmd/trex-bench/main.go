// Command trex-bench regenerates every experiment of the reproduction
// (DESIGN.md §4) and prints paper-vs-measured rows. EXPERIMENTS.md is
// produced from this tool's output.
//
// Usage:
//
//	trex-bench -exp all
//	trex-bench -exp fig1          # one experiment
//	trex-bench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id or 'all'")
		list = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Printf("%-12s %s\n", id, bench.Describe(id))
		}
		return
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		if err := runOne(os.Stdout, id); err != nil {
			fmt.Fprintf(os.Stderr, "trex-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func runOne(w io.Writer, id string) error {
	fmt.Fprintf(w, "\n================ %s: %s ================\n", id, bench.Describe(id))
	start := time.Now()
	if err := bench.Run(w, id); err != nil {
		return err
	}
	fmt.Fprintf(w, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}
