// Command trexlint runs the repository's invariant analyzers (package
// repro/internal/lint) over Go packages and reports every unsuppressed
// finding.
//
// Two modes, mirroring x/tools' multichecker/unitchecker split:
//
// Standalone, for developers and CI:
//
//	go run ./cmd/trexlint ./...
//
// loads each matched package (export-data deps, source-checked roots),
// prints findings as file:line:col: analyzer: message on stdout, and
// exits 1 if there were any.
//
// Vet tool, driven by the go command:
//
//	go vet -vettool=$(which trexlint) ./...
//
// cmd/go invokes the tool once per package with a single *.cfg argument
// describing the compilation unit (file list, import map, export data);
// diagnostics go to stderr and a nonzero exit fails the vet run. The
// -V=full flag prints the tool identity cmd/go uses for result caching.
//
// Run with -help for the list of analyzers and the suppression syntax.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes vet tools with a bare -flags argument to learn which
	// pass-through flags they accept; trexlint accepts none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	fs := flag.NewFlagSet("trexlint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet plumbing; use -V=full)")
	fs.Usage = usage
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		return printVersion()
	}
	rest := fs.Args()
	if len(rest) == 1 && filepath.Ext(rest[0]) == ".cfg" {
		return runUnit(rest[0])
	}
	return runStandalone(rest)
}

func usage() {
	fmt.Fprintf(os.Stderr, `trexlint: static enforcement of the engine's determinism, edit-log, and cache invariants.

usage: trexlint [-V=full] [packages...]   (default ./...)
       trexlint unit.cfg                  (go vet -vettool mode)

analyzers:
`)
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding with a justified directive on or directly above its line:\n  //lint:allow <analyzer> <reason>\n")
}

// printVersion emits the unitchecker-style identity line cmd/go hashes
// into its vet action cache: tool name plus a digest of the executable,
// so a rebuilt trexlint invalidates cached vet results.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%s version devel comments-and-options buildID=%x\n", filepath.Base(exe), h.Sum(nil))
	return 0
}

// runStandalone loads the given patterns (default ./...) from the module
// in the current directory and prints findings to stdout.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trexlint:", err)
		return 1
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "trexlint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "trexlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// unitConfig is the JSON compilation-unit description cmd/go writes for
// vet tools (the subset trexlint consumes).
type unitConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit under go vet. Findings go to
// stderr with exit 2, matching the vet diagnostic protocol.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trexlint:", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "trexlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// trexlint analyzers export no facts, but cmd/go insists the declared
	// output file exists before caching the unit's result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "trexlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := loader.CheckFiles(token.NewFileSet(), cfg.ImportPath, cfg.GoFiles, cfg.PackageFile, cfg.ImportMap, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "trexlint:", err)
		return 1
	}
	findings, err := lint.RunPackage(pkg, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "trexlint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
