// Command trexlint runs the repository's invariant analyzers (package
// repro/internal/lint) over Go packages and reports every unsuppressed
// finding.
//
// Two modes, mirroring x/tools' multichecker/unitchecker split:
//
// Standalone, for developers and CI:
//
//	go run ./cmd/trexlint ./...
//
// loads each matched package (export-data deps, source-checked roots),
// prints findings as file:line:col: analyzer: message on stdout, and
// exits 1 if there were any.
//
// Vet tool, driven by the go command:
//
//	go vet -vettool=$(which trexlint) ./...
//
// cmd/go invokes the tool once per package with a single *.cfg argument
// describing the compilation unit (file list, import map, export data);
// diagnostics go to stderr and a nonzero exit fails the vet run. The
// -V=full flag prints the tool identity cmd/go uses for result caching.
//
// Both modes accept -json, which swaps the line-oriented report for a
// JSON array with one object per finding:
//
//	{"analyzer": ..., "file": ..., "line": ..., "col": ..., "message": ..., "allowed": ...}
//
// sorted by (file, line, col, analyzer). Unlike the plain report, the
// array includes findings covered by //lint:allow directives (with
// "allowed": true), so suppression density is auditable; the exit code
// still reflects only the active findings.
//
// Run with -help for the list of analyzers and the suppression syntax.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	return runTo(os.Stdout, os.Stderr, args)
}

// runTo is run with injectable streams (stdout carries standalone
// findings, stderr carries vet-mode diagnostics and errors).
func runTo(stdout, stderr io.Writer, args []string) int {
	// cmd/go probes vet tools with a bare -flags argument to learn which
	// pass-through flags they accept; trexlint forwards -json.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, `[{"Name":"json","Bool":true,"Usage":"emit findings as a JSON array (includes allowed findings)"}]`)
		return 0
	}
	fs := flag.NewFlagSet("trexlint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet plumbing; use -V=full)")
	jsonFlag := fs.Bool("json", false, "emit findings as a JSON array (includes allowed findings)")
	fs.Usage = usage
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		return printVersion(stdout, stderr)
	}
	rest := fs.Args()
	if len(rest) == 1 && filepath.Ext(rest[0]) == ".cfg" {
		return runUnit(stderr, rest[0], *jsonFlag)
	}
	return runStandalone(stdout, stderr, rest, *jsonFlag)
}

func usage() {
	fmt.Fprintf(os.Stderr, `trexlint: static enforcement of the engine's determinism, edit-log, and cache invariants.

usage: trexlint [-V=full] [-json] [packages...]   (default ./...)
       trexlint [-json] unit.cfg                  (go vet -vettool mode)

analyzers:
`)
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding with a justified directive on or directly above its line:\n  //lint:allow <analyzer> <reason>\n")
}

// printVersion emits the unitchecker-style identity line cmd/go hashes
// into its vet action cache: tool name plus a digest of the executable,
// so a rebuilt trexlint invalidates cached vet results.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "%s version devel comments-and-options buildID=%x\n", filepath.Base(exe), h.Sum(nil))
	return 0
}

// jsonFinding is the stable -json schema; field names are contract (the
// CI problem matcher consumes them).
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed"`
}

// writeJSON renders findings (already sorted by the lint package) as one
// indented JSON array.
func writeJSON(w io.Writer, findings []lint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
			Allowed:  f.Allowed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// countActive returns the number of findings not covered by an allow
// directive — the exit-code currency of both modes.
func countActive(findings []lint.Finding) int {
	n := 0
	for _, f := range findings {
		if !f.Allowed {
			n++
		}
	}
	return n
}

// runStandalone loads the given patterns (default ./...) from the module
// in the current directory and prints findings to stdout.
func runStandalone(stdout, stderr io.Writer, patterns []string, asJSON bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "trexlint:", err)
		return 1
	}
	findings, err := lint.RunAll(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(stderr, "trexlint:", err)
		return 1
	}
	active := countActive(findings)
	if asJSON {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "trexlint:", err)
			return 1
		}
	} else {
		for _, f := range findings {
			if !f.Allowed {
				fmt.Fprintln(stdout, f)
			}
		}
	}
	if active > 0 {
		fmt.Fprintf(stderr, "trexlint: %d finding(s)\n", active)
		return 1
	}
	return 0
}

// unitConfig is the JSON compilation-unit description cmd/go writes for
// vet tools (the subset trexlint consumes).
type unitConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit under go vet. Findings go to
// stderr with exit 2, matching the vet diagnostic protocol.
func runUnit(stderr io.Writer, cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "trexlint:", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "trexlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// trexlint analyzers export no facts, but cmd/go insists the declared
	// output file exists before caching the unit's result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "trexlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := loader.CheckFiles(token.NewFileSet(), cfg.ImportPath, cfg.GoFiles, cfg.PackageFile, cfg.ImportMap, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "trexlint:", err)
		return 1
	}
	findings, err := lint.RunPackageAll(pkg, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(stderr, "trexlint:", err)
		return 1
	}
	active := countActive(findings)
	if asJSON {
		if err := writeJSON(stderr, findings); err != nil {
			fmt.Fprintln(stderr, "trexlint:", err)
			return 1
		}
	} else {
		for _, f := range findings {
			if !f.Allowed {
				fmt.Fprintln(stderr, f)
			}
		}
	}
	if active > 0 {
		return 2
	}
	return 0
}
