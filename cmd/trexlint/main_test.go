package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// badSrc carries a detmap violation in an in-scope package path.
const badSrc = `package exec

func Grid(m map[int]int, sink func(int)) {
	for k := range m {
		sink(k)
	}
}
`

func writeUnit(t *testing.T, cfg unitConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unit.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlagsProbe(t *testing.T) {
	if got := run([]string{"-flags"}); got != 0 {
		t.Fatalf("run(-flags) = %d, want 0", got)
	}
}

func TestRunUnitReportsFindings(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte(badSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeUnit(t, unitConfig{
		ImportPath: "unit/internal/exec",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	})
	if got := run([]string{cfg}); got != 2 {
		t.Errorf("run(unit with finding) = %d, want 2", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

func TestRunUnitVetxOnly(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte(badSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeUnit(t, unitConfig{
		ImportPath: "unit/internal/exec",
		GoFiles:    []string{src},
		VetxOnly:   true,
		VetxOutput: vetx,
	})
	if got := run([]string{cfg}); got != 0 {
		t.Errorf("run(VetxOnly unit) = %d, want 0 without analyzing", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

func TestRunUnitTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte("package exec\n\nfunc f() { undefined() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := writeUnit(t, unitConfig{
		ImportPath:                "unit/internal/exec",
		GoFiles:                   []string{src},
		SucceedOnTypecheckFailure: true,
	})
	if got := run([]string{cfg}); got != 0 {
		t.Errorf("run(SucceedOnTypecheckFailure) = %d, want 0", got)
	}
}
