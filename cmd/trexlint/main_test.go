package main

import (
	"bytes"
	"encoding/json"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// badSrc carries a detmap violation in an in-scope package path.
const badSrc = `package exec

func Grid(m map[int]int, sink func(int)) {
	for k := range m {
		sink(k)
	}
}
`

func writeUnit(t *testing.T, cfg unitConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unit.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlagsProbe(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := runTo(&stdout, &stderr, []string{"-flags"}); got != 0 {
		t.Fatalf("run(-flags) = %d, want 0", got)
	}
	// cmd/go parses the probe output as a JSON array of flag definitions;
	// -json must be declared so `go vet -vettool=trexlint -json` passes it
	// through.
	var defs []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(stdout.Bytes(), &defs); err != nil {
		t.Fatalf("-flags output is not a JSON array: %v\n%s", err, stdout.String())
	}
	found := false
	for _, d := range defs {
		if d.Name == "json" && d.Bool {
			found = true
		}
	}
	if !found {
		t.Errorf("-flags probe does not declare the json flag: %s", stdout.String())
	}
}

func TestRunUnitReportsFindings(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte(badSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeUnit(t, unitConfig{
		ImportPath: "unit/internal/exec",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	})
	if got := run([]string{cfg}); got != 2 {
		t.Errorf("run(unit with finding) = %d, want 2", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

func TestRunUnitVetxOnly(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte(badSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeUnit(t, unitConfig{
		ImportPath: "unit/internal/exec",
		GoFiles:    []string{src},
		VetxOnly:   true,
		VetxOutput: vetx,
	})
	if got := run([]string{cfg}); got != 0 {
		t.Errorf("run(VetxOnly unit) = %d, want 0 without analyzing", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

func TestRunUnitTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte("package exec\n\nfunc f() { undefined() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := writeUnit(t, unitConfig{
		ImportPath:                "unit/internal/exec",
		GoFiles:                   []string{src},
		SucceedOnTypecheckFailure: true,
	})
	if got := run([]string{cfg}); got != 0 {
		t.Errorf("run(SucceedOnTypecheckFailure) = %d, want 0", got)
	}
}

// allowedSrc is badSrc with the finding justified away.
const allowedSrc = `package exec

func Grid(m map[int]int, sink func(int)) {
	//lint:allow detmap sink is a commutative accumulator in this fixture
	for k := range m {
		sink(k)
	}
}
`

func TestRunUnitJSON(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte(badSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := writeUnit(t, unitConfig{
		ImportPath: "unit/internal/exec",
		GoFiles:    []string{src},
	})
	var stdout, stderr bytes.Buffer
	if got := runTo(&stdout, &stderr, []string{"-json", cfg}); got != 2 {
		t.Fatalf("run(-json unit with finding) = %d, want 2\nstderr: %s", got, stderr.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(stderr.Bytes(), &findings); err != nil {
		t.Fatalf("vet-mode -json output is not a JSON array: %v\n%s", err, stderr.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "detmap" || f.File != src || f.Line == 0 || f.Col == 0 || f.Message == "" || f.Allowed {
		t.Errorf("unexpected finding shape: %+v", f)
	}
}

func TestRunUnitJSONKeepsAllowed(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte(allowedSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := writeUnit(t, unitConfig{
		ImportPath: "unit/internal/exec",
		GoFiles:    []string{src},
	})
	var stdout, stderr bytes.Buffer
	if got := runTo(&stdout, &stderr, []string{"-json", cfg}); got != 0 {
		t.Fatalf("run(-json unit, allowed finding) = %d, want 0\nstderr: %s", got, stderr.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(stderr.Bytes(), &findings); err != nil {
		t.Fatalf("vet-mode -json output is not a JSON array: %v\n%s", err, stderr.String())
	}
	if len(findings) != 1 || !findings[0].Allowed {
		t.Fatalf("want exactly one allowed finding in the audit stream, got %+v", findings)
	}
}

func TestRunUnitPlainSuppressesAllowed(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte(allowedSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := writeUnit(t, unitConfig{
		ImportPath: "unit/internal/exec",
		GoFiles:    []string{src},
	})
	var stdout, stderr bytes.Buffer
	if got := runTo(&stdout, &stderr, []string{cfg}); got != 0 {
		t.Fatalf("run(unit, allowed finding) = %d, want 0\nstderr: %s", got, stderr.String())
	}
	if s := strings.TrimSpace(stderr.String()); s != "" {
		t.Errorf("plain vet mode printed suppressed findings: %s", s)
	}
}

// listEntry is the subset of `go list -export -deps -json` output the
// agreement test uses to hand-build a vet compilation unit.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	Module     *struct{ GoVersion string }
}

// buildRealUnit constructs the unitConfig cmd/go would write for a real
// repository package, from the same build graph the standalone loader
// consults.
func buildRealUnit(t *testing.T, pkgPath string) unitConfig {
	t.Helper()
	cmd := osexec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,ImportMap,Module", pkgPath)
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list %s: %v", pkgPath, err)
	}
	cfg := unitConfig{
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.Export != "" {
			cfg.PackageFile[e.ImportPath] = e.Export
		}
		if e.ImportPath == pkgPath {
			cfg.ImportPath = e.ImportPath
			for _, f := range e.GoFiles {
				cfg.GoFiles = append(cfg.GoFiles, filepath.Join(e.Dir, f))
			}
			for from, to := range e.ImportMap {
				cfg.ImportMap[from] = to
			}
			if e.Module != nil && e.Module.GoVersion != "" {
				cfg.GoVersion = "go" + e.Module.GoVersion
			}
		}
	}
	if cfg.ImportPath == "" {
		t.Fatalf("go list did not return %s", pkgPath)
	}
	return cfg
}

// TestStandaloneVettoolAgreement runs the same repository package through
// both modes with -json and requires identical findings: the CI
// lint-self-test contract.
func TestStandaloneVettoolAgreement(t *testing.T) {
	const pkg = "repro/internal/table"
	cfg := writeUnit(t, buildRealUnit(t, pkg))
	var unitOut, unitErr bytes.Buffer
	unitCode := runTo(&unitOut, &unitErr, []string{"-json", cfg})
	if unitCode != 0 && unitCode != 2 {
		t.Fatalf("vet mode failed: exit %d\n%s", unitCode, unitErr.String())
	}
	var unitFindings []jsonFinding
	if err := json.Unmarshal(unitErr.Bytes(), &unitFindings); err != nil {
		t.Fatalf("vet-mode JSON: %v\n%s", err, unitErr.String())
	}

	var saOut, saErr bytes.Buffer
	saCode := runTo(&saOut, &saErr, []string{"-json", pkg})
	if saCode != 0 && saCode != 1 {
		t.Fatalf("standalone failed: exit %d\n%s", saCode, saErr.String())
	}
	var saFindings []jsonFinding
	if err := json.Unmarshal(saOut.Bytes(), &saFindings); err != nil {
		t.Fatalf("standalone JSON: %v\n%s", err, saOut.String())
	}

	if len(unitFindings) != len(saFindings) {
		t.Fatalf("modes disagree: vet mode %d findings, standalone %d\nvet: %+v\nstandalone: %+v",
			len(unitFindings), len(saFindings), unitFindings, saFindings)
	}
	for i := range unitFindings {
		u, s := unitFindings[i], saFindings[i]
		if u.Analyzer != s.Analyzer || u.Line != s.Line || u.Col != s.Col || u.Message != s.Message || u.Allowed != s.Allowed {
			t.Errorf("finding %d disagrees:\nvet:        %+v\nstandalone: %+v", i, u, s)
		}
		if filepath.Base(u.File) != filepath.Base(s.File) {
			t.Errorf("finding %d file disagrees: %s vs %s", i, u.File, s.File)
		}
	}
	if (unitCode == 2) != (saCode == 1) {
		t.Errorf("exit codes disagree: vet %d, standalone %d", unitCode, saCode)
	}
}
