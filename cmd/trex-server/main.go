// Command trex-server runs the T-REx web demo: the three screens of the
// paper's Figure 3 (input, repair, explanation) backed by the JSON API of
// internal/server.
//
// Usage:
//
//	trex-server -addr :8080
//
// then open http://localhost:8080/. The page is pre-filled with the
// paper's La Liga example.
//
// SIGINT and SIGTERM both trigger a graceful drain: the listener stops
// accepting, in-flight requests finish (or are cancelled at the drain
// deadline), every live session is snapshotted to the spool directory
// when one is configured, and the process exits 0. A restart with the
// same -spool flag restores those sessions on their next request.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trex-server:", err)
		os.Exit(1)
	}
}

// run carries the whole lifecycle so every exit path flows through one
// error return — the listen-error path included — instead of scattering
// os.Exit calls that would skip deferred cleanup.
func run(args []string) error {
	fs := flag.NewFlagSet("trex-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "per-session engine parallelism (sampling fan-out and parallel repair passes); 0 = GOMAXPROCS")
	spool := fs.String("spool", "", "session spool directory; enables eviction and drain/restore survival")
	maxLive := fs.Int("max-live-sessions", 0, "in-memory session budget before LRU eviction to the spool; 0 = unlimited")
	maxInFlight := fs.Int("max-in-flight", 0, "concurrently executing explain/repair requests before 429; 0 = default")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request computation deadline for explain/repair; 0 = none")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New()
	srv.Workers = *workers
	srv.SpoolDir = *spool
	srv.MaxLiveSessions = *maxLive
	srv.MaxInFlight = *maxInFlight
	srv.RequestTimeout = *reqTimeout
	fmt.Printf("T-REx demo listening on %s\n", *addr)
	return srv.ListenAndServe(ctx, *addr)
}
