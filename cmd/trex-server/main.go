// Command trex-server runs the T-REx web demo: the three screens of the
// paper's Figure 3 (input, repair, explanation) backed by the JSON API of
// internal/server.
//
// Usage:
//
//	trex-server -addr :8080
//
// then open http://localhost:8080/. The page is pre-filled with the
// paper's La Liga example.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "per-session engine parallelism (sampling fan-out and parallel repair passes); 0 = GOMAXPROCS")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	srv := server.New()
	srv.Workers = *workers
	fmt.Printf("T-REx demo listening on %s\n", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "trex-server:", err)
		os.Exit(1)
	}
}
