package main

import (
	"bytes"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// startServer boots the built binary with the given extra flags and waits
// for the listener; the returned stop function force-kills it.
func startServer(t *testing.T, bin, addr string, extra ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	args := append([]string{"-addr", addr, "-workers", "2"}, extra...)
	cmd := exec.Command(bin, args...)
	var output bytes.Buffer
	cmd.Stdout = &output
	cmd.Stderr = &output
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 2 * time.Second}
	for i := 0; i < 100; i++ {
		if resp, err := client.Get("http://" + addr + "/api/algorithms"); err == nil {
			resp.Body.Close()
			return cmd, &output
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("server never came up:\n%s", output.String())
	return nil, nil
}

// stopTERM sends SIGTERM and asserts a clean exit within the drain window.
func stopTERM(t *testing.T, cmd *exec.Cmd, output *bytes.Buffer) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v\n%s", err, output.String())
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server did not exit after SIGTERM")
	}
}

type sessionDoc struct {
	ID    string `json:"id"`
	Table struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	} `json:"table"`
	DCs     []string `json:"dcs"`
	History []string `json:"history"`
}

// TestE2ESIGTERMDrainAndRestore is the kill -TERM acceptance test: a
// loaded server receives SIGTERM, exits 0 after snapshotting its sessions
// to the spool, and a restarted server answers for those sessions
// bit-identically — table, constraints and history all survive.
func TestE2ESIGTERMDrainAndRestore(t *testing.T) {
	bin := buildTrexServer(t)
	addr := freeAddr(t)
	spool := t.TempDir()
	client := &http.Client{Timeout: 10 * time.Second}

	cmd, output := startServer(t, bin, addr, "-spool", spool)
	defer cmd.Process.Kill()
	base := "http://" + addr

	// Load it: a session with an edit and a computed explanation.
	csv, dcs := laligaCSV(t)
	var created sessionDoc
	postJSON(t, client, base+"/api/session", map[string]string{
		"csv": csv, "dcs": dcs, "algorithm": "algorithm1",
	}, &created)
	var afterEdit sessionDoc
	postJSON(t, client, base+"/api/session/"+created.ID+"/edit", map[string]string{
		"setCell": "t1[City]", "value": "Sevilla",
	}, &afterEdit)
	if len(afterEdit.History) == 0 {
		t.Fatalf("edit left no history: %+v", afterEdit)
	}
	var exp struct {
		Entries []struct{ Name string } `json:"entries"`
	}
	postJSON(t, client, base+"/api/session/"+created.ID+"/explain", map[string]any{
		"cell": "t5[Country]", "kind": "constraints",
	}, &exp)
	if len(exp.Entries) == 0 {
		t.Fatal("no explanation before drain")
	}

	stopTERM(t, cmd, output)
	if _, err := os.Stat(filepath.Join(spool, created.ID+".json")); err != nil {
		t.Fatalf("drain left no spool snapshot: %v\n%s", err, output.String())
	}

	// Restart on the same spool: the session must come back bit-identically.
	cmd2, output2 := startServer(t, bin, addr, "-spool", spool)
	defer cmd2.Process.Kill()
	resp, err := client.Get(base + "/api/session/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	var restored sessionDoc
	decodeJSON(t, resp, &restored)
	if !reflect.DeepEqual(restored.Table, afterEdit.Table) {
		t.Fatalf("restored table differs:\n%+v\nvs\n%+v", restored.Table, afterEdit.Table)
	}
	if !reflect.DeepEqual(restored.DCs, afterEdit.DCs) {
		t.Fatalf("restored DCs differ: %v vs %v", restored.DCs, afterEdit.DCs)
	}
	if !reflect.DeepEqual(restored.History, afterEdit.History) {
		t.Fatalf("restored history differs: %v vs %v", restored.History, afterEdit.History)
	}

	// The restored session still computes: same explanation ranking.
	var exp2 struct {
		Entries []struct{ Name string } `json:"entries"`
	}
	postJSON(t, client, base+"/api/session/"+created.ID+"/explain", map[string]any{
		"cell": "t5[Country]", "kind": "constraints",
	}, &exp2)
	if len(exp2.Entries) == 0 || exp2.Entries[0].Name != exp.Entries[0].Name {
		t.Fatalf("restored explanation differs: %+v vs %+v", exp2.Entries, exp.Entries)
	}

	// New sessions must not collide with restored IDs.
	var fresh sessionDoc
	postJSON(t, client, base+"/api/session", map[string]string{
		"csv": csv, "dcs": dcs, "algorithm": "algorithm1",
	}, &fresh)
	if fresh.ID == created.ID {
		t.Fatalf("restarted server reissued session id %s", fresh.ID)
	}

	stopTERM(t, cmd2, output2)
}
