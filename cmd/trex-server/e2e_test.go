package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/data"
)

// buildTrexServer compiles the trex-server binary into a temp dir.
func buildTrexServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "trex-server")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building trex-server: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a localhost port and releases it for the server under
// test (the usual probe-then-bind race is acceptable for a test).
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// laligaCSV renders the paper's dirty table as the CSV the create-session
// API accepts.
func laligaCSV(t *testing.T) (csv, dcs string) {
	t.Helper()
	ll := data.NewLaLiga()
	var buf bytes.Buffer
	if err := ll.Dirty.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, c := range ll.DCs {
		lines = append(lines, c.String())
	}
	return buf.String(), strings.Join(lines, "\n")
}

// TestE2ETrexServerLaLiga boots the real binary, drives the JSON API
// through the paper's demo flow — create session, inspect violations,
// repair, explain — and checks the process shuts down cleanly on SIGINT.
func TestE2ETrexServerLaLiga(t *testing.T) {
	bin := buildTrexServer(t)
	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr, "-workers", "2")
	var output bytes.Buffer
	cmd.Stdout = &output
	cmd.Stderr = &output
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}

	// Wait for the listener.
	var resp *http.Response
	var err error
	for i := 0; i < 100; i++ {
		resp, err = client.Get(base + "/api/algorithms")
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		// Reap the child before reading the shared buffer: exec.Cmd copies
		// stdout/stderr from a background goroutine until Wait returns.
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("server never came up: %v\n%s", err, output.String())
	}
	var algs struct {
		Algorithms []string `json:"algorithms"`
	}
	decodeJSON(t, resp, &algs)
	if len(algs.Algorithms) == 0 {
		t.Fatal("no algorithms reported")
	}

	// Create the La Liga session.
	csv, dcs := laligaCSV(t)
	var sess struct {
		ID    string `json:"id"`
		Table struct {
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"table"`
		DCs []string `json:"dcs"`
	}
	postJSON(t, client, base+"/api/session", map[string]string{
		"csv": csv, "dcs": dcs, "algorithm": "algorithm1",
	}, &sess)
	if sess.ID == "" || len(sess.Table.Rows) == 0 || len(sess.DCs) == 0 {
		t.Fatalf("malformed session response: %+v", sess)
	}

	// The dirty table must be inconsistent before the repair.
	resp, err = client.Get(base + "/api/session/" + sess.ID + "/violations")
	if err != nil {
		t.Fatal(err)
	}
	var viol struct {
		Consistent bool `json:"consistent"`
		Violations []struct {
			Constraint string `json:"constraint"`
		} `json:"violations"`
	}
	decodeJSON(t, resp, &viol)
	if viol.Consistent || len(viol.Violations) == 0 {
		t.Fatalf("dirty table reported consistent: %+v", viol)
	}

	// Repair: the paper's headline fix must appear.
	var rep struct {
		Repaired []string `json:"repaired"`
	}
	postJSON(t, client, base+"/api/session/"+sess.ID+"/repair", map[string]string{}, &rep)
	if !contains(rep.Repaired, "t5[Country]") {
		t.Fatalf("repair response missing t5[Country]: %+v", rep)
	}

	// Explain: constraint ranking with C3 on top (Figure 1).
	var exp struct {
		Kind    string `json:"kind"`
		Entries []struct {
			Name    string  `json:"Name"`
			Shapley float64 `json:"Shapley"`
		} `json:"entries"`
	}
	postJSON(t, client, base+"/api/session/"+sess.ID+"/explain", map[string]any{
		"cell": "t5[Country]", "kind": "constraints",
	}, &exp)
	if len(exp.Entries) == 0 || exp.Entries[0].Name != "C3" {
		t.Fatalf("constraint explanation wrong: %+v", exp)
	}

	// SIGINT must shut the process down cleanly (exit 0).
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGINT: %v\n%s", err, output.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGINT")
	}
	if !strings.Contains(output.String(), "listening on") {
		t.Errorf("startup banner missing:\n%s", output.String())
	}
}

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, client *http.Client, url string, body any, v any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, v)
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestE2ETrexServerBadAddr: an unbindable address must exit non-zero with
// an error on stderr.
func TestE2ETrexServerBadAddr(t *testing.T) {
	bin := buildTrexServer(t)
	cmd := exec.Command(bin, "-addr", "256.256.256.256:1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("err = %v, want non-zero exit\n%s", err, out)
	}
	if ee.ExitCode() != 1 || !strings.Contains(string(out), "trex-server:") {
		t.Fatalf("exit %d, output:\n%s", ee.ExitCode(), out)
	}
}
