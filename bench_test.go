// Benchmarks, one per experiment of DESIGN.md §4 (plus component micro-
// benchmarks in the internal packages). Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

func mustExplainer(b *testing.B, alg repair.Algorithm) (*core.Explainer, *data.LaLiga) {
	b.Helper()
	ll := data.NewLaLiga()
	exp, err := core.NewExplainer(alg, ll.DCs, ll.Dirty)
	if err != nil {
		b.Fatal(err)
	}
	return exp, ll
}

// BenchmarkFigure1ConstraintShapley measures the full exact constraint
// explanation of Figure 1 (E1): 2^4 memoized black-box runs + ranking.
func BenchmarkFigure1ConstraintShapley(b *testing.B) {
	exp, ll := mustExplainer(b, repair.NewAlgorithm1())
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.ExplainConstraints(ctx, ll.CellOfInterest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Repair measures one full repair of the paper's table (E2).
func BenchmarkFigure2Repair(b *testing.B) {
	ll := data.NewLaLiga()
	alg := repair.NewAlgorithm1()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Repair(ctx, ll.DCs, ll.Dirty); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample24CellShapley measures the sampled cell explanation of
// Example 2.4 (E5) at a fixed budget of 64 permutations over 35 players.
func BenchmarkExample24CellShapley(b *testing.B) {
	exp, ll := mustExplainer(b, repair.NewAlgorithm1())
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.ExplainCells(ctx, ll.CellOfInterest, core.CellExplainOptions{
			Samples: 64, Seed: int64(i), Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplingConvergence measures the m=1024 sampling pass used in
// the convergence experiment (E6) on the 4-player constraint game.
func BenchmarkSamplingConvergence(b *testing.B) {
	exp, ll := mustExplainer(b, repair.NewAlgorithm1())
	ctx := context.Background()
	target, _, err := exp.Target(ctx, ll.CellOfInterest)
	if err != nil {
		b.Fatal(err)
	}
	game := shapley.NewCached(exp.NewConstraintGame(ll.CellOfInterest, target))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := shapley.SampleAll(ctx, shapley.Deterministic{G: game}, shapley.Options{Samples: 1024, Seed: int64(i), Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDemoDCDebug measures demo scenario 1 (E7): explain, remove the
// top constraint, re-repair.
func BenchmarkDemoDCDebug(b *testing.B) {
	ll := data.NewLaLiga()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess, err := core.NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
		if err != nil {
			b.Fatal(err)
		}
		report, err := sess.Explainer().ExplainConstraints(ctx, ll.CellOfInterest)
		if err != nil {
			b.Fatal(err)
		}
		top, _ := report.Top()
		if err := sess.RemoveDC(top.Name); err != nil {
			b.Fatal(err)
		}
		if _, _, err := sess.Repair(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDemoCellDebug measures demo scenario 2 (E8) at a reduced
// sampling budget.
func BenchmarkDemoCellDebug(b *testing.B) {
	tbl := table.MustFromStrings(
		[]string{"Team", "City", "Country", "League", "Year", "Place"},
		[][]string{
			{"Espanyol", "Barcelona", "España", "La Liga", "2019", "1"},
			{"Getafe", "Getafe", "España", "La Liga", "2019", "2"},
			{"Levante", "Valencia", "Spain", "La Liga", "2019", "3"},
			{"Eibar", "Eibar", "Spein", "La Liga", "2019", "4"},
		})
	cs, err := dc.ParseSet("C3: !(t1.League = t2.League & t1.Country != t2.Country)")
	if err != nil {
		b.Fatal(err)
	}
	exp, err := core.NewExplainer(repair.NewAlgorithm1(), cs, tbl)
	if err != nil {
		b.Fatal(err)
	}
	cell := table.CellRef{Row: 3, Col: 2}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.ExplainCells(ctx, cell, core.CellExplainOptions{Samples: 64, Seed: int64(i), Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// toyCellGame builds the n-row FD toy game used by E6/E9.
func toyCellGame(b *testing.B, rows int) *core.CellGame {
	b.Helper()
	grid := make([][]string, rows)
	for i := range grid {
		grid[i] = []string{"x", "1"}
	}
	grid[1][1] = "2"
	tbl := table.MustFromStrings([]string{"A", "B"}, grid)
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		b.Fatal(err)
	}
	exp, err := core.NewExplainer(repair.NewRuleRepair(cs), cs, tbl)
	if err != nil {
		b.Fatal(err)
	}
	cell := table.CellRef{Row: 1, Col: 1}
	target, _, err := exp.Target(context.Background(), cell)
	if err != nil {
		b.Fatal(err)
	}
	return exp.NewCellGame(cell, target, core.ReplaceWithNull)
}

// BenchmarkExactCellShapley benchmarks exact enumeration at three player
// counts (E9's exponential curve).
func BenchmarkExactCellShapley(b *testing.B) {
	for _, rows := range []int{4, 6, 8} {
		game := toyCellGame(b, rows)
		b.Run("players="+itoa(game.NumPlayers()), func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.ExactSubsets(ctx, game); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSampledCellShapley benchmarks the sampler on the same games at
// a fixed budget (E9's flat curve).
func BenchmarkSampledCellShapley(b *testing.B) {
	for _, rows := range []int{4, 6, 8} {
		game := toyCellGame(b, rows)
		b.Run("players="+itoa(game.NumPlayers()), func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.SampleAll(ctx, shapley.Deterministic{G: game}, shapley.Options{Samples: 128, Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoalitionCache contrasts exact constraint Shapley with and
// without the coalition cache (E10).
func BenchmarkCoalitionCache(b *testing.B) {
	exp, ll := mustExplainer(b, repair.NewAlgorithm1())
	ctx := context.Background()
	target, _, err := exp.Target(ctx, ll.CellOfInterest)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("without", func(b *testing.B) {
		game := exp.NewConstraintGame(ll.CellOfInterest, target)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for p := 0; p < game.NumPlayers(); p++ {
				if _, err := shapley.ExactOne(ctx, game, p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("with", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			game := shapley.NewCached(exp.NewConstraintGame(ll.CellOfInterest, target))
			for p := 0; p < game.NumPlayers(); p++ {
				if _, err := shapley.ExactOne(ctx, game, p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkScaleRows measures one cell explanation at growing table sizes
// with a fixed small budget (E11).
func BenchmarkScaleRows(b *testing.B) {
	for _, rows := range []int{6, 12, 24, 48} {
		teams := rows / 2
		clean := data.GenerateSoccer(data.SoccerConfig{Leagues: 2, TeamsPerLeague: teams, Seed: 11})
		dirty := clean.Clone()
		cell := table.CellRef{Row: teams, Col: clean.Schema().MustIndex("Country")}
		dirty.SetRef(cell, table.String("Inglaterra"))
		exp, err := core.NewExplainer(repair.NewAlgorithm1(), data.SoccerDCs(), dirty)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("rows="+itoa(rows), func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exp.ExplainCells(ctx, cell, core.CellExplainOptions{Samples: 8, Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHoloSimExplain measures the constraint explanation against the
// HoloClean-style black box (E12): the explainer's cost is dominated by
// whichever repairer it queries.
func BenchmarkHoloSimExplain(b *testing.B) {
	exp, ll := mustExplainer(b, repair.NewHoloSim(1))
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.ExplainConstraints(ctx, ll.CellOfInterest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepairAlgorithms compares the four black boxes on the same
// input (E12 companion).
func BenchmarkRepairAlgorithms(b *testing.B) {
	ll := data.NewLaLiga()
	ctx := context.Background()
	for _, alg := range repair.All(1) {
		b.Run(alg.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := alg.Repair(ctx, ll.DCs, ll.Dirty); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// evalHarnessGame is bench.EvalHarnessGame over the non-allocating
// passthrough black box: the A/B harness that isolates coalition
// evaluation (masking, cloning, undo) from repairer cost.
func evalHarnessGame(b *testing.B, rows int) *core.CellGame {
	b.Helper()
	game, err := bench.EvalHarnessGame(rows, repair.Passthrough{})
	if err != nil {
		b.Fatal(err)
	}
	return game
}

// BenchmarkCellGameEval is the tentpole A/B: one coalition evaluation
// through the seed clone-per-evaluation path versus the pooled scratch
// path, black-box cost excluded. The scratch path must be ≥3x faster with
// ~0 allocs/op.
func BenchmarkCellGameEval(b *testing.B) {
	ctx := context.Background()
	for _, rows := range []int{8, 32, 128} {
		game := evalHarnessGame(b, rows)
		coalition := make([]bool, game.NumPlayers())
		for i := range coalition {
			coalition[i] = i%2 == 0
		}
		b.Run("clone/rows="+itoa(rows), func(b *testing.B) {
			legacy := game.CloneEval().(shapley.Game)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := legacy.Value(ctx, coalition); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("scratch/rows="+itoa(rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := game.Value(ctx, coalition); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCellGameSampling measures a full SampleAll pass (the production
// entry point) under the three strategies: the seed clone path, the pooled
// scratch path with full masks, and the incremental prefix walk.
func BenchmarkCellGameSampling(b *testing.B) {
	ctx := context.Background()
	game := evalHarnessGame(b, 32)
	opts := shapley.Options{Samples: 8, Workers: 1}
	b.Run("clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts.Seed = int64(i)
			if _, err := shapley.SampleAll(ctx, game.CloneEval(), opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts.Seed = int64(i)
			if _, err := shapley.SampleAll(ctx, shapley.Deterministic{G: game}, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("walk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts.Seed = int64(i)
			if _, err := shapley.SampleAll(ctx, game, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
