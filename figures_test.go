package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
)

// runExperiment executes one experiment of DESIGN.md §4 end to end and
// fails the test on any paper-vs-measured MISMATCH line. The bench package
// is the single source of truth for what each experiment checks; these
// tests guarantee the whole suite regenerates cleanly from `go test`.
func runExperiment(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := bench.Run(&buf, id); err != nil {
		t.Fatalf("experiment %s: %v\n%s", id, err, buf.String())
	}
	out := buf.String()
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("experiment %s reported mismatches:\n%s", id, out)
	}
	return out
}

func TestFigure1(t *testing.T) {
	out := runExperiment(t, "fig1")
	for _, want := range []string{"C1", "0.166667", "0.666667", "top DC = C3"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
}

func TestFigure2(t *testing.T) {
	out := runExperiment(t, "fig2")
	for _, want := range []string{"t5[City]: Capital -> Madrid", "t5[Country]: España -> Spain"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 output missing %q", want)
		}
	}
}

func TestExample22(t *testing.T) { runExperiment(t, "ex22") }

func TestExample23(t *testing.T) {
	out := runExperiment(t, "ex23")
	if !strings.Contains(out, "repairing subsets of {C1,C2,C3} (paper: 5): 5") {
		t.Errorf("ex23 subset count wrong:\n%s", out)
	}
}

func TestExample24(t *testing.T) {
	out := runExperiment(t, "ex24")
	if !strings.Contains(out, "measured top = t5[League]") {
		t.Errorf("ex24 top cell wrong:\n%s", out)
	}
}

func TestSamplingConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence sweep is slow")
	}
	runExperiment(t, "convergence")
}

func TestDemoScenarioDCDebug(t *testing.T) { runExperiment(t, "dcdebug") }

func TestDemoScenarioCellDebug(t *testing.T) { runExperiment(t, "celldebug") }

func TestCoalitionCacheExperiment(t *testing.T) {
	out := runExperiment(t, "cache")
	if !strings.Contains(out, "call reduction: 4.0x") {
		t.Errorf("cache reduction wrong:\n%s", out)
	}
}

func TestBlackBoxAgnosticExperiment(t *testing.T) { runExperiment(t, "agnostic") }

func TestDiscoverExperiment(t *testing.T) { runExperiment(t, "discover") }

func TestInteractionExperiment(t *testing.T) {
	out := runExperiment(t, "interaction")
	if !strings.Contains(out, "I(C1,C2) = +0.5000 (complements)") {
		t.Errorf("interaction output wrong:\n%s", out)
	}
}

func TestGroupsExperiment(t *testing.T) {
	out := runExperiment(t, "groups")
	if !strings.Contains(out, "row t5") {
		t.Errorf("groups output wrong:\n%s", out)
	}
}

func TestVarianceExperiment(t *testing.T) { runExperiment(t, "variance") }

func TestWhyNotExperiment(t *testing.T) {
	out := runExperiment(t, "whynot")
	if !strings.Contains(out, "minimal witness [C3]") {
		t.Errorf("whynot output wrong:\n%s", out)
	}
}

func TestHospitalExperiment(t *testing.T) { runExperiment(t, "hospital") }

func TestExactVsSamplingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("exact enumeration sweep is slow")
	}
	runExperiment(t, "exactvs")
}

func TestScaleExperimentSmoke(t *testing.T) {
	// The full scale sweep runs ~40s and belongs to trex-bench; the test
	// suite only checks the machinery on the smallest instance by running
	// the registry lookup paths.
	if testing.Short() {
		t.Skip("scale sweep is slow")
	}
	ids := bench.IDs()
	found := false
	for _, id := range ids {
		if id == "scale" {
			found = true
		}
	}
	if !found {
		t.Fatal("scale experiment missing from registry")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "ex22", "ex23", "ex24", "convergence",
		"dcdebug", "celldebug", "exactvs", "cache", "scale", "agnostic",
		"interaction", "groups", "variance", "whynot", "discover", "hospital"}
	got := bench.IDs()
	if len(got) != len(want) {
		t.Fatalf("registry = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
		if bench.Describe(got[i]) == "(unknown experiment)" {
			t.Errorf("no description for %s", got[i])
		}
	}
	var buf bytes.Buffer
	if err := bench.Run(&buf, "nope"); err == nil {
		t.Error("unknown experiment must error")
	}
}
