package dc

import (
	"fmt"
	"testing"

	"repro/internal/table"
)

// benchTable builds an n-row two-league soccer-like table with a sprinkle
// of violations.
func benchTable(n int) *table.Table {
	grid := make([][]string, n)
	for i := range grid {
		league := fmt.Sprintf("L%d", i%2)
		country := fmt.Sprintf("Country%d", i%2)
		if i%17 == 0 {
			country = "Dirty"
		}
		grid[i] = []string{fmt.Sprintf("Team%d", i), fmt.Sprintf("City%d", i), country, league}
	}
	return table.MustFromStrings([]string{"Team", "City", "Country", "League"}, grid)
}

func BenchmarkViolationsNaive(b *testing.B) {
	c := MustParse("!(t1.League = t2.League & t1.Country != t2.Country)")
	for _, n := range []int{32, 128, 512} {
		tbl := benchTable(n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Violations(tbl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkViolationsIndexed(b *testing.B) {
	c := MustParse("!(t1.Team = t2.Team & t1.City != t2.City)")
	for _, n := range []int{32, 128, 512} {
		tbl := benchTable(n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.ViolationsIndexed(tbl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBucketScanKernelVsInterpreted isolates the pair-check inner
// loop on one shared bucket list: the compiled columnar kernel against the
// interpreted SatisfiedPair, same pairs, same table.
func BenchmarkBucketScanKernelVsInterpreted(b *testing.B) {
	c := MustParse("!(t1.League = t2.League & t1.Country != t2.Country)")
	tbl := benchTable(512)
	rows := make([]int, 0, 256)
	for i := 0; i < tbl.NumRows(); i += 2 {
		rows = append(rows, i) // every even row: one league's bucket
	}
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hits := 0
			for _, r := range rows {
				for _, s := range rows {
					if r == s {
						continue
					}
					sat, err := c.SatisfiedPair(tbl, r, s)
					if err != nil {
						b.Fatal(err)
					}
					if sat {
						hits++
					}
				}
			}
		}
	})
	b.Run("kernel", func(b *testing.B) {
		kern, err := compileKernel(c, tbl.Schema())
		if err != nil {
			b.Fatal(err)
		}
		alive := make([]bool, len(rows))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hits := 0
			for n, r := range rows {
				for m := range alive {
					alive[m] = m != n
				}
				kern.Filter(tbl, 0, r, rows, alive)
				for _, a := range alive {
					if a {
						hits++
					}
				}
			}
		}
	})
}

// BenchmarkLiveViolationEdit measures the per-edit steady state of the
// live set against re-scanning every intra-bucket pair per query.
func BenchmarkLiveViolationEdit(b *testing.B) {
	c := MustParse("!(t1.League = t2.League & t1.Country != t2.Country)")
	tbl := benchTable(512)
	countryCol := tbl.Schema().MustIndex("Country")
	vals := [2]table.Value{table.String("Country0"), table.String("Flip")}
	b.Run("scan-cache", func(b *testing.B) {
		ix := NewScanIndex()
		if _, err := c.ViolationsCached(tbl, ix); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tbl.Set(3, countryCol, vals[i%2])
			if _, err := c.ViolationsCached(tbl, ix); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("live", func(b *testing.B) {
		live := NewLiveViolationSet()
		if _, err := live.Violations(c, tbl); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tbl.Set(3, countryCol, vals[i%2])
			if _, err := live.Violations(c, tbl); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParse(b *testing.B) {
	const src = "C4: !(t1.Team != t2.Team & t1.Year = t2.Year & t1.League = t2.League & t1.Place = t2.Place)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViolatesRow(b *testing.B) {
	c := MustParse("!(t1.League = t2.League & t1.Country != t2.Country)")
	tbl := benchTable(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.ViolatesRow(tbl, i%256); err != nil {
			b.Fatal(err)
		}
	}
}
