package dc

import (
	"fmt"
	"testing"

	"repro/internal/table"
)

// benchTable builds an n-row two-league soccer-like table with a sprinkle
// of violations.
func benchTable(n int) *table.Table {
	grid := make([][]string, n)
	for i := range grid {
		league := fmt.Sprintf("L%d", i%2)
		country := fmt.Sprintf("Country%d", i%2)
		if i%17 == 0 {
			country = "Dirty"
		}
		grid[i] = []string{fmt.Sprintf("Team%d", i), fmt.Sprintf("City%d", i), country, league}
	}
	return table.MustFromStrings([]string{"Team", "City", "Country", "League"}, grid)
}

func BenchmarkViolationsNaive(b *testing.B) {
	c := MustParse("!(t1.League = t2.League & t1.Country != t2.Country)")
	for _, n := range []int{32, 128, 512} {
		tbl := benchTable(n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Violations(tbl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkViolationsIndexed(b *testing.B) {
	c := MustParse("!(t1.Team = t2.Team & t1.City != t2.City)")
	for _, n := range []int{32, 128, 512} {
		tbl := benchTable(n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.ViolationsIndexed(tbl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParse(b *testing.B) {
	const src = "C4: !(t1.Team != t2.Team & t1.Year = t2.Year & t1.League = t2.League & t1.Place = t2.Place)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViolatesRow(b *testing.B) {
	c := MustParse("!(t1.League = t2.League & t1.Country != t2.Country)")
	tbl := benchTable(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.ViolatesRow(tbl, i%256); err != nil {
			b.Fatal(err)
		}
	}
}
