package dc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// assertLiveMatchesRescan compares every constraint's live list against a
// full from-scratch rescan (both the interpreted naive scan and the
// indexed scan), bit for bit.
func assertLiveMatchesRescan(t *testing.T, label string, cs []*Constraint, tbl *table.Table, live *LiveViolationSet) {
	t.Helper()
	for _, c := range cs {
		got, err := live.Violations(c, tbl)
		if err != nil {
			t.Fatalf("%s/%s: live: %v", label, c.ID, err)
		}
		want, err := c.Violations(tbl)
		if err != nil {
			t.Fatalf("%s/%s: rescan: %v", label, c.ID, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s/%s: live has %d pairs, rescan %d\nlive: %v\nrescan: %v",
				label, c.ID, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i].Row1 != want[i].Row1 || got[i].Row2 != want[i].Row2 || got[i].Constraint != c {
				t.Fatalf("%s/%s: pair %d: live (%d,%d), rescan (%d,%d)",
					label, c.ID, i, got[i].Row1, got[i].Row2, want[i].Row1, want[i].Row2)
			}
		}
		// Append must agree with Violations and leave the prefix alone.
		buf := []Violation{{Constraint: c, Row1: -1, Row2: -1}}
		buf, err = live.Append(c, tbl, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != len(want)+1 || buf[0].Row1 != -1 {
			t.Fatalf("%s/%s: Append returned %d pairs (want %d) or clobbered the prefix", label, c.ID, len(buf)-1, len(want))
		}
	}
}

// liveConstraints mixes FD-shaped, multi-key, keyless, order-comparison
// and single-tuple constraints so every maintenance path runs.
func liveConstraints(t *testing.T) []*Constraint {
	t.Helper()
	cs, err := ParseSet(`
C1: !(t1.Team = t2.Team & t1.City != t2.City)
C2: !(t1.Team = t2.Team & t1.Year = t2.Year & t1.Country != t2.Country)
C3: !(t1.City != t2.City & t1.Country != t2.Country & t1.Team != t2.Team & t1.Year != t2.Year)
C4: !(t1.Team = t2.Team & t1.Year > t2.Year)
C5: !(t1.Year < 2015)
`)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestLiveViolationSetRandomEdits is the tentpole golden test: under
// randomized single-cell edit sequences — including NaN, ±0.0, nulls and
// kind changes — the delta-maintained lists must stay bit-identical to
// full rescans.
func TestLiveViolationSetRandomEdits(t *testing.T) {
	tbl := deltaTable(t, 24, 21)
	cs := liveConstraints(t)
	live := NewLiveViolationSet()
	live.MinRows = 1 // force materialized lists despite the small table
	assertLiveMatchesRescan(t, "initial", cs, tbl, live)
	rng := rand.New(rand.NewSource(22))
	values := []table.Value{
		table.String("team0"), table.String("team1"), table.String("city0"),
		table.String("country9"), table.Null(), table.Int(2016), table.String("2016"),
		table.Int(2014), table.Float(2016.0), table.Float(math.NaN()),
		table.Float(0.0), table.Float(math.Copysign(0, -1)),
	}
	for step := 0; step < 250; step++ {
		tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()), values[rng.Intn(len(values))])
		assertLiveMatchesRescan(t, fmt.Sprintf("step %d", step), cs, tbl, live)
	}
}

// TestLiveViolationSetBatchedEdits applies many edits between queries —
// repeated edits to one cell, edits that move a row out of and back into
// its bucket — still within the log window.
func TestLiveViolationSetBatchedEdits(t *testing.T) {
	tbl := deltaTable(t, 16, 23)
	cs := liveConstraints(t)
	live := NewLiveViolationSet()
	live.MinRows = 1 // force materialized lists despite the small table
	assertLiveMatchesRescan(t, "initial", cs, tbl, live)
	rng := rand.New(rand.NewSource(24))
	for round := 0; round < 25; round++ {
		row := rng.Intn(tbl.NumRows())
		col := rng.Intn(tbl.NumCols())
		was := tbl.Get(row, col)
		for k := 0; k < 20; k++ {
			switch rng.Intn(3) {
			case 0:
				// Out and back into the same bucket.
				tbl.Set(row, col, table.String("elsewhere"))
				tbl.Set(row, col, was)
			case 1:
				// Re-edit the same cell repeatedly.
				tbl.Set(row, col, table.String(fmt.Sprintf("v%d", rng.Intn(4))))
			default:
				tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()),
					table.String(fmt.Sprintf("v%d", rng.Intn(4))))
			}
		}
		assertLiveMatchesRescan(t, fmt.Sprintf("round %d", round), cs, tbl, live)
	}
}

// TestLiveViolationSetOverrunAndStructure forces log overrun and
// structural invalidation: the set must fall back to full re-derivation,
// never a partial delta.
func TestLiveViolationSetOverrunAndStructure(t *testing.T) {
	tbl := deltaTable(t, 12, 25)
	cs := liveConstraints(t)
	live := NewLiveViolationSet()
	live.MinRows = 1 // force materialized lists despite the small table
	assertLiveMatchesRescan(t, "initial", cs, tbl, live)
	rng := rand.New(rand.NewSource(26))
	for k := 0; k < 2000; k++ { // far beyond the edit-log window
		tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()),
			table.String(fmt.Sprintf("w%d", rng.Intn(4))))
	}
	assertLiveMatchesRescan(t, "after overrun", cs, tbl, live)
	row := make([]table.Value, tbl.NumCols())
	for j := range row {
		row[j] = tbl.Get(0, j)
	}
	if err := tbl.Append(row); err != nil {
		t.Fatal(err)
	}
	assertLiveMatchesRescan(t, "after append", cs, tbl, live)
	tbl.Set(tbl.NumRows()-1, 1, table.String("cityX"))
	assertLiveMatchesRescan(t, "edit after append", cs, tbl, live)
}

// TestLiveViolationSetTableSwitch re-points one pooled set across work
// tables and through a shape-changing CopyFrom, the ScratchRepairer
// workload.
func TestLiveViolationSetTableSwitch(t *testing.T) {
	a := deltaTable(t, 10, 27)
	b := deltaTable(t, 14, 28)
	cs := liveConstraints(t)
	live := NewLiveViolationSet()
	live.MinRows = 1 // force materialized lists despite the small tables
	for round := 0; round < 4; round++ {
		assertLiveMatchesRescan(t, "table a", cs, a, live)
		assertLiveMatchesRescan(t, "table b", cs, b, live)
		a.Set(round, 0, table.String("teamZ"))
	}
	work := a.Clone()
	for round := 0; round < 6; round++ {
		src := a
		if round%2 == 1 {
			src = b
		}
		work.CopyFrom(src)
		assertLiveMatchesRescan(t, fmt.Sprintf("refresh %d", round), cs, work, live)
		work.Set(round, 2, table.String("countryR"))
		assertLiveMatchesRescan(t, fmt.Sprintf("mutate %d", round), cs, work, live)
	}
}

// TestLiveViolationSetBypassSmallTables runs a default-threshold set on a
// small table: queries route through the kernel-accelerated ScanIndex
// instead of materialized lists and must still match full rescans exactly.
func TestLiveViolationSetBypassSmallTables(t *testing.T) {
	tbl := deltaTable(t, 20, 33)
	cs := liveConstraints(t)
	live := NewLiveViolationSet()
	if !live.bypass(tbl) {
		t.Fatalf("a %d-row table must sit below the default threshold", tbl.NumRows())
	}
	assertLiveMatchesRescan(t, "initial", cs, tbl, live)
	rng := rand.New(rand.NewSource(34))
	for step := 0; step < 40; step++ {
		tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()),
			table.String(fmt.Sprintf("v%d", rng.Intn(4))))
		assertLiveMatchesRescan(t, fmt.Sprintf("step %d", step), cs, tbl, live)
	}
}

// bigDeltaTable is deltaTable with enough key diversity that a
// liveParallelRows-sized table has many small buckets, not four huge ones.
func bigDeltaTable(t *testing.T, rows int, seed int64) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	grid := make([][]string, rows)
	for i := range grid {
		grid[i] = []string{
			fmt.Sprintf("team%d", rng.Intn(rows/8)),
			fmt.Sprintf("city%d", rng.Intn(6)),
			fmt.Sprintf("country%d", rng.Intn(4)),
			fmt.Sprintf("%d", 2010+rng.Intn(8)),
		}
	}
	return table.MustFromStrings([]string{"Team", "City", "Country", "Year"}, grid)
}

// TestLiveViolationSetParallelDerive checks that the worker-pool full
// derivation on a large table matches both the serial derivation and a
// full indexed rescan.
func TestLiveViolationSetParallelDerive(t *testing.T) {
	tbl := bigDeltaTable(t, liveParallelRows+500, 29)
	cs := liveConstraints(t)[:2] // FD-shaped ones; keyless would be O(n²)
	parallel := NewLiveViolationSet()
	serial := NewLiveViolationSet()
	serial.Workers = 1
	for _, c := range cs {
		want, err := c.ViolationsCached(tbl, NewScanIndex())
		if err != nil {
			t.Fatal(err)
		}
		gotP, err := parallel.Violations(c, tbl)
		if err != nil {
			t.Fatal(err)
		}
		gotS, err := serial.Violations(c, tbl)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotP) != len(want) || len(gotS) != len(want) {
			t.Fatalf("%s: parallel %d, serial %d, rescan %d pairs", c.ID, len(gotP), len(gotS), len(want))
		}
		for i := range want {
			if gotP[i] != want[i] || gotS[i] != want[i] {
				t.Fatalf("%s: pair %d differs: parallel %v serial %v rescan %v", c.ID, i, gotP[i], gotS[i], want[i])
			}
		}
	}
	// Delta maintenance must keep working on the big table; compare against
	// an indexed rescan (the naive reference would be O(n²) here, and is
	// already pinned to the indexed scan by the small-table tests).
	teamCol := tbl.Schema().MustIndex("Team")
	tbl.Set(17, teamCol, table.String("team1"))
	for _, c := range cs {
		got, err := parallel.Violations(c, tbl)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.ViolationsCached(tbl, NewScanIndex())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s after edit: live %d pairs, rescan %d", c.ID, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s after edit: pair %d: live %v, rescan %v", c.ID, i, got[i], want[i])
			}
		}
	}
}

// TestLiveViolationSetViolatingGroups checks ForEachViolatingGroup visits
// exactly the buckets containing violations, ascending by first violating
// row, and skips clean groups.
func TestLiveViolationSetViolatingGroups(t *testing.T) {
	tbl := table.MustFromStrings([]string{"Team", "City", "Country", "Year"}, [][]string{
		{"a", "x", "p", "1"},
		{"a", "x", "p", "1"}, // clean duplicate group with team a... same city
		{"b", "x", "p", "1"},
		{"b", "y", "p", "1"}, // violating group: team b disagrees on city
		{"c", "z", "p", "1"},
		{"c", "w", "p", "1"}, // violating group: team c disagrees on city
	})
	c := MustParse("C1: !(t1.Team = t2.Team & t1.City != t2.City)")
	live := NewLiveViolationSet()
	live.MinRows = 1 // materialized path: the bypass visits every group
	var groups [][]int
	ok, err := live.ForEachViolatingGroup(c, tbl, func(rows []int) error {
		groups = append(groups, append([]int(nil), rows...))
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(groups) != 2 {
		t.Fatalf("visited %d groups, want 2: %v", len(groups), groups)
	}
	if fmt.Sprint(groups[0]) != "[2 3]" || fmt.Sprint(groups[1]) != "[4 5]" {
		t.Fatalf("groups = %v, want [[2 3] [4 5]]", groups)
	}
	// Keyless constraint: no groups, ok=false.
	keyless := MustParse("C9: !(t1.City != t2.City & t1.Team != t2.Team & t1.Country != t2.Country & t1.Year != t2.Year)")
	ok, err = live.ForEachViolatingGroup(keyless, tbl, func([]int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("keyless constraint must report ok=false")
	}
}
