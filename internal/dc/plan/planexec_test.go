package plan_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dc"
	"repro/internal/dc/plan"
	"repro/internal/table"
)

// fuzzValue decodes one byte into a table value; the universe keeps join
// keys collision-heavy (so buckets hold real pairs) and covers the
// partition edge cases — NULL and NaN join keys never enter a bucket,
// ±0.0 and cross-kind numerics hash together.
func fuzzValue(b byte) table.Value {
	switch b % 9 {
	case 0:
		return table.Null()
	case 1:
		return table.Float(math.NaN())
	case 2:
		return table.String("a")
	case 3:
		return table.String("b")
	case 4:
		return table.Int(int64(b) % 3)
	case 5:
		return table.Float(float64(int64(b) % 3))
	case 6:
		return table.Float(0.0)
	case 7:
		return table.Float(-0.0)
	default:
		return table.Int(-1)
	}
}

// fuzzConstraints is the shared-join-key DC pool the fuzz draws subsets
// from: all pair constraints join on A, with join column sets {A}, {A,B}
// and {A,C} so subset partition sharing engages, plus single-side
// constant predicates so pre-filter pushdown engages, plus a
// single-tuple constraint (never planned).
func fuzzConstraints() []*dc.Constraint {
	return []*dc.Constraint{
		dc.MustParse("F1: !(t1.A = t2.A & t1.B != t2.B)"),
		dc.MustParse("F2: !(t1.A = t2.A & t1.B = t2.B & t1.C != t2.C)"),
		dc.MustParse("F3: !(t1.A = t2.A & t1.C = t2.C & t1.B > t2.B)"),
		dc.MustParse(`F4: !(t1.A = t2.A & t1.C = "a" & t2.B != "b")`),
		dc.MustParse("F5: !(t1.A = t2.A & t1.B >= t2.B & t1.C < t2.C)"),
		dc.MustParse(`F6: !(t1.B = "a" & t1.C != "b")`),
	}
}

// FuzzPlanVsNaive cross-validates planned set execution against the
// interpreted per-constraint reference: for fuzzer-shaped tables, DC
// subsets, and edit streams, the planned scan index and the planned live
// violation set must reproduce the naive scan's violations exactly —
// same pairs, same order — through initial builds, edit-log delta
// replays, and log-overrun rebuilds.
func FuzzPlanVsNaive(f *testing.F) {
	f.Add([]byte{4, 4, 2, 4, 5, 3, 4, 4, 2, 0, 1, 7}, []byte{0, 2, 17, 3}, byte(0x1f))
	f.Add([]byte{2, 2, 2, 2, 2, 2}, []byte{5, 5}, byte(0x3))
	f.Add([]byte{0, 1, 6, 7, 4, 5, 0, 1, 6}, []byte{}, byte(0xff))
	f.Fuzz(func(t *testing.T, cells, edits []byte, pick byte) {
		if len(cells) == 0 {
			return
		}
		schema, err := table.SchemaOf("A", "B", "C")
		if err != nil {
			t.Fatal(err)
		}
		tbl := table.New(schema)
		rows := len(cells)/3 + 1
		if rows > 10 {
			rows = 10
		}
		for i := 0; i < rows; i++ {
			row := make([]table.Value, 3)
			for j := range row {
				row[j] = fuzzValue(cells[(i*3+j)%len(cells)])
			}
			if err := tbl.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		var cs []*dc.Constraint
		for i, c := range fuzzConstraints() {
			if pick&(1<<i) != 0 {
				cs = append(cs, c)
			}
		}
		if len(cs) == 0 {
			cs = fuzzConstraints()
		}

		p := plan.Compile(schema, cs)
		ix := dc.NewScanIndex()
		ix.UsePlan(p)
		live := dc.NewLiveViolationSet()
		live.UsePlan(p)

		check := func(stage string) {
			for _, c := range cs {
				want, err := c.Violations(tbl)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.ViolationsCached(tbl, ix)
				if err != nil {
					t.Fatalf("%s/%s: planned scan: %v", stage, c.ID, err)
				}
				assertSameViolations(t, stage+"/scan/"+c.ID, got, want)
				lv, err := live.Append(c, tbl, nil)
				if err != nil {
					t.Fatalf("%s/%s: planned live: %v", stage, c.ID, err)
				}
				assertSameViolations(t, stage+"/live/"+c.ID, lv, want)
			}
		}

		check("initial")
		// Delta edits: small windows the edit log replays incrementally —
		// cell edits plus structural inserts/deletes/batches, so the
		// planned prefilter bitmaps extend/compact instead of recomputing.
		for i := 0; i+1 < len(edits); i += 2 {
			switch {
			case edits[i] >= 0xf0:
				if tbl.NumRows() >= 12 {
					break // cap growth: the naive reference is O(n²)
				}
				row := make([]table.Value, 3)
				for j := range row {
					row[j] = fuzzValue(edits[i+1] + byte(j))
				}
				if err := tbl.Append(row); err != nil {
					t.Fatal(err)
				}
			case edits[i] >= 0xe0:
				if tbl.NumRows() > 1 {
					tbl.DeleteRow(int(edits[i+1]) % tbl.NumRows())
				}
			case edits[i] >= 0xd0:
				err := tbl.ApplyBatch(func(b *table.Table) error {
					b.Set(int(edits[i+1])%b.NumRows(), int(edits[i])%3, fuzzValue(edits[i+1]))
					if b.NumRows() >= 12 {
						return nil // cap growth: the naive reference is O(n²)
					}
					row := make([]table.Value, 3)
					for j := range row {
						row[j] = fuzzValue(edits[i] + byte(j))
					}
					return b.Append(row)
				})
				if err != nil {
					t.Fatal(err)
				}
			default:
				row := int(edits[i]) % tbl.NumRows()
				col := int(edits[i]>>4) % 3
				tbl.Set(row, col, fuzzValue(edits[i+1]))
			}
			if i%6 == 0 {
				check(fmt.Sprintf("edit-%d", i))
			}
		}
		check("after-edits")
		// Overrun: more unscanned edits than the log window retains forces
		// every incremental consumer down the wholesale-rebuild path.
		for k := 0; k < 600; k++ {
			tbl.Set(k%tbl.NumRows(), k%3, table.Int(int64(k%4)))
		}
		check("after-overrun")
	})
}

func assertSameViolations(t *testing.T, label string, got, want []dc.Violation) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d violations vs %d reference\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: violation %d: %v vs %v", label, i, got[i], want[i])
		}
	}
}
