// Package plan compiles a denial-constraint set into one shared
// relational-algebra execution plan.
//
// Every layer below treats constraints in isolation: each compiles its
// own kernel, derives its own hash partition, and rescans its own
// buckets. The explanation workloads evaluate the *whole* DC set per
// coalition thousands of times, so the set is planned as one query
// workload instead:
//
//   - Partition sharing: constraints whose canonical equality-join
//     column sets are equal share one partition outright (the canonical
//     form also unifies permuted and duplicated join attributes); a
//     constraint may additionally adopt another constraint's set as a
//     coarser shared partition when it is a proper subset missing at
//     most one column AND the constraint carries a pre-filter bitmap to
//     bound the extra intra-bucket candidates — bounded coarsening,
//     since without statistics an aggressively coarse partition could
//     degrade a scan to quadratic.
//     Edit-log delta replay then runs once per shared partition instead
//     of once per constraint.
//   - Predicate ordering: within each constraint, predicates are
//     reordered by a statistics-free selectivity heuristic — operator
//     class (=, then order comparisons, then ≠) refined by operand
//     arity (constant comparisons before single-tuple before
//     cross-tuple), greedy and deterministic, declaration order
//     breaking ties.
//   - Predicate pushdown: predicates reading a single tuple side are
//     hoisted out of the bucket pair loop into per-row pre-filter
//     bitmaps (dc's prefilter), evaluated once per row per generation
//     instead of once per candidate pair.
//   - Hash pre-sizing: observed partition slot counts and violation
//     cardinalities are carried across generations as hints, sizing
//     maps and pair lists on first build.
//
// All choices are pure strategy: planned execution is bit-identical to
// the per-constraint reference (the executor keeps canonical output
// order, re-checks full kernels on point probes, and serves group
// enumeration from exact partitions). Plans are immutable after Compile
// except for the mutex-guarded hint maps, so one plan is safely shared
// by every scan index of a session across worker goroutines.
package plan

import (
	"hash/fnv"
	"slices"
	"sync"

	"repro/internal/dc"
	"repro/internal/table"
)

// Plan is one compiled constraint-set plan: per-constraint execution
// choices plus cardinality feedback carried across generations.
type Plan struct {
	schema  *table.Schema
	fp      uint64
	choices map[*dc.Constraint]dc.PlanChoice

	// mu guards the hint maps only; choices are immutable after Compile.
	mu    sync.Mutex
	parts map[string]int
	viols map[*dc.Constraint]int
}

// subsetSlack bounds partition coarsening: a constraint adopts a shared
// subset partition only when it drops at most this many join columns.
const subsetSlack = 1

// maxHintEntries bounds each hint map of a long-lived plan.
const maxHintEntries = 1024

// Compile plans the constraint set against a schema. Compile never
// fails: constraints that do not resolve against the schema simply get
// no choice and run unplanned, surfacing their errors through the
// executor exactly as before.
func Compile(schema *table.Schema, cs []*dc.Constraint) *Plan {
	p := &Plan{
		schema:  schema,
		fp:      Fingerprint(cs),
		choices: make(map[*dc.Constraint]dc.PlanChoice, len(cs)),
		parts:   make(map[string]int),
		viols:   make(map[*dc.Constraint]int),
	}
	// Canonical join-column sets, deduplicated across the constraint set.
	// sets is kept in first-appearance order so every later pass is
	// deterministic in the constraint declaration order.
	canon := make([][]int, len(cs))
	var sets [][]int
	for i, c := range cs {
		cols := canonicalCols(c.JoinColumns(schema))
		canon[i] = cols
		if len(cols) == 0 {
			continue
		}
		if !containsCols(sets, cols) {
			sets = append(sets, cols)
		}
	}
	for i, c := range cs {
		ch := dc.PlanChoice{
			ScanCols:  canon[i],
			PredOrder: orderPreds(c),
		}
		ch.Pre0, ch.Pre1 = pushdownPreds(c)
		// Coarsening cost rule: adopting a subset partition trades extra
		// intra-bucket candidate pairs for shared builds and delta replay.
		// Without statistics the trade is only clearly favorable when a
		// pre-filter bitmap bounds the extra candidates before they reach
		// the kernel, so constraints without one keep their exact
		// partition (equal canonical sets still share outright through
		// the signature).
		if len(ch.Pre0)+len(ch.Pre1) > 0 {
			ch.ScanCols = shareScanCols(canon[i], sets)
		}
		p.choices[c] = ch
	}
	return p
}

// canonicalCols sorts and deduplicates a join-column list. The partition
// a column set induces does not depend on order or multiplicity, so the
// canonical form lets permuted spellings share one bucketSet.
func canonicalCols(cols []int) []int {
	if len(cols) == 0 {
		return nil
	}
	out := slices.Clone(cols)
	slices.Sort(out)
	return slices.Compact(out)
}

// containsCols reports whether sets already holds an equal column list.
func containsCols(sets [][]int, cols []int) bool {
	for _, s := range sets {
		if slices.Equal(s, cols) {
			return true
		}
	}
	return false
}

// shareScanCols picks the partition backing a constraint's pair scans:
// its own canonical set, or another constraint's proper subset of it
// missing at most subsetSlack columns — the largest such subset, with
// the lexicographically smallest column list breaking ties, so the
// choice is deterministic and both constraints converge on one shared
// bucketSet.
func shareScanCols(cols []int, sets [][]int) []int {
	if len(cols) == 0 {
		return nil
	}
	var best []int
	for _, s := range sets {
		if len(s) >= len(cols) || len(s) < len(cols)-subsetSlack || len(s) == 0 {
			continue
		}
		if !subsetOf(s, cols) {
			continue
		}
		if best == nil || len(s) > len(best) ||
			(len(s) == len(best) && slices.Compare(s, best) < 0) {
			best = s
		}
	}
	if best == nil {
		return cols
	}
	return best
}

// subsetOf reports whether every element of sub appears in super; both
// are sorted and deduplicated.
func subsetOf(sub, super []int) bool {
	j := 0
	for _, s := range sub {
		for j < len(super) && super[j] < s {
			j++
		}
		if j >= len(super) || super[j] != s {
			return false
		}
		j++
	}
	return true
}

// orderPreds returns the selectivity-ordered predicate permutation:
// ascending rank, declaration order breaking ties (a stable greedy
// sort — SNIPPETS' statistics-free join ordering result is the license
// to order greedily without cardinality estimates).
func orderPreds(c *dc.Constraint) []int {
	order := make([]int, len(c.Preds))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return predRank(c.Preds[a]) - predRank(c.Preds[b])
	})
	return order
}

// predRank is the statistics-free selectivity heuristic: operator class
// (equality is the most selective, then order comparisons, then ≠,
// which rejects almost nothing) refined by operand arity (the number of
// distinct tuple sides read — constant comparisons cost least and
// prune per row, cross-tuple predicates cost most). Lower ranks run
// first.
func predRank(p dc.Predicate) int {
	var class int
	switch p.Op {
	case dc.OpEq:
		class = 0
	case dc.OpNeq:
		class = 2
	default:
		class = 1
	}
	return class*3 + predArity(p)
}

// predArity counts the distinct tuple sides a predicate reads: 0 for
// constant-only, 1 for single-side, 2 for cross-tuple.
func predArity(p dc.Predicate) int {
	seen := [2]bool{}
	n := 0
	for _, o := range []dc.Operand{p.Left, p.Right} {
		if o.IsConst {
			continue
		}
		side := o.Tuple & 1
		if !seen[side] {
			seen[side] = true
			n++
		}
	}
	return n
}

// pushdownPreds splits out the predicates hoistable into per-row
// pre-filter bitmaps: every predicate whose non-constant operands all
// read one tuple side (and that has at least one non-constant operand)
// moves to that side's bitmap. Cross-tuple and constant-only predicates
// stay in the residual kernel.
func pushdownPreds(c *dc.Constraint) (pre0, pre1 []int) {
	if c.SingleTuple() {
		return nil, nil
	}
	for i, p := range c.Preds {
		side, ok := singleSide(p)
		if !ok {
			continue
		}
		if side == 0 {
			pre0 = append(pre0, i)
		} else {
			pre1 = append(pre1, i)
		}
	}
	return pre0, pre1
}

// singleSide reports the one tuple side a predicate reads, false when
// it reads both or neither.
func singleSide(p dc.Predicate) (int, bool) {
	side, n := 0, 0
	seen := [2]bool{}
	for _, o := range []dc.Operand{p.Left, p.Right} {
		if o.IsConst {
			continue
		}
		s := o.Tuple & 1
		if !seen[s] {
			seen[s] = true
			side = s
			n++
		}
	}
	if n != 1 {
		return 0, false
	}
	return side, true
}

// Fingerprint hashes a constraint set's rendered form (FNV-1a over the
// count and each constraint's String) — the DC-set half of the plan
// cache key. Constraint order matters: the same constraints reordered
// are a different workload declaration and simply recompile.
func Fingerprint(cs []*dc.Constraint) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeLen := func(n int) {
		v := uint64(n)
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeLen(len(cs))
	for _, c := range cs {
		s := c.String()
		writeLen(len(s))
		h.Write([]byte(s))
	}
	return h.Sum64()
}

// PlanSchema implements dc.SetPlanner.
func (p *Plan) PlanSchema() *table.Schema { return p.schema }

// FingerprintValue returns the DC-set fingerprint the plan was compiled
// for.
func (p *Plan) FingerprintValue() uint64 { return p.fp }

// ConstraintPlan implements dc.SetPlanner.
func (p *Plan) ConstraintPlan(c *dc.Constraint) (dc.PlanChoice, bool) {
	ch, ok := p.choices[c]
	return ch, ok
}

// PartitionHint implements dc.SetPlanner.
func (p *Plan) PartitionHint(sig string) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.parts[sig]
	return n, ok
}

// RecordPartition implements dc.SetPlanner.
func (p *Plan) RecordPartition(sig string, slots int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.parts) >= maxHintEntries {
		clear(p.parts)
	}
	p.parts[sig] = slots
}

// ViolationHint implements dc.SetPlanner.
func (p *Plan) ViolationHint(c *dc.Constraint) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.viols[c]
	return n, ok
}

// RecordViolations implements dc.SetPlanner.
func (p *Plan) RecordViolations(c *dc.Constraint, pairs int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.viols) >= maxHintEntries {
		clear(p.viols)
	}
	p.viols[c] = pairs
}
