package plan

import (
	"slices"
	"testing"

	"repro/internal/dc"
	"repro/internal/table"
)

func soccerSchema(t *testing.T) *table.Schema {
	t.Helper()
	s, err := table.SchemaOf("Team", "City", "Country", "League", "Year")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCanonicalCols(t *testing.T) {
	if got := canonicalCols(nil); got != nil {
		t.Errorf("canonicalCols(nil) = %v", got)
	}
	if got := canonicalCols([]int{3, 1, 3, 0}); !slices.Equal(got, []int{0, 1, 3}) {
		t.Errorf("canonicalCols = %v, want [0 1 3]", got)
	}
	in := []int{2, 1}
	_ = canonicalCols(in)
	if !slices.Equal(in, []int{2, 1}) {
		t.Error("canonicalCols mutated its input")
	}
}

func TestShareScanCols(t *testing.T) {
	sets := [][]int{{0, 1}, {0}, {2}, {0, 1, 2, 3}}
	cases := []struct {
		cols, want []int
	}{
		// Proper subset one column smaller: adopt it.
		{[]int{0, 1, 2}, []int{0, 1}},
		// No subset within slack ({0} drops two columns): keep own set.
		{[]int{0, 2, 3}, []int{0, 2, 3}},
		// Exactly one column dropped, two candidates {0} and {2}: larger
		// wins is moot (same size), lexicographically smallest wins.
		{[]int{0, 2}, []int{0}},
		// A set equal to an existing one still adopts a qualifying proper
		// subset ({0} drops one of its two columns).
		{[]int{0, 1}, []int{0}},
		{nil, nil},
	}
	for _, tc := range cases {
		if got := shareScanCols(tc.cols, sets); !slices.Equal(got, tc.want) {
			t.Errorf("shareScanCols(%v) = %v, want %v", tc.cols, got, tc.want)
		}
	}
}

func TestOrderPreds(t *testing.T) {
	// Declaration order: cross-tuple ≠, cross-tuple =, single-side
	// constant =, order comparison. Expected execution order: constant =
	// (rank 1), cross-tuple = (rank 2), order (rank 5), ≠ (rank 8).
	c := dc.MustParse(`C1: !(t1.City != t2.City & t1.Team = t2.Team & t1.Country = "Spain" & t1.Year > t2.Year)`)
	got := orderPreds(c)
	want := []int{2, 1, 3, 0}
	if !slices.Equal(got, want) {
		t.Errorf("orderPreds = %v, want %v", got, want)
	}

	// Ties keep declaration order (stable sort).
	c2 := dc.MustParse("C2: !(t1.A = t2.A & t1.B = t2.B)")
	if got := orderPreds(c2); !slices.Equal(got, []int{0, 1}) {
		t.Errorf("tie order = %v, want [0 1]", got)
	}
}

func TestPushdownPreds(t *testing.T) {
	c := dc.MustParse(`C1: !(t1.Team = t2.Team & t1.Country = "Spain" & t2.Year > 1990 & t1.City != t2.City)`)
	pre0, pre1 := pushdownPreds(c)
	if !slices.Equal(pre0, []int{1}) || !slices.Equal(pre1, []int{2}) {
		t.Errorf("pushdownPreds = %v / %v, want [1] / [2]", pre0, pre1)
	}

	// Single-tuple constraints never push down: their whole kernel already
	// runs once per row.
	st := dc.MustParse(`C2: !(t1.Country = "Spain" & t1.City != "Madrid")`)
	if pre0, pre1 := pushdownPreds(st); pre0 != nil || pre1 != nil {
		t.Errorf("single-tuple pushdown = %v / %v, want nil / nil", pre0, pre1)
	}
}

func TestCompileSharing(t *testing.T) {
	schema := soccerSchema(t)
	cs := []*dc.Constraint{
		dc.MustParse(`C1: !(t1.Team = t2.Team & t1.League = t2.League & t1.Country = "Spain" & t1.City != t2.City)`),
		dc.MustParse("C2: !(t1.Team = t2.Team & t1.Country != t2.Country)"),
		dc.MustParse(`C3: !(t1.League = t2.League & t1.Team = t2.Team & t2.Country = "Spain" & t1.Year != t2.Year)`),
		dc.MustParse("C4: !(t1.Team = t2.Team & t1.League = t2.League & t1.City != t2.City)"),
	}
	p := Compile(schema, cs)
	if p.PlanSchema() != schema {
		t.Fatal("PlanSchema does not round-trip")
	}
	ch1, ok := p.ConstraintPlan(cs[0])
	if !ok {
		t.Fatal("no choice for C1")
	}
	ch2, _ := p.ConstraintPlan(cs[1])
	ch3, _ := p.ConstraintPlan(cs[2])
	ch4, _ := p.ConstraintPlan(cs[3])
	// C1 {Team, League} has a pre-filter, so it adopts C2's subset {Team}
	// (one column smaller); C3's permuted spelling canonicalizes to C1's
	// set and does the same.
	if !slices.Equal(ch1.ScanCols, ch2.ScanCols) {
		t.Errorf("C1 scan %v does not share C2's %v", ch1.ScanCols, ch2.ScanCols)
	}
	if !slices.Equal(ch3.ScanCols, ch1.ScanCols) {
		t.Errorf("permuted C3 scan %v differs from C1's %v", ch3.ScanCols, ch1.ScanCols)
	}
	teamIdx := schema.MustIndex("Team")
	if !slices.Equal(ch1.ScanCols, []int{teamIdx}) {
		t.Errorf("shared scan cols = %v, want [%d] (Team)", ch1.ScanCols, teamIdx)
	}
	// C4 has the same join set but no pre-filter to bound the extra
	// candidates, so the cost rule keeps its exact partition.
	leagueIdx := schema.MustIndex("League")
	want4 := []int{teamIdx, leagueIdx}
	slices.Sort(want4)
	if !slices.Equal(ch4.ScanCols, want4) {
		t.Errorf("unfiltered C4 coarsened to %v, want exact %v", ch4.ScanCols, want4)
	}
}

func TestCompileUnresolvedConstraint(t *testing.T) {
	schema := soccerSchema(t)
	bogus := dc.MustParse("C1: !(t1.NoSuchCol = t2.NoSuchCol)")
	p := Compile(schema, []*dc.Constraint{bogus})
	ch, ok := p.ConstraintPlan(bogus)
	if !ok {
		t.Fatal("unresolved constraint has no choice entry")
	}
	if ch.ScanCols != nil {
		t.Errorf("unresolved constraint got scan cols %v", ch.ScanCols)
	}
}

func TestFingerprint(t *testing.T) {
	a := dc.MustParse("C1: !(t1.A = t2.A & t1.B != t2.B)")
	b := dc.MustParse("C2: !(t1.A = t2.A & t1.C != t2.C)")
	fp := Fingerprint([]*dc.Constraint{a, b})
	if fp != Fingerprint([]*dc.Constraint{a, b}) {
		t.Error("fingerprint is not deterministic")
	}
	if fp == Fingerprint([]*dc.Constraint{b, a}) {
		t.Error("reordering did not change the fingerprint")
	}
	if fp == Fingerprint([]*dc.Constraint{a}) {
		t.Error("dropping a constraint did not change the fingerprint")
	}
	if Fingerprint(nil) == Fingerprint([]*dc.Constraint{a}) {
		t.Error("empty set collides with a singleton")
	}
}

func TestHints(t *testing.T) {
	p := Compile(soccerSchema(t), nil)
	if _, ok := p.PartitionHint("sig"); ok {
		t.Error("fresh plan has a partition hint")
	}
	p.RecordPartition("sig", 17)
	if n, ok := p.PartitionHint("sig"); !ok || n != 17 {
		t.Errorf("PartitionHint = %d, %v; want 17, true", n, ok)
	}
	c := dc.MustParse("C1: !(t1.Team = t2.Team)")
	p.RecordViolations(c, 9)
	if n, ok := p.ViolationHint(c); !ok || n != 9 {
		t.Errorf("ViolationHint = %d, %v; want 9, true", n, ok)
	}
	// The hint maps are bounded: overflowing resets rather than growing.
	for i := 0; i < maxHintEntries+1; i++ {
		p.RecordPartition(string(rune(i))+"x", i)
	}
	p.mu.Lock()
	n := len(p.parts)
	p.mu.Unlock()
	if n > maxHintEntries {
		t.Errorf("hint map grew to %d entries past the %d bound", n, maxHintEntries)
	}
}
