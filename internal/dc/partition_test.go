package dc

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/table"
)

// testRunner is a minimal Runner for dc-level tests (the real one is
// exec.Pool, which lives above this package).
type testRunner struct {
	workers int
	calls   atomic.Int64
}

func (r *testRunner) Workers() int { return r.workers }

func (r *testRunner) Map(tasks int, fn func(task int)) {
	r.calls.Add(1)
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// TestAppendViolatingGroupsMatchesIterator pins the partition exposure to
// the serial iterator: same groups, same order, same rows.
func TestAppendViolatingGroupsMatchesIterator(t *testing.T) {
	tbl := deltaTable(t, 40, 3)
	cs := liveConstraints(t)
	live := NewLiveViolationSet()
	live.MinRows = 1
	for _, c := range cs {
		var want [][]int
		okIter, err := live.ForEachViolatingGroup(c, tbl, func(rows []int) error {
			want = append(want, append([]int(nil), rows...))
			return nil
		})
		if err != nil {
			t.Fatalf("%s: iterator: %v", c.ID, err)
		}
		got, okAppend, err := live.AppendViolatingGroups(c, tbl, nil)
		if err != nil {
			t.Fatalf("%s: append: %v", c.ID, err)
		}
		if okIter != okAppend {
			t.Fatalf("%s: ok mismatch: iterator %v, append %v", c.ID, okIter, okAppend)
		}
		if !okAppend {
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups vs iterator's %d", c.ID, len(got), len(want))
		}
		for i := range got {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("%s: group %d has %d rows, want %d", c.ID, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s: group %d row %d: %d vs %d", c.ID, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestAppendViolatingGroupsBypass: below the materialization threshold the
// exposure declines (callers use the serial iterator there).
func TestAppendViolatingGroupsBypass(t *testing.T) {
	tbl := deltaTable(t, 8, 5)
	cs := liveConstraints(t)
	live := NewLiveViolationSet() // default MinRows: 8 rows bypass
	dst := [][]int{{99}}
	got, ok, err := live.AppendViolatingGroups(cs[0], tbl, dst)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("bypass tables must decline group exposure")
	}
	if len(got) != 1 || got[0][0] != 99 {
		t.Fatal("dst must be returned unchanged on decline")
	}
}

// TestDerivePoolFedMatchesAdHoc: a full derivation through a plugged-in
// Runner must produce the identical list as the ad-hoc goroutine path and
// actually route through the pool.
func TestDerivePoolFedMatchesAdHoc(t *testing.T) {
	grid := make([][]string, 4096)
	for i := range grid {
		grid[i] = []string{"g" + string(rune('a'+i%29)), "v" + string(rune('a'+i%7))}
	}
	tbl := table.MustFromStrings([]string{"G", "V"}, grid)
	c := MustParse("C1: !(t1.G = t2.G & t1.V != t2.V)")

	plain := NewLiveViolationSet()
	want, err := plain.Violations(c, tbl)
	if err != nil {
		t.Fatal(err)
	}
	pool := &testRunner{workers: 4}
	pooled := NewLiveViolationSet()
	pooled.Pool = pool
	got, err := pooled.Violations(c, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pooled derivation: %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Row1 != want[i].Row1 || got[i].Row2 != want[i].Row2 {
			t.Fatalf("pair %d: (%d,%d) vs (%d,%d)", i, got[i].Row1, got[i].Row2, want[i].Row1, want[i].Row2)
		}
	}
	if pool.calls.Load() == 0 {
		t.Fatal("large derivation must route through the plugged-in pool")
	}
}
