package dc

import (
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/table"
)

// LiveViolationSet is the answer-maintenance layer of the violation index:
// where ScanIndex keeps the hash *partitions* incremental, a
// LiveViolationSet keeps the violation *lists* themselves materialized
// per (constraint, table) and maintains them under single-cell edits from
// the table's bounded edit log — the dynamic-query-answering shape of
// Berkholz/Keppeler/Schweikardt applied to the denial-constraint fragment.
//
// A cell edit retracts only the pairs involving the edited row and
// re-derives that row against its destination bucket through the compiled
// predicate kernel, so repair fixpoints and coalition walks pay per-edit
// cost for their "what is violated now?" queries instead of re-checking
// every intra-bucket pair. Edits to columns a constraint never mentions
// cost nothing. When the edit log no longer covers the gap (ring overrun,
// structural change, a different table) the affected lists fall back to a
// full re-derivation, which for large tables fans out across disjoint
// buckets on a worker pool.
//
// Lists are bit-identical to Constraint.AppendViolations output (itself
// golden-tested against the naive interpreted scan): sorted by (Row1,
// Row2), one entry per ordered violating pair.
//
// A LiveViolationSet is confined to one goroutine, like the ScanIndex it
// wraps; the worker pool inside a full derivation only ever reads.
type LiveViolationSet struct {
	ix     *ScanIndex
	tbl    *table.Table
	schema *table.Schema
	gen    uint64
	lists  map[*Constraint]*liveList
	// ordered holds lists' entries in insertion order; sync iterates it so
	// edit replay and invalidation sweep the lists deterministically. Reset
	// alongside the map at the maxLiveLists eviction.
	ordered []liveEntry
	// Workers caps the full-derivation fan-out; 0 means GOMAXPROCS
	// (clamped), unless Pool is set, whose budget then applies.
	Workers int
	// Pool, when set, supplies the goroutines of a full derivation's
	// disjoint-bucket fan-out instead of ad-hoc spawning — the session
	// engine's bounded worker pool, plugged in per run by the repair black
	// boxes (repair.PartitionedRepairer). Its budget caps the fan-out.
	Pool Runner
	// MinRows overrides the materialization threshold (0 means
	// liveMinRows). Tests set 1 to force list maintenance on small tables.
	MinRows int

	// Pooled scratch for delta application. rows is the bound table's row
	// count at generation gen — the origin space structural windows are
	// decoded against; remap holds that decode. deriveRows/deriveMask are
	// the structural counterpart of touchedRows/touchedMask, expressed in
	// final-position space.
	editBuf     []table.Edit
	rows        int
	remap       table.RowRemap
	touchedRows []int
	touchedMask []bool
	deriveRows  []int
	deriveMask  []bool
	newPairs    []Violation
	slotSeen    []bool
	slotOrder   []int
}

// Runner abstracts a bounded worker pool (exec.Pool) without importing it,
// keeping dc below the execution layer: Map runs fn(task) for every task
// in [0, tasks) — concurrently up to Workers goroutines, the caller
// included — and returns when all have completed.
type Runner interface {
	// Workers returns the pool's worker budget.
	Workers() int
	// Map runs fn over the task range and waits for completion.
	Map(tasks int, fn func(task int))
}

// liveEntry pairs a constraint with its list for the ordered sweep.
type liveEntry struct {
	c *Constraint
	l *liveList
}

// liveList is one constraint's materialized violation list.
type liveList struct {
	valid bool
	pairs []Violation
	// merge is the swap buffer for retract+merge passes.
	merge []Violation
	// colRelevant[col] reports whether the constraint mentions the column:
	// edits elsewhere cannot change this list.
	colRelevant []bool
}

// liveMinRows is the table size below which the set answers queries
// straight from the kernel-accelerated ScanIndex instead of materializing
// lists: on tiny tables (the paper's worked examples, coalition scratch
// copies of them) the per-edit retract/derive/merge bookkeeping costs more
// than the intra-bucket pair scan it avoids. The cutover is a pure
// strategy choice — both paths are golden-tested identical — keyed on the
// current row count only, so it is deterministic per table state.
const liveMinRows = 64

// liveParallelRows is the table size above which a full derivation fans
// out across buckets; below it the goroutine handoff costs more than the
// scan.
const liveParallelRows = 2048

// maxLiveLists bounds the per-constraint map of a pooled set; beyond it
// the set forgets everything rather than track dead constraints forever.
const maxLiveLists = 128

// NewLiveViolationSet returns an empty live set with its own ScanIndex.
func NewLiveViolationSet() *LiveViolationSet {
	return &LiveViolationSet{
		ix:    NewScanIndex(),
		lists: make(map[*Constraint]*liveList),
	}
}

// Index exposes the underlying ScanIndex so callers can run point probes
// (ViolatesRowCached, ViolationPairsForRow) against the same buckets the
// live lists are derived from. The index shares the set's goroutine
// confinement.
func (s *LiveViolationSet) Index() *ScanIndex { return s.ix }

// bypass reports whether t is below the materialization threshold.
func (s *LiveViolationSet) bypass(t *table.Table) bool {
	min := s.MinRows
	if min <= 0 {
		min = liveMinRows
	}
	return t.NumRows() < min
}

// Violations returns the current violation list of c over t, synced to
// t's generation. The returned slice aliases the set's storage: it is
// valid until the next call on the set after a table edit, and must not
// be mutated. Use Append for a caller-owned copy.
func (s *LiveViolationSet) Violations(c *Constraint, t *table.Table) ([]Violation, error) {
	if s.bypass(t) {
		var err error
		s.newPairs, err = c.AppendViolations(t, s.ix, s.newPairs[:0])
		return s.newPairs, err
	}
	l, err := s.listFor(c, t)
	if err != nil {
		return nil, err
	}
	return l.pairs, nil
}

// Append appends the current violation list of c over t to out and
// returns the extended slice — the drop-in replacement for
// Constraint.AppendViolations in repair hot loops, with delta maintenance
// underneath.
func (s *LiveViolationSet) Append(c *Constraint, t *table.Table, out []Violation) ([]Violation, error) {
	if s.bypass(t) {
		return c.AppendViolations(t, s.ix, out)
	}
	l, err := s.listFor(c, t)
	if err != nil {
		return out, err
	}
	return append(out, l.pairs...), nil
}

// ForEachViolatingGroup invokes fn over the join groups (hash buckets) of
// c that currently contain at least one violating pair, in ascending
// order of the group's first violating row — except below the
// materialization threshold, where it is cheaper to visit *every*
// non-empty group (in bucket-interning order) than to track which ones
// violate. fn must therefore be a no-op on violation-free groups and must
// not depend on visit order beyond determinism; the FD chase satisfies
// both by construction. ok is false, with fn never invoked, when the
// constraint has no equality join key. The rows slice aliases index
// storage and is read-only; fn may mutate the table, and the set catches
// up on its next sync.
func (s *LiveViolationSet) ForEachViolatingGroup(c *Constraint, t *table.Table, fn func(rows []int) error) (bool, error) {
	if s.bypass(t) {
		// Below the materialization threshold visiting every group is
		// cheaper than tracking which ones violate; violation-free groups
		// are no-ops for every consumer of this iterator.
		return c.ForEachJoinGroup(t, s.ix, fn)
	}
	bs, slots, err := s.violatingSlots(c, t)
	if err != nil {
		return false, err
	}
	if bs == nil {
		return false, nil
	}
	for _, slot := range slots {
		if err := fn(bs.members[slot]); err != nil {
			return true, err
		}
	}
	return true, nil
}

// violatingSlots is the shared core of ForEachViolatingGroup and
// AppendViolatingGroups: the bucket partition of c over t plus the slots
// currently containing at least one violating pair, in ascending order of
// each slot's first violating row. Keeping it in one place keeps the
// serial iterator and the parallel partition exposure on the same ordering
// invariant — the bit-identity contract of the parallel chase. A nil
// bucketSet (no equality join key) comes back with no error; the slot
// slice aliases s.slotOrder and is valid until the next call on the set.
func (s *LiveViolationSet) violatingSlots(c *Constraint, t *table.Table) (*bucketSet, []int, error) {
	l, err := s.listFor(c, t)
	if err != nil {
		return nil, nil, err
	}
	bs := s.ix.bucketSetFor(c, t)
	if bs == nil {
		return nil, nil, nil
	}
	if cap(s.slotSeen) >= bs.nSlots {
		s.slotSeen = s.slotSeen[:bs.nSlots]
	} else {
		s.slotSeen = make([]bool, bs.nSlots)
	}
	s.slotOrder = s.slotOrder[:0]
	for _, v := range l.pairs {
		slot := bs.rowBucket[v.Row1]
		if slot >= 0 && !s.slotSeen[slot] {
			s.slotSeen[slot] = true
			s.slotOrder = append(s.slotOrder, slot)
		}
	}
	// slotSeen is only needed while deduplicating; reset it here so every
	// caller inherits a clean mask.
	for _, slot := range s.slotOrder {
		s.slotSeen[slot] = false
	}
	return bs, s.slotOrder, nil
}

// AppendViolatingGroups appends to dst the join groups (hash buckets) of c
// that currently contain at least one violating pair, in ascending order
// of each group's first violating row — exactly the visit order of
// ForEachViolatingGroup's materialized path. It is the bucket-partition
// exposure the parallel repair path consumes: groups are disjoint row
// sets, so a PartitionedRepairer can compute per-group fixes concurrently
// and apply them serially in this order, bit-identical to the serial pass.
//
// ok is false — with dst returned unchanged — when the constraint has no
// equality join key or the table is below the materialization threshold;
// callers fall back to the serial ForEachViolatingGroup there. The row
// slices alias index storage: read-only, valid until the table is mutated
// and the set re-synced.
func (s *LiveViolationSet) AppendViolatingGroups(c *Constraint, t *table.Table, dst [][]int) ([][]int, bool, error) {
	if s.bypass(t) {
		return dst, false, nil
	}
	bs, slots, err := s.violatingSlots(c, t)
	if err != nil || bs == nil {
		return dst, false, err
	}
	for _, slot := range slots {
		dst = append(dst, bs.members[slot])
	}
	return dst, true, nil
}

// listFor syncs the set to t and returns c's list, deriving it in full
// when it is missing or invalidated.
func (s *LiveViolationSet) listFor(c *Constraint, t *table.Table) (*liveList, error) {
	s.sync(t)
	l, ok := s.lists[c]
	if !ok {
		if len(s.lists) >= maxLiveLists {
			clear(s.lists)
			s.ordered = s.ordered[:0]
		}
		l = &liveList{}
		s.lists[c] = l
		s.ordered = append(s.ordered, liveEntry{c: c, l: l})
	}
	if !l.valid {
		if err := s.derive(c, l, t); err != nil {
			return nil, err
		}
		l.valid = true
	}
	return l, nil
}

// sync points the set at t, replaying the edit log into every valid list
// when possible and invalidating wholesale otherwise.
func (s *LiveViolationSet) sync(t *table.Table) {
	if s.tbl == t && s.schema == t.Schema() {
		if s.gen == t.Generation() {
			return
		}
		s.editBuf = s.editBuf[:0]
		// An injected overrun simulates the ring wrapping between syncs:
		// the incremental path is declined and every list is re-derived,
		// exercising the same degradation the real overrun takes.
		if edits, ok := t.EditsSince(s.gen, s.editBuf); ok && !faults.Overrun(faults.SiteEditReplay) {
			s.editBuf = edits
			structural := table.Structural(edits)
			if structural {
				// Decode the structural window once against the row count
				// the lists were derived over; a decode that disagrees with
				// the live table means the window cannot be trusted.
				s.remap.Resolve(edits, s.rows)
			}
			if !structural || s.remap.NewRows == t.NumRows() {
				for _, ent := range s.ordered {
					c, l := ent.c, ent.l
					if !l.valid {
						continue
					}
					var err error
					if structural {
						err = s.applyListStructural(c, l, t)
					} else {
						err = s.applyList(c, l, t, edits)
					}
					if err != nil {
						// Deterministic per-constraint failure (compile
						// error): fall back to full derivation, which
						// surfaces the same error when the constraint is
						// actually queried.
						l.valid = false
					}
				}
				s.gen = t.Generation()
				s.rows = t.NumRows()
				return
			}
		}
	}
	s.tbl = t
	s.schema = t.Schema()
	s.gen = t.Generation()
	s.rows = t.NumRows()
	for _, ent := range s.ordered {
		ent.l.valid = false
	}
}

// applyList catches one list up with a window of single-cell edits:
// retract every pair involving a touched row, then re-derive those rows
// against their current buckets. Windows with structural edits take
// applyListStructural instead.
func (s *LiveViolationSet) applyList(c *Constraint, l *liveList, t *table.Table, edits []table.Edit) error {
	s.touchedRows = s.touchedRows[:0]
	for _, e := range edits {
		if e.Kind == table.EditSet && e.Col < len(l.colRelevant) && l.colRelevant[e.Col] {
			s.touchedRows = append(s.touchedRows, e.Row)
		}
	}
	if len(s.touchedRows) == 0 {
		return nil
	}
	sort.Ints(s.touchedRows)
	s.touchedRows = slices.Compact(s.touchedRows)

	n := t.NumRows()
	if cap(s.touchedMask) >= n {
		s.touchedMask = s.touchedMask[:n]
	} else {
		s.touchedMask = make([]bool, n)
	}
	mask := s.touchedMask
	for _, r := range s.touchedRows {
		mask[r] = true
	}
	defer func() {
		for _, r := range s.touchedRows {
			mask[r] = false
		}
	}()

	// Retract: drop every pair involving a touched row, in place.
	keep := l.pairs[:0]
	for _, v := range l.pairs {
		if !mask[v.Row1] && !mask[v.Row2] {
			keep = append(keep, v)
		}
	}
	l.pairs = keep

	// Re-derive the touched rows against the table's current state. Pairs
	// between two untouched rows are unchanged by construction (no cell in
	// a constraint-mentioned column moved), so this restores exactly the
	// full-rescan answer.
	s.newPairs = s.newPairs[:0]
	if c.SingleTuple() {
		kern, err := s.ix.kernelFor(c, t)
		if err != nil {
			return err
		}
		for _, r := range s.touchedRows {
			if kern.Pair(t, r, r) {
				s.newPairs = append(s.newPairs, Violation{Constraint: c, Row1: r, Row2: r})
			}
		}
	} else {
		// The scan partition (plan-shared when planned) is enough here:
		// the full kernel re-checks every candidate pair, and a coarser
		// bucket only adds candidates the kernel rejects.
		e := s.ix.entryFor(c, t)
		if e.kernErr != nil {
			return e.kernErr
		}
		bs := s.ix.scanBucketSetFor(e, t)
		kern := e.kern
		derivePartner := func(r, j int) {
			if j == r {
				return
			}
			// A touched partner below r already derived this unordered pair
			// (both orders) on its own iteration.
			if mask[j] && j < r {
				return
			}
			if kern.Pair(t, r, j) {
				s.newPairs = append(s.newPairs, Violation{Constraint: c, Row1: r, Row2: j})
			}
			if kern.Pair(t, j, r) {
				s.newPairs = append(s.newPairs, Violation{Constraint: c, Row1: j, Row2: r})
			}
		}
		for _, r := range s.touchedRows {
			if bs != nil {
				slot := bs.rowBucket[r]
				if slot < 0 {
					// Null/NaN join key: r participates in no pair.
					continue
				}
				for _, j := range bs.members[slot] {
					derivePartner(r, j)
				}
				continue
			}
			// No join key: every row is a candidate partner.
			for j := 0; j < n; j++ {
				derivePartner(r, j)
			}
		}
	}
	slices.SortFunc(s.newPairs, violationOrder)

	// Merge the sorted additions into the sorted survivors.
	l.merge = mergeViolations(l.merge[:0], l.pairs, s.newPairs)
	l.pairs, l.merge = l.merge, l.pairs
	return nil
}

// applyListStructural catches one list up with a window containing row
// inserts/deletes, decoded by s.remap. The list's pairs are expressed in
// origin space; pairs involving a retracted origin (deleted rows, moved
// survivors, and surviving rows with relevant in-place edits) drop, and
// every surviving pair's indexes are already final — the swap-delete rule
// guarantees an unmoved survivor keeps its index, so no pair is ever
// remapped. Exactly the re-derived final positions (moved-in rows,
// in-window inserts, edited survivors) then re-scan their buckets, which
// restores the full-rescan answer: a pair between two clean rows cannot
// have changed (same indexes, same bytes in every constraint-mentioned
// column).
func (s *LiveViolationSet) applyListStructural(c *Constraint, l *liveList, t *table.Table) error {
	rm := &s.remap

	// Retraction mask over origin space.
	old := rm.OldRows
	if cap(s.touchedMask) >= old {
		s.touchedMask = s.touchedMask[:old]
	} else {
		s.touchedMask = make([]bool, old)
	}
	mask := s.touchedMask
	s.touchedRows = s.touchedRows[:0] // edited clean origins, also re-derived
	for _, o := range rm.Retract {
		mask[o] = true
	}
	for _, e := range rm.Sets {
		if rm.CleanSet(e) && e.Col < len(l.colRelevant) && l.colRelevant[e.Col] && !mask[e.Row] {
			mask[e.Row] = true
			s.touchedRows = append(s.touchedRows, e.Row)
		}
	}
	defer func() {
		for _, o := range rm.Retract {
			mask[o] = false
		}
		for _, r := range s.touchedRows {
			mask[r] = false
		}
	}()

	// Derivation mask over final-position space: moved-in and inserted
	// positions, plus edited clean rows (whose origin and final index
	// coincide). The two sources are disjoint — a clean row is by
	// definition not a Derive position.
	n := rm.NewRows
	if cap(s.deriveMask) >= n {
		s.deriveMask = s.deriveMask[:n]
	} else {
		s.deriveMask = make([]bool, n)
	}
	dmask := s.deriveMask
	s.deriveRows = s.deriveRows[:0]
	for _, p := range rm.Derive {
		dmask[p] = true
		s.deriveRows = append(s.deriveRows, int(p))
	}
	for _, r := range s.touchedRows {
		dmask[r] = true
		s.deriveRows = append(s.deriveRows, r)
	}
	sort.Ints(s.deriveRows)
	defer func() {
		for _, r := range s.deriveRows {
			dmask[r] = false
		}
	}()

	// Retract: drop every pair involving a retracted origin, in place.
	keep := l.pairs[:0]
	for _, v := range l.pairs {
		if !mask[v.Row1] && !mask[v.Row2] {
			keep = append(keep, v)
		}
	}
	l.pairs = keep

	// Re-derive the changed positions against the final table.
	s.newPairs = s.newPairs[:0]
	if c.SingleTuple() {
		kern, err := s.ix.kernelFor(c, t)
		if err != nil {
			return err
		}
		for _, r := range s.deriveRows {
			if kern.Pair(t, r, r) {
				s.newPairs = append(s.newPairs, Violation{Constraint: c, Row1: r, Row2: r})
			}
		}
	} else {
		e := s.ix.entryFor(c, t)
		if e.kernErr != nil {
			return e.kernErr
		}
		bs := s.ix.scanBucketSetFor(e, t)
		kern := e.kern
		derivePartner := func(r, j int) {
			if j == r {
				return
			}
			// A derived partner below r already derived this unordered pair
			// (both orders) on its own iteration.
			if dmask[j] && j < r {
				return
			}
			if kern.Pair(t, r, j) {
				s.newPairs = append(s.newPairs, Violation{Constraint: c, Row1: r, Row2: j})
			}
			if kern.Pair(t, j, r) {
				s.newPairs = append(s.newPairs, Violation{Constraint: c, Row1: j, Row2: r})
			}
		}
		for _, r := range s.deriveRows {
			if bs != nil {
				slot := bs.rowBucket[r]
				if slot < 0 {
					// Null/NaN join key: r participates in no pair.
					continue
				}
				for _, j := range bs.members[slot] {
					derivePartner(r, j)
				}
				continue
			}
			// No join key: every row is a candidate partner.
			for j := 0; j < n; j++ {
				derivePartner(r, j)
			}
		}
	}
	slices.SortFunc(s.newPairs, violationOrder)

	// Merge the sorted additions into the sorted survivors.
	l.merge = mergeViolations(l.merge[:0], l.pairs, s.newPairs)
	l.pairs, l.merge = l.merge, l.pairs
	return nil
}

// derive recomputes one list from scratch: the kernel-compiled bucket scan
// (fanned out across disjoint buckets for large tables), the naive kernel
// scan when the constraint has no join key, or the per-row scan for
// single-tuple constraints. Output is sorted by (Row1, Row2), bit-identical
// to AppendViolations.
func (s *LiveViolationSet) derive(c *Constraint, l *liveList, t *table.Table) error {
	// Refresh the column-relevance mask against the current schema.
	schema := t.Schema()
	if cap(l.colRelevant) >= schema.Len() {
		l.colRelevant = l.colRelevant[:schema.Len()]
		clear(l.colRelevant)
	} else {
		l.colRelevant = make([]bool, schema.Len())
	}
	for _, attr := range c.Attributes() {
		if idx, ok := schema.Index(attr); ok {
			l.colRelevant[idx] = true
		}
	}

	l.pairs = l.pairs[:0]
	e := s.ix.entryFor(c, t)
	if e.kernErr != nil {
		return e.kernErr
	}
	kern := e.kern
	// Pre-size the pair list from the plan's last observed cardinality,
	// and feed the fresh count back on the way out.
	if p := s.ix.plan; p != nil {
		if hint, ok := p.ViolationHint(c); ok && cap(l.pairs) < hint {
			l.pairs = make([]Violation, 0, hint)
		}
		defer func() { p.RecordViolations(c, len(l.pairs)) }()
	}
	n := t.NumRows()
	if c.SingleTuple() {
		for r := 0; r < n; r++ {
			if kern.Pair(t, r, r) {
				l.pairs = append(l.pairs, Violation{Constraint: c, Row1: r, Row2: r})
			}
		}
		return nil
	}
	bs := s.ix.scanBucketSetFor(e, t)
	if bs == nil {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && kern.Pair(t, i, j) {
					l.pairs = append(l.pairs, Violation{Constraint: c, Row1: i, Row2: j})
				}
			}
		}
		return nil
	}
	sc := bucketScan{kern: e.resid, c: c}
	if pf := s.ix.prefilterFor(c, t); pf != nil {
		sc.pass0, sc.pass1 = pf.pass0, pf.pass1
	}
	slots := bs.members[:bs.nSlots]
	workers := s.deriveWorkers(n, len(slots))
	if workers <= 1 {
		alive := s.ix.aliveFor(0)
		for _, rows := range slots {
			l.pairs = scanBucket(&sc, t, rows, &alive, l.pairs)
		}
		s.ix.alive = alive
	} else {
		l.pairs = deriveParallel(&sc, t, slots, workers, s.Pool, l.pairs)
	}
	slices.SortFunc(l.pairs, violationOrder)
	return nil
}

// deriveWorkers picks the fan-out for a full derivation: the explicit
// Workers override, else the plugged-in pool's budget, else a clamped
// GOMAXPROCS.
func (s *LiveViolationSet) deriveWorkers(rows, buckets int) int {
	if rows < liveParallelRows {
		return 1
	}
	w := s.Workers
	if w <= 0 && s.Pool != nil {
		w = s.Pool.Workers()
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	if w > buckets {
		w = buckets
	}
	if w < 1 {
		w = 1
	}
	return w
}

// bucketScan bundles what one bucket pair enumeration needs: the kernel
// to run per candidate (the residual kernel under a plan), the
// constraint for output tagging, and the optional pre-filter bitmaps.
// Read-only during a scan, so parallel workers share one value.
type bucketScan struct {
	kern         *Kernel
	c            *Constraint
	pass0, pass1 []bool
}

// scanBucket appends every ordered violating pair inside one bucket,
// resizing the caller's alive mask as needed.
func scanBucket(sc *bucketScan, t *table.Table, rows []int, alive *[]bool, out []Violation) []Violation {
	if len(rows) < 2 {
		return out
	}
	a := *alive
	if cap(a) < len(rows) {
		a = make([]bool, len(rows))
	}
	a = a[:len(rows)]
	*alive = a
	for n, i := range rows {
		if sc.pass0 != nil && !sc.pass0[i] {
			continue
		}
		any := false
		for m := range a {
			ok := m != n && (sc.pass1 == nil || sc.pass1[rows[m]])
			a[m] = ok
			any = any || ok
		}
		if !any {
			continue
		}
		sc.kern.Filter(t, 0, i, rows, a)
		for m, j := range rows {
			if a[m] {
				out = append(out, Violation{Constraint: sc.c, Row1: i, Row2: j})
			}
		}
	}
	return out
}

// deriveParallel fans the bucket scans of one full derivation across a
// worker pool — the session engine's bounded pool when one is plugged in,
// ad-hoc goroutines otherwise. Buckets are disjoint row sets, so workers
// share nothing but the read-only table, partition and kernel; outputs are
// concatenated and sorted by the caller, which makes the result
// independent of scheduling.
func deriveParallel(sc *bucketScan, t *table.Table, slots [][]int, workers int, pool Runner, out []Violation) []Violation {
	var next atomic.Int64
	results := make([][]Violation, workers)
	worker := func(w int) {
		var local []Violation
		var alive []bool
		for {
			i := int(next.Add(1)) - 1
			if i >= len(slots) {
				break
			}
			local = scanBucket(sc, t, slots[i], &alive, local)
		}
		results[w] = local
	}
	if pool != nil {
		pool.Map(workers, worker)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				worker(w)
			}(w)
		}
		wg.Wait()
	}
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// violationOrder is the canonical (Row1, Row2) order of every violation
// list.
func violationOrder(a, b Violation) int {
	if a.Row1 != b.Row1 {
		return a.Row1 - b.Row1
	}
	return a.Row2 - b.Row2
}

// mergeViolations merges two (Row1, Row2)-sorted lists into dst.
func mergeViolations(dst, a, b []Violation) []Violation {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if violationOrder(a[i], b[j]) <= 0 {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
