package dc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// deltaTable builds a soccer-flavoured table with duplicate join keys so
// the composite buckets have real content.
func deltaTable(t *testing.T, rows int, seed int64) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	grid := make([][]string, rows)
	for i := range grid {
		grid[i] = []string{
			fmt.Sprintf("team%d", rng.Intn(4)),
			fmt.Sprintf("city%d", rng.Intn(3)),
			fmt.Sprintf("country%d", rng.Intn(3)),
			fmt.Sprintf("%d", 2015+rng.Intn(3)),
		}
	}
	return table.MustFromStrings([]string{"Team", "City", "Country", "Year"}, grid)
}

// deltaConstraints mixes single- and multi-column join keys, plus one
// keyless constraint, so the index maintains several signatures at once.
func deltaConstraints(t *testing.T) []*Constraint {
	t.Helper()
	cs, err := ParseSet(`
C1: !(t1.Team = t2.Team & t1.City != t2.City)
C2: !(t1.Team = t2.Team & t1.Year = t2.Year & t1.Country != t2.Country)
C3: !(t1.City != t2.City & t1.Country != t2.Country & t1.Team != t2.Team & t1.Year != t2.Year)
`)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// assertSameViolations compares the cached (delta-maintained) scan against
// a from-scratch indexed scan for every constraint, plus the per-row
// primitives on every row.
func assertSameViolations(t *testing.T, label string, cs []*Constraint, tbl *table.Table, ix *ScanIndex) {
	t.Helper()
	for _, c := range cs {
		got, err := c.ViolationsCached(tbl, ix)
		if err != nil {
			t.Fatalf("%s/%s: cached: %v", label, c.ID, err)
		}
		want, err := c.ViolationsIndexed(tbl)
		if err != nil {
			t.Fatalf("%s/%s: fresh: %v", label, c.ID, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s/%s: %d violations cached, %d fresh", label, c.ID, len(got), len(want))
		}
		for i := range got {
			if got[i].Row1 != want[i].Row1 || got[i].Row2 != want[i].Row2 {
				t.Fatalf("%s/%s: violation %d: cached (%d,%d), fresh (%d,%d)",
					label, c.ID, i, got[i].Row1, got[i].Row2, want[i].Row1, want[i].Row2)
			}
		}
		for row := 0; row < tbl.NumRows(); row++ {
			gotRow, err := c.ViolatesRowCached(tbl, row, ix)
			if err != nil {
				t.Fatal(err)
			}
			wantRow, err := c.ViolatesRow(tbl, row)
			if err != nil {
				t.Fatal(err)
			}
			if gotRow != wantRow {
				t.Fatalf("%s/%s: row %d: cached %v, fresh %v", label, c.ID, row, gotRow, wantRow)
			}
			gotN, err := c.ViolationPairsForRow(tbl, row, ix)
			if err != nil {
				t.Fatal(err)
			}
			wantN, err := c.ViolationPairsForRow(tbl, row, nil)
			if err != nil {
				t.Fatal(err)
			}
			if gotN != wantN {
				t.Fatalf("%s/%s: row %d: %d pairs cached, %d fresh", label, c.ID, row, gotN, wantN)
			}
		}
	}
}

// TestScanIndexDeltaMaintenance fuzzes single-cell edits against the scan
// index: after every edit the delta-maintained buckets must agree with a
// from-scratch rebuild, including edits to join columns, non-join columns,
// nulls in and out of join keys, and value kinds whose keys collide
// lexically but not canonically.
func TestScanIndexDeltaMaintenance(t *testing.T) {
	tbl := deltaTable(t, 24, 1)
	cs := deltaConstraints(t)
	ix := NewScanIndex()
	assertSameViolations(t, "initial", cs, tbl, ix)
	rng := rand.New(rand.NewSource(2))
	values := []table.Value{
		table.String("team0"), table.String("team1"), table.String("city0"),
		table.String("country9"), table.Null(), table.Int(2016), table.String("2016"),
	}
	for step := 0; step < 300; step++ {
		ref := table.CellRef{Row: rng.Intn(tbl.NumRows()), Col: rng.Intn(tbl.NumCols())}
		tbl.SetRef(ref, values[rng.Intn(len(values))])
		assertSameViolations(t, fmt.Sprintf("step %d", step), cs, tbl, ix)
	}
}

// TestScanIndexDeltaBatch covers multi-edit catch-up: many edits between
// scans, still within the log window.
func TestScanIndexDeltaBatch(t *testing.T) {
	tbl := deltaTable(t, 16, 3)
	cs := deltaConstraints(t)
	ix := NewScanIndex()
	assertSameViolations(t, "initial", cs, tbl, ix)
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 20; round++ {
		for k := 0; k < 30; k++ {
			tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()),
				table.String(fmt.Sprintf("v%d", rng.Intn(5))))
		}
		assertSameViolations(t, fmt.Sprintf("round %d", round), cs, tbl, ix)
	}
}

// TestScanIndexLogOverrun forces more edits than the table's edit log
// retains: the index must detect the lost history and rebuild, not apply a
// partial delta.
func TestScanIndexLogOverrun(t *testing.T) {
	tbl := deltaTable(t, 12, 5)
	cs := deltaConstraints(t)
	ix := NewScanIndex()
	assertSameViolations(t, "initial", cs, tbl, ix)
	rng := rand.New(rand.NewSource(6))
	for k := 0; k < 2000; k++ { // far beyond the log window
		tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()),
			table.String(fmt.Sprintf("w%d", rng.Intn(4))))
	}
	assertSameViolations(t, "after overrun", cs, tbl, ix)
}

// TestScanIndexAppendInvalidates covers structural changes: appending a
// row must force a rebuild (the delta protocol only covers cell edits).
func TestScanIndexAppendInvalidates(t *testing.T) {
	tbl := deltaTable(t, 8, 7)
	cs := deltaConstraints(t)
	ix := NewScanIndex()
	assertSameViolations(t, "initial", cs, tbl, ix)
	row := make([]table.Value, tbl.NumCols())
	for j := range row {
		row[j] = tbl.Get(0, j)
	}
	if err := tbl.Append(row); err != nil {
		t.Fatal(err)
	}
	assertSameViolations(t, "after append", cs, tbl, ix)
	tbl.Set(tbl.NumRows()-1, 1, table.String("cityX"))
	assertSameViolations(t, "edit after append", cs, tbl, ix)
}

// TestScanIndexTableSwitch covers re-pointing one index at different
// tables (the pooled work-table workload) and at a table whose schema is
// swapped by a shape-changing CopyFrom.
func TestScanIndexTableSwitch(t *testing.T) {
	a := deltaTable(t, 10, 8)
	b := deltaTable(t, 14, 9)
	cs := deltaConstraints(t)
	ix := NewScanIndex()
	for round := 0; round < 4; round++ {
		assertSameViolations(t, "table a", cs, a, ix)
		assertSameViolations(t, "table b", cs, b, ix)
		a.Set(round, 0, table.String("teamZ"))
	}
	// Shape-changing CopyFrom swaps schema and rows under the same pointer.
	narrow := table.MustFromStrings([]string{"Team", "City", "Country", "Year"}, [][]string{
		{"t", "c", "x", "1"}, {"t", "d", "x", "1"},
	})
	b.CopyFrom(narrow)
	assertSameViolations(t, "after CopyFrom", cs, b, ix)
}

// TestScanIndexCopyFromDelta drives the exact ScratchRepairer workload:
// refresh a work table from alternating sources via CopyFrom, scan, mutate,
// scan — the index must stay correct throughout while never being handed
// an explicit invalidation.
func TestScanIndexCopyFromDelta(t *testing.T) {
	src1 := deltaTable(t, 12, 10)
	src2 := src1.Clone()
	src2.Set(3, 1, table.String("cityQ"))
	src2.Set(7, 2, table.Null())
	cs := deltaConstraints(t)
	work := src1.Clone()
	ix := NewScanIndex()
	for round := 0; round < 10; round++ {
		src := src1
		if round%2 == 1 {
			src = src2
		}
		work.CopyFrom(src)
		assertSameViolations(t, fmt.Sprintf("refresh %d", round), cs, work, ix)
		work.Set(round, 2, table.String("countryR"))
		assertSameViolations(t, fmt.Sprintf("mutate %d", round), cs, work, ix)
	}
}

// TestJoinKeyUnifiesNumericKinds is the regression test for a
// bucket-partition soundness bug: the = predicate unifies int and float
// (and ±0.0) numerically, so the hash-join key must too — a kind-sensitive
// key separated rows the predicate joins, and every bucket-restricted
// probe (ViolatesRowCached, ViolationPairsForRow, the chase grouping)
// silently missed their violations.
func TestJoinKeyUnifiesNumericKinds(t *testing.T) {
	c, err := Parse("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	tbl := table.New(mustSchema(t, "A", "B"))
	appendRow := func(a, b table.Value) {
		t.Helper()
		if err := tbl.Append([]table.Value{a, b}); err != nil {
			t.Fatal(err)
		}
	}
	appendRow(table.Int(1), table.String("x"))
	appendRow(table.Float(1.0), table.String("y")) // = int 1 under the predicate
	appendRow(table.Float(0.0), table.String("x"))
	appendRow(table.Float(math.Copysign(0, -1)), table.String("y")) // -0.0 = 0.0
	ix := NewScanIndex()
	want, err := c.Violations(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture must violate: int 1 and float 1.0 disagree on B")
	}
	got, err := c.ViolationsCached(tbl, ix)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("indexed scan found %d violations, exact scan %d", len(got), len(want))
	}
	for i := 0; i < tbl.NumRows(); i++ {
		exact, err := c.ViolatesRow(tbl, i)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := c.ViolatesRowCached(tbl, i, ix)
		if err != nil {
			t.Fatal(err)
		}
		if exact != indexed {
			t.Fatalf("row %d: exact %v, bucket-restricted %v", i, exact, indexed)
		}
		nExact, err := c.ViolationPairsForRow(tbl, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		nIndexed, err := c.ViolationPairsForRow(tbl, i, ix)
		if err != nil {
			t.Fatal(err)
		}
		if nExact != nIndexed {
			t.Fatalf("row %d: %d pairs exact, %d bucket-restricted", i, nExact, nIndexed)
		}
	}
}

func mustSchema(t *testing.T, names ...string) *table.Schema {
	t.Helper()
	s, err := table.SchemaOf(names...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
