package dc

import (
	"sync"

	"repro/internal/table"
)

// Constraint-set planning hooks.
//
// A SetPlanner is the executor-side view of a compiled constraint-set
// query plan (internal/dc/plan). The dc package stays below the planner:
// it only consumes per-constraint PlanChoice values and feeds observed
// cardinalities back as pre-sizing hints. Everything a plan changes is a
// pure strategy choice — which shared hash partition backs a pair scan,
// the predicate evaluation order, which single-side predicates run as
// pre-filter bitmaps, and initial map/slice capacities — so planned and
// unplanned execution are bit-identical by construction: violation lists
// stay sorted by (Row1, Row2), point probes re-check the full kernel,
// and the exact-signature partition keeps serving group enumeration.

// SetPlanner supplies per-constraint execution choices and collects
// cardinality feedback. Implementations must be safe for concurrent use:
// one plan is shared by every ScanIndex of a session (repair runs fan
// out across workers). Implemented by *plan.Plan.
type SetPlanner interface {
	// PlanSchema is the schema the plan was compiled against; a ScanIndex
	// ignores the plan when bound to a table with a different schema.
	PlanSchema() *table.Schema
	// ConstraintPlan returns the choice for c, false when the plan does
	// not cover the constraint.
	ConstraintPlan(c *Constraint) (PlanChoice, bool)
	// PartitionHint returns the last observed slot count of the partition
	// with the given column signature.
	PartitionHint(sig string) (int, bool)
	// RecordPartition feeds an observed slot count back to the plan.
	RecordPartition(sig string, slots int)
	// ViolationHint returns the last observed violation-pair count of c.
	ViolationHint(c *Constraint) (int, bool)
	// RecordViolations feeds an observed violation-pair count back.
	RecordViolations(c *Constraint, pairs int)
}

// PlanChoice is one constraint's slice of the set plan.
type PlanChoice struct {
	// ScanCols is the partition used for pair scans and point probes: the
	// constraint's canonical equality-join columns, or a shared subset of
	// them (a coarser partition another constraint already pays for).
	// Coarsening is sound because every predicate — including the
	// equality joins that justify the partition — is still checked by the
	// kernel on each candidate pair, and output order is canonical.
	ScanCols []int
	// PredOrder is the kernel evaluation order: a permutation of the
	// constraint's predicate indexes, most selective first.
	PredOrder []int
	// Pre0 and Pre1 are the predicate indexes hoisted out of the pair
	// loop into per-row pre-filter bitmaps: Pre0 predicates read only
	// tuple t1, Pre1 only t2. The residual kernel evaluates the rest.
	Pre0, Pre1 []int
}

// prefilter is the materialized per-row bitmap pair of one constraint's
// pushed-down single-side predicates, maintained against the bound table
// alongside the hash partitions: pass0[r] reports whether row r can bind
// t1 at all, pass1[r] whether it can bind t2. Bucket pair enumeration
// skips anchors failing pass0 and pre-masks candidates failing pass1
// before the residual kernel runs.
type prefilter struct {
	kern0, kern1 *Kernel
	// colRel[col] marks the columns the pushed predicates read; edits
	// elsewhere cannot change the bitmaps.
	colRel []bool
	// pass0/pass1 are nil when the corresponding side has no pushed
	// predicates (every row passes).
	pass0, pass1 []bool
	rows         int
	stale        bool
}

// rebuild recomputes both bitmaps over the whole table.
func (pf *prefilter) rebuild(t *table.Table) {
	n := t.NumRows()
	if pf.kern0 != nil {
		pf.pass0 = resizeBools(pf.pass0, n)
		for r := 0; r < n; r++ {
			pf.pass0[r] = pf.kern0.Pair(t, r, r)
		}
	}
	if pf.kern1 != nil {
		pf.pass1 = resizeBools(pf.pass1, n)
		for r := 0; r < n; r++ {
			pf.pass1[r] = pf.kern1.Pair(t, r, r)
		}
	}
	pf.rows = n
	pf.stale = false
}

// apply catches the bitmaps up with a window of single-cell edits.
// Windows with structural edits take applyStructural instead.
func (pf *prefilter) apply(t *table.Table, edits []table.Edit) {
	for _, e := range edits {
		if e.Kind != table.EditSet || e.Col >= len(pf.colRel) || !pf.colRel[e.Col] {
			continue
		}
		if pf.pass0 != nil {
			pf.pass0[e.Row] = pf.kern0.Pair(t, e.Row, e.Row)
		}
		if pf.pass1 != nil {
			pf.pass1[e.Row] = pf.kern1.Pair(t, e.Row, e.Row)
		}
	}
}

// applyStructural extends/compacts the bitmaps for a structural window
// instead of recomputing them: surviving unmoved rows keep their bits
// (same index, same bytes), and only the re-derived final positions plus
// relevantly-edited rows run the pushed kernels.
func (pf *prefilter) applyStructural(t *table.Table, rm *table.RowRemap) {
	n := rm.NewRows
	if pf.pass0 != nil {
		pf.pass0 = resizeBoolsPreserve(pf.pass0, n)
	}
	if pf.pass1 != nil {
		pf.pass1 = resizeBoolsPreserve(pf.pass1, n)
	}
	for _, p := range rm.Derive {
		pf.recomputeRow(t, int(p))
	}
	for _, e := range rm.Sets {
		if rm.CleanSet(e) && e.Col < len(pf.colRel) && pf.colRel[e.Col] {
			pf.recomputeRow(t, e.Row)
		}
	}
	pf.rows = n
}

func (pf *prefilter) recomputeRow(t *table.Table, r int) {
	if pf.pass0 != nil {
		pf.pass0[r] = pf.kern0.Pair(t, r, r)
	}
	if pf.pass1 != nil {
		pf.pass1[r] = pf.kern1.Pair(t, r, r)
	}
}

func resizeBools(b []bool, n int) []bool {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]bool, n)
}

// resizeBoolsPreserve resizes keeping existing prefix contents — required
// by structural replay, where survivor bits must outlive a grow.
func resizeBoolsPreserve(b []bool, n int) []bool {
	if cap(b) >= n {
		return b[:n]
	}
	grown := make([]bool, n)
	copy(grown, b)
	return grown
}

// UsePlan points the index at a compiled set plan (nil reverts to
// unplanned execution). Pooled consumers call this once per run so a
// scratch index recycled across sessions never applies a stale plan:
// the per-constraint memo and pre-filter state are plan-scoped and reset
// on every change.
func (ix *ScanIndex) UsePlan(p SetPlanner) {
	if ix.plan == p {
		return
	}
	ix.plan = p
	clear(ix.colsOf)
	ix.clearPrefilters()
}

// clearPrefilters drops all pre-filter state (plan or schema change).
func (ix *ScanIndex) clearPrefilters() {
	clear(ix.pre)
	ix.preOrdered = ix.preOrdered[:0]
}

// applyChoice folds the plan's choice for c into its memo entry,
// compiling the ordered and residual kernels and installing the
// pre-filter bitmaps. Any malformed choice degrades to the unplanned
// entry — the plan is an optimization surface, never a correctness one.
func (ix *ScanIndex) applyChoice(c *Constraint, t *table.Table, e *colsEntry, ch PlanChoice) {
	if len(ch.PredOrder) == len(c.Preds) {
		if k, err := compileKernelSeq(c, t.Schema(), ch.PredOrder); err == nil {
			e.kern = k
			e.resid = k
		}
	}
	if len(ch.ScanCols) > 0 && len(e.cols) > 0 && colsSubset(ch.ScanCols, e.cols) {
		e.scanCols = ch.ScanCols
		e.scanSig = colsSignature(ch.ScanCols)
	}
	if c.SingleTuple() || len(ch.Pre0)+len(ch.Pre1) == 0 {
		return
	}
	resid := residualOrder(c, ch)
	rk, err := compileKernelSeq(c, t.Schema(), resid)
	if err != nil {
		return
	}
	pf, ok := ix.pre[c]
	if !ok {
		pf = &prefilter{stale: true}
		pf.kern0, err = sideKernel(c, t.Schema(), ch.Pre0)
		if err != nil {
			return
		}
		pf.kern1, err = sideKernel(c, t.Schema(), ch.Pre1)
		if err != nil {
			return
		}
		if pf.kern0 == nil && pf.kern1 == nil {
			return
		}
		pf.colRel = make([]bool, t.Schema().Len())
		for _, idx := range ch.Pre0 {
			markPredCols(pf.colRel, c, t.Schema(), idx)
		}
		for _, idx := range ch.Pre1 {
			markPredCols(pf.colRel, c, t.Schema(), idx)
		}
		ix.pre[c] = pf
		ix.preOrdered = append(ix.preOrdered, pf)
	}
	e.resid = rk
}

// residualOrder returns the planned evaluation order minus the pushed
// predicates, preserving the plan's relative ordering.
func residualOrder(c *Constraint, ch PlanChoice) []int {
	pushed := make([]bool, len(c.Preds))
	for _, idx := range ch.Pre0 {
		if idx >= 0 && idx < len(pushed) {
			pushed[idx] = true
		}
	}
	for _, idx := range ch.Pre1 {
		if idx >= 0 && idx < len(pushed) {
			pushed[idx] = true
		}
	}
	order := ch.PredOrder
	if len(order) != len(c.Preds) {
		order = nil
	}
	out := make([]int, 0, len(c.Preds))
	if order == nil {
		for i := range c.Preds {
			if !pushed[i] {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range order {
		if i >= 0 && i < len(pushed) && !pushed[i] {
			out = append(out, i)
		}
	}
	return out
}

// sideKernel compiles the pushed predicates of one side; nil when none.
func sideKernel(c *Constraint, schema *table.Schema, idxs []int) (*Kernel, error) {
	if len(idxs) == 0 {
		return nil, nil
	}
	return compileKernelSeq(c, schema, idxs)
}

// markPredCols sets colRel for every column predicate idx reads.
func markPredCols(colRel []bool, c *Constraint, schema *table.Schema, idx int) {
	if idx < 0 || idx >= len(c.Preds) {
		return
	}
	p := c.Preds[idx]
	for _, o := range []Operand{p.Left, p.Right} {
		if o.IsConst {
			continue
		}
		if col, ok := schema.Index(o.Attr); ok {
			colRel[col] = true
		}
	}
}

// colsSubset reports whether every column of sub appears in super
// (set semantics; both lists are small).
func colsSubset(sub, super []int) bool {
	for _, s := range sub {
		found := false
		for _, e := range super {
			if e == s {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// prefilterFor returns c's pre-filter synced to t, nil when the plan
// pushed nothing for c. entryFor must have run for c already (it
// installs the prefilter).
func (ix *ScanIndex) prefilterFor(c *Constraint, t *table.Table) *prefilter {
	pf, ok := ix.pre[c]
	if !ok {
		return nil
	}
	if pf.stale || pf.rows != t.NumRows() {
		pf.rebuild(t)
	}
	return pf
}

// UsePlan points the live set's inner index at a compiled set plan (nil
// reverts to unplanned execution). Materialized lists stay valid across
// plan changes: planned and unplanned derivation are bit-identical.
func (s *LiveViolationSet) UsePlan(p SetPlanner) {
	s.ix.UsePlan(p)
}

// colsSignature interning: entryFor runs on the hot sync path of every
// repair fixpoint, and building a fresh signature string per call showed
// up as its only steady-state allocation. Signatures are tiny and drawn
// from a small universe (one per distinct join-column set per schema),
// so a bounded process-wide intern table makes the lookup alloc-free:
// map access via string(bytes) does not allocate, and the interned
// string is shared by every index in the process.
var (
	sigMu     sync.RWMutex
	sigIntern = make(map[string]string)
)

// maxSigInterned bounds the intern table; past it (a server churning
// through schemas forever) the table resets rather than growing without
// bound.
const maxSigInterned = 4096

// internSignature returns the canonical shared copy of the signature
// bytes, allocating only on first sight.
func internSignature(b []byte) string {
	sigMu.RLock()
	s, ok := sigIntern[string(b)]
	sigMu.RUnlock()
	if ok {
		return s
	}
	sigMu.Lock()
	defer sigMu.Unlock()
	if s, ok = sigIntern[string(b)]; ok {
		return s
	}
	if len(sigIntern) >= maxSigInterned {
		clear(sigIntern)
	}
	s = string(b)
	sigIntern[s] = s
	return s
}
