package dc

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/table"
)

// Violation records one witness that a constraint is violated: the rows
// bound to t1 and t2. For single-tuple constraints Row2 equals Row1.
type Violation struct {
	Constraint *Constraint
	Row1, Row2 int
}

// String renders the violation, e.g. "C1 violated by (t3, t6)".
func (v Violation) String() string {
	if v.Row1 == v.Row2 {
		return fmt.Sprintf("%s violated by t%d", v.Constraint.ID, v.Row1+1)
	}
	return fmt.Sprintf("%s violated by (t%d, t%d)", v.Constraint.ID, v.Row1+1, v.Row2+1)
}

// SatisfiedPair reports whether the constraint body (the denied conjunction)
// holds for rows (i, j) bound to (t1, t2). Unknown predicates (null or
// incomparable operands) make the conjunction fail, so nulls never create
// violations.
func (c *Constraint) SatisfiedPair(t *table.Table, i, j int) (bool, error) {
	row1 := t.RowView(i)
	row2 := t.RowView(j)
	for _, p := range c.Preds {
		sat, known, err := p.Eval(row1, row2, t.Schema())
		if err != nil {
			return false, err
		}
		if !known || !sat {
			return false, nil
		}
	}
	return true, nil
}

// ViolatesRow reports whether row i participates in any violation of the
// constraint: as the single tuple for single-tuple DCs, or bound to either
// t1 or t2 against any other row for pair DCs. This is the "tuple t has a
// contradiction according to C" primitive of the paper's Algorithm 1.
func (c *Constraint) ViolatesRow(t *table.Table, i int) (bool, error) {
	if c.SingleTuple() {
		return c.SatisfiedPair(t, i, i)
	}
	for j := 0; j < t.NumRows(); j++ {
		if j == i {
			continue
		}
		if sat, err := c.SatisfiedPair(t, i, j); err != nil || sat {
			return sat, err
		}
		if sat, err := c.SatisfiedPair(t, j, i); err != nil || sat {
			return sat, err
		}
	}
	return false, nil
}

// Violations scans the whole table and returns every violation of the
// constraint. Pair violations are reported once per ordered pair (i, j)
// with i != j that satisfies the body; callers that want unordered pairs
// can deduplicate with min/max. The scan is the naive O(n²) reference; see
// ViolationsIndexed for the accelerated version.
func (c *Constraint) Violations(t *table.Table) ([]Violation, error) {
	var out []Violation
	if c.SingleTuple() {
		for i := 0; i < t.NumRows(); i++ {
			sat, err := c.SatisfiedPair(t, i, i)
			if err != nil {
				return nil, err
			}
			if sat {
				out = append(out, Violation{Constraint: c, Row1: i, Row2: i})
			}
		}
		return out, nil
	}
	for i := 0; i < t.NumRows(); i++ {
		for j := 0; j < t.NumRows(); j++ {
			if i == j {
				continue
			}
			sat, err := c.SatisfiedPair(t, i, j)
			if err != nil {
				return nil, err
			}
			if sat {
				out = append(out, Violation{Constraint: c, Row1: i, Row2: j})
			}
		}
	}
	return out, nil
}

// equalityJoinAttrs returns attributes A with a predicate t1.A = t2.A —
// usable as hash-join keys for the indexed scan.
func (c *Constraint) equalityJoinAttrs() []string {
	var out []string
	for _, p := range c.Preds {
		if p.Op != OpEq || p.Left.IsConst || p.Right.IsConst {
			continue
		}
		if p.Left.Attr == p.Right.Attr && p.Left.Tuple != p.Right.Tuple {
			out = append(out, p.Left.Attr)
		}
	}
	return out
}

// JoinColumns resolves the equality join attributes to column indexes;
// empty when the constraint has no usable join key. An attribute missing
// from the schema (an unvalidated constraint) yields no join key at all
// rather than a panic: the caller then falls through to the
// kernel/interpreted scan, whose operand resolution reports the proper
// "attribute not in schema" error — identically on every evaluation
// path. The set planner (internal/dc/plan) uses the same resolution so
// its partition-sharing analysis and the executor agree exactly.
func (c *Constraint) JoinColumns(schema *table.Schema) []int {
	attrs := c.equalityJoinAttrs()
	cols := make([]int, 0, len(attrs))
	for _, a := range attrs {
		idx, ok := schema.Index(a)
		if !ok {
			return nil
		}
		cols = append(cols, idx)
	}
	return cols
}

// joinCols is JoinColumns against t's schema.
func (c *Constraint) joinCols(t *table.Table) []int {
	return c.JoinColumns(t.Schema())
}

// appendCompositeKey appends the hash-join key of row i over cols to buf:
// every join column's equality-canonical key (Value.AppendJoinKey, which
// unifies numeric kinds exactly as the = predicate does) joined with a
// separator. ok is false when any join column is null or NaN — such rows
// can never satisfy the equality predicates (NULL = x is unknown and
// NaN ≠ NaN), so they are excluded from bucketing entirely. Keying NaN
// rows into a shared bucket instead would be sound only for consumers that
// re-verify every pair; consumers that trust the partition as an equality
// grouping (ForEachJoinGroup, the FD chase) would treat NaN rows as
// joined when the = predicate says they never are. The byte form lets
// callers probe bucket maps via the compiler's alloc-free
// map[string(bytes)] access.
func appendCompositeKey(buf []byte, t *table.Table, row int, cols []int) ([]byte, bool) {
	for n, col := range cols {
		v := t.Get(row, col)
		if v.IsNull() || v.IsNaN() {
			return buf, false
		}
		if n > 0 {
			buf = append(buf, 0x1f)
		}
		buf = v.AppendJoinKey(buf)
	}
	return buf, true
}

// bucketSet is the hash partition of one table over one join-column
// signature, maintained incrementally. Bucket slots are interned for the
// set's lifetime (an emptied bucket keeps its slot and storage), members
// lists are kept in ascending row order, and rowBucket inverts the
// partition so per-row probes and delta removals need no key computation.
type bucketSet struct {
	cols []int
	// idx maps composite key -> bucket slot; append-only until a rebuild.
	idx map[string]int
	// members[slot] lists the rows of that bucket, ascending. Only
	// members[:nSlots] are live; retired slots keep their storage for the
	// next rebuild.
	members [][]int
	nSlots  int
	// rowBucket[row] is the row's bucket slot, -1 when a null join column
	// excludes the row from the partition.
	rowBucket []int
	// stale marks the set for lazy rebuild after wholesale invalidation.
	stale bool
}

// slotFor interns key, reusing a retired members slice when one is free.
// key must be the current contents of the caller's key buffer.
func (bs *bucketSet) slotFor(key []byte) int {
	if slot, ok := bs.idx[string(key)]; ok {
		return slot
	}
	slot := bs.nSlots
	bs.nSlots++
	if slot < len(bs.members) {
		bs.members[slot] = bs.members[slot][:0]
	} else {
		bs.members = append(bs.members, nil)
	}
	bs.idx[string(key)] = slot
	return slot
}

// rebuild repartitions the whole table, reusing interned storage.
func (bs *bucketSet) rebuild(t *table.Table, keyBuf *[]byte) {
	clear(bs.idx)
	bs.nSlots = 0
	n := t.NumRows()
	if cap(bs.rowBucket) >= n {
		bs.rowBucket = bs.rowBucket[:n]
	} else {
		bs.rowBucket = make([]int, n)
	}
	for i := 0; i < n; i++ {
		key, ok := appendCompositeKey((*keyBuf)[:0], t, i, bs.cols)
		*keyBuf = key
		if !ok {
			bs.rowBucket[i] = -1
			continue
		}
		slot := bs.slotFor(key)
		bs.members[slot] = append(bs.members[slot], i)
		bs.rowBucket[i] = slot
	}
	bs.stale = false
}

// apply catches the partition up with a window of single-cell edits: only
// rows whose edited column participates in this signature move, and each
// move touches exactly the source and destination buckets — the per-bucket
// delta maintenance that keeps one-cell-per-step workloads (session edits,
// coalition walks, repair fixpoints) off the full rebuild path. Windows
// with structural edits take applyStructural instead.
func (bs *bucketSet) apply(t *table.Table, edits []table.Edit, keyBuf *[]byte) {
	for _, e := range edits {
		touched := false
		for _, c := range bs.cols {
			if c == e.Col {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		bs.moveRow(t, e.Row, keyBuf)
	}
}

// applyStructural catches the partition up with a window containing row
// inserts/deletes, decoded by rm: dead and moved origins leave their
// buckets by reverse-index lookup (no key computation), the reverse index
// resizes to the final shape, and exactly the moved-in, inserted, and
// relevantly-edited rows re-key against the final table — every other
// row's bucket and index are untouched, which keeps single-row structural
// edits O(changed rows), not O(table). reinsert is caller-pooled scratch
// for deduplicating in-place edits.
func (bs *bucketSet) applyStructural(t *table.Table, rm *table.RowRemap, keyBuf *[]byte, reinsert *[]int) {
	// Phase 1: drop every dead or moved origin from its bucket. Member
	// lists hold origin-space indexes until phase 4, so reverse-index
	// removal is exact.
	for _, o := range rm.Retract {
		if slot := bs.rowBucket[o]; slot >= 0 {
			bs.members[slot] = removeSortedRow(bs.members[slot], int(o))
		}
	}
	// Phase 2: in-place cell edits on surviving unmoved rows whose column
	// participates in this signature leave their bucket now and re-key in
	// phase 4. rowBucket doubles as the dedup sentinel (-2 = pending).
	ri := (*reinsert)[:0]
	for _, e := range rm.Sets {
		if !rm.CleanSet(e) {
			continue
		}
		touched := false
		for _, c := range bs.cols {
			if c == e.Col {
				touched = true
				break
			}
		}
		if !touched || bs.rowBucket[e.Row] == -2 {
			continue
		}
		if slot := bs.rowBucket[e.Row]; slot >= 0 {
			bs.members[slot] = removeSortedRow(bs.members[slot], e.Row)
		}
		bs.rowBucket[e.Row] = -2
		ri = append(ri, e.Row)
	}
	*reinsert = ri
	// Phase 3: resize the reverse index to the final shape. Survivors keep
	// their slots; every position past the old count is in rm.Derive and
	// overwritten in phase 4.
	n := rm.NewRows
	if cap(bs.rowBucket) >= n {
		bs.rowBucket = bs.rowBucket[:n]
	} else {
		grown := make([]int, n)
		copy(grown, bs.rowBucket)
		bs.rowBucket = grown
	}
	// Phase 4: key every re-derived position and edited row from the
	// final table.
	for _, p := range rm.Derive {
		bs.insertRow(t, int(p), keyBuf)
	}
	for _, r := range ri {
		bs.insertRow(t, r, keyBuf)
	}
}

// moveRow re-buckets one row against the table's current contents.
func (bs *bucketSet) moveRow(t *table.Table, row int, keyBuf *[]byte) {
	if old := bs.rowBucket[row]; old >= 0 {
		bs.members[old] = removeSortedRow(bs.members[old], row)
	}
	bs.insertRow(t, row, keyBuf)
}

// insertRow keys row against the table's current contents and inserts it
// into its bucket — the second half of moveRow, for rows already removed.
func (bs *bucketSet) insertRow(t *table.Table, row int, keyBuf *[]byte) {
	key, ok := appendCompositeKey((*keyBuf)[:0], t, row, bs.cols)
	*keyBuf = key
	if !ok {
		bs.rowBucket[row] = -1
		return
	}
	slot := bs.slotFor(key)
	bs.members[slot] = insertSortedRow(bs.members[slot], row)
	bs.rowBucket[row] = slot
}

// removeSortedRow deletes row from the ascending slice in place.
func removeSortedRow(s []int, row int) []int {
	i := sort.SearchInts(s, row)
	if i < len(s) && s[i] == row {
		return slices.Delete(s, i, i+1)
	}
	return s
}

// insertSortedRow inserts row into the ascending slice, keeping order.
func insertSortedRow(s []int, row int) []int {
	i := sort.SearchInts(s, row)
	if i < len(s) && s[i] == row {
		return s
	}
	return slices.Insert(s, i, row)
}

// ScanIndex caches the hash partitions that indexed violation scans build,
// keyed on the table's (pointer, generation) snapshot and the join-column
// signature. Repeated scans of an unchanged table — every constraint of a
// set, every rule of a repair pass, the final fixpoint verification —
// reuse the buckets instead of recomputing them from zero. When the bound
// table's generation moves, the index first tries to catch up from the
// table's edit log (table.EditsSince): a single-cell edit then rebuilds
// only the buckets whose composite key involves the edited column, and only
// the two buckets the row moves between; a structural window (row
// inserts/deletes) is decoded once through a table.RowRemap and replayed
// against exactly the retracted origins and re-derived positions.
// Wholesale invalidation (a different table, a schema switch, or a log
// overrun) falls back to lazy full rebuilds.
//
// A ScanIndex is confined to one goroutine (typically one repair run); the
// zero value is NOT ready to use — construct with NewScanIndex.
type ScanIndex struct {
	tbl    *table.Table
	schema *table.Schema
	gen    uint64
	// perCols maps column signature -> incrementally-maintained partition.
	perCols map[string]*bucketSet
	// ordered holds perCols' values in insertion order; sync iterates it so
	// delta replay and invalidation sweep the partitions deterministically.
	ordered []*bucketSet
	// colsOf memoizes each constraint's resolved join columns, their
	// signature, and the compiled predicate kernel: all three depend only
	// on the constraint and the schema, and the per-row hot loops below
	// would otherwise re-derive them per call.
	colsOf  map[*Constraint]colsEntry
	editBuf []table.Edit
	keyBuf  []byte
	// rows is the bound table's row count at generation gen — the origin
	// space a structural edit window is decoded against. remap and
	// reinsertBuf are that decode's pooled scratch.
	rows        int
	remap       table.RowRemap
	reinsertBuf []int
	// alive is the shared survivor mask for columnar bucket filtering.
	alive []bool
	// plan is the constraint-set plan in effect, nil for unplanned
	// execution. pre/preOrdered hold the plan's materialized pre-filter
	// bitmaps per constraint; the slice gives sync a deterministic sweep.
	plan       SetPlanner
	pre        map[*Constraint]*prefilter
	preOrdered []*prefilter
}

type colsEntry struct {
	cols []int
	sig  string
	// kern is the constraint body compiled against the table's schema
	// (in plan order when planned); kernErr records a compile failure
	// (unknown attribute), surfaced on use with the interpreter's error
	// text.
	kern    *Kernel
	kernErr error
	// scanCols/scanSig name the partition backing pair scans and point
	// probes: the exact join columns, or the plan's shared (possibly
	// coarser) subset. resid is the kernel run inside bucket pair loops —
	// the full kernel, minus any predicates the plan pushed into
	// pre-filter bitmaps.
	scanCols []int
	scanSig  string
	resid    *Kernel
}

// NewScanIndex returns an empty scan cache.
func NewScanIndex() *ScanIndex {
	return &ScanIndex{
		perCols: make(map[string]*bucketSet),
		colsOf:  make(map[*Constraint]colsEntry),
		pre:     make(map[*Constraint]*prefilter),
	}
}

// maxColsEntries bounds the per-constraint memo of a long-lived index;
// beyond it (a server session cycling AddDC/RemoveDC forever) the memo is
// dropped rather than pinning a compiled kernel for every constraint ever
// queried.
const maxColsEntries = 256

// entryFor resolves (memoized) c's join columns, signature and compiled
// kernel over t's schema. Safe across generations of one table — schemas
// are immutable — but invalidated when the index moves to a different
// table or the bound table's schema is swapped by a shape-changing
// CopyFrom.
func (ix *ScanIndex) entryFor(c *Constraint, t *table.Table) colsEntry {
	ix.sync(t)
	if e, ok := ix.colsOf[c]; ok {
		return e
	}
	if len(ix.colsOf) >= maxColsEntries {
		clear(ix.colsOf)
	}
	cols := c.joinCols(t)
	e := colsEntry{cols: cols, sig: colsSignature(cols)}
	e.kern, e.kernErr = compileKernel(c, t.Schema())
	e.scanCols, e.scanSig = e.cols, e.sig
	e.resid = e.kern
	if ix.plan != nil && e.kernErr == nil && ix.plan.PlanSchema() == t.Schema() {
		if ch, ok := ix.plan.ConstraintPlan(c); ok {
			ix.applyChoice(c, t, &e, ch)
		}
	}
	ix.colsOf[c] = e
	return e
}

// kernelFor returns c's compiled predicate kernel over t's schema.
func (ix *ScanIndex) kernelFor(c *Constraint, t *table.Table) (*Kernel, error) {
	e := ix.entryFor(c, t)
	return e.kern, e.kernErr
}

// aliveFor returns the shared survivor mask resized to n, every entry true.
func (ix *ScanIndex) aliveFor(n int) []bool {
	if cap(ix.alive) < n {
		ix.alive = make([]bool, n)
	}
	ix.alive = ix.alive[:n]
	for i := range ix.alive {
		ix.alive[i] = true
	}
	return ix.alive
}

// sync points the index at t, catching up from the table's edit log when
// possible and invalidating wholesale otherwise.
func (ix *ScanIndex) sync(t *table.Table) {
	if ix.tbl == t && ix.schema == t.Schema() {
		if ix.gen == t.Generation() {
			return
		}
		ix.editBuf = ix.editBuf[:0]
		if edits, ok := t.EditsSince(ix.gen, ix.editBuf); ok {
			ix.editBuf = edits
			if table.Structural(edits) {
				// Decode the structural window once against the row count
				// the partitions were built over; a decode that disagrees
				// with the live table means the window cannot be trusted,
				// so fall through to wholesale invalidation.
				ix.remap.Resolve(edits, ix.rows)
				if ix.remap.NewRows == t.NumRows() {
					for _, bs := range ix.ordered {
						if !bs.stale {
							bs.applyStructural(t, &ix.remap, &ix.keyBuf, &ix.reinsertBuf)
						}
					}
					for _, pf := range ix.preOrdered {
						if !pf.stale {
							pf.applyStructural(t, &ix.remap)
						}
					}
					ix.gen = t.Generation()
					ix.rows = t.NumRows()
					return
				}
			} else {
				for _, bs := range ix.ordered {
					if !bs.stale {
						bs.apply(t, edits, &ix.keyBuf)
					}
				}
				for _, pf := range ix.preOrdered {
					if !pf.stale {
						pf.apply(t, edits)
					}
				}
				ix.gen = t.Generation()
				ix.rows = t.NumRows()
				return
			}
		}
	} else if ix.schema != t.Schema() {
		// Column resolutions and compiled kernels are schema-scoped, not
		// table-scoped: pointing the index at a clone (which shares its
		// source's schema) must not recompile every constraint per run.
		// Pre-filter kernels are schema-scoped too.
		clear(ix.colsOf)
		ix.clearPrefilters()
	}
	ix.tbl = t
	ix.schema = t.Schema()
	ix.gen = t.Generation()
	ix.rows = t.NumRows()
	for _, bs := range ix.ordered {
		bs.stale = true
	}
	for _, pf := range ix.preOrdered {
		pf.stale = true
	}
}

// bucketSetFor returns the synced partition over c's exact join-column
// signature, or nil when the constraint has no equality join key. Group
// enumeration (ForEachJoinGroup, the FD chase) must use this partition:
// its buckets are the equivalence classes of the composite join key, a
// semantics a plan-shared coarser partition does not provide.
func (ix *ScanIndex) bucketSetFor(c *Constraint, t *table.Table) *bucketSet {
	e := ix.entryFor(c, t)
	return ix.bucketSetBySig(e.cols, e.sig, t)
}

// scanBucketSetFor returns the synced pair-scan partition for an entry:
// the plan-shared partition when one is assigned, the exact partition
// otherwise. Sound for pair scans and point probes only — every
// candidate pair is re-checked by the kernel.
func (ix *ScanIndex) scanBucketSetFor(e colsEntry, t *table.Table) *bucketSet {
	return ix.bucketSetBySig(e.scanCols, e.scanSig, t)
}

// bucketSetBySig returns the synced partition for a column signature,
// creating it on first use (pre-sized from the plan's observed slot
// count when available) and feeding rebuild cardinalities back.
func (ix *ScanIndex) bucketSetBySig(cols []int, sig string, t *table.Table) *bucketSet {
	if len(cols) == 0 {
		return nil
	}
	bs, ok := ix.perCols[sig]
	if !ok {
		hint := 0
		if ix.plan != nil {
			hint, _ = ix.plan.PartitionHint(sig)
		}
		bs = &bucketSet{cols: cols, idx: make(map[string]int, hint), stale: true}
		ix.perCols[sig] = bs
		ix.ordered = append(ix.ordered, bs)
	}
	if bs.stale {
		bs.rebuild(t, &ix.keyBuf)
		if ix.plan != nil {
			ix.plan.RecordPartition(sig, bs.nSlots)
		}
	}
	return bs
}

// colsSignature encodes a column-index list as an interned map key; the
// varint bytes build in a stack buffer and the returned string is the
// process-wide shared copy, so steady-state calls allocate nothing.
func colsSignature(cols []int) string {
	var arr [32]byte
	b := arr[:0]
	for _, c := range cols {
		for c >= 0x80 {
			b = append(b, byte(c)|0x80)
			c >>= 7
		}
		b = append(b, byte(c))
	}
	return internSignature(b)
}

// ViolationsIndexed is Violations accelerated with a hash partition on the
// composite of all equality join attributes when any exist (e.g.
// t1.Team = t2.Team ∧ t1.Year = t2.Year buckets on (Team, Year)). Rows are
// bucketed by those attributes' values and only intra-bucket pairs are
// checked, turning the common FD-shaped constraint from O(n²) into
// O(n + Σ bucket²). Falls back to the naive scan when no join key exists.
// The output order matches Violations exactly.
func (c *Constraint) ViolationsIndexed(t *table.Table) ([]Violation, error) {
	return c.ViolationsCached(t, nil)
}

// ViolationsCached is ViolationsIndexed with an optional ScanIndex: when ix
// is non-nil the hash buckets are reused across scans of the same table
// generation instead of rebuilt per call. It is AppendViolations into a
// fresh slice.
func (c *Constraint) ViolationsCached(t *table.Table, ix *ScanIndex) ([]Violation, error) {
	return c.AppendViolations(t, ix, nil)
}

// AppendViolations appends every violation of the constraint to out and
// returns the extended slice, so hot loops (repair passes re-scanning after
// each fix) can reuse one buffer across calls. Output order and contents
// match Violations exactly. With an index, intra-bucket pairs are checked
// through the compiled columnar kernel; without one, the interpreted scan
// runs (the cross-validation reference).
func (c *Constraint) AppendViolations(t *table.Table, ix *ScanIndex, out []Violation) ([]Violation, error) {
	if c.SingleTuple() || ix == nil {
		return c.appendViolationsScan(t, out)
	}
	e := ix.entryFor(c, t)
	bs := ix.scanBucketSetFor(e, t)
	if bs == nil {
		return c.appendViolationsScan(t, out)
	}
	if e.kernErr != nil {
		return out, e.kernErr
	}
	// Pre-filter bitmaps (planned execution only): anchors failing the
	// t1-side predicates are skipped outright, candidates failing the
	// t2 side are pre-masked, and the residual kernel checks the rest.
	var pass0, pass1 []bool
	if pf := ix.prefilterFor(c, t); pf != nil {
		pass0, pass1 = pf.pass0, pf.pass1
	}
	base := len(out)
	for _, rows := range bs.members[:bs.nSlots] {
		if len(rows) < 2 {
			continue
		}
		alive := ix.aliveFor(len(rows))
		for n, i := range rows {
			if pass0 != nil && !pass0[i] {
				continue
			}
			any := false
			for m := range alive {
				ok := m != n && (pass1 == nil || pass1[rows[m]])
				alive[m] = ok
				any = any || ok
			}
			if !any {
				continue
			}
			e.resid.Filter(t, 0, i, rows, alive)
			for m, j := range rows {
				if alive[m] {
					out = append(out, Violation{Constraint: c, Row1: i, Row2: j})
				}
			}
		}
	}
	added := out[base:]
	slices.SortFunc(added, violationOrder)
	return out, nil
}

// appendViolationsScan is the unindexed append form of Violations: the
// single-tuple scan, or the naive pair scan when no join key exists. It
// also handles constraints with join keys when no index is supplied, by
// bucketing on the fly.
func (c *Constraint) appendViolationsScan(t *table.Table, out []Violation) ([]Violation, error) {
	if c.SingleTuple() {
		for i := 0; i < t.NumRows(); i++ {
			sat, err := c.SatisfiedPair(t, i, i)
			if err != nil {
				return out, err
			}
			if sat {
				out = append(out, Violation{Constraint: c, Row1: i, Row2: i})
			}
		}
		return out, nil
	}
	cols := c.joinCols(t)
	if len(cols) == 0 {
		for i := 0; i < t.NumRows(); i++ {
			for j := 0; j < t.NumRows(); j++ {
				if i == j {
					continue
				}
				sat, err := c.SatisfiedPair(t, i, j)
				if err != nil {
					return out, err
				}
				if sat {
					out = append(out, Violation{Constraint: c, Row1: i, Row2: j})
				}
			}
		}
		return out, nil
	}
	var bs bucketSet
	bs.cols = cols
	bs.idx = make(map[string]int)
	var keyBuf []byte
	bs.rebuild(t, &keyBuf)
	base := len(out)
	for _, rows := range bs.members[:bs.nSlots] {
		for _, i := range rows {
			for _, j := range rows {
				if i == j {
					continue
				}
				sat, err := c.SatisfiedPair(t, i, j)
				if err != nil {
					return out, err
				}
				if sat {
					out = append(out, Violation{Constraint: c, Row1: i, Row2: j})
				}
			}
		}
	}
	added := out[base:]
	slices.SortFunc(added, violationOrder)
	return out, nil
}

// ViolatesRowCached is ViolatesRow restricted to the row's hash bucket when
// the constraint has equality join attributes: only bucket partners can
// co-satisfy the equality predicates, so the per-row check drops from
// O(n) to O(bucket), and the incrementally-maintained reverse index makes
// the bucket lookup key-free. Semantics match ViolatesRow exactly.
func (c *Constraint) ViolatesRowCached(t *table.Table, i int, ix *ScanIndex) (bool, error) {
	if c.SingleTuple() {
		return c.SatisfiedPair(t, i, i)
	}
	if ix == nil {
		return c.ViolatesRow(t, i)
	}
	e := ix.entryFor(c, t)
	bs := ix.scanBucketSetFor(e, t)
	if bs == nil {
		return c.ViolatesRow(t, i)
	}
	slot := bs.rowBucket[i]
	if slot < 0 {
		// A null join key makes every equality predicate unknown, and a NaN
		// join key can never satisfy = : row i cannot participate in any
		// pair violation of this constraint. (The scan partition's columns
		// are a subset of the exact join columns, so its null exclusion
		// implies an unknown equality predicate just the same.)
		return false, nil
	}
	if e.kernErr != nil {
		return false, e.kernErr
	}
	for _, j := range bs.members[slot] {
		if j == i {
			continue
		}
		if e.kern.Pair(t, i, j) || e.kern.Pair(t, j, i) {
			return true, nil
		}
	}
	return false, nil
}

// ViolationPairsForRow counts the ordered violating pairs row i
// participates in under the constraint: for pair DCs, the number of (i, j)
// and (j, i) bindings with j ≠ i that satisfy the denied conjunction; for
// single-tuple DCs, 1 when the row itself violates. When an index is
// supplied and the constraint has equality join keys, only the row's hash
// bucket is scanned — partners outside it cannot satisfy the equality
// predicates, so the count is identical at O(bucket) cost.
func (c *Constraint) ViolationPairsForRow(t *table.Table, i int, ix *ScanIndex) (int, error) {
	if c.SingleTuple() {
		sat, err := c.SatisfiedPair(t, i, i)
		if err != nil || !sat {
			return 0, err
		}
		return 1, nil
	}
	n := 0
	count := func(j int) error {
		if j == i {
			return nil
		}
		sat, err := c.SatisfiedPair(t, i, j)
		if err != nil {
			return err
		}
		if sat {
			n++
		}
		sat, err = c.SatisfiedPair(t, j, i)
		if err != nil {
			return err
		}
		if sat {
			n++
		}
		return nil
	}
	if ix != nil {
		e := ix.entryFor(c, t)
		if bs := ix.scanBucketSetFor(e, t); bs != nil {
			slot := bs.rowBucket[i]
			if slot < 0 {
				return 0, nil
			}
			if e.kernErr != nil {
				return 0, e.kernErr
			}
			for _, j := range bs.members[slot] {
				if j == i {
					continue
				}
				if e.kern.Pair(t, i, j) {
					n++
				}
				if e.kern.Pair(t, j, i) {
					n++
				}
			}
			return n, nil
		}
	}
	for j := 0; j < t.NumRows(); j++ {
		if err := count(j); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// ForEachJoinGroup invokes fn once per group of rows sharing c's composite
// equality-join key (rows ascending within a group; groups in
// bucket-interning order, which is deterministic for a deterministic edit
// sequence). Groups excluded by a null join column are skipped. ok is
// false, with fn never invoked, when the constraint has no equality join
// key. The rows slice aliases index storage and must be treated as
// read-only; fn may mutate non-join columns of t, and the index will catch
// up on its next sync.
func (c *Constraint) ForEachJoinGroup(t *table.Table, ix *ScanIndex, fn func(rows []int) error) (ok bool, err error) {
	bs := ix.bucketSetFor(c, t)
	if bs == nil {
		return false, nil
	}
	for _, rows := range bs.members[:bs.nSlots] {
		if len(rows) == 0 {
			continue // interned slot whose bucket drained
		}
		if err := fn(rows); err != nil {
			return true, err
		}
	}
	return true, nil
}

// AllViolations runs the indexed scan for every constraint in order and
// concatenates the results. One ScanIndex spans the whole pass, so
// constraints sharing join columns share buckets.
func AllViolations(cs []*Constraint, t *table.Table) ([]Violation, error) {
	ix := NewScanIndex()
	var out []Violation
	for _, c := range cs {
		vs, err := c.ViolationsCached(t, ix)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// Consistent reports whether the table satisfies every constraint.
func Consistent(cs []*Constraint, t *table.Table) (bool, error) {
	ix := NewScanIndex()
	for _, c := range cs {
		vs, err := c.ViolationsCached(t, ix)
		if err != nil {
			return false, err
		}
		if len(vs) > 0 {
			return false, nil
		}
	}
	return true, nil
}

// ValidateSet validates every constraint against a schema and checks ID
// uniqueness.
func ValidateSet(cs []*Constraint, schema *table.Schema) error {
	seen := make(map[string]bool)
	for _, c := range cs {
		if err := c.Validate(schema); err != nil {
			return err
		}
		if c.ID != "" {
			if seen[c.ID] {
				return fmt.Errorf("dc: duplicate constraint ID %q", c.ID)
			}
			seen[c.ID] = true
		}
	}
	return nil
}

// ByID returns the constraint with the given ID, or nil.
func ByID(cs []*Constraint, id string) *Constraint {
	for _, c := range cs {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Without returns a new slice with the identified constraint removed.
func Without(cs []*Constraint, id string) []*Constraint {
	out := make([]*Constraint, 0, len(cs))
	for _, c := range cs {
		if c.ID != id {
			out = append(out, c)
		}
	}
	return out
}
