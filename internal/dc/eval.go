package dc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/table"
)

// Violation records one witness that a constraint is violated: the rows
// bound to t1 and t2. For single-tuple constraints Row2 equals Row1.
type Violation struct {
	Constraint *Constraint
	Row1, Row2 int
}

// String renders the violation, e.g. "C1 violated by (t3, t6)".
func (v Violation) String() string {
	if v.Row1 == v.Row2 {
		return fmt.Sprintf("%s violated by t%d", v.Constraint.ID, v.Row1+1)
	}
	return fmt.Sprintf("%s violated by (t%d, t%d)", v.Constraint.ID, v.Row1+1, v.Row2+1)
}

// SatisfiedPair reports whether the constraint body (the denied conjunction)
// holds for rows (i, j) bound to (t1, t2). Unknown predicates (null or
// incomparable operands) make the conjunction fail, so nulls never create
// violations.
func (c *Constraint) SatisfiedPair(t *table.Table, i, j int) (bool, error) {
	row1 := t.RowView(i)
	row2 := t.RowView(j)
	for _, p := range c.Preds {
		sat, known, err := p.Eval(row1, row2, t.Schema())
		if err != nil {
			return false, err
		}
		if !known || !sat {
			return false, nil
		}
	}
	return true, nil
}

// ViolatesRow reports whether row i participates in any violation of the
// constraint: as the single tuple for single-tuple DCs, or bound to either
// t1 or t2 against any other row for pair DCs. This is the "tuple t has a
// contradiction according to C" primitive of the paper's Algorithm 1.
func (c *Constraint) ViolatesRow(t *table.Table, i int) (bool, error) {
	if c.SingleTuple() {
		return c.SatisfiedPair(t, i, i)
	}
	for j := 0; j < t.NumRows(); j++ {
		if j == i {
			continue
		}
		if sat, err := c.SatisfiedPair(t, i, j); err != nil || sat {
			return sat, err
		}
		if sat, err := c.SatisfiedPair(t, j, i); err != nil || sat {
			return sat, err
		}
	}
	return false, nil
}

// Violations scans the whole table and returns every violation of the
// constraint. Pair violations are reported once per ordered pair (i, j)
// with i != j that satisfies the body; callers that want unordered pairs
// can deduplicate with min/max. The scan is the naive O(n²) reference; see
// ViolationsIndexed for the accelerated version.
func (c *Constraint) Violations(t *table.Table) ([]Violation, error) {
	var out []Violation
	if c.SingleTuple() {
		for i := 0; i < t.NumRows(); i++ {
			sat, err := c.SatisfiedPair(t, i, i)
			if err != nil {
				return nil, err
			}
			if sat {
				out = append(out, Violation{Constraint: c, Row1: i, Row2: i})
			}
		}
		return out, nil
	}
	for i := 0; i < t.NumRows(); i++ {
		for j := 0; j < t.NumRows(); j++ {
			if i == j {
				continue
			}
			sat, err := c.SatisfiedPair(t, i, j)
			if err != nil {
				return nil, err
			}
			if sat {
				out = append(out, Violation{Constraint: c, Row1: i, Row2: j})
			}
		}
	}
	return out, nil
}

// equalityJoinAttrs returns attributes A with a predicate t1.A = t2.A —
// usable as hash-join keys for the indexed scan.
func (c *Constraint) equalityJoinAttrs() []string {
	var out []string
	for _, p := range c.Preds {
		if p.Op != OpEq || p.Left.IsConst || p.Right.IsConst {
			continue
		}
		if p.Left.Attr == p.Right.Attr && p.Left.Tuple != p.Right.Tuple {
			out = append(out, p.Left.Attr)
		}
	}
	return out
}

// joinCols resolves the equality join attributes to column indexes; empty
// when the constraint has no usable join key.
func (c *Constraint) joinCols(t *table.Table) []int {
	attrs := c.equalityJoinAttrs()
	cols := make([]int, 0, len(attrs))
	for _, a := range attrs {
		cols = append(cols, t.Schema().MustIndex(a))
	}
	return cols
}

// compositeKey builds the hash-join key of row i over cols: every join
// column's canonical Value.Key joined with a separator. ok is false when
// any join column is null — such rows can never satisfy the equality
// predicates, so they are excluded from bucketing entirely.
func compositeKey(t *table.Table, row int, cols []int) (string, bool) {
	if len(cols) == 1 {
		v := t.Get(row, cols[0])
		if v.IsNull() {
			return "", false
		}
		return v.Key(), true
	}
	var b strings.Builder
	for n, col := range cols {
		v := t.Get(row, col)
		if v.IsNull() {
			return "", false
		}
		if n > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(v.Key())
	}
	return b.String(), true
}

// buildBuckets partitions rows by their composite join key over cols.
func buildBuckets(t *table.Table, cols []int) map[string][]int {
	buckets := make(map[string][]int)
	for i := 0; i < t.NumRows(); i++ {
		if key, ok := compositeKey(t, i, cols); ok {
			buckets[key] = append(buckets[key], i)
		}
	}
	return buckets
}

// ScanIndex caches the hash buckets that indexed violation scans build,
// keyed on the table's (pointer, generation) snapshot and the join-column
// signature. Repeated scans of an unchanged table — every constraint of a
// set, every rule of a repair pass, the final fixpoint verification —
// reuse the buckets instead of recomputing them from zero. Any table
// mutation bumps the generation and invalidates the cache wholesale.
//
// A ScanIndex is confined to one goroutine (typically one repair run); the
// zero value is NOT ready to use — construct with NewScanIndex.
type ScanIndex struct {
	tbl     *table.Table
	gen     uint64
	perCols map[string]map[string][]int // column signature -> join key -> rows
	// colsOf memoizes each constraint's resolved join columns and their
	// signature: they depend only on the constraint and the schema, and
	// the per-row hot loops below would otherwise re-derive them per call.
	colsOf map[*Constraint]colsEntry
}

type colsEntry struct {
	cols []int
	sig  string
}

// NewScanIndex returns an empty scan cache.
func NewScanIndex() *ScanIndex {
	return &ScanIndex{
		perCols: make(map[string]map[string][]int),
		colsOf:  make(map[*Constraint]colsEntry),
	}
}

// joinColsFor resolves (memoized) c's join columns and signature over t's
// schema. Safe across generations of one table — schemas are immutable —
// but invalidated when the index moves to a different table.
func (ix *ScanIndex) joinColsFor(c *Constraint, t *table.Table) ([]int, string) {
	ix.sync(t)
	if e, ok := ix.colsOf[c]; ok {
		return e.cols, e.sig
	}
	cols := c.joinCols(t)
	e := colsEntry{cols: cols, sig: colsSignature(cols)}
	ix.colsOf[c] = e
	return e.cols, e.sig
}

// sync points the index at t, dropping whatever a table or generation
// switch invalidates.
func (ix *ScanIndex) sync(t *table.Table) {
	if ix.tbl == t && ix.gen == t.Generation() {
		return
	}
	if ix.tbl != t {
		// New table, possibly new schema: column resolutions are stale too.
		clear(ix.colsOf)
	}
	ix.tbl = t
	ix.gen = t.Generation()
	clear(ix.perCols)
}

// buckets returns (building and caching as needed) the bucket partition of
// t over cols.
func (ix *ScanIndex) buckets(t *table.Table, cols []int, sig string) map[string][]int {
	ix.sync(t)
	if b, ok := ix.perCols[sig]; ok {
		return b
	}
	b := buildBuckets(t, cols)
	ix.perCols[sig] = b
	return b
}

// colsSignature encodes a column-index list as a map key.
func colsSignature(cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		for c >= 0x80 {
			b.WriteByte(byte(c) | 0x80)
			c >>= 7
		}
		b.WriteByte(byte(c))
	}
	return b.String()
}

// ViolationsIndexed is Violations accelerated with a hash partition on the
// composite of all equality join attributes when any exist (e.g.
// t1.Team = t2.Team ∧ t1.Year = t2.Year buckets on (Team, Year)). Rows are
// bucketed by those attributes' values and only intra-bucket pairs are
// checked, turning the common FD-shaped constraint from O(n²) into
// O(n + Σ bucket²). Falls back to the naive scan when no join key exists.
// The output order matches Violations exactly.
func (c *Constraint) ViolationsIndexed(t *table.Table) ([]Violation, error) {
	return c.ViolationsCached(t, nil)
}

// ViolationsCached is ViolationsIndexed with an optional ScanIndex: when ix
// is non-nil the hash buckets are reused across scans of the same table
// generation instead of rebuilt per call.
func (c *Constraint) ViolationsCached(t *table.Table, ix *ScanIndex) ([]Violation, error) {
	if c.SingleTuple() {
		return c.Violations(t)
	}
	var (
		cols    []int
		buckets map[string][]int
	)
	if ix != nil {
		var sig string
		cols, sig = ix.joinColsFor(c, t)
		if len(cols) == 0 {
			return c.Violations(t)
		}
		buckets = ix.buckets(t, cols, sig)
	} else {
		cols = c.joinCols(t)
		if len(cols) == 0 {
			return c.Violations(t)
		}
		buckets = buildBuckets(t, cols)
	}
	var out []Violation
	for _, rows := range buckets {
		for _, i := range rows {
			for _, j := range rows {
				if i == j {
					continue
				}
				sat, err := c.SatisfiedPair(t, i, j)
				if err != nil {
					return nil, err
				}
				if sat {
					out = append(out, Violation{Constraint: c, Row1: i, Row2: j})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Row1 != out[b].Row1 {
			return out[a].Row1 < out[b].Row1
		}
		return out[a].Row2 < out[b].Row2
	})
	return out, nil
}

// ViolatesRowCached is ViolatesRow restricted to the row's hash bucket when
// the constraint has equality join attributes: only bucket partners can
// co-satisfy the equality predicates, so the per-row check drops from
// O(n) to O(bucket). Semantics match ViolatesRow exactly.
func (c *Constraint) ViolatesRowCached(t *table.Table, i int, ix *ScanIndex) (bool, error) {
	if c.SingleTuple() {
		return c.SatisfiedPair(t, i, i)
	}
	if ix == nil {
		return c.ViolatesRow(t, i)
	}
	cols, sig := ix.joinColsFor(c, t)
	if len(cols) == 0 {
		return c.ViolatesRow(t, i)
	}
	key, ok := compositeKey(t, i, cols)
	if !ok {
		// A null join key makes every equality predicate unknown: row i
		// cannot participate in any pair violation of this constraint.
		return false, nil
	}
	for _, j := range ix.buckets(t, cols, sig)[key] {
		if j == i {
			continue
		}
		if sat, err := c.SatisfiedPair(t, i, j); err != nil || sat {
			return sat, err
		}
		if sat, err := c.SatisfiedPair(t, j, i); err != nil || sat {
			return sat, err
		}
	}
	return false, nil
}

// AllViolations runs the indexed scan for every constraint in order and
// concatenates the results. One ScanIndex spans the whole pass, so
// constraints sharing join columns share buckets.
func AllViolations(cs []*Constraint, t *table.Table) ([]Violation, error) {
	ix := NewScanIndex()
	var out []Violation
	for _, c := range cs {
		vs, err := c.ViolationsCached(t, ix)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// Consistent reports whether the table satisfies every constraint.
func Consistent(cs []*Constraint, t *table.Table) (bool, error) {
	ix := NewScanIndex()
	for _, c := range cs {
		vs, err := c.ViolationsCached(t, ix)
		if err != nil {
			return false, err
		}
		if len(vs) > 0 {
			return false, nil
		}
	}
	return true, nil
}

// ValidateSet validates every constraint against a schema and checks ID
// uniqueness.
func ValidateSet(cs []*Constraint, schema *table.Schema) error {
	seen := make(map[string]bool)
	for _, c := range cs {
		if err := c.Validate(schema); err != nil {
			return err
		}
		if c.ID != "" {
			if seen[c.ID] {
				return fmt.Errorf("dc: duplicate constraint ID %q", c.ID)
			}
			seen[c.ID] = true
		}
	}
	return nil
}

// ByID returns the constraint with the given ID, or nil.
func ByID(cs []*Constraint, id string) *Constraint {
	for _, c := range cs {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Without returns a new slice with the identified constraint removed.
func Without(cs []*Constraint, id string) []*Constraint {
	out := make([]*Constraint, 0, len(cs))
	for _, c := range cs {
		if c.ID != id {
			out = append(out, c)
		}
	}
	return out
}
