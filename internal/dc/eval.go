package dc

import (
	"fmt"
	"sort"

	"repro/internal/table"
)

// Violation records one witness that a constraint is violated: the rows
// bound to t1 and t2. For single-tuple constraints Row2 equals Row1.
type Violation struct {
	Constraint *Constraint
	Row1, Row2 int
}

// String renders the violation, e.g. "C1 violated by (t3, t6)".
func (v Violation) String() string {
	if v.Row1 == v.Row2 {
		return fmt.Sprintf("%s violated by t%d", v.Constraint.ID, v.Row1+1)
	}
	return fmt.Sprintf("%s violated by (t%d, t%d)", v.Constraint.ID, v.Row1+1, v.Row2+1)
}

// SatisfiedPair reports whether the constraint body (the denied conjunction)
// holds for rows (i, j) bound to (t1, t2). Unknown predicates (null or
// incomparable operands) make the conjunction fail, so nulls never create
// violations.
func (c *Constraint) SatisfiedPair(t *table.Table, i, j int) (bool, error) {
	row1 := t.RowView(i)
	row2 := t.RowView(j)
	for _, p := range c.Preds {
		sat, known, err := p.Eval(row1, row2, t.Schema())
		if err != nil {
			return false, err
		}
		if !known || !sat {
			return false, nil
		}
	}
	return true, nil
}

// ViolatesRow reports whether row i participates in any violation of the
// constraint: as the single tuple for single-tuple DCs, or bound to either
// t1 or t2 against any other row for pair DCs. This is the "tuple t has a
// contradiction according to C" primitive of the paper's Algorithm 1.
func (c *Constraint) ViolatesRow(t *table.Table, i int) (bool, error) {
	if c.SingleTuple() {
		return c.SatisfiedPair(t, i, i)
	}
	for j := 0; j < t.NumRows(); j++ {
		if j == i {
			continue
		}
		if sat, err := c.SatisfiedPair(t, i, j); err != nil || sat {
			return sat, err
		}
		if sat, err := c.SatisfiedPair(t, j, i); err != nil || sat {
			return sat, err
		}
	}
	return false, nil
}

// Violations scans the whole table and returns every violation of the
// constraint. Pair violations are reported once per ordered pair (i, j)
// with i != j that satisfies the body; callers that want unordered pairs
// can deduplicate with min/max. The scan is the naive O(n²) reference; see
// ViolationsIndexed for the accelerated version.
func (c *Constraint) Violations(t *table.Table) ([]Violation, error) {
	var out []Violation
	if c.SingleTuple() {
		for i := 0; i < t.NumRows(); i++ {
			sat, err := c.SatisfiedPair(t, i, i)
			if err != nil {
				return nil, err
			}
			if sat {
				out = append(out, Violation{Constraint: c, Row1: i, Row2: i})
			}
		}
		return out, nil
	}
	for i := 0; i < t.NumRows(); i++ {
		for j := 0; j < t.NumRows(); j++ {
			if i == j {
				continue
			}
			sat, err := c.SatisfiedPair(t, i, j)
			if err != nil {
				return nil, err
			}
			if sat {
				out = append(out, Violation{Constraint: c, Row1: i, Row2: j})
			}
		}
	}
	return out, nil
}

// equalityJoinAttrs returns attributes A with a predicate t1.A = t2.A —
// usable as hash-join keys for the indexed scan.
func (c *Constraint) equalityJoinAttrs() []string {
	var out []string
	for _, p := range c.Preds {
		if p.Op != OpEq || p.Left.IsConst || p.Right.IsConst {
			continue
		}
		if p.Left.Attr == p.Right.Attr && p.Left.Tuple != p.Right.Tuple {
			out = append(out, p.Left.Attr)
		}
	}
	return out
}

// ViolationsIndexed is Violations accelerated with a hash partition on an
// equality join attribute when one exists (e.g. t1.Team = t2.Team). Rows
// are bucketed by that attribute's value and only intra-bucket pairs are
// checked, turning the common FD-shaped constraint from O(n²) into
// O(n + Σ bucket²). Falls back to the naive scan when no join key exists.
// The output order matches Violations exactly.
func (c *Constraint) ViolationsIndexed(t *table.Table) ([]Violation, error) {
	keys := c.equalityJoinAttrs()
	if c.SingleTuple() || len(keys) == 0 {
		return c.Violations(t)
	}
	col := t.Schema().MustIndex(keys[0])
	buckets := make(map[string][]int)
	for i := 0; i < t.NumRows(); i++ {
		v := t.Get(i, col)
		if v.IsNull() {
			continue // null join keys can never satisfy the equality
		}
		buckets[v.Key()] = append(buckets[v.Key()], i)
	}
	var out []Violation
	for _, rows := range buckets {
		for _, i := range rows {
			for _, j := range rows {
				if i == j {
					continue
				}
				sat, err := c.SatisfiedPair(t, i, j)
				if err != nil {
					return nil, err
				}
				if sat {
					out = append(out, Violation{Constraint: c, Row1: i, Row2: j})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Row1 != out[b].Row1 {
			return out[a].Row1 < out[b].Row1
		}
		return out[a].Row2 < out[b].Row2
	})
	return out, nil
}

// AllViolations runs ViolationsIndexed for every constraint in order and
// concatenates the results.
func AllViolations(cs []*Constraint, t *table.Table) ([]Violation, error) {
	var out []Violation
	for _, c := range cs {
		vs, err := c.ViolationsIndexed(t)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// Consistent reports whether the table satisfies every constraint.
func Consistent(cs []*Constraint, t *table.Table) (bool, error) {
	for _, c := range cs {
		vs, err := c.ViolationsIndexed(t)
		if err != nil {
			return false, err
		}
		if len(vs) > 0 {
			return false, nil
		}
	}
	return true, nil
}

// ValidateSet validates every constraint against a schema and checks ID
// uniqueness.
func ValidateSet(cs []*Constraint, schema *table.Schema) error {
	seen := make(map[string]bool)
	for _, c := range cs {
		if err := c.Validate(schema); err != nil {
			return err
		}
		if c.ID != "" {
			if seen[c.ID] {
				return fmt.Errorf("dc: duplicate constraint ID %q", c.ID)
			}
			seen[c.ID] = true
		}
	}
	return nil
}

// ByID returns the constraint with the given ID, or nil.
func ByID(cs []*Constraint, id string) *Constraint {
	for _, c := range cs {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Without returns a new slice with the identified constraint removed.
func Without(cs []*Constraint, id string) []*Constraint {
	out := make([]*Constraint, 0, len(cs))
	for _, c := range cs {
		if c.ID != id {
			out = append(out, c)
		}
	}
	return out
}
