package dc

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// Compiled columnar predicate kernels.
//
// The interpreted evaluator (Predicate.Eval via SatisfiedPair) resolves
// attribute names through the schema map, allocates row views and walks the
// three-valued-logic switch once per predicate per pair — fine for the
// naive reference scan, but it is the inner loop of every bucketed
// violation scan, and ROADMAP names it the dominant cost on large tables.
//
// A Kernel is the compiled form of one constraint body over one schema:
// every operand's column index is resolved once at compile time, and
// evaluation runs predicate-at-a-time over a bucket's candidate rows
// ("column-at-a-time"): the operand side that is fixed for the whole bucket
// scan — a constant, or an attribute of the anchored row — is hoisted out
// of the row loop and compared against the candidates through the table's
// typed column views (table.FloatCol/StringCol), so the common
// FD-shaped predicates reduce to a float or string comparison per
// candidate with no schema lookups and no Value method dispatch.
//
// Kernels implement exactly the interpreted semantics — three-valued
// logic, numeric kind unification, NaN and ±0.0 behaviour — and the
// interpreted path is kept alive (Violations, appendViolationsScan, and
// every nil-ScanIndex call) as the cross-validation reference; the
// property tests in kernel_test.go fuzz the two against each other over
// randomized schemas, tables and operators.

// kernelPred is one compiled conjunct: operand columns resolved, constants
// captured.
type kernelPred struct {
	op Op
	// lCol/rCol are the operand column indexes, -1 for constants.
	lCol, rCol int
	// lTuple/rTuple bind a non-const operand to tuple 0 (t1) or 1 (t2).
	lTuple, rTuple int
	// lConst/rConst hold constant operands.
	lConst, rConst table.Value
}

// Kernel is a constraint body compiled against one schema. Kernels are
// immutable after compilation and safe for concurrent use (the parallel
// full-derivation path of LiveViolationSet shares one kernel across
// workers).
type Kernel struct {
	preds []kernelPred
}

// compileKernel resolves every operand of c against schema. The error text
// for an unknown attribute matches the interpreter's, so callers surface
// the same failure whichever path runs.
func compileKernel(c *Constraint, schema *table.Schema) (*Kernel, error) {
	return compileKernelSeq(c, schema, nil)
}

// compileKernelSeq compiles the predicates of c selected by seq, in seq
// order, against schema — the planner's entry point: a full permutation
// yields the selectivity-ordered kernel, a subset yields the residual or
// pre-filter kernels of a planned bucket scan. A nil seq selects every
// predicate in declaration order. Reordering is sound because the body
// is a pure conjunction: Pair and Filter answer the same conjunction
// whatever the order, and the sorted output contract makes the order
// invisible to callers.
func compileKernelSeq(c *Constraint, schema *table.Schema, seq []int) (*Kernel, error) {
	n := len(seq)
	if seq == nil {
		n = len(c.Preds)
	}
	k := &Kernel{preds: make([]kernelPred, 0, n)}
	resolve := func(o Operand) (col, tuple int, cst table.Value, err error) {
		if o.IsConst {
			return -1, 0, o.Const, nil
		}
		idx, ok := schema.Index(o.Attr)
		if !ok {
			return 0, 0, table.Null(), fmt.Errorf("dc: attribute %q not in schema (%s)", o.Attr, schema)
		}
		return idx, o.Tuple, table.Null(), nil
	}
	compileOne := func(p Predicate) error {
		var kp kernelPred
		var err error
		kp.op = p.Op
		if kp.lCol, kp.lTuple, kp.lConst, err = resolve(p.Left); err != nil {
			return err
		}
		if kp.rCol, kp.rTuple, kp.rConst, err = resolve(p.Right); err != nil {
			return err
		}
		k.preds = append(k.preds, kp)
		return nil
	}
	if seq == nil {
		for _, p := range c.Preds {
			if err := compileOne(p); err != nil {
				return nil, err
			}
		}
		return k, nil
	}
	for _, idx := range seq {
		if idx < 0 || idx >= len(c.Preds) {
			return nil, fmt.Errorf("dc: predicate index %d out of range for %s", idx, c.ID)
		}
		if err := compileOne(c.Preds[idx]); err != nil {
			return nil, err
		}
	}
	return k, nil
}

// opSat collapses Op.Eval's (sat, known) to the conjunction's view:
// satisfied-and-known. Unknown (nulls, incomparable kinds) fails the
// conjunction, so it folds to false.
func opSat(op Op, a, b table.Value) bool {
	switch op {
	case OpEq:
		return a.Equal(b) // Equal is already false on nulls
	case OpNeq:
		if a.IsNull() || b.IsNull() {
			return false
		}
		return !a.Equal(b)
	default:
		c, ok := a.Compare(b)
		if !ok {
			return false
		}
		return orderSat(op, c)
	}
}

// operand reads one compiled side for the pair binding (i=t1, j=t2).
func (p *kernelPred) left(t *table.Table, i, j int) table.Value {
	switch {
	case p.lCol < 0:
		return p.lConst
	case p.lTuple == 0:
		return t.Get(i, p.lCol)
	default:
		return t.Get(j, p.lCol)
	}
}

func (p *kernelPred) right(t *table.Table, i, j int) table.Value {
	switch {
	case p.rCol < 0:
		return p.rConst
	case p.rTuple == 0:
		return t.Get(i, p.rCol)
	default:
		return t.Get(j, p.rCol)
	}
}

// Pair reports whether the compiled body holds for rows (i, j) bound to
// (t1, t2) — the kernel form of Constraint.SatisfiedPair, minus the error
// return (compilation already resolved every attribute).
func (k *Kernel) Pair(t *table.Table, i, j int) bool {
	for idx := range k.preds {
		p := &k.preds[idx]
		if !opSat(p.op, p.left(t, i, j), p.right(t, i, j)) {
			return false
		}
	}
	return true
}

// Filter evaluates the body column-at-a-time for the pairs that bind row
// fixed to tuple fixedTuple (0 = t1, 1 = t2) and each cand[n] to the other
// tuple, clearing alive[n] for every pair that fails the conjunction.
// Entries whose alive flag is already false are skipped, so callers can
// pre-mask (e.g. the candidate equal to fixed). len(alive) must equal
// len(cand). Predicates run in constraint order with an early exit once no
// candidate survives.
func (k *Kernel) Filter(t *table.Table, fixedTuple, fixed int, cand []int, alive []bool) {
	for idx := range k.preds {
		p := &k.preds[idx]
		lVaries := p.lCol >= 0 && p.lTuple != fixedTuple
		rVaries := p.rCol >= 0 && p.rTuple != fixedTuple
		var any bool
		switch {
		case !lVaries && !rVaries:
			// Both sides fixed for the whole bucket: one evaluation decides
			// every pair.
			a := fixedOperand(t, fixed, p.lCol, p.lConst)
			b := fixedOperand(t, fixed, p.rCol, p.rConst)
			if opSat(p.op, a, b) {
				any = anyAlive(alive)
			} else {
				clearAlive(alive)
			}
		case lVaries && rVaries:
			// Both sides read the candidate tuple (e.g. t2.A = t2.B).
			lv, rv := t.Col(p.lCol), t.Col(p.rCol)
			for n, r := range cand {
				if !alive[n] {
					continue
				}
				if !opSat(p.op, lv.Value(r), rv.Value(r)) {
					alive[n] = false
				} else {
					any = true
				}
			}
		case lVaries:
			b := fixedOperand(t, fixed, p.rCol, p.rConst)
			any = filterOne(t, p.op, b, p.lCol, true, cand, alive)
		default:
			a := fixedOperand(t, fixed, p.lCol, p.lConst)
			any = filterOne(t, p.op, a, p.rCol, false, cand, alive)
		}
		if !any {
			return
		}
	}
}

// fixedOperand resolves an operand that does not vary across the bucket
// scan: a constant, or an attribute of the anchored row.
func fixedOperand(t *table.Table, fixed, col int, cst table.Value) table.Value {
	if col < 0 {
		return cst
	}
	return t.Get(fixed, col)
}

// filterOne is the hoisted inner loop: compare the fixed value against
// column col of every alive candidate. varyingIsLeft selects the operand
// order (candidate op fixed vs fixed op candidate). Returns whether any
// candidate survived.
func filterOne(t *table.Table, op Op, fixed table.Value, col int, varyingIsLeft bool, cand []int, alive []bool) bool {
	any := false
	if fixed.IsNull() {
		// A null operand makes every comparison unknown: the predicate fails
		// for the whole bucket.
		clearAlive(alive)
		return false
	}
	switch op {
	case OpEq:
		// Equality is symmetric; specialize on the fixed side's kind so the
		// loop is a raw float or string comparison through the typed views.
		if f, ok := fixed.Num(); ok {
			fc := t.FloatCol(col)
			for n, r := range cand {
				if !alive[n] {
					continue
				}
				// !ok covers null and non-numeric kinds, both of which the =
				// predicate rejects against a numeric operand; NaN compares
				// unequal to itself, matching Value.Equal.
				if g, ok := fc.At(r); ok && g == f {
					any = true
				} else {
					alive[n] = false
				}
			}
			return any
		}
		if fixed.Kind() == table.KindString {
			s := fixed.Str()
			sc := t.StringCol(col)
			for n, r := range cand {
				if !alive[n] {
					continue
				}
				if g, ok := sc.At(r); ok && g == s {
					any = true
				} else {
					alive[n] = false
				}
			}
			return any
		}
		cv := t.Col(col)
		for n, r := range cand {
			if !alive[n] {
				continue
			}
			if fixed.Equal(cv.Value(r)) {
				any = true
			} else {
				alive[n] = false
			}
		}
		return any
	case OpNeq:
		// != is symmetric but needs the null distinction (null ≠ x is
		// unknown, string ≠ int is a known true), so it stays on the untyped
		// view; Value.Equal is a single switch.
		cv := t.Col(col)
		for n, r := range cand {
			if !alive[n] {
				continue
			}
			b := cv.Value(r)
			if !b.IsNull() && !fixed.Equal(b) {
				any = true
			} else {
				alive[n] = false
			}
		}
		return any
	}
	// Order comparisons: specialize numeric and string, mirroring
	// Value.Compare (numeric unification; NaN falls through both < and > to
	// the equal branch; incomparable kinds are unknown).
	if f, ok := fixed.Num(); ok {
		fc := t.FloatCol(col)
		for n, r := range cand {
			if !alive[n] {
				continue
			}
			g, ok := fc.At(r)
			if !ok {
				alive[n] = false
				continue
			}
			var c int
			a, b := f, g
			if varyingIsLeft {
				a, b = g, f
			}
			switch {
			case a < b:
				c = -1
			case a > b:
				c = 1
			}
			if orderSat(op, c) {
				any = true
			} else {
				alive[n] = false
			}
		}
		return any
	}
	if fixed.Kind() == table.KindString {
		s := fixed.Str()
		sc := t.StringCol(col)
		for n, r := range cand {
			if !alive[n] {
				continue
			}
			g, ok := sc.At(r)
			if !ok {
				alive[n] = false
				continue
			}
			var c int
			if varyingIsLeft {
				c = strings.Compare(g, s)
			} else {
				c = strings.Compare(s, g)
			}
			if orderSat(op, c) {
				any = true
			} else {
				alive[n] = false
			}
		}
		return any
	}
	// Bool (or exotic) fixed operand: generic comparison loop.
	cv := t.Col(col)
	for n, r := range cand {
		if !alive[n] {
			continue
		}
		a, b := fixed, cv.Value(r)
		if varyingIsLeft {
			a, b = b, a
		}
		if opSat(op, a, b) {
			any = true
		} else {
			alive[n] = false
		}
	}
	return any
}

// orderSat applies an order operator to a three-way comparison result.
func orderSat(op Op, c int) bool {
	switch op {
	case OpLt:
		return c < 0
	case OpLeq:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGeq:
		return c >= 0
	default:
		return false
	}
}

func anyAlive(alive []bool) bool {
	for _, a := range alive {
		if a {
			return true
		}
	}
	return false
}

func clearAlive(alive []bool) {
	for n := range alive {
		alive[n] = false
	}
}
