package dc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// TestScanIndexStructuralDelta drives the index through interleaved
// cell/insert/delete/batch windows and checks every query against a fresh
// indexed scan — the satellite-1 regression for the old
// "ok=false-after-Append" class: an interleaved SetCell → Append → SetCell
// window must replay, not be dropped as "no edits".
func TestScanIndexStructuralDelta(t *testing.T) {
	tbl := deltaTable(t, 18, 41)
	cs := deltaConstraints(t)
	ix := NewScanIndex()
	assertSameViolations(t, "initial", cs, tbl, ix)

	// The interleaved window: SetCell → Append → SetCell, one sync.
	tbl.Set(3, 0, table.String("team1"))
	if err := tbl.Append([]table.Value{
		table.String("team0"), table.String("cityX"), table.String("country1"), table.Int(2016),
	}); err != nil {
		t.Fatal(err)
	}
	tbl.Set(tbl.NumRows()-1, 1, table.String("city2"))
	assertSameViolations(t, "set-append-set", cs, tbl, ix)

	// Deletes, including the swap case (deleting a middle row relocates
	// the tail) and the no-move case (deleting the last row).
	tbl.DeleteRow(2)
	assertSameViolations(t, "delete-middle", cs, tbl, ix)
	tbl.DeleteRow(tbl.NumRows() - 1)
	assertSameViolations(t, "delete-last", cs, tbl, ix)

	// A batch bracket: several structural and cell edits, one generation.
	err := tbl.ApplyBatch(func(b *table.Table) error {
		b.Set(0, 2, table.String("country2"))
		if err := b.Append([]table.Value{
			table.String("team2"), table.String("city0"), table.String("country0"), table.Int(2015),
		}); err != nil {
			return err
		}
		b.DeleteRow(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameViolations(t, "batch", cs, tbl, ix)

	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 120; step++ {
		switch rng.Intn(4) {
		case 0:
			if err := tbl.Append([]table.Value{
				table.String(fmt.Sprintf("team%d", rng.Intn(4))),
				table.String(fmt.Sprintf("city%d", rng.Intn(3))),
				table.String(fmt.Sprintf("country%d", rng.Intn(3))),
				table.Int(int64(2015 + rng.Intn(3))),
			}); err != nil {
				t.Fatal(err)
			}
		case 1:
			if tbl.NumRows() > 4 {
				tbl.DeleteRow(rng.Intn(tbl.NumRows()))
			}
		default:
			tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()),
				table.String(fmt.Sprintf("v%d", rng.Intn(4))))
		}
		assertSameViolations(t, fmt.Sprintf("step %d", step), cs, tbl, ix)
	}
}

// TestLiveViolationSetStructuralDelta is the live-list counterpart: the
// materialized lists must ride insert/delete/batch windows bit-identically
// to full rescans, including the interleaved SetCell → Append → SetCell
// window that used to force (or worse, silently skip) a rebuild.
func TestLiveViolationSetStructuralDelta(t *testing.T) {
	tbl := deltaTable(t, 18, 43)
	cs := liveConstraints(t)
	live := NewLiveViolationSet()
	live.MinRows = 1 // force materialized lists despite the small table
	assertLiveMatchesRescan(t, "initial", cs, tbl, live)

	tbl.Set(5, 0, table.String("team2"))
	if err := tbl.Append([]table.Value{
		table.String("team2"), table.String("city1"), table.String("country0"), table.Int(2014),
	}); err != nil {
		t.Fatal(err)
	}
	tbl.Set(0, 3, table.Int(2013))
	assertLiveMatchesRescan(t, "set-append-set", cs, tbl, live)

	tbl.DeleteRow(4)
	assertLiveMatchesRescan(t, "delete-middle", cs, tbl, live)
	tbl.DeleteRow(tbl.NumRows() - 1)
	assertLiveMatchesRescan(t, "delete-last", cs, tbl, live)

	err := tbl.ApplyBatch(func(b *table.Table) error {
		if err := b.Append([]table.Value{
			table.String("team0"), table.String("city2"), table.String("country2"), table.Int(2016),
		}); err != nil {
			return err
		}
		b.Set(2, 1, table.String("city0"))
		b.DeleteRow(0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertLiveMatchesRescan(t, "batch", cs, tbl, live)

	rng := rand.New(rand.NewSource(44))
	for step := 0; step < 120; step++ {
		switch rng.Intn(4) {
		case 0:
			if err := tbl.Append([]table.Value{
				table.String(fmt.Sprintf("team%d", rng.Intn(4))),
				table.String(fmt.Sprintf("city%d", rng.Intn(3))),
				table.String(fmt.Sprintf("country%d", rng.Intn(3))),
				table.Int(int64(2014 + rng.Intn(4))),
			}); err != nil {
				t.Fatal(err)
			}
		case 1:
			if tbl.NumRows() > 4 {
				tbl.DeleteRow(rng.Intn(tbl.NumRows()))
			}
		default:
			tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()),
				table.String(fmt.Sprintf("v%d", rng.Intn(4))))
		}
		assertLiveMatchesRescan(t, fmt.Sprintf("step %d", step), cs, tbl, live)
	}
}

// TestStructuralOverrunFallsBack floods the log with a giant batch (more
// structural entries than the ring retains) — every consumer must detect
// the lost window and rebuild, never replay a truncated decode.
func TestStructuralOverrunFallsBack(t *testing.T) {
	tbl := deltaTable(t, 12, 45)
	cs := liveConstraints(t)
	ix := NewScanIndex()
	live := NewLiveViolationSet()
	live.MinRows = 1
	assertSameViolations(t, "initial", cs[:3], tbl, ix)
	assertLiveMatchesRescan(t, "initial", cs, tbl, live)
	err := tbl.ApplyBatch(func(b *table.Table) error {
		for k := 0; k < 600; k++ { // > the edit-log window
			if err := b.Append([]table.Value{
				table.String(fmt.Sprintf("team%d", k%4)),
				table.String(fmt.Sprintf("city%d", k%3)),
				table.String(fmt.Sprintf("country%d", k%3)),
				table.Int(int64(2015 + k%3)),
			}); err != nil {
				return err
			}
			if b.NumRows() > 6 {
				b.DeleteRow(k % b.NumRows())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameViolations(t, "after overrun", cs[:3], tbl, ix)
	assertLiveMatchesRescan(t, "after overrun", cs, tbl, live)
}

// structuralFuzzValue keeps join keys collision-heavy and covers null/NaN
// bucket exclusion.
func structuralFuzzValue(b byte) table.Value {
	switch b % 8 {
	case 0:
		return table.Null()
	case 1:
		return table.String("a")
	case 2:
		return table.String("b")
	case 3:
		return table.Int(int64(b) % 3)
	case 4:
		return table.Float(float64(int64(b) % 3))
	case 5:
		return table.Float(0.0)
	case 6:
		return table.Int(-1)
	default:
		return table.String("c")
	}
}

// FuzzStructuralReplayVsNaive interleaves SetCell/InsertRow/DeleteRow and
// batch brackets under fuzzer control and pins both incremental paths —
// the delta-maintained ScanIndex and the materialized LiveViolationSet —
// bit-identical to from-scratch naive recomputation after every window,
// including windows that overrun the edit log.
func FuzzStructuralReplayVsNaive(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 1, 2, 3, 4, 0, 5}, []byte{0x10, 0x22, 0xf1, 0x05, 0xe3, 0x00, 0xd2, 0x31})
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3, 3}, []byte{0xf0, 0xf1, 0xf2, 0xe0, 0xe1, 0xe2})
	f.Add([]byte{7, 1, 7, 1, 7, 1}, []byte{0xd0, 0xd1, 0x00, 0xff, 0x80})
	f.Fuzz(func(t *testing.T, cells, ops []byte) {
		if len(cells) == 0 {
			return
		}
		schema, err := table.SchemaOf("A", "B", "C")
		if err != nil {
			t.Fatal(err)
		}
		tbl := table.New(schema)
		rows := len(cells)/3 + 1
		if rows > 10 {
			rows = 10
		}
		mkRow := func(seed byte) []table.Value {
			row := make([]table.Value, 3)
			for j := range row {
				row[j] = structuralFuzzValue(cells[(int(seed)+j)%len(cells)])
			}
			return row
		}
		for i := 0; i < rows; i++ {
			if err := tbl.Append(mkRow(byte(i * 3))); err != nil {
				t.Fatal(err)
			}
		}
		cs := []*Constraint{
			MustParse("S1: !(t1.A = t2.A & t1.B != t2.B)"),
			MustParse("S2: !(t1.A = t2.A & t1.B = t2.B & t1.C != t2.C)"),
			MustParse("S3: !(t1.A != t2.A & t1.B != t2.B & t1.C != t2.C)"),
			MustParse(`S4: !(t1.B = "a" & t1.C != "b")`),
		}
		ix := NewScanIndex()
		live := NewLiveViolationSet()
		live.MinRows = 1
		check := func(stage string) {
			for _, c := range cs {
				want, err := c.Violations(tbl)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.ViolationsCached(tbl, ix)
				if err != nil {
					t.Fatalf("%s/%s: cached: %v", stage, c.ID, err)
				}
				lv, err := live.Violations(c, tbl)
				if err != nil {
					t.Fatalf("%s/%s: live: %v", stage, c.ID, err)
				}
				if len(got) != len(want) || len(lv) != len(want) {
					t.Fatalf("%s/%s: cached %d, live %d, naive %d pairs", stage, c.ID, len(got), len(lv), len(want))
				}
				for i := range want {
					if got[i] != want[i] || lv[i] != want[i] {
						t.Fatalf("%s/%s: pair %d: cached %v live %v naive %v", stage, c.ID, i, got[i], lv[i], want[i])
					}
				}
			}
		}
		check("initial")
		for i, op := range ops {
			switch {
			case op >= 0xf0:
				if tbl.NumRows() < 12 { // cap growth: the naive reference is O(n²)
					if err := tbl.Append(mkRow(op)); err != nil {
						t.Fatal(err)
					}
				}
			case op >= 0xe0:
				if tbl.NumRows() > 1 {
					tbl.DeleteRow(int(op&0x0f) % tbl.NumRows())
				}
			case op >= 0xd0:
				err := tbl.ApplyBatch(func(b *table.Table) error {
					b.Set(int(op)%b.NumRows(), int(op)%3, structuralFuzzValue(op))
					if b.NumRows() < 12 { // cap growth as above
						if err := b.Append(mkRow(op + 1)); err != nil {
							return err
						}
					}
					if b.NumRows() > 1 {
						b.DeleteRow(int(op>>1) % b.NumRows())
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			default:
				tbl.Set(int(op>>4)%tbl.NumRows(), int(op)%3, structuralFuzzValue(op))
			}
			if i%3 == 2 {
				check(fmt.Sprintf("op %d", i))
			}
		}
		check("final")
		// Overrun inside one batch: the window is lost, both consumers must
		// rebuild.
		err = tbl.ApplyBatch(func(b *table.Table) error {
			for k := 0; k < 600; k++ {
				if err := b.Append(mkRow(byte(k))); err != nil {
					return err
				}
				if b.NumRows() > 4 {
					b.DeleteRow(k % b.NumRows())
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		check("after-overrun")
	})
}
