package dc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/table"
)

// FuzzParse feeds arbitrary text to the DC parser: it must never panic,
// and any constraint it accepts must round-trip — String() re-parses to a
// constraint with the same String() (the canonical form is a fixpoint) and
// the same predicate count.
func FuzzParse(f *testing.F) {
	f.Add("C1: !(t1.A = t2.A & t1.B != t2.B)")
	f.Add("!(t1.City = \"Madrid\" & t1.Country != \"Spain\")")
	f.Add("C2: !(t1.Salary > t2.Salary & t1.Tax < t2.Tax)")
	f.Add("C3: !(t1.A >= 3.5)")
	f.Add("bogus")
	f.Add(": !()")
	f.Add("C1: !(t1.A = t1.A)")
	f.Fuzz(func(t *testing.T, text string) {
		c, err := Parse(text)
		if err != nil {
			return
		}
		canon := c.String()
		c2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if c2.String() != canon {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q", canon, c2.String())
		}
		if len(c2.Preds) != len(c.Preds) {
			t.Fatalf("round-trip changed predicate count: %d -> %d", len(c.Preds), len(c2.Preds))
		}
	})
}

// fuzzKernelValue decodes one byte into a table value spanning every kind
// and the comparison edge cases (NULL, NaN, ±0.0, empty string, equal
// numerics of different kinds).
func fuzzKernelValue(b byte) table.Value {
	switch b % 10 {
	case 0:
		return table.Null()
	case 1:
		return table.String("")
	case 2:
		return table.String("a")
	case 3:
		return table.String("b")
	case 4:
		return table.Int(int64(b) % 5)
	case 5:
		return table.Float(float64(int64(b)%5) / 2)
	case 6:
		return table.Float(0.0)
	case 7:
		return table.Float(math.NaN())
	case 8:
		return table.Int(-1)
	default:
		return table.Float(-0.0)
	}
}

// fuzzKernelOps cycles the comparison operators for the kernel fuzz.
var fuzzKernelOps = []Op{OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq}

// FuzzKernelVsInterpreted cross-validates the compiled columnar kernel
// against the interpreted SatisfiedPair reference on fuzzer-shaped tables
// and constraints: for every ordered row pair the two paths must agree
// exactly (the cross-validation contract the kernel was shipped under).
func FuzzKernelVsInterpreted(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, byte(0), byte(1), byte(0))
	f.Add([]byte{7, 7, 7, 7}, byte(2), byte(2), byte(3))
	f.Add([]byte{9, 8, 6, 5, 4, 3, 2, 1, 0}, byte(5), byte(0), byte(7))
	f.Fuzz(func(t *testing.T, cells []byte, op1, op2 byte, constRaw byte) {
		if len(cells) == 0 {
			return
		}
		const cols = 2
		rows := len(cells)/cols + 1
		if rows > 8 {
			rows = 8
		}
		schema, err := table.SchemaOf("A", "B")
		if err != nil {
			t.Fatal(err)
		}
		tbl := table.New(schema)
		for i := 0; i < rows; i++ {
			row := make([]table.Value, cols)
			for j := range row {
				idx := (i*cols + j) % len(cells)
				row[j] = fuzzKernelValue(cells[idx])
			}
			if err := tbl.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		c := &Constraint{
			ID: "F1",
			Preds: []Predicate{
				{Left: Operand{Tuple: 0, Attr: "A"}, Op: fuzzKernelOps[int(op1)%len(fuzzKernelOps)], Right: Operand{Tuple: 1, Attr: "A"}},
				{Left: Operand{Tuple: 0, Attr: "B"}, Op: fuzzKernelOps[int(op2)%len(fuzzKernelOps)], Right: ConstOperand(fuzzKernelValue(constRaw))},
			},
		}
		kern, err := compileKernel(c, schema)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < rows; j++ {
				want, err := c.SatisfiedPair(tbl, i, j)
				if err != nil {
					t.Fatal(err)
				}
				if got := kern.Pair(tbl, i, j); got != want {
					t.Fatalf("pair (%d,%d): kernel %v vs interpreted %v\nconstraint %s\ntable:\n%v",
						i, j, got, want, c, tbl)
				}
			}
		}
	})
}

// FuzzParseSet exercises the multi-line set parser: no panics, and an
// accepted set re-parses from its canonical rendering with the same size.
func FuzzParseSet(f *testing.F) {
	f.Add("C1: !(t1.A = t2.A & t1.B != t2.B)\nC2: !(t1.B > 3)")
	f.Add("# comment\n\nC1: !(t1.A = t2.A)")
	f.Add("C1: !(t1.A = t2.A)\nC1: !(t1.A = t2.A)")
	f.Fuzz(func(t *testing.T, text string) {
		cs, err := ParseSet(text)
		if err != nil {
			return
		}
		var lines []string
		for _, c := range cs {
			lines = append(lines, c.String())
		}
		cs2, err := ParseSet(strings.Join(lines, "\n"))
		if err != nil {
			t.Fatalf("canonical set does not re-parse: %v", err)
		}
		if len(cs2) != len(cs) {
			t.Fatalf("round-trip changed set size: %d -> %d", len(cs), len(cs2))
		}
	})
}
