package dc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

// paperDirty reproduces the dirty La Liga table of Figure 2a closely enough
// for evaluator tests (the authoritative copy lives in internal/data).
func paperDirty(t *testing.T) *table.Table {
	t.Helper()
	return table.MustFromStrings(
		[]string{"Team", "City", "Country", "League", "Year", "Place"},
		[][]string{
			{"Barcelona", "Barcelona", "Spain", "La Liga", "2019", "1"},
			{"Atletico Madrid", "Capital", "Spain", "La Liga", "2019", "2"},
			{"Real Madrid", "Madrid", "Spain", "La Liga", "2019", "3"},
			{"Valencia", "Valencia", "Spain", "La Liga", "2019", "4"},
			{"Real Madrid", "Capital", "España", "La Liga", "2019", "3"},
			{"Real Madrid", "Madrid", "Spore", "La Liga", "2019", "3"},
		})
}

func paperDCs(t *testing.T) []*Constraint {
	t.Helper()
	cs, err := ParseSet(`
C1: !(t1.Team = t2.Team & t1.City != t2.City)
C2: !(t1.City = t2.City & t1.Country != t2.Country)
C3: !(t1.League = t2.League & t1.Country != t2.Country)
C4: !(t1.Team != t2.Team & t1.Year = t2.Year & t1.League = t2.League & t1.Place = t2.Place)
`)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestSatisfiedPair(t *testing.T) {
	tbl := paperDirty(t)
	c1 := MustParse("!(t1.Team = t2.Team & t1.City != t2.City)")
	// t3 (Real Madrid, Madrid) vs t5 (Real Madrid, Capital): violation body holds.
	sat, err := c1.SatisfiedPair(tbl, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Error("C1 body must hold for (t3, t5)")
	}
	// t1 vs t2: different teams, body fails.
	sat, _ = c1.SatisfiedPair(tbl, 0, 1)
	if sat {
		t.Error("C1 body must fail for (t1, t2)")
	}
}

func TestSatisfiedPairNullSemantics(t *testing.T) {
	tbl := paperDirty(t)
	tbl.SetByName(4, "City", table.Null())
	c1 := MustParse("!(t1.Team = t2.Team & t1.City != t2.City)")
	// t5's City is null: != is unknown, so no violation.
	sat, err := c1.SatisfiedPair(tbl, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("null City must not produce a violation")
	}
}

func TestSatisfiedPairUnknownAttr(t *testing.T) {
	tbl := paperDirty(t)
	c := MustParse("!(t1.Nope = t2.Nope)")
	if _, err := c.SatisfiedPair(tbl, 0, 1); err == nil {
		t.Error("unknown attribute must error at evaluation")
	}
}

func TestViolationsPaperTable(t *testing.T) {
	tbl := paperDirty(t)
	cs := paperDCs(t)

	// C1: Real Madrid appears with Madrid (t3, t6) and Capital (t5);
	// Atletico's "Capital" is unique to its team. Ordered violating pairs:
	// (3,5),(5,3),(5,6),(6,5) in 1-based tuple numbering.
	v1, err := cs[0].Violations(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) != 4 {
		t.Fatalf("C1 violations = %d (%v), want 4", len(v1), v1)
	}

	// C2: City=Capital pairs t2 (Spain) with t5 (España): 2 ordered pairs.
	// City=Madrid pairs t3 (Spain) with t6 (Spore): 2 ordered pairs.
	v2, _ := cs[1].Violations(tbl)
	if len(v2) != 4 {
		t.Fatalf("C2 violations = %d (%v), want 4", len(v2), v2)
	}

	// C3: League=La Liga everywhere; countries Spain(4), España(1), Spore(1).
	// Ordered pairs with differing country: 4*1*2 + 4*1*2 + 1*1*2 = 18.
	v3, _ := cs[2].Violations(tbl)
	if len(v3) != 18 {
		t.Fatalf("C3 violations = %d, want 18", len(v3))
	}

	// C4: places 1,2,3,4,3,3 — the three Real Madrid rows share place 3 but
	// have the same team, so no violation.
	v4, _ := cs[3].Violations(tbl)
	if len(v4) != 0 {
		t.Fatalf("C4 violations = %d (%v), want 0", len(v4), v4)
	}
}

func TestViolatesRow(t *testing.T) {
	tbl := paperDirty(t)
	cs := paperDCs(t)
	// t5 (index 4) violates C1 (vs t3/t6), C2 (vs t2), C3 (country España).
	for _, tc := range []struct {
		c    *Constraint
		row  int
		want bool
	}{
		{cs[0], 4, true},
		{cs[1], 4, true},
		{cs[2], 4, true},
		{cs[3], 4, false},
		{cs[0], 0, false}, // Barcelona consistent
		{cs[2], 0, true},  // Spain vs España/Spore conflicts involve t1 too
	} {
		got, err := tc.c.ViolatesRow(tbl, tc.row)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s.ViolatesRow(t%d) = %v, want %v", tc.c.ID, tc.row+1, got, tc.want)
		}
	}
}

func TestSingleTupleConstraint(t *testing.T) {
	tbl := paperDirty(t)
	c := MustParse("S1: !(t1.Year != 2019)")
	if !c.SingleTuple() {
		t.Fatal("must be single-tuple")
	}
	vs, err := c.Violations(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("no violations expected, got %v", vs)
	}
	tbl.SetByName(0, "Year", table.Int(2020))
	vs, _ = c.Violations(tbl)
	if len(vs) != 1 || vs[0].Row1 != 0 || vs[0].Row2 != 0 {
		t.Fatalf("violations = %v", vs)
	}
	got, err := c.ViolatesRow(tbl, 0)
	if err != nil || !got {
		t.Error("ViolatesRow must detect single-tuple violation")
	}
}

func TestViolationsIndexedMatchesNaive(t *testing.T) {
	tbl := paperDirty(t)
	for _, c := range paperDCs(t) {
		naive, err := c.Violations(tbl)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := c.ViolationsIndexed(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if len(naive) != len(indexed) {
			t.Fatalf("%s: naive %d vs indexed %d", c.ID, len(naive), len(indexed))
		}
		for i := range naive {
			if naive[i].Row1 != indexed[i].Row1 || naive[i].Row2 != indexed[i].Row2 {
				t.Fatalf("%s: order mismatch at %d: %v vs %v", c.ID, i, naive[i], indexed[i])
			}
		}
	}
}

func TestViolationsIndexedMatchesNaiveProperty(t *testing.T) {
	// Random small tables, random FD-shaped constraints: both scans agree.
	c := MustParse("!(t1.A = t2.A & t1.B != t2.B)")
	f := func(seed int64, nRows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRows)%12 + 1
		grid := make([][]string, n)
		letters := []string{"x", "y", "z"}
		for i := range grid {
			grid[i] = []string{letters[rng.Intn(3)], letters[rng.Intn(3)]}
			if rng.Intn(5) == 0 {
				grid[i][rng.Intn(2)] = "" // sprinkle nulls
			}
		}
		tbl := table.MustFromStrings([]string{"A", "B"}, grid)
		naive, err1 := c.Violations(tbl)
		indexed, err2 := c.ViolationsIndexed(tbl)
		if err1 != nil || err2 != nil || len(naive) != len(indexed) {
			return false
		}
		for i := range naive {
			if naive[i] != indexed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestViolationsIndexedNullJoinKey(t *testing.T) {
	tbl := table.MustFromStrings([]string{"A", "B"}, [][]string{{"", "1"}, {"", "2"}})
	c := MustParse("!(t1.A = t2.A & t1.B != t2.B)")
	vs, err := c.ViolationsIndexed(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("null join keys must not match: %v", vs)
	}
}

func TestAllViolationsAndConsistent(t *testing.T) {
	tbl := paperDirty(t)
	cs := paperDCs(t)
	all, err := AllViolations(cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4+4+18 {
		t.Fatalf("total violations = %d, want 26", len(all))
	}
	ok, err := Consistent(cs, tbl)
	if err != nil || ok {
		t.Error("dirty table must be inconsistent")
	}
	clean := tbl.Clone()
	clean.SetByName(1, "City", table.String("Madrid"))
	clean.SetByName(4, "City", table.String("Madrid"))
	clean.SetByName(4, "Country", table.String("Spain"))
	clean.SetByName(5, "Country", table.String("Spain"))
	ok, err = Consistent(cs, clean)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		vs, _ := AllViolations(cs, clean)
		t.Fatalf("clean table must be consistent, got %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	c := MustParse("C7: !(t1.A = t2.A)")
	v := Violation{Constraint: c, Row1: 2, Row2: 5}
	if v.String() != "C7 violated by (t3, t6)" {
		t.Errorf("String = %q", v.String())
	}
	s := Violation{Constraint: c, Row1: 1, Row2: 1}
	if s.String() != "C7 violated by t2" {
		t.Errorf("String = %q", s.String())
	}
}

func TestByIDAndWithout(t *testing.T) {
	cs := paperDCs(t)
	if ByID(cs, "C3") != cs[2] {
		t.Error("ByID(C3)")
	}
	if ByID(cs, "C9") != nil {
		t.Error("ByID missing must be nil")
	}
	rest := Without(cs, "C2")
	if len(rest) != 3 || ByID(rest, "C2") != nil {
		t.Errorf("Without = %v", rest)
	}
	if len(Without(cs, "C9")) != 4 {
		t.Error("Without missing ID must be a no-op copy")
	}
}

func TestValidateSet(t *testing.T) {
	tbl := paperDirty(t)
	cs := paperDCs(t)
	if err := ValidateSet(cs, tbl.Schema()); err != nil {
		t.Errorf("paper DCs must validate: %v", err)
	}
	dup := []*Constraint{MustParse("C1: !(t1.Team = t2.Team)"), MustParse("C1: !(t1.City = t2.City)")}
	if err := ValidateSet(dup, tbl.Schema()); err == nil {
		t.Error("duplicate IDs must be rejected")
	}
	bad := []*Constraint{MustParse("!(t1.Nope = t2.Nope)")}
	if err := ValidateSet(bad, tbl.Schema()); err == nil {
		t.Error("unknown attribute must be rejected")
	}
}

func TestOpEvalTruthTable(t *testing.T) {
	one, two := table.Int(1), table.Int(2)
	cases := []struct {
		op        Op
		a, b      table.Value
		sat, know bool
	}{
		{OpEq, one, one, true, true},
		{OpEq, one, two, false, true},
		{OpNeq, one, two, true, true},
		{OpLt, one, two, true, true},
		{OpLeq, one, one, true, true},
		{OpGt, two, one, true, true},
		{OpGeq, one, two, false, true},
		{OpEq, table.Null(), one, false, false},
		{OpNeq, one, table.Null(), false, false},
		{OpLt, table.String("a"), one, false, false},
		{OpEq, table.String("a"), table.String("a"), true, true},
	}
	for _, c := range cases {
		sat, know := c.op.Eval(c.a, c.b)
		if sat != c.sat || know != c.know {
			t.Errorf("%v.Eval(%v,%v) = (%v,%v), want (%v,%v)", c.op, c.a, c.b, sat, know, c.sat, c.know)
		}
	}
}

// TestViolationsIndexedCompositeKey exercises a two-attribute join where
// the FIRST attribute is non-selective (constant column) and the second
// carries all the selectivity. Bucketing on keys[0] alone would put every
// row in one bucket; the composite key must still produce exactly the
// naive scan's answer, and a probe constraint confirms rows differing only
// in the second join attribute never pair up.
func TestViolationsIndexedCompositeKey(t *testing.T) {
	c := MustParse("C1: !(t1.A = t2.A & t1.B = t2.B & t1.C != t2.C)")
	tbl := table.MustFromStrings([]string{"A", "B", "C"}, [][]string{
		{"k", "1", "x"},
		{"k", "1", "y"}, // violates with row 0 (same A,B; different C)
		{"k", "2", "x"},
		{"k", "2", "x"}, // same A,B as row 2 but same C: no violation
		{"k", "3", "z"},
		{"k", "", "w"}, // null second key: excluded from bucketing
	})
	naive, err := c.Violations(tbl)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := c.ViolationsIndexed(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) != len(indexed) {
		t.Fatalf("naive %v vs indexed %v", naive, indexed)
	}
	for i := range naive {
		if naive[i] != indexed[i] {
			t.Fatalf("order mismatch at %d: %v vs %v", i, naive[i], indexed[i])
		}
	}
	if len(indexed) != 2 { // (0,1) and (1,0)
		t.Fatalf("violations = %v, want the (t1,t2) pair both ways", indexed)
	}
	if indexed[0].Row1 != 0 || indexed[0].Row2 != 1 {
		t.Fatalf("first violation = %v", indexed[0])
	}
}

// TestViolationsIndexedCompositeKeyProperty randomizes two-join-attribute
// tables (with nulls) and checks the composite-key scan against the naive
// one.
func TestViolationsIndexedCompositeKeyProperty(t *testing.T) {
	c := MustParse("!(t1.A = t2.A & t1.B = t2.B & t1.C != t2.C)")
	f := func(seed int64, nRows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRows)%14 + 1
		letters := []string{"x", "y", ""}
		grid := make([][]string, n)
		for i := range grid {
			grid[i] = []string{letters[rng.Intn(3)], letters[rng.Intn(3)], letters[rng.Intn(3)]}
		}
		tbl := table.MustFromStrings([]string{"A", "B", "C"}, grid)
		naive, err1 := c.Violations(tbl)
		indexed, err2 := c.ViolationsIndexed(tbl)
		if err1 != nil || err2 != nil || len(naive) != len(indexed) {
			return false
		}
		for i := range naive {
			if naive[i] != indexed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestScanIndexReuse verifies the bucket cache: same generation -> reuse;
// any mutation -> rebuild. Reuse is observed through correctness after
// mutation (stale buckets would miss the new violation).
func TestScanIndexReuse(t *testing.T) {
	tbl := paperDirty(t)
	cs := paperDCs(t)
	ix := NewScanIndex()
	for _, c := range cs {
		cached, err := c.ViolationsCached(tbl, ix)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := c.ViolationsIndexed(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if len(cached) != len(plain) {
			t.Fatalf("%s: cached %d vs plain %d", c.ID, len(cached), len(plain))
		}
		for i := range plain {
			if cached[i].Row1 != plain[i].Row1 || cached[i].Row2 != plain[i].Row2 {
				t.Fatalf("%s: mismatch at %d", c.ID, i)
			}
		}
	}
	// Mutate: a row that now collides on C1's join key (Team).
	gen := tbl.Generation()
	tbl.SetByName(3, "Team", table.String("Real Madrid"))
	if tbl.Generation() == gen {
		t.Fatal("Set must bump the generation")
	}
	c := ByID(cs, "C1")
	after, err := c.ViolationsCached(tbl, ix)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.ViolationsIndexed(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(plain) {
		t.Fatalf("stale buckets after mutation: cached %d vs plain %d", len(after), len(plain))
	}
}

// TestViolatesRowCachedMatches checks the bucketed per-row violation test
// against the full-scan original on every row and constraint, with and
// without a shared index, across a mutation.
func TestViolatesRowCachedMatches(t *testing.T) {
	tbl := paperDirty(t)
	cs := paperDCs(t)
	ix := NewScanIndex()
	check := func() {
		t.Helper()
		for _, c := range cs {
			for i := 0; i < tbl.NumRows(); i++ {
				plain, err1 := c.ViolatesRow(tbl, i)
				cached, err2 := c.ViolatesRowCached(tbl, i, ix)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if plain != cached {
					t.Errorf("%s row %d: plain %v cached %v", c.ID, i, plain, cached)
				}
			}
		}
	}
	check()
	tbl.SetByName(4, "City", table.String("Madrid"))
	check()
	// Null join key: never a pair violation.
	tbl.SetByName(5, "Team", table.Null())
	check()
}
