package dc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// partitionOf flattens a bucketSet to a row → sorted-co-members view, the
// semantic content of the partition (slot numbering is allowed to differ
// between a replayed and a rebuilt set: interning order depends on
// history).
func partitionOf(t *testing.T, bs *bucketSet, tbl *table.Table) [][]int {
	t.Helper()
	out := make([][]int, tbl.NumRows())
	for row := 0; row < tbl.NumRows(); row++ {
		slot := bs.rowBucket[row]
		if slot < 0 {
			continue
		}
		members := bs.members[slot]
		found := false
		for _, m := range members {
			if m == row {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("row %d claims slot %d but is not in its members %v", row, slot, members)
		}
		out[row] = members
	}
	// Invariant: every member list is ascending and consistent with
	// rowBucket; retired slots must not leak rows.
	total := 0
	for slot := 0; slot < bs.nSlots; slot++ {
		rows := bs.members[slot]
		for i, r := range rows {
			if i > 0 && rows[i-1] >= r {
				t.Fatalf("slot %d members not strictly ascending: %v", slot, rows)
			}
			if bs.rowBucket[r] != slot {
				t.Fatalf("slot %d lists row %d, but rowBucket[%d] = %d", slot, r, r, bs.rowBucket[r])
			}
			total++
		}
	}
	excluded := 0
	for _, s := range bs.rowBucket {
		if s < 0 {
			excluded++
		}
	}
	if total+excluded != tbl.NumRows() {
		t.Fatalf("partition covers %d rows + %d excluded, table has %d", total, excluded, tbl.NumRows())
	}
	return out
}

// assertSamePartition compares the replayed and rebuilt partitions row by
// row.
func assertSamePartition(t *testing.T, label string, replayed, rebuilt *bucketSet, tbl *table.Table) {
	t.Helper()
	a := partitionOf(t, replayed, tbl)
	b := partitionOf(t, rebuilt, tbl)
	for row := range a {
		if (a[row] == nil) != (b[row] == nil) {
			t.Fatalf("%s: row %d: replayed excluded=%v, rebuilt excluded=%v", label, row, a[row] == nil, b[row] == nil)
		}
		if fmt.Sprint(a[row]) != fmt.Sprint(b[row]) {
			t.Fatalf("%s: row %d: replayed bucket %v, rebuilt bucket %v", label, row, a[row], b[row])
		}
	}
}

// TestBucketReplayEquivalentToRebuild is the satellite fuzz: replaying an
// edit batch through bucketSet.apply — which re-keys each edited row from
// the *final* table state, once per logged edit — must yield the same
// partition as a from-scratch rebuild. The batch generator is biased
// toward the suspicious histories: repeated edits to the same row/column,
// edits that move a row out of a bucket and back into it, null and NaN
// transitions, and interleaved edits to multiple signature columns.
func TestBucketReplayEquivalentToRebuild(t *testing.T) {
	values := []table.Value{
		table.String("k0"), table.String("k1"), table.String("k2"),
		table.Int(7), table.Float(7.0), table.Float(0.0),
		table.Float(math.Copysign(0, -1)), table.Float(math.NaN()), table.Null(),
	}
	signatures := [][]int{{0}, {1}, {0, 1}, {0, 2}, {0, 1, 2}}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		nRows := 4 + rng.Intn(16)
		grid := make([][]string, nRows)
		for i := range grid {
			grid[i] = []string{
				fmt.Sprintf("k%d", rng.Intn(3)),
				fmt.Sprintf("k%d", rng.Intn(2)),
				fmt.Sprintf("k%d", rng.Intn(2)),
			}
		}
		tbl := table.MustFromStrings([]string{"A", "B", "C"}, grid)

		var keyBuf []byte
		replayed := make([]*bucketSet, len(signatures))
		for s, cols := range signatures {
			replayed[s] = &bucketSet{cols: cols, idx: make(map[string]int)}
			replayed[s].rebuild(tbl, &keyBuf)
		}
		gen := tbl.Generation()

		for batch := 0; batch < 10; batch++ {
			// One batch: a burst of edits with deliberate repetition.
			focusRow := rng.Intn(nRows)
			focusCol := rng.Intn(3)
			nEdits := 1 + rng.Intn(12)
			for e := 0; e < nEdits; e++ {
				row, col := focusRow, focusCol
				switch rng.Intn(4) {
				case 0:
					// Out-and-back: overwrite with the current value's
					// neighbour, then restore the original.
					was := tbl.Get(row, col)
					tbl.Set(row, col, values[rng.Intn(len(values))])
					tbl.Set(row, col, was)
				case 1:
					// Same row/column again.
					tbl.Set(row, col, values[rng.Intn(len(values))])
				default:
					tbl.Set(rng.Intn(nRows), rng.Intn(3), values[rng.Intn(len(values))])
				}
			}

			edits, ok := tbl.EditsSince(gen, nil)
			if !ok {
				t.Fatalf("trial %d batch %d: edit log overran inside the window", trial, batch)
			}
			gen = tbl.Generation()
			for s, cols := range signatures {
				replayed[s].apply(tbl, edits, &keyBuf)
				rebuilt := &bucketSet{cols: cols, idx: make(map[string]int)}
				rebuilt.rebuild(tbl, &keyBuf)
				assertSamePartition(t, fmt.Sprintf("trial %d batch %d sig %v", trial, batch, cols), replayed[s], rebuilt, tbl)
			}
		}
	}
}
