package dc

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

func TestParseSimpleFD(t *testing.T) {
	c, err := Parse("C1: !(t1.Team = t2.Team & t1.City != t2.City)")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "C1" {
		t.Errorf("ID = %q", c.ID)
	}
	if len(c.Preds) != 2 {
		t.Fatalf("preds = %d", len(c.Preds))
	}
	p0 := c.Preds[0]
	if p0.Op != OpEq || p0.Left.Attr != "Team" || p0.Left.Tuple != 0 || p0.Right.Tuple != 1 {
		t.Errorf("pred0 = %v", p0)
	}
	if c.Preds[1].Op != OpNeq {
		t.Errorf("pred1 op = %v", c.Preds[1].Op)
	}
	if c.SingleTuple() {
		t.Error("pair constraint misclassified as single-tuple")
	}
}

func TestParseUnicodeNotation(t *testing.T) {
	c, err := Parse("¬(t1[League] = t2[League] ∧ t1[Country] ≠ t2[Country])")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Preds) != 2 {
		t.Fatalf("preds = %d", len(c.Preds))
	}
	if c.Preds[0].Left.Attr != "League" || c.Preds[1].Op != OpNeq {
		t.Errorf("parsed wrong: %v", c)
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]Op{
		"=": OpEq, "==": OpEq, "!=": OpNeq, "<>": OpNeq, "≠": OpNeq,
		"<": OpLt, "<=": OpLeq, "≤": OpLeq, ">": OpGt, ">=": OpGeq, "≥": OpGeq,
	}
	for tok, want := range cases {
		c, err := Parse("!(t1.A " + tok + " t2.A)")
		if err != nil {
			t.Errorf("op %q: %v", tok, err)
			continue
		}
		if c.Preds[0].Op != want {
			t.Errorf("op %q parsed as %v, want %v", tok, c.Preds[0].Op, want)
		}
	}
}

func TestParseConstants(t *testing.T) {
	c := MustParse(`!(t1.Year = 2019 & t1.City = 'Madrid' & t1.Rate < 2.5 & t1.Ok = true & t1.Tag = plain)`)
	if len(c.Preds) != 5 {
		t.Fatalf("preds = %d", len(c.Preds))
	}
	wantConsts := []table.Value{table.Int(2019), table.String("Madrid"), table.Float(2.5), table.Bool(true), table.String("plain")}
	for i, want := range wantConsts {
		got := c.Preds[i].Right
		if !got.IsConst || !got.Const.SameContent(want) || got.Const.Kind() != want.Kind() {
			t.Errorf("pred %d const = %v, want %v", i, got, want)
		}
	}
	if !c.SingleTuple() {
		t.Error("constant-only t1 constraint must be single-tuple")
	}
}

func TestParseNegativeNumber(t *testing.T) {
	c := MustParse("!(t1.X = -5)")
	if !c.Preds[0].Right.Const.Equal(table.Int(-5)) {
		t.Errorf("got %v", c.Preds[0].Right)
	}
}

func TestParseDoubleQuotedAndEscapes(t *testing.T) {
	c := MustParse(`!(t1.City = "San Sebastián" & t1.Note = 'it\'s')`)
	if c.Preds[0].Right.Const.Str() != "San Sebastián" {
		t.Errorf("quoted = %q", c.Preds[0].Right.Const.Str())
	}
	if c.Preds[1].Right.Const.Str() != "it's" {
		t.Errorf("escaped = %q", c.Preds[1].Right.Const.Str())
	}
}

func TestParseAndKeywordAndNot(t *testing.T) {
	c, err := Parse("not (t1.A = t2.A and t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Preds) != 2 {
		t.Fatalf("preds = %d", len(c.Preds))
	}
}

func TestParseDoubleAmpersand(t *testing.T) {
	c, err := Parse("!(t1.A = t2.A && t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Preds) != 2 {
		t.Fatalf("preds = %d", len(c.Preds))
	}
}

func TestParseNoNegationMarker(t *testing.T) {
	// A bare parenthesized conjunction is accepted: the denial is implied.
	c, err := Parse("(t1.A = t2.A)")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Preds) != 1 {
		t.Fatalf("preds = %d", len(c.Preds))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"!(",
		"!()",
		"!(t1.A)",
		"!(t1.A =)",
		"!(t1.A = t2.A",
		"!(t1.A = t2.A) trailing",
		"!(t3.A = t2.A) ", // t3 parses as bare word then fails at '.'
		"!(t1.A ~ t2.A)",
		"!(t1. = t2.A)",
		"!(t1[A = t2.A)",
		"!(t1.A = 'unterminated)",
		"!(t1.A = --3)",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) must error", s)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	inputs := []string{
		"C1: !(t1.Team = t2.Team & t1.City != t2.City)",
		"!(t1.Year >= 2000 & t1.Year < 2020)",
		`C9: !(t1.City = "Madrid" & t1.Country != "Spain")`,
	}
	for _, in := range inputs {
		c1 := MustParse(in)
		c2, err := Parse(c1.String())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", c1.String(), err)
		}
		if c1.String() != c2.String() {
			t.Errorf("round trip: %q -> %q", c1.String(), c2.String())
		}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// Render arbitrary small ASTs and check parse(render(ast)) == ast.
	attrs := []string{"A", "B", "C"}
	ops := []Op{OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq}
	f := func(seed uint32, nPreds uint8) bool {
		n := int(nPreds)%3 + 1
		c := &Constraint{ID: "CX"}
		s := seed
		next := func(m int) int { s = s*1664525 + 1013904223; return int(s>>16) % m }
		for i := 0; i < n; i++ {
			left := AttrOperand(next(2), attrs[next(len(attrs))])
			var right Operand
			if next(2) == 0 {
				right = AttrOperand(next(2), attrs[next(len(attrs))])
			} else {
				right = ConstOperand(table.Int(int64(next(100))))
			}
			c.Preds = append(c.Preds, Predicate{Left: left, Op: ops[next(len(ops))], Right: right})
		}
		back, err := Parse(c.String())
		return err == nil && back.String() == c.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseSet(t *testing.T) {
	text := `
# soccer constraints
C1: !(t1.Team = t2.Team & t1.City != t2.City)
-- a comment
!(t1.City = t2.City & t1.Country != t2.Country)

C3: !(t1.League = t2.League & t1.Country != t2.Country)
`
	cs, err := ParseSet(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("got %d constraints", len(cs))
	}
	if cs[0].ID != "C1" || cs[1].ID != "C2" || cs[2].ID != "C3" {
		t.Errorf("IDs = %s %s %s", cs[0].ID, cs[1].ID, cs[2].ID)
	}
}

func TestParseSetDuplicateID(t *testing.T) {
	if _, err := ParseSet("C1: !(t1.A = t2.A)\nC1: !(t1.B = t2.B)"); err == nil {
		t.Error("duplicate IDs must be rejected")
	}
	if _, err := ParseSet("C1: !(t1.A ="); err == nil {
		t.Error("parse error must propagate with line number")
	} else if !strings.Contains(err.Error(), "line") {
		t.Errorf("error should mention line: %v", err)
	}
}

func TestConstraintAttributes(t *testing.T) {
	c := MustParse("!(t1.Team = t2.Team & t1.City != t2.City & t1.Team = 'x')")
	attrs := c.Attributes()
	if len(attrs) != 2 || attrs[0] != "Team" || attrs[1] != "City" {
		t.Errorf("Attributes = %v", attrs)
	}
}

func TestConstraintValidate(t *testing.T) {
	schema := table.MustSchema(table.Column{Name: "Team"}, table.Column{Name: "City"})
	good := MustParse("!(t1.Team = t2.Team & t1.City != t2.City)")
	if err := good.Validate(schema); err != nil {
		t.Errorf("valid constraint rejected: %v", err)
	}
	bad := MustParse("!(t1.Nope = t2.Nope)")
	if err := bad.Validate(schema); err == nil {
		t.Error("unknown attribute must be rejected")
	}
	empty := &Constraint{ID: "E"}
	if err := empty.Validate(schema); err == nil {
		t.Error("empty constraint must be rejected")
	}
}

func TestOpNegate(t *testing.T) {
	for _, o := range []Op{OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq} {
		if o.Negate().Negate() != o {
			t.Errorf("Negate not involutive for %v", o)
		}
	}
	if OpEq.Negate() != OpNeq || OpLt.Negate() != OpGeq {
		t.Error("Negate mapping wrong")
	}
}

func TestOpString(t *testing.T) {
	if OpGeq.String() != ">=" || Op(99).String() == "" {
		t.Error("Op.String")
	}
}
