package dc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// assertIndexedMatchesExact compares the indexed/cached scan and the
// bucket-restricted per-row primitives against the naive reference scan on
// every row of tbl.
func assertIndexedMatchesExact(t *testing.T, label string, c *Constraint, tbl *table.Table, ix *ScanIndex) {
	t.Helper()
	want, err := c.Violations(tbl)
	if err != nil {
		t.Fatalf("%s: exact: %v", label, err)
	}
	got, err := c.ViolationsCached(tbl, ix)
	if err != nil {
		t.Fatalf("%s: cached: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d violations cached, %d exact\ncached: %v\nexact: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Row1 != want[i].Row1 || got[i].Row2 != want[i].Row2 {
			t.Fatalf("%s: violation %d: cached (%d,%d), exact (%d,%d)",
				label, i, got[i].Row1, got[i].Row2, want[i].Row1, want[i].Row2)
		}
	}
	for row := 0; row < tbl.NumRows(); row++ {
		exact, err := c.ViolatesRow(tbl, row)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := c.ViolatesRowCached(tbl, row, ix)
		if err != nil {
			t.Fatal(err)
		}
		if exact != indexed {
			t.Fatalf("%s: row %d: exact %v, bucket-restricted %v", label, row, exact, indexed)
		}
		nExact, err := c.ViolationPairsForRow(tbl, row, nil)
		if err != nil {
			t.Fatal(err)
		}
		nIndexed, err := c.ViolationPairsForRow(tbl, row, ix)
		if err != nil {
			t.Fatal(err)
		}
		if nExact != nIndexed {
			t.Fatalf("%s: row %d: %d pairs exact, %d bucket-restricted", label, row, nExact, nIndexed)
		}
	}
}

// TestNaNJoinKeyExcludedFromPartition is the regression test for the NaN
// join-key bug: NaN cells used to share an equality bucket (every NaN row
// keyed to "NaN"), so partition consumers that trust the bucket as an
// equality grouping treated NaN rows as joined even though NaN = NaN is
// false. NaN join keys now exclude the row from the partition exactly like
// nulls, and every indexed primitive must agree with the naive scan.
func TestNaNJoinKeyExcludedFromPartition(t *testing.T) {
	c, err := Parse("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	tbl := table.New(mustSchema(t, "A", "B"))
	appendRow := func(a, b table.Value) {
		t.Helper()
		if err := tbl.Append([]table.Value{a, b}); err != nil {
			t.Fatal(err)
		}
	}
	nan := table.Float(math.NaN())
	appendRow(nan, table.String("x"))
	appendRow(nan, table.String("y")) // would violate if NaN = NaN held
	appendRow(table.Float(1), table.String("x"))
	appendRow(table.Int(1), table.String("y")) // real violation: 1 = 1.0
	appendRow(table.Null(), table.String("z"))
	ix := NewScanIndex()
	assertIndexedMatchesExact(t, "initial", c, tbl, ix)

	// The partition must place NaN rows nowhere: they cannot be probed into
	// a bucket, and the indexed scan must report exactly the one int/float
	// violating pair (both orders).
	want, err := c.Violations(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 2 {
		t.Fatalf("fixture: want the (2,3)/(3,2) pair only, got %v", want)
	}

	// NaN moving in and out of the join column must keep the delta-maintained
	// partition in agreement with the exact scan.
	tbl.Set(0, 0, table.Float(1))
	assertIndexedMatchesExact(t, "NaN -> 1.0", c, tbl, ix)
	tbl.Set(0, 0, nan)
	assertIndexedMatchesExact(t, "1.0 -> NaN", c, tbl, ix)
	tbl.Set(4, 0, nan)
	assertIndexedMatchesExact(t, "null -> NaN", c, tbl, ix)
	tbl.Set(4, 0, table.Null())
	assertIndexedMatchesExact(t, "NaN -> null", c, tbl, ix)
}

// TestNaNZeroMixedKindsFuzz fuzzes tables mixing NaN, ±0.0, int/float
// twins, nulls and strings in join and non-join columns: after every edit
// the cached scan must stay bit-identical to the naive reference for both
// an FD-shaped and a comparison-heavy constraint.
func TestNaNZeroMixedKindsFuzz(t *testing.T) {
	cs, err := ParseSet(`
C1: !(t1.A = t2.A & t1.B != t2.B)
C2: !(t1.A = t2.A & t1.C = t2.C & t1.B > t2.B)
`)
	if err != nil {
		t.Fatal(err)
	}
	values := []table.Value{
		table.Float(math.NaN()),
		table.Float(0.0),
		table.Float(math.Copysign(0, -1)),
		table.Int(0),
		table.Int(1),
		table.Float(1.0),
		table.Null(),
		table.String(""),
		table.String("NaN"), // string decoy: must never join the float NaN
		table.Bool(true),
	}
	rng := rand.New(rand.NewSource(42))
	tbl := table.New(mustSchema(t, "A", "B", "C"))
	for i := 0; i < 18; i++ {
		row := []table.Value{
			values[rng.Intn(len(values))],
			values[rng.Intn(len(values))],
			values[rng.Intn(len(values))],
		}
		if err := tbl.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	ix := NewScanIndex()
	for _, c := range cs {
		assertIndexedMatchesExact(t, "initial/"+c.ID, c, tbl, ix)
	}
	for step := 0; step < 250; step++ {
		tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()), values[rng.Intn(len(values))])
		for _, c := range cs {
			assertIndexedMatchesExact(t, fmt.Sprintf("step %d/%s", step, c.ID), c, tbl, ix)
		}
	}
}
