// Package dc implements the denial-constraint (DC) language used by the
// paper: the predicate AST, a text parser for the ¬(p1 ∧ ... ∧ pk) form, an
// interpreter with SQL-style null semantics, and violation detection over
// tables (both a naive quadratic scan and a hash-join accelerated scan).
//
// A denial constraint ∀t1,t2. ¬(p1 ∧ ... ∧ pk) states that no pair of
// distinct tuples may jointly satisfy all predicates. Constraints that only
// mention t1 are single-tuple DCs and are checked per tuple.
package dc

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// Op is a comparison operator of a DC predicate.
type Op uint8

// The six comparison operators of the standard DC fragment.
const (
	OpEq Op = iota
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
)

// String renders the operator in ASCII form.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLeq:
		return "<="
	case OpGt:
		return ">"
	case OpGeq:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Negate returns the logical negation of the operator (= ↔ !=, < ↔ >=, ...).
func (o Op) Negate() Op {
	switch o {
	case OpEq:
		return OpNeq
	case OpNeq:
		return OpEq
	case OpLt:
		return OpGeq
	case OpLeq:
		return OpGt
	case OpGt:
		return OpLeq
	case OpGeq:
		return OpLt
	default:
		return o
	}
}

// Eval applies the operator to two values under three-valued logic:
// (result, known). known is false when either side is null or the kinds are
// incomparable; the DC evaluator treats unknown as "predicate not satisfied",
// so nulls never create violations — matching the paper's coalition
// semantics where excluded cells are null.
func (o Op) Eval(a, b table.Value) (bool, bool) {
	switch o {
	case OpEq:
		if a.IsNull() || b.IsNull() {
			return false, false
		}
		return a.Equal(b), true
	case OpNeq:
		if a.IsNull() || b.IsNull() {
			return false, false
		}
		return !a.Equal(b), true
	default:
		c, ok := a.Compare(b)
		if !ok {
			return false, false
		}
		switch o {
		case OpLt:
			return c < 0, true
		case OpLeq:
			return c <= 0, true
		case OpGt:
			return c > 0, true
		case OpGeq:
			return c >= 0, true
		}
		return false, false
	}
}

// Operand is one side of a predicate: either a tuple attribute reference
// (t1.Attr or t2.Attr) or a constant.
type Operand struct {
	// IsConst selects between the two variants.
	IsConst bool
	// Const is the constant value when IsConst.
	Const table.Value
	// Tuple is 0 for t1 and 1 for t2 when !IsConst.
	Tuple int
	// Attr is the attribute name when !IsConst.
	Attr string
}

// ConstOperand builds a constant operand.
func ConstOperand(v table.Value) Operand { return Operand{IsConst: true, Const: v} }

// AttrOperand builds a tuple-attribute operand; tuple is 0 (t1) or 1 (t2).
func AttrOperand(tuple int, attr string) Operand { return Operand{Tuple: tuple, Attr: attr} }

// String renders the operand in parser syntax.
func (o Operand) String() string {
	if o.IsConst {
		if o.Const.Kind() == table.KindString {
			return fmt.Sprintf("%q", o.Const.Str())
		}
		return o.Const.String()
	}
	return fmt.Sprintf("t%d.%s", o.Tuple+1, o.Attr)
}

// value resolves the operand against a pair of rows (row2 may equal row1
// for single-tuple DCs).
func (o Operand) value(row1, row2 []table.Value, schema *table.Schema) (table.Value, error) {
	if o.IsConst {
		return o.Const, nil
	}
	idx, ok := schema.Index(o.Attr)
	if !ok {
		return table.Null(), fmt.Errorf("dc: attribute %q not in schema (%s)", o.Attr, schema)
	}
	if o.Tuple == 0 {
		return row1[idx], nil
	}
	return row2[idx], nil
}

// Predicate is one conjunct of a DC body: Left Op Right.
type Predicate struct {
	Left  Operand
	Op    Op
	Right Operand
}

// String renders the predicate in parser syntax.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// mentionsT2 reports whether the predicate references tuple variable t2.
func (p Predicate) mentionsT2() bool {
	return (!p.Left.IsConst && p.Left.Tuple == 1) || (!p.Right.IsConst && p.Right.Tuple == 1)
}

// Eval evaluates the predicate on a pair of rows under three-valued logic.
func (p Predicate) Eval(row1, row2 []table.Value, schema *table.Schema) (bool, bool, error) {
	a, err := p.Left.value(row1, row2, schema)
	if err != nil {
		return false, false, err
	}
	b, err := p.Right.value(row1, row2, schema)
	if err != nil {
		return false, false, err
	}
	sat, known := p.Op.Eval(a, b)
	return sat, known, nil
}

// Constraint is a denial constraint ∀t1[,t2]. ¬(p1 ∧ ... ∧ pk).
type Constraint struct {
	// ID is a short name such as "C1". IDs are unique within a Set.
	ID string
	// Preds is the conjunction being denied; it must be non-empty.
	Preds []Predicate
	// Comment is optional free text describing the constraint's intent.
	Comment string
}

// SingleTuple reports whether the constraint only references t1 and is
// therefore checked per tuple instead of per pair.
func (c *Constraint) SingleTuple() bool {
	for _, p := range c.Preds {
		if p.mentionsT2() {
			return false
		}
	}
	return true
}

// Attributes returns the distinct attribute names mentioned by the
// constraint, in first-mention order.
func (c *Constraint) Attributes() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(o Operand) {
		if !o.IsConst && !seen[o.Attr] {
			seen[o.Attr] = true
			out = append(out, o.Attr)
		}
	}
	for _, p := range c.Preds {
		add(p.Left)
		add(p.Right)
	}
	return out
}

// String renders the constraint in parser syntax, e.g.
//
//	C1: !(t1.Team = t2.Team & t1.City != t2.City)
func (c *Constraint) String() string {
	parts := make([]string, len(c.Preds))
	for i, p := range c.Preds {
		parts[i] = p.String()
	}
	body := "!(" + strings.Join(parts, " & ") + ")"
	if c.ID == "" {
		return body
	}
	return c.ID + ": " + body
}

// Validate checks the constraint is well-formed against a schema: non-empty
// body, known attributes, and t2 references only in pair constraints.
func (c *Constraint) Validate(schema *table.Schema) error {
	if len(c.Preds) == 0 {
		return fmt.Errorf("dc: constraint %s has no predicates", c.ID)
	}
	for _, p := range c.Preds {
		for _, o := range []Operand{p.Left, p.Right} {
			if o.IsConst {
				continue
			}
			if o.Tuple != 0 && o.Tuple != 1 {
				return fmt.Errorf("dc: constraint %s references tuple t%d", c.ID, o.Tuple+1)
			}
			if _, ok := schema.Index(o.Attr); !ok {
				return fmt.Errorf("dc: constraint %s references unknown attribute %q", c.ID, o.Attr)
			}
		}
	}
	return nil
}
