package dc

import (
	"testing"
)

// TestColsSignatureInterned pins the interning contract behind entryFor's
// steady-state allocation budget (the dc-side counterpart of the core
// package's TestEvalRepairAllocs assertions): repeated signatures resolve
// to one canonical shared string and the lookup itself is alloc-free —
// the varint builds in a stack buffer and the map access through
// string(bytes) does not materialize a key.
func TestColsSignatureInterned(t *testing.T) {
	cols := []int{0, 2, 5, 200}
	first := colsSignature(cols)
	second := colsSignature(cols)
	if first != second {
		t.Fatalf("signature not stable: %q vs %q", first, second)
	}
	if got := testing.AllocsPerRun(200, func() {
		_ = colsSignature(cols)
	}); got != 0 {
		t.Errorf("colsSignature allocates %.1f per call on the interned path; want 0", got)
	}
	// Distinct column sets stay distinct.
	if colsSignature([]int{0, 2}) == colsSignature([]int{0, 3}) {
		t.Error("distinct column sets collide")
	}
}

// TestInternSignatureBounded pins the overflow behavior: past
// maxSigInterned distinct signatures the table resets instead of growing
// without bound, and interning keeps working afterwards.
func TestInternSignatureBounded(t *testing.T) {
	for i := 0; i < maxSigInterned+10; i++ {
		_ = colsSignature([]int{i, i + 1, i + 2})
	}
	sigMu.RLock()
	n := len(sigIntern)
	sigMu.RUnlock()
	if n > maxSigInterned {
		t.Errorf("intern table grew to %d entries past the %d bound", n, maxSigInterned)
	}
	cols := []int{1, 2, 3}
	if colsSignature(cols) != colsSignature(cols) {
		t.Error("interning broken after overflow reset")
	}
}
