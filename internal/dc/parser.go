package dc

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/table"
)

// Parse parses one denial constraint from text. The grammar accepts both
// ASCII and the paper's unicode notation:
//
//	dc      := [ident ':'] ['!'|'¬'|'not'] '(' pred (('&'|'∧'|'and') pred)* ')'
//	pred    := operand op operand
//	operand := ('t1'|'t2') ('.' ident | '[' ident ']') | number | 'quoted' | "quoted"
//	op      := '=' | '==' | '!=' | '<>' | '≠' | '<' | '<=' | '≤' | '>' | '>=' | '≥'
//
// Examples:
//
//	C1: !(t1.Team = t2.Team & t1.City != t2.City)
//	¬(t1[League] = t2[League] ∧ t1[Country] ≠ t2[Country])
func Parse(text string) (*Constraint, error) {
	p := &parser{src: []rune(strings.TrimSpace(text))}
	c, err := p.constraint()
	if err != nil {
		return nil, fmt.Errorf("dc: parsing %q: %w", text, err)
	}
	return c, nil
}

// MustParse is Parse that panics on error; for literals in tests/examples.
func MustParse(text string) *Constraint {
	c, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseSet parses a newline-separated list of constraints, skipping blank
// lines and lines starting with '#' or '--'. Constraints without an explicit
// ID are assigned C1, C2, ... by position.
func ParseSet(text string) ([]*Constraint, error) {
	var out []*Constraint
	seen := make(map[string]bool)
	for lineNo, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || strings.HasPrefix(trimmed, "--") {
			continue
		}
		c, err := Parse(trimmed)
		if err != nil {
			return nil, fmt.Errorf("dc: line %d: %w", lineNo+1, err)
		}
		if c.ID == "" {
			c.ID = fmt.Sprintf("C%d", len(out)+1)
		}
		if seen[c.ID] {
			return nil, fmt.Errorf("dc: line %d: duplicate constraint ID %q", lineNo+1, c.ID)
		}
		seen[c.ID] = true
		out = append(out, c)
	}
	return out, nil
}

type parser struct {
	src []rune
	pos int
}

func (p *parser) constraint() (*Constraint, error) {
	c := &Constraint{}
	p.ws()
	// Optional "ID:" prefix — only when an identifier is directly followed
	// by a colon.
	if save := p.pos; p.peekIdentStart() {
		id := p.ident()
		p.ws()
		if p.eat(':') {
			c.ID = id
		} else {
			p.pos = save
		}
	}
	p.ws()
	// Optional negation marker.
	if !p.eat('!') && !p.eat('¬') {
		save := p.pos
		if p.peekIdentStart() {
			if word := p.ident(); !strings.EqualFold(word, "not") {
				p.pos = save
			}
		}
	}
	p.ws()
	if !p.eat('(') {
		return nil, p.errf("expected '('")
	}
	for {
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		c.Preds = append(c.Preds, pred)
		p.ws()
		if p.eat('&') || p.eat('∧') {
			p.eat('&') // tolerate '&&'
			continue
		}
		if p.peekIdentStart() {
			save := p.pos
			if word := p.ident(); strings.EqualFold(word, "and") {
				continue
			}
			p.pos = save
		}
		break
	}
	p.ws()
	if !p.eat(')') {
		return nil, p.errf("expected ')' or '&'")
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input")
	}
	return c, nil
}

func (p *parser) predicate() (Predicate, error) {
	left, err := p.operand()
	if err != nil {
		return Predicate{}, err
	}
	op, err := p.operator()
	if err != nil {
		return Predicate{}, err
	}
	right, err := p.operand()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Left: left, Op: op, Right: right}, nil
}

func (p *parser) operand() (Operand, error) {
	p.ws()
	if p.pos >= len(p.src) {
		return Operand{}, p.errf("expected operand")
	}
	r := p.src[p.pos]
	switch {
	case r == '\'' || r == '"':
		s, err := p.quoted(r)
		if err != nil {
			return Operand{}, err
		}
		return ConstOperand(table.String(s)), nil
	case unicode.IsDigit(r) || r == '-' || r == '+':
		return p.number()
	case p.peekIdentStart():
		save := p.pos
		word := p.ident()
		if word == "t1" || word == "t2" || word == "T1" || word == "T2" {
			tuple := 0
			if word == "t2" || word == "T2" {
				tuple = 1
			}
			if p.eat('.') {
				if !p.peekIdentStart() {
					return Operand{}, p.errf("expected attribute after '.'")
				}
				return AttrOperand(tuple, p.ident()), nil
			}
			if p.eat('[') {
				if !p.peekIdentStart() {
					return Operand{}, p.errf("expected attribute after '['")
				}
				attr := p.ident()
				if !p.eat(']') {
					return Operand{}, p.errf("expected ']'")
				}
				return AttrOperand(tuple, attr), nil
			}
			return Operand{}, p.errf("expected '.' or '[' after %s", word)
		}
		// Bare words true/false are boolean constants; anything else is an
		// unquoted string constant.
		p.pos = save
		word = p.ident()
		if word == "true" || word == "false" {
			return ConstOperand(table.Bool(word == "true")), nil
		}
		return ConstOperand(table.String(word)), nil
	default:
		return Operand{}, p.errf("unexpected %q in operand", string(r))
	}
}

func (p *parser) number() (Operand, error) {
	start := p.pos
	if p.src[p.pos] == '-' || p.src[p.pos] == '+' {
		p.pos++
	}
	digits := false
	for p.pos < len(p.src) && (unicode.IsDigit(p.src[p.pos]) || p.src[p.pos] == '.') {
		if unicode.IsDigit(p.src[p.pos]) {
			digits = true
		}
		p.pos++
	}
	if !digits {
		return Operand{}, p.errf("malformed number")
	}
	v := table.ParseValue(string(p.src[start:p.pos]))
	if v.Kind() != table.KindInt && v.Kind() != table.KindFloat {
		return Operand{}, p.errf("malformed number %q", string(p.src[start:p.pos]))
	}
	return ConstOperand(v), nil
}

func (p *parser) quoted(quote rune) (string, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.src) {
		r := p.src[p.pos]
		if r == quote {
			p.pos++
			return b.String(), nil
		}
		if r == '\\' && p.pos+1 < len(p.src) {
			p.pos++
			r = p.src[p.pos]
		}
		b.WriteRune(r)
		p.pos++
	}
	return "", p.errf("unterminated string")
}

func (p *parser) operator() (Op, error) {
	p.ws()
	two := p.peekStr(2)
	switch two {
	case "==":
		p.pos += 2
		return OpEq, nil
	case "!=", "<>":
		p.pos += 2
		return OpNeq, nil
	case "<=":
		p.pos += 2
		return OpLeq, nil
	case ">=":
		p.pos += 2
		return OpGeq, nil
	}
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '=':
			p.pos++
			return OpEq, nil
		case '≠':
			p.pos++
			return OpNeq, nil
		case '≤':
			p.pos++
			return OpLeq, nil
		case '≥':
			p.pos++
			return OpGeq, nil
		case '<':
			p.pos++
			return OpLt, nil
		case '>':
			p.pos++
			return OpGt, nil
		}
	}
	return OpEq, p.errf("expected comparison operator")
}

func (p *parser) ws() {
	for p.pos < len(p.src) && unicode.IsSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *parser) eat(r rune) bool {
	if p.pos < len(p.src) && p.src[p.pos] == r {
		p.pos++
		return true
	}
	return false
}

func (p *parser) peekStr(n int) string {
	if p.pos+n > len(p.src) {
		return ""
	}
	return string(p.src[p.pos : p.pos+n])
}

func (p *parser) peekIdentStart() bool {
	return p.pos < len(p.src) && (unicode.IsLetter(p.src[p.pos]) || p.src[p.pos] == '_')
}

func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.src) && (unicode.IsLetter(p.src[p.pos]) || unicode.IsDigit(p.src[p.pos]) || p.src[p.pos] == '_') {
		p.pos++
	}
	return string(p.src[start:p.pos])
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}
