package dc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/table"
)

// randomKernelValue draws from a pool chosen to stress every comparison
// edge: NULLs, NaN, ±0.0, int/float twins, empty strings, bools, and
// lexical decoys.
func randomKernelValue(rng *rand.Rand) table.Value {
	pool := []table.Value{
		table.Null(),
		table.Float(math.NaN()),
		table.Float(0.0),
		table.Float(math.Copysign(0, -1)),
		table.Int(0),
		table.Int(1),
		table.Int(-7),
		table.Float(1.0),
		table.Float(1.5),
		table.String(""),
		table.String("a"),
		table.String("b"),
		table.String("1"),
		table.String("NaN"),
		table.Bool(false),
		table.Bool(true),
	}
	return pool[rng.Intn(len(pool))]
}

// randomKernelConstraint builds a constraint with 1–3 predicates over
// random operand shapes: t1/t2 attributes (same or different columns) and
// constants, across all six operators.
func randomKernelConstraint(rng *rand.Rand, attrs []string) *Constraint {
	nPreds := 1 + rng.Intn(3)
	c := &Constraint{ID: "R"}
	for p := 0; p < nPreds; p++ {
		operand := func() Operand {
			if rng.Intn(4) == 0 {
				return ConstOperand(randomKernelValue(rng))
			}
			return AttrOperand(rng.Intn(2), attrs[rng.Intn(len(attrs))])
		}
		c.Preds = append(c.Preds, Predicate{
			Left:  operand(),
			Op:    Op(rng.Intn(6)),
			Right: operand(),
		})
	}
	return c
}

// TestKernelMatchesInterpreterProperty is the satellite property test: on
// randomized schemas and tables the compiled kernel must agree with the
// interpreted SatisfiedPair for every ordered pair, and Filter must agree
// with per-pair evaluation in both tuple orientations with arbitrary
// pre-masked candidates.
func TestKernelMatchesInterpreterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		nCols := 1 + rng.Intn(4)
		attrs := make([]string, nCols)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("A%d", i)
		}
		schema := mustSchema(t, attrs...)
		tbl := table.New(schema)
		nRows := 2 + rng.Intn(8)
		for i := 0; i < nRows; i++ {
			row := make([]table.Value, nCols)
			for j := range row {
				row[j] = randomKernelValue(rng)
			}
			if err := tbl.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		c := randomKernelConstraint(rng, attrs)
		kern, err := compileKernel(c, schema)
		if err != nil {
			t.Fatalf("trial %d: compile %s: %v", trial, c, err)
		}

		// Every ordered pair, including the self pair (the single-tuple
		// binding).
		for i := 0; i < nRows; i++ {
			for j := 0; j < nRows; j++ {
				want, err := c.SatisfiedPair(tbl, i, j)
				if err != nil {
					t.Fatal(err)
				}
				if got := kern.Pair(tbl, i, j); got != want {
					t.Fatalf("trial %d: %s: pair (%d,%d): kernel %v, interpreter %v\ntable:\n%s",
						trial, c, i, j, got, want, tbl)
				}
			}
		}

		// Filter against a random candidate list with random pre-masking, in
		// both orientations (fixed row bound to t1 and to t2).
		for rep := 0; rep < 4; rep++ {
			fixed := rng.Intn(nRows)
			fixedTuple := rng.Intn(2)
			nCand := 1 + rng.Intn(nRows)
			cand := make([]int, nCand)
			alive := make([]bool, nCand)
			pre := make([]bool, nCand)
			for n := range cand {
				cand[n] = rng.Intn(nRows)
				pre[n] = rng.Intn(8) != 0
				alive[n] = pre[n]
			}
			kern.Filter(tbl, fixedTuple, fixed, cand, alive)
			for n, r := range cand {
				i, j := fixed, r
				if fixedTuple == 1 {
					i, j = r, fixed
				}
				sat, err := c.SatisfiedPair(tbl, i, j)
				if err != nil {
					t.Fatal(err)
				}
				want := pre[n] && sat
				if alive[n] != want {
					t.Fatalf("trial %d: %s: filter fixedTuple=%d fixed=%d cand[%d]=%d: got %v, want %v (pre %v)\ntable:\n%s",
						trial, c, fixedTuple, fixed, n, r, alive[n], want, pre[n], tbl)
				}
			}
		}
	}
}

// TestKernelUnknownAttribute pins the compile error to the interpreter's
// text, so whichever path runs the caller sees the same failure.
func TestKernelUnknownAttribute(t *testing.T) {
	schema := mustSchema(t, "A")
	c := &Constraint{ID: "C1", Preds: []Predicate{{
		Left: AttrOperand(0, "Nope"), Op: OpEq, Right: AttrOperand(1, "Nope"),
	}}}
	if _, err := compileKernel(c, schema); err == nil {
		t.Fatal("compileKernel must fail on unknown attribute")
	} else if want := `dc: attribute "Nope" not in schema (A)`; err.Error() != want {
		t.Fatalf("error %q, want %q", err, want)
	}
}
