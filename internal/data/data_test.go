package data

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dc"
	"repro/internal/table"
)

func TestLaLigaShape(t *testing.T) {
	ll := NewLaLiga()
	if ll.Dirty.NumRows() != 6 || ll.Dirty.NumCols() != 6 {
		t.Fatalf("dims %dx%d", ll.Dirty.NumRows(), ll.Dirty.NumCols())
	}
	if ll.Dirty.NumCells() != 36 {
		t.Fatal("Example 2.4 requires 36 cells")
	}
	if len(ll.DCs) != 4 {
		t.Fatalf("DCs = %d", len(ll.DCs))
	}
	if got := ll.Dirty.RefName(ll.CellOfInterest); got != "t5[Country]" {
		t.Fatalf("cell of interest = %s", got)
	}
	if err := dc.ValidateSet(ll.DCs, ll.Dirty.Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestLaLigaDirtyVsClean(t *testing.T) {
	ll := NewLaLiga()
	diffs, err := table.Diff(ll.Dirty, ll.Clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 3 {
		t.Fatalf("dirty cells = %d, want 3:\n%s", len(diffs), table.FormatDiffs(ll.Dirty, diffs))
	}
	// t5[Country]: España -> Spain (Example 2.1).
	if !ll.Dirty.GetRef(ll.CellOfInterest).Equal(table.String("España")) {
		t.Error("dirty t5[Country] must be España")
	}
	if !ll.Clean.GetRef(ll.CellOfInterest).Equal(table.String("Spain")) {
		t.Error("clean t5[Country] must be Spain")
	}
}

func TestLaLigaCleanIsConsistent(t *testing.T) {
	ll := NewLaLiga()
	ok, err := dc.Consistent(ll.DCs, ll.Clean)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		vs, _ := dc.AllViolations(ll.DCs, ll.Clean)
		t.Fatalf("clean table violates constraints: %v", vs)
	}
	ok, err = dc.Consistent(ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("dirty table must be inconsistent")
	}
}

func TestLaLigaExample24Structure(t *testing.T) {
	// Example 2.4: rows {1,2,3,6} have the (La Liga, Spain) pair and t4
	// does not.
	ll := NewLaLiga()
	for _, i := range []int{0, 1, 2, 5} {
		if !ll.Dirty.GetByName(i, "League").Equal(table.String("La Liga")) ||
			!ll.Dirty.GetByName(i, "Country").Equal(table.String("Spain")) {
			t.Errorf("t%d must carry (La Liga, Spain)", i+1)
		}
	}
	if ll.Dirty.GetByName(3, "Country").Equal(table.String("Spain")) {
		t.Error("t4 must not carry a clean Spain (Example 2.4 excludes i=4)")
	}
}

func TestGenerateSoccerConsistent(t *testing.T) {
	tbl := GenerateSoccer(SoccerConfig{Leagues: 3, TeamsPerLeague: 5, Years: 2, Seed: 1})
	if tbl.NumRows() != 3*5*2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	ok, err := dc.Consistent(SoccerDCs(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		vs, _ := dc.AllViolations(SoccerDCs(), tbl)
		t.Fatalf("generated table must satisfy C1..C4, got %v", vs)
	}
}

func TestGenerateSoccerConsistencyProperty(t *testing.T) {
	f := func(seed int64, l, m, y uint8) bool {
		cfg := SoccerConfig{
			Leagues:        int(l)%4 + 1,
			TeamsPerLeague: int(m)%6 + 2,
			Years:          int(y)%3 + 1,
			Seed:           seed,
		}
		tbl := GenerateSoccer(cfg)
		ok, err := dc.Consistent(SoccerDCs(), tbl)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGenerateSoccerDeterministic(t *testing.T) {
	a := GenerateSoccer(SoccerConfig{Seed: 9})
	b := GenerateSoccer(SoccerConfig{Seed: 9})
	if !a.Equal(b) {
		t.Fatal("same seed must generate the same table")
	}
	c := GenerateSoccer(SoccerConfig{Seed: 10})
	if a.Equal(c) {
		t.Fatal("different seeds should differ (places are permuted)")
	}
}

func TestGenerateSoccerManyLeagues(t *testing.T) {
	tbl := GenerateSoccer(SoccerConfig{Leagues: 15, TeamsPerLeague: 2, Seed: 3})
	countries := table.NewStats(tbl).ColumnByName("Country")
	if len(countries.Support()) != 15 {
		t.Fatalf("15 leagues must map to 15 distinct countries, got %d", len(countries.Support()))
	}
}

func TestInjectBasics(t *testing.T) {
	clean := GenerateSoccer(SoccerConfig{Leagues: 2, TeamsPerLeague: 10, Seed: 5})
	dirty, injections, err := Inject(clean, InjectSpec{Rate: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Equal(dirty) {
		t.Fatal("injection must change the table")
	}
	diffs, err := table.Diff(clean, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != len(injections) {
		t.Fatalf("diffs %d vs injections %d", len(diffs), len(injections))
	}
	for _, inj := range injections {
		if !dirty.GetRef(inj.Ref).SameContent(inj.Dirty) {
			t.Errorf("injection record mismatch at %v", inj.Ref)
		}
		if !clean.GetRef(inj.Ref).SameContent(inj.Clean) {
			t.Errorf("clean record mismatch at %v", inj.Ref)
		}
		if inj.Clean.SameContent(inj.Dirty) {
			t.Errorf("injection at %v did not change the value", inj.Ref)
		}
	}
}

func TestInjectRateZeroAndValidation(t *testing.T) {
	clean := GenerateSoccer(SoccerConfig{Seed: 5})
	dirty, injections, err := Inject(clean, InjectSpec{Rate: 0, Seed: 1})
	if err != nil || len(injections) != 0 || !dirty.Equal(clean) {
		t.Fatal("rate 0 must be a no-op")
	}
	if _, _, err := Inject(clean, InjectSpec{Rate: 1.5}); err == nil {
		t.Error("rate > 1 must error")
	}
	if _, _, err := Inject(clean, InjectSpec{Rate: 0.1, Columns: []string{"Nope"}}); err == nil {
		t.Error("unknown column must error")
	}
}

func TestInjectColumnsRestriction(t *testing.T) {
	clean := GenerateSoccer(SoccerConfig{Leagues: 2, TeamsPerLeague: 10, Seed: 5})
	col := clean.Schema().MustIndex("Country")
	_, injections, err := Inject(clean, InjectSpec{Rate: 0.5, Columns: []string{"Country"}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(injections) == 0 {
		t.Fatal("expected injections")
	}
	for _, inj := range injections {
		if inj.Ref.Col != col {
			t.Errorf("injection outside Country column: %v", inj.Ref)
		}
	}
}

func TestInjectKinds(t *testing.T) {
	clean := GenerateSoccer(SoccerConfig{Leagues: 2, TeamsPerLeague: 10, Seed: 5})
	for _, kind := range []ErrorKind{ErrorTypo, ErrorSwap, ErrorNull, ErrorForeign} {
		_, injections, err := Inject(clean, InjectSpec{Rate: 0.2, Kinds: []ErrorKind{kind}, Columns: []string{"City"}, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(injections) == 0 {
			t.Errorf("kind %d produced no injections", kind)
			continue
		}
		for _, inj := range injections {
			switch kind {
			case ErrorNull:
				if !inj.Dirty.IsNull() {
					t.Errorf("null injection produced %v", inj.Dirty)
				}
			case ErrorForeign:
				if inj.Dirty.Kind() != table.KindString || inj.Dirty.Str()[0] != '@' {
					t.Errorf("foreign injection produced %v", inj.Dirty)
				}
			}
		}
	}
}

func TestInjectDeterministic(t *testing.T) {
	clean := GenerateSoccer(SoccerConfig{Seed: 5})
	d1, i1, _ := Inject(clean, InjectSpec{Rate: 0.2, Seed: 11})
	d2, i2, _ := Inject(clean, InjectSpec{Rate: 0.2, Seed: 11})
	if !d1.Equal(d2) || len(i1) != len(i2) {
		t.Fatal("same seed must inject identically")
	}
}

func TestTypoAlwaysChanges(t *testing.T) {
	f := func(seed int64, s string) bool {
		if len([]rune(s)) < 2 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		return typo(rng, s) != s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGenerateHospitalConsistent(t *testing.T) {
	tbl := GenerateHospital(HospitalConfig{Providers: 30, Zips: 7, Seed: 4})
	if tbl.NumRows() != 30 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	ok, err := dc.Consistent(HospitalDCs(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("generated hospital table must satisfy its DCs")
	}
}

func TestHospitalDirtyDetectable(t *testing.T) {
	clean := GenerateHospital(HospitalConfig{Providers: 30, Zips: 5, Seed: 4})
	dirty, injections, err := Inject(clean, InjectSpec{Rate: 0.1, Columns: []string{"City", "State"}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(injections) == 0 {
		t.Skip("no injections landed")
	}
	ok, err := dc.Consistent(HospitalDCs(), dirty)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("city/state corruptions on shared zips should violate H1/H2")
	}
}
