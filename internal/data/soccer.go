package data

import (
	"fmt"
	"math/rand"

	"repro/internal/dc"
	"repro/internal/table"
)

// SoccerConfig parameterizes the synthetic standings generator used for
// scaling experiments. The generated ground truth is consistent with the
// paper's four constraints by construction; errors are injected afterwards.
type SoccerConfig struct {
	// Leagues is the number of leagues (default 2).
	Leagues int
	// TeamsPerLeague is the number of teams in each league (default 6).
	TeamsPerLeague int
	// Years is how many seasons each team appears in (default 1).
	Years int
	// Seed drives the generator.
	Seed int64
}

func (c SoccerConfig) withDefaults() SoccerConfig {
	if c.Leagues <= 0 {
		c.Leagues = 2
	}
	if c.TeamsPerLeague <= 0 {
		c.TeamsPerLeague = 6
	}
	if c.Years <= 0 {
		c.Years = 1
	}
	return c
}

// countryNames is a pool of country names; each league is assigned one.
var countryNames = []string{
	"Spain", "England", "Italy", "Germany", "France", "Portugal",
	"Netherlands", "Brazil", "Argentina", "Japan", "Mexico", "Belgium",
}

// GenerateSoccer produces a clean standings table with the paper's schema
// (Team, City, Country, League, Year, Place). Every team has a unique home
// city; all teams of a league share a country; places within a
// league-season are a permutation of 1..TeamsPerLeague. The table therefore
// satisfies C1–C4 of Figure 1.
func GenerateSoccer(cfg SoccerConfig) *table.Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := table.New(table.MustSchema(
		table.Column{Name: "Team"}, table.Column{Name: "City"},
		table.Column{Name: "Country"}, table.Column{Name: "League"},
		table.Column{Name: "Year"}, table.Column{Name: "Place"},
	))
	for l := 0; l < cfg.Leagues; l++ {
		country := countryNames[l%len(countryNames)]
		if l >= len(countryNames) {
			country = fmt.Sprintf("%s-%d", country, l/len(countryNames))
		}
		league := fmt.Sprintf("League-%d", l+1)
		for y := 0; y < cfg.Years; y++ {
			year := 2019 - y
			places := rng.Perm(cfg.TeamsPerLeague)
			for m := 0; m < cfg.TeamsPerLeague; m++ {
				team := fmt.Sprintf("Team-%d-%d", l+1, m+1)
				city := fmt.Sprintf("City-%d-%d", l+1, m+1)
				row := []table.Value{
					table.String(team), table.String(city), table.String(country),
					table.String(league), table.Int(int64(year)), table.Int(int64(places[m] + 1)),
				}
				if err := t.Append(row); err != nil {
					panic(err) // generated rows always fit the schema
				}
			}
		}
	}
	return t
}

// SoccerDCs returns the paper's four constraints (Figure 1), which the
// generated tables satisfy when clean.
func SoccerDCs() []*dc.Constraint {
	return NewLaLiga().DCs
}
