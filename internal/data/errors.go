package data

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/table"
)

// ErrorKind enumerates the error injectors, mirroring how the paper's demo
// "manually added" errors to the scraped table.
type ErrorKind uint8

const (
	// ErrorTypo perturbs a string cell by duplicating, dropping or swapping
	// characters ("Spain" → "Spian").
	ErrorTypo ErrorKind = iota
	// ErrorSwap replaces the cell with a value drawn from another row of
	// the same column ("Madrid" → "Barcelona").
	ErrorSwap
	// ErrorNull blanks the cell.
	ErrorNull
	// ErrorForeign replaces the cell with a synthetic out-of-domain value.
	ErrorForeign
)

// Injection records one injected error for ground-truth bookkeeping.
type Injection struct {
	Ref   table.CellRef
	Kind  ErrorKind
	Clean table.Value
	Dirty table.Value
}

// InjectSpec configures Inject.
type InjectSpec struct {
	// Rate is the fraction of cells to corrupt (0..1).
	Rate float64
	// Kinds are the error kinds to rotate through; default {Typo, Swap}.
	Kinds []ErrorKind
	// Columns restricts injection to the named columns; empty means all.
	Columns []string
	// Seed drives cell selection and perturbation.
	Seed int64
}

// Inject corrupts a copy of clean according to spec and returns the dirty
// table plus the ground-truth injection list (sorted in vectorization
// order). The input is never mutated.
func Inject(clean *table.Table, spec InjectSpec) (*table.Table, []Injection, error) {
	if spec.Rate < 0 || spec.Rate > 1 {
		return nil, nil, fmt.Errorf("data: rate %v out of [0,1]", spec.Rate)
	}
	kinds := spec.Kinds
	if len(kinds) == 0 {
		kinds = []ErrorKind{ErrorTypo, ErrorSwap}
	}
	allowed := make(map[int]bool)
	if len(spec.Columns) == 0 {
		for j := 0; j < clean.NumCols(); j++ {
			allowed[j] = true
		}
	} else {
		for _, name := range spec.Columns {
			j, ok := clean.Schema().Index(name)
			if !ok {
				return nil, nil, fmt.Errorf("data: no column %q", name)
			}
			allowed[j] = true
		}
	}

	dirty := clean.Clone()
	rng := rand.New(rand.NewSource(spec.Seed))
	var candidates []table.CellRef
	for _, ref := range clean.Cells() {
		if allowed[ref.Col] && !clean.GetRef(ref).IsNull() {
			candidates = append(candidates, ref)
		}
	}
	n := int(float64(len(candidates)) * spec.Rate)
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	stats := table.NewStats(clean)

	var injections []Injection
	for i := 0; i < n; i++ {
		ref := candidates[i]
		kind := kinds[i%len(kinds)]
		old := dirty.GetRef(ref)
		corrupted, ok := corrupt(rng, stats, ref, old, kind)
		if !ok {
			continue
		}
		dirty.SetRef(ref, corrupted)
		injections = append(injections, Injection{Ref: ref, Kind: kind, Clean: old, Dirty: corrupted})
	}
	sort.Slice(injections, func(a, b int) bool {
		return clean.VecIndex(injections[a].Ref) < clean.VecIndex(injections[b].Ref)
	})
	return dirty, injections, nil
}

// corrupt produces the dirty value for one cell; ok is false when the kind
// cannot apply (e.g. a typo on a one-rune numeric cell with no alternative).
func corrupt(rng *rand.Rand, stats *table.Stats, ref table.CellRef, v table.Value, kind ErrorKind) (table.Value, bool) {
	switch kind {
	case ErrorNull:
		return table.Null(), true
	case ErrorForeign:
		return table.String(fmt.Sprintf("@err-%d", rng.Intn(1_000_000))), true
	case ErrorSwap:
		alt, ok := stats.Column(ref.Col).SampleOther(rng, v)
		if !ok || alt.SameContent(v) {
			return table.Null(), false
		}
		return alt, true
	case ErrorTypo:
		s := v.String()
		if len(s) < 2 {
			return table.Null(), false
		}
		return table.String(typo(rng, s)), true
	default:
		return table.Null(), false
	}
}

// typo applies one random character-level edit: swap two adjacent runes,
// duplicate one, or drop one (always changing the string).
func typo(rng *rand.Rand, s string) string {
	runes := []rune(s)
	switch op := rng.Intn(3); {
	case op == 0 && len(runes) >= 2: // swap adjacent
		i := rng.Intn(len(runes) - 1)
		if runes[i] == runes[i+1] {
			return string(runes) + string(runes[len(runes)-1]) // degenerate swap: duplicate instead
		}
		runes[i], runes[i+1] = runes[i+1], runes[i]
		return string(runes)
	case op == 1: // duplicate
		i := rng.Intn(len(runes))
		out := make([]rune, 0, len(runes)+1)
		out = append(out, runes[:i+1]...)
		out = append(out, runes[i])
		out = append(out, runes[i+1:]...)
		return string(out)
	default: // drop
		i := rng.Intn(len(runes))
		out := strings.Builder{}
		for j, r := range runes {
			if j != i {
				out.WriteRune(r)
			}
		}
		if out.Len() == 0 {
			return s + s // dropping the only rune would empty the string
		}
		return out.String()
	}
}
