// Package data provides the datasets of the reproduction: the paper's
// La Liga running example (Figure 2), seeded synthetic soccer-standings
// generators for scaling experiments, a second (hospital-style) domain,
// and error injectors.
package data

import (
	"repro/internal/dc"
	"repro/internal/table"
)

// LaLiga bundles the paper's running example: the dirty table of
// Figure 2a, the clean table of Figure 2b, the four denial constraints of
// Figure 1, and the cell of interest t5[Country] used throughout §1–§2.
type LaLiga struct {
	// Dirty is T_d of Figure 2a.
	Dirty *table.Table
	// Clean is T_c of Figure 2b — what Algorithm 1 produces from Dirty
	// under all four constraints.
	Clean *table.Table
	// DCs are C1..C4 of Figure 1.
	DCs []*dc.Constraint
	// CellOfInterest is t5[Country], the repaired cell explained in the
	// paper's examples.
	CellOfInterest table.CellRef
}

// laLigaNames is the schema of the standings table.
var laLigaNames = []string{"Team", "City", "Country", "League", "Year", "Place"}

// NewLaLiga reconstructs the paper's running example.
//
// The figure images are not part of the paper's text, so the exact grid is
// reconstructed from the worked examples, which constrain it tightly:
//
//   - t5 is a Real Madrid row with City "Capital" (dirty, should be
//     "Madrid") and Country "España" (dirty, should be "Spain") — Examples
//     1.1, 2.1, 2.2;
//   - t3 and t6 are Real Madrid rows with City "Madrid" (Example 1.1's
//     discussion of t6[City]);
//   - rows {t1, t2, t3, t6} carry the pair (League "La Liga", Country
//     "Spain") and t4 does not (Example 2.4 counts exactly the pairs
//     i ∈ {1, 2, 3, 6}), so t4 carries a dirty Country value;
//   - the table is 6 rows × 6 attributes = 36 cells (Example 2.4's
//     coalition arithmetic: 8 pair cells + t5[League] + 27 others).
//
// Under this grid, Algorithm 1 repairs t5[Country] to "Spain" exactly for
// the constraint subsets the paper lists ({C3} or {C1, C2} and supersets),
// which yields the Figure 1 Shapley values 1/6, 1/6, 2/3, 0.
func NewLaLiga() *LaLiga {
	dirty := table.MustFromStrings(laLigaNames, [][]string{
		{"Barcelona", "Barcelona", "Spain", "La Liga", "2019", "1"},
		{"Atletico Madrid", "Madrid", "Spain", "La Liga", "2019", "2"},
		{"Real Madrid", "Madrid", "Spain", "La Liga", "2019", "3"},
		{"Sevilla", "Sevilla", "Spian", "La Liga", "2019", "4"},
		{"Real Madrid", "Capital", "España", "La Liga", "2018", "1"},
		{"Real Madrid", "Madrid", "Spain", "La Liga", "2017", "1"},
	})

	clean := dirty.Clone()
	clean.SetByName(3, "Country", table.String("Spain")) // t4: Spian -> Spain
	clean.SetByName(4, "City", table.String("Madrid"))   // t5: Capital -> Madrid
	clean.SetByName(4, "Country", table.String("Spain")) // t5: España -> Spain

	dcs, err := dc.ParseSet(`
C1: !(t1.Team = t2.Team & t1.City != t2.City)
C2: !(t1.City = t2.City & t1.Country != t2.Country)
C3: !(t1.League = t2.League & t1.Country != t2.Country)
C4: !(t1.Team != t2.Team & t1.Year = t2.Year & t1.League = t2.League & t1.Place = t2.Place)
`)
	if err != nil {
		panic(err) // static input; cannot fail
	}

	return &LaLiga{
		Dirty:          dirty,
		Clean:          clean,
		DCs:            dcs,
		CellOfInterest: table.CellRef{Row: 4, Col: 2}, // t5[Country]
	}
}
