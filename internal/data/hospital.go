package data

import (
	"fmt"
	"math/rand"

	"repro/internal/dc"
	"repro/internal/table"
)

// HospitalConfig parameterizes the second evaluation domain: a
// provider-address table in the style of the Hospital dataset that is
// standard in the data-cleaning literature (and in HoloClean's own
// evaluation). The schema is (Provider, City, State, Zip, Phone) with the
// functional dependencies Zip → City, Zip → State and Phone → Provider.
type HospitalConfig struct {
	// Providers is the number of provider rows (default 20).
	Providers int
	// Zips is the number of distinct zip codes (default Providers/4+1).
	Zips int
	// Seed drives the generator.
	Seed int64
}

func (c HospitalConfig) withDefaults() HospitalConfig {
	if c.Providers <= 0 {
		c.Providers = 20
	}
	if c.Zips <= 0 {
		c.Zips = c.Providers/4 + 1
	}
	return c
}

// stateNames is the pool of state codes.
var stateNames = []string{"AL", "AK", "AZ", "CA", "CO", "CT", "DE", "FL", "GA", "HI"}

// GenerateHospital produces a clean provider table satisfying HospitalDCs.
func GenerateHospital(cfg HospitalConfig) *table.Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := table.New(table.MustSchema(
		table.Column{Name: "Provider"}, table.Column{Name: "City"},
		table.Column{Name: "State"}, table.Column{Name: "Zip"}, table.Column{Name: "Phone"},
	))
	type zipInfo struct {
		city, state string
	}
	zips := make([]zipInfo, cfg.Zips)
	for z := range zips {
		zips[z] = zipInfo{
			city:  fmt.Sprintf("City%02d", z),
			state: stateNames[z%len(stateNames)],
		}
	}
	for p := 0; p < cfg.Providers; p++ {
		z := rng.Intn(cfg.Zips)
		row := []table.Value{
			table.String(fmt.Sprintf("Provider-%03d", p)),
			table.String(zips[z].city),
			table.String(zips[z].state),
			table.String(fmt.Sprintf("Z%05d", z)),
			table.String(fmt.Sprintf("555-%04d", p)),
		}
		if err := t.Append(row); err != nil {
			panic(err) // generated rows always fit the schema
		}
	}
	return t
}

// HospitalDCs returns the domain's constraints as denial constraints.
func HospitalDCs() []*dc.Constraint {
	cs, err := dc.ParseSet(`
H1: !(t1.Zip = t2.Zip & t1.City != t2.City)
H2: !(t1.Zip = t2.Zip & t1.State != t2.State)
H3: !(t1.Phone = t2.Phone & t1.Provider != t2.Provider)
`)
	if err != nil {
		panic(err) // static input; cannot fail
	}
	return cs
}
