package bench

import (
	"context"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/shapley"
	"repro/internal/table"
)

// runInteraction prints the pairwise Shapley interaction structure of the
// paper's constraint set — the formal version of Example 2.3's narrative
// that C1 and C2 "contribute as a pair" while C3 covers the same repair
// alone.
func runInteraction(w io.Writer) error {
	exp, ll, err := paperExplainer()
	if err != nil {
		return err
	}
	report, err := exp.ExplainConstraintInteractions(context.Background(), ll.CellOfInterest)
	if err != nil {
		return err
	}
	fmt.Fprint(w, report)
	c12, _ := report.Find("C1", "C2")
	c13, _ := report.Find("C1", "C3")
	c14, _ := report.Find("C1", "C4")
	fmt.Fprintf(w, "\npaper narrative: C1+C2 act only as a pair  -> I(C1,C2) > 0: %s\n", checkMark(c12.Value > 0))
	fmt.Fprintf(w, "paper narrative: C3 alone covers the repair -> I(C1,C3) < 0: %s\n", checkMark(c13.Value < 0))
	fmt.Fprintf(w, "paper narrative: C4 is uninvolved           -> I(C1,C4) = 0: %s\n", checkMark(c14.Value == 0))

	// Banzhaf ablation: does the equal-weight index rank the same?
	banz, err := exp.ExplainConstraintsBanzhaf(context.Background(), ll.CellOfInterest)
	if err != nil {
		return err
	}
	shap, err := exp.ExplainConstraints(context.Background(), ll.CellOfInterest)
	if err != nil {
		return err
	}
	bTop, _ := banz.Top()
	sTop, _ := shap.Top()
	fmt.Fprintf(w, "\nBanzhaf ablation: values C1..C4 = ")
	for _, id := range []string{"C1", "C2", "C3", "C4"} {
		e, _ := banz.Find(id)
		fmt.Fprintf(w, "%.3f ", e.Shapley)
	}
	fmt.Fprintf(w, "; top agrees with Shapley: %s (%s)\n", checkMark(bTop.Name == sTop.Name), bTop.Name)
	return nil
}

// runGroups prints row- and column-level explanations (exact, ≤ 6 players
// each) — the aggregate view a table user asks for first.
func runGroups(w io.Writer) error {
	ctx := context.Background()
	exp, ll, err := paperExplainer()
	if err != nil {
		return err
	}
	rows, err := exp.ExplainCellGroups(ctx, ll.CellOfInterest, exp.RowGroups(ll.CellOfInterest))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "row-level explanation (exact, 6 players):")
	fmt.Fprint(w, rows)
	top, _ := rows.Top()
	fmt.Fprintf(w, "the dirty tuple's own row dominates: %s (top = %s)\n\n", checkMark(top.Name == "row t5"), top.Name)

	cols, err := exp.ExplainCellGroups(ctx, ll.CellOfInterest, exp.ColumnGroups(ll.CellOfInterest))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "column-level explanation (exact, 6 players):")
	fmt.Fprint(w, cols)
	year, _ := cols.Find("col Year")
	place, _ := cols.Find("col Place")
	fmt.Fprintf(w, "Year and Place columns are exact dummies: %s\n",
		checkMark(math.Abs(year.Shapley) < 1e-9 && math.Abs(place.Shapley) < 1e-9))
	return nil
}

// runWhyNot demonstrates the counterfactual extensions: adaptive top-k
// ranking, why-not constraint analysis, and achievability witnesses.
func runWhyNot(w io.Writer) error {
	ctx := context.Background()
	exp, ll, err := paperExplainer()
	if err != nil {
		return err
	}

	report, separated, err := exp.ExplainCellsTopK(ctx, ll.CellOfInterest, 3, core.CellExplainOptions{Samples: 800, Seed: 42})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "adaptive top-3 cells (confidence-interval racing):")
	fmt.Fprint(w, report)
	top, _ := report.Top()
	fmt.Fprintf(w, "matches the uniform-budget top cell (t5[League]): %s (separated: %v)\n\n", checkMark(top.Name == "t5[League]"), separated)

	toward, err := exp.ExplainToward(ctx, ll.CellOfInterest, table.String("Portugal"))
	if err != nil {
		return err
	}
	allZero := true
	for _, e := range toward.Entries {
		if e.Shapley != 0 {
			allZero = false
		}
	}
	fmt.Fprintf(w, "why is t5[Country] never repaired to \"Portugal\"? all constraint Shapley values are 0: %s\n", checkMark(allZero))

	ok, witness, err := exp.Achievable(ctx, ll.CellOfInterest, table.String("Spain"))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "achievability of \"Spain\": %v, minimal witness %v (paper: {C3} suffices) %s\n",
		ok, witness, checkMark(ok && len(witness) == 1 && witness[0] == "C3"))
	ok, _, err = exp.Achievable(ctx, ll.CellOfInterest, table.String("Portugal"))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "achievability of \"Portugal\": %v (no subset can produce it) %s\n", ok, checkMark(!ok))
	return nil
}

// runVariance compares the three estimators at an equal evaluation budget
// (ablation for the §2.3 design choice).
func runVariance(w io.Writer) error {
	ctx := context.Background()
	exp, ll, err := paperExplainer()
	if err != nil {
		return err
	}
	target, _, err := exp.Target(ctx, ll.CellOfInterest)
	if err != nil {
		return err
	}
	game := shapley.NewCached(exp.NewConstraintGame(ll.CellOfInterest, target))
	exact, err := shapley.ExactSubsets(ctx, game)
	if err != nil {
		return err
	}
	det := shapley.Deterministic{G: game}
	const budget = 4096

	plain, err := shapley.SampleAll(ctx, det, shapley.Options{Samples: budget, Seed: 13, Workers: 1})
	if err != nil {
		return err
	}
	anti, err := shapley.SampleAllAntithetic(ctx, det, shapley.Options{Samples: budget, Seed: 13, Workers: 1})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-10s %-12s %-12s %-12s %-12s\n", "player", "exact", "plain", "antithetic", "stratified")
	var plainMAE, antiMAE, stratMAE float64
	for p := 0; p < 4; p++ {
		strat, err := shapley.SamplePlayerStratified(ctx, det, p, shapley.Options{Samples: budget, Seed: 13})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "C%-9d %-12.4f %-12.4f %-12.4f %-12.4f\n", p+1, exact[p], plain[p].Mean, anti[p].Mean, strat.Mean)
		plainMAE += math.Abs(plain[p].Mean - exact[p])
		antiMAE += math.Abs(anti[p].Mean - exact[p])
		stratMAE += math.Abs(strat.Mean - exact[p])
	}
	fmt.Fprintf(w, "MAE at equal budget: plain %.5f, antithetic %.5f, stratified %.5f\n",
		plainMAE/4, antiMAE/4, stratMAE/4)
	// Realized error at one seed is noisy; the check is absolute accuracy
	// for all three estimators (each within 0.01 of exact per player on
	// average). Variance comparisons across many seeds live in
	// internal/shapley's tests.
	fmt.Fprintf(w, "all estimators within 0.01 MAE of exact at m=%d: %s\n", budget,
		checkMark(plainMAE/4 < 0.01 && antiMAE/4 < 0.01 && stratMAE/4 < 0.01))
	return nil
}
