package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/repair"
	"repro/internal/server"
	"repro/internal/shapley"
	"repro/internal/table"
)

// PerfResult is one machine-readable benchmark row of a BENCH_<n>.json
// file: the perf trajectory the ROADMAP asks every optimisation PR to
// extend.
type PerfResult struct {
	// Name is the scenario id, e.g. "cellgame-eval/scratch/rows=32".
	Name string `json:"name"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// N is the iteration count the timing was measured over.
	N int `json:"n"`
	// P99Ns is the 99th-percentile request latency in nanoseconds; only
	// the load scenarios (server-saturation/*) report it.
	P99Ns float64 `json:"p99_ns,omitempty"`
	// RejectionRate is the fraction of requests shed with 429 by admission
	// control; only the load scenarios report it.
	RejectionRate float64 `json:"rejection_rate,omitempty"`
}

// PerfReport is the top-level BENCH_<n>.json document.
type PerfReport struct {
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// GOARCH/GOOS identify the machine class.
	GOARCH string `json:"goarch"`
	GOOS   string `json:"goos"`
	// Results are the scenario rows, in registration order.
	Results []PerfResult `json:"results"`
}

// perfScenario is one registered micro-benchmark. Either bench runs under
// testing.Benchmark, or custom produces the row directly (load scenarios
// that measure latency distributions rather than tight loops).
type perfScenario struct {
	name   string
	bench  func(b *testing.B)
	custom func() (PerfResult, error)
}

// EvalHarnessGame builds the canonical rows×3 toy cell game (one FD, one
// dirty cell) over the given black box. It is shared by the root A/B
// benchmarks and the -perf scenarios so both measure the same instance.
func EvalHarnessGame(rows int, alg repair.Algorithm) (*core.CellGame, error) {
	grid := make([][]string, rows)
	for i := range grid {
		grid[i] = []string{"x", "1", "a"}
	}
	grid[1][1] = "2"
	tbl := table.MustFromStrings([]string{"A", "B", "C"}, grid)
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		return nil, err
	}
	exp, err := core.NewExplainer(alg, cs, tbl)
	if err != nil {
		return nil, err
	}
	cell := table.CellRef{Row: 1, Col: 1}
	return exp.NewCellGame(cell, tbl.GetRef(cell), core.ReplaceWithNull), nil
}

// perfScenarios builds the registered scenarios. short trims the expensive
// end-to-end rows for CI smoke runs; workers is the engine parallelism of
// the multi-core rows (0 = GOMAXPROCS).
func perfScenarios(short bool, workers int) ([]perfScenario, error) {
	ctx := context.Background()
	harness, err := EvalHarnessGame(32, repair.Passthrough{})
	if err != nil {
		return nil, err
	}
	coalition := make([]bool, harness.NumPlayers())
	for i := range coalition {
		coalition[i] = i%2 == 0
	}
	out := []perfScenario{
		{name: "cellgame-eval/clone/rows=32", bench: func(b *testing.B) {
			legacy := harness.CloneEval()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := legacy.SampleValue(ctx, coalition, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "cellgame-eval/scratch/rows=32", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := harness.Value(ctx, coalition); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "cellgame-sampleall/clone/m=8", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.SampleAll(ctx, harness.CloneEval(), shapley.Options{Samples: 8, Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "cellgame-sampleall/walk/m=8", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.SampleAll(ctx, harness, shapley.Options{Samples: 8, Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	// The in-place repair protocol: one coalition evaluation against the
	// real Algorithm 1 on the paper's table, through the legacy
	// clone-per-repair path (ScratchRepairer hidden behind Func) and the
	// pooled RepairInto path. The scratch row is the PR's headline number:
	// zero steady-state bytes in the repairer.
	ll, alg := dataLaLiga()
	target, _, err := func() (table.Value, bool, error) {
		exp, err := core.NewExplainer(alg, ll.DCs, ll.Dirty)
		if err != nil {
			return table.Null(), false, err
		}
		return exp.Target(ctx, ll.CellOfInterest)
	}()
	if err != nil {
		return nil, err
	}
	newLaligaCellGame := func(a repair.Algorithm) (*core.CellGame, error) {
		exp, err := core.NewExplainer(a, ll.DCs, ll.Dirty)
		if err != nil {
			return nil, err
		}
		return exp.NewCellGame(ll.CellOfInterest, target, core.ReplaceWithNull), nil
	}
	scratchGame, err := newLaligaCellGame(alg)
	if err != nil {
		return nil, err
	}
	cloneGame, err := newLaligaCellGame(repair.Func{AlgName: alg.Name(), Fn: alg.Repair})
	if err != nil {
		return nil, err
	}
	repairCoalition := make([]bool, scratchGame.NumPlayers())
	for i := range repairCoalition {
		repairCoalition[i] = i%3 != 0
	}
	out = append(out,
		perfScenario{name: "evalrepair/algorithm1-laliga/clone", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cloneGame.Value(ctx, repairCoalition); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "evalrepair/algorithm1-laliga/scratch", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := scratchGame.Value(ctx, repairCoalition); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "cellgame-sampleall/algorithm1-laliga/clone/m=8", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.SampleAll(ctx, cloneGame.CloneEval(), shapley.Options{Samples: 8, Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "cellgame-sampleall/algorithm1-laliga/walk/m=8", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.SampleAll(ctx, scratchGame, shapley.Options{Samples: 8, Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)

	// The group game: batch-mask clone path vs the new prefix walk.
	groupExp, err := core.NewExplainer(alg, ll.DCs, ll.Dirty)
	if err != nil {
		return nil, err
	}
	groupGame := groupExp.NewGroupGame(ll.CellOfInterest, target, core.ReplaceWithNull, groupExp.RowGroups(ll.CellOfInterest))
	out = append(out,
		perfScenario{name: "groupgame-sampleall/algorithm1-laliga/clone/m=8", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.SampleAll(ctx, groupGame.CloneEval(), shapley.Options{Samples: 8, Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "groupgame-sampleall/algorithm1-laliga/walk/m=8", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.SampleAll(ctx, groupGame, shapley.Options{Samples: 8, Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)

	// Violation scans: indexed vs cached buckets on a generated table.
	soccer := data.GenerateSoccer(data.SoccerConfig{Leagues: 4, TeamsPerLeague: 32, Seed: 11})
	fd := dc.MustParse("C1: !(t1.League = t2.League & t1.Country != t2.Country)")
	out = append(out,
		perfScenario{name: "violations/indexed", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fd.ViolationsIndexed(soccer); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "violations/scan-cache", bench: func(b *testing.B) {
			ix := dc.NewScanIndex()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fd.ViolationsCached(soccer, ix); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)

	// Per-bucket delta maintenance: a single-cell edit before every scan.
	// The rebuild row pays a full bucket build per scan; the delta row
	// catches up from the table's edit log, touching only the two buckets
	// the edited row moves between.
	editTable := data.GenerateSoccer(data.SoccerConfig{Leagues: 4, TeamsPerLeague: 32, Seed: 12})
	countryCol := editTable.Schema().MustIndex("Country")
	editValues := [2]table.Value{table.String("Spain"), table.String("Italy")}
	out = append(out,
		perfScenario{name: "violations/edit/rebuild", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				editTable.Set(1, countryCol, editValues[i%2])
				if _, err := fd.ViolationsIndexed(editTable); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "violations/edit/delta", bench: func(b *testing.B) {
			ix := dc.NewScanIndex()
			if _, err := fd.ViolationsCached(editTable, ix); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				editTable.Set(1, countryCol, editValues[i%2])
				if _, err := fd.ViolationsCached(editTable, ix); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The live violation index: the same edit-per-scan workload, but the
		// violation *list* is maintained too — an edit retracts and
		// re-derives one row's pairs instead of re-checking every
		// intra-bucket pair. This row is the PR 3 headline against
		// violations/edit/delta.
		perfScenario{name: "violations/edit/live", bench: func(b *testing.B) {
			live := dc.NewLiveViolationSet()
			if _, err := live.Violations(fd, editTable); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				editTable.Set(1, countryCol, editValues[i%2])
				if _, err := live.Violations(fd, editTable); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// Point queries after an edit: the session workload (edit one cell,
		// re-check one row). A fresh index pays a full O(rows) bucket build
		// per query; the pooled index replays one edit.
		perfScenario{name: "rowcheck/edit/rebuild", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				editTable.Set(1, countryCol, editValues[i%2])
				if _, err := fd.ViolatesRowCached(editTable, 1, dc.NewScanIndex()); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "rowcheck/edit/delta", bench: func(b *testing.B) {
			ix := dc.NewScanIndex()
			if _, err := fd.ViolatesRowCached(editTable, 1, ix); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				editTable.Set(1, countryCol, editValues[i%2])
				if _, err := fd.ViolatesRowCached(editTable, 1, ix); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)

	// Structural deltas: a typed row insert, swap-delete, or batch before
	// every scan. The rebuild rows force a full live derivation (a fresh
	// set per scan, paying the whole bucket build and pair derivation); the
	// delta rows replay the typed structural edits from the table's log,
	// retracting and deriving exactly the touched rows' pairs. Every
	// iteration restores the row count with the mirrored op so the table
	// never drifts; the restore op lands in the next scan's replay window,
	// so the delta rows price the one-insert-one-delete steady state.
	structTable := data.GenerateSoccer(data.SoccerConfig{Leagues: 4, TeamsPerLeague: 32, Seed: 14})
	structCountry := structTable.Schema().MustIndex("Country")
	structRow := structTable.Row(7)
	out = append(out,
		perfScenario{name: "violations/insert/rebuild", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := structTable.Append(structRow); err != nil {
					b.Fatal(err)
				}
				live := dc.NewLiveViolationSet()
				if _, err := live.Violations(fd, structTable); err != nil {
					b.Fatal(err)
				}
				structTable.DeleteRow(structTable.NumRows() - 1)
			}
		}},
		perfScenario{name: "violations/insert/delta", bench: func(b *testing.B) {
			live := dc.NewLiveViolationSet()
			if _, err := live.Violations(fd, structTable); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := structTable.Append(structRow); err != nil {
					b.Fatal(err)
				}
				if _, err := live.Violations(fd, structTable); err != nil {
					b.Fatal(err)
				}
				structTable.DeleteRow(structTable.NumRows() - 1)
			}
		}},
		perfScenario{name: "violations/delete/rebuild", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vals := structTable.Row(7)
				structTable.DeleteRow(7)
				live := dc.NewLiveViolationSet()
				if _, err := live.Violations(fd, structTable); err != nil {
					b.Fatal(err)
				}
				if err := structTable.Append(vals); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "violations/delete/delta", bench: func(b *testing.B) {
			live := dc.NewLiveViolationSet()
			if _, err := live.Violations(fd, structTable); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals := structTable.Row(7)
				structTable.DeleteRow(7)
				if _, err := live.Violations(fd, structTable); err != nil {
					b.Fatal(err)
				}
				if err := structTable.Append(vals); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// One generation per batch: two inserts, a cell flip, two
		// swap-deletes — net zero rows, replayed as one delta window.
		perfScenario{name: "violations/batch/rebuild", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := structBatch(structTable, structRow, structCountry, editValues[i%2]); err != nil {
					b.Fatal(err)
				}
				live := dc.NewLiveViolationSet()
				if _, err := live.Violations(fd, structTable); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "violations/batch/delta", bench: func(b *testing.B) {
			live := dc.NewLiveViolationSet()
			if _, err := live.Violations(fd, structTable); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := structBatch(structTable, structRow, structCountry, editValues[i%2]); err != nil {
					b.Fatal(err)
				}
				if _, err := live.Violations(fd, structTable); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)

	// Large-table scans: the pair-check inner loop dominates here, so these
	// rows isolate the compiled-kernel win and the parallel full
	// derivation. 128 leagues × 24 teams = 3072 rows, FD-shaped buckets of
	// 24 rows each (large enough to cross the live set's parallel-derive
	// threshold). The fixtures are built inside each scenario, behind
	// ResetTimer: megabytes of eagerly-retained setup would shift GC pacing
	// for every allocation-heavy scenario measured in the same process.
	bigSoccer := func() (*table.Table, *dc.Constraint) {
		big := data.GenerateSoccer(data.SoccerConfig{Leagues: 128, TeamsPerLeague: 24, Seed: 13})
		return big, dc.MustParse("C1: !(t1.League = t2.League & t1.Country != t2.Country)")
	}
	out = append(out,
		perfScenario{name: "violations/scan-cache/large", bench: func(b *testing.B) {
			big, bigFD := bigSoccer()
			ix := dc.NewScanIndex()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bigFD.ViolationsCached(big, ix); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "violations/live/derive/large", bench: func(b *testing.B) {
			big, bigFD := bigSoccer()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				live := dc.NewLiveViolationSet()
				if _, err := live.Violations(bigFD, big); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "violations/edit/live/large", bench: func(b *testing.B) {
			big, bigFD := bigSoccer()
			live := dc.NewLiveViolationSet()
			if _, err := live.Violations(bigFD, big); err != nil {
				b.Fatal(err)
			}
			col := big.Schema().MustIndex("Country")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				big.Set(7, col, editValues[i%2])
				if _, err := live.Violations(bigFD, big); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)

	// The constraint-set planner: shared-join-key DC sets per-constraint
	// vs planned (see dcset.go).
	out = append(out, dcsetScenarios(short)...)

	// The >64-player coalition cache hit: the packed []uint64 key replacing
	// the old string fallback (which allocated a key string per lookup).
	out = append(out, perfScenario{name: "cache/wide/hit", bench: func(b *testing.B) {
		n := 96
		cached := shapley.NewCached(shapley.GameFunc{N: n, Fn: func(_ context.Context, c []bool) (float64, error) {
			s := 0.0
			for i, in := range c {
				if in {
					s += float64(i)
				}
			}
			return s, nil
		}})
		coalition := make([]bool, n)
		for i := range coalition {
			coalition[i] = i%3 == 0
		}
		if _, err := cached.Value(ctx, coalition); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cached.Value(ctx, coalition); err != nil {
				b.Fatal(err)
			}
		}
	}})

	// The materialization layer: repeat Target() resolution within one
	// session state, and the edit loop's screen refresh (one cell edit,
	// then every report kind re-resolving its target). Without the
	// repair-target cache each Target() re-runs the full black box; with
	// it, the first call per generation repairs and the rest replay the
	// memoized clean-table diff.
	out = append(out,
		perfScenario{name: "target/laliga/repeat", bench: func(b *testing.B) {
			ll, alg := dataLaLiga()
			sess, err := core.NewSession(alg, ll.DCs, ll.Dirty)
			if err != nil {
				b.Fatal(err)
			}
			exp := sess.Explainer()
			if _, _, err := exp.Target(ctx, ll.CellOfInterest); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := exp.Target(ctx, ll.CellOfInterest); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfScenario{name: "target/laliga/explain-after-edit", bench: func(b *testing.B) {
			ll, alg := dataLaLiga()
			sess, err := core.NewSession(alg, ll.DCs, ll.Dirty)
			if err != nil {
				b.Fatal(err)
			}
			exp := sess.Explainer()
			editRef := table.CellRef{Row: 0, Col: sess.Dirty().Schema().MustIndex("City")}
			editVals := [2]table.Value{table.String("Madrid"), table.String("Valencia")}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.SetCell(editRef, editVals[i%2]); err != nil {
					b.Fatal(err)
				}
				// One screen refresh: every report kind (constraints, cells,
				// top-k, rows, columns, interaction, Banzhaf, toward)
				// re-resolves the target of the cell of interest.
				for k := 0; k < 8; k++ {
					if _, _, err := exp.Target(ctx, ll.CellOfInterest); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
	)

	// The session engine's shared coalition cache: after one constraint
	// ranking warms the session, every further constraint screen (repeat
	// ranking, Banzhaf, interactions) enumerates against pure cache hits —
	// only the Target() repair re-runs.
	out = append(out, perfScenario{name: "explain-constraints/laliga/shared-cache", bench: func(b *testing.B) {
		ll, alg := dataLaLiga()
		sess, err := core.NewSession(alg, ll.DCs, ll.Dirty)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Explainer().ExplainConstraints(ctx, ll.CellOfInterest); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Explainer().ExplainConstraints(ctx, ll.CellOfInterest); err != nil {
				b.Fatal(err)
			}
		}
	}})

	if !short {
		// End-to-end cell explanation against a real black box.
		ll, alg := dataLaLiga()
		exp, err := core.NewExplainer(alg, ll.DCs, ll.Dirty)
		if err != nil {
			return nil, err
		}
		out = append(out, perfScenario{name: "explain-cells/laliga/m=64", bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exp.ExplainCells(ctx, ll.CellOfInterest, core.CellExplainOptions{Samples: 64, Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}})

		// The multi-core headline: the same large explain-cells workload
		// serial and fanned across the engine's workers. The chunked
		// fan-out makes both rows produce bit-identical estimates, so the
		// ns/op ratio is pure scheduling win. Fixtures built lazily inside
		// the scenario (see the large-scan comment above).
		largeExplain := func(workers int) func(b *testing.B) {
			return func(b *testing.B) {
				big := data.GenerateSoccer(data.SoccerConfig{Leagues: 4, TeamsPerLeague: 12, Seed: 17})
				country := big.Schema().MustIndex("Country")
				cell := table.CellRef{Row: 5, Col: country}
				big.Set(cell.Row, cell.Col, table.String("Wrongland"))
				cs := data.SoccerDCs()
				exp, err := core.NewExplainer(repair.NewRuleRepair(cs), cs, big)
				if err != nil {
					b.Fatal(err)
				}
				exp.Engine = exec.NewEngine(workers)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := exp.ExplainCells(ctx, cell, core.CellExplainOptions{
						Samples: 32, Seed: int64(i), Workers: workers, RestrictToRelevant: true,
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		out = append(out,
			perfScenario{name: "explain-cells/soccer48/m=32/workers=1", bench: largeExplain(1)},
			perfScenario{name: "explain-cells/soccer48/m=32/workers=auto", bench: largeExplain(workers)},
		)

		// Saturation: concurrent explain load against a bounded in-flight
		// budget. Reported alongside ns/op (mean accepted latency) are the
		// p99 accepted latency and the fraction of requests admission
		// control shed with 429 — the load-shedding half of the robustness
		// contract, measured rather than assumed.
		out = append(out, perfScenario{
			name:   "server-saturation/laliga/inflight=2/clients=8",
			custom: func() (PerfResult, error) { return saturationScenario(2, 8, 4) },
		})
	}
	return out, nil
}

// structBatch is the mixed structural edit of the violations/batch rows:
// two inserts, one cell flip, and two swap-deletes bracketed into a
// single generation, leaving the row count unchanged.
func structBatch(t *table.Table, row []table.Value, col int, v table.Value) error {
	return t.ApplyBatch(func(t *table.Table) error {
		if err := t.Append(row); err != nil {
			return err
		}
		if err := t.Append(row); err != nil {
			return err
		}
		t.Set(1, col, v)
		t.DeleteRow(t.NumRows() - 1)
		t.DeleteRow(t.NumRows() - 1)
		return nil
	})
}

// saturationScenario drives clients×perClient explain requests at a
// server whose admission bound is maxInFlight, and summarizes the latency
// distribution of accepted requests plus the rejection rate.
func saturationScenario(maxInFlight, clients, perClient int) (PerfResult, error) {
	// Heavy per-request sampling budgets keep several requests genuinely
	// in flight even on a single-core runner — light requests serialize on
	// the scheduler before admission ever sees contention.
	const samples = 2000
	srv := server.New()
	srv.Workers = 1
	srv.MaxInFlight = maxInFlight
	srv.ExplainSamples = samples
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ll, _ := dataLaLiga()
	var csv bytes.Buffer
	if err := ll.Dirty.WriteCSV(&csv); err != nil {
		return PerfResult{}, err
	}
	var dcLines []string
	for _, c := range ll.DCs {
		dcLines = append(dcLines, c.String())
	}
	body, _ := json.Marshal(map[string]string{
		"csv": csv.String(), "dcs": strings.Join(dcLines, "\n"), "algorithm": "algorithm1",
	})
	resp, err := ts.Client().Post(ts.URL+"/api/session", "application/json", bytes.NewReader(body))
	if err != nil {
		return PerfResult{}, err
	}
	var sess struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sess)
	resp.Body.Close()
	if err != nil || sess.ID == "" {
		return PerfResult{}, fmt.Errorf("creating saturation session: %v", err)
	}
	cellName := ll.Dirty.RefName(ll.CellOfInterest)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rejected  int
		firstErr  error
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req, _ := json.Marshal(map[string]any{
					"cell": cellName, "kind": "cells", "samples": samples, "seed": c*perClient + i,
				})
				start := time.Now()
				resp, err := ts.Client().Post(ts.URL+"/api/session/"+sess.ID+"/explain", "application/json", bytes.NewReader(req))
				elapsed := time.Since(start)
				mu.Lock()
				switch {
				case err != nil:
					if firstErr == nil {
						firstErr = err
					}
				case resp.StatusCode == http.StatusOK:
					latencies = append(latencies, elapsed)
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected++
				default:
					if firstErr == nil {
						firstErr = fmt.Errorf("explain status %d", resp.StatusCode)
					}
				}
				mu.Unlock()
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return PerfResult{}, firstErr
	}
	if len(latencies) == 0 {
		return PerfResult{}, fmt.Errorf("saturation run: every request rejected")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var total time.Duration
	for _, l := range latencies {
		total += l
	}
	p99 := latencies[(len(latencies)*99+99)/100-1]
	return PerfResult{
		NsPerOp:       float64(total.Nanoseconds()) / float64(len(latencies)),
		N:             len(latencies),
		P99Ns:         float64(p99.Nanoseconds()),
		RejectionRate: float64(rejected) / float64(len(latencies)+rejected),
	}, nil
}

// RunPerf executes every registered perf scenario via testing.Benchmark,
// streams a human-readable line per scenario to w, and returns the
// machine-readable report. workers configures the multi-core rows (0 =
// GOMAXPROCS).
func RunPerf(w io.Writer, short bool, workers int) (*PerfReport, error) {
	scenarios, err := perfScenarios(short, workers)
	if err != nil {
		return nil, err
	}
	report := &PerfReport{Go: runtime.Version(), GOARCH: runtime.GOARCH, GOOS: runtime.GOOS}
	for _, s := range scenarios {
		// Start every scenario from a collected heap so one scenario's
		// garbage does not skew the GC pacing of the next.
		runtime.GC()
		if s.custom != nil {
			row, err := s.custom()
			if err != nil {
				return nil, fmt.Errorf("bench: perf scenario %s: %w", s.name, err)
			}
			row.Name = s.name
			report.Results = append(report.Results, row)
			fmt.Fprintf(w, "%-36s %14.1f ns/op  p99 %.1f ms  rejected %.0f%%\n",
				row.Name, row.NsPerOp, row.P99Ns/1e6, row.RejectionRate*100)
			continue
		}
		r := testing.Benchmark(s.bench)
		if r.N == 0 {
			// testing.Benchmark swallows b.Fatal into a zero result; a zero
			// iteration count means the scenario died, and reporting NaN
			// ns/op would hide it.
			return nil, fmt.Errorf("bench: perf scenario %s failed", s.name)
		}
		row := PerfResult{
			Name:        s.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		report.Results = append(report.Results, row)
		fmt.Fprintf(w, "%-36s %14.1f ns/op %8d B/op %6d allocs/op\n", row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
	}
	return report, nil
}

// WritePerfJSON runs the perf scenarios and writes the report to path as
// indented JSON — the BENCH_<n>.json artifact of a perf PR. The report is
// staged in a sibling temp file created *before* the scenarios run, so an
// unwritable destination fails in milliseconds instead of after minutes
// of benchmarking, and only renamed over path on full success: a failed
// run can neither clobber a pre-existing report nor leave a truncated
// one, and every write and close error is fatal — CI uploads this file as
// an artifact, and a silent write failure would upload nothing while the
// job reports green.
func WritePerfJSON(w io.Writer, path string, short bool, workers int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("bench: creating perf report %s: %w", tmp, err)
	}
	discard := func() {
		f.Close()
		os.Remove(tmp)
	}
	report, err := RunPerf(w, short, workers)
	if err != nil {
		discard()
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		discard()
		return err
	}
	data = append(data, '\n')
	if _, err := f.Write(data); err != nil {
		discard()
		return fmt.Errorf("bench: writing perf report %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("bench: closing perf report %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("bench: publishing perf report %s: %w", path, err)
	}
	fmt.Fprintf(w, "wrote %s (%d scenarios)\n", path, len(report.Results))
	return nil
}
