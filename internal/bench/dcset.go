package bench

import (
	"fmt"
	"testing"

	"repro/internal/dc"
	"repro/internal/dc/plan"
	"repro/internal/exec"
	"repro/internal/table"
)

// The dcset scenario family measures the constraint-set query planner
// against the per-constraint reference on synthetic shared-join-key DC
// sets: every constraint joins on Key and carries a selective
// single-side constant predicate (pre-filter pushdown); a third also
// carries one extra join column (subset partition sharing, which the
// pushdown bitmap bounds), and a third is spelled with its cheap
// predicates last (selectivity reordering). Phases:
//
//   - dcset/scan/*: steady-state full derivation of the whole set over a
//     warm index — the coalition-evaluation inner loop;
//   - dcset/edit/*: one cell edit per iteration ahead of the set scan —
//     the session loop, where shared partitions also share delta replay;
//   - dcset/plan/*: the planner's own cost, compile-cold vs the
//     fingerprint+lookup a session actually pays per cache hit.
//
// Planned and per-constraint rows run bit-identical work (the plan
// contract), so each ns/op ratio is pure planning win; PlannerSpeedup
// gates the scan rows.

// dcsetAttrs is the secondary attribute pool of the synthetic sets.
const dcsetAttrs = 6

// dcsetTable builds the shared-key synthetic table: Key buckets of ~6
// rows, attribute columns over 5-value universes offset per column so
// constant predicates select ~20% of rows.
func dcsetTable(rows int) *table.Table {
	cols := []string{"Key"}
	for j := 0; j < dcsetAttrs; j++ {
		cols = append(cols, fmt.Sprintf("A%d", j))
	}
	grid := make([][]string, rows)
	keys := rows / 6
	if keys == 0 {
		keys = 1
	}
	for i := range grid {
		row := make([]string, 1+dcsetAttrs)
		row[0] = fmt.Sprintf("k%d", i%keys)
		for j := 0; j < dcsetAttrs; j++ {
			row[1+j] = fmt.Sprintf("v%d", (i*(j+3)+i/keys)%5)
		}
		grid[i] = row
	}
	return table.MustFromStrings(cols, grid)
}

// dcsetConstraints builds n constraints joining on Key in three shapes:
// an extra join column plus a constant pre-filter (subset partition
// sharing, bounded by the pushdown), a t1-side constant pre-filter
// alone, and a t2-side constant pre-filter declared after a leading ≠
// (so predicate reordering has work to do).
func dcsetConstraints(n int) []*dc.Constraint {
	cs := make([]*dc.Constraint, 0, n)
	for i := 0; i < n; i++ {
		a := i % dcsetAttrs
		b := (i + 1) % dcsetAttrs
		c := (i + 2) % dcsetAttrs
		var text string
		switch i % 3 {
		case 0:
			text = fmt.Sprintf(`D%d: !(t1.Key = t2.Key & t1.A%d = t2.A%d & t1.A%d = "v1" & t1.A%d != t2.A%d)`, i, a, a, b, c, c)
		case 1:
			text = fmt.Sprintf(`D%d: !(t1.Key = t2.Key & t1.A%d = "v1" & t1.A%d != t2.A%d)`, i, a, b, b)
		default:
			text = fmt.Sprintf(`D%d: !(t1.A%d != t2.A%d & t1.Key = t2.Key & t2.A%d = "v2")`, i, a, a, b)
		}
		cs = append(cs, dc.MustParse(text))
	}
	return cs
}

// dcsetScanAll runs one full-set derivation, reusing buf across
// constraints.
func dcsetScanAll(b *testing.B, cs []*dc.Constraint, tbl *table.Table, ix *dc.ScanIndex, buf []dc.Violation) []dc.Violation {
	for _, c := range cs {
		var err error
		buf, err = c.AppendViolations(tbl, ix, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	return buf
}

// dcsetRows is the synthetic table size of the scan and edit phases.
const dcsetRows = 360

// dcsetScenarios returns the planner benchmark family. short drops the
// n=100 rows (CI smoke).
func dcsetScenarios(short bool) []perfScenario {
	sizes := []int{8, 32, 100}
	if short {
		sizes = []int{8, 32}
	}
	var out []perfScenario
	for _, n := range sizes {
		n := n
		out = append(out,
			perfScenario{name: fmt.Sprintf("dcset/scan/perconstraint/n=%d", n), bench: func(b *testing.B) {
				tbl, cs := dcsetTable(dcsetRows), dcsetConstraints(n)
				ix := dc.NewScanIndex()
				buf := dcsetScanAll(b, cs, tbl, ix, nil)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = dcsetScanAll(b, cs, tbl, ix, buf)
				}
			}},
			perfScenario{name: fmt.Sprintf("dcset/scan/planned/n=%d", n), bench: func(b *testing.B) {
				tbl, cs := dcsetTable(dcsetRows), dcsetConstraints(n)
				p := plan.Compile(tbl.Schema(), cs)
				ix := dc.NewScanIndex()
				ix.UsePlan(p)
				buf := dcsetScanAll(b, cs, tbl, ix, nil)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = dcsetScanAll(b, cs, tbl, ix, buf)
				}
			}},
			perfScenario{name: fmt.Sprintf("dcset/edit/perconstraint/n=%d", n), bench: func(b *testing.B) {
				tbl, cs := dcsetTable(dcsetRows), dcsetConstraints(n)
				ix := dc.NewScanIndex()
				buf := dcsetScanAll(b, cs, tbl, ix, nil)
				edits := [2]table.Value{table.String("v0"), table.String("v3")}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tbl.Set(1, 2, edits[i%2])
					buf = dcsetScanAll(b, cs, tbl, ix, buf)
				}
			}},
			perfScenario{name: fmt.Sprintf("dcset/edit/planned/n=%d", n), bench: func(b *testing.B) {
				tbl, cs := dcsetTable(dcsetRows), dcsetConstraints(n)
				p := plan.Compile(tbl.Schema(), cs)
				ix := dc.NewScanIndex()
				ix.UsePlan(p)
				buf := dcsetScanAll(b, cs, tbl, ix, nil)
				edits := [2]table.Value{table.String("v0"), table.String("v3")}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tbl.Set(1, 2, edits[i%2])
					buf = dcsetScanAll(b, cs, tbl, ix, buf)
				}
			}},
		)
	}
	out = append(out,
		perfScenario{name: "dcset/plan/compile/n=32", bench: func(b *testing.B) {
			tbl, cs := dcsetTable(dcsetRows), dcsetConstraints(32)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = plan.Compile(tbl.Schema(), cs)
			}
		}},
		perfScenario{name: "dcset/plan/cached/n=32", bench: func(b *testing.B) {
			tbl, cs := dcsetTable(dcsetRows), dcsetConstraints(32)
			pc := exec.NewPlanCache()
			key := exec.PlanKey{Schema: tbl.Schema(), Fingerprint: plan.Fingerprint(cs)}
			pc.Store(key, plan.Compile(tbl.Schema(), cs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// What a session pays on a plan-cache hit: re-fingerprint
				// the set, then one map lookup.
				k := exec.PlanKey{Schema: tbl.Schema(), Fingerprint: plan.Fingerprint(cs)}
				if _, ok := pc.Lookup(k); !ok {
					b.Fatal("plan cache miss")
				}
			}
		}},
	)
	return out
}
