package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rows []PerfResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(&PerfReport{Go: "gotest", Results: rows})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []PerfResult{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 1000},
		{Name: "dropped", NsPerOp: 5},
	})
	newPath := writeReport(t, dir, "new.json", []PerfResult{
		{Name: "a", NsPerOp: 120},   // +20% < 25%: ok
		{Name: "b", NsPerOp: 400},   // improvement
		{Name: "fresh", NsPerOp: 9}, // new row: never fails
	})
	var out bytes.Buffer
	if err := Gate(&out, oldPath, newPath, 0.25); err != nil {
		t.Fatalf("gate failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"dropped from the tracked series", "new scenario"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("gate output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []PerfResult{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 100},
	})
	newPath := writeReport(t, dir, "new.json", []PerfResult{
		{Name: "a", NsPerOp: 126}, // +26% > 25%: regression
		{Name: "b", NsPerOp: 99},
	})
	var out bytes.Buffer
	err := Gate(&out, oldPath, newPath, 0.25)
	if err == nil {
		t.Fatalf("gate must fail on a >25%% regression\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regressed") || !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("unexpected gate failure shape: %v\n%s", err, out.String())
	}
}

func TestGateErrorsOnBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", []PerfResult{{Name: "a", NsPerOp: 1}})
	if err := Gate(os.Stderr, filepath.Join(dir, "missing.json"), good, 0.25); err == nil {
		t.Fatal("gate must fail on a missing baseline")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Gate(os.Stderr, good, empty, 0.25); err == nil {
		t.Fatal("gate must fail on an empty report")
	}
	disjoint := writeReport(t, dir, "disjoint.json", []PerfResult{{Name: "z", NsPerOp: 1}})
	var out bytes.Buffer
	if err := Gate(&out, good, disjoint, 0.25); err == nil {
		t.Fatal("gate must fail when no scenarios are shared")
	}
}

func TestPlannerSpeedupGatesScanPairs(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "r.json", []PerfResult{
		{Name: "dcset/scan/perconstraint/n=8", NsPerOp: 300},
		{Name: "dcset/scan/planned/n=8", NsPerOp: 150}, // 2.0x: ok
		{Name: "dcset/edit/perconstraint/n=8", NsPerOp: 100},
		{Name: "dcset/edit/planned/n=8", NsPerOp: 99}, // 1.01x: edit rows never gate
		{Name: "unrelated", NsPerOp: 7},
	})
	var out bytes.Buffer
	if err := PlannerSpeedup(&out, path, 1.5); err != nil {
		t.Fatalf("speedup check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "info") {
		t.Fatalf("edit pair not reported informationally:\n%s", out.String())
	}

	slow := writeReport(t, dir, "slow.json", []PerfResult{
		{Name: "dcset/scan/perconstraint/n=8", NsPerOp: 300},
		{Name: "dcset/scan/planned/n=8", NsPerOp: 280}, // 1.07x < 1.5x
	})
	out.Reset()
	err := PlannerSpeedup(&out, slow, 1.5)
	if err == nil {
		t.Fatalf("speedup check must fail below the floor\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "planner floor") || !strings.Contains(out.String(), "TOO SLOW") {
		t.Fatalf("unexpected failure shape: %v\n%s", err, out.String())
	}
}

func TestPlannerSpeedupRequiresPairs(t *testing.T) {
	path := writeReport(t, t.TempDir(), "r.json", []PerfResult{
		{Name: "repair/greedy", NsPerOp: 10},
		{Name: "dcset/scan/planned/n=8", NsPerOp: 5}, // twin missing: no pair
	})
	var out bytes.Buffer
	if err := PlannerSpeedup(&out, path, 1.5); err == nil ||
		!strings.Contains(err.Error(), "no planned/perconstraint scenario pairs") {
		t.Fatalf("want missing-pairs error, got %v", err)
	}
}

func TestStructuralSpeedupGatesInsertDeletePairs(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "r.json", []PerfResult{
		{Name: "violations/insert/rebuild", NsPerOp: 1000},
		{Name: "violations/insert/delta", NsPerOp: 100}, // 10x: ok
		{Name: "violations/delete/rebuild", NsPerOp: 900},
		{Name: "violations/delete/delta", NsPerOp: 150}, // 6x: ok
		{Name: "violations/batch/rebuild", NsPerOp: 500},
		{Name: "violations/batch/delta", NsPerOp: 499}, // ~1x: batch never gates
		{Name: "violations/edit/rebuild", NsPerOp: 10}, // cell-edit pair: out of scope
		{Name: "violations/edit/delta", NsPerOp: 10},
	})
	var out bytes.Buffer
	if err := StructuralSpeedup(&out, path, 5); err != nil {
		t.Fatalf("structural check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "info") {
		t.Fatalf("batch pair not reported informationally:\n%s", out.String())
	}
	if strings.Contains(out.String(), "violations/edit") {
		t.Fatalf("cell-edit pair must not be part of the structural check:\n%s", out.String())
	}

	slow := writeReport(t, dir, "slow.json", []PerfResult{
		{Name: "violations/insert/rebuild", NsPerOp: 1000},
		{Name: "violations/insert/delta", NsPerOp: 400}, // 2.5x < 5x
		{Name: "violations/delete/rebuild", NsPerOp: 900},
		{Name: "violations/delete/delta", NsPerOp: 100},
	})
	out.Reset()
	err := StructuralSpeedup(&out, slow, 5)
	if err == nil {
		t.Fatalf("structural check must fail below the floor\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "delta-replay floor") || !strings.Contains(out.String(), "TOO SLOW") {
		t.Fatalf("unexpected failure shape: %v\n%s", err, out.String())
	}

	empty := writeReport(t, dir, "none.json", []PerfResult{
		{Name: "violations/insert/delta", NsPerOp: 5}, // twin missing: no pair
	})
	if err := StructuralSpeedup(os.Stderr, empty, 5); err == nil ||
		!strings.Contains(err.Error(), "no delta/rebuild scenario pairs") {
		t.Fatalf("want missing-pairs error, got %v", err)
	}
}

// TestWritePerfJSONFailsFastOnUnwritablePath is the satellite regression
// test: an unwritable output path must fail before any benchmark runs
// (the file is created up front), with a non-nil error for main to turn
// into a non-zero exit.
func TestWritePerfJSONFailsFastOnUnwritablePath(t *testing.T) {
	var out bytes.Buffer
	err := WritePerfJSON(&out, filepath.Join(t.TempDir(), "no-such-dir", "x.json"), true, 0)
	if err == nil {
		t.Fatal("WritePerfJSON must fail on an unwritable path")
	}
	if !strings.Contains(err.Error(), "creating perf report") {
		t.Fatalf("error %q does not indicate a create failure", err)
	}
	if out.Len() != 0 {
		t.Fatalf("scenarios ran before the path was validated:\n%s", out.String())
	}
}
