package bench

import (
	"context"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/table"
)

// paperExplainer builds the canonical Explainer over the La Liga example.
func paperExplainer() (*core.Explainer, *data.LaLiga, error) {
	ll := data.NewLaLiga()
	exp, err := core.NewExplainer(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	return exp, ll, err
}

// checkMark renders a pass/fail column.
func checkMark(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}

// runFig1 reproduces Figure 1: the exact Shapley value of each DC.
func runFig1(w io.Writer) error {
	exp, ll, err := paperExplainer()
	if err != nil {
		return err
	}
	report, err := exp.ExplainConstraints(context.Background(), ll.CellOfInterest)
	if err != nil {
		return err
	}
	paper := map[string]float64{"C1": 1.0 / 6, "C2": 1.0 / 6, "C3": 2.0 / 3, "C4": 0}
	fmt.Fprintf(w, "%-4s %-12s %-12s %s\n", "DC", "paper", "measured", "match")
	for _, id := range []string{"C1", "C2", "C3", "C4"} {
		entry, _ := report.Find(id)
		fmt.Fprintf(w, "%-4s %-12.6f %-12.6f %s\n", id, paper[id], entry.Shapley,
			checkMark(math.Abs(entry.Shapley-paper[id]) < 1e-12))
	}
	top, _ := report.Top()
	fmt.Fprintf(w, "ranking: top DC = %s (paper: C3) %s\n", top.Name, checkMark(top.Name == "C3"))
	return nil
}

// runFig2 reproduces Figure 2: the repair itself.
func runFig2(w io.Writer) error {
	exp, ll, err := paperExplainer()
	if err != nil {
		return err
	}
	clean, diffs, err := exp.Repair(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "dirty table (Figure 2a):")
	fmt.Fprint(w, ll.Dirty)
	fmt.Fprintln(w, "\nrepaired cells (blue cells of Figure 2b):")
	fmt.Fprint(w, table.FormatDiffs(ll.Dirty, diffs))
	fmt.Fprintf(w, "\noutput equals reconstructed Figure 2b: %s\n", checkMark(clean.Equal(ll.Clean)))
	fmt.Fprintf(w, "t5[City]: Capital -> %s (paper: Madrid)\n", clean.GetByName(4, "City"))
	fmt.Fprintf(w, "t5[Country]: España -> %s (paper: Spain)\n", clean.GetByName(4, "Country"))
	ok, err := dc.Consistent(ll.DCs, clean)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "clean table satisfies C1..C4: %s\n", checkMark(ok))
	return nil
}

// runEx22 reproduces Example 2.2: the binary view of the black box.
func runEx22(w io.Writer) error {
	_, ll, err := paperExplainer()
	if err != nil {
		return err
	}
	alg := repair.NewAlgorithm1()
	cell, err := ll.Dirty.ParseRefName("t5[City]")
	if err != nil {
		return err
	}
	target := table.String("Madrid")
	ctx := context.Background()

	with, err := repair.CellRepaired(ctx, alg, dc.Without(ll.DCs, "C4"), ll.Dirty, cell, target)
	if err != nil {
		return err
	}
	without, err := repair.CellRepaired(ctx, alg, dc.Without(dc.Without(ll.DCs, "C4"), "C1"), ll.Dirty, cell, target)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Alg|t5[City]({C1,C2,C3}, T) = %.0f (paper: 1) %s\n", with, checkMark(with == 1))
	fmt.Fprintf(w, "Alg|t5[City]({C2,C3}, T)    = %.0f (paper: 0) %s\n", without, checkMark(without == 0))
	return nil
}

// runEx23 reproduces Example 2.3: the repairing subsets and the resulting
// Shapley arithmetic.
func runEx23(w io.Writer) error {
	_, ll, err := paperExplainer()
	if err != nil {
		return err
	}
	alg := repair.NewAlgorithm1()
	ctx := context.Background()
	ids := []string{"C1", "C2", "C3", "C4"}

	fmt.Fprintf(w, "%-22s %s\n", "subset", "repairs t5[Country]?")
	repairing := 0
	for mask := 0; mask < 16; mask++ {
		var subset []*dc.Constraint
		var names []string
		for b, id := range ids {
			if mask&(1<<uint(b)) != 0 {
				subset = append(subset, dc.ByID(ll.DCs, id))
				names = append(names, id)
			}
		}
		got, err := repair.CellRepaired(ctx, alg, subset, ll.Dirty, ll.CellOfInterest, table.String("Spain"))
		if err != nil {
			return err
		}
		wantRepair := mask&4 != 0 || mask&3 == 3 // C3 present, or C1 and C2 both present
		if got == 1 && mask&8 == 0 {             // count C4-free subsets: the "5 subsets" of Example 2.3
			repairing++
		}
		label := "{" + joinNames(names) + "}"
		fmt.Fprintf(w, "%-22s %.0f (paper: %d) %s\n", label, got, b2i(wantRepair), checkMark((got == 1) == wantRepair))
	}
	fmt.Fprintf(w, "repairing subsets of {C1,C2,C3} (paper: 5): %d %s\n", repairing, checkMark(repairing == 5))
	fmt.Fprintln(w, "Shapley arithmetic from these subsets: Shap(C1)=Shap(C2)=2/12, Shap(C3)=2/3, Shap(C4)=0 — see fig1")
	return nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// runEx24 reproduces Example 2.4: the cell ranking.
func runEx24(w io.Writer) error {
	exp, ll, err := paperExplainer()
	if err != nil {
		return err
	}
	report, err := exp.ExplainCells(context.Background(), ll.CellOfInterest, core.CellExplainOptions{
		Samples: 4000,
		Seed:    42,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "top 10 cells by estimated Shapley value (null-mask policy):")
	for i, e := range report.Entries {
		if i >= 10 {
			break
		}
		fmt.Fprintf(w, "%3d. %-14s %+.4f ± %.4f\n", i+1, e.Name, e.Shapley, e.CI95)
	}
	top, _ := report.Top()
	league, _ := report.Find("t5[League]")
	place, _ := report.Find("t1[Place]")
	city, _ := report.Find("t6[City]")
	fmt.Fprintf(w, "paper: t5[League] has the highest value   -> measured top = %s %s\n", top.Name, checkMark(top.Name == "t5[League]"))
	fmt.Fprintf(w, "paper: t1[Place] has no influence         -> measured %.4f %s\n", place.Shapley, checkMark(place.Shapley == 0))
	fmt.Fprintf(w, "paper: t5[League] more influential than t6[City] -> %.4f vs %.4f %s\n",
		league.Shapley, city.Shapley, checkMark(league.Shapley > city.Shapley))
	return nil
}
