// Package bench implements the reproduction's experiments (the per-
// experiment index of DESIGN.md §4). Each experiment writes a
// paper-vs-measured comparison to an io.Writer; cmd/trex-bench is the CLI
// front-end and the root-level Go benchmarks reuse the same entry points.
package bench

import (
	"fmt"
	"io"
)

// experiment couples an id with its description and runner.
type experiment struct {
	id, desc string
	run      func(w io.Writer) error
}

// registry lists experiments in presentation order.
var registry = []experiment{
	{"fig1", "Figure 1: exact Shapley values of C1..C4 for the repair of t5[Country]", runFig1},
	{"fig2", "Figure 2: Algorithm 1 repairs the dirty La Liga table to the clean one", runFig2},
	{"ex22", "Example 2.2: the binary view Alg|t5[City] of the black box", runEx22},
	{"ex23", "Example 2.3: which constraint subsets repair t5[Country]", runEx23},
	{"ex24", "Example 2.4: cell ranking for the repair of t5[Country]", runEx24},
	{"convergence", "Example 2.5/§2.3: sampling error shrinks like 1/sqrt(m)", runConvergence},
	{"dcdebug", "Demo scenario: debugging constraints via their Shapley ranking", runDCDebug},
	{"celldebug", "Demo scenario: debugging a wrong repair via the cell ranking", runCellDebug},
	{"exactvs", "Ablation: exact vs sampled cell Shapley cost (exponential vs linear)", runExactVsSampling},
	{"cache", "Ablation: coalition cache cuts black-box calls for exact Shapley", runCache},
	{"scale", "Scaling: cell explanation cost and rank stability vs table size", runScale},
	{"agnostic", "Black-box agnosticism: four repairers, one explainer", runAgnostic},
	{"interaction", "Extension: Shapley interaction indices expose the C1+C2 synergy", runInteraction},
	{"groups", "Extension: row- and column-level group explanations (exact)", runGroups},
	{"variance", "Extension: antithetic & stratified sampling vs plain at equal budget", runVariance},
	{"whynot", "Extension: adaptive top-k ranking, why-not analysis, achievability witnesses", runWhyNot},
	{"discover", "Extension: mining the paper's DCs back from data (FastDCs-style)", runDiscover},
	{"hospital", "Second domain: hospital-style FDs end to end", runHospital},
}

// IDs returns the experiment ids in presentation order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string {
	for _, e := range registry {
		if e.id == id {
			return e.desc
		}
	}
	return "(unknown experiment)"
}

// Run executes one experiment, writing its report to w.
func Run(w io.Writer, id string) error {
	for _, e := range registry {
		if e.id == id {
			return e.run(w)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q (use -list)", id)
}
