package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// GateResult is one compared scenario of a perf gate run.
type GateResult struct {
	Name    string
	OldNs   float64
	NewNs   float64
	Ratio   float64 // NewNs / OldNs
	Regress bool
}

// Gate compares two BENCH_<n>.json reports and fails when any scenario
// present in both regressed by more than tolerance in ns/op (tolerance
// 0.25 = fail above 1.25× the old time). Scenarios that exist on only one
// side are reported but never fail the gate: new PRs add rows, and rows
// the tracked series dropped are a review question, not a build break.
// Same-machine artifacts are assumed — the gate compares two committed
// files from one perf run environment, not a fresh run against history.
func Gate(w io.Writer, oldPath, newPath string, tolerance float64) error {
	oldReport, err := readPerfJSON(oldPath)
	if err != nil {
		return err
	}
	newReport, err := readPerfJSON(newPath)
	if err != nil {
		return err
	}
	results, onlyOld, onlyNew := CompareReports(oldReport, newReport, tolerance)
	if len(results) == 0 {
		return fmt.Errorf("bench: gate: %s and %s share no scenarios", oldPath, newPath)
	}
	var failed []GateResult
	for _, r := range results {
		status := "ok"
		if r.Regress {
			status = "REGRESSION"
			failed = append(failed, r)
		}
		fmt.Fprintf(w, "%-44s %12.1f -> %12.1f ns/op  %6.2fx  %s\n", r.Name, r.OldNs, r.NewNs, r.Ratio, status)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(w, "%-44s dropped from the tracked series\n", name)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(w, "%-44s new scenario (no baseline)\n", name)
	}
	if len(failed) > 0 {
		return fmt.Errorf("bench: gate: %d scenario(s) regressed beyond %.0f%%: %s",
			len(failed), tolerance*100, failed[0].Name)
	}
	return nil
}

// CompareReports pairs up the scenarios of two reports by name. Results
// are in the old report's order; the extra name lists are sorted.
func CompareReports(oldReport, newReport *PerfReport, tolerance float64) (results []GateResult, onlyOld, onlyNew []string) {
	newByName := make(map[string]PerfResult, len(newReport.Results))
	for _, r := range newReport.Results {
		newByName[r.Name] = r
	}
	matched := make(map[string]bool)
	for _, o := range oldReport.Results {
		n, ok := newByName[o.Name]
		if !ok {
			onlyOld = append(onlyOld, o.Name)
			continue
		}
		matched[o.Name] = true
		r := GateResult{Name: o.Name, OldNs: o.NsPerOp, NewNs: n.NsPerOp}
		if o.NsPerOp > 0 {
			r.Ratio = n.NsPerOp / o.NsPerOp
			r.Regress = r.Ratio > 1+tolerance
		}
		results = append(results, r)
	}
	for _, n := range newReport.Results {
		if !matched[n.Name] {
			onlyNew = append(onlyNew, n.Name)
		}
	}
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return results, onlyOld, onlyNew
}

// PlannerSpeedup checks the constraint-set planner's win inside one perf
// report: every dcset row named .../planned/... is paired with its
// .../perconstraint/... twin, and each scan pair must show the planned
// side at least min times faster (edit pairs are reported for context
// but do not gate — delta replay cost depends on the edit mix, which the
// synthetic scenarios fix arbitrarily). A report with no planner pairs
// fails: that means the dcset scenario family silently vanished from the
// tracked series, which is exactly what this check exists to notice.
func PlannerSpeedup(w io.Writer, path string, min float64) error {
	report, err := readPerfJSON(path)
	if err != nil {
		return err
	}
	byName := make(map[string]PerfResult, len(report.Results))
	for _, r := range report.Results {
		byName[r.Name] = r
	}
	var pairs, failed int
	for _, r := range report.Results {
		if !strings.Contains(r.Name, "/planned/") {
			continue
		}
		twin, ok := byName[strings.Replace(r.Name, "/planned/", "/perconstraint/", 1)]
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		pairs++
		speedup := twin.NsPerOp / r.NsPerOp
		gated := strings.Contains(r.Name, "/scan/")
		status := "info"
		if gated {
			status = "ok"
			if speedup < min {
				status = "TOO SLOW"
				failed++
			}
		}
		fmt.Fprintf(w, "%-44s %12.1f -> %12.1f ns/op  %6.2fx  %s\n",
			r.Name, twin.NsPerOp, r.NsPerOp, speedup, status)
	}
	if pairs == 0 {
		return fmt.Errorf("bench: speedup: %s has no planned/perconstraint scenario pairs", path)
	}
	if failed > 0 {
		return fmt.Errorf("bench: speedup: %d scan pair(s) below the %.2fx planner floor", failed, min)
	}
	return nil
}

// StructuralSpeedup checks the typed edit log's structural win inside one
// perf report: each violations/{insert,delete,batch}/delta row is paired
// with its .../rebuild twin, and the insert and delete pairs must show
// the delta side at least min times faster — the contract that a
// single-row insert or swap-delete updates the live violation set by
// replaying the touched row's pairs instead of forcing a full derivation.
// The batch pair is reported for context but does not gate: its edit mix
// (inserts + a cell flip + deletes per generation) is fixed arbitrarily
// by the scenario. A report with no structural pairs fails: that means
// the scenario family silently vanished from the tracked series.
func StructuralSpeedup(w io.Writer, path string, min float64) error {
	report, err := readPerfJSON(path)
	if err != nil {
		return err
	}
	byName := make(map[string]PerfResult, len(report.Results))
	for _, r := range report.Results {
		byName[r.Name] = r
	}
	var pairs, failed int
	for _, op := range []string{"insert", "delete", "batch"} {
		delta, okD := byName["violations/"+op+"/delta"]
		rebuild, okR := byName["violations/"+op+"/rebuild"]
		if !okD || !okR || delta.NsPerOp <= 0 {
			continue
		}
		pairs++
		speedup := rebuild.NsPerOp / delta.NsPerOp
		gated := op != "batch"
		status := "info"
		if gated {
			status = "ok"
			if speedup < min {
				status = "TOO SLOW"
				failed++
			}
		}
		fmt.Fprintf(w, "%-44s %12.1f -> %12.1f ns/op  %6.2fx  %s\n",
			"violations/"+op+"/delta", rebuild.NsPerOp, delta.NsPerOp, speedup, status)
	}
	if pairs == 0 {
		return fmt.Errorf("bench: structural: %s has no delta/rebuild scenario pairs", path)
	}
	if failed > 0 {
		return fmt.Errorf("bench: structural: %d pair(s) below the %.2fx delta-replay floor", failed, min)
	}
	return nil
}

// readPerfJSON loads a BENCH_<n>.json report.
func readPerfJSON(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading perf report: %w", err)
	}
	var report PerfReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("bench: parsing perf report %s: %w", path, err)
	}
	if len(report.Results) == 0 {
		return nil, fmt.Errorf("bench: perf report %s has no results", path)
	}
	return &report, nil
}
