package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/table"
)

// dataLaLiga returns the La Liga bundle and the paper's Algorithm 1.
func dataLaLiga() (*data.LaLiga, repair.Algorithm) {
	return data.NewLaLiga(), repair.NewAlgorithm1()
}

// runDCDebug replays demo scenario 1 (E7): rank the DCs, remove the most
// and least influential ones, observe the repair of the cell of interest.
func runDCDebug(w io.Writer) error {
	ctx := context.Background()
	ll, alg := dataLaLiga()
	sess, err := core.NewSession(alg, ll.DCs, ll.Dirty)
	if err != nil {
		return err
	}
	report, err := sess.Explainer().ExplainConstraints(ctx, ll.CellOfInterest)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "constraint ranking:")
	fmt.Fprint(w, report)

	repairedTo := func(s *core.Session) (table.Value, error) {
		clean, _, err := s.Repair(ctx)
		if err != nil {
			return table.Null(), err
		}
		return clean.GetRef(ll.CellOfInterest), nil
	}

	before, err := repairedTo(sess)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nbaseline repair: t5[Country] -> %s\n", before)

	// Removing the zero-Shapley DC must not change anything.
	zeroSess, err := core.NewSession(alg, dc.Without(ll.DCs, "C4"), ll.Dirty)
	if err != nil {
		return err
	}
	afterZero, err := repairedTo(zeroSess)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "remove C4 (Shapley 0):  t5[Country] -> %s (unchanged: %s)\n", afterZero, checkMark(afterZero.Equal(before)))

	// Removing the top DC (C3) leaves the C1+C2 pathway; removing C1 as
	// well kills the repair — exactly the joint 1/6+1/6 vs 2/3 structure.
	top, _ := report.Top()
	topSess, err := core.NewSession(alg, dc.Without(ll.DCs, top.Name), ll.Dirty)
	if err != nil {
		return err
	}
	afterTop, err := repairedTo(topSess)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "remove %s (top ranked): t5[Country] -> %s (C1+C2 pathway still repairs: %s)\n",
		top.Name, afterTop, checkMark(afterTop.Equal(before)))

	bothSess, err := core.NewSession(alg, dc.Without(dc.Without(ll.DCs, top.Name), "C1"), ll.Dirty)
	if err != nil {
		return err
	}
	afterBoth, err := repairedTo(bothSess)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "remove %s and C1:      t5[Country] -> %s (repair gone: %s)\n",
		top.Name, afterBoth, checkMark(!afterBoth.Equal(before)))
	return nil
}

// celldebugTable builds the wrong-repair scenario of demo scenario 2: the
// majority country in the league is itself wrong, so the repair of the
// cell of interest lands on the wrong value; the cell ranking points at
// the culprit cells.
func celldebugTable() (*table.Table, []*dc.Constraint, table.CellRef, error) {
	tbl := table.MustFromStrings(
		[]string{"Team", "City", "Country", "League", "Year", "Place"},
		[][]string{
			{"Espanyol", "Barcelona", "España", "La Liga", "2019", "1"}, // wrong spelling, majority
			{"Getafe", "Getafe", "España", "La Liga", "2019", "2"},      // wrong spelling, majority
			{"Levante", "Valencia", "Spain", "La Liga", "2019", "3"},
			{"Eibar", "Eibar", "Spein", "La Liga", "2019", "4"}, // cell of interest, typo
		})
	cs, err := dc.ParseSet(`
C3: !(t1.League = t2.League & t1.Country != t2.Country)
`)
	if err != nil {
		return nil, nil, table.CellRef{}, err
	}
	return tbl, cs, table.CellRef{Row: 3, Col: 2}, nil
}

// runCellDebug replays demo scenario 2 (E8).
func runCellDebug(w io.Writer) error {
	ctx := context.Background()
	tbl, cs, cell, err := celldebugTable()
	if err != nil {
		return err
	}
	alg := repair.NewAlgorithm1()
	sess, err := core.NewSession(alg, cs, tbl)
	if err != nil {
		return err
	}
	clean, _, err := sess.Repair(ctx)
	if err != nil {
		return err
	}
	wrong := clean.GetRef(cell)
	fmt.Fprintf(w, "t4[Country] (typo \"Spein\") is repaired to %q — wrong, ground truth is \"Spain\"\n", wrong)
	fmt.Fprintf(w, "wrong-repair precondition holds: %s\n\n", checkMark(wrong.Equal(table.String("España"))))

	report, err := sess.Explainer().ExplainCells(ctx, cell, core.CellExplainOptions{Samples: 3000, Seed: 5})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "top 5 influencing cells for the wrong repair:")
	for i, e := range report.Entries {
		if i >= 5 {
			break
		}
		fmt.Fprintf(w, "%3d. %-14s %+.4f\n", i+1, e.Name, e.Shapley)
	}
	// The single most influential cell is t4[League]: without it no C3
	// violation exists at all (a veto player for the repair event). The
	// wrong *value* comes from the majority España cells, which must rank
	// directly behind it.
	culpritRank := -1
	for i, e := range report.Entries {
		if e.Name == "t1[Country]" || e.Name == "t2[Country]" {
			culpritRank = i + 1
			break
		}
	}
	fmt.Fprintf(w, "an España culprit cell ranks in the top 3: %s (rank %d)\n", checkMark(culpritRank > 0 && culpritRank <= 3), culpritRank)

	// The §4 loop, action 1: fix the highest-ranked culprit value.
	var culpritName string
	for _, e := range report.Entries {
		if e.Name == "t1[Country]" || e.Name == "t2[Country]" {
			culpritName = e.Name
			break
		}
	}
	ref, err := sess.Dirty().ParseRefName(culpritName)
	if err != nil {
		return err
	}
	if err := sess.SetCell(ref, table.String("Spain")); err != nil {
		return err
	}
	fixed, _, err := sess.Repair(ctx)
	if err != nil {
		return err
	}
	after := fixed.GetRef(cell)
	fmt.Fprintf(w, "after correcting %s, t4[Country] repairs to %q (ground truth: Spain) %s\n",
		culpritName, after, checkMark(after.Equal(table.String("Spain"))))

	// Action 2 (alternative): removing the veto cell's value kills the
	// repair event entirely — also a legitimate debugging outcome.
	tbl2, cs2, cell2, err := celldebugTable()
	if err != nil {
		return err
	}
	sess2, err := core.NewSession(repair.NewAlgorithm1(), cs2, tbl2)
	if err != nil {
		return err
	}
	top, _ := report.Top()
	ref2, err := sess2.Dirty().ParseRefName(top.Name)
	if err != nil {
		return err
	}
	if err := sess2.SetCell(ref2, table.String("Serie A")); err != nil {
		return err
	}
	alt, _, err := sess2.Repair(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "alternatively, changing top-ranked %s stops the wrong repair: %s (cell stays %q)\n",
		top.Name, checkMark(alt.GetRef(cell2).Equal(table.String("Spein"))), alt.GetRef(cell2))
	return nil
}

// runAgnostic runs the identical explainer over all four black boxes (E12).
func runAgnostic(w io.Writer) error {
	ctx := context.Background()
	ll := data.NewLaLiga()
	fmt.Fprintf(w, "%-16s %-10s %-26s %-8s\n", "algorithm", "repairs?", "constraint Shapley (C1..C4)", "top")
	for _, alg := range repair.All(1) {
		exp, err := core.NewExplainer(alg, ll.DCs, ll.Dirty)
		if err != nil {
			return err
		}
		target, repaired, err := exp.Target(ctx, ll.CellOfInterest)
		if err != nil {
			return err
		}
		if !repaired {
			fmt.Fprintf(w, "%-16s %-10s\n", alg.Name(), "no")
			continue
		}
		report, err := exp.ExplainConstraints(ctx, ll.CellOfInterest)
		if err != nil {
			return err
		}
		var vals string
		for _, id := range []string{"C1", "C2", "C3", "C4"} {
			e, _ := report.Find(id)
			vals += fmt.Sprintf("%.3f ", e.Shapley)
		}
		top, _ := report.Top()
		fmt.Fprintf(w, "%-16s %-10s %-26s %-8s (target %s)\n", alg.Name(), "yes", vals, top.Name, target)
	}
	fmt.Fprintln(w, "one explainer, zero algorithm-specific branches — the black-box claim of §1.")
	return nil
}
