package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

// toyExplainer builds a small instance whose exact cell Shapley values are
// enumerable: n rows over (A, B) with one FD and one dirty cell.
func toyExplainer(rows int) (*core.Explainer, table.CellRef, error) {
	grid := make([][]string, rows)
	for i := range grid {
		grid[i] = []string{"x", "1"}
	}
	grid[1][1] = "2" // the dirty cell
	tbl := table.MustFromStrings([]string{"A", "B"}, grid)
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		return nil, table.CellRef{}, err
	}
	exp, err := core.NewExplainer(repair.NewRuleRepair(cs), cs, tbl)
	return exp, table.CellRef{Row: 1, Col: 1}, err
}

// runConvergence measures sampling error against exact values as the
// sample budget m grows (E6). Two games are used: the 4-player constraint
// game of Figure 1 and a 7-player exact cell game on a toy table.
func runConvergence(w io.Writer) error {
	ctx := context.Background()

	// Constraint game.
	exp, ll, err := paperExplainer()
	if err != nil {
		return err
	}
	target, _, err := exp.Target(ctx, ll.CellOfInterest)
	if err != nil {
		return err
	}
	cgame := shapley.NewCached(exp.NewConstraintGame(ll.CellOfInterest, target))
	cexact, err := shapley.ExactSubsets(ctx, cgame)
	if err != nil {
		return err
	}

	// Toy cell game (4 rows × 2 cols = 8 cells, 7 players after pinning).
	toy, dirtyCell, err := toyExplainer(4)
	if err != nil {
		return err
	}
	ttarget, _, err := toy.Target(ctx, dirtyCell)
	if err != nil {
		return err
	}
	tgame := toy.NewCellGame(dirtyCell, ttarget, core.ReplaceWithNull)
	texact, err := shapley.ExactSubsets(ctx, shapley.NewCached(tgame))
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-8s %-22s %-22s\n", "m", "constraint-game MAE", "cell-game MAE")
	fmt.Fprintf(w, "%-8s %-22s %-22s\n", "", "(4 players, Figure 1)", "(7 players, toy FD)")
	prevC, prevT := math.Inf(1), math.Inf(1)
	monotoneish := true
	for _, m := range []int{16, 64, 256, 1024, 4096, 16384} {
		cests, err := shapley.SampleAll(ctx, shapley.Deterministic{G: cgame}, shapley.Options{Samples: m, Seed: 7})
		if err != nil {
			return err
		}
		tests, err := shapley.SampleAll(ctx, shapley.Deterministic{G: tgame}, shapley.Options{Samples: m, Seed: 7})
		if err != nil {
			return err
		}
		cmae := mae(cests, cexact)
		tmae := mae(tests, texact)
		fmt.Fprintf(w, "%-8d %-22.5f %-22.5f\n", m, cmae, tmae)
		// A doubling of MAE between budgets signals non-convergence only
		// when the error is above the Monte-Carlo noise floor; at MAE<0.01
		// on a [0,1]-bounded game, a 2x wiggle is seed luck, not a trend.
		if m >= 1024 && ((cmae > prevC*2 && cmae > 0.01) || (tmae > prevT*2 && tmae > 0.01)) {
			monotoneish = false
		}
		prevC, prevT = cmae, tmae
	}
	fmt.Fprintf(w, "error shrinks with m (paper: Monte-Carlo convergence): %s\n", checkMark(monotoneish && prevC < 0.02 && prevT < 0.02))
	return nil
}

func mae(ests []shapley.Estimate, exact []float64) float64 {
	s := 0.0
	for i := range exact {
		s += math.Abs(ests[i].Mean - exact[i])
	}
	return s / float64(len(exact))
}

// runExactVsSampling contrasts the exponential exact enumeration with
// linear-in-m sampling on growing toy cell games (E9).
func runExactVsSampling(w io.Writer) error {
	ctx := context.Background()
	fmt.Fprintf(w, "%-8s %-10s %-14s %-14s\n", "players", "2^n evals", "exact time", "sampling time (m=2000)")
	for _, rows := range []int{3, 4, 5, 6, 7, 8} {
		exp, dirtyCell, err := toyExplainer(rows)
		if err != nil {
			return err
		}
		target, _, err := exp.Target(ctx, dirtyCell)
		if err != nil {
			return err
		}
		game := exp.NewCellGame(dirtyCell, target, core.ReplaceWithNull)
		n := game.NumPlayers()

		start := time.Now()
		if _, err := shapley.ExactSubsets(ctx, game); err != nil {
			return err
		}
		exactTime := time.Since(start)

		start = time.Now()
		if _, err := shapley.SampleAll(ctx, shapley.Deterministic{G: game}, shapley.Options{Samples: 2000 / (n + 1), Seed: 1}); err != nil {
			return err
		}
		sampleTime := time.Since(start)

		fmt.Fprintf(w, "%-8d %-10d %-14v %-14v\n", n, 1<<uint(n), exactTime.Round(time.Microsecond), sampleTime.Round(time.Microsecond))
	}
	fmt.Fprintln(w, "exact cost doubles per player while the sampling budget is fixed —")
	fmt.Fprintln(w, "the paper's design choice: exact for (few) DCs, sampling for (many) cells.")
	return nil
}

// runCache quantifies the coalition cache (E10).
func runCache(w io.Writer) error {
	ctx := context.Background()
	ll, alg := dataLaLiga()
	exp, err := core.NewExplainer(countingAlg{alg: alg, calls: new(int)}, ll.DCs, ll.Dirty)
	if err != nil {
		return err
	}
	target, _, err := exp.Target(ctx, ll.CellOfInterest)
	if err != nil {
		return err
	}

	// Without cache: ExactOne per constraint re-runs shared coalitions.
	raw := exp.NewConstraintGame(ll.CellOfInterest, target)
	counter := exp.Alg.(countingAlg)
	*counter.calls = 0
	for p := 0; p < raw.NumPlayers(); p++ {
		if _, err := shapley.ExactOne(ctx, raw, p); err != nil {
			return err
		}
	}
	uncached := *counter.calls

	*counter.calls = 0
	cached := shapley.NewCached(raw)
	for p := 0; p < raw.NumPlayers(); p++ {
		if _, err := shapley.ExactOne(ctx, cached, p); err != nil {
			return err
		}
	}
	withCache := *counter.calls
	hits, misses := cached.Stats()

	fmt.Fprintf(w, "black-box calls, ExactOne for all 4 DCs, no cache:   %d\n", uncached)
	fmt.Fprintf(w, "black-box calls, ExactOne for all 4 DCs, with cache: %d (hits %d, misses %d)\n", withCache, hits, misses)
	fmt.Fprintf(w, "call reduction: %.1fx %s\n", float64(uncached)/float64(withCache),
		checkMark(withCache == 16 && uncached == 64))
	return nil
}

// countingAlg wraps an algorithm and counts Repair invocations.
type countingAlg struct {
	alg   repair.Algorithm
	calls *int
}

func (c countingAlg) Name() string { return c.alg.Name() }

func (c countingAlg) Repair(ctx context.Context, cs []*dc.Constraint, dirty *table.Table) (*table.Table, error) {
	*c.calls++
	return c.alg.Repair(ctx, cs, dirty)
}
