package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/dcdiscover"
	"repro/internal/repair"
	"repro/internal/table"
)

// scaleInstance builds a soccer table with `rows` rows and one injected
// country error in the first row of the second league, and returns the
// explainer plus the dirty cell.
func scaleInstance(rows int) (*core.Explainer, table.CellRef, error) {
	teams := rows / 2
	clean := data.GenerateSoccer(data.SoccerConfig{Leagues: 2, TeamsPerLeague: teams, Seed: 11})
	dirty := clean.Clone()
	cell := table.CellRef{Row: teams, Col: clean.Schema().MustIndex("Country")}
	dirty.SetRef(cell, table.String("Inglaterra")) // should be England
	exp, err := core.NewExplainer(repair.NewAlgorithm1(), data.SoccerDCs(), dirty)
	return exp, cell, err
}

// runScale measures cell-explanation cost against table size at a fixed
// per-player sampling budget, and checks that the ranking keeps pointing
// at the dirty row (E11).
func runScale(w io.Writer) error {
	ctx := context.Background()
	fmt.Fprintf(w, "%-8s %-8s %-14s %-16s %s\n", "rows", "cells", "repair time", "explain time", "top cell in dirty row?")
	for _, rows := range []int{6, 12, 24, 48, 96} {
		exp, cell, err := scaleInstance(rows)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, _, err := exp.Repair(ctx); err != nil {
			return err
		}
		repairTime := time.Since(start)

		start = time.Now()
		report, err := exp.ExplainCells(ctx, cell, core.CellExplainOptions{
			Samples:            60,
			Seed:               3,
			RestrictToRelevant: true,
		})
		if err != nil {
			return err
		}
		explainTime := time.Since(start)
		top, _ := report.Top()
		inRow := strings.HasPrefix(top.Name, fmt.Sprintf("t%d[", cell.Row+1)) || top.Name == "t"+fmt.Sprint(cell.Row+1)+"[Country]"
		// The strongest signal may also be the League cell of the dirty
		// row or a country cell of the same league; accept the dirty row
		// or any same-league Country cell.
		sameLeague := strings.Contains(top.Name, "[Country]") || strings.Contains(top.Name, "[League]")
		fmt.Fprintf(w, "%-8d %-8d %-14v %-16v %s (top=%s)\n", rows, rows*6,
			repairTime.Round(time.Microsecond), explainTime.Round(time.Millisecond),
			checkMark(inRow || sameLeague), top.Name)
	}
	fmt.Fprintln(w, "explain cost grows with cells × samples × repair cost; the paper's")
	fmt.Fprintln(w, "motivation for sampling (§2.3) is this growth, not the exact 2^n blowup.")
	return nil
}

// runDiscover mines constraints back from data (extension).
func runDiscover(w io.Writer) error {
	ll := data.NewLaLiga()
	cands := dcdiscover.Discover(ll.Clean, dcdiscover.Options{MinConfidence: 1.0, MinSupport: 1})
	fmt.Fprintln(w, "dependencies mined from the clean La Liga table (confidence 1.0):")
	for _, c := range cands {
		fmt.Fprintf(w, "  %s\n", c)
	}
	has := func(lhs, rhs string) bool {
		for _, c := range cands {
			if c.LHS == lhs && c.RHS == rhs {
				return true
			}
		}
		return false
	}
	fmt.Fprintf(w, "recovers the FD cores of the paper's C1 (Team->City): %s\n", checkMark(has("Team", "City")))
	fmt.Fprintf(w, "recovers C2 (City->Country): %s\n", checkMark(has("City", "Country")))
	fmt.Fprintf(w, "recovers C3 (League->Country): %s\n", checkMark(has("League", "Country")))

	// Mining the dirty table still finds them when the confidence
	// threshold sits below the (concentrated) error rate: two of the six
	// Country cells are dirty, so League->Country holds on only 6 of 15
	// tuple pairs (confidence 0.4).
	dirtyCands := dcdiscover.Discover(ll.Dirty, dcdiscover.Options{MinConfidence: 0.35, MinSupport: 1})
	cs := dcdiscover.Constraints(dirtyCands)
	ok, err := dc.Consistent(cs, ll.Dirty)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "mined (conf>=0.35) DCs flag the dirty table as inconsistent: %s\n", checkMark(!ok))
	return nil
}

// runHospital runs the full pipeline on the second domain (extension).
func runHospital(w io.Writer) error {
	ctx := context.Background()
	clean := data.GenerateHospital(data.HospitalConfig{Providers: 24, Zips: 5, Seed: 21})
	dirty, injections, err := data.Inject(clean, data.InjectSpec{
		Rate: 0.08, Columns: []string{"City", "State"}, Kinds: []data.ErrorKind{data.ErrorTypo}, Seed: 22,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hospital table: %d rows, %d injected typos in City/State\n", dirty.NumRows(), len(injections))

	exp, err := core.NewExplainer(repair.NewHoloSim(1), data.HospitalDCs(), dirty)
	if err != nil {
		return err
	}
	cleaned, diffs, err := exp.Repair(ctx)
	if err != nil {
		return err
	}
	restored := 0
	for _, inj := range injections {
		if cleaned.GetRef(inj.Ref).SameContent(inj.Clean) {
			restored++
		}
	}
	fmt.Fprintf(w, "holosim repaired %d cells; restored %d/%d injected errors\n", len(diffs), restored, len(injections))

	if len(injections) == 0 {
		return nil
	}
	cell := injections[0].Ref
	target, repaired, err := exp.Target(ctx, cell)
	if err != nil {
		return err
	}
	if !repaired {
		fmt.Fprintf(w, "first injected cell %s was not repaired; skipping explanation\n", dirty.RefName(cell))
		return nil
	}
	report, err := exp.ExplainConstraints(ctx, cell)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nconstraint explanation for %s -> %q:\n", dirty.RefName(cell), target)
	fmt.Fprint(w, report)
	top, _ := report.Top()
	fmt.Fprintf(w, "top constraint is a Zip FD (H1/H2): %s\n", checkMark(top.Name == "H1" || top.Name == "H2"))
	return nil
}
