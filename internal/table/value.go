// Package table implements the in-memory typed table substrate used by
// every other component of the T-REx reproduction: schemas, typed cell
// values with SQL-style null semantics, cell addressing, CSV interchange,
// column statistics and empirical distributions, and dirty/clean diffing.
//
// The paper's prototype stored its working tables in PostgreSQL; the repair
// and explanation workloads only ever read and perturb a single small table,
// so an in-memory representation preserves all behaviour that matters to
// the explainer while removing the external dependency (see DESIGN.md §6).
package table

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a cell value can take.
type Kind uint8

// The supported value kinds. KindNull is the zero value so that a
// zero-initialized Value is null, matching the paper's convention that a
// cell excluded from a coalition "is null".
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable typed cell value. The zero Value is null.
//
// Values follow SQL three-valued logic at the comparison layer: any
// comparison involving a null is "unknown", which the denial-constraint
// evaluator treats as not-a-violation.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Null returns the null value.
func Null() Value { return Value{} }

// String wraps a string as a Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int wraps an int64 as a Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float64 as a Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool wraps a bool as a Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the runtime kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the underlying string; it is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// IntVal returns the underlying integer; it is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the underlying float; it is only meaningful for KindFloat.
func (v Value) FloatVal() float64 { return v.f }

// BoolVal returns the underlying bool; it is only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// IsNaN reports whether the value is a float NaN. NaN is the one non-null
// value the = predicate can never satisfy (NaN ≠ NaN), so hash-join
// partitions treat it like null — see dc's appendCompositeKey.
func (v Value) IsNaN() bool { return v.kind == KindFloat && math.IsNaN(v.f) }

// Num returns the value as a float64 under the numeric unification the =
// predicate and Compare use (ints promote); ok is false for nulls and
// non-numeric kinds.
func (v Value) Num() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// String renders the value for display. Null renders as the SQL-ish "NULL".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// Key returns a canonical string usable as a map key: it is injective
// across kinds (the same text as an int and as a string map to different
// keys), which plain String() is not.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00N"
	case KindString:
		return "\x00S" + v.s
	case KindInt:
		return "\x00I" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		return "\x00F" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return "\x00B" + strconv.FormatBool(v.b)
	default:
		return "\x00?"
	}
}

// AppendKey appends the canonical Key bytes to buf and returns the extended
// slice. It exists for hot paths (distribution maintenance, hash-join
// bucketing) that look keys up via the compiler's alloc-free
// map[string(bytes)] access instead of materializing a fresh string per
// probe; Key is AppendKey into an empty buffer.
func (v Value) AppendKey(buf []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(buf, "\x00N"...)
	case KindString:
		return append(append(buf, "\x00S"...), v.s...)
	case KindInt:
		return strconv.AppendInt(append(buf, "\x00I"...), v.i, 10)
	case KindFloat:
		return strconv.AppendFloat(append(buf, "\x00F"...), v.f, 'g', -1, 64)
	case KindBool:
		return strconv.AppendBool(append(buf, "\x00B"...), v.b)
	default:
		return append(buf, "\x00?"...)
	}
}

// AppendJoinKey appends a key canonical under the = predicate's equality
// relation: two non-null values satisfy Equal if and only if their join
// keys match. Numerics collapse to one tag with a normalized float64
// rendering (the exact relation sameNonNull uses, with -0 folded into 0),
// unlike AppendKey, whose identity keys keep int 1 and float 1.0 distinct.
// Hash-join bucketing must use this form: a kind-sensitive key would
// separate rows the equality predicate joins, silently dropping
// violations. NaN never equals anything, so partition builders exclude NaN
// cells before keying (IsNaN), the same way they exclude nulls.
func (v Value) AppendJoinKey(buf []byte) []byte {
	if isNumeric(v.kind) {
		f := v.asFloat()
		if f == 0 {
			f = 0 // fold -0.0 into 0.0: they are = under the predicate
		}
		return strconv.AppendFloat(append(buf, "\x00#"...), f, 'g', -1, 64)
	}
	return v.AppendKey(buf)
}

// Equal reports strict equality: both values non-null, same kind (with
// int/float unified numerically), same content. Null never equals anything,
// including another null — mirroring SQL's NULL = NULL → unknown. Use
// IsNull for null checks and SameContent when null==null is desired.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	return v.sameNonNull(o)
}

// SameContent reports equality treating null as equal to null. It is the
// right notion for diffing two tables cell-by-cell.
func (v Value) SameContent(o Value) bool {
	if v.kind == KindNull && o.kind == KindNull {
		return true
	}
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	return v.sameNonNull(o)
}

func (v Value) sameNonNull(o Value) bool {
	if isNumeric(v.kind) && isNumeric(o.kind) {
		return v.asFloat() == o.asFloat()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	default:
		return false
	}
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

func (v Value) asFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Compare orders two non-null values of comparable kinds. It returns
// (-1|0|+1, true) on success and (0, false) when the comparison is unknown:
// either operand null, or kinds incomparable (e.g. string vs int). Strings
// compare lexicographically, numerics numerically, bools false<true.
func (v Value) Compare(o Value) (int, bool) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, false
	}
	if isNumeric(v.kind) && isNumeric(o.kind) {
		a, b := v.asFloat(), o.asFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind != o.kind {
		return 0, false
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s), true
	case KindBool:
		switch {
		case v.b == o.b:
			return 0, true
		case !v.b:
			return -1, true
		default:
			return 1, true
		}
	default:
		return 0, false
	}
}

// ParseValue converts raw text into the most specific Value it can:
// int, then float, then bool, then string. Empty text and the literals
// "null"/"NULL" parse to the null value.
func ParseValue(text string) Value {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" || strings.EqualFold(trimmed, "null") {
		return Null()
	}
	if i, err := strconv.ParseInt(trimmed, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(trimmed, 64); err == nil && !math.IsInf(f, 0) {
		return Float(f)
	}
	if trimmed == "true" || trimmed == "false" {
		return Bool(trimmed == "true")
	}
	return String(text)
}

// ParseValueAs converts raw text into a Value of the requested kind,
// erroring when the text does not fit.
func ParseValueAs(text string, k Kind) (Value, error) {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" || strings.EqualFold(trimmed, "null") {
		return Null(), nil
	}
	switch k {
	case KindString:
		return String(text), nil
	case KindInt:
		i, err := strconv.ParseInt(trimmed, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("table: %q is not an int: %w", text, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(trimmed, 64)
		if err != nil {
			return Null(), fmt.Errorf("table: %q is not a float: %w", text, err)
		}
		return Float(f), nil
	case KindBool:
		b, err := strconv.ParseBool(trimmed)
		if err != nil {
			return Null(), fmt.Errorf("table: %q is not a bool: %w", text, err)
		}
		return Bool(b), nil
	case KindNull:
		return Null(), nil
	default:
		return Null(), fmt.Errorf("table: unknown kind %v", k)
	}
}
