package table

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestValueZeroIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be null")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v, want KindNull", v.Kind())
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{String("Madrid"), KindString, "Madrid"},
		{String(""), KindString, ""},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("kind %v: String() = %q, want %q", c.kind, c.v.String(), c.str)
		}
	}
	if String("x").Str() != "x" {
		t.Error("Str accessor")
	}
	if Int(9).IntVal() != 9 {
		t.Error("IntVal accessor")
	}
	if Float(1.5).FloatVal() != 1.5 {
		t.Error("FloatVal accessor")
	}
	if !Bool(true).BoolVal() {
		t.Error("BoolVal accessor")
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL = NULL must be unknown (false) under Equal")
	}
	if Null().Equal(String("x")) || String("x").Equal(Null()) {
		t.Error("NULL = value must be false under Equal")
	}
	if !Null().SameContent(Null()) {
		t.Error("SameContent must treat null as equal to null")
	}
	if Null().SameContent(Int(0)) {
		t.Error("SameContent null vs 0 must be false")
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("int 3 must equal float 3.0")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("int 3 must not equal float 3.5")
	}
	if Int(3).Equal(String("3")) {
		t.Error("int 3 must not equal string \"3\"")
	}
	if Bool(true).Equal(Int(1)) {
		t.Error("bool true must not equal int 1")
	}
	if !String("a").Equal(String("a")) {
		t.Error("string self-equality")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(1), Float(1.5), -1, true},
		{Float(2.5), Int(2), 1, true},
		{String("a"), String("b"), -1, true},
		{String("b"), String("b"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{Null(), Int(1), 0, false},
		{Int(1), Null(), 0, false},
		{String("1"), Int(1), 0, false},
		{Bool(true), String("true"), 0, false},
	}
	for _, tc := range tests {
		got, ok := tc.a.Compare(tc.b)
		if got != tc.want || ok != tc.ok {
			t.Errorf("Compare(%v,%v) = (%d,%v), want (%d,%v)", tc.a, tc.b, got, ok, tc.want, tc.ok)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, okx := Int(a).Compare(Int(b))
		y, oky := Int(b).Compare(Int(a))
		return okx && oky && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueKeyInjectiveAcrossKinds(t *testing.T) {
	vals := []Value{Null(), String("1"), Int(1), Float(1), Bool(true), String("true"), String("NULL")}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			// Int(1) and Float(1) may legitimately collide only if we chose
			// to unify them; we do not, so any collision is a bug.
			t.Errorf("Key collision between %v (%v) and %v (%v)", prev, prev.Kind(), v, v.Kind())
		}
		seen[k] = v
	}
}

func TestValueKeyStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return String(s).Key() == String(s).Key() && (s == "" || String(s).Key() != String(s+"x").Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValue(t *testing.T) {
	tests := []struct {
		in   string
		want Value
	}{
		{"", Null()},
		{"   ", Null()},
		{"null", Null()},
		{"NULL", Null()},
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"2.5", Float(2.5)},
		{"1e3", Float(1000)},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"Madrid", String("Madrid")},
		{"Real Madrid", String("Real Madrid")},
		{"España", String("España")},
		{"3rd", String("3rd")},
	}
	for _, tc := range tests {
		got := ParseValue(tc.in)
		if !got.SameContent(tc.want) || got.Kind() != tc.want.Kind() {
			t.Errorf("ParseValue(%q) = %v (%v), want %v (%v)", tc.in, got, got.Kind(), tc.want, tc.want.Kind())
		}
	}
}

func TestParseValueIntRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		v := ParseValue(strconv.FormatInt(i, 10))
		return v.Kind() == KindInt && v.IntVal() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValueAs(t *testing.T) {
	v, err := ParseValueAs("7", KindString)
	if err != nil || v.Kind() != KindString || v.Str() != "7" {
		t.Errorf("ParseValueAs(7, string) = %v, %v", v, err)
	}
	v, err = ParseValueAs("7", KindInt)
	if err != nil || v.IntVal() != 7 {
		t.Errorf("ParseValueAs(7, int) = %v, %v", v, err)
	}
	if _, err = ParseValueAs("abc", KindInt); err == nil {
		t.Error("ParseValueAs(abc, int) must error")
	}
	v, err = ParseValueAs("2.5", KindFloat)
	if err != nil || v.FloatVal() != 2.5 {
		t.Errorf("ParseValueAs(2.5, float) = %v, %v", v, err)
	}
	if _, err = ParseValueAs("xyz", KindFloat); err == nil {
		t.Error("ParseValueAs(xyz, float) must error")
	}
	v, err = ParseValueAs("true", KindBool)
	if err != nil || !v.BoolVal() {
		t.Errorf("ParseValueAs(true, bool) = %v, %v", v, err)
	}
	if _, err = ParseValueAs("maybe", KindBool); err == nil {
		t.Error("ParseValueAs(maybe, bool) must error")
	}
	v, err = ParseValueAs("", KindInt)
	if err != nil || !v.IsNull() {
		t.Errorf("ParseValueAs(empty, int) = %v, %v; want null", v, err)
	}
	v, err = ParseValueAs("anything", KindNull)
	if err != nil || !v.IsNull() {
		t.Errorf("ParseValueAs(_, KindNull) = %v, %v; want null", v, err)
	}
}

func TestParseValueNoInfinity(t *testing.T) {
	v := ParseValue("1e999")
	if v.Kind() == KindFloat && math.IsInf(v.FloatVal(), 0) {
		t.Error("ParseValue must not produce infinities")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{KindNull: "null", KindString: "string", KindInt: "int", KindFloat: "float", KindBool: "bool", Kind(99): "kind(99)"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
