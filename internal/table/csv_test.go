package table

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "Team,City,Year\nBarcelona,Barcelona,2019\nReal Madrid,Madrid,2019\n"
	tbl, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 || tbl.NumCols() != 3 {
		t.Fatalf("dims %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if got := tbl.GetByName(1, "Team"); !got.Equal(String("Real Madrid")) {
		t.Errorf("Team[1] = %v", got)
	}
	if got := tbl.GetByName(0, "Year"); !got.Equal(Int(2019)) {
		t.Errorf("Year must parse as int, got %v (%v)", got, got.Kind())
	}
}

func TestReadCSVEmptyFieldIsNull(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader("A,B\n1,\n,x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Get(0, 1).IsNull() || !tbl.Get(1, 0).IsNull() {
		t.Error("empty CSV fields must become null")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input must error (no header)")
	}
	if _, err := ReadCSV(strings.NewReader("A,A\n1,2\n")); err == nil {
		t.Error("duplicate header must error")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1\n")); err == nil {
		t.Error("short row must error")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1,2,3\n")); err == nil {
		t.Error("long row must error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := MustFromStrings([]string{"Team", "City", "Place"}, [][]string{
		{"Barcelona", "Barcelona", "1"},
		{"Real Madrid", "", "3"},
		{"Valencia", "Valencia", "2.5"},
	})
	var b strings.Builder
	if err := orig.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", orig, back)
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	orig := MustFromStrings([]string{"A", "B"}, [][]string{{"x", "1"}, {"y", "2"}})
	if err := orig.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Fatal("file round trip mismatch")
	}
}

func TestReadCSVFileMissing(t *testing.T) {
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file must error")
	}
}

func TestDiff(t *testing.T) {
	dirty := MustFromStrings([]string{"A", "B"}, [][]string{{"x", "1"}, {"y", "2"}})
	clean := dirty.Clone()
	clean.Set(0, 1, Int(9))
	clean.Set(1, 0, String("z"))
	diffs, err := Diff(dirty, clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 2 {
		t.Fatalf("got %d diffs", len(diffs))
	}
	if diffs[0].Ref != (CellRef{Row: 0, Col: 1}) || !diffs[0].Dirty.Equal(Int(1)) || !diffs[0].Clean.Equal(Int(9)) {
		t.Errorf("diffs[0] = %+v", diffs[0])
	}
	out := FormatDiffs(dirty, diffs)
	if !strings.Contains(out, "t1[B]: 1 -> 9") || !strings.Contains(out, "t2[A]: y -> z") {
		t.Errorf("FormatDiffs output:\n%s", out)
	}
}

func TestDiffIdenticalEmpty(t *testing.T) {
	tbl := MustFromStrings([]string{"A"}, [][]string{{"x"}})
	diffs, err := Diff(tbl, tbl.Clone())
	if err != nil || len(diffs) != 0 {
		t.Fatalf("diffs = %v, err = %v", diffs, err)
	}
}

func TestDiffNullHandling(t *testing.T) {
	dirty := MustFromStrings([]string{"A"}, [][]string{{""}})
	clean := dirty.Clone()
	diffs, err := Diff(dirty, clean)
	if err != nil || len(diffs) != 0 {
		t.Fatal("null vs null must not diff")
	}
	clean.Set(0, 0, String("v"))
	diffs, _ = Diff(dirty, clean)
	if len(diffs) != 1 {
		t.Fatal("null vs value must diff")
	}
}

func TestDiffErrors(t *testing.T) {
	a := MustFromStrings([]string{"A"}, [][]string{{"x"}})
	b := MustFromStrings([]string{"B"}, [][]string{{"x"}})
	if _, err := Diff(a, b); err == nil {
		t.Error("schema mismatch must error")
	}
	c := MustFromStrings([]string{"A"}, [][]string{{"x"}, {"y"}})
	if _, err := Diff(a, c); err == nil {
		t.Error("row count mismatch must error")
	}
}
