package table

// Typed column views: zero-copy accessors over the table's row-major
// storage that expose one column under a fixed runtime type. They exist for
// compiled evaluation loops (the dc predicate kernels) that compare one
// hoisted operand against every row of a hash bucket: the view resolves the
// column index once and each probe is a direct cell load plus a kind check,
// with none of the per-call schema lookups of the interpreted path.
//
// Views hold the table pointer, not a rows snapshot, so they stay valid
// across Set edits and shape-preserving CopyFrom refreshes; like RowView,
// the values they read alias live storage and callers must not hold them
// across a concurrent mutation.

// ColView is the untyped view: direct cell access for one column.
type ColView struct {
	t   *Table
	col int
}

// Col returns the untyped view of column col.
func (t *Table) Col(col int) ColView { return ColView{t: t, col: col} }

// Value returns the cell at (row, col) without a row-slice round trip.
func (c ColView) Value(row int) Value { return c.t.rows[row][c.col] }

// IntCol is the int-typed view of one column.
type IntCol struct {
	t   *Table
	col int
}

// IntCol returns the int-typed view of column col.
func (t *Table) IntCol(col int) IntCol { return IntCol{t: t, col: col} }

// At returns the cell as an int64; ok is false when the cell is not a
// KindInt value (nulls, floats and other kinds report false — callers that
// want numeric unification should use FloatCol).
func (c IntCol) At(row int) (int64, bool) {
	v := c.t.rows[row][c.col]
	if v.kind != KindInt {
		return 0, false
	}
	return v.i, true
}

// FloatCol is the numeric view of one column: ints promote to float64,
// exactly the unification the = predicate and Value.Compare apply.
type FloatCol struct {
	t   *Table
	col int
}

// FloatCol returns the numeric view of column col.
func (t *Table) FloatCol(col int) FloatCol { return FloatCol{t: t, col: col} }

// At returns the cell as a float64 (ints promoted); ok is false for nulls
// and non-numeric kinds.
func (c FloatCol) At(row int) (float64, bool) {
	return c.t.rows[row][c.col].Num()
}

// StringCol is the string-typed view of one column.
type StringCol struct {
	t   *Table
	col int
}

// StringCol returns the string-typed view of column col.
func (t *Table) StringCol(col int) StringCol { return StringCol{t: t, col: col} }

// At returns the cell as a string; ok is false for nulls and non-string
// kinds.
func (c StringCol) At(row int) (string, bool) {
	v := c.t.rows[row][c.col]
	if v.kind != KindString {
		return "", false
	}
	return v.s, true
}
