package table

import (
	"math"
	"testing"
)

func colsFixture(t *testing.T) *Table {
	t.Helper()
	tbl := New(MustSchema(Column{Name: "A"}, Column{Name: "B"}, Column{Name: "C"}))
	rows := [][]Value{
		{Int(1), Float(1.5), String("x")},
		{Float(2.0), Null(), String("")},
		{Null(), Int(-3), Null()},
		{String("7"), Float(math.NaN()), Bool(true)},
	}
	for _, r := range rows {
		if err := tbl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTypedColumnViews(t *testing.T) {
	tbl := colsFixture(t)

	ic := tbl.IntCol(0)
	if v, ok := ic.At(0); !ok || v != 1 {
		t.Fatalf("IntCol.At(0) = %d, %v; want 1, true", v, ok)
	}
	if _, ok := ic.At(1); ok {
		t.Fatal("IntCol must reject floats")
	}
	if _, ok := ic.At(2); ok {
		t.Fatal("IntCol must reject nulls")
	}
	if _, ok := ic.At(3); ok {
		t.Fatal("IntCol must reject strings")
	}

	fc := tbl.FloatCol(0)
	if v, ok := fc.At(0); !ok || v != 1.0 {
		t.Fatalf("FloatCol must promote ints: got %v, %v", v, ok)
	}
	if v, ok := fc.At(1); !ok || v != 2.0 {
		t.Fatalf("FloatCol.At(1) = %v, %v; want 2, true", v, ok)
	}
	if _, ok := fc.At(2); ok {
		t.Fatal("FloatCol must reject nulls")
	}
	if _, ok := fc.At(3); ok {
		t.Fatal("FloatCol must reject strings")
	}
	if v, ok := tbl.FloatCol(1).At(3); !ok || !math.IsNaN(v) {
		t.Fatalf("FloatCol must pass NaN through: got %v, %v", v, ok)
	}

	sc := tbl.StringCol(2)
	if v, ok := sc.At(0); !ok || v != "x" {
		t.Fatalf("StringCol.At(0) = %q, %v; want x, true", v, ok)
	}
	if v, ok := sc.At(1); !ok || v != "" {
		t.Fatalf("StringCol must accept empty strings: got %q, %v", v, ok)
	}
	if _, ok := sc.At(2); ok {
		t.Fatal("StringCol must reject nulls")
	}
	if _, ok := sc.At(3); ok {
		t.Fatal("StringCol must reject bools")
	}

	// Views follow live edits: they hold the table, not a snapshot.
	tbl.Set(0, 0, Int(42))
	if v, ok := ic.At(0); !ok || v != 42 {
		t.Fatalf("IntCol must observe edits: got %d, %v", v, ok)
	}
	if got := tbl.Col(0).Value(0); !got.SameContent(Int(42)) {
		t.Fatalf("ColView must observe edits: got %v", got)
	}
}

func TestValueIsNaNAndNum(t *testing.T) {
	if !Float(math.NaN()).IsNaN() {
		t.Fatal("Float(NaN).IsNaN() = false")
	}
	for _, v := range []Value{Null(), Int(0), Float(0), String("NaN"), Bool(false)} {
		if v.IsNaN() {
			t.Fatalf("%v.IsNaN() = true", v)
		}
	}
	if f, ok := Int(-2).Num(); !ok || f != -2 {
		t.Fatalf("Int(-2).Num() = %v, %v", f, ok)
	}
	if f, ok := Float(2.5).Num(); !ok || f != 2.5 {
		t.Fatalf("Float(2.5).Num() = %v, %v", f, ok)
	}
	for _, v := range []Value{Null(), String("1"), Bool(true)} {
		if _, ok := v.Num(); ok {
			t.Fatalf("%v.Num() ok = true", v)
		}
	}
}
