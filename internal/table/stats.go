package table

import (
	"math/rand"
	"sort"
)

// Distribution is the empirical distribution of non-null values observed in
// one column. It backs two needs of the reproduction:
//
//   - the repair rules of the paper's Algorithm 1, which assign
//     "the most common value" (Mode) and "the most probable value given
//     another attribute" (conditional mode); and
//   - the Strumbelj–Kononenko sampling step of Example 2.5, which replaces
//     out-of-coalition cells with draws from their column distribution.
//
// Values are kept in first-observed order so that iteration and tie-breaks
// are deterministic.
//
// A Distribution is reusable: Reset clears the observations while keeping
// the value interning table, so pooled statistics rebuilt over successive
// repair states (repair.ScratchRepairer) allocate nothing once every value
// in the column's domain has been seen at least once. All query methods see
// only values observed since the last Reset, exactly as a fresh
// Distribution would.
type Distribution struct {
	// index interns Value.Key() -> slot. It is append-only over the
	// distribution's lifetime; slots for values absent from the current
	// epoch simply hold a zero count and are not in active.
	index     map[string]int
	slotValue []Value
	slotCount []int
	// active lists the slots observed this epoch, in first-observed order —
	// the iteration order of every query method.
	active []int
	total  int
	keyBuf []byte
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	return &Distribution{index: make(map[string]int)}
}

// Reset forgets every observation while retaining interned values, so a
// pooled distribution can be rebuilt without reallocating.
func (d *Distribution) Reset() {
	for _, s := range d.active {
		d.slotCount[s] = 0
	}
	d.active = d.active[:0]
	d.total = 0
}

// Observe adds one occurrence of v. Nulls are ignored: a null carries no
// evidence about the column's domain.
func (d *Distribution) Observe(v Value) {
	if v.IsNull() {
		return
	}
	d.keyBuf = v.AppendKey(d.keyBuf[:0])
	s, ok := d.index[string(d.keyBuf)] // alloc-free map probe
	if !ok {
		s = len(d.slotValue)
		d.index[string(d.keyBuf)] = s
		d.slotValue = append(d.slotValue, v)
		d.slotCount = append(d.slotCount, 0)
	}
	if d.slotCount[s] == 0 {
		d.active = append(d.active, s)
	}
	d.slotCount[s]++
	d.total++
}

// Total returns the number of observed (non-null) occurrences.
func (d *Distribution) Total() int { return d.total }

// Support returns the distinct observed values in first-observed order.
func (d *Distribution) Support() []Value {
	out := make([]Value, 0, len(d.active))
	for _, s := range d.active {
		out = append(out, d.slotValue[s])
	}
	return out
}

// Count returns how many times v was observed.
func (d *Distribution) Count(v Value) int {
	if d.total == 0 {
		// Also keeps every query method on an empty distribution free of
		// keyBuf writes, so the shared emptyDist is truly read-only.
		return 0
	}
	d.keyBuf = v.AppendKey(d.keyBuf[:0])
	if s, ok := d.index[string(d.keyBuf)]; ok {
		return d.slotCount[s]
	}
	return 0
}

// Prob returns the empirical probability of v.
func (d *Distribution) Prob(v Value) float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.Count(v)) / float64(d.total)
}

// Mode returns the most frequent value, i.e. argmax_c P[col = c]. Ties are
// broken toward the earliest-observed value so repairs are deterministic.
// ok is false when the distribution is empty.
func (d *Distribution) Mode() (v Value, ok bool) {
	best := -1
	for _, s := range d.active {
		if best < 0 || d.slotCount[s] > d.slotCount[best] {
			best = s
		}
	}
	if best < 0 {
		return Null(), false
	}
	return d.slotValue[best], true
}

// Sample draws a value proportionally to its observed frequency.
// ok is false when the distribution is empty.
func (d *Distribution) Sample(rng *rand.Rand) (v Value, ok bool) {
	if d.total == 0 {
		return Null(), false
	}
	target := rng.Intn(d.total)
	for _, s := range d.active {
		if target < d.slotCount[s] {
			return d.slotValue[s], true
		}
		target -= d.slotCount[s]
	}
	return d.slotValue[d.active[len(d.active)-1]], true // unreachable; defensive
}

// SampleOther draws a value different from exclude when the support allows
// it; if exclude is the only observed value, it is returned. This implements
// the "replaced with random value" perturbation of Example 2.5 in a way that
// actually perturbs whenever possible.
func (d *Distribution) SampleOther(rng *rand.Rand, exclude Value) (Value, bool) {
	if d.total == 0 {
		return Null(), false
	}
	d.keyBuf = exclude.AppendKey(d.keyBuf[:0])
	exSlot, has := d.index[string(d.keyBuf)]
	remaining := d.total
	if has {
		remaining -= d.slotCount[exSlot]
	}
	if remaining <= 0 {
		return d.slotValue[exSlot], true
	}
	target := rng.Intn(remaining)
	for _, s := range d.active {
		if has && s == exSlot {
			continue
		}
		if target < d.slotCount[s] {
			return d.slotValue[s], true
		}
		target -= d.slotCount[s]
	}
	return Null(), false // unreachable; defensive
}

// Entries returns (value, count) pairs sorted by descending count, ties by
// first-observed order. Useful for reports.
func (d *Distribution) Entries() []struct {
	Value Value
	Count int
} {
	type entry struct {
		Value Value
		Count int
	}
	order := append([]int(nil), d.active...)
	sort.SliceStable(order, func(a, b int) bool { return d.slotCount[order[a]] > d.slotCount[order[b]] })
	out := make([]struct {
		Value Value
		Count int
	}, len(order))
	for i, s := range order {
		out[i] = entry{Value: d.slotValue[s], Count: d.slotCount[s]}
	}
	return out
}

// emptyDist is the shared read-only result for conditional lookups on a
// never-observed value. Every query method is a true read on an empty
// distribution (Count/Prob/SampleOther bail out before touching their key
// scratch), so sharing it across goroutines is safe; Observe on the shared
// instance would corrupt unrelated lookups, so it is never handed to code
// that builds distributions.
var emptyDist = NewDistribution()

// condEntry is one conditional distribution, valid for the cache build it
// was last populated in.
type condEntry struct {
	build uint64
	d     *Distribution
}

// condCache holds the lazily-built conditional distributions of one
// (given, target) column pair. Entries are interned for the lifetime of
// the Stats so rebuilds reuse their storage. The cache carries
// per-(column-pair) dirty tracking: it remembers the change epochs of its
// two columns at build time and rebuilds only when one of them moved —
// cell edits elsewhere in the table leave the pair's distributions valid
// across any number of Syncs.
type condCache struct {
	builds                  uint64 // rebuild counter; 0 = never built
	givenEpoch, targetEpoch uint64 // colEpoch values at the last build
	byKey                   map[string]*condEntry
}

// Stats holds per-column distributions and pairwise conditional
// distributions for one table snapshot. It is computed once from the dirty
// table and then queried by repair algorithms and the sampler; Reset
// re-snapshots a (possibly pooled) Stats against the table's current
// contents, reusing all interned storage, so steady-state refreshes inside
// the in-place repair protocol allocate nothing.
type Stats struct {
	schema *Schema
	cols   []*Distribution
	// cond[(a, b)] caches the distribution of column b's values among rows
	// where column a takes a given value. Built lazily per (a, b) pair and
	// kept valid until either column's change epoch moves.
	cond   map[[2]int]*condCache
	rows   [][]Value
	epoch  uint64
	keyBuf []byte

	// colEpoch[j] is the epoch at which column j's contents (values or row
	// membership) last changed — the per-(column-pair) dirty bits of the
	// conditional caches: Conditional(a, ·, b) rebuilds only when
	// colEpoch[a] or colEpoch[b] moved since its last build.
	colEpoch []uint64

	// srcTbl/srcGen identify the snapshot: the table and its generation the
	// stats were last built against. Sync uses them to catch up from the
	// table's edit log with per-column deltas instead of a full rebuild.
	srcTbl *Table
	srcGen uint64
	// editBuf, colTouched, colList and remap are Sync's pooled delta
	// scratch.
	editBuf    []Edit
	colTouched []bool
	colList    []int
	remap      RowRemap
}

// NewStats scans the table and builds column distributions. Conditional
// distributions are materialized lazily on first use.
func NewStats(t *Table) *Stats {
	s := &Stats{cond: make(map[[2]int]*condCache)}
	s.Reset(t)
	return s
}

// Reset re-snapshots the stats against t's current contents, equivalent to
// NewStats(t) but reusing every interned map and slice.
func (s *Stats) Reset(t *Table) {
	s.epoch++
	s.schema = t.Schema()
	if len(s.cols) != t.NumCols() {
		s.cols = make([]*Distribution, t.NumCols())
		for j := range s.cols {
			s.cols[j] = NewDistribution()
		}
		s.colEpoch = make([]uint64, t.NumCols())
	} else {
		for _, d := range s.cols {
			d.Reset()
		}
	}
	for j := range s.colEpoch {
		s.colEpoch[j] = s.epoch
	}
	if cap(s.rows) >= t.NumRows() {
		s.rows = s.rows[:t.NumRows()]
	} else {
		s.rows = make([][]Value, t.NumRows())
	}
	for i := 0; i < t.NumRows(); i++ {
		src := t.RowView(i)
		if cap(s.rows[i]) >= len(src) {
			s.rows[i] = s.rows[i][:len(src)]
		} else {
			s.rows[i] = make([]Value, len(src))
		}
		copy(s.rows[i], src)
		for j, v := range s.rows[i] {
			s.cols[j].Observe(v)
		}
	}
	s.srcTbl = t
	s.srcGen = t.Generation()
}

// Sync re-snapshots the stats against t's current contents, exactly like
// Reset(t), but incrementally when it can: when the stats already snapshot
// an older generation of the same table and the edit log still covers the
// gap, only the *columns the window actually changed* have their
// distributions rebuilt (a column distribution is a pure function of the
// column's contents, so rebuilding it in row order reproduces the full
// rebuild's first-observed order — the tie-break order Mode and Sample
// depend on). Structural windows ride the same path: an insert-only
// window applies per-column count deltas (appended rows observe at the
// tail, exactly where a full rebuild first sees them), while a window
// with deletes re-observes each column from the swap-remapped shadow
// rows — no per-cell copying, and first-observed order is exact by
// construction. Conditional distributions carry per-(column-pair) dirty
// bits (colEpoch) and rebuild lazily only for pairs whose columns moved.
//
// The equivalence contract — after Sync(t) every query answers exactly as
// after Reset(t), including tie-breaks and Sample draws — is fuzz-tested
// (FuzzStatsSyncEquivalence). A log overrun, a different table, or a
// schema change falls back to the full rebuild. The returned bool reports
// whether the delta path was taken (false = full rebuild), for tests and
// instrumentation.
func (s *Stats) Sync(t *Table) bool {
	if s.srcTbl != t || s.schema != t.Schema() || len(s.cols) != t.NumCols() {
		s.Reset(t)
		return false
	}
	if s.srcGen == t.Generation() {
		return true
	}
	s.editBuf = s.editBuf[:0]
	edits, ok := t.EditsSince(s.srcGen, s.editBuf)
	s.editBuf = edits
	if !ok {
		s.Reset(t)
		return false
	}
	if Structural(edits) {
		if !s.syncStructural(t, edits) {
			s.Reset(t)
			return false
		}
		s.srcGen = t.Generation()
		return true
	}
	if len(s.rows) != t.NumRows() {
		// Defensive: the row count drifted without a structural log entry.
		s.Reset(t)
		return false
	}
	if cap(s.colTouched) >= len(s.cols) {
		s.colTouched = s.colTouched[:len(s.cols)]
	} else {
		s.colTouched = make([]bool, len(s.cols))
	}
	s.colList = s.colList[:0]
	for _, e := range edits {
		if !s.colTouched[e.Col] {
			s.colTouched[e.Col] = true
			s.colList = append(s.colList, e.Col)
		}
		s.rows[e.Row][e.Col] = t.Get(e.Row, e.Col)
	}
	if len(edits) > 0 {
		s.epoch++
	}
	for _, j := range s.colList {
		s.colTouched[j] = false
		d := s.cols[j]
		d.Reset()
		for i := 0; i < t.NumRows(); i++ {
			d.Observe(t.Get(i, j))
		}
		s.colEpoch[j] = s.epoch
	}
	s.srcGen = t.Generation()
	return true
}

// syncStructural catches the stats up with a window containing row
// inserts and/or deletes. Shadow rows replay the structural transcript
// with pointer swaps (no cell copying), then refresh only the rows and
// cells RowRemap marks; distributions update by per-column deltas for
// insert-only windows and by per-column re-observation of the remapped
// shadow when deletes reshuffled row order. Returns false — caller falls
// back to Reset — when the decoded window does not land on the live
// table's shape.
func (s *Stats) syncStructural(t *Table, edits []Edit) bool {
	s.remap.Resolve(edits, len(s.rows))
	rm := &s.remap
	if rm.NewRows != t.NumRows() {
		return false
	}
	hasDelete := false
	for _, e := range edits {
		switch e.Kind {
		case EditInsert:
			// Grow the shadow by one pooled slot; its contents are stale
			// until the Derive refresh below (or it vanishes again if a
			// later delete in the window claims it).
			if len(s.rows) < cap(s.rows) {
				s.rows = s.rows[:len(s.rows)+1]
			} else {
				s.rows = append(s.rows, nil)
			}
		case EditDelete:
			hasDelete = true
			last := len(s.rows) - 1
			if e.Row < 0 || e.Row > last {
				return false
			}
			s.rows[e.Row], s.rows[last] = s.rows[last], s.rows[e.Row]
			s.rows = s.rows[:last]
		}
	}
	m := t.NumCols()
	for _, p := range rm.Derive {
		src := t.RowView(int(p))
		if cap(s.rows[p]) >= m {
			s.rows[p] = s.rows[p][:m]
		} else {
			s.rows[p] = make([]Value, m)
		}
		copy(s.rows[p], src)
	}
	for _, e := range rm.Sets {
		if rm.CleanSet(e) {
			s.rows[e.Row][e.Col] = t.Get(e.Row, e.Col)
		}
	}

	// Row membership changed in every column, so every conditional pair is
	// stale regardless of which cells moved.
	s.epoch++
	for j := range s.colEpoch {
		s.colEpoch[j] = s.epoch
	}
	if hasDelete {
		// Swap-deletes reshuffle row order, which can reorder any column's
		// first-observed sequence; re-observe them all from the remapped
		// shadow. Counts and order match a full rebuild exactly, at the
		// cost of Observe calls only — no cell copying.
		for j, d := range s.cols {
			d.Reset()
			for i := range s.rows {
				d.Observe(s.rows[i][j])
			}
		}
		return true
	}
	// Insert-only window: appended rows land at the tail, exactly where a
	// full rebuild first observes them, so count deltas preserve
	// first-observed order. Columns with in-place cell edits re-observe in
	// row order, as on the pure-cell path; the remaining columns take the
	// appended rows as pure deltas.
	if cap(s.colTouched) >= len(s.cols) {
		s.colTouched = s.colTouched[:len(s.cols)]
	} else {
		s.colTouched = make([]bool, len(s.cols))
	}
	s.colList = s.colList[:0]
	for _, e := range rm.Sets {
		if rm.CleanSet(e) && !s.colTouched[e.Col] {
			s.colTouched[e.Col] = true
			s.colList = append(s.colList, e.Col)
		}
	}
	for _, j := range s.colList {
		d := s.cols[j]
		d.Reset()
		for i := range s.rows {
			d.Observe(s.rows[i][j])
		}
	}
	for _, p := range rm.Derive {
		row := s.rows[p]
		for j, d := range s.cols {
			if !s.colTouched[j] {
				d.Observe(row[j])
			}
		}
	}
	for _, j := range s.colList {
		s.colTouched[j] = false
	}
	return true
}

// Column returns the distribution of column j.
func (s *Stats) Column(j int) *Distribution { return s.cols[j] }

// ColumnByName returns the distribution of the named column.
func (s *Stats) ColumnByName(name string) *Distribution {
	return s.cols[s.schema.MustIndex(name)]
}

// Conditional returns the distribution of column target among rows whose
// column given equals val. An empty distribution is returned when val was
// never observed in the given column; it is shared and must be treated as
// read-only.
//
// The cache is dirty-tracked per (given, target) pair: a Sync that
// touched neither column leaves the pair's distributions valid, so
// repair loops editing one column stop paying lazy rebuilds for every
// unrelated conditional they consult.
func (s *Stats) Conditional(given int, val Value, target int) *Distribution {
	key := [2]int{given, target}
	cc, ok := s.cond[key]
	if !ok {
		cc = &condCache{byKey: make(map[string]*condEntry)}
		s.cond[key] = cc
	}
	if cc.builds == 0 || cc.givenEpoch != s.colEpoch[given] || cc.targetEpoch != s.colEpoch[target] {
		cc.builds++
		for _, row := range s.rows {
			gv := row[given]
			if gv.IsNull() {
				continue
			}
			s.keyBuf = gv.AppendKey(s.keyBuf[:0])
			e, ok := cc.byKey[string(s.keyBuf)]
			if !ok {
				e = &condEntry{d: NewDistribution()}
				cc.byKey[string(s.keyBuf)] = e
			}
			if e.build != cc.builds {
				e.d.Reset()
				e.build = cc.builds
			}
			e.d.Observe(row[target])
		}
		cc.givenEpoch, cc.targetEpoch = s.colEpoch[given], s.colEpoch[target]
	}
	s.keyBuf = val.AppendKey(s.keyBuf[:0])
	if e, ok := cc.byKey[string(s.keyBuf)]; ok && e.build == cc.builds {
		return e.d
	}
	return emptyDist
}

// ConditionalMode returns argmax_c P[target = c | given = val], the repair
// value used by rules 2 and 4 of the paper's Algorithm 1. When the
// conditional distribution is empty it falls back to the unconditional mode
// of the target column.
func (s *Stats) ConditionalMode(given int, val Value, target int) (Value, bool) {
	if v, ok := s.Conditional(given, val, target).Mode(); ok {
		return v, true
	}
	return s.cols[target].Mode()
}
