package table

import (
	"math/rand"
	"sort"
)

// Distribution is the empirical distribution of non-null values observed in
// one column. It backs two needs of the reproduction:
//
//   - the repair rules of the paper's Algorithm 1, which assign
//     "the most common value" (Mode) and "the most probable value given
//     another attribute" (conditional mode); and
//   - the Strumbelj–Kononenko sampling step of Example 2.5, which replaces
//     out-of-coalition cells with draws from their column distribution.
//
// Values are kept in first-observed order so that iteration and tie-breaks
// are deterministic.
type Distribution struct {
	values []Value
	counts []int
	index  map[string]int // Value.Key() -> position in values
	total  int
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	return &Distribution{index: make(map[string]int)}
}

// Observe adds one occurrence of v. Nulls are ignored: a null carries no
// evidence about the column's domain.
func (d *Distribution) Observe(v Value) {
	if v.IsNull() {
		return
	}
	k := v.Key()
	if i, ok := d.index[k]; ok {
		d.counts[i]++
	} else {
		d.index[k] = len(d.values)
		d.values = append(d.values, v)
		d.counts = append(d.counts, 1)
	}
	d.total++
}

// Total returns the number of observed (non-null) occurrences.
func (d *Distribution) Total() int { return d.total }

// Support returns the distinct observed values in first-observed order.
func (d *Distribution) Support() []Value { return append([]Value(nil), d.values...) }

// Count returns how many times v was observed.
func (d *Distribution) Count(v Value) int {
	if i, ok := d.index[v.Key()]; ok {
		return d.counts[i]
	}
	return 0
}

// Prob returns the empirical probability of v.
func (d *Distribution) Prob(v Value) float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.Count(v)) / float64(d.total)
}

// Mode returns the most frequent value, i.e. argmax_c P[col = c]. Ties are
// broken toward the earliest-observed value so repairs are deterministic.
// ok is false when the distribution is empty.
func (d *Distribution) Mode() (v Value, ok bool) {
	best := -1
	for i, c := range d.counts {
		if best < 0 || c > d.counts[best] {
			best = i
		}
	}
	if best < 0 {
		return Null(), false
	}
	return d.values[best], true
}

// Sample draws a value proportionally to its observed frequency.
// ok is false when the distribution is empty.
func (d *Distribution) Sample(rng *rand.Rand) (v Value, ok bool) {
	if d.total == 0 {
		return Null(), false
	}
	target := rng.Intn(d.total)
	for i, c := range d.counts {
		if target < c {
			return d.values[i], true
		}
		target -= c
	}
	return d.values[len(d.values)-1], true // unreachable; defensive
}

// SampleOther draws a value different from exclude when the support allows
// it; if exclude is the only observed value, it is returned. This implements
// the "replaced with random value" perturbation of Example 2.5 in a way that
// actually perturbs whenever possible.
func (d *Distribution) SampleOther(rng *rand.Rand, exclude Value) (Value, bool) {
	if d.total == 0 {
		return Null(), false
	}
	exKey := exclude.Key()
	exIdx, has := d.index[exKey]
	remaining := d.total
	if has {
		remaining -= d.counts[exIdx]
	}
	if remaining <= 0 {
		return d.values[exIdx], true
	}
	target := rng.Intn(remaining)
	for i, c := range d.counts {
		if has && i == exIdx {
			continue
		}
		if target < c {
			return d.values[i], true
		}
		target -= c
	}
	return Null(), false // unreachable; defensive
}

// Entries returns (value, count) pairs sorted by descending count, ties by
// first-observed order. Useful for reports.
func (d *Distribution) Entries() []struct {
	Value Value
	Count int
} {
	type entry struct {
		Value Value
		Count int
	}
	order := make([]int, len(d.values))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return d.counts[order[a]] > d.counts[order[b]] })
	out := make([]struct {
		Value Value
		Count int
	}, len(order))
	for i, idx := range order {
		out[i] = entry{Value: d.values[idx], Count: d.counts[idx]}
	}
	return out
}

// Stats holds per-column distributions and pairwise conditional
// distributions for one table snapshot. It is computed once from the dirty
// table and then queried by repair algorithms and the sampler.
type Stats struct {
	schema *Schema
	cols   []*Distribution
	// cond[a][b] maps Value.Key() of a value in column a to the
	// distribution of column b's values among rows where column a takes
	// that value. Built lazily per (a, b) pair.
	cond map[[2]int]map[string]*Distribution
	rows [][]Value
}

// NewStats scans the table and builds column distributions. Conditional
// distributions are materialized lazily on first use.
func NewStats(t *Table) *Stats {
	s := &Stats{
		schema: t.Schema(),
		cols:   make([]*Distribution, t.NumCols()),
		cond:   make(map[[2]int]map[string]*Distribution),
	}
	for j := 0; j < t.NumCols(); j++ {
		s.cols[j] = NewDistribution()
	}
	s.rows = make([][]Value, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		s.rows[i] = t.Row(i)
		for j, v := range s.rows[i] {
			s.cols[j].Observe(v)
		}
	}
	return s
}

// Column returns the distribution of column j.
func (s *Stats) Column(j int) *Distribution { return s.cols[j] }

// ColumnByName returns the distribution of the named column.
func (s *Stats) ColumnByName(name string) *Distribution {
	return s.cols[s.schema.MustIndex(name)]
}

// Conditional returns the distribution of column target among rows whose
// column given equals val. An empty distribution is returned when val was
// never observed in the given column.
func (s *Stats) Conditional(given int, val Value, target int) *Distribution {
	key := [2]int{given, target}
	byVal, ok := s.cond[key]
	if !ok {
		byVal = make(map[string]*Distribution)
		for _, row := range s.rows {
			gv := row[given]
			if gv.IsNull() {
				continue
			}
			d, ok := byVal[gv.Key()]
			if !ok {
				d = NewDistribution()
				byVal[gv.Key()] = d
			}
			d.Observe(row[target])
		}
		s.cond[key] = byVal
	}
	if d, ok := byVal[val.Key()]; ok {
		return d
	}
	return NewDistribution()
}

// ConditionalMode returns argmax_c P[target = c | given = val], the repair
// value used by rules 2 and 4 of the paper's Algorithm 1. When the
// conditional distribution is empty it falls back to the unconditional mode
// of the target column.
func (s *Stats) ConditionalMode(given int, val Value, target int) (Value, bool) {
	if v, ok := s.Conditional(given, val, target).Mode(); ok {
		return v, true
	}
	return s.cols[target].Mode()
}
