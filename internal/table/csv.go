package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV loads a table from CSV. The first record is the header; every
// field is parsed with ParseValue (so numbers become ints/floats and empty
// fields become null).
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated against the header below
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	schema, err := SchemaOf(header...)
	if err != nil {
		return nil, err
	}
	t := New(schema)
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV line %d: %w", line, err)
		}
		if len(record) != len(header) {
			return nil, fmt.Errorf("table: CSV line %d has %d fields, header has %d", line, len(record), len(header))
		}
		row := make([]Value, len(record))
		for j, field := range record {
			row[j] = ParseValue(field)
		}
		if err := t.Append(row); err != nil {
			return nil, fmt.Errorf("table: CSV line %d: %w", line, err)
		}
	}
}

// IngestCSV streams CSV records from r into an existing table under one
// batch bracket: the header must match the table's schema name for name,
// each data row is appended as one typed insert, and the whole ingest
// shares one generation — incremental consumers replay it as a single
// structural delta (or rebuild once when it overruns the edit-log
// window) instead of resyncing per row. Returns the number of rows
// appended. On a malformed record the error names the CSV line; rows
// already appended stay applied (the bracket groups generations, not
// atomicity), and the returned count reflects them.
func (t *Table) IngestCSV(r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated against the schema below
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("table: reading CSV header: %w", err)
	}
	names := t.schema.Names()
	if len(header) != len(names) {
		return 0, fmt.Errorf("table: CSV header has %d columns, schema has %d", len(header), len(names))
	}
	for j, name := range names {
		if header[j] != name {
			return 0, fmt.Errorf("table: CSV column %d is %q, schema has %q", j, header[j], name)
		}
	}
	n := 0
	row := make([]Value, len(names))
	err = t.ApplyBatch(func(b *Table) error {
		for line := 2; ; line++ {
			record, err := cr.Read()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return fmt.Errorf("table: reading CSV line %d: %w", line, err)
			}
			if len(record) != len(names) {
				return fmt.Errorf("table: CSV line %d has %d fields, header has %d", line, len(record), len(names))
			}
			for j, field := range record {
				row[j] = ParseValue(field)
			}
			if err := b.Append(row); err != nil {
				return fmt.Errorf("table: CSV line %d: %w", line, err)
			}
			n++
		}
	})
	return n, err
}

// ReadCSVFile loads a table from a CSV file on disk.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV serializes the table as CSV with a header row. Null cells are
// written as empty fields so ReadCSV round-trips them.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return err
	}
	record := make([]string, t.NumCols())
	for i := 0; i < t.NumRows(); i++ {
		for j := 0; j < t.NumCols(); j++ {
			v := t.rows[i][j]
			if v.IsNull() {
				record[j] = ""
			} else {
				record[j] = v.String()
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile serializes the table into a CSV file on disk.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
