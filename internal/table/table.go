package table

import (
	"fmt"
	"strings"
)

// CellRef addresses a single cell by row index and column index. It is the
// "player" identity used by the cell-Shapley game: the paper vectorizes the
// table as x_T = (t1[A1], t1[A2], ..., tn[Am]) and a CellRef is one slot of
// that vector.
type CellRef struct {
	Row int
	Col int
}

// String renders the reference as "t<row+1>[<col>]" to match the paper's
// t5[Country] notation when a schema is not at hand.
func (r CellRef) String() string { return fmt.Sprintf("t%d[col%d]", r.Row+1, r.Col) }

// Table is a mutable in-memory relation: a schema plus rows of typed values.
// Tables are not safe for concurrent mutation; the Shapley engine always
// works on private clones or pooled scratch copies.
type Table struct {
	schema *Schema
	rows   [][]Value
	// gen counts mutations. Index structures built over a table (e.g. the
	// violation-scan buckets in package dc) key their cache on (table,
	// generation) and rebuild only when the generation moved.
	gen uint64
	// edits is a bounded ring of the most recent mutations — cell
	// overwrites and structural row edits alike — so index structures can
	// catch up from an older generation by replaying typed deltas instead
	// of rebuilding wholesale (see EditsSince). Allocated lazily on the
	// first mutation so tables that are never mutated pay nothing.
	edits []Edit
	// editHead is the ring slot the next edit is written to; editLen is the
	// number of valid entries (≤ len(edits)).
	editHead, editLen int
	// minDeltaGen is the oldest generation EditsSince can catch up from:
	// shape-changing CopyFrom and ring eviction advance it.
	minDeltaGen uint64
	// batchDepth counts open ApplyBatch brackets; while positive, mutations
	// share the generation minted when the outermost bracket opened.
	batchDepth int
}

// EditKind discriminates the entries of the typed edit log.
type EditKind uint8

const (
	// EditSet is a single-cell overwrite at (Row, Col).
	EditSet EditKind = iota
	// EditInsert is a row append: the row now at index Row (equal to the
	// row count before the insert) is new.
	EditInsert
	// EditDelete is a swap-delete: the row that was at index Row is gone,
	// the row that was last before the delete now lives at index Row (when
	// Row was not already last), and the table is one row shorter. This is
	// the row-identity remapping rule every incremental consumer must
	// honor; RowRemap decodes a whole window of it.
	EditDelete
)

// Edit records one table mutation: a cell overwrite or a structural row
// change. Gen is the table generation after the edit was applied; edits
// applied inside one ApplyBatch share a single generation, so generations
// along the log are non-decreasing rather than strictly increasing. Col
// is -1 for structural edits.
type Edit struct {
	Gen      uint64
	Row, Col int
	Kind     EditKind
}

// editLogWindow bounds the edit ring. It must comfortably exceed the number
// of cells a repair pass or a scratch-copy refresh touches on the paper's
// working tables so that pooled scan indexes stay on the delta path; larger
// tables degrade gracefully to full rebuilds. The ring starts small
// (editLogInitial) and doubles on demand, so short-lived clones that absorb
// a handful of masking edits pay bytes proportional to their history, not
// the cap.
const (
	editLogInitial = 32
	editLogWindow  = 512
)

// logEdit bumps the generation and appends one cell overwrite to the
// ring. It reduces to a single call into logTyped so Set/SetRef stay one
// store plus one call — small enough to inline into the evaluation
// loops, where the write path is the hottest instruction sequence in the
// repository.
func (t *Table) logEdit(row, col int) {
	t.logTyped(row, col, EditSet)
}

// logStructural bumps the generation and appends one row insert or
// delete to the ring. Call after the rows slice has its final shape: it
// is the invalidation barrier of every structural mutation, pairing each
// row move with the log entry consumers replay to stay in sync.
func (t *Table) logStructural(kind EditKind, row int) {
	t.logTyped(row, -1, kind)
}

// logTyped bumps the generation and appends one typed entry to the
// bounded ring. The bump and the append share this deliberately
// non-inlinable callee (see logEdit).
func (t *Table) logTyped(row, col int, kind EditKind) {
	t.bump()
	e := Edit{Gen: t.gen, Row: row, Col: col, Kind: kind}
	if t.edits == nil {
		t.edits = make([]Edit, editLogInitial)
	}
	if t.editLen == len(t.edits) {
		if n := len(t.edits); n < editLogWindow {
			// Grow: unroll the full ring (oldest first) into a larger
			// backing array. The ring is full, so the oldest entry sits at
			// editHead.
			grown := make([]Edit, 2*n)
			copied := copy(grown, t.edits[t.editHead:])
			copy(grown[copied:], t.edits[:t.editHead])
			t.edits = grown
			t.editHead = n
			t.editLen++
		} else {
			// Evicting the oldest entry loses history at and before its
			// generation.
			t.minDeltaGen = t.edits[t.editHead].Gen
		}
	} else {
		t.editLen++
	}
	t.edits[t.editHead] = e
	t.editHead++
	if t.editHead == len(t.edits) {
		t.editHead = 0
	}
}

// invalidateEdits abandons the retained history: delta catch-up across
// this point is impossible and every consumer must rebuild. Only
// wholesale replacements that defy per-row logging (a shape-changing
// CopyFrom) use it — plain inserts and deletes are typed log entries.
func (t *Table) invalidateEdits() {
	t.minDeltaGen = t.gen
	t.editLen = 0
	t.editHead = 0
}

// EditsSince appends to buf every typed edit with generation in
// (gen, t.Generation()], oldest first, and reports whether the log still
// covers that window. ok is false when gen predates the retained history
// (ring eviction) or a shape-changing CopyFrom happened since; callers
// must then rebuild from scratch — an invalidated window means "history
// lost", never "no edits". A true result with an empty slice means the
// table is unchanged. Row inserts and deletes are ordinary log entries:
// consumers replay them through RowRemap instead of rebuilding.
//
// Cost is O(log window + |edits returned|): retained entries carry
// non-decreasing generations in ring order (batched edits share one), so
// the first entry past gen is found by binary search instead of scanning
// the whole ring — incremental consumers (scan indexes, live violation
// lists, statistics syncs) typically ask for a handful of edits out of a
// full ring on every evaluation.
//
// Calling EditsSince while an ApplyBatch bracket is open is outside the
// contract: the batch generation is already minted, so a mid-batch
// sync would anchor past edits the batch has yet to log.
func (t *Table) EditsSince(gen uint64, buf []Edit) ([]Edit, bool) {
	if gen < t.minDeltaGen {
		return buf, false
	}
	if gen >= t.gen {
		return buf, true
	}
	// Oldest retained entry sits editLen slots behind editHead.
	start := t.editHead - t.editLen
	if start < 0 {
		start += len(t.edits)
	}
	// Binary search the smallest i with edits[(start+i)%len].Gen > gen.
	lo, hi := 0, t.editLen
	for lo < hi {
		mid := (lo + hi) / 2
		if t.edits[(start+mid)%len(t.edits)].Gen > gen {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	for i := lo; i < t.editLen; i++ {
		buf = append(buf, t.edits[(start+i)%len(t.edits)])
	}
	return buf, true
}

// New creates an empty table with the given schema.
func New(schema *Schema) *Table {
	return &Table{schema: schema}
}

// FromStrings builds a table by parsing a rectangular grid of raw strings
// with ParseValue. It is the main constructor for literals in tests,
// examples and embedded datasets.
func FromStrings(names []string, grid [][]string) (*Table, error) {
	schema, err := SchemaOf(names...)
	if err != nil {
		return nil, err
	}
	t := New(schema)
	for i, rawRow := range grid {
		if len(rawRow) != len(names) {
			return nil, fmt.Errorf("table: row %d has %d values, want %d", i, len(rawRow), len(names))
		}
		row := make([]Value, len(rawRow))
		for j, raw := range rawRow {
			row[j] = ParseValue(raw)
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustFromStrings is FromStrings that panics on error.
func MustFromStrings(names []string, grid [][]string) *Table {
	t, err := FromStrings(names, grid)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.rows) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return t.schema.Len() }

// NumCells returns rows × columns — the number of Shapley players in the
// cell game.
func (t *Table) NumCells() int { return len(t.rows) * t.schema.Len() }

// Append validates and adds a row at the end of the table. The slice is
// copied. The insert is a typed log entry, so incremental consumers
// extend their state by exactly one row instead of rebuilding.
func (t *Table) Append(row []Value) error {
	if err := t.schema.Validate(row); err != nil {
		return err
	}
	t.rows = append(t.rows, append([]Value(nil), row...))
	t.logStructural(EditInsert, len(t.rows)-1)
	return nil
}

// DeleteRow removes row i by the swap-delete rule: the last row moves
// into position i (when i is not already last) and the table shrinks by
// one. The rule keeps deletion O(1) and leaves every other row's index
// stable at the price of renumbering exactly one survivor; the typed
// edit log records the delete so incremental consumers retract the moved
// row's derived state and re-derive it under its new index (RowRemap).
// Cached artifacts holding CellRefs are keyed on the table generation,
// which every delete bumps, so a stale row index can never be read back
// silently. Panics when i is out of range, matching slice semantics.
func (t *Table) DeleteRow(i int) {
	last := len(t.rows) - 1
	if i < 0 || i > last {
		panic(fmt.Sprintf("table: DeleteRow(%d) out of range 0..%d", i, last))
	}
	// The swap parks the deleted row's storage beyond the new length,
	// keeping the slot pooled for a future shape-matching CopyFrom.
	t.rows[i], t.rows[last] = t.rows[last], t.rows[i]
	t.rows = t.rows[:last]
	t.logStructural(EditDelete, i)
}

// ApplyBatch runs fn with the table in batch mode: every mutation fn
// applies (Set, Append, DeleteRow, nested batches) shares one
// generation, logged as a contiguous run of typed edits, so incremental
// consumers replay the whole transaction as a single delta and
// generation-keyed caches invalidate exactly once. fn's error is
// returned as-is; mutations already applied when fn fails stay applied —
// the bracket groups generations, not atomicity, so callers validate
// before mutating. Incremental consumers must not sync against the table
// while the bracket is open (see EditsSince).
func (t *Table) ApplyBatch(fn func(*Table) error) error {
	t.beginBatch()
	defer t.endBatch()
	return fn(t)
}

func (t *Table) beginBatch() {
	t.batchDepth++
	if t.batchDepth == 1 {
		t.gen++
	}
}

func (t *Table) endBatch() { t.batchDepth-- }

// bump advances the generation for one mutation. Inside a batch the
// generation already moved when the outermost bracket opened and holds
// for the whole batch.
func (t *Table) bump() {
	if t.batchDepth == 0 {
		t.gen++
	}
}

// Generation returns the table's mutation counter. Any mutation — cell
// set, row insert or delete, batch — bumps it, so (pointer, generation)
// identifies one immutable snapshot of the contents — the invalidation
// key used by scan caches.
func (t *Table) Generation() uint64 { return t.gen }

// Get returns the value at (row, col). It panics on out-of-range indexes,
// matching slice semantics.
func (t *Table) Get(row, col int) Value { return t.rows[row][col] }

// GetRef returns the value at a cell reference.
func (t *Table) GetRef(ref CellRef) Value { return t.rows[ref.Row][ref.Col] }

// GetByName returns the value at (row, attribute name).
func (t *Table) GetByName(row int, name string) Value {
	return t.rows[row][t.schema.MustIndex(name)]
}

// Set overwrites the value at (row, col).
func (t *Table) Set(row, col int, v Value) {
	t.rows[row][col] = v
	t.logEdit(row, col)
}

// SetRef overwrites the value at a cell reference.
func (t *Table) SetRef(ref CellRef, v Value) {
	t.rows[ref.Row][ref.Col] = v
	t.logEdit(ref.Row, ref.Col)
}

// SetByName overwrites the value at (row, attribute name).
func (t *Table) SetByName(row int, name string, v Value) {
	col := t.schema.MustIndex(name)
	t.rows[row][col] = v
	t.logEdit(row, col)
}

// Row returns a copy of the i-th row.
func (t *Table) Row(i int) []Value { return append([]Value(nil), t.rows[i]...) }

// RowView returns the i-th row without copying. The returned slice aliases
// the table's storage and must be treated as read-only; it is intended for
// hot evaluation loops such as the DC interpreter.
func (t *Table) RowView(i int) []Value { return t.rows[i] }

// Clone deep-copies the table. The schema is shared (schemas are immutable
// after construction).
func (t *Table) Clone() *Table {
	rows := make([][]Value, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]Value(nil), r...)
	}
	return &Table{schema: t.schema, rows: rows}
}

// CopyFrom overwrites the table's contents with src's, reusing the existing
// row storage when the shape matches. A shape-matching copy records every
// cell whose content actually changed in the edit log, so scan indexes bound
// to this table catch up with per-bucket deltas instead of rebuilding; a
// shape change resets the log. It is the refresh step of the in-place repair
// protocol (repair.ScratchRepairer): steady-state refreshes of a pooled work
// table allocate nothing.
func (t *Table) CopyFrom(src *Table) {
	if t == src {
		return
	}
	if t.schema == src.schema || (t.schema != nil && t.schema.Equal(src.schema)) {
		if len(t.rows) == len(src.rows) {
			for i, srcRow := range src.rows {
				row := t.rows[i]
				for j, v := range srcRow {
					// Exact (kind-sensitive) comparison: SameContent unifies
					// numeric kinds, but downstream hash-join keys do not, so
					// the copy must be representation-faithful. NaN compares
					// unequal to itself and is conservatively re-copied.
					if row[j] != v {
						row[j] = v
						t.logEdit(i, j)
					}
				}
			}
			t.schema = src.schema
			return
		}
	}
	t.schema = src.schema
	if cap(t.rows) >= len(src.rows) {
		t.rows = t.rows[:len(src.rows)]
	} else {
		t.rows = make([][]Value, len(src.rows))
	}
	for i, srcRow := range src.rows {
		if cap(t.rows[i]) >= len(srcRow) {
			t.rows[i] = t.rows[i][:len(srcRow)]
			copy(t.rows[i], srcRow)
		} else {
			t.rows[i] = append([]Value(nil), srcRow...)
		}
	}
	t.bump()
	t.invalidateEdits()
}

// Equal reports whether two tables have equal schemas and cell-wise
// SameContent values.
func (t *Table) Equal(o *Table) bool {
	if !t.schema.Equal(o.schema) || len(t.rows) != len(o.rows) {
		return false
	}
	for i := range t.rows {
		for j := range t.rows[i] {
			if !t.rows[i][j].SameContent(o.rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// Cells returns every cell reference in vectorization order: row-major,
// exactly the x_T order of Example 2.5.
func (t *Table) Cells() []CellRef {
	refs := make([]CellRef, 0, t.NumCells())
	for i := range t.rows {
		for j := range t.rows[i] {
			refs = append(refs, CellRef{Row: i, Col: j})
		}
	}
	return refs
}

// VecIndex maps a cell reference to its position in the vectorized table.
func (t *Table) VecIndex(ref CellRef) int { return ref.Row*t.schema.Len() + ref.Col }

// RefAt maps a vectorized position back to a cell reference.
func (t *Table) RefAt(index int) CellRef {
	m := t.schema.Len()
	return CellRef{Row: index / m, Col: index % m}
}

// RefName renders a cell reference with the attribute name, e.g.
// "t5[Country]" (rows are 1-based in the paper's notation).
func (t *Table) RefName(ref CellRef) string {
	return fmt.Sprintf("t%d[%s]", ref.Row+1, t.schema.Col(ref.Col).Name)
}

// ParseRefName parses the "t<row>[<Attr>]" notation back into a CellRef.
func (t *Table) ParseRefName(s string) (CellRef, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "t") || !strings.HasSuffix(s, "]") {
		return CellRef{}, fmt.Errorf("table: cannot parse cell reference %q (want t<row>[<Attr>])", s)
	}
	open := strings.IndexByte(s, '[')
	if open < 0 {
		return CellRef{}, fmt.Errorf("table: cannot parse cell reference %q: no '['", s)
	}
	var row int
	if _, err := fmt.Sscanf(s[1:open], "%d", &row); err != nil {
		return CellRef{}, fmt.Errorf("table: bad row in cell reference %q: %w", s, err)
	}
	if row < 1 || row > t.NumRows() {
		return CellRef{}, fmt.Errorf("table: row %d out of range 1..%d", row, t.NumRows())
	}
	attr := s[open+1 : len(s)-1]
	col, ok := t.schema.Index(attr)
	if !ok {
		return CellRef{}, fmt.Errorf("table: no attribute %q", attr)
	}
	return CellRef{Row: row - 1, Col: col}, nil
}

// String renders the table as an aligned text grid, for logs and the CLI.
func (t *Table) String() string {
	widths := make([]int, t.NumCols())
	for j, c := range t.schema.Columns() {
		widths[j] = len(c.Name)
	}
	cells := make([][]string, len(t.rows))
	for i, row := range t.rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = v.String()
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	for j, c := range t.schema.Columns() {
		if j > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[j], c.Name)
	}
	b.WriteByte('\n')
	for j := range widths {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[j]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for j, cell := range row {
			if j > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
