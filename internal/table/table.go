package table

import (
	"fmt"
	"strings"
)

// CellRef addresses a single cell by row index and column index. It is the
// "player" identity used by the cell-Shapley game: the paper vectorizes the
// table as x_T = (t1[A1], t1[A2], ..., tn[Am]) and a CellRef is one slot of
// that vector.
type CellRef struct {
	Row int
	Col int
}

// String renders the reference as "t<row+1>[<col>]" to match the paper's
// t5[Country] notation when a schema is not at hand.
func (r CellRef) String() string { return fmt.Sprintf("t%d[col%d]", r.Row+1, r.Col) }

// Table is a mutable in-memory relation: a schema plus rows of typed values.
// Tables are not safe for concurrent mutation; the Shapley engine always
// works on private clones or pooled scratch copies.
type Table struct {
	schema *Schema
	rows   [][]Value
	// gen counts mutations. Index structures built over a table (e.g. the
	// violation-scan buckets in package dc) key their cache on (table,
	// generation) and rebuild only when the generation moved.
	gen uint64
}

// New creates an empty table with the given schema.
func New(schema *Schema) *Table {
	return &Table{schema: schema}
}

// FromStrings builds a table by parsing a rectangular grid of raw strings
// with ParseValue. It is the main constructor for literals in tests,
// examples and embedded datasets.
func FromStrings(names []string, grid [][]string) (*Table, error) {
	schema, err := SchemaOf(names...)
	if err != nil {
		return nil, err
	}
	t := New(schema)
	for i, rawRow := range grid {
		if len(rawRow) != len(names) {
			return nil, fmt.Errorf("table: row %d has %d values, want %d", i, len(rawRow), len(names))
		}
		row := make([]Value, len(rawRow))
		for j, raw := range rawRow {
			row[j] = ParseValue(raw)
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustFromStrings is FromStrings that panics on error.
func MustFromStrings(names []string, grid [][]string) *Table {
	t, err := FromStrings(names, grid)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.rows) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return t.schema.Len() }

// NumCells returns rows × columns — the number of Shapley players in the
// cell game.
func (t *Table) NumCells() int { return len(t.rows) * t.schema.Len() }

// Append validates and adds a row. The slice is copied.
func (t *Table) Append(row []Value) error {
	if err := t.schema.Validate(row); err != nil {
		return err
	}
	t.rows = append(t.rows, append([]Value(nil), row...))
	t.gen++
	return nil
}

// Generation returns the table's mutation counter. Any Set/Append bumps it,
// so (pointer, generation) identifies one immutable snapshot of the
// contents — the invalidation key used by scan caches.
func (t *Table) Generation() uint64 { return t.gen }

// Get returns the value at (row, col). It panics on out-of-range indexes,
// matching slice semantics.
func (t *Table) Get(row, col int) Value { return t.rows[row][col] }

// GetRef returns the value at a cell reference.
func (t *Table) GetRef(ref CellRef) Value { return t.rows[ref.Row][ref.Col] }

// GetByName returns the value at (row, attribute name).
func (t *Table) GetByName(row int, name string) Value {
	return t.rows[row][t.schema.MustIndex(name)]
}

// Set overwrites the value at (row, col).
func (t *Table) Set(row, col int, v Value) {
	t.rows[row][col] = v
	t.gen++
}

// SetRef overwrites the value at a cell reference.
func (t *Table) SetRef(ref CellRef, v Value) {
	t.rows[ref.Row][ref.Col] = v
	t.gen++
}

// SetByName overwrites the value at (row, attribute name).
func (t *Table) SetByName(row int, name string, v Value) {
	t.rows[row][t.schema.MustIndex(name)] = v
	t.gen++
}

// Row returns a copy of the i-th row.
func (t *Table) Row(i int) []Value { return append([]Value(nil), t.rows[i]...) }

// RowView returns the i-th row without copying. The returned slice aliases
// the table's storage and must be treated as read-only; it is intended for
// hot evaluation loops such as the DC interpreter.
func (t *Table) RowView(i int) []Value { return t.rows[i] }

// Clone deep-copies the table. The schema is shared (schemas are immutable
// after construction).
func (t *Table) Clone() *Table {
	rows := make([][]Value, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]Value(nil), r...)
	}
	return &Table{schema: t.schema, rows: rows}
}

// Equal reports whether two tables have equal schemas and cell-wise
// SameContent values.
func (t *Table) Equal(o *Table) bool {
	if !t.schema.Equal(o.schema) || len(t.rows) != len(o.rows) {
		return false
	}
	for i := range t.rows {
		for j := range t.rows[i] {
			if !t.rows[i][j].SameContent(o.rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// Cells returns every cell reference in vectorization order: row-major,
// exactly the x_T order of Example 2.5.
func (t *Table) Cells() []CellRef {
	refs := make([]CellRef, 0, t.NumCells())
	for i := range t.rows {
		for j := range t.rows[i] {
			refs = append(refs, CellRef{Row: i, Col: j})
		}
	}
	return refs
}

// VecIndex maps a cell reference to its position in the vectorized table.
func (t *Table) VecIndex(ref CellRef) int { return ref.Row*t.schema.Len() + ref.Col }

// RefAt maps a vectorized position back to a cell reference.
func (t *Table) RefAt(index int) CellRef {
	m := t.schema.Len()
	return CellRef{Row: index / m, Col: index % m}
}

// RefName renders a cell reference with the attribute name, e.g.
// "t5[Country]" (rows are 1-based in the paper's notation).
func (t *Table) RefName(ref CellRef) string {
	return fmt.Sprintf("t%d[%s]", ref.Row+1, t.schema.Col(ref.Col).Name)
}

// ParseRefName parses the "t<row>[<Attr>]" notation back into a CellRef.
func (t *Table) ParseRefName(s string) (CellRef, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "t") || !strings.HasSuffix(s, "]") {
		return CellRef{}, fmt.Errorf("table: cannot parse cell reference %q (want t<row>[<Attr>])", s)
	}
	open := strings.IndexByte(s, '[')
	if open < 0 {
		return CellRef{}, fmt.Errorf("table: cannot parse cell reference %q: no '['", s)
	}
	var row int
	if _, err := fmt.Sscanf(s[1:open], "%d", &row); err != nil {
		return CellRef{}, fmt.Errorf("table: bad row in cell reference %q: %w", s, err)
	}
	if row < 1 || row > t.NumRows() {
		return CellRef{}, fmt.Errorf("table: row %d out of range 1..%d", row, t.NumRows())
	}
	attr := s[open+1 : len(s)-1]
	col, ok := t.schema.Index(attr)
	if !ok {
		return CellRef{}, fmt.Errorf("table: no attribute %q", attr)
	}
	return CellRef{Row: row - 1, Col: col}, nil
}

// String renders the table as an aligned text grid, for logs and the CLI.
func (t *Table) String() string {
	widths := make([]int, t.NumCols())
	for j, c := range t.schema.Columns() {
		widths[j] = len(c.Name)
	}
	cells := make([][]string, len(t.rows))
	for i, row := range t.rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = v.String()
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	for j, c := range t.schema.Columns() {
		if j > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[j], c.Name)
	}
	b.WriteByte('\n')
	for j := range widths {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[j]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for j, cell := range row {
			if j > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
