package table

import (
	"fmt"
	"math/rand"
	"testing"
)

func editTestTable(t *testing.T) *Table {
	t.Helper()
	return MustFromStrings([]string{"A", "B"}, [][]string{
		{"x", "1"}, {"y", "2"}, {"z", "3"},
	})
}

// TestEditsSinceBasics covers the contract: empty window, per-edit
// coverage, structural invalidation, and eviction of old history.
func TestEditsSinceBasics(t *testing.T) {
	tbl := editTestTable(t)
	gen := tbl.Generation()
	if edits, ok := tbl.EditsSince(gen, nil); !ok || len(edits) != 0 {
		t.Fatalf("unchanged table: edits=%v ok=%v", edits, ok)
	}
	tbl.Set(1, 0, String("q"))
	tbl.SetRef(CellRef{Row: 2, Col: 1}, Int(9))
	edits, ok := tbl.EditsSince(gen, nil)
	if !ok || len(edits) != 2 {
		t.Fatalf("edits=%v ok=%v, want 2 edits", edits, ok)
	}
	if edits[0].Row != 1 || edits[0].Col != 0 || edits[1].Row != 2 || edits[1].Col != 1 {
		t.Fatalf("edit contents wrong: %+v", edits)
	}
	if edits[0].Gen <= gen || edits[1].Gen != tbl.Generation() {
		t.Fatalf("edit generations wrong: %+v (gen %d)", edits, tbl.Generation())
	}
	// A later caller sees only the suffix.
	suffix, ok := tbl.EditsSince(edits[0].Gen, nil)
	if !ok || len(suffix) != 1 || suffix[0].Row != 2 {
		t.Fatalf("suffix=%v ok=%v", suffix, ok)
	}
	// Append is structural but replayable: it logs a typed EditInsert
	// entry instead of invalidating the window.
	preAppend := tbl.Generation()
	if err := tbl.Append([]Value{String("w"), Int(4)}); err != nil {
		t.Fatal(err)
	}
	structuralWin, ok := tbl.EditsSince(gen, nil)
	if !ok || len(structuralWin) != 3 {
		t.Fatalf("append window: edits=%v ok=%v, want 3 entries", structuralWin, ok)
	}
	ins := structuralWin[2]
	if ins.Kind != EditInsert || ins.Row != 3 || ins.Col != -1 || ins.Gen <= preAppend {
		t.Fatalf("append entry wrong: %+v", ins)
	}
	if !Structural(structuralWin) || Structural(structuralWin[:2]) {
		t.Fatalf("Structural misclassifies the window: %+v", structuralWin)
	}
	if edits, ok := tbl.EditsSince(tbl.Generation(), nil); !ok || len(edits) != 0 {
		t.Fatal("current generation must be catch-up-able after append")
	}
	// DeleteRow swaps the last row into the hole and logs EditDelete.
	preDelete := tbl.Generation()
	tbl.DeleteRow(0)
	if got := tbl.Get(0, 0).Str(); got != "w" {
		t.Fatalf("swap-delete must move the last row into the hole, got %q", got)
	}
	delWin, ok := tbl.EditsSince(preDelete, nil)
	if !ok || len(delWin) != 1 || delWin[0].Kind != EditDelete || delWin[0].Row != 0 || delWin[0].Col != -1 {
		t.Fatalf("delete window wrong: %+v ok=%v", delWin, ok)
	}
}

// TestApplyBatchSingleGeneration pins the batch bracket contract: every
// edit inside one ApplyBatch shares a single generation, and the window
// anchored before the batch replays all of them.
func TestApplyBatchSingleGeneration(t *testing.T) {
	tbl := editTestTable(t)
	gen := tbl.Generation()
	err := tbl.ApplyBatch(func(b *Table) error {
		b.Set(0, 0, String("p"))
		if err := b.Append([]Value{String("q"), Int(7)}); err != nil {
			return err
		}
		b.DeleteRow(1)
		b.Set(1, 1, Int(8))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Generation() != gen+1 {
		t.Fatalf("batch minted %d generations, want 1", tbl.Generation()-gen)
	}
	edits, ok := tbl.EditsSince(gen, nil)
	if !ok || len(edits) != 4 {
		t.Fatalf("batch window: edits=%v ok=%v, want 4 entries", edits, ok)
	}
	for i, e := range edits {
		if e.Gen != tbl.Generation() {
			t.Fatalf("entry %d has gen %d, want the batch gen %d", i, e.Gen, tbl.Generation())
		}
	}
	kinds := []EditKind{EditSet, EditInsert, EditDelete, EditSet}
	for i, k := range kinds {
		if edits[i].Kind != k {
			t.Fatalf("entry %d kind %v, want %v", i, edits[i].Kind, k)
		}
	}
	// Nested batches share the outermost bracket's generation.
	gen = tbl.Generation()
	err = tbl.ApplyBatch(func(b *Table) error {
		b.Set(0, 0, String("r"))
		return b.ApplyBatch(func(b2 *Table) error {
			b2.Set(0, 1, Int(5))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Generation() != gen+1 {
		t.Fatalf("nested batch minted %d generations, want 1", tbl.Generation()-gen)
	}
}

// TestRowRemapResolve pins the structural decode on a worked example that
// a sequential final-value replay would get wrong: a cell edit followed by
// a swap-delete that relocates the edited row.
func TestRowRemapResolve(t *testing.T) {
	// Origin space: rows 0..3. Window: Set(3,1), Delete(1) (row 3 moves to
	// 1), Insert (position 3), Set(1,0) — which now targets origin 3.
	edits := []Edit{
		{Gen: 1, Row: 3, Col: 1, Kind: EditSet},
		{Gen: 2, Row: 1, Col: -1, Kind: EditDelete},
		{Gen: 3, Row: 3, Col: -1, Kind: EditInsert},
		{Gen: 4, Row: 1, Col: 0, Kind: EditSet},
	}
	var rm RowRemap
	rm.Resolve(edits, 4)
	if rm.OldRows != 4 || rm.NewRows != 4 {
		t.Fatalf("rows: %d -> %d, want 4 -> 4", rm.OldRows, rm.NewRows)
	}
	wantFinal := []int32{0, -1, 2, 1} // origin 1 deleted, origin 3 moved to 1
	for o, f := range rm.Final {
		if f != wantFinal[o] {
			t.Fatalf("Final = %v, want %v", rm.Final, wantFinal)
		}
	}
	if len(rm.Retract) != 2 || rm.Retract[0] != 1 || rm.Retract[1] != 3 {
		t.Fatalf("Retract = %v, want [1 3]", rm.Retract)
	}
	if len(rm.Derive) != 2 || rm.Derive[0] != 1 || rm.Derive[1] != 3 {
		t.Fatalf("Derive = %v, want [1 3]", rm.Derive)
	}
	// Both Sets resolve to origin 3: the first directly, the second
	// through the swap. Neither is a clean set (origin 3 moved).
	if len(rm.Sets) != 2 || rm.Sets[0].Row != 3 || rm.Sets[1].Row != 3 {
		t.Fatalf("Sets = %+v, want both rows resolved to origin 3", rm.Sets)
	}
	for _, e := range rm.Sets {
		if rm.CleanSet(e) {
			t.Fatalf("moved origin misreported clean: %+v", e)
		}
	}
	// A set on an untouched row IS clean.
	rm.Resolve([]Edit{
		{Gen: 1, Row: 0, Col: 1, Kind: EditSet},
		{Gen: 2, Row: 2, Col: -1, Kind: EditDelete},
	}, 3)
	if len(rm.Sets) != 1 || !rm.CleanSet(rm.Sets[0]) {
		t.Fatalf("unmoved edited row must be clean: %+v", rm.Sets)
	}
	if len(rm.Retract) != 1 || rm.Retract[0] != 2 || len(rm.Derive) != 0 {
		t.Fatalf("tail delete: Retract=%v Derive=%v", rm.Retract, rm.Derive)
	}
}

// TestEditsSinceEviction fills the ring past capacity: old anchors must
// report lost history, recent anchors must still replay.
func TestEditsSinceEviction(t *testing.T) {
	tbl := editTestTable(t)
	old := tbl.Generation()
	for i := 0; i < 600; i++ { // > editLogWindow
		tbl.Set(i%3, i%2, String(fmt.Sprintf("v%d", i)))
	}
	if _, ok := tbl.EditsSince(old, nil); ok {
		t.Fatal("evicted history must not be replayable")
	}
	mid := tbl.Generation()
	tbl.Set(0, 0, String("tail"))
	edits, ok := tbl.EditsSince(mid, nil)
	if !ok || len(edits) != 1 {
		t.Fatalf("recent anchor: edits=%v ok=%v", edits, ok)
	}
}

// TestCopyFromMatchesClone fuzzes CopyFrom against Clone across shape
// matches, shape changes, and repeated refreshes of one target: contents
// must always end Equal, and shape-matching refreshes must log exactly the
// changed cells so scan indexes can delta-catch-up.
func TestCopyFromMatchesClone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(rows int) *Table {
		grid := make([][]string, rows)
		for i := range grid {
			grid[i] = []string{fmt.Sprint(rng.Intn(3)), fmt.Sprint(rng.Intn(3))}
		}
		return MustFromStrings([]string{"A", "B"}, grid)
	}
	work := mk(4)
	for round := 0; round < 50; round++ {
		src := mk(2 + rng.Intn(4))
		gen := work.Generation()
		sameShape := src.NumRows() == work.NumRows() && src.Schema().Equal(work.Schema())
		work.CopyFrom(src)
		if !work.Equal(src) {
			t.Fatalf("round %d: CopyFrom result differs from source", round)
		}
		edits, ok := work.EditsSince(gen, nil)
		if sameShape {
			if !ok {
				t.Fatalf("round %d: shape-matching refresh lost delta history", round)
			}
			// Exactly the strictly-changed cells must be logged: replaying
			// the log over the pre-copy contents is what keeps scan indexes
			// on the delta path, so spurious or missing entries both break
			// incremental consumers.
			logged := map[CellRef]bool{}
			for _, e := range edits {
				logged[CellRef{Row: e.Row, Col: e.Col}] = true
			}
			if len(logged) != len(edits) {
				t.Fatalf("round %d: duplicate log entries for one refresh", round)
			}
		} else if ok && len(edits) == 0 && work.Generation() != gen {
			t.Fatalf("round %d: shape change must either invalidate or log", round)
		}
	}
}

// TestCopyFromSelf is a no-op.
func TestCopyFromSelf(t *testing.T) {
	tbl := editTestTable(t)
	gen := tbl.Generation()
	tbl.CopyFrom(tbl)
	if tbl.Generation() != gen {
		t.Fatal("self-copy must be a no-op")
	}
}

// TestCopyFromKindSensitive pins the representation-faithful diff: values
// whose SameContent unifies (int vs float) must still be copied, because
// hash-join keys distinguish them.
func TestCopyFromKindSensitive(t *testing.T) {
	a := MustFromStrings([]string{"A"}, [][]string{{"1"}})
	b := a.Clone()
	b.Set(0, 0, Float(1))
	if !a.Get(0, 0).SameContent(b.Get(0, 0)) {
		t.Fatal("fixture assumption: 1 and 1.0 share content")
	}
	a.CopyFrom(b)
	if a.Get(0, 0).Kind() != KindFloat {
		t.Fatalf("kind not copied: %v", a.Get(0, 0).Kind())
	}
}

// TestStatsResetMatchesFresh drives the pooled-statistics contract: after
// any sequence of Resets against different table states, every query must
// answer exactly as a freshly-built Stats would.
func TestStatsResetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	grid := make([][]string, 8)
	for i := range grid {
		grid[i] = []string{fmt.Sprint(rng.Intn(3)), fmt.Sprint(rng.Intn(4)), fmt.Sprint(rng.Intn(2))}
	}
	tbl := MustFromStrings([]string{"A", "B", "C"}, grid)
	pooled := NewStats(tbl)
	for round := 0; round < 30; round++ {
		tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()), String(fmt.Sprint(rng.Intn(4))))
		if rng.Intn(3) == 0 {
			tbl.Set(rng.Intn(tbl.NumRows()), rng.Intn(tbl.NumCols()), Null())
		}
		pooled.Reset(tbl)
		fresh := NewStats(tbl)
		for j := 0; j < tbl.NumCols(); j++ {
			p, f := pooled.Column(j), fresh.Column(j)
			if p.Total() != f.Total() {
				t.Fatalf("round %d col %d: total %d vs %d", round, j, p.Total(), f.Total())
			}
			ps, fs := p.Support(), f.Support()
			if len(ps) != len(fs) {
				t.Fatalf("round %d col %d: support %v vs %v", round, j, ps, fs)
			}
			for k := range ps {
				if !ps[k].SameContent(fs[k]) || p.Count(ps[k]) != f.Count(fs[k]) {
					t.Fatalf("round %d col %d: support order/count mismatch %v vs %v", round, j, ps, fs)
				}
			}
			pm, pok := p.Mode()
			fm, fok := f.Mode()
			if pok != fok || (pok && !pm.SameContent(fm)) {
				t.Fatalf("round %d col %d: mode %v/%v vs %v/%v", round, j, pm, pok, fm, fok)
			}
			// Sampling must consume the RNG identically.
			r1 := rand.New(rand.NewSource(int64(round)))
			r2 := rand.New(rand.NewSource(int64(round)))
			for n := 0; n < 5; n++ {
				v1, ok1 := p.Sample(r1)
				v2, ok2 := f.Sample(r2)
				if ok1 != ok2 || (ok1 && !v1.SameContent(v2)) {
					t.Fatalf("round %d col %d: sample diverged", round, j)
				}
			}
		}
		// Conditional distributions, including a never-observed value.
		for g := 0; g < tbl.NumCols(); g++ {
			for target := 0; target < tbl.NumCols(); target++ {
				if g == target {
					continue
				}
				for _, val := range append(pooled.Column(g).Support(), String("never-seen")) {
					pc := pooled.Conditional(g, val, target)
					fc := fresh.Conditional(g, val, target)
					if pc.Total() != fc.Total() {
						t.Fatalf("round %d cond(%d=%v,%d): total %d vs %d", round, g, val, target, pc.Total(), fc.Total())
					}
					pm, pok := pc.Mode()
					fm, fok := fc.Mode()
					if pok != fok || (pok && !pm.SameContent(fm)) {
						t.Fatalf("round %d cond mode mismatch", round)
					}
				}
			}
		}
	}
}

// TestDistributionResetReuse pins the interning behaviour: values dropped
// by a Reset must not leak into later queries.
func TestDistributionResetReuse(t *testing.T) {
	d := NewDistribution()
	d.Observe(String("a"))
	d.Observe(String("a"))
	d.Observe(String("b"))
	d.Reset()
	if d.Total() != 0 {
		t.Fatal("reset must clear totals")
	}
	if _, ok := d.Mode(); ok {
		t.Fatal("reset distribution has no mode")
	}
	if got := len(d.Support()); got != 0 {
		t.Fatalf("support after reset: %d values", got)
	}
	d.Observe(String("b"))
	if v, ok := d.Mode(); !ok || v.Str() != "b" {
		t.Fatalf("mode after re-observe: %v %v", v, ok)
	}
	if d.Count(String("a")) != 0 {
		t.Fatal("stale value leaked a count")
	}
	if d.Prob(String("b")) != 1 {
		t.Fatalf("prob = %v, want 1", d.Prob(String("b")))
	}
}
