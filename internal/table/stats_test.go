package table

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func statsTable(t *testing.T) *Table {
	t.Helper()
	return MustFromStrings([]string{"City", "Country"}, [][]string{
		{"Madrid", "Spain"},
		{"Madrid", "Spain"},
		{"Madrid", "España"},
		{"Barcelona", "Spain"},
		{"Lisbon", "Portugal"},
		{"", "Portugal"}, // null City
	})
}

func TestDistributionObserveAndCounts(t *testing.T) {
	d := NewDistribution()
	d.Observe(String("a"))
	d.Observe(String("a"))
	d.Observe(String("b"))
	d.Observe(Null()) // ignored
	if d.Total() != 3 {
		t.Fatalf("Total = %d, want 3", d.Total())
	}
	if d.Count(String("a")) != 2 || d.Count(String("b")) != 1 || d.Count(String("c")) != 0 {
		t.Fatalf("counts wrong: a=%d b=%d c=%d", d.Count(String("a")), d.Count(String("b")), d.Count(String("c")))
	}
	if p := d.Prob(String("a")); math.Abs(p-2.0/3.0) > 1e-12 {
		t.Fatalf("Prob(a) = %v", p)
	}
	if len(d.Support()) != 2 {
		t.Fatalf("Support = %v", d.Support())
	}
}

func TestDistributionMode(t *testing.T) {
	d := NewDistribution()
	if _, ok := d.Mode(); ok {
		t.Fatal("empty distribution has no mode")
	}
	d.Observe(String("x"))
	d.Observe(String("y"))
	d.Observe(String("y"))
	if m, ok := d.Mode(); !ok || !m.Equal(String("y")) {
		t.Fatalf("Mode = %v, %v", m, ok)
	}
}

func TestDistributionModeTieBreaksFirstObserved(t *testing.T) {
	d := NewDistribution()
	d.Observe(String("first"))
	d.Observe(String("second"))
	if m, _ := d.Mode(); !m.Equal(String("first")) {
		t.Fatalf("tie must break to first observed, got %v", m)
	}
}

func TestDistributionProbZeroTotal(t *testing.T) {
	d := NewDistribution()
	if p := d.Prob(String("a")); p != 0 {
		t.Fatalf("Prob on empty = %v", p)
	}
}

func TestDistributionSampleMatchesFrequencies(t *testing.T) {
	d := NewDistribution()
	for i := 0; i < 9; i++ {
		d.Observe(String("common"))
	}
	d.Observe(String("rare"))
	rng := rand.New(rand.NewSource(7))
	common := 0
	const n = 20000
	for i := 0; i < n; i++ {
		v, ok := d.Sample(rng)
		if !ok {
			t.Fatal("sample failed")
		}
		if v.Equal(String("common")) {
			common++
		}
	}
	frac := float64(common) / n
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("sampled frequency of common = %v, want ~0.9", frac)
	}
}

func TestDistributionSampleEmpty(t *testing.T) {
	d := NewDistribution()
	if _, ok := d.Sample(rand.New(rand.NewSource(1))); ok {
		t.Fatal("sampling empty distribution must fail")
	}
	if _, ok := d.SampleOther(rand.New(rand.NewSource(1)), String("x")); ok {
		t.Fatal("SampleOther on empty distribution must fail")
	}
}

func TestDistributionSampleOtherExcludes(t *testing.T) {
	d := NewDistribution()
	d.Observe(String("a"))
	d.Observe(String("b"))
	d.Observe(String("c"))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		v, ok := d.SampleOther(rng, String("a"))
		if !ok {
			t.Fatal("SampleOther failed")
		}
		if v.Equal(String("a")) {
			t.Fatal("SampleOther returned the excluded value despite alternatives")
		}
	}
}

func TestDistributionSampleOtherSingleton(t *testing.T) {
	d := NewDistribution()
	d.Observe(String("only"))
	v, ok := d.SampleOther(rand.New(rand.NewSource(3)), String("only"))
	if !ok || !v.Equal(String("only")) {
		t.Fatalf("singleton SampleOther = %v, %v; must return the only value", v, ok)
	}
}

func TestDistributionSampleOtherUnobservedExclude(t *testing.T) {
	d := NewDistribution()
	d.Observe(String("a"))
	v, ok := d.SampleOther(rand.New(rand.NewSource(3)), String("zzz"))
	if !ok || !v.Equal(String("a")) {
		t.Fatalf("SampleOther with unobserved exclude = %v, %v", v, ok)
	}
}

func TestDistributionEntriesSorted(t *testing.T) {
	d := NewDistribution()
	for i := 0; i < 3; i++ {
		d.Observe(String("three"))
	}
	d.Observe(String("one"))
	d.Observe(String("two"))
	d.Observe(String("two"))
	entries := d.Entries()
	if len(entries) != 3 {
		t.Fatalf("Entries len = %d", len(entries))
	}
	if !entries[0].Value.Equal(String("three")) || entries[0].Count != 3 {
		t.Errorf("entries[0] = %+v", entries[0])
	}
	if !entries[1].Value.Equal(String("two")) || entries[1].Count != 2 {
		t.Errorf("entries[1] = %+v", entries[1])
	}
}

func TestStatsColumnDistributions(t *testing.T) {
	s := NewStats(statsTable(t))
	city := s.ColumnByName("City")
	if city.Total() != 5 { // one null excluded
		t.Fatalf("City total = %d, want 5", city.Total())
	}
	if m, _ := city.Mode(); !m.Equal(String("Madrid")) {
		t.Fatalf("City mode = %v", m)
	}
	if c := s.Column(1).Count(String("Spain")); c != 3 {
		t.Fatalf("Spain count = %d", c)
	}
}

func TestStatsConditional(t *testing.T) {
	tbl := statsTable(t)
	s := NewStats(tbl)
	ci, co := tbl.Schema().MustIndex("City"), tbl.Schema().MustIndex("Country")
	d := s.Conditional(ci, String("Madrid"), co)
	if d.Total() != 3 || d.Count(String("Spain")) != 2 || d.Count(String("España")) != 1 {
		t.Fatalf("conditional Country|City=Madrid wrong: total=%d", d.Total())
	}
	if m, ok := s.ConditionalMode(ci, String("Madrid"), co); !ok || !m.Equal(String("Spain")) {
		t.Fatalf("ConditionalMode = %v, %v", m, ok)
	}
}

func TestStatsConditionalUnseenFallsBack(t *testing.T) {
	tbl := statsTable(t)
	s := NewStats(tbl)
	ci, co := 0, 1
	// "Paris" never appears; fall back to unconditional Country mode.
	m, ok := s.ConditionalMode(ci, String("Paris"), co)
	if !ok {
		t.Fatal("fallback mode must exist")
	}
	want, _ := s.Column(co).Mode()
	if !m.Equal(want) {
		t.Fatalf("fallback = %v, want unconditional mode %v", m, want)
	}
}

func TestStatsConditionalSkipsNullGiven(t *testing.T) {
	tbl := statsTable(t)
	s := NewStats(tbl)
	// Row with null City must not create a conditional bucket keyed by null.
	d := s.Conditional(0, Null(), 1)
	if d.Total() != 0 {
		t.Fatalf("conditional on null given must be empty, got total=%d", d.Total())
	}
}

func TestStatsSnapshotIndependentOfLaterMutation(t *testing.T) {
	tbl := statsTable(t)
	s := NewStats(tbl)
	before := s.ColumnByName("City").Count(String("Madrid"))
	tbl.SetByName(0, "City", String("Valencia"))
	after := s.ColumnByName("City").Count(String("Madrid"))
	if before != after {
		t.Fatal("Stats must snapshot the table at construction")
	}
}

func TestStatsProbabilitiesSumToOne(t *testing.T) {
	s := NewStats(statsTable(t))
	f := func(col uint8) bool {
		d := s.Column(int(col) % 2)
		sum := 0.0
		for _, v := range d.Support() {
			sum += d.Prob(v)
		}
		return d.Total() == 0 || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
