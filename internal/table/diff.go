package table

import (
	"fmt"
	"strings"
)

// CellDiff records one cell whose value differs between a dirty table T_d
// and its repaired version T_c — a "blue cell" in Figure 2b of the paper.
type CellDiff struct {
	Ref   CellRef
	Dirty Value // value in T_d
	Clean Value // value in T_c
}

// Diff returns the cells at which dirty and clean differ, in vectorization
// order. Both tables must have the same schema and row count.
func Diff(dirty, clean *Table) ([]CellDiff, error) {
	if !dirty.Schema().Equal(clean.Schema()) {
		return nil, fmt.Errorf("table: diff over different schemas (%s) vs (%s)", dirty.Schema(), clean.Schema())
	}
	if dirty.NumRows() != clean.NumRows() {
		return nil, fmt.Errorf("table: diff over different row counts %d vs %d", dirty.NumRows(), clean.NumRows())
	}
	var diffs []CellDiff
	for i := 0; i < dirty.NumRows(); i++ {
		for j := 0; j < dirty.NumCols(); j++ {
			dv, cv := dirty.Get(i, j), clean.Get(i, j)
			if !dv.SameContent(cv) {
				diffs = append(diffs, CellDiff{Ref: CellRef{Row: i, Col: j}, Dirty: dv, Clean: cv})
			}
		}
	}
	return diffs, nil
}

// DiffExact returns the cells at which dirty and clean differ by exact
// representation (kind-sensitive Go inequality), in vectorization order.
// Where Diff unifies numeric kinds through SameContent, DiffExact records
// a cell whose repair changed Int(5) to Float(5.0) — which Diff deems
// unchanged — so replaying the result onto a clone of dirty reproduces
// clean cell-for-cell, representation included (the repair-target cache's
// replay contract; kind-sensitive consumers like hash-join keys must not
// see different representations on a cache hit than on a miss). NaN cells
// compare unequal to themselves and are conservatively included, exactly
// as Table.CopyFrom re-copies them. Every SameContent difference is also
// an exact difference, so Diff's output is the !SameContent subset of
// DiffExact's.
func DiffExact(dirty, clean *Table) ([]CellDiff, error) {
	if !dirty.Schema().Equal(clean.Schema()) {
		return nil, fmt.Errorf("table: diff over different schemas (%s) vs (%s)", dirty.Schema(), clean.Schema())
	}
	if dirty.NumRows() != clean.NumRows() {
		return nil, fmt.Errorf("table: diff over different row counts %d vs %d", dirty.NumRows(), clean.NumRows())
	}
	var diffs []CellDiff
	for i := 0; i < dirty.NumRows(); i++ {
		for j := 0; j < dirty.NumCols(); j++ {
			dv, cv := dirty.Get(i, j), clean.Get(i, j)
			if dv != cv {
				diffs = append(diffs, CellDiff{Ref: CellRef{Row: i, Col: j}, Dirty: dv, Clean: cv})
			}
		}
	}
	return diffs, nil
}

// FormatDiffs renders diffs using the paper's cell notation, one per line:
//
//	t5[Country]: España -> Spain
func FormatDiffs(t *Table, diffs []CellDiff) string {
	var b strings.Builder
	for _, d := range diffs {
		fmt.Fprintf(&b, "%s: %s -> %s\n", t.RefName(d.Ref), d.Dirty, d.Clean)
	}
	return b.String()
}
