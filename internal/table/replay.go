package table

// Structural replay support.
//
// A window of typed edits that contains row inserts or deletes cannot be
// replayed edit-by-edit against the table's *final* contents: a position
// named by an older edit may hold a different row by the time the window
// ends (swap-deletes renumber the moved survivor). Every incremental
// consumer therefore decodes the window once through a RowRemap, which
// replays the position transcript symbolically — rows, not values — and
// reduces the window to three facts expressed against stable
// coordinates:
//
//   - Retract: origin indexes (positions at the window's start) whose
//     derived state must be dropped — rows the window deleted or moved;
//   - Derive: final positions that must be (re)derived from the final
//     table — landing spots of moved survivors and in-window inserts;
//   - Sets: the window's cell edits with rows resolved to origins, so a
//     consumer can tell a clean in-place overwrite (retract + re-derive
//     that one row) from an edit the structural phases already cover.
//
// Rows in neither set kept their index and their bytes (except for
// resolved Sets): consumers leave their derived state untouched, which
// is what makes structural replay sublinear in the table.

// Structural reports whether a window of typed edits contains row
// inserts or deletes. Windows without them take the cheaper per-cell
// replay path every consumer retains.
func Structural(edits []Edit) bool {
	for _, e := range edits {
		if e.Kind != EditSet {
			return true
		}
	}
	return false
}

// RowRemap decodes the structural effect of one typed edit window over a
// consumer's snapshot of OldRows rows. Consumers own one and reuse its
// storage across syncs; Resolve repopulates every field.
type RowRemap struct {
	// OldRows and NewRows are the row counts at the window's start and
	// end. Consumers compare NewRows against the live table as a cheap
	// integrity check before trusting the decode.
	OldRows, NewRows int
	// Final[o] is origin o's index in the final table, or -1 when the
	// window deleted it. Final[o] == o exactly for rows the window never
	// moved.
	Final []int32
	// Retract lists, ascending, every origin whose derived state is
	// stale: deleted rows and moved survivors (a moved survivor's new
	// index appears in Derive, so it is retracted and re-derived rather
	// than remapped in place).
	Retract []int32
	// Derive lists, ascending, every final position that must be
	// (re)derived from the final table: landing spots of moved survivors
	// and of rows born inside the window.
	Derive []int32
	// Sets holds the window's cell edits with Row resolved to the row's
	// origin, -1 when the row was born inside the window (already fully
	// covered by Derive, or deleted again before the window closed).
	Sets []Edit
	// cur is the replay scratch: position -> origin during the
	// transcript walk.
	cur []int32
}

// CleanSet reports whether e — an entry of Sets — targets a row the
// structural phases leave in place: a surviving, unmoved origin. Only
// such edits need per-cell handling; every other Set hits a row that
// Retract/Derive already cover wholesale.
func (r *RowRemap) CleanSet(e Edit) bool {
	return e.Row >= 0 && r.Final[e.Row] == int32(e.Row)
}

// Resolve decodes edits — a window obtained from EditsSince by a
// consumer whose snapshot had oldRows rows — into r. The walk is
// O(oldRows + newRows + len(edits)) and allocates only when the window
// outsizes the pooled scratch.
func (r *RowRemap) Resolve(edits []Edit, oldRows int) {
	r.OldRows = oldRows
	if cap(r.cur) >= oldRows {
		r.cur = r.cur[:oldRows]
	} else {
		r.cur = make([]int32, oldRows, oldRows+len(edits))
	}
	for i := range r.cur {
		r.cur[i] = int32(i)
	}
	r.Sets = r.Sets[:0]
	for _, e := range edits {
		switch e.Kind {
		case EditSet:
			if e.Row >= 0 && e.Row < len(r.cur) {
				r.Sets = append(r.Sets, Edit{Gen: e.Gen, Row: int(r.cur[e.Row]), Col: e.Col, Kind: EditSet})
			}
		case EditInsert:
			r.cur = append(r.cur, -1)
		case EditDelete:
			if e.Row < 0 || e.Row >= len(r.cur) {
				continue // defensive: a malformed entry cannot panic the decode
			}
			last := len(r.cur) - 1
			r.cur[e.Row] = r.cur[last]
			r.cur = r.cur[:last]
		}
	}
	r.NewRows = len(r.cur)
	if cap(r.Final) >= oldRows {
		r.Final = r.Final[:oldRows]
	} else {
		r.Final = make([]int32, oldRows)
	}
	for i := range r.Final {
		r.Final[i] = -1
	}
	for p, o := range r.cur {
		if o >= 0 {
			r.Final[o] = int32(p)
		}
	}
	r.Retract = r.Retract[:0]
	for o, f := range r.Final {
		if f != int32(o) {
			r.Retract = append(r.Retract, int32(o))
		}
	}
	r.Derive = r.Derive[:0]
	for p, o := range r.cur {
		if o != int32(p) {
			r.Derive = append(r.Derive, int32(p))
		}
	}
}
