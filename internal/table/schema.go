package table

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table schema.
type Column struct {
	// Name is the attribute name, e.g. "Country". Names are unique within
	// a schema and matched case-sensitively.
	Name string
	// Kind is the declared kind of the column. KindNull means "untyped":
	// any value is accepted (useful for ad-hoc CSV loads).
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns, validating name uniqueness.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("table: duplicate column name %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for literals in
// tests and examples.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// SchemaOf builds an untyped schema from attribute names.
func SchemaOf(names ...string) (*Schema, error) {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n}
	}
	return NewSchema(cols...)
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex is Index that panics when the column does not exist.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("table: no column %q in schema (%s)", name, strings.Join(s.Names(), ", ")))
	}
	return i
}

// Equal reports whether two schemas have identical column names and kinds
// in the same order.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// Validate checks a row of values against the schema: correct arity, and
// each non-null value matching a typed column's kind (int is accepted by a
// float column).
func (s *Schema) Validate(row []Value) error {
	if len(row) != len(s.cols) {
		return fmt.Errorf("table: row has %d values, schema has %d columns", len(row), len(s.cols))
	}
	for i, v := range row {
		c := s.cols[i]
		if c.Kind == KindNull || v.IsNull() {
			continue
		}
		if v.Kind() == c.Kind {
			continue
		}
		if c.Kind == KindFloat && v.Kind() == KindInt {
			continue
		}
		return fmt.Errorf("table: column %q expects %v, got %v (%s)", c.Name, c.Kind, v.Kind(), v)
	}
	return nil
}

// String renders the schema as "Name:kind, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		if c.Kind == KindNull {
			parts[i] = c.Name
		} else {
			parts[i] = c.Name + ":" + c.Kind.String()
		}
	}
	return strings.Join(parts, ", ")
}
