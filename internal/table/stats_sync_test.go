package table

import (
	"fmt"
	"math/rand"
	"testing"
)

// sameDistribution asserts d answers every query exactly as ref does —
// including the first-observed iteration order that Mode ties and Sample
// depend on.
func sameDistribution(t *testing.T, label string, d, ref *Distribution) {
	t.Helper()
	if d.Total() != ref.Total() {
		t.Fatalf("%s: total %d vs %d", label, d.Total(), ref.Total())
	}
	got, want := d.Support(), ref.Support()
	if len(got) != len(want) {
		t.Fatalf("%s: support size %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: support[%d] = %v vs %v (order matters: tie-breaks)", label, i, got[i], want[i])
		}
		if d.Count(got[i]) != ref.Count(want[i]) {
			t.Fatalf("%s: count(%v) = %d vs %d", label, got[i], d.Count(got[i]), ref.Count(want[i]))
		}
	}
	gm, gok := d.Mode()
	wm, wok := ref.Mode()
	if gok != wok || gm != wm {
		t.Fatalf("%s: mode (%v, %v) vs (%v, %v)", label, gm, gok, wm, wok)
	}
	// Sample must consume the RNG identically and draw the same values.
	r1, r2 := rand.New(rand.NewSource(99)), rand.New(rand.NewSource(99))
	for i := 0; i < 8; i++ {
		gv, gok := d.Sample(r1)
		wv, wok := ref.Sample(r2)
		if gok != wok || gv != wv {
			t.Fatalf("%s: sample %d: (%v, %v) vs (%v, %v)", label, i, gv, gok, wv, wok)
		}
	}
}

// sameStats asserts synced stats answer exactly as freshly-built stats for
// every column and for the conditional distributions of every (given,
// target) pair over every observed given-value.
func sameStats(t *testing.T, label string, synced, ref *Stats, tbl *Table) {
	t.Helper()
	for j := 0; j < tbl.NumCols(); j++ {
		sameDistribution(t, fmt.Sprintf("%s: col %d", label, j), synced.Column(j), ref.Column(j))
	}
	for given := 0; given < tbl.NumCols(); given++ {
		for target := 0; target < tbl.NumCols(); target++ {
			if given == target {
				continue
			}
			for _, val := range ref.Column(given).Support() {
				sameDistribution(t,
					fmt.Sprintf("%s: cond(%d=%v -> %d)", label, given, val, target),
					synced.Conditional(given, val, target),
					ref.Conditional(given, val, target))
			}
		}
	}
}

// statsEditValues is the value alphabet of the randomized edit streams:
// duplicates, nulls, both numeric kinds, NaN-free.
var statsEditValues = []Value{
	String("a"), String("b"), String("c"), String("a"),
	Int(1), Int(2), Float(1.5), Null(), String(""),
}

func randomStatsTable(rng *rand.Rand, rows, cols int) *Table {
	names := make([]string, cols)
	for j := range names {
		names[j] = fmt.Sprintf("C%d", j)
	}
	schema, err := SchemaOf(names...)
	if err != nil {
		panic(err)
	}
	tbl := New(schema)
	for i := 0; i < rows; i++ {
		row := make([]Value, cols)
		for j := range row {
			row[j] = statsEditValues[rng.Intn(len(statsEditValues))]
		}
		if err := tbl.Append(row); err != nil {
			panic(err)
		}
	}
	return tbl
}

// TestStatsSyncEquivalenceRandom is the tentpole's fuzz-equivalence
// contract: after any stream of single-cell edits, Sync answers exactly as
// a full rebuild — including tie-break order — whether it took the delta
// path or fell back.
func TestStatsSyncEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		rows, cols := 2+rng.Intn(8), 1+rng.Intn(4)
		tbl := randomStatsTable(rng, rows, cols)
		synced := NewStats(tbl)
		tookDelta := false
		for batch := 0; batch < 6; batch++ {
			for e := 0; e < rng.Intn(5); e++ {
				tbl.Set(rng.Intn(rows), rng.Intn(cols), statsEditValues[rng.Intn(len(statsEditValues))])
			}
			if synced.Sync(tbl) {
				tookDelta = true
			}
			sameStats(t, fmt.Sprintf("trial %d batch %d", trial, batch), synced, NewStats(tbl), tbl)
		}
		if trial == 0 && !tookDelta {
			t.Fatal("delta path never taken on a small edit stream")
		}
	}
}

// TestStatsSyncOverrunFallsBack: an edit stream larger than the table's
// edit-log window must fall back to a full rebuild and still answer
// exactly.
func TestStatsSyncOverrunFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := randomStatsTable(rng, 6, 3)
	s := NewStats(tbl)
	for e := 0; e < editLogWindow+10; e++ {
		tbl.Set(rng.Intn(6), rng.Intn(3), statsEditValues[rng.Intn(len(statsEditValues))])
	}
	if s.Sync(tbl) {
		t.Fatal("overrun edit stream must fall back to a full rebuild")
	}
	sameStats(t, "overrun", s, NewStats(tbl), tbl)
}

// TestStatsSyncStructuralDelta: Append and DeleteRow now ride the typed
// edit log; Sync stays on the delta path and still answers exactly as a
// rebuild, including first-observed order.
func TestStatsSyncStructuralDelta(t *testing.T) {
	tbl := MustFromStrings([]string{"A", "B"}, [][]string{{"x", "1"}, {"y", "2"}})
	s := NewStats(tbl)
	if err := tbl.Append([]Value{String("z"), Int(3)}); err != nil {
		t.Fatal(err)
	}
	if !s.Sync(tbl) {
		t.Fatal("insert-only window must take the delta path")
	}
	sameStats(t, "append", s, NewStats(tbl), tbl)
	// A delete reshuffles row order (swap-delete) and must still match a
	// rebuild's first-observed order exactly.
	tbl.DeleteRow(0)
	if !s.Sync(tbl) {
		t.Fatal("delete window must take the delta path")
	}
	sameStats(t, "delete", s, NewStats(tbl), tbl)
	// Interleaved cell + structural edits in one window.
	tbl.Set(0, 0, String("w"))
	if err := tbl.Append([]Value{String("v"), Int(4)}); err != nil {
		t.Fatal(err)
	}
	tbl.Set(1, 1, Int(9))
	if !s.Sync(tbl) {
		t.Fatal("mixed window must take the delta path")
	}
	sameStats(t, "mixed", s, NewStats(tbl), tbl)
}

// TestStatsConditionalDirtyBits pins the per-(column-pair) dirty
// tracking: a synced cell edit in one column must not invalidate cached
// conditional distributions over unrelated column pairs.
func TestStatsConditionalDirtyBits(t *testing.T) {
	tbl := MustFromStrings([]string{"A", "B", "C"}, [][]string{
		{"x", "1", "p"}, {"y", "2", "q"}, {"x", "2", "p"},
	})
	s := NewStats(tbl)
	s.Conditional(0, String("x"), 1) // materialize pair (A,B)
	s.Conditional(0, String("x"), 2) // materialize pair (A,C)
	ab, ac := s.cond[[2]int{0, 1}], s.cond[[2]int{0, 2}]
	abBuilds, acBuilds := ab.builds, ac.builds
	// Edit column C only: pair (A,B) must not rebuild, pair (A,C) must.
	tbl.Set(0, 2, String("r"))
	if !s.Sync(tbl) {
		t.Fatal("single-cell edit must take the delta path")
	}
	s.Conditional(0, String("x"), 1)
	s.Conditional(0, String("x"), 2)
	if ab.builds != abBuilds {
		t.Fatal("conditional over untouched pair rebuilt across Sync")
	}
	if ac.builds == acBuilds {
		t.Fatal("conditional over edited pair answered stale")
	}
	// A structural edit changes row membership in every column: both pairs
	// are dirty.
	abBuilds, acBuilds = ab.builds, ac.builds
	tbl.DeleteRow(1)
	if !s.Sync(tbl) {
		t.Fatal("structural window must take the delta path")
	}
	s.Conditional(0, String("x"), 1)
	s.Conditional(0, String("x"), 2)
	if ab.builds == abBuilds || ac.builds == acBuilds {
		t.Fatal("structural edit must dirty every conditional pair")
	}
	sameStats(t, "dirty-bits", s, NewStats(tbl), tbl)
}

// TestStatsSyncDifferentTableFallsBack: pointing a pooled Stats at another
// table is a rebuild, after which deltas resume against the new table.
func TestStatsSyncDifferentTableFallsBack(t *testing.T) {
	a := MustFromStrings([]string{"A"}, [][]string{{"x"}, {"y"}})
	b := MustFromStrings([]string{"A"}, [][]string{{"p"}, {"q"}})
	s := NewStats(a)
	if s.Sync(b) {
		t.Fatal("different table must fall back")
	}
	sameStats(t, "retarget", s, NewStats(b), b)
	b.Set(0, 0, String("r"))
	if !s.Sync(b) {
		t.Fatal("delta path must resume after the rebuild")
	}
	sameStats(t, "retarget+delta", s, NewStats(b), b)
}

// TestStatsSyncNoop: syncing an unchanged table is a cheap no-op on the
// delta path.
func TestStatsSyncNoop(t *testing.T) {
	tbl := MustFromStrings([]string{"A"}, [][]string{{"x"}})
	s := NewStats(tbl)
	if !s.Sync(tbl) {
		t.Fatal("unchanged table must stay on the delta path")
	}
	sameStats(t, "noop", s, NewStats(tbl), tbl)
}

// TestStatsSyncFirstObservedOrder pins the subtle case that rules out
// naive count deltas: editing an *earlier* row must move the column's
// first-observed order exactly as a rebuild would (Mode tie-breaks toward
// the earliest-observed value).
func TestStatsSyncFirstObservedOrder(t *testing.T) {
	tbl := MustFromStrings([]string{"A"}, [][]string{{"a"}, {"b"}, {"a"}})
	s := NewStats(tbl)
	// After the edit the column is [b, b, a]: a rebuild observes b first,
	// so the b/a tie... is no tie (b count 2) — use counts that tie.
	tbl.Set(2, 0, String("b"))
	tbl.Set(0, 0, String("a"))
	// Column is [a, b, b]: no tie either; force the tie case directly.
	tbl.Set(1, 0, String("c"))
	tbl.Set(2, 0, String("c"))
	tbl.Set(0, 0, String("c"))
	tbl.Set(1, 0, String("a"))
	tbl.Set(2, 0, String("a"))
	// Column is [c, a, a] -> now [a?]... final: row0=c, row1=a, row2=a.
	tbl.Set(0, 0, String("a"))
	tbl.Set(1, 0, String("c"))
	// Final column: [a, c, a] — a first-observed at row 0.
	if !s.Sync(tbl) {
		t.Fatal("edit stream within the window must take the delta path")
	}
	sameStats(t, "order", s, NewStats(tbl), tbl)
	if m, ok := s.Column(0).Mode(); !ok || m != String("a") {
		t.Fatalf("mode = (%v, %v), want a", m, ok)
	}
}

// FuzzStatsSyncEquivalence drives Sync with a fuzzer-chosen stream of
// cell edits, row inserts, row deletes, and batch brackets, asserting
// full-rebuild equivalence — the edit-log consumer analogue of the dc
// live-set replay fuzz. First-observed order (Mode ties, Sample draws) is
// part of the contract, so structural windows exercise the swap-delete
// re-observation path as well as the insert-only count-delta path.
func FuzzStatsSyncEquivalence(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x13, 0x37}, uint8(4), uint8(2))
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x10, 0x20, 0x30}, uint8(6), uint8(3))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{0xf1, 0x10, 0xe2, 0x21, 0xd0, 0xf3, 0xe1}, uint8(5), uint8(2))
	f.Fuzz(func(t *testing.T, stream []byte, rowsRaw, colsRaw uint8) {
		rows := 1 + int(rowsRaw%8)
		cols := 1 + int(colsRaw%4)
		rng := rand.New(rand.NewSource(11))
		tbl := randomStatsTable(rng, rows, cols)
		s := NewStats(tbl)
		randomRow := func(b byte) []Value {
			row := make([]Value, cols)
			for j := range row {
				row[j] = statsEditValues[(int(b)+j)%len(statsEditValues)]
			}
			return row
		}
		// Each stream byte encodes one operation; every 5th op,
		// sync+compare against a fresh rebuild.
		for i, b := range stream {
			switch {
			case b >= 0xf0:
				if err := tbl.Append(randomRow(b)); err != nil {
					t.Fatal(err)
				}
			case b >= 0xe0:
				if tbl.NumRows() > 1 {
					tbl.DeleteRow(int(b&0x0f) % tbl.NumRows())
				}
			case b >= 0xd0:
				// Batch: a cell edit, an insert, and a delete under one
				// generation.
				err := tbl.ApplyBatch(func(bt *Table) error {
					bt.Set(int(b)%bt.NumRows(), int(b>>2)%cols, statsEditValues[int(b)%len(statsEditValues)])
					if err := bt.Append(randomRow(b)); err != nil {
						return err
					}
					if bt.NumRows() > 1 {
						bt.DeleteRow(int(b>>1) % bt.NumRows())
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			default:
				row := int(b>>4) % tbl.NumRows()
				col := int(b>>2) % cols
				tbl.Set(row, col, statsEditValues[int(b)%len(statsEditValues)])
			}
			if i%5 == 4 {
				s.Sync(tbl)
				sameStats(t, fmt.Sprintf("op %d", i), s, NewStats(tbl), tbl)
			}
		}
		s.Sync(tbl)
		sameStats(t, "final", s, NewStats(tbl), tbl)
	})
}
