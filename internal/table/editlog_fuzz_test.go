package table

import (
	"testing"
)

// FuzzEditLogReplay drives the bounded edit ring with a fuzzer-chosen
// stream of Set/Append/DeleteRow/batch operations and checks EditsSince
// against a naive shadow log: whenever the ring reports ok, the replayed
// edits must be exactly the shadow's suffix (same order, same kinds, same
// generations), and reconstructing the final table from the snapshot plus
// the RowRemap-decoded window must reproduce the live table cell for cell
// — the soundness property every structural consumer leans on (unmoved
// survivors keep their index and their bytes; everything else is covered
// by Retract/Derive/Sets). When the ring reports !ok, the requested
// generation must genuinely predate the retained history.
func FuzzEditLogReplay(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x33})
	f.Add([]byte{0xff, 0xfe, 0x81, 0x80, 0x7f, 0x40})
	f.Add([]byte{0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10})
	f.Add([]byte{0xf9, 0x00, 0xf1, 0x22, 0xe9, 0xf2, 0xfa, 0x33, 0xf0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		tbl := MustFromStrings([]string{"A", "B", "C"}, [][]string{
			{"a", "1", "x"}, {"b", "2", "y"}, {"c", "3", "z"},
		})
		// shadow holds every typed entry since the snapshot anchor.
		var shadow []Edit
		snapGen := tbl.Generation()
		snap := tbl.Clone()
		reanchor := func() {
			snap = tbl.Clone()
			snapGen = tbl.Generation()
			shadow = shadow[:0]
		}

		values := []Value{String("p"), String("q"), Int(7), Null(), Float(2.5)}
		for i, b := range stream {
			switch {
			case b >= 0xf8:
				if err := tbl.Append([]Value{String("n"), Int(int64(i)), String("m")}); err != nil {
					t.Fatal(err)
				}
				shadow = append(shadow, Edit{Gen: tbl.Generation(), Row: tbl.NumRows() - 1, Col: -1, Kind: EditInsert})
			case b >= 0xf0:
				if tbl.NumRows() > 1 {
					row := int(b&0x07) % tbl.NumRows()
					tbl.DeleteRow(row)
					shadow = append(shadow, Edit{Gen: tbl.Generation(), Row: row, Col: -1, Kind: EditDelete})
				}
			case b >= 0xe8:
				// Batch bracket: a cell edit plus an insert under one
				// generation.
				err := tbl.ApplyBatch(func(bt *Table) error {
					row := int(b&0x03) % bt.NumRows()
					bt.Set(row, 0, values[int(b)%len(values)])
					shadow = append(shadow, Edit{Gen: bt.Generation(), Row: row, Col: 0, Kind: EditSet})
					if err := bt.Append([]Value{String("bb"), Int(int64(b)), String("cc")}); err != nil {
						return err
					}
					shadow = append(shadow, Edit{Gen: bt.Generation(), Row: bt.NumRows() - 1, Col: -1, Kind: EditInsert})
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			default:
				row := int(b>>5) % tbl.NumRows()
				col := int(b>>3) % tbl.NumCols()
				tbl.Set(row, col, values[int(b)%len(values)])
				shadow = append(shadow, Edit{Gen: tbl.Generation(), Row: row, Col: col, Kind: EditSet})
			}

			// Probe EditsSince from the snapshot anchor every few steps.
			if i%3 != 2 {
				continue
			}
			edits, ok := tbl.EditsSince(snapGen, nil)
			if !ok {
				// Coverage genuinely lost: the ring must have evicted part
				// of the window.
				if len(shadow) <= editLogWindow {
					t.Fatalf("EditsSince reported !ok with %d shadow edits (window %d)",
						len(shadow), editLogWindow)
				}
				reanchor()
				continue
			}
			if len(edits) != len(shadow) {
				t.Fatalf("EditsSince returned %d edits, shadow has %d", len(edits), len(shadow))
			}
			for k, e := range edits {
				if e != shadow[k] {
					t.Fatalf("edit %d: ring %+v vs shadow %+v", k, e, shadow[k])
				}
			}
			// Reconstruct the final table from the snapshot plus the
			// decoded window, touching the live table only where RowRemap
			// says new bytes live.
			var rm RowRemap
			rm.Resolve(edits, snap.NumRows())
			if rm.NewRows != tbl.NumRows() {
				t.Fatalf("decode landed on %d rows, table has %d", rm.NewRows, tbl.NumRows())
			}
			replay := make([][]Value, snap.NumRows())
			for r := range replay {
				replay[r] = append([]Value(nil), snap.RowView(r)...)
			}
			for _, e := range edits {
				switch e.Kind {
				case EditInsert:
					replay = append(replay, nil)
				case EditDelete:
					last := len(replay) - 1
					replay[e.Row], replay[last] = replay[last], replay[e.Row]
					replay = replay[:last]
				}
			}
			for _, p := range rm.Derive {
				replay[p] = append([]Value(nil), tbl.RowView(int(p))...)
			}
			for _, e := range rm.Sets {
				if rm.CleanSet(e) {
					replay[e.Row][e.Col] = tbl.Get(e.Row, e.Col)
				}
			}
			for r := 0; r < tbl.NumRows(); r++ {
				for c := 0; c < tbl.NumCols(); c++ {
					if replay[r][c] != tbl.Get(r, c) {
						t.Fatalf("replayed cell (%d,%d) = %v, table has %v", r, c, replay[r][c], tbl.Get(r, c))
					}
				}
			}
		}
	})
}
