package table

import (
	"testing"
)

// FuzzEditLogReplay drives the bounded edit ring with a fuzzer-chosen
// stream of Set/Append operations and checks EditsSince against a naive
// shadow log: whenever the ring reports ok, the replayed edits must be
// exactly the shadow's suffix (same order, same generations), and
// replaying them onto a snapshot clone must reproduce the live table; when
// it reports !ok, the requested generation must genuinely predate the
// retained history.
func FuzzEditLogReplay(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x33})
	f.Add([]byte{0xff, 0xfe, 0x81, 0x80, 0x7f, 0x40})
	f.Add([]byte{0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10})
	f.Fuzz(func(t *testing.T, stream []byte) {
		tbl := MustFromStrings([]string{"A", "B", "C"}, [][]string{
			{"a", "1", "x"}, {"b", "2", "y"}, {"c", "3", "z"},
		})
		type shadowEdit struct {
			gen      uint64
			row, col int
		}
		var shadow []shadowEdit
		// A structural change resets delta coverage; track the horizon.
		horizon := tbl.Generation()

		snapGen := tbl.Generation()
		snap := tbl.Clone()

		values := []Value{String("p"), String("q"), Int(7), Null(), Float(2.5)}
		for i, b := range stream {
			switch {
			case b >= 0xf8:
				// Rare: structural change.
				if err := tbl.Append([]Value{String("n"), Int(int64(i)), String("m")}); err != nil {
					t.Fatal(err)
				}
				shadow = nil
				horizon = tbl.Generation()
				// Re-anchor the snapshot: replay across a structural change
				// is impossible by contract.
				snap = tbl.Clone()
				snapGen = tbl.Generation()
			default:
				row := int(b>>5) % tbl.NumRows()
				col := int(b>>3) % tbl.NumCols()
				tbl.Set(row, col, values[int(b)%len(values)])
				shadow = append(shadow, shadowEdit{gen: tbl.Generation(), row: row, col: col})
			}

			// Probe EditsSince from the snapshot anchor every few steps.
			if i%3 != 2 {
				continue
			}
			edits, ok := tbl.EditsSince(snapGen, nil)
			if !ok {
				// Coverage genuinely lost: either a structural change moved
				// the horizon past the anchor, or the ring evicted it.
				if snapGen >= horizon && len(shadow) <= editLogWindow {
					t.Fatalf("EditsSince reported !ok with %d shadow edits (window %d) and no structural change",
						len(shadow), editLogWindow)
				}
				snap = tbl.Clone()
				snapGen = tbl.Generation()
				shadow = nil
				continue
			}
			// The replayed edits must be the shadow's suffix after snapGen.
			var suffix []shadowEdit
			for _, e := range shadow {
				if e.gen > snapGen {
					suffix = append(suffix, e)
				}
			}
			if len(edits) != len(suffix) {
				t.Fatalf("EditsSince returned %d edits, shadow has %d", len(edits), len(suffix))
			}
			replay := snap.Clone()
			for k, e := range edits {
				if e.Gen != suffix[k].gen || e.Row != suffix[k].row || e.Col != suffix[k].col {
					t.Fatalf("edit %d: ring %+v vs shadow %+v", k, e, suffix[k])
				}
				replay.Set(e.Row, e.Col, tbl.Get(e.Row, e.Col))
			}
			if !replay.Equal(tbl) {
				t.Fatalf("replaying %d edits onto the snapshot does not reproduce the table", len(edits))
			}
		}
	})
}
