package table

import (
	"strings"
	"testing"
	"testing/quick"
)

func soccerNames() []string {
	return []string{"Team", "City", "Country", "League", "Year", "Place"}
}

func smallTable(t *testing.T) *Table {
	t.Helper()
	return MustFromStrings(soccerNames(), [][]string{
		{"Barcelona", "Barcelona", "Spain", "La Liga", "2019", "1"},
		{"Real Madrid", "Madrid", "Spain", "La Liga", "2019", "3"},
	})
}

func TestSchemaBasics(t *testing.T) {
	s, err := SchemaOf("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i, ok := s.Index("B"); !ok || i != 1 {
		t.Fatalf("Index(B) = %d, %v", i, ok)
	}
	if _, ok := s.Index("Z"); ok {
		t.Fatal("Index(Z) must not exist")
	}
	if got := s.MustIndex("C"); got != 2 {
		t.Fatalf("MustIndex(C) = %d", got)
	}
	if names := s.Names(); strings.Join(names, ",") != "A,B,C" {
		t.Fatalf("Names = %v", names)
	}
}

func TestSchemaDuplicateAndEmptyNames(t *testing.T) {
	if _, err := SchemaOf("A", "A"); err == nil {
		t.Error("duplicate column names must be rejected")
	}
	if _, err := NewSchema(Column{Name: ""}); err == nil {
		t.Error("empty column name must be rejected")
	}
}

func TestSchemaMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on missing column must panic")
		}
	}()
	MustSchema(Column{Name: "A"}).MustIndex("missing")
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema(Column{Name: "X", Kind: KindInt}, Column{Name: "Y"})
	b := MustSchema(Column{Name: "X", Kind: KindInt}, Column{Name: "Y"})
	c := MustSchema(Column{Name: "X", Kind: KindString}, Column{Name: "Y"})
	d := MustSchema(Column{Name: "X", Kind: KindInt})
	if !a.Equal(b) {
		t.Error("identical schemas must be Equal")
	}
	if a.Equal(c) {
		t.Error("different kinds must not be Equal")
	}
	if a.Equal(d) {
		t.Error("different lengths must not be Equal")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := MustSchema(Column{Name: "N", Kind: KindInt}, Column{Name: "S", Kind: KindString}, Column{Name: "F", Kind: KindFloat}, Column{Name: "Any"})
	if err := s.Validate([]Value{Int(1), String("x"), Float(1.5), Bool(true)}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.Validate([]Value{Int(1), String("x"), Int(2), Null()}); err != nil {
		t.Errorf("int into float column must be allowed: %v", err)
	}
	if err := s.Validate([]Value{Null(), Null(), Null(), Null()}); err != nil {
		t.Errorf("nulls always allowed: %v", err)
	}
	if err := s.Validate([]Value{String("x"), String("x"), Float(1), Null()}); err == nil {
		t.Error("string into int column must be rejected")
	}
	if err := s.Validate([]Value{Int(1), String("x")}); err == nil {
		t.Error("wrong arity must be rejected")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Column{Name: "A", Kind: KindInt}, Column{Name: "B"})
	if got := s.String(); got != "A:int, B" {
		t.Errorf("Schema.String() = %q", got)
	}
}

func TestTableBasics(t *testing.T) {
	tbl := smallTable(t)
	if tbl.NumRows() != 2 || tbl.NumCols() != 6 || tbl.NumCells() != 12 {
		t.Fatalf("dims = %d x %d (%d cells)", tbl.NumRows(), tbl.NumCols(), tbl.NumCells())
	}
	if got := tbl.GetByName(1, "City"); !got.Equal(String("Madrid")) {
		t.Errorf("GetByName(1, City) = %v", got)
	}
	if got := tbl.Get(0, 4); !got.Equal(Int(2019)) {
		t.Errorf("Year parsed as %v (%v), want int 2019", got, got.Kind())
	}
	tbl.SetByName(0, "Place", Int(2))
	if got := tbl.GetByName(0, "Place"); !got.Equal(Int(2)) {
		t.Errorf("SetByName did not stick: %v", got)
	}
	ref := CellRef{Row: 1, Col: 2}
	tbl.SetRef(ref, Null())
	if !tbl.GetRef(ref).IsNull() {
		t.Error("SetRef null did not stick")
	}
}

func TestTableAppendValidates(t *testing.T) {
	s := MustSchema(Column{Name: "N", Kind: KindInt})
	tbl := New(s)
	if err := tbl.Append([]Value{String("no")}); err == nil {
		t.Error("Append must validate kinds")
	}
	if err := tbl.Append([]Value{Int(5)}); err != nil {
		t.Errorf("valid append failed: %v", err)
	}
}

func TestTableAppendCopiesRow(t *testing.T) {
	tbl := New(MustSchema(Column{Name: "A"}))
	row := []Value{Int(1)}
	if err := tbl.Append(row); err != nil {
		t.Fatal(err)
	}
	row[0] = Int(99)
	if !tbl.Get(0, 0).Equal(Int(1)) {
		t.Error("Append must copy the row slice")
	}
}

func TestTableCloneIsDeep(t *testing.T) {
	tbl := smallTable(t)
	clone := tbl.Clone()
	clone.Set(0, 0, String("Atletico"))
	if !tbl.Get(0, 0).Equal(String("Barcelona")) {
		t.Error("mutating clone changed original")
	}
	if !tbl.Clone().Equal(tbl) {
		t.Error("clone must equal original")
	}
}

func TestTableEqual(t *testing.T) {
	a, b := smallTable(t), smallTable(t)
	if !a.Equal(b) {
		t.Error("identical tables must be Equal")
	}
	b.Set(1, 1, String("Sevilla"))
	if a.Equal(b) {
		t.Error("differing tables must not be Equal")
	}
	c := MustFromStrings([]string{"X"}, [][]string{{"1"}})
	if a.Equal(c) {
		t.Error("different schemas must not be Equal")
	}
	// Null-vs-null cells must compare equal under Equal (SameContent).
	d, e := smallTable(t), smallTable(t)
	d.Set(0, 0, Null())
	e.Set(0, 0, Null())
	if !d.Equal(e) {
		t.Error("tables with matching nulls must be Equal")
	}
}

func TestVectorizationRoundTrip(t *testing.T) {
	tbl := smallTable(t)
	refs := tbl.Cells()
	if len(refs) != tbl.NumCells() {
		t.Fatalf("Cells() returned %d refs, want %d", len(refs), tbl.NumCells())
	}
	for i, ref := range refs {
		if tbl.VecIndex(ref) != i {
			t.Errorf("VecIndex(%v) = %d, want %d", ref, tbl.VecIndex(ref), i)
		}
		if tbl.RefAt(i) != ref {
			t.Errorf("RefAt(%d) = %v, want %v", i, tbl.RefAt(i), ref)
		}
	}
}

func TestVectorizationRowMajorOrder(t *testing.T) {
	tbl := smallTable(t)
	// Example 2.5: x_T = (t1[Team], t1[City], ..., t2[Team], ...).
	if tbl.RefAt(0) != (CellRef{Row: 0, Col: 0}) {
		t.Error("vector must start at t1[Team]")
	}
	if tbl.RefAt(6) != (CellRef{Row: 1, Col: 0}) {
		t.Error("vector index 6 must be t2[Team]")
	}
}

func TestRefNameRoundTrip(t *testing.T) {
	tbl := smallTable(t)
	for _, ref := range tbl.Cells() {
		name := tbl.RefName(ref)
		back, err := tbl.ParseRefName(name)
		if err != nil {
			t.Fatalf("ParseRefName(%q): %v", name, err)
		}
		if back != ref {
			t.Errorf("round trip %v -> %q -> %v", ref, name, back)
		}
	}
	if got := tbl.RefName(CellRef{Row: 1, Col: 2}); got != "t2[Country]" {
		t.Errorf("RefName = %q, want t2[Country]", got)
	}
}

func TestParseRefNameErrors(t *testing.T) {
	tbl := smallTable(t)
	for _, bad := range []string{"", "t[City]", "x1[City]", "t1[City", "t1[Nope]", "t0[City]", "t99[City]", "t1"} {
		if _, err := tbl.ParseRefName(bad); err == nil {
			t.Errorf("ParseRefName(%q) must error", bad)
		}
	}
}

func TestTableString(t *testing.T) {
	out := smallTable(t).String()
	for _, want := range []string{"Team", "Real Madrid", "La Liga", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("table rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFromStringsRaggedRejected(t *testing.T) {
	if _, err := FromStrings([]string{"A", "B"}, [][]string{{"1"}}); err == nil {
		t.Error("ragged grid must be rejected")
	}
}

func TestVecIndexBijectionProperty(t *testing.T) {
	tbl := smallTable(t)
	f := func(idx uint16) bool {
		i := int(idx) % tbl.NumCells()
		return tbl.VecIndex(tbl.RefAt(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerationBumps(t *testing.T) {
	tbl := MustFromStrings([]string{"A", "B"}, [][]string{{"x", "1"}})
	g0 := tbl.Generation()
	tbl.Set(0, 0, String("y"))
	g1 := tbl.Generation()
	if g1 == g0 {
		t.Error("Set must bump generation")
	}
	tbl.SetRef(CellRef{Row: 0, Col: 1}, Int(2))
	g2 := tbl.Generation()
	if g2 == g1 {
		t.Error("SetRef must bump generation")
	}
	tbl.SetByName(0, "A", String("z"))
	if tbl.Generation() == g2 {
		t.Error("SetByName must bump generation")
	}
	g3 := tbl.Generation()
	if err := tbl.Append([]Value{String("w"), Int(3)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Generation() == g3 {
		t.Error("Append must bump generation")
	}
	// Reads must not bump.
	g4 := tbl.Generation()
	_ = tbl.Get(0, 0)
	_ = tbl.Row(0)
	_ = tbl.Clone()
	if tbl.Generation() != g4 {
		t.Error("reads must not bump generation")
	}
}
