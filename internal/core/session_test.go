package core

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/repair"
	"repro/internal/table"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	ll := data.NewLaLiga()
	s, err := NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionDoesNotAliasCallerTable(t *testing.T) {
	ll := data.NewLaLiga()
	s, err := NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetCell(table.CellRef{Row: 0, Col: 0}, table.String("edited")); err != nil {
		t.Fatal(err)
	}
	if ll.Dirty.Get(0, 0).Equal(table.String("edited")) {
		t.Fatal("session edit leaked into caller's table")
	}
}

func TestSessionRemoveAndAddDC(t *testing.T) {
	s := newSession(t)
	if err := s.RemoveDC("C3"); err != nil {
		t.Fatal(err)
	}
	if len(s.DCs()) != 3 {
		t.Fatalf("DCs = %d", len(s.DCs()))
	}
	if err := s.RemoveDC("C3"); err == nil {
		t.Error("removing a missing DC must error")
	}
	if err := s.AddDC("C9: !(t1.Year != t2.Year & t1.League = t2.League)"); err != nil {
		t.Fatal(err)
	}
	if len(s.DCs()) != 4 {
		t.Fatalf("DCs = %d", len(s.DCs()))
	}
	if err := s.AddDC("C9: !(t1.Year = t2.Year)"); err == nil {
		t.Error("duplicate ID must error")
	}
	if err := s.AddDC("garbage"); err == nil {
		t.Error("unparsable DC must error")
	}
	if err := s.AddDC("!(t1.Nope = t2.Nope)"); err == nil {
		t.Error("unknown attribute must error")
	}
	if len(s.History) != 2 {
		t.Errorf("history = %v", s.History)
	}
}

func TestSessionSetCellValidation(t *testing.T) {
	s := newSession(t)
	if err := s.SetCell(table.CellRef{Row: 99, Col: 0}, table.Null()); err == nil {
		t.Error("out-of-range row must error")
	}
	if err := s.SetCell(table.CellRef{Row: 0, Col: 99}, table.Null()); err == nil {
		t.Error("out-of-range col must error")
	}
}

func TestSessionIterativeDebugLoop(t *testing.T) {
	// The §4 demo loop: explain → remove the top DC → re-repair → the
	// repair of the cell of interest changes.
	s := newSession(t)
	ll := data.NewLaLiga()
	ctx := context.Background()

	report, err := s.Explainer().ExplainConstraints(ctx, ll.CellOfInterest)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := report.Top()
	if top.Name != "C3" {
		t.Fatalf("top = %s", top.Name)
	}

	beforeClean, _, err := s.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !beforeClean.GetRef(ll.CellOfInterest).Equal(table.String("Spain")) {
		t.Fatal("precondition: repaired to Spain")
	}

	if err := s.RemoveDC(top.Name); err != nil {
		t.Fatal(err)
	}
	afterClean, _, err := s.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// With C3 gone the repair still happens via {C1, C2} (their joint
	// Shapley was 1/3), so the cell is still repaired — remove C1 next and
	// the repair disappears.
	if !afterClean.GetRef(ll.CellOfInterest).Equal(table.String("Spain")) {
		t.Fatal("C1+C2 should still repair after removing C3")
	}
	if err := s.RemoveDC("C1"); err != nil {
		t.Fatal(err)
	}
	finalClean, _, err := s.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if finalClean.GetRef(ll.CellOfInterest).Equal(table.String("Spain")) {
		t.Fatal("with only {C2, C4} the cell must not be repaired")
	}
}

func TestSessionCellEditChangesExplanation(t *testing.T) {
	// Fixing t5[League] in the input (the top-ranked cell) removes the C3
	// pathway: C3's Shapley value must drop to 0.
	s := newSession(t)
	ll := data.NewLaLiga()
	ctx := context.Background()
	leagueRef, err := s.Dirty().ParseRefName("t5[League]")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetCell(leagueRef, table.String("Liga NOS")); err != nil {
		t.Fatal(err)
	}
	report, err := s.Explainer().ExplainConstraints(ctx, ll.CellOfInterest)
	if err != nil {
		t.Fatal(err)
	}
	c3, _ := report.Find("C3")
	if c3.Shapley != 0 {
		t.Errorf("after breaking the League link, Shap(C3) = %v, want 0", c3.Shapley)
	}
	top, _ := report.Top()
	if top.Name != "C1" && top.Name != "C2" {
		t.Errorf("top should become C1/C2, got %s", top.Name)
	}
}
