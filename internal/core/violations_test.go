package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dc"
	"repro/internal/table"
)

// assertSessionViolations compares Session.Violations (incrementally
// maintained) against a from-scratch dc.AllViolations rescan.
func assertSessionViolations(t *testing.T, label string, s *Session) {
	t.Helper()
	got, err := s.Violations()
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	want, err := dc.AllViolations(s.DCs(), s.Dirty())
	if err != nil {
		t.Fatalf("%s: rescan: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: live %d violations, rescan %d\nlive: %v\nrescan: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Row1 != want[i].Row1 || got[i].Row2 != want[i].Row2 ||
			got[i].Constraint.ID != want[i].Constraint.ID {
			t.Fatalf("%s: violation %d: live %v, rescan %v", label, i, got[i], want[i])
		}
	}
}

// TestSessionViolationsLive drives the iterative loop the live set exists
// for: inspect violations, edit a cell, inspect again — the maintained
// lists must track every edit exactly, including edits that fix and
// re-introduce violations.
func TestSessionViolationsLive(t *testing.T) {
	s := newSession(t)
	assertSessionViolations(t, "initial", s)
	if ok, err := s.Consistent(); err != nil || ok {
		t.Fatalf("the La Liga table must start inconsistent (ok=%v err=%v)", ok, err)
	}

	rng := rand.New(rand.NewSource(61))
	dirty := s.Dirty()
	values := []table.Value{
		table.String("Madrid"), table.String("Spain"), table.String("España"),
		table.String("Barcelona"), table.Null(), table.Int(2019),
	}
	for step := 0; step < 60; step++ {
		ref := table.CellRef{Row: rng.Intn(dirty.NumRows()), Col: rng.Intn(dirty.NumCols())}
		if err := s.SetCell(ref, values[rng.Intn(len(values))]); err != nil {
			t.Fatal(err)
		}
		assertSessionViolations(t, fmt.Sprintf("step %d", step), s)
	}

	// Constraint edits change the queried set; the live set must follow.
	if err := s.RemoveDC("C1"); err != nil {
		t.Fatal(err)
	}
	assertSessionViolations(t, "after RemoveDC", s)
	if err := s.AddDC("C9: !(t1.City = t2.City & t1.Country != t2.Country)"); err != nil {
		t.Fatal(err)
	}
	assertSessionViolations(t, "after AddDC", s)
}
