package core

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

// sameDiffs compares two repair diffs entry-for-entry, bit-identically.
func sameDiffs(t *testing.T, label string, got, want []table.CellDiff) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d diffs vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: diff %d: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// TestRepairTargetCacheGolden is the repair-target materialization's
// bit-identity contract: repeat Repair and Target calls on a session
// explainer replay the memoized diff, and every replayed answer matches
// the engine-free reference exactly.
func TestRepairTargetCacheGolden(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	for _, alg := range repair.All(1) {
		t.Run(alg.Name(), func(t *testing.T) {
			sess, err := NewSession(alg, ll.DCs, ll.Dirty)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewExplainer(alg, ll.DCs, sess.Dirty())
			if err != nil {
				t.Fatal(err)
			}
			wantClean, wantDiffs, err := ref.Repair(ctx)
			if err != nil {
				t.Fatal(err)
			}
			// First session call populates the cache; the repeats replay it.
			for i := 0; i < 3; i++ {
				clean, diffs, err := sess.Explainer().Repair(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !clean.Equal(wantClean) {
					t.Fatalf("call %d: cached clean table differs:\n%v\nwant:\n%v", i, clean, wantClean)
				}
				sameDiffs(t, "repair diffs", diffs, wantDiffs)
			}
			hits, _ := sess.Engine().RepairTargets().Stats()
			if hits < 2 {
				t.Fatalf("repeat Repair must hit the repair-target cache, got %d hits", hits)
			}

			// Target for every cell, repaired or not, answered off the diff.
			for _, cell := range sess.Dirty().Cells() {
				wantTarget, wantRepaired, err := ref.Target(ctx, cell)
				if err != nil {
					t.Fatal(err)
				}
				target, repaired, err := sess.Explainer().Target(ctx, cell)
				if err != nil {
					t.Fatal(err)
				}
				if repaired != wantRepaired || target != wantTarget {
					t.Fatalf("cell %v: cached Target = (%v, %v), want (%v, %v)",
						cell, target, repaired, wantTarget, wantRepaired)
				}
			}
		})
	}
}

// TestRepairTargetCacheRepresentationExact: a black box that changes a
// cell's numeric *kind* without changing its content (Float(5) -> Int(5),
// SameContent-equal) must see that change survive the cache replay:
// kind-sensitive consumers (hash-join keys) must not observe a different
// clean table on a hit than on a miss.
func TestRepairTargetCacheRepresentationExact(t *testing.T) {
	ctx := context.Background()
	dirty := table.MustFromStrings([]string{"A", "B"}, [][]string{
		{"5.0", "x"}, {"5", "y"},
	})
	if dirty.Get(0, 0) != table.Float(5) {
		t.Fatalf("fixture: got %#v, want Float kind", dirty.Get(0, 0))
	}
	kindFix := repair.Func{AlgName: "kind-fix", Fn: func(_ context.Context, _ []*dc.Constraint, d *table.Table) (*table.Table, error) {
		clean := d.Clone()
		clean.Set(0, 0, table.Int(5))          // kind-only change (SameContent)
		clean.Set(1, 1, table.String("fixed")) // content change
		return clean, nil
	}}
	cs, err := dc.ParseSet("C1: !(t1.A != t1.A)")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(kindFix, cs, dirty)
	if err != nil {
		t.Fatal(err)
	}
	first, firstDiffs, err := sess.Explainer().Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	replayed, replayedDiffs, err := sess.Explainer().Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := sess.Engine().RepairTargets().Stats(); hits == 0 {
		t.Fatal("second Repair must hit the cache")
	}
	for i := 0; i < first.NumRows(); i++ {
		for j := 0; j < first.NumCols(); j++ {
			if first.Get(i, j) != replayed.Get(i, j) {
				t.Fatalf("cell (%d,%d): replay %#v vs black box %#v (representation must survive)",
					i, j, replayed.Get(i, j), first.Get(i, j))
			}
		}
	}
	if replayed.Get(0, 0) != (table.Int(5)) {
		t.Fatalf("kind-only repair lost in replay: %#v", replayed.Get(0, 0))
	}
	// The reported "repaired cells" diff stays the SameContent one: only
	// the content change appears, on both paths.
	sameDiffs(t, "reported diffs", replayedDiffs, firstDiffs)
	if len(firstDiffs) != 1 || firstDiffs[0].Ref != (table.CellRef{Row: 1, Col: 1}) {
		t.Fatalf("reported diffs must hold only the content change: %+v", firstDiffs)
	}
}

// TestRepairTargetCacheInvalidation: a SetCell bumps the generation (the
// cached diff must not be replayed against the edited table), and
// AddDC/RemoveDC re-key the descriptor; in both cases the next answer must
// match a fresh engine-free run.
func TestRepairTargetCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	alg := repair.NewAlgorithm1()
	sess, err := NewSession(alg, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	cell := ll.CellOfInterest
	if _, _, err := sess.Explainer().Target(ctx, cell); err != nil {
		t.Fatal(err)
	}

	// Edit the cell of interest's row so the repair outcome changes.
	league := sess.Dirty().Schema().MustIndex("League")
	if err := sess.SetCell(table.CellRef{Row: cell.Row, Col: league}, table.String("Premier League")); err != nil {
		t.Fatal(err)
	}
	ref, err := NewExplainer(alg, sess.DCs(), sess.Dirty())
	if err != nil {
		t.Fatal(err)
	}
	wantTarget, wantRepaired, err := ref.Target(ctx, cell)
	if err != nil {
		t.Fatal(err)
	}
	target, repaired, err := sess.Explainer().Target(ctx, cell)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != wantRepaired || target != wantTarget {
		t.Fatalf("after edit: cached Target = (%v, %v), want (%v, %v)", target, repaired, wantTarget, wantRepaired)
	}

	// Constraint edits re-key the repair descriptor without a generation
	// bump; the replay must follow the new constraint set.
	removed := ll.DCs[len(ll.DCs)-1].ID
	if err := sess.RemoveDC(removed); err != nil {
		t.Fatal(err)
	}
	ref2, err := NewExplainer(alg, sess.DCs(), sess.Dirty())
	if err != nil {
		t.Fatal(err)
	}
	_, wantDiffs, err := ref2.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, diffs, err := sess.Explainer().Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sameDiffs(t, "after RemoveDC", diffs, wantDiffs)
}

// TestCacheAwareSamplingGolden is tentpole (c)'s bit-identity contract:
// null-policy sampled explanations (SampleAll, TopK, group sampling) with
// the session's shared coalition cache produce exactly the engine-free
// estimates — warm or cold, Workers=1 or Workers=N.
func TestCacheAwareSamplingGolden(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	alg := repair.NewAlgorithm1()
	cell := ll.CellOfInterest
	opts := CellExplainOptions{Samples: 48, Seed: 11, RestrictToRelevant: true}

	bare, err := NewExplainer(alg, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bare.ExplainCells(ctx, cell, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		sess, err := NewSessionWith(alg, ll.DCs, ll.Dirty, SessionOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		wopts := opts
		wopts.Workers = workers
		// Cold cache.
		got, err := sess.Explainer().ExplainCells(ctx, cell, wopts)
		if err != nil {
			t.Fatal(err)
		}
		sameReports(t, "cold cached ExplainCells", got, want)
		// Warm cache: identical permutations revisit memoized coalitions.
		hitsBefore, _ := sess.Engine().CacheStats()
		got, err = sess.Explainer().ExplainCells(ctx, cell, wopts)
		if err != nil {
			t.Fatal(err)
		}
		sameReports(t, "warm cached ExplainCells", got, want)
		hitsAfter, missesAfter := sess.Engine().CacheStats()
		if hitsAfter <= hitsBefore {
			t.Fatalf("workers=%d: repeat sampled explain must hit the shared cache (hits %d -> %d, misses %d)",
				workers, hitsBefore, hitsAfter, missesAfter)
		}
	}
}

// TestCacheAwareSamplingTopKAndGroupsGolden extends the bit-identity
// contract to the TopK racing loop and the sampled group walk.
func TestCacheAwareSamplingTopKAndGroupsGolden(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	alg := repair.NewAlgorithm1()
	cell := ll.CellOfInterest
	opts := CellExplainOptions{Samples: 64, Seed: 5, RestrictToRelevant: true}

	bare, err := NewExplainer(alg, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(alg, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}

	wantTop, wantSep, err := bare.ExplainCellsTopK(ctx, cell, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotTop, gotSep, err := sess.Explainer().ExplainCellsTopK(ctx, cell, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gotSep != wantSep {
		t.Fatalf("TopK separation: %v vs %v", gotSep, wantSep)
	}
	sameReports(t, "cached TopK", gotTop, wantTop)

	groupOpts := CellExplainOptions{Samples: 32, Seed: 3}
	groups := bare.RowGroups(cell)
	wantG, err := bare.ExplainCellGroupsSampled(ctx, cell, groups, groupOpts)
	if err != nil {
		t.Fatal(err)
	}
	gotG, err := sess.Explainer().ExplainCellGroupsSampled(ctx, cell, groups, groupOpts)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "cached sampled groups", gotG, wantG)

	// The exact group path shares the same descriptor space: running it
	// after the sampled path must reuse coalition values (strictly more
	// hits), and stay bit-identical to the engine-free exact report.
	hitsBefore, _ := sess.Engine().CacheStats()
	wantExact, err := bare.ExplainCellGroups(ctx, cell, groups[:6])
	if err != nil {
		t.Fatal(err)
	}
	gotExact, err := sess.Explainer().ExplainCellGroups(ctx, cell, groups[:6])
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "cached exact groups", gotExact, wantExact)
	if hitsAfter, _ := sess.Engine().CacheStats(); hitsAfter < hitsBefore {
		t.Fatalf("hits went backwards: %d -> %d", hitsBefore, hitsAfter)
	}
}

// TestCacheAwareSamplingEditInvalidation: estimates after a session edit
// must match a fresh engine-free explainer on the edited table — no stale
// coalition value may survive the generation bump into the sampled paths.
func TestCacheAwareSamplingEditInvalidation(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	alg := repair.NewAlgorithm1()
	cell := ll.CellOfInterest
	opts := CellExplainOptions{Samples: 40, Seed: 17, RestrictToRelevant: true}

	sess, err := NewSession(alg, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Explainer().ExplainCells(ctx, cell, opts); err != nil {
		t.Fatal(err)
	}

	city := sess.Dirty().Schema().MustIndex("City")
	if err := sess.SetCell(table.CellRef{Row: 2, Col: city}, table.String("Sevilla")); err != nil {
		t.Fatal(err)
	}

	ref, err := NewExplainer(alg, sess.DCs(), sess.Dirty())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ExplainCells(ctx, cell, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Explainer().ExplainCells(ctx, cell, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "post-edit cached ExplainCells", got, want)
}

// TestSampledExactCellRosterSharing: the exact cell enumeration and the
// sampled null-policy path over the same roster intern one descriptor, so
// an exact report after a sampled one reuses its coalition values.
func TestSampledExactCellRosterSharing(t *testing.T) {
	ctx := context.Background()
	// Tiny instance so the exact path is feasible.
	grid := [][]string{
		{"x", "1", "a"},
		{"x", "2", "a"},
		{"x", "1", "a"},
	}
	tbl := table.MustFromStrings([]string{"A", "B", "C"}, grid)
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	alg := repair.NewRuleRepair(cs)
	sess, err := NewSession(alg, cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cell := table.CellRef{Row: 1, Col: 1}

	if _, err := sess.Explainer().ExplainCells(ctx, cell, CellExplainOptions{
		Samples: 64, Seed: 2, RestrictToRelevant: true,
	}); err != nil {
		t.Fatal(err)
	}
	hits1, _ := sess.Engine().CacheStats()
	exact, err := sess.Explainer().ExplainCellsExact(ctx, cell, true)
	if err != nil {
		t.Fatal(err)
	}
	hits2, _ := sess.Engine().CacheStats()
	if hits2 <= hits1 {
		t.Fatalf("exact enumeration after sampling must reuse the roster's coalition values (hits %d -> %d)", hits1, hits2)
	}

	bare, err := NewExplainer(alg, cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bare.ExplainCellsExact(ctx, cell, true)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "exact after sampled", exact, want)
}

// TestSampledWorkerDeterminismWithSharedCache: the Workers=1 ≡ Workers=N
// fan-out guarantee must survive cache participation, including a
// half-warm cache (one session explained already, the other has not).
func TestSampledWorkerDeterminismWithSharedCache(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	alg := repair.NewAlgorithm1()
	cell := ll.CellOfInterest

	var reports []*Report
	for _, workers := range []int{1, 2, 7} {
		sess, err := NewSessionWith(alg, ll.DCs, ll.Dirty, SessionOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		opts := CellExplainOptions{Samples: 56, Seed: 23, Workers: workers, RestrictToRelevant: true}
		// Warm the cache with a *different* report kind first, so the
		// sampled run sees a partially-populated shared cache.
		if _, err := sess.Explainer().ExplainConstraints(ctx, cell); err != nil {
			t.Fatal(err)
		}
		report, err := sess.Explainer().ExplainCells(ctx, cell, opts)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, report)
	}
	for i := 1; i < len(reports); i++ {
		sameReports(t, "worker determinism", reports[i], reports[0])
	}
}

// TestCacheAwareSamplingStochasticUnbound: ReplaceFromColumn games must
// not enroll in the shared cache (their values are random realizations),
// and their estimates must stay bit-identical to the engine-free run.
func TestCacheAwareSamplingStochasticUnbound(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	alg := repair.NewAlgorithm1()
	cell := ll.CellOfInterest
	opts := CellExplainOptions{Samples: 24, Seed: 9, Policy: ReplaceFromColumn, RestrictToRelevant: true}

	bare, err := NewExplainer(alg, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bare.ExplainCells(ctx, cell, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(alg, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Explainer().ExplainCells(ctx, cell, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "stochastic policy with engine", got, want)

	// Direct check on the game: binding a stochastic game is a no-op.
	target, _, err := sess.Explainer().Target(ctx, cell)
	if err != nil {
		t.Fatal(err)
	}
	game := sess.Explainer().NewCellGame(cell, target, ReplaceFromColumn)
	game.BindSharedCache()
	if game.shared != nil {
		t.Fatal("ReplaceFromColumn game must not bind to the shared cache")
	}
	// And a walk-driven SampleAll on the stochastic game must match the
	// clone reference exactly (RNG consumption unchanged by the binding
	// code path).
	ests, err := shapley.SampleAll(ctx, game, shapley.Options{Samples: 16, Seed: 31, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := shapley.SampleAll(ctx, game.CloneEval(), shapley.Options{Samples: 16, Seed: 31, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ests {
		if ests[i] != ref[i] {
			t.Fatalf("estimate %d: %+v vs %+v", i, ests[i], ref[i])
		}
	}
}
