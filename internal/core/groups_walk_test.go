package core

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

// toyGroupGame builds an n-row FD instance repaired by RuleRepair and
// returns the group game over row groups for the dirty cell.
func toyGroupGame(t *testing.T, rows int, policy ReplacementPolicy) *GroupGame {
	t.Helper()
	grid := make([][]string, rows)
	for i := range grid {
		grid[i] = []string{"x", "1"}
	}
	grid[1][1] = "2"
	tbl := table.MustFromStrings([]string{"A", "B"}, grid)
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExplainer(repair.NewRuleRepair(cs), cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cell := table.CellRef{Row: 1, Col: 1}
	target, repaired, err := exp.Target(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired {
		t.Fatal("toy cell was not repaired")
	}
	return exp.NewGroupGame(cell, target, policy, exp.RowGroups(cell))
}

// TestGroupWalkGoldenEquivalence is the group half of the tentpole's
// golden contract: SampleAll over the GroupGame walk returns exactly the
// estimates of the clone-per-evaluation path, for both replacement
// policies and both serial and parallel runs.
func TestGroupWalkGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name   string
		policy ReplacementPolicy
	}{
		{"null", ReplaceWithNull},
		{"column", ReplaceFromColumn},
	} {
		for _, workers := range []int{1, 4} {
			game := toyGroupGame(t, 6, tc.policy)
			opts := shapley.Options{Samples: 64, Seed: 17, Workers: workers}
			fast, err := shapley.SampleAll(ctx, game, opts)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := shapley.SampleAll(ctx, game.CloneEval(), opts)
			if err != nil {
				t.Fatal(err)
			}
			sameEstimates(t, tc.name, fast, slow)
		}
	}
}

// TestGroupWalkGoldenEquivalenceOverlapping covers the reference-counted
// masking: overlapping groups share cells, and the walk must still produce
// the batch path's arithmetic exactly.
func TestGroupWalkGoldenEquivalenceOverlapping(t *testing.T) {
	ctx := context.Background()
	grid := make([][]string, 6)
	for i := range grid {
		grid[i] = []string{"x", "1"}
	}
	grid[1][1] = "2"
	tbl := table.MustFromStrings([]string{"A", "B"}, grid)
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExplainer(repair.NewRuleRepair(cs), cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cell := table.CellRef{Row: 1, Col: 1}
	target, _, err := exp.Target(ctx, cell)
	if err != nil {
		t.Fatal(err)
	}
	shared := table.CellRef{Row: 0, Col: 1}
	groups := []CellGroup{
		{Name: "g0", Cells: []table.CellRef{shared, {Row: 2, Col: 1}}},
		{Name: "g1", Cells: []table.CellRef{shared, {Row: 3, Col: 1}}},
		{Name: "g2", Cells: []table.CellRef{{Row: 4, Col: 1}, {Row: 5, Col: 1}, shared}},
	}
	for _, policy := range []ReplacementPolicy{ReplaceWithNull, ReplaceFromColumn} {
		game := exp.NewGroupGame(cell, target, policy, groups)
		opts := shapley.Options{Samples: 96, Seed: 23, Workers: 2}
		fast, err := shapley.SampleAll(ctx, game, opts)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := shapley.SampleAll(ctx, game.CloneEval(), opts)
		if err != nil {
			t.Fatal(err)
		}
		sameEstimates(t, "overlapping", fast, slow)
	}
}

// TestGroupWalkRestores verifies a walk leaves the pooled scratch equal to
// the dirty table after Close, including partial walks (SamplePlayer stops
// mid-permutation).
func TestGroupWalkRestores(t *testing.T) {
	ctx := context.Background()
	game := toyGroupGame(t, 5, ReplaceWithNull)
	w := game.NewWalk()
	w.Reset()
	w.Include(2)
	if _, err := w.Value(ctx, nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	sc := game.getScratch()
	defer game.scratch.Put(sc)
	if !sc.tbl.Equal(game.exp.Dirty) {
		t.Fatalf("walk scratch not restored on Close:\n%s\nvs dirty:\n%s", sc.tbl, game.exp.Dirty)
	}
}

// TestEvalRepairAllocsAlgorithm1 is the end-to-end allocation budget of
// this PR's tentpole: one coalition evaluation — scratch masking, pooled
// work-table refresh, Algorithm 1's full rule/fixpoint machinery including
// conditional-mode statistics, and the binary-view readout — allocates
// nothing in steady state on the paper's La Liga instance.
func TestEvalRepairAllocsAlgorithm1(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ctx := context.Background()
	ll := data.NewLaLiga()
	exp, err := NewExplainer(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	game := exp.NewCellGame(ll.CellOfInterest, table.String("Spain"), ReplaceWithNull)
	coalition := make([]bool, game.NumPlayers())
	for i := range coalition {
		coalition[i] = i%3 != 0
	}
	// Warm every pool to steady state.
	for i := 0; i < 4; i++ {
		if _, err := game.Value(ctx, coalition); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := game.Value(ctx, coalition); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("eval→repair path allocates %.1f per op, want 0", got)
	}
}

// TestGroupWalkAllocs asserts the group walk path — Reset, Include, Value
// across a full permutation against the real Algorithm 1 — allocates
// nothing per permutation once warm.
func TestGroupWalkAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ctx := context.Background()
	ll := data.NewLaLiga()
	exp, err := NewExplainer(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	game := exp.NewGroupGame(ll.CellOfInterest, table.String("Spain"), ReplaceWithNull, exp.RowGroups(ll.CellOfInterest))
	w := game.NewWalk()
	defer w.Close()
	n := game.NumPlayers()
	walkOnce := func() {
		w.Reset()
		for p := 0; p < n; p++ {
			w.Include(p)
			if _, err := w.Value(ctx, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 3; i++ {
		walkOnce()
	}
	if got := testing.AllocsPerRun(100, walkOnce); got != 0 {
		t.Errorf("group walk allocates %.1f per permutation, want 0", got)
	}
}
