package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/table"
)

// TestSnapshotRoundTripBitIdentical: a snapshot-restored session answers
// Violations, Repair and a sampled explain bit-identically to the live
// session it was taken from.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	sess, err := NewSessionWith(repair.NewAlgorithm1(), ll.DCs, ll.Dirty, SessionOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate session state so the snapshot is not just the constructor's.
	if err := sess.SetCell(table.CellRef{Row: 0, Col: 0}, table.String("edited")); err != nil {
		t.Fatal(err)
	}
	if err := sess.AddDC("C9: ¬(t1.Country = t2.Country ∧ t1.City ≠ t2.City)"); err != nil {
		// The fixture schema may not have these columns; constraint edits are
		// optional for the round-trip contract.
		t.Logf("AddDC skipped: %v", err)
	}

	var buf bytes.Buffer
	if _, err := sess.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(sn, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Table contents are bit-identical.
	if restored.Dirty().NumRows() != sess.Dirty().NumRows() || restored.Dirty().NumCols() != sess.Dirty().NumCols() {
		t.Fatal("restored table shape differs")
	}
	for i := 0; i < sess.Dirty().NumRows(); i++ {
		for j := 0; j < sess.Dirty().NumCols(); j++ {
			a, b := sess.Dirty().Get(i, j), restored.Dirty().Get(i, j)
			if a.Kind() != b.Kind() || a.String() != b.String() {
				t.Fatalf("cell (%d,%d): %v (%d) vs %v (%d)", i, j, a, a.Kind(), b, b.Kind())
			}
		}
	}
	if restored.Engine().Workers() != sess.Engine().Workers() {
		t.Fatalf("workers %d vs %d", restored.Engine().Workers(), sess.Engine().Workers())
	}
	if len(restored.History) != len(sess.History) {
		t.Fatalf("history %d vs %d lines", len(restored.History), len(sess.History))
	}

	// Answers are bit-identical.
	liveV, err := sess.Violations()
	if err != nil {
		t.Fatal(err)
	}
	restV, err := restored.Violations()
	if err != nil {
		t.Fatal(err)
	}
	if len(liveV) != len(restV) {
		t.Fatalf("violations %d vs %d", len(liveV), len(restV))
	}
	for i := range liveV {
		if liveV[i].Constraint.ID != restV[i].Constraint.ID || liveV[i].Row1 != restV[i].Row1 || liveV[i].Row2 != restV[i].Row2 {
			t.Fatalf("violation %d differs", i)
		}
	}
	opts := CellExplainOptions{Samples: 32, Workers: 2, Seed: 7}
	liveR, err := sess.Explainer().ExplainCells(ctx, ll.CellOfInterest, opts)
	if err != nil {
		t.Fatal(err)
	}
	restR, err := restored.Explainer().ExplainCells(ctx, ll.CellOfInterest, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "restored explain", restR, liveR)
}

// TestSnapshotValueKindsSurvive: the codec must not collapse kinds that
// render identically — the CSV-round-trip failure mode.
func TestSnapshotValueKindsSurvive(t *testing.T) {
	tbl := table.MustFromStrings([]string{"A", "B"}, [][]string{{"x", "y"}})
	tbl.Set(0, 0, table.String("5")) // string that looks like an int
	tbl.Set(0, 1, table.Float(math.NaN()))
	sess, err := NewSession(repair.Passthrough{}, nil, tbl)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sess.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(sn, func(string) (repair.Algorithm, bool) {
		return repair.Passthrough{}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Dirty().Get(0, 0); got.Kind() != table.KindString || got.Str() != "5" {
		t.Fatalf("String(\"5\") became %v kind %d", got, got.Kind())
	}
	if got := restored.Dirty().Get(0, 1); got.Kind() != table.KindFloat || !got.IsNaN() {
		t.Fatalf("Float(NaN) became %v kind %d", got, got.Kind())
	}
}

// TestSnapshotWriteFaultPropagates: an injected write failure surfaces as
// an error (the spool layer then skips the snapshot), never a panic or a
// truncated payload.
func TestSnapshotWriteFaultPropagates(t *testing.T) {
	ll := data.NewLaLiga()
	sess, err := NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.Rule{Site: faults.SiteSnapshotWrite, Ordinal: 1, Kind: faults.KindError})
	defer faults.Activate(inj)()
	var buf bytes.Buffer
	_, werr := sess.Snapshot().WriteTo(&buf)
	var ie *faults.InjectedError
	if !errors.As(werr, &ie) {
		t.Fatalf("WriteTo error = %v, want *faults.InjectedError", werr)
	}
	if buf.Len() != 0 {
		t.Fatalf("failed write left %d bytes", buf.Len())
	}
	// The next attempt (injector consumed its rule) succeeds.
	if _, err := sess.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotUnknownAlgorithm: restoring with an unresolvable algorithm
// fails cleanly.
func TestSnapshotUnknownAlgorithm(t *testing.T) {
	sn := &SessionSnapshot{Version: snapshotVersion, Algorithm: "no-such-box", Columns: []string{"A"}}
	if _, err := RestoreSession(sn, nil); err == nil {
		t.Fatal("unknown algorithm must fail restore")
	}
}
