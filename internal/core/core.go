// Package core is the T-REx engine: it glues a black-box repair algorithm,
// a set of denial constraints and a dirty table to the Shapley machinery
// and produces ranked explanations for the repair of a chosen cell —
// the system of Figure 4 in the paper.
//
// The two games of §2.2 are built here:
//
//   - ConstraintGame: players are the DCs, the table is fixed, and
//     v(S) = Alg|t[A](S, T_d). Constraint counts are small, so Shapley
//     values are computed exactly (subset enumeration, memoized).
//   - CellGame: players are the cells of T_d, the constraint set is fixed,
//     and a cell outside the coalition is nulled (the paper's formal
//     definition) or resampled from its column distribution (the
//     Example 2.5 sampling procedure). Cell counts are large, so Shapley
//     values are approximated by permutation sampling.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dc"
	"repro/internal/exec"
	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

// Explainer wires the three inputs of T-REx (Figure 4): the repair
// algorithm, the constraint set, and the dirty table.
type Explainer struct {
	// Alg is the black-box repair algorithm.
	Alg repair.Algorithm
	// DCs is the constraint set handed to the algorithm.
	DCs []*dc.Constraint
	// Dirty is T_d.
	Dirty *table.Table
	// Engine, when set, is the session execution layer every hot path
	// draws from: exact enumerations memoize coalition values in its
	// *shared* generation-keyed cache (surviving this explainer and this
	// game), and repairs fan disjoint-bucket passes across its bounded
	// worker pool. Session.Explainer wires it; a nil Engine degrades to
	// per-game caches and serial repair, preserving all semantics.
	Engine *exec.Engine
	// Plan, when set, is the compiled constraint-set query plan for
	// (Dirty's schema, DCs): every black-box repair this explainer runs
	// executes its violation scans behind it — shared hash partitions,
	// selectivity-ordered kernels behind pre-filter bitmaps, carried
	// cardinality hints. Session.Explainer wires it from the engine's plan
	// cache; nil runs the per-constraint reference path. Planning never
	// changes results (the repair.PlannedRepairer contract).
	Plan dc.SetPlanner

	// repairDescMemo caches repairDesc's rendering: the descriptor folds
	// in every constraint's string form, which is too expensive to rebuild
	// on each Target() call of the edit loop's screen refreshes.
	// Session.Explainer pre-fills it (recomputed per session state);
	// otherwise it is built lazily on first use. It is only consistent
	// while Alg and DCs stay untouched — an Explainer's inputs are fixed
	// after construction; build a new Explainer instead of mutating one.
	repairDescMemo string

	// txn is the cache transaction of the public entry point currently
	// running on this explainer (nil between calls, or without an engine).
	// Every store into the session's shared caches — coalition values,
	// repair-target diffs — is staged here and only published when the
	// entry point returns without error; cancellation, deadline expiry and
	// panics abort the staging, leaving the shared caches bit-identical to
	// the call never having started (the no-partial-work-poisoning
	// invariant; see exec.Txn and doc.go). An Explainer is not safe for
	// concurrent use — concurrent explains each take their own Explainer
	// from Session.Explainer(), so each run owns its transaction.
	//
	// The txn is created lazily by liveTxn at the first staged store:
	// entryOpen alone marks a running entry point, so pure cache-hit reads
	// (Target on a warm repair cache, the edit loop's screen refreshes)
	// never allocate a transaction at all.
	txn       *exec.Txn
	entryOpen bool
}

// begin opens the entry point's cache transaction scope; the bracket is
// `defer e.finishEntry(e.begin(), &err)`. Nested entry points (an explain
// resolving its target through Repair) join the outer transaction — begin
// reports false and their finishEntry is a no-op — so one user-visible
// call commits or aborts atomically. The bracket is deliberately a direct
// method defer, not a returned closure: the hot cache-hit entry points
// (Target on the edit loop's screen refreshes) must not pay a closure
// allocation or force the named error result to escape.
func (e *Explainer) begin() bool {
	if e.Engine == nil || e.entryOpen {
		return false
	}
	e.entryOpen = true
	return true
}

// finishEntry closes the entry point begin opened: abort the transaction
// on error and on panic (re-raising for per-request recovery upstream),
// commit otherwise. When owned is false this frame joined an outer entry
// point and must do nothing — in particular it must not recover, a panic
// belongs to the outermost frame. Commit and Abort are nil-safe, so an
// entry point that never staged anything (liveTxn never called) finishes
// without touching the engine.
func (e *Explainer) finishEntry(owned bool, errp *error) {
	if !owned {
		return
	}
	txn := e.txn
	e.txn, e.entryOpen = nil, false
	if r := recover(); r != nil {
		txn.Abort()
		panic(r)
	}
	if errp != nil && *errp != nil {
		txn.Abort()
		return
	}
	txn.Commit()
}

// liveTxn returns the open entry point's cache transaction, creating it on
// first use. Store paths (bind, cachedGame, Repair's diff store) call
// this; read-only paths consult e.txn directly — a nil txn falls through
// to the shared caches, so lookups before the first store are served
// exactly as they would be inside the transaction.
func (e *Explainer) liveTxn() *exec.Txn {
	if e.entryOpen && e.txn == nil {
		e.txn = e.Engine.Begin()
	}
	return e.txn
}

// bind routes a game's shared-cache enrollment through the open
// transaction when there is one, falling back to direct engine bindings
// (games constructed and sampled outside any entry point keep the old
// immediate-store behavior).
func (e *Explainer) bind(desc string) *exec.Binding {
	if t := e.liveTxn(); t != nil {
		return t.Bind(desc, e.Dirty.Generation)
	}
	return e.Engine.Bind(desc, e.Dirty.Generation)
}

// pool returns the session worker pool (the nil serial pool without an
// engine).
func (e *Explainer) pool() *exec.Pool { return e.Engine.Pool() }

// planner returns the compiled constraint-set plan, nil for unplanned
// execution.
func (e *Explainer) planner() dc.SetPlanner { return e.Plan }

// cachedGame wraps a deterministic game with the session's shared
// coalition cache under the given game descriptor, falling back to a
// private per-game cache when the explainer has no engine. desc must come
// from gameDesc so equal descriptors imply equal characteristic functions
// at any fixed table generation.
func (e *Explainer) cachedGame(desc string, g shapley.Game) shapley.Game {
	if t := e.liveTxn(); t != nil {
		return t.CachedGame(desc, e.Dirty.Generation, g)
	}
	return e.Engine.CachedGame(desc, e.Dirty.Generation, g)
}

// gameDesc builds the shared-cache descriptor of a game: the kind-specific
// parts plus everything every game's characteristic function closes over —
// the black box and the full constraint set (cell and group games depend
// on the DCs through the repair; the constraint game's player roster *is*
// the DC list, so editing constraints re-keys every game). Table contents
// are deliberately absent: they are covered by the generation stamp.
//
// Every component is length-prefixed: descriptors must be *injective* in
// their components — two distinct games interning one cache ID would
// silently serve each other's coalition values — and parts carry
// user-controlled text (constraint strings, group names) that could
// otherwise alias the framing.
func (e *Explainer) gameDesc(kind string, parts ...string) string {
	var b strings.Builder
	b.WriteString(kind)
	writePart := func(p string) {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
	}
	for _, p := range parts {
		writePart(p)
	}
	writePart(e.Alg.Name())
	for _, c := range e.DCs {
		writePart(c.String())
	}
	return b.String()
}

// refDesc renders a cell reference for descriptors (row/col indexes, not
// names: stable under column renames within one session, cheap to build).
func refDesc(ref table.CellRef) string {
	return strconv.Itoa(ref.Row) + "," + strconv.Itoa(ref.Col)
}

// targetDesc renders a target value for descriptors through its
// kind-tagged identity key: Value.String would collapse String("5"),
// Int(5) and Float(5.0) into "5", aliasing games whose characteristic
// functions differ (SameContent is kind-sensitive across non-numeric
// kinds).
func targetDesc(v table.Value) string { return string(v.AppendKey(nil)) }

// playersDesc fingerprints a cell-game player roster by vector index, in
// player order. Coalition cache keys are positional (player k is bit k),
// so two games may share memoized coalition values only when their rosters
// are identical as sequences; the explicit count keeps the fingerprint
// injective against the other descriptor parts.
func playersDesc(t *table.Table, players []table.CellRef) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(len(players)))
	b.WriteByte(':')
	for i, ref := range players {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(t.VecIndex(ref)))
	}
	return b.String()
}

// constraintGameDesc is the shared descriptor of NewConstraintGame(cell,
// target): one descriptor — not one per report kind — so the constraint
// ranking, the Banzhaf ablation, the interaction matrix and the why-not
// search all draw from one pool of memoized coalition values.
func (e *Explainer) constraintGameDesc(cell table.CellRef, target table.Value) string {
	return e.gameDesc("constraint-game", "cell="+refDesc(cell), "target="+targetDesc(target))
}

// repairDesc is the repair-target cache descriptor of the full-input
// repair: within a fixed table generation the clean table is a pure
// function of the black box and the constraint set, both of which gameDesc
// folds in. No cell or target parts: one full repair serves every cell's
// Target resolution. Memoized (see repairDescMemo) — this runs once per
// Target/Repair call, the hottest descriptor in the edit loop.
func (e *Explainer) repairDesc() string {
	if e.repairDescMemo == "" {
		e.repairDescMemo = e.gameDesc("repair")
	}
	return e.repairDescMemo
}

// cachedRepairDiffs returns the memoized representation-exact clean-table
// diff (table.DiffExact) of the full repair at the dirty table's current
// generation, when a session engine is wired and a previous Repair/Target
// stored one.
func (e *Explainer) cachedRepairDiffs() ([]table.CellDiff, bool) {
	if e.txn != nil {
		return e.txn.RepairLookup(e.repairDesc(), e.Dirty.Generation())
	}
	rc := e.Engine.RepairTargets()
	if rc == nil {
		return nil, false
	}
	return rc.Lookup(e.repairDesc(), e.Dirty.Generation())
}

// NewExplainer validates the inputs and builds an Explainer.
func NewExplainer(alg repair.Algorithm, dcs []*dc.Constraint, dirty *table.Table) (*Explainer, error) {
	if alg == nil {
		return nil, fmt.Errorf("core: nil repair algorithm")
	}
	if dirty == nil || dirty.NumRows() == 0 {
		return nil, fmt.Errorf("core: empty dirty table")
	}
	if err := dc.ValidateSet(dcs, dirty.Schema()); err != nil {
		return nil, err
	}
	return &Explainer{Alg: alg, DCs: dcs, Dirty: dirty}, nil
}

// Repair runs the black box on the full input and returns the clean table
// together with the repaired cells (the "blue cells" of Figure 2b). With a
// session engine and a PartitionedRepairer black box, disjoint-bucket
// passes run on the engine pool — bit-identical to the serial repair by
// the PartitionedRepairer contract.
//
// With a session engine the result is materialized in the engine's
// repair-target cache: a repeat call at the same table generation and
// constraint set replays the stored diff onto a clone of the dirty table
// instead of re-running the black box. The cache stores the
// representation-exact diff (table.DiffExact), so the replayed clean
// table reproduces the black box's output cell-for-cell — including
// numeric-kind changes that SameContent unifies, which kind-sensitive
// consumers (hash-join keys) would otherwise see differ between a hit and
// a miss — and the returned "repaired cells" diff (its !SameContent
// subset) is identical to the uncached table.Diff. SetCell invalidates by
// generation, AddDC/RemoveDC by descriptor (Engine.InvalidateCache).
func (e *Explainer) Repair(ctx context.Context) (_ *table.Table, _ []table.CellDiff, err error) {
	defer e.finishEntry(e.begin(), &err)
	rc := e.Engine.RepairTargets()
	var desc string
	var gen uint64
	if rc != nil {
		desc, gen = e.repairDesc(), e.Dirty.Generation()
		if exact, ok := e.cachedRepairDiffs(); ok {
			clean := e.Dirty.Clone()
			for _, d := range exact {
				clean.SetRef(d.Ref, d.Clean)
			}
			return clean, repairedSubset(exact), nil
		}
	}
	var clean *table.Table
	if pl, ok := e.Alg.(repair.PlannedRepairer); ok && e.Plan != nil {
		clean, err = pl.RepairIntoPlanned(ctx, e.DCs, e.Dirty, nil, e.Engine.Pool(), e.Plan)
	} else if pr, ok := e.Alg.(repair.PartitionedRepairer); ok && e.Engine.Workers() > 1 {
		clean, err = pr.RepairIntoParallel(ctx, e.DCs, e.Dirty, nil, e.Engine.Pool())
	} else {
		clean, err = e.Alg.Repair(ctx, e.DCs, e.Dirty)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: repairing: %w", err)
	}
	if clean.NumRows() != e.Dirty.NumRows() || clean.NumCols() != e.Dirty.NumCols() {
		return nil, nil, fmt.Errorf("core: black box %s changed table shape", e.Alg.Name())
	}
	if rc != nil {
		// One exact scan serves both outputs: the memoized diff and its
		// !SameContent subset, which is exactly table.Diff's answer. The
		// store is staged in the entry point's transaction when one is
		// open, so an abort after this point unpublishes it.
		exact, derr := table.DiffExact(e.Dirty, clean)
		if derr != nil {
			return nil, nil, derr
		}
		if t := e.liveTxn(); t != nil {
			t.RepairStore(desc, gen, exact)
		} else {
			rc.Store(desc, gen, exact)
		}
		return clean, repairedSubset(exact), nil
	}
	diffs, derr := table.Diff(e.Dirty, clean)
	if derr != nil {
		return nil, nil, derr
	}
	return clean, diffs, nil
}

// repairedSubset filters a representation-exact diff down to the cells
// whose *content* changed — the "repaired cells" answer table.Diff gives
// (every SameContent difference is also an exact difference).
func repairedSubset(exact []table.CellDiff) []table.CellDiff {
	diffs := make([]table.CellDiff, 0, len(exact))
	for _, d := range exact {
		if !d.Dirty.SameContent(d.Clean) {
			diffs = append(diffs, d)
		}
	}
	return diffs
}

// Target returns the clean value the full input assigns to the cell of
// interest and whether the cell was repaired at all (unchanged cells have
// nothing to explain). On a repair-target cache hit it is answered by a
// scan of the memoized diff — no clean table is materialized at all, which
// is what makes the repeat explain screens of the iterative loop (every
// report kind re-resolves its target) cost per-diff instead of per-repair.
func (e *Explainer) Target(ctx context.Context, cell table.CellRef) (_ table.Value, _ bool, err error) {
	defer e.finishEntry(e.begin(), &err)
	if diffs, ok := e.cachedRepairDiffs(); ok {
		for _, d := range diffs {
			if d.Ref == cell {
				// The cache stores the representation-exact diff, so a cell
				// may appear with a kind-only change; "repaired" is the
				// SameContent predicate, exactly as below.
				return d.Clean, !d.Dirty.SameContent(d.Clean), nil
			}
		}
		return e.Dirty.GetRef(cell), false, nil
	}
	clean, _, rerr := e.Repair(ctx)
	if rerr != nil {
		return table.Null(), false, rerr
	}
	target := clean.GetRef(cell)
	repaired := !e.Dirty.GetRef(cell).SameContent(target)
	return target, repaired, nil
}

// ConstraintGame is the DC game of §2.2: player i is e.DCs[i], and
// v(S) = 1 iff running the black box with only the constraints in S repairs
// the cell of interest to the target value.
type ConstraintGame struct {
	exp    *Explainer
	cell   table.CellRef
	target table.Value
}

// NewConstraintGame builds the constraint game for a cell of interest.
// target must be the clean value from Target.
func (e *Explainer) NewConstraintGame(cell table.CellRef, target table.Value) *ConstraintGame {
	return &ConstraintGame{exp: e, cell: cell, target: target}
}

// NumPlayers implements shapley.Game.
func (g *ConstraintGame) NumPlayers() int { return len(g.exp.DCs) }

// Value implements shapley.Game.
func (g *ConstraintGame) Value(ctx context.Context, coalition []bool) (float64, error) {
	subset := make([]*dc.Constraint, 0, len(g.exp.DCs))
	for i, in := range coalition {
		if in {
			subset = append(subset, g.exp.DCs[i])
		}
	}
	return repair.CellRepairedPlanned(ctx, g.exp.Alg, subset, g.exp.Dirty, g.cell, g.target, g.exp.pool(), g.exp.planner())
}

// ReplacementPolicy selects what happens to cells outside a coalition in
// the cell game.
type ReplacementPolicy uint8

const (
	// ReplaceWithNull nulls absent cells — the paper's formal definition
	// ("∀tj[C] ∈ T_d \ S. tj[C] = null"). Deterministic.
	ReplaceWithNull ReplacementPolicy = iota
	// ReplaceFromColumn draws absent cells from their column's empirical
	// distribution — the Example 2.5 sampling procedure. Stochastic.
	ReplaceFromColumn
)

// CellGame is the cell game of §2.2: player k is the k-th cell of T_d in
// vectorization order, and v(S) = 1 iff the black box, run on the table
// with absent cells replaced per the policy, repairs the cell of interest
// to the target value.
//
// The cell of interest itself is pinned: it keeps its dirty value in every
// coalition and is not a player. The repair event "España → Spain" is
// undefined on a table that does not contain the España being repaired;
// pinning makes the game well-defined and reproduces the ranking of
// Example 2.4 (t5[League] on top). Treating the cell of interest as a
// player instead makes it an almost-veto player that dominates the ranking
// — an artifact, not an explanation (see EXPERIMENTS.md E5).
type CellGame struct {
	exp    *Explainer
	cell   table.CellRef
	target table.Value
	policy ReplacementPolicy
	stats  *table.Stats
	// players maps player index -> cell; defaults to all cells.
	players []table.CellRef
	// origs[k] is the dirty value of players[k]; the undo value the scratch
	// path restores after masking.
	origs []table.Value
	// scratch pools reusable clones of the dirty table. Every evaluation
	// borrows one, masks absent cells in place, runs the black box, and
	// restores only the touched cells — zero steady-state allocation instead
	// of one full Clone + O(cells) masking pass per evaluation.
	scratch sync.Pool
	// snapGen is the dirty-table generation the snapshots (origs, stats,
	// pooled scratch clones) reflect. Session edits between evaluations bump
	// the live table's generation; sync re-snapshots lazily so a stale undo
	// value is never restored into a scratch (the silent-corruption bug this
	// field exists to prevent). Read atomically on the eval hot path.
	snapGen uint64
	// syncMu serializes re-snapshotting.
	syncMu sync.Mutex
	// shared is the game's handle on the session's shared coalition cache
	// (nil without an engine). Only the deterministic null policy consults
	// it: under ReplaceFromColumn a coalition's value is a random
	// realization, which must never be memoized. Set by BindSharedCache
	// after the player roster is final; RestrictPlayers clears it, because
	// coalition cache keys are positional in the roster.
	shared *exec.Binding
}

// cellScratch is one pooled working table plus its undo list.
type cellScratch struct {
	tbl *table.Table
	// touched lists the player indices currently masked, so restoration is
	// O(|touched|) rather than O(cells).
	touched []int
	// gen is the dirty-table generation the clone was taken at; a pooled
	// scratch from before a session edit no longer matches origs and is
	// discarded instead of reused.
	gen uint64
}

// sync re-snapshots origs and stats when the live dirty table was edited
// since the last snapshot (core.Session.SetCell between evaluations).
// Pooled scratch clones from older generations are discarded lazily by
// getScratch. Evaluations running concurrently with an edit are not
// supported (the table itself is not concurrency-safe); sync makes the
// sequential edit→re-evaluate loop of §3/§4 correct without rebuilding the
// game. Note the game's target is a caller-supplied constant: if the edit
// changes what the full repair assigns to the cell of interest, the caller
// must derive a new target (and usually a new game) — sync keeps v(S)
// well-defined, not the question unchanged.
func (g *CellGame) sync() {
	cur := g.exp.Dirty.Generation()
	if atomic.LoadUint64(&g.snapGen) == cur {
		return
	}
	g.syncMu.Lock()
	defer g.syncMu.Unlock()
	if g.snapGen == cur {
		return
	}
	for k, ref := range g.players {
		//lint:allow editlog origs is the game's private snapshot buffer allocated by NewCellGame, not table storage
		g.origs[k] = g.exp.Dirty.GetRef(ref)
	}
	// Catch the stats snapshot up from the edit log (per-column deltas;
	// equivalent to a full rebuild) instead of rebuilding wholesale.
	g.stats.Sync(g.exp.Dirty)
	atomic.StoreUint64(&g.snapGen, cur)
}

func (g *CellGame) getScratch() *cellScratch {
	gen := atomic.LoadUint64(&g.snapGen)
	for {
		sc, ok := g.scratch.Get().(*cellScratch)
		if !ok {
			break
		}
		if sc.gen == gen {
			return sc
		}
		// Stale clone from before a session edit: drop it.
	}
	return &cellScratch{tbl: g.exp.Dirty.Clone(), gen: gen}
}

func (g *CellGame) putScratch(sc *cellScratch) { g.scratch.Put(sc) }

// NewCellGame builds the cell game for a cell of interest; target must be
// the clean value from Target.
func (e *Explainer) NewCellGame(cell table.CellRef, target table.Value, policy ReplacementPolicy) *CellGame {
	g := &CellGame{
		exp:    e,
		cell:   cell,
		target: target,
		policy: policy,
		stats:  table.NewStats(e.Dirty),
		// Stamp before RestrictPlayers so the just-built stats snapshot is
		// not rebuilt a second time during construction.
		snapGen: e.Dirty.Generation(),
	}
	g.RestrictPlayers(e.Dirty.Cells())
	return g
}

// RestrictPlayers scopes the game to the given cells (players become
// 0..len(cells)-1 in order); other cells stay at their dirty values in
// every coalition. Restricting to the cells a game can actually depend on
// leaves Shapley values of the kept players unchanged when the dropped
// cells are dummies (see TestDummyDoesNotPerturbOthersProperty), and makes
// exact enumeration feasible on small instances. The pinned cell of
// interest is filtered out if present.
func (g *CellGame) RestrictPlayers(cells []table.CellRef) {
	g.syncMu.Lock()
	defer g.syncMu.Unlock()
	cur := g.exp.Dirty.Generation()
	if g.snapGen != cur {
		// The stats snapshot is part of the generation-stamped state: an
		// edit between construction and restriction must refresh it too, or
		// ReplaceFromColumn would keep sampling the pre-edit distribution.
		g.stats.Sync(g.exp.Dirty)
	}
	g.players = g.players[:0]
	g.origs = g.origs[:0]
	for _, ref := range cells {
		if ref != g.cell {
			g.players = append(g.players, ref)
			g.origs = append(g.origs, g.exp.Dirty.GetRef(ref))
		}
	}
	// The roster moved, so the positional coalition keys of any earlier
	// binding no longer describe this game; drop it (re-bind after).
	g.shared = nil
	atomic.StoreUint64(&g.snapGen, cur)
}

// BindSharedCache enrolls the game's deterministic coalition evaluations —
// Value, and the null-policy walk values driven by SampleAll, SamplePlayer
// and TopK — in the session's shared coalition cache. The descriptor folds
// in the cell, target and the exact player roster (positional keys); a nil
// engine or a stochastic policy leaves the game unbound. Values are
// deterministic per (coalition, generation), so cache participation can
// never change an estimate — in particular the Workers=1 ≡ Workers=N
// bit-identity of the samplers is preserved (no RNG draw is skipped: the
// null policy consumes none during Value).
func (g *CellGame) BindSharedCache() {
	if g.policy != ReplaceWithNull {
		return
	}
	desc := g.exp.gameDesc("cell-game-null",
		"cell="+refDesc(g.cell), "target="+targetDesc(g.target),
		"players="+playersDesc(g.exp.Dirty, g.players))
	g.shared = g.exp.bind(desc)
}

// Players returns the cells acting as players, in player order.
func (g *CellGame) Players() []table.CellRef {
	return append([]table.CellRef(nil), g.players...)
}

// NumPlayers implements shapley.Game and shapley.StochasticGame.
func (g *CellGame) NumPlayers() int { return len(g.players) }

// Value implements shapley.Game under the deterministic null policy.
// It errors for ReplaceFromColumn, which needs an RNG — use SampleValue.
func (g *CellGame) Value(ctx context.Context, coalition []bool) (float64, error) {
	if g.policy != ReplaceWithNull {
		return 0, fmt.Errorf("core: deterministic Value requires ReplaceWithNull; use SampleValue for ReplaceFromColumn")
	}
	return g.eval(ctx, coalition, nil)
}

// SampleValue implements shapley.StochasticGame: absent cells are replaced
// per the policy, with randomness (if any) drawn from rng.
func (g *CellGame) SampleValue(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	return g.eval(ctx, coalition, rng)
}

// replacement computes the out-of-coalition value for player k per the
// policy.
func (g *CellGame) replacement(k int, rng *rand.Rand) (table.Value, error) {
	switch g.policy {
	case ReplaceWithNull:
		return table.Null(), nil
	case ReplaceFromColumn:
		if rng == nil {
			return table.Null(), fmt.Errorf("core: ReplaceFromColumn needs an RNG")
		}
		v, ok := g.stats.Column(g.players[k].Col).Sample(rng)
		if !ok {
			v = table.Null()
		}
		return v, nil
	default:
		return table.Null(), fmt.Errorf("core: unknown replacement policy %d", g.policy)
	}
}

// eval is the scratch-table fast path: borrow a pooled working table, mask
// absent cells in place, run the black box, restore only the touched cells.
// Steady state it allocates nothing (see TestCellGameEvalAllocs). Bound
// deterministic games consult the session's shared coalition cache first.
func (g *CellGame) eval(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	// g.shared is nil unless BindSharedCache enrolled this (null-policy)
	// game, and a nil binding always misses, so no policy branch is needed:
	// stochastic realizations can never be memoized. evalUncached syncs to
	// the live generation, so a value computed after a concurrent edit
	// carries a stale gen stamp and is dropped by Store.
	v, gen, ok := g.shared.Lookup(coalition)
	if ok {
		return v, nil
	}
	v, err := g.evalUncached(ctx, coalition, rng)
	if err == nil {
		g.shared.Store(gen, coalition, v)
	}
	return v, err
}

// evalUncached is eval without the shared-cache consult.
func (g *CellGame) evalUncached(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	g.sync()
	sc := g.getScratch()
	sc.touched = sc.touched[:0]
	for k, in := range coalition {
		if in {
			continue
		}
		v, err := g.replacement(k, rng)
		if err != nil {
			g.restore(sc)
			g.putScratch(sc)
			return 0, err
		}
		sc.tbl.SetRef(g.players[k], v)
		sc.touched = append(sc.touched, k)
	}
	out, err := repair.CellRepairedPlanned(ctx, g.exp.Alg, g.exp.DCs, sc.tbl, g.cell, g.target, g.exp.pool(), g.exp.planner())
	g.restore(sc)
	g.putScratch(sc)
	return out, err
}

// restore undoes every masked cell of the scratch, returning it to a clean
// copy of the dirty table.
func (g *CellGame) restore(sc *cellScratch) {
	for _, k := range sc.touched {
		sc.tbl.SetRef(g.players[k], g.origs[k])
	}
	sc.touched = sc.touched[:0]
}

// evalClone is the seed's clone-per-evaluation path, kept for
// cross-validation: the golden equivalence tests prove the scratch and walk
// paths reproduce its estimates bit-for-bit. Reach it through CloneEval.
func (g *CellGame) evalClone(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	g.sync()
	masked := g.exp.Dirty.Clone()
	for k, in := range coalition {
		if in {
			continue
		}
		v, err := g.replacement(k, rng)
		if err != nil {
			return 0, err
		}
		masked.SetRef(g.players[k], v)
	}
	return repair.CellRepaired(ctx, g.exp.Alg, g.exp.DCs, masked, g.cell, g.target)
}

// CloneEval returns a view of the game that evaluates through the legacy
// clone-per-evaluation path and hides the IncrementalGame interface, so
// samplers take their generic path. It exists for cross-validation (golden
// equivalence tests) and A/B benchmarks against the scratch fast path.
func (g *CellGame) CloneEval() shapley.StochasticGame { return cloneEvalGame{g} }

// cloneEvalGame adapts CellGame to the seed evaluation strategy. It
// deliberately does not implement shapley.IncrementalGame.
type cloneEvalGame struct{ g *CellGame }

// NumPlayers implements shapley.StochasticGame.
func (c cloneEvalGame) NumPlayers() int { return c.g.NumPlayers() }

// SampleValue implements shapley.StochasticGame.
func (c cloneEvalGame) SampleValue(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	return c.g.evalClone(ctx, coalition, rng)
}

// Value implements shapley.Game under the deterministic null policy.
func (c cloneEvalGame) Value(ctx context.Context, coalition []bool) (float64, error) {
	if c.g.policy != ReplaceWithNull {
		return 0, fmt.Errorf("core: deterministic Value requires ReplaceWithNull; use SampleValue for ReplaceFromColumn")
	}
	return c.g.evalClone(ctx, coalition, nil)
}

// NewWalk implements shapley.IncrementalGame: the samplers' permutation
// prefix walks grow the coalition one player at a time, and under the null
// policy each step is a single SetRef on the walk's scratch table.
func (g *CellGame) NewWalk() shapley.CoalitionWalk {
	g.sync()
	return &cellWalk{g: g, sc: g.getScratch(), in: make([]bool, len(g.players))}
}

// cellWalk holds one borrowed scratch table for a worker's sequence of
// permutation walks. Confined to one goroutine.
type cellWalk struct {
	g  *CellGame
	sc *cellScratch
	// in mirrors coalition membership; needed under ReplaceFromColumn,
	// where every absent cell is redrawn per evaluation.
	in []bool
	// masked reports whether the scratch table currently has the absent
	// cells masked (i.e. Reset has run).
	masked bool
}

// Reset implements shapley.CoalitionWalk: empty coalition, every player
// masked.
func (w *cellWalk) Reset() {
	for k := range w.in {
		w.in[k] = false
	}
	if w.g.policy == ReplaceWithNull {
		for _, ref := range w.g.players {
			w.sc.tbl.SetRef(ref, table.Null())
		}
	}
	w.masked = true
}

// Include implements shapley.CoalitionWalk: the single-cell delta. The
// player's cell returns to its dirty value; under ReplaceFromColumn the
// next Value stops redrawing it.
func (w *cellWalk) Include(p int) {
	if w.in[p] {
		return
	}
	w.in[p] = true
	w.sc.tbl.SetRef(w.g.players[p], w.g.origs[p])
}

// Exclude implements shapley.DeltaWalk: the inverse single-cell delta,
// letting samplers morph one sample's coalition into the next instead of
// re-masking every player from the empty coalition. Under the null policy
// the cell returns to Null; under ReplaceFromColumn the next Value simply
// resumes redrawing it.
func (w *cellWalk) Exclude(p int) {
	if !w.in[p] {
		return
	}
	w.in[p] = false
	if w.g.policy == ReplaceWithNull {
		w.sc.tbl.SetRef(w.g.players[p], table.Null())
	}
}

// Value implements shapley.CoalitionWalk. Under the null policy the scratch
// table already holds the coalition's exact masked state; under column
// sampling every absent cell is redrawn in player order, consuming the RNG
// exactly as the clone path's SampleValue does (the golden-equivalence
// contract).
//
// Null-policy values are deterministic per coalition, so a bound walk
// consults the session's shared coalition cache (keyed by the membership
// mirror) before running the black box — this is how the sampled paths
// participate in the cache without leaving the walk protocol. No RNG is
// consumed under the null policy, so a hit and a computed value leave the
// sampler's RNG stream identical: estimates stay bit-identical for every
// Workers value and every cache state. (A stochastic walk's binding is
// nil — stochastic games never bind — so its Lookup always misses.)
//
// Lookups and stores are both pinned to the *scratch's* snapshot
// generation, not the live one: the walk computes from a table cloned at
// w.sc.gen, so if a concurrent session edit bumped the live generation
// mid-walk, (a) a store of the now-stale value is dropped by the shard's
// generation guard instead of being served as current, and (b) a lookup
// cannot hit a post-edit value some other explain stored — the walk's
// samples all reflect one table state.
func (w *cellWalk) Value(ctx context.Context, rng *rand.Rand) (float64, error) {
	if w.g.policy != ReplaceWithNull {
		for k, in := range w.in {
			if in {
				continue
			}
			v, err := w.g.replacement(k, rng)
			if err != nil {
				return 0, err
			}
			w.sc.tbl.SetRef(w.g.players[k], v)
		}
	}
	if v, ok := w.g.shared.LookupAt(w.sc.gen, w.in); ok {
		return v, nil
	}
	v, err := repair.CellRepairedPlanned(ctx, w.g.exp.Alg, w.g.exp.DCs, w.sc.tbl, w.g.cell, w.g.target, w.g.exp.pool(), w.g.exp.planner())
	if err == nil {
		w.g.shared.Store(w.sc.gen, w.in, v)
	}
	return v, err
}

// Close implements shapley.CoalitionWalk: restores the scratch to the dirty
// contents and returns it to the pool.
func (w *cellWalk) Close() {
	if w.masked || w.g.policy != ReplaceWithNull {
		for k, ref := range w.g.players {
			w.sc.tbl.SetRef(ref, w.g.origs[k])
		}
	}
	w.g.putScratch(w.sc)
	w.sc = nil
}

// RelevantCells returns the cells that can plausibly influence the repair
// of the cell of interest under the constraint set: every cell in a column
// mentioned by some constraint, plus the full row of the cell of interest,
// excluding the (pinned) cell of interest itself. Cells outside this set
// are dummies for constraint-driven repairers (they never enter a
// violation check), so restricting the game to them preserves Shapley
// values while shrinking the player space.
func (e *Explainer) RelevantCells(cell table.CellRef) []table.CellRef {
	cols := make(map[int]bool)
	for _, c := range e.DCs {
		for _, attr := range c.Attributes() {
			if idx, ok := e.Dirty.Schema().Index(attr); ok {
				cols[idx] = true
			}
		}
	}
	var out []table.CellRef
	for _, ref := range e.Dirty.Cells() {
		if ref == cell {
			continue
		}
		if cols[ref.Col] || ref.Row == cell.Row {
			out = append(out, ref)
		}
	}
	return out
}
