package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/shapley"
	"repro/internal/table"
)

// Entry is one ranked line of an explanation: a constraint or a cell with
// its Shapley value.
type Entry struct {
	// Name is the constraint ID (e.g. "C3") or the cell in the paper's
	// notation (e.g. "t5[League]").
	Name string
	// Shapley is the (exact or estimated) Shapley value.
	Shapley float64
	// CI95 is the half-width of the 95% confidence interval; zero for
	// exact computation.
	CI95 float64
	// Samples is the number of Monte-Carlo samples; zero for exact.
	Samples int
}

// Report is a ranked explanation for the repair of one cell, highest
// Shapley value first — what the explanation screen of Figure 3c shows.
type Report struct {
	// Kind is "constraints" or "cells".
	Kind string
	// Cell is the explained cell in paper notation.
	Cell string
	// Target is the clean value whose derivation is being explained.
	Target string
	// Algorithm is the black box's name.
	Algorithm string
	// Entries are sorted by descending Shapley value (ties by name).
	Entries []Entry
}

// String renders the report as an aligned text ranking.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Explanation (%s) for repair of %s -> %q by %s\n", r.Kind, r.Cell, r.Target, r.Algorithm)
	for i, e := range r.Entries {
		if e.Samples > 0 {
			fmt.Fprintf(&b, "%3d. %-16s %+.4f ± %.4f (n=%d)\n", i+1, e.Name, e.Shapley, e.CI95, e.Samples)
		} else {
			fmt.Fprintf(&b, "%3d. %-16s %+.4f\n", i+1, e.Name, e.Shapley)
		}
	}
	return b.String()
}

// Top returns the highest-ranked entry; ok is false for empty reports.
func (r *Report) Top() (Entry, bool) {
	if len(r.Entries) == 0 {
		return Entry{}, false
	}
	return r.Entries[0], true
}

// Find returns the entry with the given name.
func (r *Report) Find(name string) (Entry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// sortEntries orders by descending Shapley, ties by name for determinism.
func sortEntries(entries []Entry) {
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].Shapley != entries[b].Shapley {
			return entries[a].Shapley > entries[b].Shapley
		}
		return entries[a].Name < entries[b].Name
	})
}

// ExplainConstraints computes the exact Shapley value of every constraint
// for the repair of the cell of interest and returns the ranking
// (Figure 1's numbers). The black box is memoized on the coalition, so the
// 2^n enumeration costs at most 2^n repair runs.
func (e *Explainer) ExplainConstraints(ctx context.Context, cell table.CellRef) (_ *Report, err error) {
	defer e.finishEntry(e.begin(), &err)
	target, repaired, err := e.Target(ctx, cell)
	if err != nil {
		return nil, err
	}
	if !repaired {
		return nil, fmt.Errorf("core: cell %s was not repaired; nothing to explain", e.Dirty.RefName(cell))
	}
	game := e.cachedGame(e.constraintGameDesc(cell, target), e.NewConstraintGame(cell, target))
	values, err := shapley.ExactSubsets(ctx, game)
	if err != nil {
		return nil, fmt.Errorf("core: constraint Shapley: %w", err)
	}
	report := &Report{
		Kind:      "constraints",
		Cell:      e.Dirty.RefName(cell),
		Target:    target.String(),
		Algorithm: e.Alg.Name(),
	}
	for i, v := range values {
		report.Entries = append(report.Entries, Entry{Name: e.DCs[i].ID, Shapley: v})
	}
	sortEntries(report.Entries)
	return report, nil
}

// CellExplainOptions configures ExplainCells.
type CellExplainOptions struct {
	// Samples is the number of sampled permutations (default 500). Each
	// permutation walk costs len(players)+1 black-box runs and yields one
	// marginal per player.
	Samples int
	// Workers is the sampling fan-out (default GOMAXPROCS).
	Workers int
	// Seed makes runs reproducible.
	Seed int64
	// Policy selects null masking (paper's definition) or column-sampled
	// replacement (Example 2.5). Default ReplaceWithNull.
	Policy ReplacementPolicy
	// RestrictToRelevant scopes players to RelevantCells, dropping cells
	// that are provably dummies for constraint-driven repairers.
	RestrictToRelevant bool
}

func (o CellExplainOptions) withDefaults() CellExplainOptions {
	if o.Samples <= 0 {
		o.Samples = 500
	}
	return o
}

// ExplainCells estimates the Shapley value of every table cell for the
// repair of the cell of interest by permutation sampling and returns the
// ranking (the cell half of the explanation screen).
func (e *Explainer) ExplainCells(ctx context.Context, cell table.CellRef, opts CellExplainOptions) (_ *Report, err error) {
	defer e.finishEntry(e.begin(), &err)
	opts = opts.withDefaults()
	target, repaired, err := e.Target(ctx, cell)
	if err != nil {
		return nil, err
	}
	if !repaired {
		return nil, fmt.Errorf("core: cell %s was not repaired; nothing to explain", e.Dirty.RefName(cell))
	}
	game := e.NewCellGame(cell, target, opts.Policy)
	if opts.RestrictToRelevant {
		game.RestrictPlayers(e.RelevantCells(cell))
	}
	// Under the deterministic null policy the sampled coalition values join
	// the session's shared cache: a repeat explain (or the exact path over
	// the same roster) replays them instead of re-running the black box.
	game.BindSharedCache()
	ests, err := shapley.SampleAll(ctx, game, shapley.Options{
		Samples: opts.Samples,
		Workers: opts.Workers,
		Seed:    opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: cell Shapley: %w", err)
	}
	report := &Report{
		Kind:      "cells",
		Cell:      e.Dirty.RefName(cell),
		Target:    target.String(),
		Algorithm: e.Alg.Name(),
	}
	players := game.Players()
	for k, est := range ests {
		report.Entries = append(report.Entries, Entry{
			Name:    e.Dirty.RefName(players[k]),
			Shapley: est.Mean,
			CI95:    est.CI95(),
			Samples: est.N,
		})
	}
	sortEntries(report.Entries)
	return report, nil
}

// ExplainCellsExact computes exact cell Shapley values by subset
// enumeration under the null policy. Only feasible when the (possibly
// restricted) player count is small; used to validate the sampler.
func (e *Explainer) ExplainCellsExact(ctx context.Context, cell table.CellRef, restrict bool) (_ *Report, err error) {
	defer e.finishEntry(e.begin(), &err)
	target, repaired, err := e.Target(ctx, cell)
	if err != nil {
		return nil, err
	}
	if !repaired {
		return nil, fmt.Errorf("core: cell %s was not repaired; nothing to explain", e.Dirty.RefName(cell))
	}
	game := e.NewCellGame(cell, target, ReplaceWithNull)
	if restrict {
		game.RestrictPlayers(e.RelevantCells(cell))
	}
	// The game's own binding replaces the cachedGame wrapper here: the
	// descriptor is keyed on the exact roster, so the exact enumeration and
	// the sampled null-policy paths over the same roster share one pool of
	// memoized coalition values.
	game.BindSharedCache()
	values, err := shapley.ExactSubsets(ctx, game)
	if err != nil {
		return nil, fmt.Errorf("core: exact cell Shapley: %w", err)
	}
	report := &Report{
		Kind:      "cells",
		Cell:      e.Dirty.RefName(cell),
		Target:    target.String(),
		Algorithm: e.Alg.Name(),
	}
	players := game.Players()
	for k, v := range values {
		report.Entries = append(report.Entries, Entry{Name: e.Dirty.RefName(players[k]), Shapley: v})
	}
	sortEntries(report.Entries)
	return report, nil
}
