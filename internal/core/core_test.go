package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/table"
)

func newPaperExplainer(t *testing.T) (*Explainer, *data.LaLiga) {
	t.Helper()
	ll := data.NewLaLiga()
	e, err := NewExplainer(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	return e, ll
}

func TestNewExplainerValidation(t *testing.T) {
	ll := data.NewLaLiga()
	if _, err := NewExplainer(nil, ll.DCs, ll.Dirty); err == nil {
		t.Error("nil algorithm must be rejected")
	}
	if _, err := NewExplainer(repair.NewAlgorithm1(), ll.DCs, nil); err == nil {
		t.Error("nil table must be rejected")
	}
	bad := []*dc.Constraint{dc.MustParse("!(t1.Nope = t2.Nope)")}
	if _, err := NewExplainer(repair.NewAlgorithm1(), bad, ll.Dirty); err == nil {
		t.Error("invalid constraint set must be rejected")
	}
}

func TestExplainerRepairMatchesFigure2(t *testing.T) {
	e, ll := newPaperExplainer(t)
	clean, diffs, err := e.Repair(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Equal(ll.Clean) {
		t.Fatalf("repair differs from Figure 2b:\n%s", clean)
	}
	if len(diffs) != 3 {
		t.Fatalf("repaired cells = %d, want 3", len(diffs))
	}
}

func TestTarget(t *testing.T) {
	e, ll := newPaperExplainer(t)
	target, repaired, err := e.Target(context.Background(), ll.CellOfInterest)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired || !target.Equal(table.String("Spain")) {
		t.Fatalf("target = %v, repaired = %v", target, repaired)
	}
	// An untouched cell reports repaired = false.
	_, repaired, err = e.Target(context.Background(), table.CellRef{Row: 0, Col: 0})
	if err != nil {
		t.Fatal(err)
	}
	if repaired {
		t.Error("t1[Team] must not be repaired")
	}
}

func TestExplainConstraintsFigure1(t *testing.T) {
	// The headline result: Shapley values of Figure 1 — C1 = C2 = 1/6,
	// C3 = 2/3, C4 = 0, ranked C3 first.
	e, ll := newPaperExplainer(t)
	report, err := e.ExplainConstraints(context.Background(), ll.CellOfInterest)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"C1": 1.0 / 6, "C2": 1.0 / 6, "C3": 2.0 / 3, "C4": 0}
	for id, w := range want {
		entry, ok := report.Find(id)
		if !ok {
			t.Fatalf("no entry for %s", id)
		}
		if math.Abs(entry.Shapley-w) > 1e-12 {
			t.Errorf("Shap(%s) = %v, want %v", id, entry.Shapley, w)
		}
	}
	top, _ := report.Top()
	if top.Name != "C3" {
		t.Errorf("top constraint = %s, want C3", top.Name)
	}
	if report.Kind != "constraints" || report.Cell != "t5[Country]" || report.Target != "Spain" {
		t.Errorf("report metadata: %+v", report)
	}
	// Efficiency: values sum to v(N) − v(∅) = 1.
	sum := 0.0
	for _, e := range report.Entries {
		sum += e.Shapley
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Σ Shapley = %v, want 1", sum)
	}
}

func TestExplainConstraintsUnrepairedCell(t *testing.T) {
	e, _ := newPaperExplainer(t)
	if _, err := e.ExplainConstraints(context.Background(), table.CellRef{Row: 0, Col: 0}); err == nil {
		t.Error("explaining an unrepaired cell must error")
	}
}

func TestExplainCellsExample24(t *testing.T) {
	// Example 2.4's qualitative claims under the formal (null-mask) game:
	// t5[League] has the highest Shapley value among all cells, and
	// t1[Place] has Shapley value 0.
	e, ll := newPaperExplainer(t)
	report, err := e.ExplainCells(context.Background(), ll.CellOfInterest, CellExplainOptions{
		Samples: 1500,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The cell of interest is pinned, so 35 of the 36 cells are players.
	if len(report.Entries) != ll.Dirty.NumCells()-1 {
		t.Fatalf("entries = %d, want %d", len(report.Entries), ll.Dirty.NumCells()-1)
	}
	if _, ok := report.Find("t5[Country]"); ok {
		t.Error("the pinned cell of interest must not appear as a player")
	}
	top, _ := report.Top()
	if top.Name != "t5[League]" {
		t.Errorf("top cell = %s (%.4f), want t5[League]\n%s", top.Name, top.Shapley, report)
	}
	place, ok := report.Find("t1[Place]")
	if !ok {
		t.Fatal("t1[Place] missing")
	}
	if place.Shapley != 0 {
		t.Errorf("Shap(t1[Place]) = %v, want exactly 0 (dummy player)", place.Shapley)
	}
	// Example 2.4 also argues t5[League] outranks t6[City].
	city, _ := report.Find("t6[City]")
	if city.Shapley >= top.Shapley {
		t.Errorf("t6[City] (%.4f) must rank below t5[League] (%.4f)", city.Shapley, top.Shapley)
	}
}

func TestExplainCellsReplaceFromColumn(t *testing.T) {
	// Example 2.5's replacement policy. Note an instructive divergence
	// from the null policy: the League column is constant ("La Liga" in
	// every row), so an absent t5[League] is always replaced by the same
	// value and the cell becomes an exact dummy under this policy. The
	// Country cells carry the signal instead.
	e, ll := newPaperExplainer(t)
	report, err := e.ExplainCells(context.Background(), ll.CellOfInterest, CellExplainOptions{
		Samples: 2000,
		Seed:    7,
		Policy:  ReplaceFromColumn,
	})
	if err != nil {
		t.Fatal(err)
	}
	top, _ := report.Top()
	if !strings.Contains(top.Name, "[Country]") {
		t.Errorf("top cell = %s (%.4f), want a Country cell\n%s", top.Name, top.Shapley, report)
	}
	league, _ := report.Find("t5[League]")
	if math.Abs(league.Shapley) > 3*league.CI95+1e-9 {
		t.Errorf("t5[League] must be a dummy under column replacement, got %.4f ± %.4f", league.Shapley, league.CI95)
	}
	place, _ := report.Find("t1[Place]")
	if math.Abs(place.Shapley) > 3*place.CI95+1e-9 {
		t.Errorf("t1[Place] must stay irrelevant, got %.4f ± %.4f", place.Shapley, place.CI95)
	}
}

func TestExplainCellsRestrictedMatchesFull(t *testing.T) {
	// Restricting players to RelevantCells must not change the ranking of
	// the cells kept (dropped cells are dummies for the rule repairer).
	// C1..C4 together mention every column, so restriction only prunes
	// under a narrower constraint set: use C1..C3 (Year and Place columns
	// drop out).
	ll := data.NewLaLiga()
	e, err := NewExplainer(repair.NewAlgorithm1(), ll.DCs[:3], ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.ExplainCells(context.Background(), ll.CellOfInterest, CellExplainOptions{Samples: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := e.ExplainCells(context.Background(), ll.CellOfInterest, CellExplainOptions{Samples: 2000, Seed: 11, RestrictToRelevant: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(restricted.Entries) >= len(full.Entries) {
		t.Fatalf("restriction did not shrink players: %d vs %d", len(restricted.Entries), len(full.Entries))
	}
	fullTop, _ := full.Top()
	resTop, _ := restricted.Top()
	if fullTop.Name != resTop.Name {
		t.Errorf("top differs: full %s vs restricted %s", fullTop.Name, resTop.Name)
	}
	for _, entry := range restricted.Entries {
		if fe, ok := full.Find(entry.Name); !ok {
			t.Errorf("restricted entry %s missing from full report", entry.Name)
		} else if math.Abs(fe.Shapley-entry.Shapley) > 0.15 {
			t.Errorf("%s: restricted %.3f vs full %.3f", entry.Name, entry.Shapley, fe.Shapley)
		}
	}
}

func TestRelevantCells(t *testing.T) {
	e, ll := newPaperExplainer(t)
	cells := e.RelevantCells(ll.CellOfInterest)
	// Columns mentioned by C1..C4: all six; relevant = all cells except
	// the pinned cell of interest.
	if len(cells) != 35 {
		t.Fatalf("relevant = %d, want 35", len(cells))
	}
	narrow, err := NewExplainer(repair.NewAlgorithm1(), ll.DCs[:2], ll.Dirty) // C1, C2: Team, City, Country
	if err != nil {
		t.Fatal(err)
	}
	cells = narrow.RelevantCells(ll.CellOfInterest)
	// 3 columns × 6 rows = 18, plus t5's other 3 cells = 21, minus the
	// pinned t5[Country] = 20.
	if len(cells) != 20 {
		t.Fatalf("relevant = %d, want 20", len(cells))
	}
	for _, ref := range cells {
		if ref == ll.CellOfInterest {
			t.Fatal("cell of interest must be excluded")
		}
	}
}

func TestCellGameValueRequiresNullPolicy(t *testing.T) {
	e, ll := newPaperExplainer(t)
	g := e.NewCellGame(ll.CellOfInterest, table.String("Spain"), ReplaceFromColumn)
	if _, err := g.Value(context.Background(), make([]bool, g.NumPlayers())); err == nil {
		t.Error("Value with ReplaceFromColumn must error")
	}
	if _, err := g.SampleValue(context.Background(), make([]bool, g.NumPlayers()), nil); err == nil {
		t.Error("SampleValue with nil rng under ReplaceFromColumn must error")
	}
}

func TestCellGameFullCoalitionIsRepair(t *testing.T) {
	e, ll := newPaperExplainer(t)
	g := e.NewCellGame(ll.CellOfInterest, table.String("Spain"), ReplaceWithNull)
	full := make([]bool, g.NumPlayers())
	for i := range full {
		full[i] = true
	}
	v, err := g.Value(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("v(full) = %v, want 1", v)
	}
	empty := make([]bool, g.NumPlayers())
	v, err = g.Value(context.Background(), empty)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("v(∅) = %v, want 0 (all-null table repairs nothing)", v)
	}
}

func TestConstraintGameMatchesCellRepaired(t *testing.T) {
	e, ll := newPaperExplainer(t)
	g := e.NewConstraintGame(ll.CellOfInterest, table.String("Spain"))
	if g.NumPlayers() != 4 {
		t.Fatalf("players = %d", g.NumPlayers())
	}
	// {C3} alone repairs.
	v, err := g.Value(context.Background(), []bool{false, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Error("v({C3}) must be 1")
	}
	// {C1} alone does not.
	v, _ = g.Value(context.Background(), []bool{true, false, false, false})
	if v != 0 {
		t.Error("v({C1}) must be 0")
	}
}

func TestExplainPropagatesAlgorithmError(t *testing.T) {
	ll := data.NewLaLiga()
	boom := errors.New("boom")
	calls := 0
	flaky := repair.Func{AlgName: "flaky", Fn: func(ctx context.Context, cs []*dc.Constraint, d *table.Table) (*table.Table, error) {
		calls++
		if calls > 1 {
			return nil, boom
		}
		return repair.NewAlgorithm1().Repair(ctx, cs, d)
	}}
	e, err := NewExplainer(flaky, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExplainConstraints(context.Background(), ll.CellOfInterest); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestExplainContextCancel(t *testing.T) {
	e, ll := newPaperExplainer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExplainConstraints(ctx, ll.CellOfInterest); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.ExplainCells(ctx, ll.CellOfInterest, CellExplainOptions{Samples: 10}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestBlackBoxAgnostic(t *testing.T) {
	// E12: the identical explainer code must produce explanations for
	// every repairer that repairs the cell of interest, with no
	// algorithm-specific branches.
	ll := data.NewLaLiga()
	for _, alg := range repair.All(1) {
		t.Run(alg.Name(), func(t *testing.T) {
			e, err := NewExplainer(alg, ll.DCs, ll.Dirty)
			if err != nil {
				t.Fatal(err)
			}
			_, repaired, err := e.Target(context.Background(), ll.CellOfInterest)
			if err != nil {
				t.Fatal(err)
			}
			if !repaired {
				t.Skipf("%s does not repair t5[Country]; nothing to explain", alg.Name())
			}
			report, err := e.ExplainConstraints(context.Background(), ll.CellOfInterest)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for _, entry := range report.Entries {
				sum += entry.Shapley
			}
			// Efficiency holds for every black box: v(C) = 1, v(∅) = 0
			// when the full set repairs and no constraints means no repair.
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("Σ Shapley = %v, want 1", sum)
			}
			cells, err := e.ExplainCells(context.Background(), ll.CellOfInterest, CellExplainOptions{Samples: 200, Seed: 3, RestrictToRelevant: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(cells.Entries) == 0 {
				t.Error("no cell entries")
			}
		})
	}
}

func TestExactCellShapleyValidatesSampler(t *testing.T) {
	// E6 ground truth: on a tiny table the exact cell Shapley (null
	// policy) is enumerable; the sampler must converge to it.
	dirty := table.MustFromStrings([]string{"A", "B"}, [][]string{
		{"x", "1"},
		{"x", "2"},
		{"x", "1"},
	})
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	alg := repair.NewRuleRepair(cs)
	e, err := NewExplainer(alg, cs, dirty)
	if err != nil {
		t.Fatal(err)
	}
	cell := table.CellRef{Row: 1, Col: 1} // t2[B] = 2 -> 1
	exact, err := e.ExplainCellsExact(context.Background(), cell, false)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := e.ExplainCells(context.Background(), cell, CellExplainOptions{Samples: 30000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exact.Entries {
		got, ok := sampled.Find(ex.Name)
		if !ok {
			t.Fatalf("sampled report missing %s", ex.Name)
		}
		if math.Abs(got.Shapley-ex.Shapley) > 0.03 {
			t.Errorf("%s: sampled %.4f vs exact %.4f", ex.Name, got.Shapley, ex.Shapley)
		}
	}
	// Efficiency on the exact report.
	sum := 0.0
	for _, entry := range exact.Entries {
		sum += entry.Shapley
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("exact Σ = %v, want 1", sum)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Kind: "constraints", Cell: "t5[Country]", Target: "Spain", Algorithm: "algorithm1",
		Entries: []Entry{{Name: "C3", Shapley: 2.0 / 3}, {Name: "C1", Shapley: 1.0 / 6, CI95: 0.01, Samples: 100}}}
	s := r.String()
	for _, want := range []string{"C3", "+0.6667", "t5[Country]", "n=100"} {
		if !contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
	empty := &Report{}
	if _, ok := empty.Top(); ok {
		t.Error("empty report has no top")
	}
	if _, ok := r.Find("missing"); ok {
		t.Error("Find(missing)")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
