package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/shapley"
	"repro/internal/table"
)

// InteractionEntry is one pair of constraints with their Shapley
// interaction index.
type InteractionEntry struct {
	// A and B are the constraint IDs of the pair.
	A, B string
	// Value is the Shapley interaction index: positive = complements
	// (the pair achieves what neither achieves alone), negative =
	// substitutes (either suffices), zero = independent.
	Value float64
}

// InteractionReport holds the pairwise interaction structure of the
// constraint set for one repair — the "why do C1 and C2 only matter
// together?" question that plain Shapley values cannot answer.
type InteractionReport struct {
	// Cell is the explained cell in paper notation.
	Cell string
	// Target is the clean value being explained.
	Target string
	// Algorithm is the black box's name.
	Algorithm string
	// Pairs are sorted by descending |Value|, ties by names.
	Pairs []InteractionEntry
}

// String renders the report.
func (r *InteractionReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Constraint interactions for repair of %s -> %q by %s\n", r.Cell, r.Target, r.Algorithm)
	for _, p := range r.Pairs {
		kind := "independent"
		switch {
		case p.Value > 1e-12:
			kind = "complements"
		case p.Value < -1e-12:
			kind = "substitutes"
		}
		fmt.Fprintf(&b, "  I(%s,%s) = %+.4f (%s)\n", p.A, p.B, p.Value, kind)
	}
	return b.String()
}

// Find returns the entry for an unordered pair of constraint IDs.
func (r *InteractionReport) Find(a, b string) (InteractionEntry, bool) {
	for _, p := range r.Pairs {
		if (p.A == a && p.B == b) || (p.A == b && p.B == a) {
			return p, true
		}
	}
	return InteractionEntry{}, false
}

// ExplainConstraintInteractions computes the exact pairwise Shapley
// interaction indices of the constraints for the repair of the cell of
// interest.
func (e *Explainer) ExplainConstraintInteractions(ctx context.Context, cell table.CellRef) (_ *InteractionReport, err error) {
	defer e.finishEntry(e.begin(), &err)
	target, repaired, err := e.Target(ctx, cell)
	if err != nil {
		return nil, err
	}
	if !repaired {
		return nil, fmt.Errorf("core: cell %s was not repaired; nothing to explain", e.Dirty.RefName(cell))
	}
	game := e.cachedGame(e.constraintGameDesc(cell, target), e.NewConstraintGame(cell, target))
	matrix, err := shapley.ExactInteraction(ctx, game)
	if err != nil {
		return nil, fmt.Errorf("core: constraint interactions: %w", err)
	}
	report := &InteractionReport{
		Cell:      e.Dirty.RefName(cell),
		Target:    target.String(),
		Algorithm: e.Alg.Name(),
	}
	//lint:allow ctxflow pair assembly is quadratic in the constraint count (tens), not sample-scaled; the matrix computation above already honors ctx
	for i := 0; i < len(matrix); i++ {
		for j := i + 1; j < len(matrix); j++ {
			report.Pairs = append(report.Pairs, InteractionEntry{
				A: e.DCs[i].ID, B: e.DCs[j].ID, Value: matrix[i][j],
			})
		}
	}
	sort.Slice(report.Pairs, func(a, b int) bool {
		av, bv := abs(report.Pairs[a].Value), abs(report.Pairs[b].Value)
		if av != bv {
			return av > bv
		}
		if report.Pairs[a].A != report.Pairs[b].A {
			return report.Pairs[a].A < report.Pairs[b].A
		}
		return report.Pairs[a].B < report.Pairs[b].B
	})
	return report, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ExplainConstraintsBanzhaf is the Banzhaf-index ablation of
// ExplainConstraints: same game, equal coalition weighting instead of
// size-based weighting. Rankings usually agree; comparing the two is a
// cheap robustness check on an explanation.
func (e *Explainer) ExplainConstraintsBanzhaf(ctx context.Context, cell table.CellRef) (_ *Report, err error) {
	defer e.finishEntry(e.begin(), &err)
	target, repaired, err := e.Target(ctx, cell)
	if err != nil {
		return nil, err
	}
	if !repaired {
		return nil, fmt.Errorf("core: cell %s was not repaired; nothing to explain", e.Dirty.RefName(cell))
	}
	game := e.cachedGame(e.constraintGameDesc(cell, target), e.NewConstraintGame(cell, target))
	values, err := shapley.ExactBanzhaf(ctx, game)
	if err != nil {
		return nil, fmt.Errorf("core: constraint Banzhaf: %w", err)
	}
	report := &Report{
		Kind:      "constraints-banzhaf",
		Cell:      e.Dirty.RefName(cell),
		Target:    target.String(),
		Algorithm: e.Alg.Name(),
	}
	for i, v := range values {
		report.Entries = append(report.Entries, Entry{Name: e.DCs[i].ID, Shapley: v})
	}
	sortEntries(report.Entries)
	return report, nil
}
