package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

// sameReports compares two reports entry-for-entry, bit-identically.
func sameReports(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("%s: %d entries vs %d", label, len(got.Entries), len(want.Entries))
	}
	for i := range got.Entries {
		g, w := got.Entries[i], want.Entries[i]
		if g != w {
			t.Fatalf("%s: entry %d: %+v vs %+v", label, i, g, w)
		}
	}
}

// TestSharedCacheAcrossReportKinds is the tentpole's hit-rate contract:
// the constraint ranking, the interaction matrix, the Banzhaf ablation and
// a repeat ranking all enumerate the same constraint game's coalitions, so
// with the session's shared cache only the *first* screen pays black-box
// runs — every later screen is pure hits. Per-game caches (the pre-engine
// behaviour) pay the full enumeration once per screen.
func TestSharedCacheAcrossReportKinds(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	sess, err := NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	cell := ll.CellOfInterest

	if _, err := sess.Explainer().ExplainConstraints(ctx, cell); err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := sess.Engine().CacheStats()
	if misses1 == 0 {
		t.Fatal("first explain must populate the shared cache")
	}

	// Interaction, Banzhaf and a repeat ranking revisit the same game.
	if _, err := sess.Explainer().ExplainConstraintInteractions(ctx, cell); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Explainer().ExplainConstraintsBanzhaf(ctx, cell); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Explainer().ExplainConstraints(ctx, cell); err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := sess.Engine().CacheStats()
	if misses2 != misses1 {
		t.Fatalf("later screens must not miss: misses %d -> %d", misses1, misses2)
	}
	if hits2 <= hits1 {
		t.Fatalf("later screens must hit: hits %d -> %d", hits1, hits2)
	}

	// The acceptance bar: the session-wide hit rate must be at least twice
	// what one screen alone achieves (ExactSubsets evaluates each coalition
	// once, so a per-game cache's first enumeration hits nothing).
	perGame := float64(hits1) / float64(hits1+misses1)
	shared := sess.Engine().HitRate()
	if shared < 2*perGame || shared < 0.5 {
		t.Fatalf("shared hit rate %.3f (per-game baseline %.3f): want ≥2x and ≥0.5", shared, perGame)
	}
}

// TestSharedCacheInvalidatedBySetCell: after an edit, an engine-backed
// explanation must match a fresh engine-free explainer bit-for-bit — no
// coalition value computed before the generation bump may survive it.
func TestSharedCacheInvalidatedBySetCell(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	sess, err := NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	cell := ll.CellOfInterest
	city := sess.Dirty().Schema().MustIndex("City")
	edit := table.CellRef{Row: 5, Col: city}

	if _, err := sess.Explainer().ExplainConstraints(ctx, cell); err != nil {
		t.Fatal(err)
	}
	for i, v := range []table.Value{table.String("Sevilla"), table.String("Madrid"), table.String("Sevilla")} {
		if err := sess.SetCell(edit, v); err != nil {
			t.Fatal(err)
		}
		got, gotErr := sess.Explainer().ExplainConstraints(ctx, cell)
		fresh := &Explainer{Alg: sess.alg, DCs: sess.dcs, Dirty: sess.dirty}
		want, wantErr := fresh.ExplainConstraints(ctx, cell)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("edit %d: error mismatch: %v vs %v", i, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		sameReports(t, fmt.Sprintf("edit %d", i), got, want)
	}
}

// TestSharedCacheHammer is the satellite's -race hammer: concurrent
// engine-backed explains race a serialized editor (reader/writer
// discipline, as the HTTP server enforces per session), and every explain
// is cross-checked bit-for-bit against a fresh engine-free explainer under
// the same read lock. Any stale cached coalition value surviving a
// generation bump, or any data race in the shared cache/pool, fails here.
func TestSharedCacheHammer(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	sess, err := NewSessionWith(repair.NewAlgorithm1(), ll.DCs, ll.Dirty, SessionOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cell := ll.CellOfInterest
	city := sess.Dirty().Schema().MustIndex("City")
	edit := table.CellRef{Row: 5, Col: city}
	values := []table.Value{table.String("Sevilla"), table.String("Madrid")}

	var mu sync.RWMutex
	stop := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				got, gotErr := sess.Explainer().ExplainConstraints(ctx, cell)
				fresh := &Explainer{Alg: sess.alg, DCs: sess.dcs, Dirty: sess.dirty}
				want, wantErr := fresh.ExplainConstraints(ctx, cell)
				mu.RUnlock()
				if (gotErr == nil) != (wantErr == nil) {
					errs <- fmt.Errorf("error mismatch: %v vs %v", gotErr, wantErr)
					return
				}
				if gotErr != nil {
					continue
				}
				if len(got.Entries) != len(want.Entries) {
					errs <- fmt.Errorf("entry count %d vs %d", len(got.Entries), len(want.Entries))
					return
				}
				for i := range got.Entries {
					if got.Entries[i] != want.Entries[i] {
						errs <- fmt.Errorf("stale value: entry %d: %+v vs %+v", i, got.Entries[i], want.Entries[i])
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 12; i++ {
		mu.Lock()
		if err := sess.SetCell(edit, values[i%2]); err != nil {
			t.Fatal(err)
		}
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionExplainCellsWorkerDeterminism: through the session engine,
// Workers=1 and Workers=N sampling produce bit-identical cell rankings —
// the end-to-end version of the shapley fan-out contract, across the
// pooled repair path too.
func TestSessionExplainCellsWorkerDeterminism(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	var reports []*Report
	for _, workers := range []int{1, 4} {
		sess, err := NewSessionWith(repair.NewAlgorithm1(), ll.DCs, ll.Dirty, SessionOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Explainer().ExplainCells(ctx, ll.CellOfInterest, CellExplainOptions{
			Samples: 48, Seed: 77, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	sameReports(t, "workers 1 vs 4", reports[1], reports[0])
}

// TestDeltaWalkMarginalEquivalence: the coalition-morphing fast path of
// SamplePlayer (DeltaWalk: Exclude + Include diffs instead of per-sample
// rebuilds) must reproduce the generic clone path bit-for-bit on both cell
// and group games, under both replacement policies.
func TestDeltaWalkMarginalEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, policy := range []ReplacementPolicy{ReplaceWithNull, ReplaceFromColumn} {
		game := toyGroupGame(t, 6, policy)
		for player := 0; player < 3; player++ {
			opts := shapley.Options{Samples: 60, Seed: int64(31 + player), Workers: 2}
			fast, err := shapley.SamplePlayer(ctx, game, player, opts)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := shapley.SamplePlayer(ctx, game.CloneEval(), player, opts)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Mean != slow.Mean || fast.Variance != slow.Variance || fast.N != slow.N {
				t.Fatalf("policy %d player %d: walk %+v vs clone %+v", policy, player, fast, slow)
			}
		}
	}

	// Cell game, including the TopK racing loop that drives walkMorph
	// hardest (random player per sample).
	ll := data.NewLaLiga()
	exp, err := NewExplainer(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	game := exp.NewCellGame(ll.CellOfInterest, table.String("Spain"), ReplaceWithNull)
	game.RestrictPlayers(exp.RelevantCells(ll.CellOfInterest))
	tkOpts := shapley.TopKOptions{K: 3, RoundSamples: 12, MaxRounds: 3, Seed: 9, Workers: 2}
	fast, err := shapley.TopK(ctx, game, tkOpts)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := shapley.TopK(ctx, game.CloneEval(), tkOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.All) != len(slow.All) {
		t.Fatal("TopK result sizes differ")
	}
	for i := range fast.All {
		if fast.All[i] != slow.All[i] {
			t.Fatalf("TopK estimate %d: walk %+v vs clone %+v", i, fast.All[i], slow.All[i])
		}
	}
}

// TestGameDescInjective pins the descriptor framing: distinct games must
// never intern one cache ID. The cases are real aliasing bugs the
// length-prefixed framing fixed — separator characters inside group
// names, and Value.String collapsing kinds.
func TestGameDescInjective(t *testing.T) {
	ll := data.NewLaLiga()
	exp := &Explainer{Alg: repair.NewAlgorithm1(), DCs: ll.DCs, Dirty: ll.Dirty}
	b := table.CellRef{Row: 0, Col: 1}
	c := table.CellRef{Row: 0, Col: 2}
	g1 := groupsDesc(ll.Dirty, []CellGroup{{Name: "x", Cells: []table.CellRef{b, c}}})
	g2 := groupsDesc(ll.Dirty, []CellGroup{{Name: "x,1", Cells: []table.CellRef{c}}})
	if g1 == g2 {
		t.Fatalf("group fingerprints alias: %q", g1)
	}
	if targetDesc(table.String("5")) == targetDesc(table.Int(5)) {
		t.Fatal("target descriptors must be kind-tagged")
	}
	cell := ll.CellOfInterest
	if exp.constraintGameDesc(cell, table.String("5")) == exp.constraintGameDesc(cell, table.Int(5)) {
		t.Fatal("constraint-game descriptors alias across target kinds")
	}
	// Same components split differently across parts must not alias.
	if exp.gameDesc("k", "ab", "c") == exp.gameDesc("k", "a", "bc") {
		t.Fatal("gameDesc parts alias across boundaries")
	}
}

// TestConstraintEditInvalidatesEngine: AddDC/RemoveDC re-key every game;
// the engine must drop the orphaned coalition values (the leak fix) and
// post-edit explains must match a fresh engine-free explainer.
func TestConstraintEditInvalidatesEngine(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	sess, err := NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	cell := ll.CellOfInterest
	if _, err := sess.Explainer().ExplainConstraints(ctx, cell); err != nil {
		t.Fatal(err)
	}
	removed := ll.DCs[len(ll.DCs)-1]
	if err := sess.RemoveDC(removed.ID); err != nil {
		t.Fatal(err)
	}
	got, gotErr := sess.Explainer().ExplainConstraints(ctx, cell)
	fresh := &Explainer{Alg: sess.alg, DCs: sess.dcs, Dirty: sess.dirty}
	want, wantErr := fresh.ExplainConstraints(ctx, cell)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("error mismatch after RemoveDC: %v vs %v", gotErr, wantErr)
	}
	if gotErr == nil {
		sameReports(t, "after RemoveDC", got, want)
	}
	if err := sess.AddDC(removed.String()); err != nil {
		t.Fatal(err)
	}
	got, gotErr = sess.Explainer().ExplainConstraints(ctx, cell)
	fresh = &Explainer{Alg: sess.alg, DCs: sess.dcs, Dirty: sess.dirty}
	want, wantErr = fresh.ExplainConstraints(ctx, cell)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("error mismatch after AddDC: %v vs %v", gotErr, wantErr)
	}
	if gotErr == nil {
		sameReports(t, "after AddDC", got, want)
	}
}

// TestGroupWalkExcludeRestores: a morph-heavy walk (Include/Exclude
// interleavings over overlapping groups) must leave the pooled scratch
// equal to the dirty table after Close.
func TestGroupWalkExcludeRestores(t *testing.T) {
	game := toyGroupGame(t, 5, ReplaceWithNull)
	w := game.NewWalk().(interface {
		shapley.DeltaWalk
	})
	w.Reset()
	w.Include(1)
	w.Include(3)
	w.Exclude(1)
	w.Include(0)
	w.Exclude(3)
	w.Close()
	sc := game.getScratch()
	defer game.scratch.Put(sc)
	if !sc.tbl.Equal(game.exp.Dirty) {
		t.Fatalf("scratch not restored after Exclude walk:\n%s\nvs dirty:\n%s", sc.tbl, game.exp.Dirty)
	}
}
