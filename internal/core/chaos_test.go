package core

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

// chaosSeeds resolves the schedule matrix: the CHAOS_SEEDS env var (a
// comma-separated int64 list, set by the CI chaos job's matrix) or a
// small built-in default.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		var seeds []int64
		for _, f := range strings.Split(env, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEEDS: %v", err)
			}
			seeds = append(seeds, n)
		}
		return seeds
	}
	if testing.Short() {
		return []int64{1, 2}
	}
	return []int64{1, 2, 3, 4, 5, 6, 7, 8}
}

// assertNoGoroutineLeak fails if the goroutine count has not settled back
// near the baseline — the before/after fence the chaos and server suites
// run under.
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, n, buf)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosSeededSchedules drives the explain entry points through seeded
// fault schedules — cancellation, panics, slow workers and overruns at
// every named site — and holds the suite's two invariants against each:
// a run that fails leaves the session's shared state bit-identical to the
// run never having started, and a clean rerun afterwards answers
// bit-identically to a never-faulted session. Equal seeds fire equal
// schedules, so any failure here reproduces from its seed alone.
func TestChaosSeededSchedules(t *testing.T) {
	ctx := context.Background()
	goroutinesBefore := runtime.NumGoroutine()

	refSess, cell := newRobustnessSession(t)
	wantCells, err := refSess.Explainer().ExplainCells(ctx, cell, cellOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantConstraints, err := refSess.Explainer().ExplainConstraints(ctx, cell)
	if err != nil {
		t.Fatal(err)
	}

	sites := []faults.Site{
		faults.SiteWorkerStart, faults.SiteCacheStore,
		faults.SiteBucketPartition, faults.SiteEditReplay,
	}
	kinds := []faults.Kind{
		faults.KindCancel, faults.KindPanic, faults.KindSlow, faults.KindOverrun,
	}

	// run executes one explain under the active schedule, converting a
	// contained panic into an error so the pristine-state check applies
	// to both failure shapes.
	run := func(f func() error) (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("panic: %v", rec)
			}
		}()
		return f()
	}

	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			sess, cell := newRobustnessSession(t)
			pre := captureState(sess)

			cctx, cancel := context.WithCancel(ctx)
			defer cancel()
			inj := faults.NewInjector(faults.SeededRules(seed, 8, sites, kinds)...).OnCancel(cancel)
			deactivate := faults.Activate(inj)

			cellsErr := run(func() error {
				_, err := sess.Explainer().ExplainCells(cctx, cell, cellOpts())
				return err
			})
			if cellsErr != nil {
				if post := captureState(sess); post != pre {
					deactivate()
					t.Fatalf("failed explain left partial state: pre=%+v post=%+v (err: %v)", pre, post, cellsErr)
				}
			}
			mid := captureState(sess)
			constraintsErr := run(func() error {
				_, err := sess.Explainer().ExplainConstraints(cctx, cell)
				return err
			})
			deactivate()
			if constraintsErr != nil {
				if post := captureState(sess); post != mid {
					t.Fatalf("failed constraint explain left partial state: mid=%+v post=%+v (err: %v)", mid, post, constraintsErr)
				}
			}
			t.Logf("seed %d: %d faults fired, cells=%v constraints=%v", seed, len(inj.Fired()), cellsErr, constraintsErr)

			// Whatever the schedule did, a clean rerun is golden.
			gotCells, err := sess.Explainer().ExplainCells(ctx, cell, cellOpts())
			if err != nil {
				t.Fatalf("clean rerun after chaos: %v", err)
			}
			sameReports(t, "chaos rerun cells", gotCells, wantCells)
			gotConstraints, err := sess.Explainer().ExplainConstraints(ctx, cell)
			if err != nil {
				t.Fatalf("clean constraint rerun after chaos: %v", err)
			}
			sameReports(t, "chaos rerun constraints", gotConstraints, wantConstraints)
		})
	}

	assertNoGoroutineLeak(t, goroutinesBefore)
}
