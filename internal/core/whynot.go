package core

import (
	"context"
	"fmt"

	"repro/internal/shapley"
	"repro/internal/table"
)

// ExplainCellsTopK identifies the K most influential cells with adaptive
// confidence-interval elimination instead of a uniform sampling budget.
// The interactive workflow of the paper (§3: pick a cell, look at the top
// of the ranking, edit, repeat) only needs the top of the list, and racing
// concentrates black-box calls on the contenders.
func (e *Explainer) ExplainCellsTopK(ctx context.Context, cell table.CellRef, k int, opts CellExplainOptions) (_ *Report, _ bool, err error) {
	defer e.finishEntry(e.begin(), &err)
	opts = opts.withDefaults()
	target, repaired, err := e.Target(ctx, cell)
	if err != nil {
		return nil, false, err
	}
	if !repaired {
		return nil, false, fmt.Errorf("core: cell %s was not repaired; nothing to explain", e.Dirty.RefName(cell))
	}
	game := e.NewCellGame(cell, target, opts.Policy)
	if opts.RestrictToRelevant {
		game.RestrictPlayers(e.RelevantCells(cell))
	}
	// The racing rounds re-probe overlapping coalition prefixes; under the
	// null policy they draw from (and feed) the session's shared cache.
	game.BindSharedCache()
	res, err := shapley.TopK(ctx, game, shapley.TopKOptions{
		K:            k,
		RoundSamples: opts.Samples / 8,
		Workers:      opts.Workers,
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, false, fmt.Errorf("core: top-k cell Shapley: %w", err)
	}
	report := &Report{
		Kind:      "cells-topk",
		Cell:      e.Dirty.RefName(cell),
		Target:    target.String(),
		Algorithm: e.Alg.Name(),
	}
	players := game.Players()
	for _, est := range res.Top {
		report.Entries = append(report.Entries, Entry{
			Name:    e.Dirty.RefName(players[est.Player]),
			Shapley: est.Mean,
			CI95:    est.CI95(),
			Samples: est.N,
		})
	}
	return report, res.Separated, nil
}

// ExplainToward explains a *hypothetical* repair: how much each constraint
// contributes to the cell of interest ending up with the given desired
// value — whether or not the actual repair produces it. With desired set
// to the observed clean value this reduces to ExplainConstraints; with a
// different value it answers the "why not?" question: if every Shapley
// value is 0, no subset of the current constraints ever yields the desired
// value, so the constraint set (or the data) is what needs changing.
func (e *Explainer) ExplainToward(ctx context.Context, cell table.CellRef, desired table.Value) (_ *Report, err error) {
	defer e.finishEntry(e.begin(), &err)
	if desired.IsNull() {
		return nil, fmt.Errorf("core: desired value must be non-null")
	}
	game := e.cachedGame(e.constraintGameDesc(cell, desired), e.NewConstraintGame(cell, desired))
	values, err := shapley.ExactSubsets(ctx, game)
	if err != nil {
		return nil, fmt.Errorf("core: why-not Shapley: %w", err)
	}
	report := &Report{
		Kind:      "constraints-toward",
		Cell:      e.Dirty.RefName(cell),
		Target:    desired.String(),
		Algorithm: e.Alg.Name(),
	}
	for i, v := range values {
		report.Entries = append(report.Entries, Entry{Name: e.DCs[i].ID, Shapley: v})
	}
	sortEntries(report.Entries)
	return report, nil
}

// Achievable reports whether any subset of the constraint set makes the
// black box assign the desired value to the cell — the decision version of
// the why-not question. It enumerates subsets with memoization, so it
// costs at most 2^|DCs| black-box runs and short-circuits on the first
// witness (checked in a deterministic size-ascending order, so the
// returned witness is one of the smallest).
func (e *Explainer) Achievable(ctx context.Context, cell table.CellRef, desired table.Value) (_ bool, _ []string, err error) {
	defer e.finishEntry(e.begin(), &err)
	if desired.IsNull() {
		return false, nil, fmt.Errorf("core: desired value must be non-null")
	}
	n := len(e.DCs)
	if n > 20 {
		return false, nil, fmt.Errorf("core: %d constraints is too many for subset search", n)
	}
	game := e.cachedGame(e.constraintGameDesc(cell, desired), e.NewConstraintGame(cell, desired))
	// Order masks by popcount so the first witness is minimal in size.
	masks := make([]int, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		masks = append(masks, mask)
	}
	sortByPopcount(masks)
	coalition := make([]bool, n)
	for _, mask := range masks {
		if err := ctx.Err(); err != nil {
			return false, nil, err
		}
		for i := 0; i < n; i++ {
			coalition[i] = mask&(1<<uint(i)) != 0
		}
		v, err := game.Value(ctx, coalition)
		if err != nil {
			return false, nil, err
		}
		if v == 1 {
			var witness []string
			for i := 0; i < n; i++ {
				if coalition[i] {
					witness = append(witness, e.DCs[i].ID)
				}
			}
			return true, witness, nil
		}
	}
	return false, nil, nil
}

// sortByPopcount orders masks by ascending set-bit count, ties by value —
// an insertion-friendly counting sort over bit counts.
func sortByPopcount(masks []int) {
	buckets := make([][]int, 32)
	for _, m := range masks {
		c := 0
		for x := m; x != 0; x &= x - 1 {
			c++
		}
		buckets[c] = append(buckets[c], m)
	}
	out := masks[:0]
	for _, b := range buckets {
		out = append(out, b...)
	}
}
