package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/dc"
	"repro/internal/dc/plan"
	"repro/internal/exec"
	"repro/internal/repair"
	"repro/internal/table"
)

// Session models the iterative debugging loop of §3/§4: users inspect an
// explanation, edit the constraints or the dirty table, re-repair and
// re-explain. A Session owns a mutable copy of the inputs, the edit
// history, and the session execution engine (internal/exec): one shared
// generation-keyed coalition cache plus one bounded worker pool spanning
// every explainer and game derived from the session.
type Session struct {
	alg   repair.Algorithm
	dcs   []*dc.Constraint
	dirty *table.Table
	// History records one line per edit, oldest first.
	History []string
	// live materializes the session's violation lists and maintains them
	// incrementally across SetCell edits (allocated on first use).
	live *dc.LiveViolationSet
	// engine is the session execution layer; every Explainer() carries it.
	engine *exec.Engine
	// repairDesc caches the repair-target descriptor of the current
	// (algorithm, constraint set); recomputed on constraint edits and
	// handed to every Explainer so the edit loop's Target() calls don't
	// re-render the constraint strings per call.
	repairDesc string
	// plan is the compiled constraint-set query plan of the current
	// (schema, DC set) — shared partitions, selectivity-ordered kernels,
	// pre-filter pushdown, cardinality hints — fetched through the
	// engine's plan cache and recompiled on constraint edits. Every
	// violation scan and planned repair of the session runs behind it.
	plan *plan.Plan
}

// SessionOptions configures a session's execution engine.
type SessionOptions struct {
	// Workers is the engine's parallelism budget — the worker pool repair
	// black boxes fan disjoint-bucket passes across, and the default
	// sampling fan-out of the session's explainers. 0 means GOMAXPROCS.
	// Parallelism never changes results (see the PartitionedRepairer and
	// fan-out determinism contracts); 1 forces fully serial execution.
	Workers int
}

// NewSession starts an iterative session with default engine options; the
// table is cloned so caller data is never mutated.
func NewSession(alg repair.Algorithm, dcs []*dc.Constraint, dirty *table.Table) (*Session, error) {
	return NewSessionWith(alg, dcs, dirty, SessionOptions{})
}

// NewSessionWith is NewSession with explicit engine options.
func NewSessionWith(alg repair.Algorithm, dcs []*dc.Constraint, dirty *table.Table, opts SessionOptions) (*Session, error) {
	if _, err := NewExplainer(alg, dcs, dirty); err != nil {
		return nil, err
	}
	s := &Session{
		alg:    alg,
		dcs:    append([]*dc.Constraint(nil), dcs...),
		dirty:  dirty.Clone(),
		engine: exec.NewEngine(opts.Workers),
	}
	s.refreshRepairDesc()
	s.refreshPlan()
	return s, nil
}

// refreshRepairDesc re-renders the cached repair-target descriptor; call
// after any constraint-set change.
func (s *Session) refreshRepairDesc() {
	s.repairDesc = (&Explainer{Alg: s.alg, DCs: s.dcs}).gameDesc("repair")
}

// refreshPlan recompiles (or re-fetches from the engine's plan cache)
// the constraint-set query plan for the session's current schema and DC
// set; call after any constraint-set change, after the stale plan is
// dropped through Engine.InvalidateCache.
func (s *Session) refreshPlan() {
	s.plan = planFor(s.engine, s.dirty.Schema(), s.dcs)
}

// planFor returns the compiled plan for (schema, cs), memoized in the
// engine's plan cache under (schema identity, DC-set fingerprint). With
// a nil engine the plan is compiled fresh each call — still correct,
// just unmemoized.
func planFor(e *exec.Engine, schema *table.Schema, cs []*dc.Constraint) *plan.Plan {
	pc := e.Plans()
	key := exec.PlanKey{Schema: schema, Fingerprint: plan.Fingerprint(cs)}
	if cached, ok := pc.Lookup(key); ok {
		if p, ok := cached.(*plan.Plan); ok {
			return p
		}
	}
	p := plan.Compile(schema, cs)
	pc.Store(key, p)
	return p
}

// Engine exposes the session's execution engine (cache statistics for the
// UI, the pool for advanced callers).
func (s *Session) Engine() *exec.Engine { return s.engine }

// Explainer returns an Explainer over the session's current state, wired
// to the session engine: its games share the session's coalition cache —
// keyed by game identity and invalidated by the dirty table's generation,
// which every SetCell bumps — and its repairs run on the session pool.
func (s *Session) Explainer() *Explainer {
	e := &Explainer{Alg: s.alg, DCs: s.dcs, Dirty: s.dirty, Engine: s.engine, repairDescMemo: s.repairDesc}
	if s.plan != nil {
		e.Plan = s.plan
	}
	return e
}

// Dirty returns the session's current dirty table (live; edits via SetCell).
func (s *Session) Dirty() *table.Table { return s.dirty }

// DCs returns the session's current constraints.
func (s *Session) DCs() []*dc.Constraint { return append([]*dc.Constraint(nil), s.dcs...) }

// SetCell edits one cell of the dirty table, as the GUI's table editor
// does between iterations.
func (s *Session) SetCell(ref table.CellRef, v table.Value) error {
	if ref.Row < 0 || ref.Row >= s.dirty.NumRows() || ref.Col < 0 || ref.Col >= s.dirty.NumCols() {
		return fmt.Errorf("core: cell %v out of range", ref)
	}
	old := s.dirty.GetRef(ref)
	s.dirty.SetRef(ref, v)
	s.History = append(s.History, fmt.Sprintf("set %s: %s -> %s", s.dirty.RefName(ref), old, v))
	return nil
}

// InsertRow appends one row to the dirty table — the GUI's "add tuple"
// action. The insert is a typed edit-log entry, so the session's live
// violation lists and the engine's generation-keyed caches pick it up as
// a one-row delta, not a rebuild.
func (s *Session) InsertRow(vals []table.Value) error {
	if err := s.dirty.Append(vals); err != nil {
		return err
	}
	s.History = append(s.History, fmt.Sprintf("insert row %d", s.dirty.NumRows()-1))
	return nil
}

// DeleteRow removes one row by the table's swap-delete rule: the last
// row moves into the vacated index and every other row keeps its index.
// The history line names the remap so a user replaying the log can track
// where the moved survivor went; cached artifacts holding CellRefs are
// generation-keyed and can never read the renumbered row under its old
// index.
func (s *Session) DeleteRow(row int) error {
	n := s.dirty.NumRows()
	if row < 0 || row >= n {
		return fmt.Errorf("core: delete row %d out of range 0..%d", row, n-1)
	}
	s.dirty.DeleteRow(row)
	s.History = append(s.History, deleteHistory(row, n))
	return nil
}

// deleteHistory renders the history line for deleting row of a table
// that had n rows, naming the swap-delete remap when one happened.
func deleteHistory(row, n int) string {
	if row == n-1 {
		return fmt.Sprintf("delete row %d", row)
	}
	return fmt.Sprintf("delete row %d (row %d moved to %d)", row, n-1, row)
}

// BatchOpKind selects which operation a BatchOp performs.
type BatchOpKind string

// The batch operation kinds. The strings double as the wire names the
// server's batch endpoint accepts.
const (
	BatchSet    BatchOpKind = "set"
	BatchInsert BatchOpKind = "insert"
	BatchDelete BatchOpKind = "delete"
)

// BatchOp is one declarative operation of a Session.ApplyBatch bracket.
// Exactly the fields of its Kind are read: Ref/Value for BatchSet, Vals
// for BatchInsert, Row for BatchDelete. Row and Ref indexes address the
// table as it stands when the op runs — earlier ops in the same batch
// shift them (inserts land at the then-current tail; deletes swap the
// then-last row down).
type BatchOp struct {
	Kind  BatchOpKind
	Ref   table.CellRef
	Value table.Value
	Row   int
	Vals  []table.Value
}

// ApplyBatch applies ops to the dirty table under one batch bracket: one
// generation for the whole run, so incremental consumers replay it as a
// single delta and generation-keyed caches invalidate exactly once. The
// ops are validated up front against the simulated row count (the
// table's batch bracket groups generations, not atomicity — a mid-batch
// failure would stay applied), so a validated batch cannot fail partway.
// History records the bracket as "batch begin (N ops)" … "batch end"
// with one line per op between; RestoreSession checks the brackets
// balance.
func (s *Session) ApplyBatch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	rows := s.dirty.NumRows()
	for i, op := range ops {
		switch op.Kind {
		case BatchSet:
			if op.Ref.Row < 0 || op.Ref.Row >= rows || op.Ref.Col < 0 || op.Ref.Col >= s.dirty.NumCols() {
				return fmt.Errorf("core: batch op %d: cell %v out of range", i, op.Ref)
			}
		case BatchInsert:
			if err := s.dirty.Schema().Validate(op.Vals); err != nil {
				return fmt.Errorf("core: batch op %d: %w", i, err)
			}
			rows++
		case BatchDelete:
			if op.Row < 0 || op.Row >= rows {
				return fmt.Errorf("core: batch op %d: delete row %d out of range 0..%d", i, op.Row, rows-1)
			}
			rows--
		default:
			return fmt.Errorf("core: batch op %d: unknown kind %q", i, op.Kind)
		}
	}
	s.History = append(s.History, fmt.Sprintf("batch begin (%d ops)", len(ops)))
	err := s.dirty.ApplyBatch(func(b *table.Table) error {
		for _, op := range ops {
			switch op.Kind {
			case BatchSet:
				old := b.GetRef(op.Ref)
				b.SetRef(op.Ref, op.Value)
				s.History = append(s.History, fmt.Sprintf("set %s: %s -> %s", b.RefName(op.Ref), old, op.Value))
			case BatchInsert:
				if err := b.Append(op.Vals); err != nil {
					return err
				}
				s.History = append(s.History, fmt.Sprintf("insert row %d", b.NumRows()-1))
			case BatchDelete:
				n := b.NumRows()
				b.DeleteRow(op.Row)
				s.History = append(s.History, deleteHistory(op.Row, n))
			}
		}
		return nil
	})
	// Close the bracket even on the (validated-away) error path so the
	// history never spools with an open batch.
	s.History = append(s.History, "batch end")
	return err
}

// IngestCSV streams CSV rows (matching the session schema) into the
// dirty table as one batch bracket; see Table.IngestCSV. Returns the
// number of rows appended.
func (s *Session) IngestCSV(r io.Reader) (int, error) {
	n, err := s.dirty.IngestCSV(r)
	if n > 0 {
		s.History = append(s.History, fmt.Sprintf("ingest %d rows (csv)", n))
	}
	return n, err
}

// RemoveDC removes a constraint by ID — the demo scenario's "remove the
// highest-ranked DC" action.
func (s *Session) RemoveDC(id string) error {
	if dc.ByID(s.dcs, id) == nil {
		return fmt.Errorf("core: no constraint %q", id)
	}
	s.dcs = dc.Without(s.dcs, id)
	s.History = append(s.History, "removed "+id)
	// Constraint edits re-key every game descriptor without bumping the
	// table generation; drop the now-unreachable coalition values.
	s.engine.InvalidateCache()
	s.refreshRepairDesc()
	s.refreshPlan()
	return nil
}

// AddDC parses and adds a constraint.
func (s *Session) AddDC(text string) error {
	c, err := dc.Parse(text)
	if err != nil {
		return err
	}
	if c.ID == "" {
		c.ID = fmt.Sprintf("C%d", len(s.dcs)+1)
	}
	if dc.ByID(s.dcs, c.ID) != nil {
		return fmt.Errorf("core: constraint %q already exists", c.ID)
	}
	if err := c.Validate(s.dirty.Schema()); err != nil {
		return err
	}
	s.dcs = append(s.dcs, c)
	s.History = append(s.History, "added "+c.String())
	// See RemoveDC: constraint edits re-key every game descriptor.
	s.engine.InvalidateCache()
	s.refreshRepairDesc()
	s.refreshPlan()
	return nil
}

// Violations returns the current violations of every session constraint
// over the live dirty table, in constraint order and (Row1, Row2) order
// within a constraint — the inspection view of the iterative loop ("what
// is still broken?"). The lists are materialized once and then maintained
// incrementally: each SetCell retracts and re-derives only the edited
// row's pairs, so polling this between edits costs per-edit, not
// per-table, work. The returned slice is owned by the caller.
func (s *Session) Violations() ([]dc.Violation, error) {
	if s.live == nil {
		s.live = dc.NewLiveViolationSet()
	}
	if s.plan != nil {
		s.live.UsePlan(s.plan)
	} else {
		s.live.UsePlan(nil)
	}
	var out []dc.Violation
	for _, c := range s.dcs {
		var err error
		out, err = s.live.Append(c, s.dirty, out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Consistent reports whether the session's dirty table currently satisfies
// every constraint, off the same incrementally-maintained lists.
func (s *Session) Consistent() (bool, error) {
	vs, err := s.Violations()
	if err != nil {
		return false, err
	}
	return len(vs) == 0, nil
}

// Repair runs the black box on the session's current state.
func (s *Session) Repair(ctx context.Context) (*table.Table, []table.CellDiff, error) {
	return s.Explainer().Repair(ctx)
}
