package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/table"
)

// cacheState is everything observable about a session's shared caches —
// the quantities the no-partial-work-poisoning invariant is stated over.
type cacheState struct {
	coalLen     int
	coalFp      uint64
	repairLen   int
	idleHelpers int
}

func captureState(s *Session) cacheState {
	return cacheState{
		coalLen:     s.Engine().Cache().Len(),
		coalFp:      s.Engine().Cache().Fingerprint(),
		repairLen:   s.Engine().RepairTargets().Len(),
		idleHelpers: s.Engine().Pool().IdleHelpers(),
	}
}

// newRobustnessSession builds the standard fixture session with a parallel
// engine so the worker-start and cache-store sites fire.
func newRobustnessSession(t *testing.T) (*Session, table.CellRef) {
	t.Helper()
	ll := data.NewLaLiga()
	sess, err := NewSessionWith(repair.NewAlgorithm1(), ll.DCs, ll.Dirty, SessionOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return sess, ll.CellOfInterest
}

func cellOpts() CellExplainOptions {
	return CellExplainOptions{Samples: 64, Workers: 4, Seed: 42}
}

// TestAbortThenRerunGolden is the tentpole invariant, stated per
// cancellation site: an explain aborted by a fault scheduled at any site
// must leave every shared structure bit-identical to the run never having
// started, and a clean rerun on the same session must answer bit-identically
// to a never-faulted reference session.
func TestAbortThenRerunGolden(t *testing.T) {
	ctx := context.Background()

	// Reference: a clean run on a never-faulted session.
	refSess, cell := newRobustnessSession(t)
	want, err := refSess.Explainer().ExplainCells(ctx, cell, cellOpts())
	if err != nil {
		t.Fatal(err)
	}

	for _, site := range []faults.Site{faults.SiteWorkerStart, faults.SiteCacheStore} {
		for _, ordinal := range []int{1, 2, 5} {
			t.Run(string(site)+"/ordinal-"+string(rune('0'+ordinal)), func(t *testing.T) {
				sess, cell := newRobustnessSession(t)
				pre := captureState(sess)

				cctx, cancel := context.WithCancel(ctx)
				defer cancel()
				inj := faults.NewInjector(faults.Rule{Site: site, Ordinal: ordinal, Kind: faults.KindCancel}).
					OnCancel(cancel)
				deactivate := faults.Activate(inj)
				_, aerr := sess.Explainer().ExplainCells(cctx, cell, cellOpts())
				deactivate()

				// Whether the run aborts depends on scheduling: the cancel
				// can land after the last checkpoint, in which case the run
				// commits cleanly (also correct). What may never happen is
				// a *failed* run leaving partial state.
				if aerr != nil {
					if !errors.Is(aerr, context.Canceled) {
						t.Fatalf("aborted explain error = %v, want context.Canceled", aerr)
					}
					post := captureState(sess)
					if post != pre {
						t.Fatalf("aborted explain left partial state: pre=%+v post=%+v", pre, post)
					}
				} else if len(inj.Fired()) == 0 && ordinal <= 2 {
					t.Fatalf("site %s ordinal %d never visited", site, ordinal)
				}

				got, rerr := sess.Explainer().ExplainCells(ctx, cell, cellOpts())
				if rerr != nil {
					t.Fatalf("rerun after abort: %v", rerr)
				}
				sameReports(t, "rerun after abort at "+string(site), got, want)
			})
		}
	}
}

// TestSerialAbortIsDeterministic pins one case where the abort *must*
// happen: the exact constraint enumeration runs on the caller, so a cancel
// fired at an early cache store is always observed by a later coalition's
// context checkpoint. The aborted session must be pristine and a rerun
// bit-identical to a never-faulted reference.
func TestSerialAbortIsDeterministic(t *testing.T) {
	ctx := context.Background()
	refSess, cell := newRobustnessSession(t)
	want, err := refSess.Explainer().ExplainConstraints(ctx, cell)
	if err != nil {
		t.Fatal(err)
	}

	sess, cell := newRobustnessSession(t)
	pre := captureState(sess)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Ordinal 2: after the repair-target store (ordinal 1), the first
	// coalition-value store trips the cancel; the enumeration has more
	// coalitions to visit, so the checkpoint always fires.
	inj := faults.NewInjector(faults.Rule{Site: faults.SiteCacheStore, Ordinal: 2, Kind: faults.KindCancel}).
		OnCancel(cancel)
	deactivate := faults.Activate(inj)
	_, aerr := sess.Explainer().ExplainConstraints(cctx, cell)
	deactivate()
	if len(inj.Fired()) == 0 {
		t.Fatal("cache-store rule must fire during the enumeration")
	}
	if !errors.Is(aerr, context.Canceled) {
		t.Fatalf("aborted explain error = %v, want context.Canceled", aerr)
	}
	if post := captureState(sess); post != pre {
		t.Fatalf("aborted explain left partial state: pre=%+v post=%+v", pre, post)
	}
	got, err := sess.Explainer().ExplainConstraints(ctx, cell)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "serial abort rerun", got, want)
}

// TestAbortDuringTargetResolution aborts while the underlying repair (the
// target-resolution phase, before any sampling) is running: the staged
// repair diff must be dropped with everything else.
func TestAbortDuringTargetResolution(t *testing.T) {
	sess, cell := newRobustnessSession(t)
	pre := captureState(sess)
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The repair-target diff store is the first SiteCacheStore visit of a
	// cold session's explain.
	inj := faults.NewInjector(faults.Rule{Site: faults.SiteCacheStore, Ordinal: 1, Kind: faults.KindCancel}).
		OnCancel(cancel)
	deactivate := faults.Activate(inj)
	_, aerr := sess.Explainer().ExplainConstraints(cctx, cell)
	deactivate()
	if len(inj.Fired()) == 0 {
		t.Fatal("cache-store rule must fire during target resolution")
	}
	// The cancel lands *at* the store; whether this run still completes
	// depends on where the next checkpoint is, but partial state must
	// never survive a failure.
	if aerr != nil {
		if post := captureState(sess); post != pre {
			t.Fatalf("aborted target resolution left partial state: pre=%+v post=%+v", pre, post)
		}
	}

	// Golden rerun against an engine-free explainer (the canonical result).
	got, err := sess.Explainer().ExplainConstraints(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	ll := data.NewLaLiga()
	exp, err := NewExplainer(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.ExplainConstraints(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "constraints after aborted target resolution", got, want)
}

// TestPanicDuringExplainPropagatesAndLeavesNoTrace: an induced panic on a
// fan-out worker must re-raise on the caller (for the server's per-request
// recovery to quarantine), release every pool slot, and leave the shared
// caches pristine — after which the session still answers correctly.
func TestPanicDuringExplainPropagatesAndLeavesNoTrace(t *testing.T) {
	ctx := context.Background()
	refSess, cell := newRobustnessSession(t)
	want, err := refSess.Explainer().ExplainCells(ctx, cell, cellOpts())
	if err != nil {
		t.Fatal(err)
	}

	sess, cell := newRobustnessSession(t)
	pre := captureState(sess)
	inj := faults.NewInjector(faults.Rule{Site: faults.SiteWorkerStart, Ordinal: 2, Kind: faults.KindPanic})
	deactivate := faults.Activate(inj)
	func() {
		defer deactivate()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("injected worker panic must propagate to the caller")
			}
			var ip *faults.InjectedPanic
			if err, ok := r.(error); !ok || !errors.As(err, &ip) {
				t.Fatalf("recovered %T %v, want a wrapped *faults.InjectedPanic", r, r)
			}
		}()
		_, _ = sess.Explainer().ExplainCells(ctx, cell, cellOpts())
	}()

	if post := captureState(sess); post != pre {
		t.Fatalf("panicked explain left partial state: pre=%+v post=%+v", pre, post)
	}
	got, err := sess.Explainer().ExplainCells(ctx, cell, cellOpts())
	if err != nil {
		t.Fatalf("rerun after panic: %v", err)
	}
	sameReports(t, "rerun after injected panic", got, want)
}

// TestCommittedExplainWarmsNextRun guards the other half of the contract:
// transactions must not tax the success path — a completed explain still
// publishes its coalition values, so the repeat explain is pure hits.
func TestCommittedExplainWarmsNextRun(t *testing.T) {
	ctx := context.Background()
	sess, cell := newRobustnessSession(t)
	if _, err := sess.Explainer().ExplainConstraints(ctx, cell); err != nil {
		t.Fatal(err)
	}
	if sess.Engine().Cache().Len() == 0 {
		t.Fatal("committed explain must publish coalition values")
	}
	_, misses1 := sess.Engine().CacheStats()
	if _, err := sess.Explainer().ExplainConstraints(ctx, cell); err != nil {
		t.Fatal(err)
	}
	_, misses2 := sess.Engine().CacheStats()
	if misses2 != misses1 {
		t.Fatalf("repeat explain missed the shared cache: %d -> %d", misses1, misses2)
	}
}

// TestEditReplayOverrunDegradesIdentically: a forced edit-log overrun must
// push the live violation index onto its full-rebuild fallback, and the
// rebuilt answers must be bit-identical to the incremental path's.
func TestEditReplayOverrunDegradesIdentically(t *testing.T) {
	// MinRows 1 forces list materialization on the small fixture; Workers 1
	// keeps the full-derivation fallback serial and deterministic.
	ll := data.NewLaLiga()
	c := ll.DCs[0]
	mk := func() (*dc.LiveViolationSet, *table.Table) {
		live := dc.NewLiveViolationSet()
		live.MinRows = 1
		live.Workers = 1
		return live, ll.Dirty.Clone()
	}
	edit := func(tbl *table.Table) { tbl.Set(ll.CellOfInterest.Row, ll.CellOfInterest.Col, table.String("X")) }
	query := func(live *dc.LiveViolationSet, tbl *table.Table) []string {
		vs, err := live.Append(c, tbl, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, 0, len(vs))
		for _, v := range vs {
			out = append(out, fmt.Sprintf("%s:%d,%d", v.Constraint.ID, v.Row1, v.Row2))
		}
		return out
	}

	// Incremental path: materialize, edit, replay.
	incLive, incTbl := mk()
	query(incLive, incTbl)
	edit(incTbl)
	wantV := query(incLive, incTbl)

	// Overrun-degraded path: the replay attempt is declined and every list
	// is re-derived from scratch.
	degLive, degTbl := mk()
	query(degLive, degTbl)
	inj := faults.NewInjector(
		faults.Rule{Site: faults.SiteEditReplay, Ordinal: 1, Kind: faults.KindOverrun},
	)
	deactivate := faults.Activate(inj)
	edit(degTbl)
	gotV := query(degLive, degTbl)
	deactivate()
	if len(inj.Fired()) == 0 {
		t.Fatal("overrun rule must fire on the post-edit sync")
	}
	if len(gotV) != len(wantV) {
		t.Fatalf("degraded violations: %d vs %d", len(gotV), len(wantV))
	}
	for i := range gotV {
		if gotV[i] != wantV[i] {
			t.Fatalf("degraded violation %d: %s vs %s", i, gotV[i], wantV[i])
		}
	}
}

// TestWorkerSlotsReleasedOnAbort pins the slot-leak regression: any number
// of aborted parallel explains must return every helper slot to the pool.
func TestWorkerSlotsReleasedOnAbort(t *testing.T) {
	sess, cell := newRobustnessSession(t)
	idle := sess.Engine().Pool().IdleHelpers()
	for i := 0; i < 5; i++ {
		cctx, cancel := context.WithCancel(context.Background())
		inj := faults.NewInjector(faults.Rule{Site: faults.SiteWorkerStart, Ordinal: 1, Kind: faults.KindCancel}).
			OnCancel(cancel)
		deactivate := faults.Activate(inj)
		_, _ = sess.Explainer().ExplainCells(cctx, cell, cellOpts())
		deactivate()
		cancel()
		if got := sess.Engine().Pool().IdleHelpers(); got != idle {
			t.Fatalf("iteration %d: %d idle helpers, want %d (slot leak)", i, got, idle)
		}
	}
}

// TestBeginIsReentrant: nested entry points must join the outer
// transaction — exactly one commit, no double publication, no deadlock.
func TestBeginIsReentrant(t *testing.T) {
	sess, cell := newRobustnessSession(t)
	e := sess.Explainer()
	owned := e.begin()
	if !owned || !e.entryOpen {
		t.Fatal("begin must open an entry point on an engine-backed explainer")
	}
	if e.txn != nil {
		t.Fatal("the txn must be lazy: no allocation before the first store")
	}
	if e.liveTxn() == nil || e.txn == nil {
		t.Fatal("liveTxn must create the txn inside an open entry point")
	}
	inner := e.begin()
	if inner {
		t.Fatal("nested begin must join the outer entry point, not own one")
	}
	var err error
	e.finishEntry(inner, &err) // no-op: must not commit or clear the outer txn
	if e.txn == nil || !e.entryOpen {
		t.Fatal("inner finisher must not tear down the outer txn")
	}
	e.finishEntry(owned, &err)
	if e.txn != nil || e.entryOpen {
		t.Fatal("outer finisher must clear the txn")
	}
	if e.liveTxn() != nil {
		t.Fatal("liveTxn outside an entry point must stay nil")
	}
	// And the real nested path: Target inside ExplainConstraints.
	if _, err := e.ExplainConstraints(context.Background(), cell); err != nil {
		t.Fatal(err)
	}
	if e.txn != nil || e.entryOpen {
		t.Fatal("entry point must leave no dangling txn")
	}
}
