package core

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

// groupsDesc fingerprints a group roster for the shared coalition cache:
// names plus exact membership (vector indexes), so two rosters share
// memoized coalition values only when they are the same grouping. Names
// are length-prefixed and cell counts explicit, keeping the fingerprint
// injective even when a caller's group name contains the separators
// (";3:a,b#2:…" cannot alias ";1:a…" framing).
func groupsDesc(t *table.Table, groups []CellGroup) string {
	var b strings.Builder
	for _, g := range groups {
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(len(g.Name)))
		b.WriteByte(':')
		b.WriteString(g.Name)
		b.WriteByte('#')
		b.WriteString(strconv.Itoa(len(g.Cells)))
		b.WriteByte(':')
		for i, ref := range g.Cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(t.VecIndex(ref)))
		}
	}
	return b.String()
}

// CellGroup is a named set of cells treated as one Shapley player. Rows
// and columns are the natural groupings for tables: "how much did tuple t3
// as a whole contribute to this repair?" is often the question a user
// actually has, and grouping divides the player count by the table width.
type CellGroup struct {
	// Name labels the group in reports, e.g. "row t3" or "col Country".
	Name string
	// Cells are the member cells.
	Cells []table.CellRef
}

// RowGroups partitions the dirty table into one group per row, excluding
// the cell of interest from its row's group (it stays pinned).
func (e *Explainer) RowGroups(cell table.CellRef) []CellGroup {
	groups := make([]CellGroup, 0, e.Dirty.NumRows())
	for i := 0; i < e.Dirty.NumRows(); i++ {
		g := CellGroup{Name: fmt.Sprintf("row t%d", i+1)}
		for j := 0; j < e.Dirty.NumCols(); j++ {
			ref := table.CellRef{Row: i, Col: j}
			if ref != cell {
				g.Cells = append(g.Cells, ref)
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// ColumnGroups partitions the dirty table into one group per column,
// excluding the cell of interest from its column's group.
func (e *Explainer) ColumnGroups(cell table.CellRef) []CellGroup {
	groups := make([]CellGroup, 0, e.Dirty.NumCols())
	for j := 0; j < e.Dirty.NumCols(); j++ {
		g := CellGroup{Name: "col " + e.Dirty.Schema().Col(j).Name}
		for i := 0; i < e.Dirty.NumRows(); i++ {
			ref := table.CellRef{Row: i, Col: j}
			if ref != cell {
				g.Cells = append(g.Cells, ref)
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// GroupGame is the cell game lifted to groups: player k present means
// every cell of groups[k] keeps its dirty value; absent means all of them
// are replaced per the policy. The cell of interest is pinned as in
// CellGame.
type GroupGame struct {
	exp    *Explainer
	cell   table.CellRef
	target table.Value
	policy ReplacementPolicy
	stats  *table.Stats
	groups []CellGroup
	// layout is the precomputed flat-cell geometry of the walks: group
	// membership and overlap counts are fixed at construction, so walks
	// restore their mask baseline by one memcpy instead of re-walking
	// every group per permutation.
	layout groupLayout
	// scratch pools reusable clones of the dirty table, as in CellGame:
	// mask in place, repair, restore the touched cells.
	scratch sync.Pool
	// snapGen guards the pooled clones and stats against session edits of
	// the live dirty table, exactly as in CellGame: a scratch cloned before
	// an edit is discarded rather than reused with stale contents.
	snapGen uint64
	// syncMu serializes re-snapshotting.
	syncMu sync.Mutex
	// shared is the game's handle on the session's shared coalition cache,
	// as in CellGame: deterministic null-policy evaluations only, set by
	// BindSharedCache (groups are fixed at construction, so no re-binding
	// concern).
	shared *exec.Binding
}

// groupLayout is the static geometry of a group game's player cells — the
// incremental group walk's precomputation. Values are never stored here
// (they are read live from the dirty table, which session edits may move);
// only the shape is, which NewGroupGame fixes.
type groupLayout struct {
	// flat is the deduplicated list of every cell appearing in some group.
	flat []table.CellRef
	// base[i] counts the occurrences of flat[i] across all groups — the
	// all-groups-absent mask-count baseline a walk Reset copies wholesale.
	base []int32
	// groupIdx[k] lists, per occurrence, the flat indexes of group k's
	// cells.
	groupIdx [][]int32
}

// buildGroupLayout flattens the (cleaned) groups of a game.
func buildGroupLayout(t *table.Table, groups []CellGroup) groupLayout {
	lo := groupLayout{groupIdx: make([][]int32, len(groups))}
	byVec := make(map[int]int32)
	for k, g := range groups {
		idxs := make([]int32, 0, len(g.Cells))
		for _, ref := range g.Cells {
			vi := t.VecIndex(ref)
			fi, ok := byVec[vi]
			if !ok {
				fi = int32(len(lo.flat))
				byVec[vi] = fi
				lo.flat = append(lo.flat, ref)
				lo.base = append(lo.base, 0)
			}
			lo.base[fi]++
			idxs = append(idxs, fi)
		}
		lo.groupIdx[k] = idxs
	}
	return lo
}

// groupScratch is one pooled working table plus the undo list of masked
// cells and their dirty values.
type groupScratch struct {
	tbl     *table.Table
	touched []table.CellRef
	origs   []table.Value
	// gen is the dirty-table generation the clone was taken at.
	gen uint64
}

// sync refreshes the stats snapshot after a session edit; stale pooled
// clones are discarded lazily by getScratch. See CellGame.sync for the
// contract.
func (g *GroupGame) sync() {
	cur := g.exp.Dirty.Generation()
	if atomic.LoadUint64(&g.snapGen) == cur {
		return
	}
	g.syncMu.Lock()
	defer g.syncMu.Unlock()
	if g.snapGen == cur {
		return
	}
	// Per-column delta catch-up from the edit log; equivalent to a full
	// rebuild (see table.Stats.Sync).
	g.stats.Sync(g.exp.Dirty)
	atomic.StoreUint64(&g.snapGen, cur)
}

func (g *GroupGame) getScratch() *groupScratch {
	gen := atomic.LoadUint64(&g.snapGen)
	for {
		sc, ok := g.scratch.Get().(*groupScratch)
		if !ok {
			break
		}
		if sc.gen == gen {
			return sc
		}
		// Stale clone from before a session edit: drop it.
	}
	return &groupScratch{tbl: g.exp.Dirty.Clone(), gen: gen}
}

// NewGroupGame builds the group game; target must come from Target.
func (e *Explainer) NewGroupGame(cell table.CellRef, target table.Value, policy ReplacementPolicy, groups []CellGroup) *GroupGame {
	cleaned := make([]CellGroup, len(groups))
	for k, g := range groups {
		cg := CellGroup{Name: g.Name}
		for _, ref := range g.Cells {
			if ref != cell {
				cg.Cells = append(cg.Cells, ref)
			}
		}
		cleaned[k] = cg
	}
	return &GroupGame{
		exp:     e,
		cell:    cell,
		target:  target,
		policy:  policy,
		stats:   table.NewStats(e.Dirty),
		groups:  cleaned,
		layout:  buildGroupLayout(e.Dirty, cleaned),
		snapGen: e.Dirty.Generation(),
	}
}

// BindSharedCache enrolls the game's deterministic coalition evaluations
// in the session's shared coalition cache, as CellGame.BindSharedCache
// does for cell games: null policy only, descriptor folding in the cell,
// target and exact group roster. See that method for the determinism
// argument (cache hits can never change estimates or RNG consumption).
func (g *GroupGame) BindSharedCache() {
	if g.policy != ReplaceWithNull {
		return
	}
	desc := g.exp.gameDesc("group-game-null",
		"cell="+refDesc(g.cell), "target="+targetDesc(g.target),
		"groups="+groupsDesc(g.exp.Dirty, g.groups))
	g.shared = g.exp.bind(desc)
}

// Groups returns the game's (cleaned) groups, in player order.
func (g *GroupGame) Groups() []CellGroup { return g.groups }

// NumPlayers implements shapley.Game and shapley.StochasticGame.
func (g *GroupGame) NumPlayers() int { return len(g.groups) }

// Value implements shapley.Game under the deterministic null policy.
func (g *GroupGame) Value(ctx context.Context, coalition []bool) (float64, error) {
	if g.policy != ReplaceWithNull {
		return 0, fmt.Errorf("core: deterministic Value requires ReplaceWithNull")
	}
	return g.eval(ctx, coalition, nil)
}

// SampleValue implements shapley.StochasticGame.
func (g *GroupGame) SampleValue(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	return g.eval(ctx, coalition, rng)
}

func (g *GroupGame) eval(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	// See CellGame.eval: the binding is nil for unbound and stochastic
	// games (always-miss), and a value computed after a concurrent edit
	// carries a stale gen stamp and is dropped by Store.
	v, gen, ok := g.shared.Lookup(coalition)
	if ok {
		return v, nil
	}
	v, err := g.evalUncached(ctx, coalition, rng)
	if err == nil {
		g.shared.Store(gen, coalition, v)
	}
	return v, err
}

// evalUncached is eval without the shared-cache consult.
func (g *GroupGame) evalUncached(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	g.sync()
	sc := g.getScratch()
	v, err := g.evalOn(ctx, sc, coalition, rng)
	// Restore in reverse: groups may overlap (the public API imposes no
	// disjointness), so a cell masked twice has its true dirty value in the
	// FIRST undo entry — LIFO replay lands on it last.
	for i := len(sc.touched) - 1; i >= 0; i-- {
		sc.tbl.SetRef(sc.touched[i], sc.origs[i])
	}
	sc.touched = sc.touched[:0]
	sc.origs = sc.origs[:0]
	g.scratch.Put(sc)
	return v, err
}

// replacement computes the out-of-coalition value for a cell of column col
// per the policy.
func (g *GroupGame) replacement(col int, rng *rand.Rand) (table.Value, error) {
	switch g.policy {
	case ReplaceWithNull:
		return table.Null(), nil
	case ReplaceFromColumn:
		if rng == nil {
			return table.Null(), fmt.Errorf("core: ReplaceFromColumn needs an RNG")
		}
		v, ok := g.stats.Column(col).Sample(rng)
		if !ok {
			v = table.Null()
		}
		return v, nil
	default:
		return table.Null(), fmt.Errorf("core: unknown replacement policy %d", g.policy)
	}
}

func (g *GroupGame) evalOn(ctx context.Context, sc *groupScratch, coalition []bool, rng *rand.Rand) (float64, error) {
	for k, in := range coalition {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if in {
			continue
		}
		for _, ref := range g.groups[k].Cells {
			repl, err := g.replacement(ref.Col, rng)
			if err != nil {
				return 0, err
			}
			sc.touched = append(sc.touched, ref)
			sc.origs = append(sc.origs, sc.tbl.GetRef(ref))
			sc.tbl.SetRef(ref, repl)
		}
	}
	return repair.CellRepairedPlanned(ctx, g.exp.Alg, g.exp.DCs, sc.tbl, g.cell, g.target, g.exp.pool(), g.exp.planner())
}

// evalClone is the clone-per-evaluation reference path, mirroring
// CellGame.evalClone: the golden equivalence tests prove the pooled scratch
// and walk paths reproduce its arithmetic bit-for-bit. Reach it through
// CloneEval.
func (g *GroupGame) evalClone(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	g.sync()
	masked := g.exp.Dirty.Clone()
	for k, in := range coalition {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if in {
			continue
		}
		for _, ref := range g.groups[k].Cells {
			repl, err := g.replacement(ref.Col, rng)
			if err != nil {
				return 0, err
			}
			masked.SetRef(ref, repl)
		}
	}
	return repair.CellRepaired(ctx, g.exp.Alg, g.exp.DCs, masked, g.cell, g.target)
}

// CloneEval returns a view of the game that evaluates through the
// clone-per-evaluation path and hides the IncrementalGame interface, so
// samplers take their generic path. It exists for cross-validation (golden
// equivalence tests) and A/B benchmarks against the walk fast path.
func (g *GroupGame) CloneEval() shapley.StochasticGame { return cloneEvalGroupGame{g} }

// cloneEvalGroupGame adapts GroupGame to the clone evaluation strategy. It
// deliberately does not implement shapley.IncrementalGame.
type cloneEvalGroupGame struct{ g *GroupGame }

// NumPlayers implements shapley.StochasticGame.
func (c cloneEvalGroupGame) NumPlayers() int { return c.g.NumPlayers() }

// SampleValue implements shapley.StochasticGame.
func (c cloneEvalGroupGame) SampleValue(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	return c.g.evalClone(ctx, coalition, rng)
}

// Value implements shapley.Game under the deterministic null policy.
func (c cloneEvalGroupGame) Value(ctx context.Context, coalition []bool) (float64, error) {
	if c.g.policy != ReplaceWithNull {
		return 0, fmt.Errorf("core: deterministic Value requires ReplaceWithNull")
	}
	return c.g.evalClone(ctx, coalition, nil)
}

// NewWalk implements shapley.IncrementalGame: the samplers' permutation
// prefix walks grow the coalition one group at a time, and under the null
// policy each step costs one SetRef per cell of the included group instead
// of a full mask rebuild. Groups may overlap (the public API imposes no
// disjointness), so the walk reference-counts masked cells: a cell returns
// to its dirty value only when the last absent group containing it joins
// the coalition — exactly the final state the batch mask produces.
//
// The walk is incremental in both directions (shapley.DeltaWalk): Exclude
// re-masks a group, which lets the one-marginal samplers morph between
// consecutive samples' coalitions instead of re-walking all groups per
// sample, and Reset restores the all-absent mask baseline with one copy of
// the precomputed layout counts.
func (g *GroupGame) NewWalk() shapley.CoalitionWalk {
	g.sync()
	return &groupWalk{
		g:         g,
		sc:        g.getScratch(),
		in:        make([]bool, len(g.groups)),
		maskCount: make([]int32, len(g.layout.flat)),
	}
}

// groupWalk holds one borrowed scratch table for a worker's sequence of
// permutation walks. Confined to one goroutine.
type groupWalk struct {
	g  *GroupGame
	sc *groupScratch
	// in mirrors coalition membership; needed under ReplaceFromColumn,
	// where every absent group is redrawn per evaluation.
	in []bool
	// maskCount[i] counts the absent groups containing layout.flat[i];
	// positive means masked under the null policy.
	maskCount []int32
	// masked reports whether the scratch currently has absent cells masked
	// (i.e. Reset has run under the null policy).
	masked bool
}

// Reset implements shapley.CoalitionWalk: empty coalition, every group
// masked. The mask counts are restored by copying the layout baseline and
// the distinct player cells nulled once each — no per-group re-walk.
func (w *groupWalk) Reset() {
	lo := &w.g.layout
	copy(w.maskCount, lo.base)
	for k := range w.in {
		w.in[k] = false
	}
	if w.g.policy == ReplaceWithNull {
		for _, ref := range lo.flat {
			w.sc.tbl.SetRef(ref, table.Null())
		}
	}
	w.masked = true
}

// Include implements shapley.CoalitionWalk: the per-group delta. Cells the
// group shares with still-absent groups stay masked.
func (w *groupWalk) Include(p int) {
	if w.in[p] {
		return
	}
	w.in[p] = true
	lo := &w.g.layout
	dirty := w.g.exp.Dirty
	for _, fi := range lo.groupIdx[p] {
		w.maskCount[fi]--
		if w.maskCount[fi] == 0 {
			w.sc.tbl.SetRef(lo.flat[fi], dirty.GetRef(lo.flat[fi]))
		}
	}
}

// Exclude implements shapley.DeltaWalk: the inverse per-group delta. A
// cell re-masks (under the null policy) when its first absent group
// reappears; cells still covered by other absent groups were masked
// already.
func (w *groupWalk) Exclude(p int) {
	if !w.in[p] {
		return
	}
	w.in[p] = false
	lo := &w.g.layout
	for _, fi := range lo.groupIdx[p] {
		w.maskCount[fi]++
		if w.maskCount[fi] == 1 && w.g.policy == ReplaceWithNull {
			w.sc.tbl.SetRef(lo.flat[fi], table.Null())
		}
	}
}

// Value implements shapley.CoalitionWalk. Under the null policy the scratch
// already holds the coalition's exact masked state; under column sampling
// every absent group's cells are redrawn in (group, cell) order, consuming
// the RNG exactly as the batch path's SampleValue does (the
// golden-equivalence contract; overlapped cells keep the last draw in both
// paths).
func (w *groupWalk) Value(ctx context.Context, rng *rand.Rand) (float64, error) {
	if w.g.policy != ReplaceWithNull {
		for k, in := range w.in {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			if in {
				continue
			}
			for _, ref := range w.g.groups[k].Cells {
				v, err := w.g.replacement(ref.Col, rng)
				if err != nil {
					return 0, err
				}
				w.sc.tbl.SetRef(ref, v)
			}
		}
	}
	// Deterministic null-policy values consult the shared coalition cache
	// on the membership mirror, as cellWalk.Value does (no RNG is consumed
	// under the null policy, so hits leave the sampler's stream untouched;
	// a stochastic walk's binding is nil and always misses). Lookups and
	// stores are both pinned to the scratch's snapshot generation — see
	// cellWalk.Value.
	if v, ok := w.g.shared.LookupAt(w.sc.gen, w.in); ok {
		return v, nil
	}
	v, err := repair.CellRepairedPlanned(ctx, w.g.exp.Alg, w.g.exp.DCs, w.sc.tbl, w.g.cell, w.g.target, w.g.exp.pool(), w.g.exp.planner())
	if err == nil {
		w.g.shared.Store(w.sc.gen, w.in, v)
	}
	return v, err
}

// Close implements shapley.CoalitionWalk: restores the scratch to the dirty
// contents and returns it to the pool.
func (w *groupWalk) Close() {
	if w.masked || w.g.policy != ReplaceWithNull {
		dirty := w.g.exp.Dirty
		for _, ref := range w.g.layout.flat {
			w.sc.tbl.SetRef(ref, dirty.GetRef(ref))
		}
	}
	w.g.scratch.Put(w.sc)
	w.sc = nil
}

// MaxExactGroups bounds exact subset enumeration for group games: beyond
// it, 2^n black-box runs are infeasible and ExplainCellGroups switches to
// permutation sampling over the group walk.
const MaxExactGroups = 20

// ExplainCellGroups ranks cell groups (e.g. whole rows) by their Shapley
// contribution to the repair of the cell of interest. Group counts up to
// MaxExactGroups are computed exactly under the null policy; larger group
// sets (row groupings of real tables) fall back to permutation sampling
// through the GroupGame prefix walk with default options, so row-level
// explanations work at any table size. Use ExplainCellGroupsAuto to
// control the sampling options of the fallback.
func (e *Explainer) ExplainCellGroups(ctx context.Context, cell table.CellRef, groups []CellGroup) (*Report, error) {
	return e.ExplainCellGroupsAuto(ctx, cell, groups, CellExplainOptions{})
}

// ExplainCellGroupsAuto is ExplainCellGroups with explicit options for the
// sampled fallback: exact enumeration up to MaxExactGroups, permutation
// sampling (honouring opts) beyond it. It is the single place the
// exact-vs-sampled decision lives.
func (e *Explainer) ExplainCellGroupsAuto(ctx context.Context, cell table.CellRef, groups []CellGroup, opts CellExplainOptions) (_ *Report, err error) {
	defer e.finishEntry(e.begin(), &err)
	if len(groups) > MaxExactGroups {
		return e.ExplainCellGroupsSampled(ctx, cell, groups, opts)
	}
	target, repaired, err := e.Target(ctx, cell)
	if err != nil {
		return nil, err
	}
	if !repaired {
		return nil, fmt.Errorf("core: cell %s was not repaired; nothing to explain", e.Dirty.RefName(cell))
	}
	game := e.NewGroupGame(cell, target, ReplaceWithNull, groups)
	// The game's own binding (descriptor keyed on the exact group roster)
	// lets the exact enumeration and the sampled fallback share one pool of
	// memoized coalition values.
	game.BindSharedCache()
	values, err := shapley.ExactSubsets(ctx, game)
	if err != nil {
		return nil, fmt.Errorf("core: group Shapley: %w", err)
	}
	report := &Report{
		Kind:      "cell-groups",
		Cell:      e.Dirty.RefName(cell),
		Target:    target.String(),
		Algorithm: e.Alg.Name(),
	}
	for k, v := range values {
		report.Entries = append(report.Entries, Entry{Name: game.groups[k].Name, Shapley: v})
	}
	sortEntries(report.Entries)
	return report, nil
}

// ExplainCellGroupsSampled estimates group Shapley values by permutation
// sampling (SampleAll over the GroupGame walk) — the group analogue of
// ExplainCells, for group counts where exact enumeration is infeasible.
func (e *Explainer) ExplainCellGroupsSampled(ctx context.Context, cell table.CellRef, groups []CellGroup, opts CellExplainOptions) (_ *Report, err error) {
	defer e.finishEntry(e.begin(), &err)
	opts = opts.withDefaults()
	target, repaired, err := e.Target(ctx, cell)
	if err != nil {
		return nil, err
	}
	if !repaired {
		return nil, fmt.Errorf("core: cell %s was not repaired; nothing to explain", e.Dirty.RefName(cell))
	}
	game := e.NewGroupGame(cell, target, opts.Policy, groups)
	// Deterministic (null-policy) sampled values join the shared cache.
	game.BindSharedCache()
	ests, err := shapley.SampleAll(ctx, game, shapley.Options{
		Samples: opts.Samples,
		Workers: opts.Workers,
		Seed:    opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: group Shapley: %w", err)
	}
	report := &Report{
		Kind:      "cell-groups",
		Cell:      e.Dirty.RefName(cell),
		Target:    target.String(),
		Algorithm: e.Alg.Name(),
	}
	for k, est := range ests {
		report.Entries = append(report.Entries, Entry{
			Name:    game.groups[k].Name,
			Shapley: est.Mean,
			CI95:    est.CI95(),
			Samples: est.N,
		})
	}
	sortEntries(report.Entries)
	return report, nil
}
