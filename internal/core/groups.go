package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

// CellGroup is a named set of cells treated as one Shapley player. Rows
// and columns are the natural groupings for tables: "how much did tuple t3
// as a whole contribute to this repair?" is often the question a user
// actually has, and grouping divides the player count by the table width.
type CellGroup struct {
	// Name labels the group in reports, e.g. "row t3" or "col Country".
	Name string
	// Cells are the member cells.
	Cells []table.CellRef
}

// RowGroups partitions the dirty table into one group per row, excluding
// the cell of interest from its row's group (it stays pinned).
func (e *Explainer) RowGroups(cell table.CellRef) []CellGroup {
	groups := make([]CellGroup, 0, e.Dirty.NumRows())
	for i := 0; i < e.Dirty.NumRows(); i++ {
		g := CellGroup{Name: fmt.Sprintf("row t%d", i+1)}
		for j := 0; j < e.Dirty.NumCols(); j++ {
			ref := table.CellRef{Row: i, Col: j}
			if ref != cell {
				g.Cells = append(g.Cells, ref)
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// ColumnGroups partitions the dirty table into one group per column,
// excluding the cell of interest from its column's group.
func (e *Explainer) ColumnGroups(cell table.CellRef) []CellGroup {
	groups := make([]CellGroup, 0, e.Dirty.NumCols())
	for j := 0; j < e.Dirty.NumCols(); j++ {
		g := CellGroup{Name: "col " + e.Dirty.Schema().Col(j).Name}
		for i := 0; i < e.Dirty.NumRows(); i++ {
			ref := table.CellRef{Row: i, Col: j}
			if ref != cell {
				g.Cells = append(g.Cells, ref)
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// GroupGame is the cell game lifted to groups: player k present means
// every cell of groups[k] keeps its dirty value; absent means all of them
// are replaced per the policy. The cell of interest is pinned as in
// CellGame.
type GroupGame struct {
	exp    *Explainer
	cell   table.CellRef
	target table.Value
	policy ReplacementPolicy
	stats  *table.Stats
	groups []CellGroup
	// scratch pools reusable clones of the dirty table, as in CellGame:
	// mask in place, repair, restore the touched cells.
	scratch sync.Pool
}

// groupScratch is one pooled working table plus the undo list of masked
// cells and their dirty values.
type groupScratch struct {
	tbl     *table.Table
	touched []table.CellRef
	origs   []table.Value
}

func (g *GroupGame) getScratch() *groupScratch {
	if sc, ok := g.scratch.Get().(*groupScratch); ok {
		return sc
	}
	return &groupScratch{tbl: g.exp.Dirty.Clone()}
}

// NewGroupGame builds the group game; target must come from Target.
func (e *Explainer) NewGroupGame(cell table.CellRef, target table.Value, policy ReplacementPolicy, groups []CellGroup) *GroupGame {
	cleaned := make([]CellGroup, len(groups))
	for k, g := range groups {
		cg := CellGroup{Name: g.Name}
		for _, ref := range g.Cells {
			if ref != cell {
				cg.Cells = append(cg.Cells, ref)
			}
		}
		cleaned[k] = cg
	}
	return &GroupGame{
		exp:    e,
		cell:   cell,
		target: target,
		policy: policy,
		stats:  table.NewStats(e.Dirty),
		groups: cleaned,
	}
}

// NumPlayers implements shapley.Game and shapley.StochasticGame.
func (g *GroupGame) NumPlayers() int { return len(g.groups) }

// Value implements shapley.Game under the deterministic null policy.
func (g *GroupGame) Value(ctx context.Context, coalition []bool) (float64, error) {
	if g.policy != ReplaceWithNull {
		return 0, fmt.Errorf("core: deterministic Value requires ReplaceWithNull")
	}
	return g.eval(ctx, coalition, nil)
}

// SampleValue implements shapley.StochasticGame.
func (g *GroupGame) SampleValue(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	return g.eval(ctx, coalition, rng)
}

func (g *GroupGame) eval(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	sc := g.getScratch()
	v, err := g.evalOn(ctx, sc, coalition, rng)
	// Restore in reverse: groups may overlap (the public API imposes no
	// disjointness), so a cell masked twice has its true dirty value in the
	// FIRST undo entry — LIFO replay lands on it last.
	for i := len(sc.touched) - 1; i >= 0; i-- {
		sc.tbl.SetRef(sc.touched[i], sc.origs[i])
	}
	sc.touched = sc.touched[:0]
	sc.origs = sc.origs[:0]
	g.scratch.Put(sc)
	return v, err
}

func (g *GroupGame) evalOn(ctx context.Context, sc *groupScratch, coalition []bool, rng *rand.Rand) (float64, error) {
	for k, in := range coalition {
		if in {
			continue
		}
		for _, ref := range g.groups[k].Cells {
			var repl table.Value
			switch g.policy {
			case ReplaceWithNull:
				// repl stays null.
			case ReplaceFromColumn:
				if rng == nil {
					return 0, fmt.Errorf("core: ReplaceFromColumn needs an RNG")
				}
				v, ok := g.stats.Column(ref.Col).Sample(rng)
				if !ok {
					v = table.Null()
				}
				repl = v
			default:
				return 0, fmt.Errorf("core: unknown replacement policy %d", g.policy)
			}
			sc.touched = append(sc.touched, ref)
			sc.origs = append(sc.origs, sc.tbl.GetRef(ref))
			sc.tbl.SetRef(ref, repl)
		}
	}
	return repair.CellRepaired(ctx, g.exp.Alg, g.exp.DCs, sc.tbl, g.cell, g.target)
}

// ExplainCellGroups ranks cell groups (e.g. whole rows) by their Shapley
// contribution to the repair of the cell of interest. Group counts are
// small (rows or columns), so values are computed exactly under the null
// policy.
func (e *Explainer) ExplainCellGroups(ctx context.Context, cell table.CellRef, groups []CellGroup) (*Report, error) {
	target, repaired, err := e.Target(ctx, cell)
	if err != nil {
		return nil, err
	}
	if !repaired {
		return nil, fmt.Errorf("core: cell %s was not repaired; nothing to explain", e.Dirty.RefName(cell))
	}
	game := e.NewGroupGame(cell, target, ReplaceWithNull, groups)
	if game.NumPlayers() > 20 {
		return nil, fmt.Errorf("core: %d groups is too many for exact enumeration; sample instead", game.NumPlayers())
	}
	values, err := shapley.ExactSubsets(ctx, shapley.NewCached(game))
	if err != nil {
		return nil, fmt.Errorf("core: group Shapley: %w", err)
	}
	report := &Report{
		Kind:      "cell-groups",
		Cell:      e.Dirty.RefName(cell),
		Target:    target.String(),
		Algorithm: e.Alg.Name(),
	}
	for k, v := range values {
		report.Entries = append(report.Entries, Entry{Name: game.groups[k].Name, Shapley: v})
	}
	sortEntries(report.Entries)
	return report, nil
}
