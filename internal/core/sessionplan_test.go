package core

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/repair"
)

// TestSessionPlanLifecycle pins the plan-cache wiring: a session compiles
// one plan at construction, memoizes it in the engine's plan cache, and
// recompiles (through InvalidateCache, which drops the cache wholesale)
// on every constraint edit — so the session's compiled plan can never go
// stale against its DC set.
func TestSessionPlanLifecycle(t *testing.T) {
	s := newSession(t)
	if s.plan == nil {
		t.Fatal("session has no compiled plan after construction")
	}
	if s.Explainer().Plan == nil {
		t.Fatal("Explainer not wired to the session plan")
	}
	if got := s.Engine().Plans().Len(); got != 1 {
		t.Fatalf("plan cache holds %d entries after construction, want 1", got)
	}
	old := s.plan
	// Re-deriving an explainer must reuse the memoized plan, not recompile.
	s.refreshPlan()
	if s.plan != old {
		t.Fatal("refreshPlan with unchanged DC set did not hit the plan cache")
	}
	if err := s.RemoveDC("C3"); err != nil {
		t.Fatal(err)
	}
	if s.plan == old {
		t.Fatal("RemoveDC left the compiled plan stale")
	}
	if old.FingerprintValue() == s.plan.FingerprintValue() {
		t.Fatal("constraint edit did not change the plan fingerprint")
	}
	// InvalidateCache cleared the old entry; exactly the new plan remains.
	if got := s.Engine().Plans().Len(); got != 1 {
		t.Fatalf("plan cache holds %d entries after RemoveDC, want 1", got)
	}
}

// TestSessionPlannedMatchesUnplanned pins the session surface to the
// unplanned reference: violations and repair through a planned session
// are bit-identical to a bare (engineless, planless) explainer over the
// same inputs.
func TestSessionPlannedMatchesUnplanned(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	for _, workers := range []int{1, 4} {
		s, err := NewSessionWith(repair.NewAlgorithm1(), ll.DCs, ll.Dirty, SessionOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewExplainer(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		wantClean, wantDiffs, err := ref.Repair(ctx)
		if err != nil {
			t.Fatal(err)
		}
		gotClean, gotDiffs, err := s.Repair(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !gotClean.Equal(wantClean) {
			t.Fatalf("workers=%d: planned session repair differs from unplanned reference", workers)
		}
		if len(gotDiffs) != len(wantDiffs) {
			t.Fatalf("workers=%d: %d diffs vs %d", workers, len(gotDiffs), len(wantDiffs))
		}
		for i := range wantDiffs {
			if gotDiffs[i] != wantDiffs[i] {
				t.Fatalf("workers=%d: diff %d: %v vs %v", workers, i, gotDiffs[i], wantDiffs[i])
			}
		}
		vs, err := s.Violations()
		if err != nil {
			t.Fatal(err)
		}
		var want int
		for _, c := range ll.DCs {
			pairs, err := c.Violations(ll.Dirty)
			if err != nil {
				t.Fatal(err)
			}
			want += len(pairs)
		}
		if len(vs) != want {
			t.Fatalf("workers=%d: planned session reports %d violations, naive reference %d", workers, len(vs), want)
		}
	}
}
