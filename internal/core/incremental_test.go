package core

import (
	"context"
	"testing"

	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

// toyFDGame builds an n-row FD instance repaired by RuleRepair and returns
// the cell game for the dirty cell.
func toyFDGame(t *testing.T, rows int, policy ReplacementPolicy) *CellGame {
	t.Helper()
	grid := make([][]string, rows)
	for i := range grid {
		grid[i] = []string{"x", "1"}
	}
	grid[1][1] = "2"
	tbl := table.MustFromStrings([]string{"A", "B"}, grid)
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExplainer(repair.NewRuleRepair(cs), cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cell := table.CellRef{Row: 1, Col: 1}
	target, repaired, err := exp.Target(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired {
		t.Fatal("toy cell was not repaired")
	}
	return exp.NewCellGame(cell, target, policy)
}

// sameEstimates requires bit-identical estimates (Mean, Variance, N), not
// just approximate agreement: the incremental walk and the pooled scratch
// path must reproduce the clone path's arithmetic exactly.
func sameEstimates(t *testing.T, label string, got, want []shapley.Estimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d estimates, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: player %d: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestGoldenEquivalenceSampleAll proves the tentpole's core claim: under a
// fixed seed and identical Options, SampleAll over the scratch/walk fast
// path returns exactly the estimates of the seed's clone-per-evaluation
// path, for both replacement policies and both serial and parallel runs.
func TestGoldenEquivalenceSampleAll(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name   string
		policy ReplacementPolicy
	}{
		{"null", ReplaceWithNull},
		{"column", ReplaceFromColumn},
	} {
		for _, workers := range []int{1, 4} {
			game := toyFDGame(t, 5, tc.policy)
			opts := shapley.Options{Samples: 64, Seed: 99, Workers: workers}
			fast, err := shapley.SampleAll(ctx, game, opts)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := shapley.SampleAll(ctx, game.CloneEval(), opts)
			if err != nil {
				t.Fatal(err)
			}
			sameEstimates(t, tc.name, fast, slow)
		}
	}
}

// TestGoldenEquivalenceSamplePlayer covers the two-evaluation walk of
// SamplePlayer.
func TestGoldenEquivalenceSamplePlayer(t *testing.T) {
	ctx := context.Background()
	for _, policy := range []ReplacementPolicy{ReplaceWithNull, ReplaceFromColumn} {
		game := toyFDGame(t, 5, policy)
		opts := shapley.Options{Samples: 48, Seed: 7, Workers: 1}
		for _, p := range []int{0, game.NumPlayers() - 1} {
			fast, err := shapley.SamplePlayer(ctx, game, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := shapley.SamplePlayer(ctx, game.CloneEval(), p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if fast != slow {
				t.Errorf("policy %d player %d: got %+v, want %+v", policy, p, fast, slow)
			}
		}
	}
}

// TestGoldenEquivalenceExact checks the pooled scratch path against the
// clone path under exact subset enumeration (the Game interface route).
func TestGoldenEquivalenceExact(t *testing.T) {
	ctx := context.Background()
	game := toyFDGame(t, 4, ReplaceWithNull)
	fast, err := shapley.ExactSubsets(ctx, game)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := shapley.ExactSubsets(ctx, shapley.GameFunc{N: game.NumPlayers(), Fn: func(ctx context.Context, c []bool) (float64, error) {
		return game.evalClone(ctx, c, nil)
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Errorf("player %d: %v vs %v", i, fast[i], slow[i])
		}
	}
}

// TestScratchRestores verifies the scratch table really is restored after
// every evaluation: the pooled copy must match the dirty table so later
// coalitions are not contaminated by earlier masks.
func TestScratchRestores(t *testing.T) {
	ctx := context.Background()
	game := toyFDGame(t, 5, ReplaceWithNull)
	coalition := make([]bool, game.NumPlayers())
	for i := range coalition {
		coalition[i] = i%2 == 0
	}
	if _, err := game.Value(ctx, coalition); err != nil {
		t.Fatal(err)
	}
	sc := game.getScratch()
	defer game.putScratch(sc)
	if !sc.tbl.Equal(game.exp.Dirty) {
		t.Fatalf("scratch not restored:\n%s\nvs dirty:\n%s", sc.tbl, game.exp.Dirty)
	}
	// A walk must also leave the scratch clean after Close.
	w := game.NewWalk()
	w.Reset()
	w.Include(1)
	if _, err := w.Value(ctx, nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	sc2 := game.getScratch()
	defer game.putScratch(sc2)
	if !sc2.tbl.Equal(game.exp.Dirty) {
		t.Fatal("walk scratch not restored on Close")
	}
}

// allocGame pairs a small FD instance with repair.Passthrough, the
// non-allocating black box, so the allocation budgets below measure the
// coalition-evaluation machinery and not the repairer.
func allocGame(t *testing.T) *CellGame {
	t.Helper()
	grid := make([][]string, 8)
	for i := range grid {
		grid[i] = []string{"x", "1"}
	}
	tbl := table.MustFromStrings([]string{"A", "B"}, grid)
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExplainer(repair.Passthrough{}, cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cell := table.CellRef{Row: 0, Col: 0}
	return exp.NewCellGame(cell, tbl.GetRef(cell), ReplaceWithNull)
}

// TestCellGameEvalAllocs is the allocation budget of the tentpole: once the
// pool is warm, a coalition evaluation through the scratch path performs
// zero allocations.
func TestCellGameEvalAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ctx := context.Background()
	game := allocGame(t)
	coalition := make([]bool, game.NumPlayers())
	for i := range coalition {
		coalition[i] = i%3 == 0
	}
	// Warm the pool and the touched-list capacity.
	if _, err := game.Value(ctx, coalition); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := game.Value(ctx, coalition); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("pooled scratch eval allocates %.1f per op, want 0", got)
	}
}

// TestCellWalkAllocs asserts the incremental walk path — Reset, Include,
// Value across a full permutation — allocates nothing per step.
func TestCellWalkAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ctx := context.Background()
	game := allocGame(t)
	w := game.NewWalk()
	defer w.Close()
	n := game.NumPlayers()
	if got := testing.AllocsPerRun(100, func() {
		w.Reset()
		for p := 0; p < n; p++ {
			w.Include(p)
			if _, err := w.Value(ctx, nil); err != nil {
				t.Fatal(err)
			}
		}
	}); got != 0 {
		t.Errorf("walk allocates %.1f per permutation, want 0", got)
	}
}

// TestGroupGameOverlappingGroupsRestore is the regression test for a
// scratch-corruption bug: when two absent groups share a cell, the undo
// list records the first mask's output as the second entry's "original",
// so a forward-order restore left the pooled scratch permanently masked.
// The LIFO restore must return the scratch to the dirty contents, and the
// game must keep matching the clone-path semantics.
func TestGroupGameOverlappingGroupsRestore(t *testing.T) {
	ctx := context.Background()
	grid := make([][]string, 4)
	for i := range grid {
		grid[i] = []string{"x", "1"}
	}
	grid[1][1] = "2"
	tbl := table.MustFromStrings([]string{"A", "B"}, grid)
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExplainer(repair.NewRuleRepair(cs), cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cell := table.CellRef{Row: 1, Col: 1}
	target, _, err := exp.Target(ctx, cell)
	if err != nil {
		t.Fatal(err)
	}
	shared := table.CellRef{Row: 0, Col: 1}
	groups := []CellGroup{
		{Name: "g0", Cells: []table.CellRef{shared, {Row: 2, Col: 1}}},
		{Name: "g1", Cells: []table.CellRef{shared, {Row: 3, Col: 1}}}, // overlaps g0
	}
	game := exp.NewGroupGame(cell, target, ReplaceWithNull, groups)
	coalition := []bool{false, false} // both groups absent: shared cell masked twice
	want, err := game.Value(ctx, coalition)
	if err != nil {
		t.Fatal(err)
	}
	// The next evaluation reuses the pooled scratch; a corrupted scratch
	// (shared cell stuck at null) would change the value of the full
	// coalition, which must see the unmodified dirty table.
	full, err := game.Value(ctx, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if full != 1 {
		t.Fatalf("full coalition value = %v, want 1 (scratch corrupted?)", full)
	}
	// And the masked evaluation stays reproducible.
	again, err := game.Value(ctx, coalition)
	if err != nil {
		t.Fatal(err)
	}
	if again != want {
		t.Fatalf("repeat masked eval = %v, want %v", again, want)
	}
	sc := game.getScratch()
	if !sc.tbl.Equal(exp.Dirty) {
		t.Fatalf("pooled scratch differs from dirty table:\n%s", sc.tbl)
	}
}
