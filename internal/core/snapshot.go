package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/dc"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/table"
)

// SessionSnapshot is the durable form of a Session: everything needed to
// rebuild a session that answers every query bit-identically — the dirty
// table (kind-tagged cell by cell), the constraint set in parse-back text
// form, the algorithm by registry name, the edit history, and the engine's
// worker budget. Caches are deliberately absent: coalition values and
// repair diffs are pure functions of this state, so a restored session
// merely starts cold and re-converges to the same answers.
//
// The server's eviction and shutdown-drain paths write snapshots to the
// spool directory and restore them on demand (internal/server); the codec
// is JSON so spooled sessions are inspectable and survive binary upgrades
// that keep the schema.
type SessionSnapshot struct {
	// Version guards the codec; bump on incompatible layout changes.
	Version int `json:"version"`
	// Algorithm is the repair black box's registry name (Algorithm.Name).
	Algorithm string `json:"algorithm"`
	// Columns is the table schema, in column order.
	Columns []string `json:"columns"`
	// Rows holds every cell kind-tagged: a CSV-style string grid would
	// collapse String("5") and Int(5), changing join semantics on restore.
	Rows [][]SnapValue `json:"rows"`
	// DCs are the constraints' String() forms, re-parsed on restore.
	DCs []string `json:"dcs"`
	// History is the session's edit log, oldest first.
	History []string `json:"history"`
	// Workers is the engine's parallelism budget.
	Workers int `json:"workers"`
}

// SnapValue is one kind-tagged cell. Exactly one payload field is
// meaningful, selected by K; floats travel as IEEE-754 bit patterns so the
// round-trip is bit-exact (including NaN payloads, which encoding/json
// would otherwise reject).
type SnapValue struct {
	K uint8  `json:"k"`
	S string `json:"s,omitempty"`
	I int64  `json:"i,omitempty"`
	F uint64 `json:"f,omitempty"`
	B bool   `json:"b,omitempty"`
}

// snapshotVersion is the current codec version.
const snapshotVersion = 1

// snapValueOf encodes one table value.
func snapValueOf(v table.Value) SnapValue {
	switch v.Kind() {
	case table.KindString:
		return SnapValue{K: uint8(table.KindString), S: v.Str()}
	case table.KindInt:
		return SnapValue{K: uint8(table.KindInt), I: v.IntVal()}
	case table.KindFloat:
		return SnapValue{K: uint8(table.KindFloat), F: math.Float64bits(v.FloatVal())}
	case table.KindBool:
		return SnapValue{K: uint8(table.KindBool), B: v.BoolVal()}
	default:
		return SnapValue{K: uint8(table.KindNull)}
	}
}

// value decodes one cell.
func (sv SnapValue) value() (table.Value, error) {
	switch table.Kind(sv.K) {
	case table.KindNull:
		return table.Null(), nil
	case table.KindString:
		return table.String(sv.S), nil
	case table.KindInt:
		return table.Int(sv.I), nil
	case table.KindFloat:
		return table.Float(math.Float64frombits(sv.F)), nil
	case table.KindBool:
		return table.Bool(sv.B), nil
	default:
		return table.Null(), fmt.Errorf("core: unknown snapshot value kind %d", sv.K)
	}
}

// Snapshot captures the session's current state. The caller must not edit
// the session concurrently (the server holds its per-session lock).
func (s *Session) Snapshot() *SessionSnapshot {
	sn := &SessionSnapshot{
		Version:   snapshotVersion,
		Algorithm: s.alg.Name(),
		Columns:   s.dirty.Schema().Names(),
		History:   append([]string(nil), s.History...),
		Workers:   s.engine.Workers(),
	}
	sn.Rows = make([][]SnapValue, s.dirty.NumRows())
	for i := range sn.Rows {
		row := make([]SnapValue, s.dirty.NumCols())
		for j := range row {
			row[j] = snapValueOf(s.dirty.Get(i, j))
		}
		sn.Rows[i] = row
	}
	for _, c := range s.dcs {
		sn.DCs = append(sn.DCs, c.String())
	}
	return sn
}

// WriteTo encodes the snapshot as JSON. SiteSnapshotWrite is the fault
// checkpoint: an injected failure here models a full disk or a kill
// mid-write, which the spool layer turns into "evict without snapshot"
// (recompute later) rather than a corrupt restore.
func (sn *SessionSnapshot) WriteTo(w io.Writer) (int64, error) {
	if err := faults.Err(faults.SiteSnapshotWrite); err != nil {
		return 0, err
	}
	buf, err := json.Marshal(sn)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadSnapshot decodes a snapshot written by WriteTo.
func ReadSnapshot(r io.Reader) (*SessionSnapshot, error) {
	var sn SessionSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sn); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if sn.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", sn.Version, snapshotVersion)
	}
	return &sn, nil
}

// AlgorithmResolver maps an Algorithm.Name back to a black box instance on
// restore. The server passes its registry; RestoreSession falls back to
// DefaultAlgorithms when nil.
type AlgorithmResolver func(name string) (repair.Algorithm, bool)

// DefaultAlgorithms resolves the built-in black boxes by their Name().
func DefaultAlgorithms(name string) (repair.Algorithm, bool) {
	switch name {
	case repair.NewAlgorithm1().Name():
		return repair.NewAlgorithm1(), true
	case "fd-chase":
		return repair.NewFDChase(), true
	case "greedy-holistic":
		return repair.NewGreedy(), true
	default:
		return nil, false
	}
}

// RestoreSession rebuilds a session from its snapshot. The result answers
// every Violations/Repair/Explain query bit-identically to the snapshotted
// session: the table contents, constraint set and algorithm fully
// determine those answers, and the kind-tagged codec reproduces the table
// exactly. Engine caches start cold (they are derived state).
func RestoreSession(sn *SessionSnapshot, resolve AlgorithmResolver) (*Session, error) {
	if resolve == nil {
		resolve = DefaultAlgorithms
	}
	alg, ok := resolve(sn.Algorithm)
	if !ok {
		return nil, fmt.Errorf("core: snapshot needs unknown algorithm %q", sn.Algorithm)
	}
	schema, err := table.SchemaOf(sn.Columns...)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot schema: %w", err)
	}
	tbl := table.New(schema)
	row := make([]table.Value, len(sn.Columns))
	for i, snRow := range sn.Rows {
		if len(snRow) != len(sn.Columns) {
			return nil, fmt.Errorf("core: snapshot row %d has %d cells, want %d", i, len(snRow), len(sn.Columns))
		}
		for j, sv := range snRow {
			if row[j], err = sv.value(); err != nil {
				return nil, fmt.Errorf("core: snapshot cell (%d,%d): %w", i, j, err)
			}
		}
		if err := tbl.Append(row); err != nil {
			return nil, fmt.Errorf("core: snapshot row %d: %w", i, err)
		}
	}
	dcs := make([]*dc.Constraint, 0, len(sn.DCs))
	for _, text := range sn.DCs {
		c, err := dc.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot constraint %q: %w", text, err)
		}
		dcs = append(dcs, c)
	}
	if err := validateHistory(sn.History); err != nil {
		return nil, err
	}
	sess, err := NewSessionWith(alg, dcs, tbl, SessionOptions{Workers: sn.Workers})
	if err != nil {
		return nil, err
	}
	sess.History = append([]string(nil), sn.History...)
	return sess, nil
}

// validateHistory rejects histories whose batch brackets don't balance —
// the footprint of a spool file truncated or corrupted mid-record.
// Session.ApplyBatch always writes matched "batch begin (N ops)" …
// "batch end" marker pairs, so an open or orphaned bracket means the
// snapshot does not describe a state any session ever reached, and the
// restore degrades to a clean error instead of resurrecting it.
func validateHistory(history []string) error {
	depth := 0
	for i, line := range history {
		switch {
		case strings.HasPrefix(line, "batch begin"):
			depth++
		case line == "batch end":
			depth--
			if depth < 0 {
				return fmt.Errorf("core: snapshot history line %d: batch end without matching begin", i)
			}
		}
	}
	if depth != 0 {
		return fmt.Errorf("core: snapshot history has %d unclosed batch bracket(s)", depth)
	}
	return nil
}
