package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/repair"
	"repro/internal/table"
)

// rescanViolations recomputes the session's violations from scratch (a
// fresh live set) for comparison against the incrementally-maintained
// lists the session serves.
func rescanViolations(t *testing.T, s *Session) []string {
	t.Helper()
	fresh, err := NewSession(repair.Passthrough{}, s.DCs(), s.Dirty())
	if err != nil {
		t.Fatal(err)
	}
	return violationStrings(t, fresh)
}

func violationStrings(t *testing.T, s *Session) []string {
	t.Helper()
	vs, err := s.Violations()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		out = append(out, v.Constraint.ID+":"+s.Dirty().RefName(table.CellRef{Row: v.Row1})+","+s.Dirty().RefName(table.CellRef{Row: v.Row2}))
	}
	return out
}

func assertViolationsFresh(t *testing.T, label string, s *Session) {
	t.Helper()
	got := violationStrings(t, s)
	want := rescanViolations(t, s)
	if len(got) != len(want) {
		t.Fatalf("%s: %d violations vs %d from rescan\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: violation %d: %s vs %s", label, i, got[i], want[i])
		}
	}
}

// TestSessionStructuralEdits drives the new structural session API —
// InsertRow, DeleteRow, ApplyBatch — and checks the incrementally
// maintained violation lists stay bit-identical to fresh rescans, and
// that history records each edit (with the swap-delete remap named).
func TestSessionStructuralEdits(t *testing.T) {
	ll := data.NewLaLiga()
	s, err := NewSession(repair.Passthrough{}, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	assertViolationsFresh(t, "initial", s)
	n := s.Dirty().NumRows()

	row := append([]table.Value(nil), s.Dirty().RowView(0)...)
	row[0] = table.String("Inserted FC")
	if err := s.InsertRow(row); err != nil {
		t.Fatal(err)
	}
	if s.Dirty().NumRows() != n+1 {
		t.Fatalf("rows = %d after insert, want %d", s.Dirty().NumRows(), n+1)
	}
	if got := s.History[len(s.History)-1]; !strings.HasPrefix(got, "insert row ") {
		t.Fatalf("insert history line = %q", got)
	}
	assertViolationsFresh(t, "after insert", s)

	// Width mismatch is rejected before mutating.
	if err := s.InsertRow(row[:2]); err == nil {
		t.Fatal("short row must be rejected")
	}
	if s.Dirty().NumRows() != n+1 {
		t.Fatal("failed insert mutated the table")
	}

	// Delete a middle row: the last row swaps down, and the history line
	// names the remap.
	moved := s.Dirty().NumRows() - 1
	if err := s.DeleteRow(1); err != nil {
		t.Fatal(err)
	}
	wantLine := deleteHistory(1, moved+1)
	if got := s.History[len(s.History)-1]; got != wantLine {
		t.Fatalf("delete history line = %q, want %q", got, wantLine)
	}
	if !strings.Contains(wantLine, "moved to") {
		t.Fatalf("middle delete must name the swap remap, got %q", wantLine)
	}
	assertViolationsFresh(t, "after delete-middle", s)

	// Delete the last row: no remap to name.
	if err := s.DeleteRow(s.Dirty().NumRows() - 1); err != nil {
		t.Fatal(err)
	}
	if got := s.History[len(s.History)-1]; strings.Contains(got, "moved") {
		t.Fatalf("tail delete must not claim a remap, got %q", got)
	}
	assertViolationsFresh(t, "after delete-last", s)

	if err := s.DeleteRow(99); err == nil {
		t.Fatal("out-of-range delete must error")
	}
	if err := s.DeleteRow(-1); err == nil {
		t.Fatal("negative delete must error")
	}
}

// TestSessionApplyBatch checks batch bracket semantics: one generation
// for the whole run, balanced history markers, up-front validation that
// simulates the row count (so an op can address a row an earlier op in
// the same batch inserts), and rejection without mutation.
func TestSessionApplyBatch(t *testing.T) {
	ll := data.NewLaLiga()
	s, err := NewSession(repair.Passthrough{}, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	assertViolationsFresh(t, "initial", s)
	genBefore := s.Dirty().Generation()
	n := s.Dirty().NumRows()
	histBefore := len(s.History)

	row := append([]table.Value(nil), s.Dirty().RowView(0)...)
	ops := []BatchOp{
		{Kind: BatchSet, Ref: table.CellRef{Row: 2, Col: 1}, Value: table.String("Patched")},
		{Kind: BatchInsert, Vals: row},
		// Addresses the row the insert above just created — valid only
		// because validation simulates the evolving row count.
		{Kind: BatchSet, Ref: table.CellRef{Row: n, Col: 0}, Value: table.String("Renamed")},
		{Kind: BatchDelete, Row: 0},
	}
	if err := s.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if got := s.Dirty().Generation(); got != genBefore+1 {
		t.Fatalf("batch moved generation %d -> %d, want exactly one bump", genBefore, got)
	}
	if got := s.Dirty().Get(0, 0); !got.Equal(table.String("Renamed")) {
		// Row n swapped into index 0 when the delete removed row 0.
		t.Fatalf("batch-inserted row not at swapped index: %v", got)
	}
	if s.History[histBefore] != "batch begin (4 ops)" || s.History[len(s.History)-1] != "batch end" {
		t.Fatalf("batch brackets missing: %v", s.History[histBefore:])
	}
	if got := len(s.History) - histBefore; got != 6 {
		t.Fatalf("batch wrote %d history lines, want 6", got)
	}
	assertViolationsFresh(t, "after batch", s)

	// Invalid batches are rejected whole: no mutation, no history.
	genBefore = s.Dirty().Generation()
	histBefore = len(s.History)
	bad := [][]BatchOp{
		{{Kind: BatchSet, Ref: table.CellRef{Row: 99, Col: 0}, Value: table.Null()}},
		{{Kind: BatchDelete, Row: s.Dirty().NumRows()}},
		{{Kind: BatchInsert, Vals: row[:1]}},
		{{Kind: BatchOpKind("upsert")}},
		// The delete shrinks the simulated count; the set's row is then
		// out of range even though it is in range right now.
		{{Kind: BatchDelete, Row: 0}, {Kind: BatchSet, Ref: table.CellRef{Row: s.Dirty().NumRows() - 1, Col: 0}, Value: table.Null()}},
	}
	for i, ops := range bad {
		if err := s.ApplyBatch(ops); err == nil {
			t.Fatalf("bad batch %d must be rejected", i)
		}
	}
	if s.Dirty().Generation() != genBefore || len(s.History) != histBefore {
		t.Fatal("rejected batches must not mutate the session")
	}
	// Empty batch: a no-op, no markers.
	if err := s.ApplyBatch(nil); err != nil {
		t.Fatal(err)
	}
	if len(s.History) != histBefore || s.Dirty().Generation() != genBefore {
		t.Fatal("empty batch must be a no-op")
	}
}

// TestSessionIngestCSV streams rows into the session under one batch
// bracket and checks schema enforcement plus the partial-ingest contract.
func TestSessionIngestCSV(t *testing.T) {
	tbl := table.MustFromStrings([]string{"A", "B"}, [][]string{{"x", "1"}})
	s, err := NewSession(repair.Passthrough{}, nil, tbl)
	if err != nil {
		t.Fatal(err)
	}
	genBefore := s.Dirty().Generation()
	n, err := s.IngestCSV(strings.NewReader("A,B\ny,2\nz,3\n"))
	if err != nil || n != 2 {
		t.Fatalf("ingest = %d, %v", n, err)
	}
	if s.Dirty().NumRows() != 3 {
		t.Fatalf("rows = %d", s.Dirty().NumRows())
	}
	if got := s.Dirty().Generation(); got != genBefore+1 {
		t.Fatalf("ingest moved generation %d -> %d, want one bump", genBefore, got)
	}
	if got := s.History[len(s.History)-1]; got != "ingest 2 rows (csv)" {
		t.Fatalf("ingest history line = %q", got)
	}
	// Ints parse as ints, not strings.
	if got := s.Dirty().Get(1, 1); got.Kind() != table.KindInt {
		t.Fatalf("ingested cell kind = %d", got.Kind())
	}

	// Header mismatches are rejected before any append.
	for _, hdr := range []string{"A,C\n1,2\n", "A\n1\n", "B,A\n1,2\n"} {
		if _, err := s.IngestCSV(strings.NewReader(hdr)); err == nil {
			t.Fatalf("header %q must be rejected", hdr)
		}
	}
	if s.Dirty().NumRows() != 3 {
		t.Fatal("rejected header appended rows")
	}

	// A malformed record mid-stream keeps the prefix and reports both.
	n, err = s.IngestCSV(strings.NewReader("A,B\nw,4\nbad-row-with,too,many\n"))
	if err == nil {
		t.Fatal("malformed record must error")
	}
	if n != 1 || s.Dirty().NumRows() != 4 {
		t.Fatalf("partial ingest kept %d rows (reported %d)", s.Dirty().NumRows(), n)
	}
	if got := s.History[len(s.History)-1]; got != "ingest 1 rows (csv)" {
		t.Fatalf("partial-ingest history line = %q", got)
	}
}

// TestSnapshotStructuralHistoryRoundTrip: a session whose history holds
// typed structural edits and batch brackets snapshots and restores
// bit-identically — table bytes, history lines, and the violations the
// restored session serves.
func TestSnapshotStructuralHistoryRoundTrip(t *testing.T) {
	ll := data.NewLaLiga()
	s, err := NewSession(repair.Passthrough{}, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	row := append([]table.Value(nil), s.Dirty().RowView(0)...)
	if err := s.InsertRow(row); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteRow(1); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyBatch([]BatchOp{
		{Kind: BatchSet, Ref: table.CellRef{Row: 0, Col: 0}, Value: table.String("batched")},
		{Kind: BatchInsert, Vals: row},
		{Kind: BatchDelete, Row: 2},
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := s.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(sn, func(string) (repair.Algorithm, bool) {
		return repair.Passthrough{}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Dirty().Equal(s.Dirty()) {
		t.Fatal("restored table differs")
	}
	if len(restored.History) != len(s.History) {
		t.Fatalf("history %d vs %d lines", len(restored.History), len(s.History))
	}
	for i := range s.History {
		if restored.History[i] != s.History[i] {
			t.Fatalf("history line %d: %q vs %q", i, restored.History[i], s.History[i])
		}
	}
	got := violationStrings(t, restored)
	want := violationStrings(t, s)
	if len(got) != len(want) {
		t.Fatalf("restored violations %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored violation %d: %s vs %s", i, got[i], want[i])
		}
	}
}

// TestSnapshotTruncatedBatchMarkers: a spool snapshot whose history lost
// its closing batch marker (the truncated-write footprint) degrades to a
// clean restore error — never a session claiming a state no live session
// reached. An orphaned closer is equally rejected.
func TestSnapshotTruncatedBatchMarkers(t *testing.T) {
	ll := data.NewLaLiga()
	s, err := NewSession(repair.Passthrough{}, ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyBatch([]BatchOp{
		{Kind: BatchSet, Ref: table.CellRef{Row: 0, Col: 0}, Value: table.String("batched")},
	}); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	if _, err := RestoreSession(sn, func(string) (repair.Algorithm, bool) {
		return repair.Passthrough{}, true
	}); err != nil {
		t.Fatalf("balanced history must restore: %v", err)
	}

	truncated := *sn
	truncated.History = sn.History[:len(sn.History)-1] // drop "batch end"
	if _, err := RestoreSession(&truncated, func(string) (repair.Algorithm, bool) {
		return repair.Passthrough{}, true
	}); err == nil || !strings.Contains(err.Error(), "batch") {
		t.Fatalf("truncated batch marker must fail restore, got %v", err)
	}

	orphan := *sn
	orphan.History = append([]string{"batch end"}, sn.History...)
	if _, err := RestoreSession(&orphan, func(string) (repair.Algorithm, bool) {
		return repair.Passthrough{}, true
	}); err == nil || !strings.Contains(err.Error(), "batch") {
		t.Fatalf("orphaned batch end must fail restore, got %v", err)
	}
}
