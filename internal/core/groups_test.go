package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/repair"
	"repro/internal/table"
)

func TestRowGroupsShape(t *testing.T) {
	e, ll := newPaperExplainer(t)
	groups := e.RowGroups(ll.CellOfInterest)
	if len(groups) != 6 {
		t.Fatalf("groups = %d", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g.Cells)
		for _, ref := range g.Cells {
			if ref == ll.CellOfInterest {
				t.Fatal("cell of interest must be excluded")
			}
		}
	}
	if total != 35 {
		t.Fatalf("total cells = %d, want 35", total)
	}
	// Row 5's group has one fewer cell (the pinned cell of interest).
	if len(groups[4].Cells) != 5 {
		t.Fatalf("row t5 group = %d cells, want 5", len(groups[4].Cells))
	}
}

func TestColumnGroupsShape(t *testing.T) {
	e, ll := newPaperExplainer(t)
	groups := e.ColumnGroups(ll.CellOfInterest)
	if len(groups) != 6 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[2].Name != "col Country" || len(groups[2].Cells) != 5 {
		t.Fatalf("Country group = %+v", groups[2])
	}
}

func TestExplainRowGroups(t *testing.T) {
	e, ll := newPaperExplainer(t)
	report, err := e.ExplainCellGroups(context.Background(), ll.CellOfInterest, e.RowGroups(ll.CellOfInterest))
	if err != nil {
		t.Fatal(err)
	}
	if report.Kind != "cell-groups" || len(report.Entries) != 6 {
		t.Fatalf("report = %+v", report)
	}
	// Efficiency: row groups partition all players, so values sum to
	// v(full) − v(∅) = 1.
	sum := 0.0
	for _, entry := range report.Entries {
		sum += entry.Shapley
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σ group Shapley = %v, want 1", sum)
	}
	// Row t5 (the dirty row: its League, Team, City feed every pathway)
	// must rank first.
	top, _ := report.Top()
	if top.Name != "row t5" {
		t.Errorf("top group = %s, want row t5\n%s", top.Name, report)
	}
	// Row t4 contributes nothing to the Spain repair (its country is the
	// unrelated typo "Spian").
	r4, _ := report.Find("row t4")
	if math.Abs(r4.Shapley) > 0.05 {
		t.Errorf("row t4 = %v, want ≈ 0", r4.Shapley)
	}
}

func TestExplainColumnGroups(t *testing.T) {
	e, ll := newPaperExplainer(t)
	report, err := e.ExplainCellGroups(context.Background(), ll.CellOfInterest, e.ColumnGroups(ll.CellOfInterest))
	if err != nil {
		t.Fatal(err)
	}
	// Country and League columns carry the C3 pathway; Year and Place are
	// exact dummies.
	for _, name := range []string{"col Year", "col Place"} {
		entry, ok := report.Find(name)
		if !ok || math.Abs(entry.Shapley) > 1e-12 {
			t.Errorf("%s = %v, want 0 (dummy column)", name, entry.Shapley)
		}
	}
	top, _ := report.Top()
	if top.Name != "col Country" && top.Name != "col League" {
		t.Errorf("top group = %s\n%s", top.Name, report)
	}
}

func TestExplainCellGroupsValidation(t *testing.T) {
	e, ll := newPaperExplainer(t)
	if _, err := e.ExplainCellGroups(context.Background(), table.CellRef{Row: 0, Col: 0}, e.RowGroups(table.CellRef{Row: 0, Col: 0})); err == nil {
		t.Error("unrepaired cell must error")
	}
	// Above the exact-enumeration bound the explainer no longer dead-ends:
	// it falls back to permutation sampling over the group walk.
	many := make([]CellGroup, 25)
	for i := range many {
		many[i] = CellGroup{Name: fmt.Sprintf("g%d", i)}
	}
	report, err := e.ExplainCellGroups(context.Background(), ll.CellOfInterest, many)
	if err != nil {
		t.Fatalf("sampled fallback failed: %v", err)
	}
	if len(report.Entries) != 25 {
		t.Fatalf("got %d entries, want 25", len(report.Entries))
	}
	for _, entry := range report.Entries {
		if entry.Samples == 0 {
			t.Fatalf("entry %q has no sample count; expected the sampled path", entry.Name)
		}
	}
}

func TestGroupGamePolicies(t *testing.T) {
	e, ll := newPaperExplainer(t)
	g := e.NewGroupGame(ll.CellOfInterest, table.String("Spain"), ReplaceFromColumn, e.RowGroups(ll.CellOfInterest))
	if _, err := g.Value(context.Background(), make([]bool, 6)); err == nil {
		t.Error("Value under ReplaceFromColumn must error")
	}
	if _, err := g.SampleValue(context.Background(), make([]bool, 6), nil); err == nil {
		t.Error("SampleValue with nil rng must error")
	}
}

func TestExplainConstraintInteractionsPaper(t *testing.T) {
	// The deep structure of Figure 1: C1 and C2 are complements (only the
	// pair opens the City→Country pathway), and each is a substitute of
	// C3 (the League pathway covers the same repair).
	e, ll := newPaperExplainer(t)
	report, err := e.ExplainConstraintInteractions(context.Background(), ll.CellOfInterest)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Pairs) != 6 {
		t.Fatalf("pairs = %d", len(report.Pairs))
	}
	c12, _ := report.Find("C1", "C2")
	if c12.Value <= 0 {
		t.Errorf("I(C1,C2) = %v, want > 0 (complements)", c12.Value)
	}
	c13, _ := report.Find("C1", "C3")
	c23, _ := report.Find("C2", "C3")
	if c13.Value >= 0 || c23.Value >= 0 {
		t.Errorf("I(C1,C3) = %v, I(C2,C3) = %v, want < 0 (substitutes)", c13.Value, c23.Value)
	}
	for _, other := range []string{"C1", "C2", "C3"} {
		p, _ := report.Find(other, "C4")
		if p.Value != 0 {
			t.Errorf("I(%s,C4) = %v, want 0 (dummy)", other, p.Value)
		}
	}
	out := report.String()
	for _, want := range []string{"complements", "substitutes", "I(C1,C2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	if _, ok := report.Find("C1", "C9"); ok {
		t.Error("Find on missing pair")
	}
}

func TestExplainConstraintsBanzhafAgreesOnRanking(t *testing.T) {
	e, ll := newPaperExplainer(t)
	shapR, err := e.ExplainConstraints(context.Background(), ll.CellOfInterest)
	if err != nil {
		t.Fatal(err)
	}
	banzR, err := e.ExplainConstraintsBanzhaf(context.Background(), ll.CellOfInterest)
	if err != nil {
		t.Fatal(err)
	}
	if banzR.Kind != "constraints-banzhaf" {
		t.Errorf("kind = %s", banzR.Kind)
	}
	sTop, _ := shapR.Top()
	bTop, _ := banzR.Top()
	if sTop.Name != bTop.Name {
		t.Errorf("ranking disagrees: Shapley top %s vs Banzhaf top %s", sTop.Name, bTop.Name)
	}
	// Banzhaf of C3 = 6/8 (pivots in 6 of 8 coalitions of the others).
	c3, _ := banzR.Find("C3")
	if math.Abs(c3.Shapley-0.75) > 1e-12 {
		t.Errorf("Banzhaf(C3) = %v, want 0.75", c3.Shapley)
	}
	// Banzhaf does NOT satisfy efficiency: the sum differs from 1 here.
	sum := 0.0
	for _, entry := range banzR.Entries {
		sum += entry.Shapley
	}
	if math.Abs(sum-1) < 1e-9 {
		t.Error("Banzhaf sum coincidentally 1; expected 1.25 on this game")
	}
	if math.Abs(sum-1.25) > 1e-9 {
		t.Errorf("Banzhaf sum = %v, want 1.25", sum)
	}
}

func TestInteractionUnrepairedCell(t *testing.T) {
	e, _ := newPaperExplainer(t)
	if _, err := e.ExplainConstraintInteractions(context.Background(), table.CellRef{Row: 0, Col: 0}); err == nil {
		t.Error("unrepaired cell must error")
	}
	if _, err := e.ExplainConstraintsBanzhaf(context.Background(), table.CellRef{Row: 0, Col: 0}); err == nil {
		t.Error("unrepaired cell must error")
	}
}

func TestGroupExplainAcrossAlgorithms(t *testing.T) {
	// Group explanations are black-box too.
	ll := data.NewLaLiga()
	for _, alg := range repair.All(2) {
		e, err := NewExplainer(alg, ll.DCs, ll.Dirty)
		if err != nil {
			t.Fatal(err)
		}
		_, repaired, err := e.Target(context.Background(), ll.CellOfInterest)
		if err != nil {
			t.Fatal(err)
		}
		if !repaired {
			continue
		}
		report, err := e.ExplainCellGroups(context.Background(), ll.CellOfInterest, e.RowGroups(ll.CellOfInterest))
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if len(report.Entries) != 6 {
			t.Errorf("%s: entries = %d", alg.Name(), len(report.Entries))
		}
	}
}
