package core

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

// TestCellGameSurvivesSessionEdit is the regression test for the
// stale-scratch corruption bug: a CellGame built before a Session.SetCell
// pooled scratch clones and undo values snapshotted at construction, so an
// edit between evaluations silently restored stale values into the scratch
// and corrupted every subsequent estimate. The game must now re-snapshot
// and discard stale pooled clones: its estimates must match a game built
// fresh after the edit, bit for bit.
func TestCellGameSurvivesSessionEdit(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	sess, err := NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	cell := ll.CellOfInterest
	target := table.String("Spain")
	game := sess.Explainer().NewCellGame(cell, target, ReplaceWithNull)

	// Warm the pool (and capture pre-edit baselines so the scratch pool
	// holds clones of the pre-edit table).
	coalition := make([]bool, game.NumPlayers())
	for i := range coalition {
		coalition[i] = i%2 == 0
	}
	if _, err := game.Value(ctx, coalition); err != nil {
		t.Fatal(err)
	}

	// The edit: t6[City] loses its corroborating value, changing which
	// coalitions repair the cell of interest.
	city := sess.Dirty().Schema().MustIndex("City")
	if err := sess.SetCell(table.CellRef{Row: 5, Col: city}, table.String("Sevilla")); err != nil {
		t.Fatal(err)
	}

	fresh := sess.Explainer().NewCellGame(cell, target, ReplaceWithNull)
	// Exact values over a sweep of coalitions, including repeats that force
	// pooled-scratch reuse.
	for n := 0; n < 40; n++ {
		for i := range coalition {
			coalition[i] = (i+n)%3 != 0
		}
		got, err := game.Value(ctx, coalition)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Value(ctx, coalition)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("coalition %d: stale game %v, fresh game %v", n, got, want)
		}
	}

	// Sampled estimates (walk path) must also match bit for bit.
	opts := shapley.Options{Samples: 16, Seed: 5, Workers: 2}
	got, err := shapley.SampleAll(ctx, game, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := shapley.SampleAll(ctx, fresh, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, "post-edit", got, want)
}

// TestCellGameSurvivesSessionEditColumnPolicy covers the stochastic
// replacement policy, whose column statistics are also snapshotted at
// construction and must re-snapshot after an edit.
func TestCellGameSurvivesSessionEditColumnPolicy(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	sess, err := NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	cell := ll.CellOfInterest
	target := table.String("Spain")
	game := sess.Explainer().NewCellGame(cell, target, ReplaceFromColumn)
	opts := shapley.Options{Samples: 12, Seed: 3, Workers: 1}
	if _, err := shapley.SampleAll(ctx, game, opts); err != nil {
		t.Fatal(err)
	}
	country := sess.Dirty().Schema().MustIndex("Country")
	if err := sess.SetCell(table.CellRef{Row: 0, Col: country}, table.String("Espana")); err != nil {
		t.Fatal(err)
	}
	fresh := sess.Explainer().NewCellGame(cell, target, ReplaceFromColumn)
	got, err := shapley.SampleAll(ctx, game, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := shapley.SampleAll(ctx, fresh, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, "column policy post-edit", got, want)
}

// TestGroupGameSurvivesSessionEdit is the group-game half of the
// regression: pooled group scratches cloned before an edit must be
// discarded, not reused.
func TestGroupGameSurvivesSessionEdit(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	sess, err := NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	cell := ll.CellOfInterest
	target := table.String("Spain")
	exp := sess.Explainer()
	game := exp.NewGroupGame(cell, target, ReplaceWithNull, exp.RowGroups(cell))
	coalition := make([]bool, game.NumPlayers())
	for i := range coalition {
		coalition[i] = true
	}
	if _, err := game.Value(ctx, coalition); err != nil {
		t.Fatal(err)
	}
	city := sess.Dirty().Schema().MustIndex("City")
	if err := sess.SetCell(table.CellRef{Row: 5, Col: city}, table.String("Sevilla")); err != nil {
		t.Fatal(err)
	}
	freshExp := sess.Explainer()
	fresh := freshExp.NewGroupGame(cell, target, ReplaceWithNull, freshExp.RowGroups(cell))
	for n := 0; n < 1<<len(coalition); n += 7 {
		for i := range coalition {
			coalition[i] = n&(1<<i) != 0
		}
		got, err := game.Value(ctx, coalition)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Value(ctx, coalition)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("coalition %b: stale game %v, fresh game %v", n, got, want)
		}
	}
}

// TestRestrictPlayersAfterEditRefreshesStats covers the narrower stale-
// snapshot window: an edit landing between NewCellGame and RestrictPlayers
// stamps the generation via RestrictPlayers, so sync alone would never
// refresh the column statistics — RestrictPlayers must do it. Under
// ReplaceFromColumn the stale distribution would silently bias every
// masked draw.
func TestRestrictPlayersAfterEditRefreshesStats(t *testing.T) {
	ctx := context.Background()
	ll := data.NewLaLiga()
	sess, err := NewSession(repair.NewAlgorithm1(), ll.DCs, ll.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	cell := ll.CellOfInterest
	target := table.String("Spain")
	exp := sess.Explainer()
	game := exp.NewCellGame(cell, target, ReplaceFromColumn)
	// The edit shifts the Country column's distribution decisively.
	country := sess.Dirty().Schema().MustIndex("Country")
	for row := 0; row < 3; row++ {
		if err := sess.SetCell(table.CellRef{Row: row, Col: country}, table.String("Espana")); err != nil {
			t.Fatal(err)
		}
	}
	game.RestrictPlayers(exp.RelevantCells(cell))
	fresh := sess.Explainer().NewCellGame(cell, target, ReplaceFromColumn)
	fresh.RestrictPlayers(exp.RelevantCells(cell))
	opts := shapley.Options{Samples: 16, Seed: 9, Workers: 1}
	got, err := shapley.SampleAll(ctx, game, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := shapley.SampleAll(ctx, fresh, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, "restrict after edit", got, want)
}
