package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/table"
)

func TestExplainCellsTopK(t *testing.T) {
	e, ll := newPaperExplainer(t)
	report, separated, err := e.ExplainCellsTopK(context.Background(), ll.CellOfInterest, 3, CellExplainOptions{
		Samples: 800,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Entries) != 3 {
		t.Fatalf("entries = %d", len(report.Entries))
	}
	top, _ := report.Top()
	if top.Name != "t5[League]" {
		t.Errorf("top = %s, want t5[League]\n%s", top.Name, report)
	}
	if report.Kind != "cells-topk" {
		t.Errorf("kind = %s", report.Kind)
	}
	_ = separated // separation depends on budget; correctness asserted above
}

func TestExplainCellsTopKAgreesWithUniform(t *testing.T) {
	e, ll := newPaperExplainer(t)
	uniform, err := e.ExplainCells(context.Background(), ll.CellOfInterest, CellExplainOptions{Samples: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	topk, _, err := e.ExplainCellsTopK(context.Background(), ll.CellOfInterest, 1, CellExplainOptions{Samples: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	uTop, _ := uniform.Top()
	kTop, _ := topk.Top()
	if uTop.Name != kTop.Name {
		t.Errorf("uniform top %s vs adaptive top %s", uTop.Name, kTop.Name)
	}
}

func TestExplainCellsTopKValidation(t *testing.T) {
	e, ll := newPaperExplainer(t)
	if _, _, err := e.ExplainCellsTopK(context.Background(), table.CellRef{Row: 0, Col: 0}, 3, CellExplainOptions{}); err == nil {
		t.Error("unrepaired cell must error")
	}
	if _, _, err := e.ExplainCellsTopK(context.Background(), ll.CellOfInterest, 0, CellExplainOptions{}); err == nil {
		t.Error("k=0 must error")
	}
}

func TestExplainTowardActualValueMatchesExplainConstraints(t *testing.T) {
	e, ll := newPaperExplainer(t)
	toward, err := e.ExplainToward(context.Background(), ll.CellOfInterest, table.String("Spain"))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.ExplainConstraints(context.Background(), ll.CellOfInterest)
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range plain.Entries {
		got, ok := toward.Find(entry.Name)
		if !ok || math.Abs(got.Shapley-entry.Shapley) > 1e-12 {
			t.Errorf("%s: toward %v vs plain %v", entry.Name, got.Shapley, entry.Shapley)
		}
	}
}

func TestExplainTowardWhyNot(t *testing.T) {
	// Why is t5[Country] never repaired to "Portugal"? Because no subset
	// of the constraints can produce it: all Shapley values are zero.
	e, ll := newPaperExplainer(t)
	report, err := e.ExplainToward(context.Background(), ll.CellOfInterest, table.String("Portugal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range report.Entries {
		if entry.Shapley != 0 {
			t.Errorf("Shap(%s) toward Portugal = %v, want 0", entry.Name, entry.Shapley)
		}
	}
	if report.Kind != "constraints-toward" || report.Target != "Portugal" {
		t.Errorf("report metadata: %+v", report)
	}
}

func TestExplainTowardKeepingDirtyValue(t *testing.T) {
	// Toward the dirty value "España": achieved exactly when the repair
	// does NOT happen, so values mirror the Spain game with opposite sign
	// structure (C3's presence destroys it).
	e, ll := newPaperExplainer(t)
	report, err := e.ExplainToward(context.Background(), ll.CellOfInterest, table.String("España"))
	if err != nil {
		t.Fatal(err)
	}
	c3, _ := report.Find("C3")
	if c3.Shapley >= 0 {
		t.Errorf("Shap(C3) toward España = %v, want negative (C3 destroys it)", c3.Shapley)
	}
}

func TestExplainTowardValidation(t *testing.T) {
	e, ll := newPaperExplainer(t)
	if _, err := e.ExplainToward(context.Background(), ll.CellOfInterest, table.Null()); err == nil {
		t.Error("null desired value must error")
	}
}

func TestAchievable(t *testing.T) {
	e, ll := newPaperExplainer(t)
	ctx := context.Background()

	ok, witness, err := e.Achievable(ctx, ll.CellOfInterest, table.String("Spain"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Spain must be achievable")
	}
	// The minimal witness is {C3} (size 1 beats {C1,C2}).
	if len(witness) != 1 || witness[0] != "C3" {
		t.Errorf("witness = %v, want [C3]", witness)
	}

	ok, witness, err = e.Achievable(ctx, ll.CellOfInterest, table.String("Portugal"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("Portugal must be unachievable, witness %v", witness)
	}

	// The dirty value is achievable with the empty set (no constraints →
	// no repair).
	ok, witness, err = e.Achievable(ctx, ll.CellOfInterest, table.String("España"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(witness) != 0 {
		t.Errorf("España: ok=%v witness=%v, want achievable by ∅", ok, witness)
	}

	if _, _, err := e.Achievable(ctx, ll.CellOfInterest, table.Null()); err == nil {
		t.Error("null desired must error")
	}
}

func TestSortByPopcount(t *testing.T) {
	masks := []int{7, 0, 5, 1, 6, 2, 3, 4}
	sortByPopcount(masks)
	counts := func(m int) int {
		c := 0
		for ; m != 0; m &= m - 1 {
			c++
		}
		return c
	}
	for i := 1; i < len(masks); i++ {
		if counts(masks[i]) < counts(masks[i-1]) {
			t.Fatalf("not sorted by popcount: %v", masks)
		}
	}
	if masks[0] != 0 {
		t.Error("empty mask first")
	}
}
