// Package dcdiscover mines denial constraints from data, in the spirit of
// FastDCs (Chu, Ilyas, Papotti, PVLDB 2013) — the system the paper cites
// as the source of its constraint sets. The miner targets the FD-shaped
// fragment ¬(t1.A = t2.A ∧ t1.B ≠ t2.B) that dominates cleaning practice:
// for every ordered attribute pair (A, B) it measures how reliably
// agreement on A implies agreement on B over all tuple pairs, and emits a
// constraint when the confidence clears a threshold. Mining tolerates
// dirty inputs: a handful of violating pairs lowers confidence without
// erasing the dependency.
package dcdiscover

import (
	"fmt"
	"sort"

	"repro/internal/dc"
	"repro/internal/table"
)

// Options configures Discover.
type Options struct {
	// MinConfidence is the fraction of A-agreeing tuple pairs that must
	// also agree on B (default 0.9). 1.0 mines only exact dependencies.
	MinConfidence float64
	// MinSupport is the minimum number of A-agreeing tuple pairs needed
	// before a dependency is considered at all (default 2); it suppresses
	// vacuous FDs from near-key attributes.
	MinSupport int
	// MaxConstraints caps the output (default unlimited).
	MaxConstraints int
}

func (o Options) withDefaults() Options {
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.9
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 2
	}
	return o
}

// Candidate is one mined dependency A → B with its evidence counts.
type Candidate struct {
	// LHS and RHS are the attribute names of the dependency LHS → RHS.
	LHS, RHS string
	// Support is the number of unordered tuple pairs agreeing on LHS.
	Support int
	// Holds is how many of those pairs also agree on RHS.
	Holds int
	// Confidence is Holds/Support.
	Confidence float64
	// Constraint is the corresponding denial constraint.
	Constraint *dc.Constraint
}

// String renders the candidate with its evidence.
func (c Candidate) String() string {
	return fmt.Sprintf("%s -> %s (confidence %.3f, support %d)", c.LHS, c.RHS, c.Confidence, c.Support)
}

// Discover mines FD-shaped denial constraints from the table. Candidates
// are returned in descending confidence, ties by descending support then
// attribute order; constraint IDs are assigned D1, D2, ...
func Discover(t *table.Table, opts Options) []Candidate {
	opts = opts.withDefaults()
	m := t.NumCols()
	names := t.Schema().Names()

	// Bucket rows by each column's value once: pairs agreeing on column a
	// are exactly the intra-bucket pairs.
	buckets := make([]map[string][]int, m)
	for a := 0; a < m; a++ {
		buckets[a] = make(map[string][]int)
		for i := 0; i < t.NumRows(); i++ {
			v := t.Get(i, a)
			if v.IsNull() {
				continue
			}
			buckets[a][v.Key()] = append(buckets[a][v.Key()], i)
		}
	}

	var out []Candidate
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if a == b {
				continue
			}
			support, holds := 0, 0
			for _, rows := range buckets[a] {
				for x := 0; x < len(rows); x++ {
					for y := x + 1; y < len(rows); y++ {
						va, vb := t.Get(rows[x], b), t.Get(rows[y], b)
						if va.IsNull() || vb.IsNull() {
							continue
						}
						support++
						if va.Equal(vb) {
							holds++
						}
					}
				}
			}
			if support < opts.MinSupport {
				continue
			}
			conf := float64(holds) / float64(support)
			if conf < opts.MinConfidence {
				continue
			}
			out = append(out, Candidate{
				LHS: names[a], RHS: names[b],
				Support: support, Holds: holds, Confidence: conf,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if out[i].LHS != out[j].LHS {
			return out[i].LHS < out[j].LHS
		}
		return out[i].RHS < out[j].RHS
	})
	if opts.MaxConstraints > 0 && len(out) > opts.MaxConstraints {
		out = out[:opts.MaxConstraints]
	}
	for i := range out {
		out[i].Constraint = &dc.Constraint{
			ID: fmt.Sprintf("D%d", i+1),
			Preds: []dc.Predicate{
				{Left: dc.AttrOperand(0, out[i].LHS), Op: dc.OpEq, Right: dc.AttrOperand(1, out[i].LHS)},
				{Left: dc.AttrOperand(0, out[i].RHS), Op: dc.OpNeq, Right: dc.AttrOperand(1, out[i].RHS)},
			},
			Comment: fmt.Sprintf("mined: %s -> %s (conf %.3f, support %d)", out[i].LHS, out[i].RHS, out[i].Confidence, out[i].Support),
		}
	}
	return out
}

// Constraints extracts just the constraint list from Discover's output.
func Constraints(cands []Candidate) []*dc.Constraint {
	out := make([]*dc.Constraint, len(cands))
	for i, c := range cands {
		out[i] = c.Constraint
	}
	return out
}
