package dcdiscover

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/dc"
	"repro/internal/table"
)

func findCand(cands []Candidate, lhs, rhs string) (Candidate, bool) {
	for _, c := range cands {
		if c.LHS == lhs && c.RHS == rhs {
			return c, true
		}
	}
	return Candidate{}, false
}

func TestDiscoverExactFDs(t *testing.T) {
	clean := data.GenerateSoccer(data.SoccerConfig{Leagues: 3, TeamsPerLeague: 6, Years: 2, Seed: 1})
	cands := Discover(clean, Options{MinConfidence: 1.0})
	// Team → City, Team → Country, Team → League, City → Country,
	// League → Country all hold exactly on clean data.
	for _, want := range [][2]string{
		{"Team", "City"}, {"Team", "Country"}, {"Team", "League"},
		{"City", "Country"}, {"League", "Country"},
	} {
		c, ok := findCand(cands, want[0], want[1])
		if !ok {
			t.Errorf("missing dependency %s -> %s", want[0], want[1])
			continue
		}
		if c.Confidence != 1.0 {
			t.Errorf("%s -> %s confidence = %v", want[0], want[1], c.Confidence)
		}
	}
	// Country → Place must not be mined: a country's teams occupy all
	// places.
	if _, ok := findCand(cands, "Country", "Place"); ok {
		t.Error("Country -> Place must not be mined")
	}
}

func TestDiscoverToleratesDirt(t *testing.T) {
	clean := data.GenerateSoccer(data.SoccerConfig{Leagues: 2, TeamsPerLeague: 10, Years: 2, Seed: 2})
	dirty, _, err := data.Inject(clean, data.InjectSpec{Rate: 0.03, Columns: []string{"Country"}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cands := Discover(dirty, Options{MinConfidence: 0.8})
	if _, ok := findCand(cands, "League", "Country"); !ok {
		t.Error("League -> Country must survive 3% noise at confidence 0.8")
	}
	exact := Discover(dirty, Options{MinConfidence: 1.0})
	if _, ok := findCand(exact, "League", "Country"); ok {
		t.Error("League -> Country must fail exact mining on dirty data")
	}
}

func TestDiscoverMinedConstraintsWork(t *testing.T) {
	// Mined constraints must parse/validate and detect the injected dirt.
	clean := data.GenerateSoccer(data.SoccerConfig{Leagues: 2, TeamsPerLeague: 8, Seed: 4})
	dirty, injections, err := data.Inject(clean, data.InjectSpec{Rate: 0.05, Columns: []string{"Country"}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(injections) == 0 {
		t.Skip("no injections landed")
	}
	cands := Discover(dirty, Options{MinConfidence: 0.8})
	cs := Constraints(cands)
	if err := dc.ValidateSet(cs, dirty.Schema()); err != nil {
		t.Fatal(err)
	}
	ok, err := dc.Consistent(cs, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("mined constraints should flag the injected errors")
	}
	ok, err = dc.Consistent(cs, clean)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("mined constraints must hold on the clean table")
	}
}

func TestDiscoverSupportThreshold(t *testing.T) {
	// Phone is a key: no two rows agree on it, so Phone -> * has zero
	// support and must not be mined.
	tbl := data.GenerateHospital(data.HospitalConfig{Providers: 20, Zips: 4, Seed: 6})
	cands := Discover(tbl, Options{MinConfidence: 0.5, MinSupport: 2})
	if _, ok := findCand(cands, "Phone", "City"); ok {
		t.Error("key attribute must not generate dependencies (support 0)")
	}
	if _, ok := findCand(cands, "Zip", "City"); !ok {
		t.Error("Zip -> City must be mined")
	}
}

func TestDiscoverMaxConstraints(t *testing.T) {
	tbl := data.GenerateSoccer(data.SoccerConfig{Seed: 7})
	cands := Discover(tbl, Options{MinConfidence: 0.9, MaxConstraints: 3})
	if len(cands) != 3 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for i, c := range cands {
		if c.Constraint == nil || c.Constraint.ID != "D"+string(rune('1'+i)) {
			t.Errorf("candidate %d constraint = %v", i, c.Constraint)
		}
	}
}

func TestDiscoverOrderingDeterministic(t *testing.T) {
	tbl := data.GenerateSoccer(data.SoccerConfig{Seed: 8})
	a := Discover(tbl, Options{})
	b := Discover(tbl, Options{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic candidate count")
	}
	for i := range a {
		if a[i].LHS != b[i].LHS || a[i].RHS != b[i].RHS {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Confidence > a[i-1].Confidence {
			t.Fatal("not sorted by confidence")
		}
	}
}

func TestDiscoverNullsIgnored(t *testing.T) {
	tbl := table.MustFromStrings([]string{"A", "B"}, [][]string{
		{"x", "1"}, {"x", "1"}, {"x", ""}, {"", "2"},
	})
	cands := Discover(tbl, Options{MinConfidence: 1.0, MinSupport: 1})
	c, ok := findCand(cands, "A", "B")
	if !ok {
		t.Fatal("A -> B must be mined (null pairs excluded)")
	}
	if c.Support != 1 || c.Holds != 1 {
		t.Fatalf("support/holds = %d/%d, want 1/1", c.Support, c.Holds)
	}
}

func TestDiscoverEmptyAndTinyTables(t *testing.T) {
	empty := table.New(table.MustSchema(table.Column{Name: "A"}, table.Column{Name: "B"}))
	if cands := Discover(empty, Options{}); len(cands) != 0 {
		t.Error("empty table must mine nothing")
	}
	one := table.MustFromStrings([]string{"A", "B"}, [][]string{{"x", "1"}})
	if cands := Discover(one, Options{}); len(cands) != 0 {
		t.Error("single-row table must mine nothing")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{LHS: "Zip", RHS: "City", Support: 10, Holds: 9, Confidence: 0.9}
	if !strings.Contains(c.String(), "Zip -> City") {
		t.Errorf("String = %q", c.String())
	}
}

func TestDiscoverOnLaLigaFindsPaperDCs(t *testing.T) {
	// Mining the paper's own (mostly clean) 6-row table at moderate
	// confidence must recover the FD cores of C1–C3.
	ll := data.NewLaLiga()
	cands := Discover(ll.Clean, Options{MinConfidence: 1.0, MinSupport: 1})
	for _, want := range [][2]string{{"Team", "City"}, {"City", "Country"}, {"League", "Country"}} {
		if _, ok := findCand(cands, want[0], want[1]); !ok {
			t.Errorf("missing %s -> %s on the clean La Liga table", want[0], want[1])
		}
	}
}
