package shapley

import (
	"context"
	"math/rand"
)

// IncrementalGame is a StochasticGame that can evaluate coalition *prefixes*
// incrementally. Permutation sampling only ever grows a coalition by one
// player per step, so a game that maintains its evaluation state in place
// (e.g. a scratch table with masked cells) can accept a single-player delta
// instead of re-applying the full membership mask on every evaluation.
// SampleAll, SamplePlayer and SampleTopK detect this interface and switch to
// the walk protocol below; the estimates are bit-identical to the generic
// path for any conforming implementation (see the equivalence contract on
// CoalitionWalk).
type IncrementalGame interface {
	StochasticGame
	// NewWalk returns a fresh walk handle. Handles are confined to a single
	// goroutine; the sampler allocates one per worker. Callers must Close
	// the walk when done so pooled resources are returned.
	NewWalk() CoalitionWalk
}

// CoalitionWalk is the incremental-evaluation protocol: Reset to the empty
// coalition, Include players one at a time, and Value the current prefix.
//
// Equivalence contract: for any sequence of Reset/Include calls producing
// membership set S, Value(ctx, rng) must return exactly what
// SampleValue(ctx, mask(S), rng) would return, consuming rng identically.
// This is what makes the sampler's fast path produce bit-identical
// estimates under a fixed seed.
type CoalitionWalk interface {
	// Reset empties the coalition, starting a new permutation walk.
	Reset()
	// Include adds player p to the coalition. Adding an already-included
	// player is a no-op.
	Include(p int)
	// Value evaluates one realization of the characteristic function on the
	// current coalition, drawing any randomness from rng.
	Value(ctx context.Context, rng *rand.Rand) (float64, error)
	// Close releases the walk's resources (scratch tables back to pools).
	Close()
}

// DeltaWalk is a CoalitionWalk that can also *remove* players. Samplers
// that draw one marginal per permutation (SamplePlayer, TopK) then morph
// the walk from one sample's coalition straight into the next — toggling
// only the players whose membership changed — instead of rebuilding every
// prefix from the empty coalition, which re-walks every player (for group
// games, every group) per sample.
//
// Equivalence contract: for any sequence of Reset/Include/Exclude calls
// producing membership set S, Value(ctx, rng) must return exactly what
// SampleValue(ctx, mask(S), rng) would, consuming rng identically — the
// path taken to S must be unobservable.
type DeltaWalk interface {
	CoalitionWalk
	// Exclude removes player p from the coalition. Removing an absent
	// player is a no-op.
	Exclude(p int)
}

// walkOrNil returns a CoalitionWalk when g supports incremental prefix
// evaluation, nil otherwise.
func walkOrNil(g StochasticGame) CoalitionWalk {
	if ig, ok := g.(IncrementalGame); ok {
		return ig.NewWalk()
	}
	return nil
}

// walkMorph drives a DeltaWalk coalition-to-coalition: it mirrors the
// walk's membership and, per marginal, flips only the players that differ
// between the previous sample's final coalition and the next sample's
// prefix. Confined to one goroutine, like the walk it wraps.
type walkMorph struct {
	walk DeltaWalk
	// cur mirrors the walk's current membership; valid only after started.
	cur     []bool
	want    []bool
	started bool
}

func newWalkMorph(w DeltaWalk, players int) *walkMorph {
	return &walkMorph{walk: w, cur: make([]bool, players), want: make([]bool, players)}
}

// invalidate forgets the mirrored membership (the walk was driven directly
// via Reset/Include); the next marginal re-establishes it with a Reset.
// Nil-safe so callers can hold a nil morph for plain walks.
func (m *walkMorph) invalidate() {
	if m != nil {
		m.started = false
	}
}

// marginal samples one marginal contribution for player under perm, exactly
// as walkMarginal does, but reaching each coalition by the membership diff.
//
//lint:hotpath
func (m *walkMorph) marginal(ctx context.Context, perm []int, player int, rng *rand.Rand) (float64, error) {
	want := m.want
	for i := range want {
		want[i] = false
	}
	for _, p := range perm {
		if p == player {
			break
		}
		want[p] = true
	}
	if !m.started {
		m.walk.Reset()
		for i := range m.cur {
			m.cur[i] = false
		}
		m.started = true
	}
	for p := range want {
		switch {
		case want[p] && !m.cur[p]:
			m.walk.Include(p)
		case !want[p] && m.cur[p]:
			m.walk.Exclude(p)
		}
		m.cur[p] = want[p]
	}
	without, err := m.walk.Value(ctx, rng)
	if err != nil {
		return 0, err
	}
	m.walk.Include(player)
	m.cur[player] = true
	with, err := m.walk.Value(ctx, rng)
	if err != nil {
		return 0, err
	}
	return with - without, nil
}

// walkMarginal samples one marginal contribution for player under perm via
// the walk protocol: build the preceding-players prefix, evaluate without
// and with the player, return the difference. Shared by SamplePlayer and
// SampleTopK so the walk sequence (and its RNG consumption) cannot diverge
// between them.
//
//lint:hotpath
func walkMarginal(ctx context.Context, walk CoalitionWalk, perm []int, player int, rng *rand.Rand) (float64, error) {
	walk.Reset()
	for _, p := range perm {
		if p == player {
			break
		}
		walk.Include(p)
	}
	without, err := walk.Value(ctx, rng)
	if err != nil {
		return 0, err
	}
	walk.Include(player)
	with, err := walk.Value(ctx, rng)
	if err != nil {
		return 0, err
	}
	return with - without, nil
}
