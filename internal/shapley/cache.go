package shapley

import (
	"context"
	"sync"
)

// cacheShards is the lock-striping factor. Exact constraint-game
// enumeration fans evaluations across workers; a single mutex serializes
// them, while 64 shards keep contention negligible for any realistic
// worker count. Must be a power of two.
const cacheShards = 64

// Cached memoizes a deterministic game's coalition values. Exact Shapley
// computation revisits coalitions (ExactOne for several players of the same
// game shares almost all of them), and permutation sampling of games with
// few players revisits the small coalition space constantly; caching turns
// those repeats into map lookups. Safe for concurrent use.
//
// Coalitions of games with at most 64 players are keyed by a packed uint64
// bitmask (no allocation on lookup); wider games fall back to a packed byte
// string. Entries are spread over 64 lock shards so concurrent enumeration
// does not serialize on one mutex.
//
// Only meaningful for deterministic games — memoizing a stochastic game
// would freeze one realization per coalition and bias the estimate toward
// it (it stays an unbiased estimate of *some* fixed game, but no longer of
// the expected game).
type Cached struct {
	// G is the underlying game.
	G Game

	wide   bool // more than 64 players: string keys instead of uint64
	shards [cacheShards]cacheShard
}

// cacheShard is one lock stripe. The padding keeps adjacent shards off the
// same cache line so uncontended locks don't false-share.
type cacheShard struct {
	mu     sync.Mutex
	packed map[uint64]float64
	byStr  map[string]float64
	hits   int
	misses int
	_      [24]byte
}

// NewCached wraps g with a coalition-value cache.
func NewCached(g Game) *Cached {
	c := &Cached{G: g, wide: g.NumPlayers() > 64}
	for i := range c.shards {
		if c.wide {
			c.shards[i].byStr = make(map[string]float64)
		} else {
			c.shards[i].packed = make(map[uint64]float64)
		}
	}
	return c
}

// NumPlayers implements Game.
func (c *Cached) NumPlayers() int { return c.G.NumPlayers() }

// Value implements Game, consulting the cache first.
func (c *Cached) Value(ctx context.Context, coalition []bool) (float64, error) {
	if c.wide {
		return c.valueWide(ctx, coalition)
	}
	key := packCoalition(coalition)
	s := &c.shards[mix64(key)&(cacheShards-1)]
	s.mu.Lock()
	if v, ok := s.packed[key]; ok {
		s.hits++
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()

	v, err := c.G.Value(ctx, coalition)
	if err != nil {
		return 0, err
	}

	s.mu.Lock()
	s.misses++
	s.packed[key] = v
	s.mu.Unlock()
	return v, nil
}

func (c *Cached) valueWide(ctx context.Context, coalition []bool) (float64, error) {
	key := coalitionKey(coalition)
	s := &c.shards[mixString(key)&(cacheShards-1)]
	s.mu.Lock()
	if v, ok := s.byStr[key]; ok {
		s.hits++
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()

	v, err := c.G.Value(ctx, coalition)
	if err != nil {
		return 0, err
	}

	s.mu.Lock()
	s.misses++
	s.byStr[key] = v
	s.mu.Unlock()
	return v, nil
}

// Stats returns cache hits and misses so far, summed over all shards.
func (c *Cached) Stats() (hits, misses int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// packCoalition folds a ≤64-player membership slice into a uint64 bitmask.
func packCoalition(coalition []bool) uint64 {
	var key uint64
	for i, in := range coalition {
		if in {
			key |= 1 << uint(i)
		}
	}
	return key
}

// mix64 is the SplitMix64 finalizer: a cheap bijective scrambler so shard
// selection sees all key bits (low bits alone would put the small
// coalitions of an enumeration in a handful of shards).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// mixString is FNV-1a over the packed key bytes, for the >64-player
// fallback.
func mixString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// coalitionKey packs the membership bitmap into a compact string key, for
// games too wide for a single uint64.
func coalitionKey(coalition []bool) string {
	buf := make([]byte, (len(coalition)+7)/8)
	for i, in := range coalition {
		if in {
			buf[i/8] |= 1 << uint(i%8)
		}
	}
	return string(buf)
}
