package shapley

import (
	"context"
	"sync"
)

// Cached memoizes a deterministic game's coalition values. Exact Shapley
// computation revisits coalitions (ExactOne for several players of the same
// game shares almost all of them), and permutation sampling of games with
// few players revisits the small coalition space constantly; caching turns
// those repeats into map lookups. Safe for concurrent use.
//
// Only meaningful for deterministic games — memoizing a stochastic game
// would freeze one realization per coalition and bias the estimate toward
// it (it stays an unbiased estimate of *some* fixed game, but no longer of
// the expected game).
type Cached struct {
	// G is the underlying game.
	G Game

	mu     sync.Mutex
	values map[string]float64
	hits   int
	misses int
}

// NewCached wraps g with a coalition-value cache.
func NewCached(g Game) *Cached {
	return &Cached{G: g, values: make(map[string]float64)}
}

// NumPlayers implements Game.
func (c *Cached) NumPlayers() int { return c.G.NumPlayers() }

// Value implements Game, consulting the cache first.
func (c *Cached) Value(ctx context.Context, coalition []bool) (float64, error) {
	key := coalitionKey(coalition)
	c.mu.Lock()
	if v, ok := c.values[key]; ok {
		c.hits++
		c.mu.Unlock()
		return v, nil
	}
	c.mu.Unlock()

	v, err := c.G.Value(ctx, coalition)
	if err != nil {
		return 0, err
	}

	c.mu.Lock()
	c.misses++
	c.values[key] = v
	c.mu.Unlock()
	return v, nil
}

// Stats returns cache hits and misses so far.
func (c *Cached) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// coalitionKey packs the membership bitmap into a compact string key.
func coalitionKey(coalition []bool) string {
	buf := make([]byte, (len(coalition)+7)/8)
	for i, in := range coalition {
		if in {
			buf[i/8] |= 1 << uint(i%8)
		}
	}
	return string(buf)
}
