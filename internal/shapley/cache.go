package shapley

import (
	"context"
	"slices"
	"sync"
)

// cacheShards is the lock-striping factor. Exact constraint-game
// enumeration fans evaluations across workers; a single mutex serializes
// them, while 64 shards keep contention negligible for any realistic
// worker count. Must be a power of two.
const cacheShards = 64

// Cached memoizes a deterministic game's coalition values. Exact Shapley
// computation revisits coalitions (ExactOne for several players of the same
// game shares almost all of them), and permutation sampling of games with
// few players revisits the small coalition space constantly; caching turns
// those repeats into map lookups. Safe for concurrent use.
//
// Coalitions of games with at most 64 players are keyed by a packed uint64
// bitmask (no allocation on lookup); wider games are keyed by the packed
// []uint64 word form — hashed into a bucket, disambiguated by stored key
// words — packed into a shard-local scratch buffer so lookups allocate
// nothing either. Entries are spread over 64 lock shards so concurrent
// enumeration does not serialize on one mutex.
//
// Only meaningful for deterministic games — memoizing a stochastic game
// would freeze one realization per coalition and bias the estimate toward
// it (it stays an unbiased estimate of *some* fixed game, but no longer of
// the expected game).
type Cached struct {
	// G is the underlying game.
	G Game

	wide   bool // more than 64 players: packed-word keys instead of one uint64
	shards [cacheShards]cacheShard
}

// cacheShard is one lock stripe. The padding keeps adjacent shards off the
// same cache line so uncontended locks don't false-share.
type cacheShard struct {
	mu     sync.Mutex
	packed map[uint64]float64
	// wide buckets entries by the hash of their packed words; the stored
	// words disambiguate hash collisions exactly.
	wide map[uint64][]wideEntry
	// wbuf is the shard-local packing scratch (guarded by mu), so wide
	// lookups stay allocation-free.
	wbuf   []uint64
	hits   int
	misses int
	_      [24]byte
}

// wideEntry is one >64-player cache entry: the packed membership words and
// the memoized value.
type wideEntry struct {
	words []uint64
	v     float64
}

// NewCached wraps g with a coalition-value cache.
func NewCached(g Game) *Cached {
	c := &Cached{G: g, wide: g.NumPlayers() > 64}
	for i := range c.shards {
		if c.wide {
			c.shards[i].wide = make(map[uint64][]wideEntry)
		} else {
			c.shards[i].packed = make(map[uint64]float64)
		}
	}
	return c
}

// NumPlayers implements Game.
func (c *Cached) NumPlayers() int { return c.G.NumPlayers() }

// Value implements Game, consulting the cache first.
//
//lint:hotpath
func (c *Cached) Value(ctx context.Context, coalition []bool) (float64, error) {
	if c.wide {
		return c.valueWide(ctx, coalition)
	}
	key := packCoalition(coalition)
	s := &c.shards[mix64(key)&(cacheShards-1)]
	s.mu.Lock()
	if v, ok := s.packed[key]; ok {
		s.hits++
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()

	v, err := c.G.Value(ctx, coalition)
	if err != nil {
		return 0, err
	}

	s.mu.Lock()
	s.misses++
	s.packed[key] = v
	s.mu.Unlock()
	return v, nil
}

func (c *Cached) valueWide(ctx context.Context, coalition []bool) (float64, error) {
	h := HashCoalition(coalition)
	s := &c.shards[h&(cacheShards-1)]
	s.mu.Lock()
	s.wbuf = AppendPacked(s.wbuf[:0], coalition)
	if v, ok := findWide(s.wide[h], s.wbuf); ok {
		s.hits++
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()

	v, err := c.G.Value(ctx, coalition)
	if err != nil {
		return 0, err
	}

	s.mu.Lock()
	s.misses++
	// Re-pack: the scratch may have been reused by a concurrent lookup
	// while the lock was dropped for the evaluation.
	s.wbuf = AppendPacked(s.wbuf[:0], coalition)
	if _, ok := findWide(s.wide[h], s.wbuf); !ok {
		s.wide[h] = append(s.wide[h], wideEntry{words: slices.Clone(s.wbuf), v: v})
	}
	s.mu.Unlock()
	return v, nil
}

// findWide scans one hash bucket for an exact packed-word match.
func findWide(bucket []wideEntry, words []uint64) (float64, bool) {
	for i := range bucket {
		if slices.Equal(bucket[i].words, words) {
			return bucket[i].v, true
		}
	}
	return 0, false
}

// Stats returns cache hits and misses so far, summed over all shards.
func (c *Cached) Stats() (hits, misses int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// packCoalition folds a ≤64-player membership slice into a uint64 bitmask.
func packCoalition(coalition []bool) uint64 {
	var key uint64
	for i, in := range coalition {
		if in {
			key |= 1 << uint(i)
		}
	}
	return key
}

// mix64 is the SplitMix64 finalizer: a cheap bijective scrambler so shard
// selection sees all key bits (low bits alone would put the small
// coalitions of an enumeration in a handful of shards).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// AppendPacked appends the coalition's packed 64-bit membership words to
// dst and returns the extended slice: player i is bit i%64 of word i/64.
// It is the allocation-free wide-coalition cache key, shared with the
// session-scoped coalition cache in internal/exec.
//
//lint:hotpath
func AppendPacked(dst []uint64, coalition []bool) []uint64 {
	var word uint64
	shift := uint(0)
	for _, in := range coalition {
		if in {
			word |= 1 << shift
		}
		shift++
		if shift == 64 {
			dst = append(dst, word)
			word, shift = 0, 0
		}
	}
	if shift > 0 {
		dst = append(dst, word)
	}
	return dst
}

// HashPacked hashes pre-packed membership words with exactly the
// function HashCoalition applies to a live coalition: HashPacked(
// AppendPacked(nil, c)) == HashCoalition(c) for every coalition c. It
// serves consumers (the exec cache transaction) that carry coalitions in
// packed form across a staging boundary.
//
//lint:hotpath
func HashPacked(words []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, word := range words {
		h = (h ^ word) * 1099511628211
	}
	return mix64(h)
}

// HashCoalition hashes the packed-word form of the membership without
// materializing it (FNV-1a over the words, finalized by mix64). Coalitions
// of one game always have the same length, so the word count needs no
// separate mixing.
func HashCoalition(coalition []bool) uint64 {
	h := uint64(14695981039346656037)
	var word uint64
	shift := uint(0)
	for _, in := range coalition {
		if in {
			word |= 1 << shift
		}
		shift++
		if shift == 64 {
			h = (h ^ word) * 1099511628211
			word, shift = 0, 0
		}
	}
	if shift > 0 {
		h = (h ^ word) * 1099511628211
	}
	return mix64(h)
}
