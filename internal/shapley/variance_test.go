package shapley

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestAntitheticConvergesOnPaperGame(t *testing.T) {
	ests, err := SampleAllAntithetic(context.Background(), Deterministic{G: paperConstraintGame()}, Options{Samples: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 6, 1.0 / 6, 2.0 / 3, 0}
	for p, w := range want {
		if !approxEq(ests[p].Mean, w, 0.02) {
			t.Errorf("player %d: %v, want %v", p, ests[p].Mean, w)
		}
	}
}

func TestAntitheticReducesVariance(t *testing.T) {
	// On the (monotone) paper game, antithetic pairing must not increase
	// the standard error at an equal evaluation budget; for the veto-ish
	// player it should clearly shrink it.
	g := Deterministic{G: paperConstraintGame()}
	plain, err := SampleAll(context.Background(), g, Options{Samples: 4000, Seed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	anti, err := SampleAllAntithetic(context.Background(), g, Options{Samples: 4000, Seed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Compare variance of the estimator: stderr² × N normalizes sample
	// counts (antithetic has N/2 paired samples).
	for p := 0; p < 4; p++ {
		vPlain := plain[p].StdErr() * plain[p].StdErr() * float64(plain[p].N) / 2000
		vAnti := anti[p].StdErr() * anti[p].StdErr() * float64(anti[p].N) / 2000
		if vAnti > vPlain*1.25 {
			t.Errorf("player %d: antithetic variance %.6g vs plain %.6g", p, vAnti, vPlain)
		}
	}
}

func TestAntitheticValidation(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	if _, err := SampleAllAntithetic(context.Background(), g, Options{}); err == nil {
		t.Error("zero samples must error")
	}
	if out, err := SampleAllAntithetic(context.Background(), Deterministic{G: GameFunc{N: 0}}, Options{Samples: 10}); err != nil || out != nil {
		t.Error("empty game")
	}
	boom := errors.New("boom")
	bad := Deterministic{G: GameFunc{N: 2, Fn: func(context.Context, []bool) (float64, error) { return 0, boom }}}
	if _, err := SampleAllAntithetic(context.Background(), bad, Options{Samples: 10}); !errors.Is(err, boom) {
		t.Error("error propagation")
	}
}

func TestStratifiedConvergesOnPaperGame(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	for p, want := range []float64{1.0 / 6, 1.0 / 6, 2.0 / 3, 0} {
		est, err := SamplePlayerStratified(context.Background(), g, p, Options{Samples: 20000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(est.Mean, want, 0.02) {
			t.Errorf("player %d: %v, want %v", p, est.Mean, want)
		}
	}
}

func TestStratifiedExactOnDummy(t *testing.T) {
	// The dummy player's marginal is 0 in every stratum: the stratified
	// estimate is exactly 0 with zero variance.
	g := Deterministic{G: paperConstraintGame()}
	est, err := SamplePlayerStratified(context.Background(), g, 3, Options{Samples: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 0 || est.Variance != 0 {
		t.Errorf("dummy stratified estimate = %+v", est)
	}
}

func TestStratifiedBeatsPlainOnSizeSkewedGame(t *testing.T) {
	// A game whose marginals depend strongly on coalition size: the
	// threshold game v(S) = 1 iff |S| >= n/2. Size stratification removes
	// the dominant variance component for a mid-game player.
	n := 8
	g := Deterministic{G: GameFunc{N: n, Fn: func(_ context.Context, coalition []bool) (float64, error) {
		c := 0
		for _, in := range coalition {
			if in {
				c++
			}
		}
		if c >= n/2 {
			return 1, nil
		}
		return 0, nil
	}}}
	exact, err := ExactSubsets(context.Background(), g.G)
	if err != nil {
		t.Fatal(err)
	}
	var plainErr, stratErr float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		p, err := SamplePlayer(context.Background(), g, 0, Options{Samples: 240, Seed: int64(trial), Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		s, err := SamplePlayerStratified(context.Background(), g, 0, Options{Samples: 240, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		plainErr += (p.Mean - exact[0]) * (p.Mean - exact[0])
		stratErr += (s.Mean - exact[0]) * (s.Mean - exact[0])
	}
	if stratErr > plainErr {
		t.Errorf("stratified MSE %.6g vs plain MSE %.6g; stratification should not hurt", stratErr/trials, plainErr/trials)
	}
}

func TestStratifiedValidation(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	if _, err := SamplePlayerStratified(context.Background(), g, 9, Options{Samples: 10}); err == nil {
		t.Error("player out of range")
	}
	if _, err := SamplePlayerStratified(context.Background(), g, 0, Options{}); err == nil {
		t.Error("zero samples")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SamplePlayerStratified(ctx, g, 0, Options{Samples: 100}); !errors.Is(err, context.Canceled) {
		t.Error("cancellation")
	}
}

func TestStratifiedTinyBudget(t *testing.T) {
	// Budget below one sample per stratum still works (one per stratum).
	g := Deterministic{G: paperConstraintGame()}
	est, err := SamplePlayerStratified(context.Background(), g, 2, Options{Samples: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.N != 4 {
		t.Errorf("N = %d, want 4 (one per stratum)", est.N)
	}
	if math.IsNaN(est.Mean) {
		t.Error("NaN mean")
	}
}
