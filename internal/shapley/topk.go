package shapley

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
)

// TopKOptions configures TopK.
type TopKOptions struct {
	// K is how many top players must be identified.
	K int
	// RoundSamples is the permutation budget added per elimination round
	// (default 64).
	RoundSamples int
	// MaxRounds bounds the elimination loop (default 12).
	MaxRounds int
	// Workers and Seed as in Options.
	Workers int
	Seed    int64
}

func (o TopKOptions) withDefaults() TopKOptions {
	if o.RoundSamples <= 0 {
		o.RoundSamples = 64
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 12
	}
	return o
}

// TopKResult reports the adaptive ranking outcome.
type TopKResult struct {
	// Top are the identified top-K players, best first.
	Top []Estimate
	// All contains the final estimate of every player, sorted by mean
	// descending (players eliminated early carry wider intervals).
	All []Estimate
	// Rounds is the number of sampling rounds executed.
	Rounds int
	// Separated reports whether the K-th and (K+1)-th players' confidence
	// intervals were disjoint at termination; false means the budget ran
	// out with the boundary still statistically ambiguous.
	Separated bool
}

// TopK identifies the K players with the largest Shapley values using
// confidence-interval elimination (a successive-halving-style racing
// scheme). The interactive setting of the paper only needs the *ranking* —
// the explanation screen shows the top few constraints/cells — and
// separating the top K from the rest typically needs far fewer samples
// than estimating every value to uniform precision:
//
//	round: add RoundSamples permutations for the still-active players;
//	       a player is deactivated when its CI95 upper bound falls below
//	       the CI95 lower bound of the current K-th best (can't be top-K),
//	       or its lower bound clears the (K+1)-th best's upper bound
//	       (locked into the top-K, no more samples needed).
//
// Each round spends its budget only on still-active players, so every
// elimination shrinks round cost.
func TopK(ctx context.Context, g StochasticGame, opts TopKOptions) (*TopKResult, error) {
	opts = opts.withDefaults()
	n := g.NumPlayers()
	if opts.K <= 0 || opts.K > n {
		return nil, fmt.Errorf("shapley: K = %d out of range 1..%d", opts.K, n)
	}
	accs := make([]welford, n)
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	result := &TopKResult{}

	for round := 0; round < opts.MaxRounds; round++ {
		result.Rounds = round + 1
		if err := topKRound(ctx, g, active, accs, Options{
			Samples: opts.RoundSamples,
			Workers: opts.Workers,
			Seed:    opts.Seed + int64(round)*7919,
		}); err != nil {
			return nil, err
		}

		ests := make([]Estimate, n)
		for i := range accs {
			ests[i] = accs[i].estimate(i)
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return ests[order[a]].Mean > ests[order[b]].Mean })

		kth := ests[order[opts.K-1]]
		var next Estimate
		if opts.K < n {
			next = ests[order[opts.K]]
		}

		// Eliminate and lock.
		activeCount := 0
		for rank, p := range order {
			e := ests[p]
			switch {
			case rank < opts.K && opts.K < n && e.Mean-e.CI95() > next.Mean+next.CI95():
				// Provably top-K: stop spending samples on it.
				active[p] = false
			case rank >= opts.K && e.Mean+e.CI95() < kth.Mean-kth.CI95():
				// Provably not top-K.
				active[p] = false
			default:
				active[p] = true
				activeCount++
			}
		}

		separated := opts.K == n || kth.Mean-kth.CI95() > next.Mean+next.CI95()
		if separated || activeCount == 0 {
			result.Separated = separated
			break
		}
	}

	final := make([]Estimate, n)
	for i := range accs {
		final[i] = accs[i].estimate(i)
	}
	sort.SliceStable(final, func(a, b int) bool { return final[a].Mean > final[b].Mean })
	result.All = final
	result.Top = append([]Estimate(nil), final[:opts.K]...)
	if !result.Separated && opts.K < n {
		kth, next := final[opts.K-1], final[opts.K]
		result.Separated = kth.Mean-kth.CI95() > next.Mean+next.CI95()
	}
	return result, nil
}

// topKRound adds Samples marginal observations for every active player,
// Strumbelj–Kononenko style (two evaluations per observation). Eliminated
// players receive no budget, which is where the adaptive saving comes
// from.
func topKRound(ctx context.Context, g StochasticGame, active []bool, accs []welford, opts Options) error {
	n := g.NumPlayers()
	players := make([]int, 0, n)
	for p, a := range active {
		if a {
			players = append(players, p)
		}
	}
	if len(players) == 0 {
		return nil
	}
	// One fan-out covers all active players: iteration i samples one
	// marginal for a random active player. Accumulators are indexed by
	// position in players.
	iters := opts.Samples * len(players)
	merged, err := fanOut(ctx, opts, iters, len(players),
		func() *marginalState { return newMarginalState(g) },
		(*marginalState).close,
		func(ctx context.Context, st *marginalState, rng *rand.Rand, iters int, acc []welford) error {
			for it := 0; it < iters; it++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				slot := rng.Intn(len(players))
				player := players[slot]
				randPerm(rng, st.perm)
				m, err := st.marginal(ctx, g, st.perm, player, rng)
				if err != nil {
					return err
				}
				acc[slot].add(m)
			}
			return nil
		})
	if err != nil {
		return err
	}
	for slot, p := range players {
		accs[p].merge(merged[slot])
	}
	return nil
}
