// Package shapley implements the Shapley-value machinery of T-REx: the
// cooperative-game abstraction, exact computation by subset enumeration and
// by permutation enumeration (reference implementations usable when the
// player count is small, as with denial constraints), and the
// Strumbelj–Kononenko permutation-sampling approximation used when the
// player count is large (as with table cells), with Welford accumulators,
// Hoeffding confidence bounds, parallel workers and coalition-value
// caching.
//
// Nothing in this package knows about tables, constraints or repair
// algorithms: those are adapted to games in package core. This enforces the
// paper's black-box boundary.
package shapley

import (
	"context"
	"errors"
	"fmt"
)

// Game is a cooperative game: a fixed player count and a characteristic
// function over coalitions. Implementations must be deterministic;
// v(∅) need not be zero — Shapley values are computed from marginal
// differences, so only differences matter (the textbook v(∅)=0 can always
// be obtained by shifting, which changes no Shapley value).
type Game interface {
	// NumPlayers returns n; players are identified as 0..n-1.
	NumPlayers() int
	// Value evaluates the characteristic function. coalition has length n;
	// coalition[i] reports whether player i participates. Implementations
	// must not retain or mutate the slice.
	Value(ctx context.Context, coalition []bool) (float64, error)
}

// GameFunc adapts a plain function to the Game interface.
type GameFunc struct {
	// N is the player count.
	N int
	// Fn is the characteristic function.
	Fn func(ctx context.Context, coalition []bool) (float64, error)
}

// NumPlayers implements Game.
func (g GameFunc) NumPlayers() int { return g.N }

// Value implements Game.
func (g GameFunc) Value(ctx context.Context, coalition []bool) (float64, error) {
	return g.Fn(ctx, coalition)
}

// ErrTooManyPlayers is returned by the exact enumerators when the player
// count makes enumeration infeasible.
var ErrTooManyPlayers = errors.New("shapley: too many players for exact enumeration")

// maxExactSubsetPlayers bounds ExactSubsets: 2^25 coalition evaluations is
// the most that stays interactive; the paper computes constraints exactly
// because "the number of DCs is usually small".
const maxExactSubsetPlayers = 25

// maxExactPermutationPlayers bounds ExactPermutations (n! growth).
const maxExactPermutationPlayers = 10

// ExactSubsets computes the Shapley value of every player from the
// definition:
//
//	Shap(i) = Σ_{S ⊆ N\{i}} |S|!(n-|S|-1)!/n! · (v(S∪{i}) − v(S))
//
// implemented as one pass over all 2^n coalitions: each coalition's value
// is computed once and contributes positively (as S∪{i}) or negatively
// (as S) to every player's sum. Cost: 2^n evaluations of v, n·2^n floats.
func ExactSubsets(ctx context.Context, g Game) ([]float64, error) {
	n := g.NumPlayers()
	if n == 0 {
		return nil, nil
	}
	if n > maxExactSubsetPlayers {
		return nil, fmt.Errorf("%w: %d players (max %d)", ErrTooManyPlayers, n, maxExactSubsetPlayers)
	}
	// Precompute w[s] = s!(n-s-1)!/n! for s = |S| of the coalition WITHOUT
	// player i.
	w := subsetWeights(n)
	shap := make([]float64, n)
	coalition := make([]bool, n)
	total := 1 << uint(n)
	for mask := 0; mask < total; mask++ {
		if mask%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		size := 0
		for i := 0; i < n; i++ {
			in := mask&(1<<uint(i)) != 0
			coalition[i] = in
			if in {
				size++
			}
		}
		v, err := g.Value(ctx, coalition)
		if err != nil {
			return nil, fmt.Errorf("shapley: evaluating coalition %b: %w", mask, err)
		}
		for i := 0; i < n; i++ {
			if coalition[i] {
				// This coalition appears as S∪{i} for player i with
				// |S| = size-1.
				shap[i] += w[size-1] * v
			} else {
				// This coalition appears as S for player i with |S| = size.
				shap[i] -= w[size] * v
			}
		}
	}
	return shap, nil
}

// ExactOne computes the Shapley value of a single player by direct subset
// enumeration over the other n-1 players. Cost: 2^(n-1) pairs of
// evaluations; useful when only one player's value is needed.
func ExactOne(ctx context.Context, g Game, player int) (float64, error) {
	n := g.NumPlayers()
	if player < 0 || player >= n {
		return 0, fmt.Errorf("shapley: player %d out of range 0..%d", player, n-1)
	}
	if n > maxExactSubsetPlayers {
		return 0, fmt.Errorf("%w: %d players (max %d)", ErrTooManyPlayers, n, maxExactSubsetPlayers)
	}
	w := subsetWeights(n)
	others := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != player {
			others = append(others, i)
		}
	}
	coalition := make([]bool, n)
	var shap float64
	total := 1 << uint(len(others))
	for mask := 0; mask < total; mask++ {
		if mask%512 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		size := 0
		for i := range coalition {
			coalition[i] = false
		}
		for b, p := range others {
			if mask&(1<<uint(b)) != 0 {
				coalition[p] = true
				size++
			}
		}
		without, err := g.Value(ctx, coalition)
		if err != nil {
			return 0, err
		}
		coalition[player] = true
		with, err := g.Value(ctx, coalition)
		if err != nil {
			return 0, err
		}
		shap += w[size] * (with - without)
	}
	return shap, nil
}

// ExactPermutations computes Shapley values by enumerating all n!
// permutations and averaging marginal contributions. It is asymptotically
// worse than ExactSubsets and exists as an independent reference for
// cross-validation tests.
func ExactPermutations(ctx context.Context, g Game) ([]float64, error) {
	n := g.NumPlayers()
	if n == 0 {
		return nil, nil
	}
	if n > maxExactPermutationPlayers {
		return nil, fmt.Errorf("%w: %d players (max %d for permutations)", ErrTooManyPlayers, n, maxExactPermutationPlayers)
	}
	shap := make([]float64, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	coalition := make([]bool, n)
	count := 0
	var walk func(k int) error
	walk = func(k int) error {
		if k == n {
			count++
			if err := ctx.Err(); err != nil {
				return err
			}
			for i := range coalition {
				coalition[i] = false
			}
			prev := 0.0
			v, err := g.Value(ctx, coalition)
			if err != nil {
				return err
			}
			prev = v
			for _, p := range perm {
				coalition[p] = true
				v, err := g.Value(ctx, coalition)
				if err != nil {
					return err
				}
				shap[p] += v - prev
				prev = v
			}
			return nil
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := walk(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	for i := range shap {
		shap[i] /= float64(count)
	}
	return shap, nil
}

// subsetWeights returns w[s] = s!·(n−s−1)!/n! for s in 0..n−1, computed
// multiplicatively to stay in float range for any practical n.
func subsetWeights(n int) []float64 {
	w := make([]float64, n)
	// w[0] = (n-1)!/n! = 1/n.
	w[0] = 1 / float64(n)
	// w[s] = w[s-1] · s/(n−s).
	for s := 1; s < n; s++ {
		w[s] = w[s-1] * float64(s) / float64(n-s)
	}
	return w
}
