package shapley

import (
	"context"
	"fmt"
	"math/rand"
)

// SampleAllAntithetic is SampleAll with antithetic permutation pairs: each
// sampled permutation π is walked together with its reverse. For a player
// near the front of π (small coalition) the reverse places it near the back
// (large coalition), so the pair's marginals are negatively correlated for
// monotone games and their average has lower variance than two independent
// draws. The total evaluation budget matches SampleAll with the same
// Samples (each pair costs two walks, so Samples/2 pairs are drawn).
func SampleAllAntithetic(ctx context.Context, g StochasticGame, opts Options) ([]Estimate, error) {
	opts = opts.withDefaults()
	n := g.NumPlayers()
	if n == 0 {
		return nil, nil
	}
	if opts.Samples <= 0 {
		return nil, fmt.Errorf("shapley: Samples must be positive, got %d", opts.Samples)
	}
	pairs := (opts.Samples + 1) / 2
	type antiState struct {
		perm, reversed []int
		coalition      []bool
		marg, first    []float64
	}
	accs, err := fanOut(ctx, opts, pairs, n, func() *antiState {
		return &antiState{
			perm:      make([]int, n),
			reversed:  make([]int, n),
			coalition: make([]bool, n),
			marg:      make([]float64, n),
			first:     make([]float64, n),
		}
	}, func(*antiState) {}, func(ctx context.Context, st *antiState, rng *rand.Rand, iters int, acc []welford) error {
		perm, reversed, coalition, marg := st.perm, st.reversed, st.coalition, st.marg
		walk := func(p []int) error {
			for i := range coalition {
				coalition[i] = false
			}
			prev, err := g.SampleValue(ctx, coalition, rng)
			if err != nil {
				return err
			}
			for _, pl := range p {
				coalition[pl] = true
				v, err := g.SampleValue(ctx, coalition, rng)
				if err != nil {
					return err
				}
				marg[pl] = v - prev
				prev = v
			}
			return nil
		}
		for it := 0; it < iters; it++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			randPerm(rng, perm)
			for i := range perm {
				reversed[n-1-i] = perm[i]
			}
			if err := walk(perm); err != nil {
				return err
			}
			first := st.first
			copy(first, marg)
			if err := walk(reversed); err != nil {
				return err
			}
			for p := 0; p < n; p++ {
				// One paired sample: the average of the antithetic
				// marginals.
				acc[p].add((first[p] + marg[p]) / 2)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Estimate, n)
	for i := range out {
		out[i] = accs[i].estimate(i)
	}
	return out, nil
}

// SamplePlayerStratified estimates one player's Shapley value with
// stratification by coalition size (Maleki et al. 2013): the Shapley value
// is the average over sizes s = 0..n-1 of the expected marginal
// contribution to a uniformly random coalition of size s. Allocating an
// equal budget to every stratum removes the variance of the size draw that
// plain permutation sampling carries.
func SamplePlayerStratified(ctx context.Context, g StochasticGame, player int, opts Options) (Estimate, error) {
	opts = opts.withDefaults()
	n := g.NumPlayers()
	if player < 0 || player >= n {
		return Estimate{}, fmt.Errorf("shapley: player %d out of range 0..%d", player, n-1)
	}
	if opts.Samples <= 0 {
		return Estimate{}, fmt.Errorf("shapley: Samples must be positive, got %d", opts.Samples)
	}
	perStratum := opts.Samples / n
	if perStratum == 0 {
		perStratum = 1
	}
	others := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != player {
			others = append(others, i)
		}
	}

	// Per-stratum accumulators; the final estimate averages stratum means
	// with equal weight (each size is equally likely under the Shapley
	// distribution) and combines variances accordingly.
	strata := make([]welford, n)
	rng := rand.New(rand.NewSource(opts.Seed))
	coalition := make([]bool, n)
	scratch := make([]int, len(others))
	for s := 0; s < n; s++ {
		if err := ctx.Err(); err != nil {
			return Estimate{}, err
		}
		for it := 0; it < perStratum; it++ {
			if err := ctx.Err(); err != nil {
				return Estimate{}, err
			}
			// Sample a uniform size-s subset of the other players via a
			// partial Fisher–Yates shuffle.
			copy(scratch, others)
			for i := 0; i < s; i++ {
				j := i + rng.Intn(len(scratch)-i)
				scratch[i], scratch[j] = scratch[j], scratch[i]
			}
			for i := range coalition {
				coalition[i] = false
			}
			for _, p := range scratch[:s] {
				coalition[p] = true
			}
			without, err := g.SampleValue(ctx, coalition, rng)
			if err != nil {
				return Estimate{}, err
			}
			coalition[player] = true
			with, err := g.SampleValue(ctx, coalition, rng)
			if err != nil {
				return Estimate{}, err
			}
			strata[s].add(with - without)
		}
	}

	// Combine: mean = (1/n) Σ_s mean_s; Var(mean) = (1/n²) Σ_s var_s/n_s.
	est := Estimate{Player: player}
	var varOfMean float64
	for s := range strata {
		st := strata[s].estimate(player)
		est.Mean += st.Mean / float64(n)
		if st.N > 1 {
			varOfMean += st.Variance / float64(st.N) / float64(n*n)
		}
		est.N += st.N
	}
	// Report Variance so that StdErr() = sqrt(Variance/N) equals the
	// stratified standard error computed above.
	est.Variance = varOfMean * float64(est.N)
	return est, nil
}
