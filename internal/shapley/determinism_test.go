package shapley

import (
	"context"
	"testing"
)

// The determinism contract of the chunked fan-out: Workers changes
// scheduling only, never estimates. CI's determinism smoke job runs these
// tests by name; they must compare bit-for-bit, not within tolerance.

func assertIdentical(t *testing.T, a, b []Estimate, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for p := range a {
		if a[p].Mean != b[p].Mean || a[p].Variance != b[p].Variance || a[p].N != b[p].N {
			t.Fatalf("%s: player %d differs: %+v vs %+v", label, p, a[p], b[p])
		}
	}
}

func TestSampleAllWorkerCountDeterminism(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	for _, m := range []int{1, 7, 200} {
		base, err := SampleAll(context.Background(), g, Options{Samples: m, Seed: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			got, err := SampleAll(context.Background(), g, Options{Samples: m, Seed: 5, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, base, got, "SampleAll")
		}
	}
}

func TestSampleAllWorkerCountDeterminismStochastic(t *testing.T) {
	// The stochastic path consumes the RNG inside SampleValue too; chunked
	// streams must keep that consumption identical across worker counts.
	g := stochasticAdditive{w: []float64{0.2, 0.5, 0.3}}
	base, err := SampleAll(context.Background(), g, Options{Samples: 300, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SampleAll(context.Background(), g, Options{Samples: 300, Seed: 11, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, base, got, "SampleAll/stochastic")
}

func TestSamplePlayerWorkerCountDeterminism(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	base, err := SamplePlayer(context.Background(), g, 2, Options{Samples: 150, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		got, err := SamplePlayer(context.Background(), g, 2, Options{Samples: 150, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base.Mean != got.Mean || base.Variance != got.Variance || base.N != got.N {
			t.Fatalf("SamplePlayer: workers=%d differs: %+v vs %+v", workers, base, got)
		}
	}
}

func TestTopKWorkerCountDeterminism(t *testing.T) {
	g := Deterministic{G: randomGame(9, 41)}
	base, err := TopK(context.Background(), g, TopKOptions{K: 3, RoundSamples: 40, Seed: 13, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TopK(context.Background(), g, TopKOptions{K: 3, RoundSamples: 40, Seed: 13, Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, base.All, got.All, "TopK.All")
	if base.Rounds != got.Rounds || base.Separated != got.Separated {
		t.Fatalf("TopK control flow diverged: %+v vs %+v", base, got)
	}
}

func TestAntitheticWorkerCountDeterminism(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	base, err := SampleAllAntithetic(context.Background(), g, Options{Samples: 120, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SampleAllAntithetic(context.Background(), g, Options{Samples: 120, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, base, got, "SampleAllAntithetic")
}

func TestFanChunkDependsOnlyOnBudget(t *testing.T) {
	if fanChunk(1) != minChunkIters || fanChunk(100) != minChunkIters {
		t.Error("small budgets must use the minimum chunk size")
	}
	// Huge budgets scale the chunk so the grid stays bounded.
	huge := 10_000_000
	size := fanChunk(huge)
	if chunks := (huge + size - 1) / size; chunks > maxFanChunks {
		t.Errorf("chunk grid too large: %d chunks", chunks)
	}
}
