package shapley

import (
	"context"
	"errors"
	"testing"
)

func TestTopKFindsTopConstraint(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	res, err := TopK(context.Background(), g, TopKOptions{K: 1, RoundSamples: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) != 1 || res.Top[0].Player != 2 {
		t.Fatalf("top = %+v, want player 2 (C3)", res.Top)
	}
	if !res.Separated {
		t.Error("C3 at 2/3 vs 1/6 must separate quickly")
	}
	if len(res.All) != 4 {
		t.Fatalf("All = %d entries", len(res.All))
	}
}

func TestTopKIdentifiesTopThree(t *testing.T) {
	// Additive game with well-separated weights: top-3 is unambiguous.
	g := Deterministic{G: additiveGame([]float64{0.9, 0.1, 0.7, 0.05, 0.5, 0.0})}
	res, err := TopK(context.Background(), g, TopKOptions{K: 3, RoundSamples: 150, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, e := range res.Top {
		got[e.Player] = true
	}
	for _, want := range []int{0, 2, 4} {
		if !got[want] {
			t.Errorf("player %d missing from top-3: %+v", want, res.Top)
		}
	}
}

func TestTopKOrderWithinTop(t *testing.T) {
	g := Deterministic{G: additiveGame([]float64{0.2, 0.8, 0.5})}
	res, err := TopK(context.Background(), g, TopKOptions{K: 3, RoundSamples: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// K = n: everything is "top", order by mean.
	if res.Top[0].Player != 1 || res.Top[1].Player != 2 || res.Top[2].Player != 0 {
		t.Fatalf("order = %+v", res.Top)
	}
	if !res.Separated {
		t.Error("K = n is trivially separated")
	}
}

func TestTopKUsesFewerSamplesThanUniform(t *testing.T) {
	// With one dominant player among many dummies, elimination should cut
	// the per-player sample counts of the dummies well below the total a
	// uniform scheme would spend.
	n := 12
	weights := make([]float64, n)
	weights[5] = 1
	g := Deterministic{G: additiveGame(weights)}
	res, err := TopK(context.Background(), g, TopKOptions{K: 1, RoundSamples: 50, Seed: 6, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Top[0].Player != 5 {
		t.Fatalf("top = %+v", res.Top[0])
	}
	if res.Rounds >= 10 {
		t.Errorf("should terminate early, ran %d rounds", res.Rounds)
	}
	// Additive marginals are constant → variance 0 → CI collapses after
	// the first round; every player should have roughly one round's
	// samples.
	for _, e := range res.All {
		if e.N > 3*50 {
			t.Errorf("player %d received %d samples; elimination failed", e.Player, e.N)
		}
	}
}

func TestTopKAmbiguousBoundaryReported(t *testing.T) {
	// Two identical players competing for K=1: never separable; the
	// result must say so instead of pretending.
	g := Deterministic{G: additiveGame([]float64{0.5, 0.5, 0})}
	res, err := TopK(context.Background(), g, TopKOptions{K: 1, RoundSamples: 30, Seed: 3, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Separated {
		t.Error("identical players must not report separation")
	}
	if res.Top[0].Player == 2 {
		t.Error("the dummy cannot be on top")
	}
}

func TestTopKValidation(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	if _, err := TopK(context.Background(), g, TopKOptions{K: 0}); err == nil {
		t.Error("K=0 must error")
	}
	if _, err := TopK(context.Background(), g, TopKOptions{K: 5}); err == nil {
		t.Error("K>n must error")
	}
	boom := errors.New("boom")
	bad := Deterministic{G: GameFunc{N: 3, Fn: func(context.Context, []bool) (float64, error) { return 0, boom }}}
	if _, err := TopK(context.Background(), bad, TopKOptions{K: 1, RoundSamples: 5}); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TopK(ctx, g, TopKOptions{K: 1, RoundSamples: 5}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestTopKDeterministicPerSeed(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	a, err := TopK(context.Background(), g, TopKOptions{K: 2, RoundSamples: 100, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopK(context.Background(), g, TopKOptions{K: 2, RoundSamples: 100, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || len(a.Top) != len(b.Top) {
		t.Fatal("nondeterministic shape")
	}
	for i := range a.Top {
		if a.Top[i].Player != b.Top[i].Player || a.Top[i].Mean != b.Top[i].Mean {
			t.Fatalf("nondeterministic result: %+v vs %+v", a.Top[i], b.Top[i])
		}
	}
}
