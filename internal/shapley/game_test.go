package shapley

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// additiveGame has v(S) = Σ_{i∈S} w[i]; its Shapley values are exactly w.
func additiveGame(w []float64) Game {
	return GameFunc{N: len(w), Fn: func(_ context.Context, coalition []bool) (float64, error) {
		s := 0.0
		for i, in := range coalition {
			if in {
				s += w[i]
			}
		}
		return s, nil
	}}
}

// unanimityGame has v(S) = 1 iff T ⊆ S; Shapley is 1/|T| on T, 0 elsewhere.
func unanimityGame(n int, t []int) Game {
	return GameFunc{N: n, Fn: func(_ context.Context, coalition []bool) (float64, error) {
		for _, i := range t {
			if !coalition[i] {
				return 0, nil
			}
		}
		return 1, nil
	}}
}

// paperConstraintGame is the abstract structure of Example 2.3: 4 players,
// v(S) = 1 iff {0,1} ⊆ S or 2 ∈ S; player 3 is a dummy. Known Shapley
// values: 1/6, 1/6, 2/3, 0.
func paperConstraintGame() Game {
	return GameFunc{N: 4, Fn: func(_ context.Context, coalition []bool) (float64, error) {
		if coalition[2] || (coalition[0] && coalition[1]) {
			return 1, nil
		}
		return 0, nil
	}}
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSubsetWeightsSumToOne(t *testing.T) {
	// Σ_{s=0}^{n-1} C(n-1, s)·w[s] = 1 (the permutation weights partition).
	for n := 1; n <= 12; n++ {
		w := subsetWeights(n)
		sum := 0.0
		binom := 1.0
		for s := 0; s < n; s++ {
			sum += binom * w[s]
			binom = binom * float64(n-1-s) / float64(s+1)
		}
		if !approxEq(sum, 1, 1e-9) {
			t.Errorf("n=%d: weights sum to %v", n, sum)
		}
	}
}

func TestExactSubsetsPaperGame(t *testing.T) {
	shap, err := ExactSubsets(context.Background(), paperConstraintGame())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 6, 1.0 / 6, 2.0 / 3, 0}
	for i := range want {
		if !approxEq(shap[i], want[i], 1e-12) {
			t.Errorf("Shap[%d] = %v, want %v", i, shap[i], want[i])
		}
	}
}

func TestExactSubsetsAdditive(t *testing.T) {
	w := []float64{0.5, -1.25, 3, 0, 2.5}
	shap, err := ExactSubsets(context.Background(), additiveGame(w))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if !approxEq(shap[i], w[i], 1e-9) {
			t.Errorf("Shap[%d] = %v, want %v", i, shap[i], w[i])
		}
	}
}

func TestExactSubsetsUnanimity(t *testing.T) {
	shap, err := ExactSubsets(context.Background(), unanimityGame(6, []int{1, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1.0 / 3, 0, 1.0 / 3, 1.0 / 3, 0}
	for i := range want {
		if !approxEq(shap[i], want[i], 1e-12) {
			t.Errorf("Shap[%d] = %v, want %v", i, shap[i], want[i])
		}
	}
}

func TestExactSubsetsEmptyGame(t *testing.T) {
	shap, err := ExactSubsets(context.Background(), GameFunc{N: 0, Fn: nil})
	if err != nil || shap != nil {
		t.Fatalf("empty game: %v, %v", shap, err)
	}
}

func TestExactSubsetsTooManyPlayers(t *testing.T) {
	_, err := ExactSubsets(context.Background(), GameFunc{N: 40, Fn: nil})
	if !errors.Is(err, ErrTooManyPlayers) {
		t.Fatalf("err = %v", err)
	}
}

func TestExactSubsetsPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	g := GameFunc{N: 3, Fn: func(context.Context, []bool) (float64, error) { return 0, boom }}
	if _, err := ExactSubsets(context.Background(), g); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestExactSubsetsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := GameFunc{N: 20, Fn: func(_ context.Context, _ []bool) (float64, error) { return 0, nil }}
	if _, err := ExactSubsets(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestExactOneMatchesExactSubsets(t *testing.T) {
	g := paperConstraintGame()
	all, err := ExactSubsets(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.NumPlayers(); p++ {
		one, err := ExactOne(context.Background(), g, p)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(one, all[p], 1e-12) {
			t.Errorf("ExactOne(%d) = %v, ExactSubsets = %v", p, one, all[p])
		}
	}
}

func TestExactOnePlayerRange(t *testing.T) {
	g := paperConstraintGame()
	if _, err := ExactOne(context.Background(), g, -1); err == nil {
		t.Error("negative player must error")
	}
	if _, err := ExactOne(context.Background(), g, 4); err == nil {
		t.Error("out-of-range player must error")
	}
}

func TestExactPermutationsMatchesSubsets(t *testing.T) {
	for _, g := range []Game{paperConstraintGame(), additiveGame([]float64{1, 2, 3}), unanimityGame(5, []int{0, 4})} {
		a, err := ExactSubsets(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ExactPermutations(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !approxEq(a[i], b[i], 1e-9) {
				t.Errorf("player %d: subsets %v vs permutations %v", i, a[i], b[i])
			}
		}
	}
}

func TestExactPermutationsTooMany(t *testing.T) {
	if _, err := ExactPermutations(context.Background(), GameFunc{N: 11, Fn: nil}); !errors.Is(err, ErrTooManyPlayers) {
		t.Fatal("must reject n > 10")
	}
}

// randomGame builds a deterministic pseudo-random game from a seed by
// hashing coalition masks; used for axiom property tests.
func randomGame(n int, seed uint64) Game {
	return GameFunc{N: n, Fn: func(_ context.Context, coalition []bool) (float64, error) {
		h := seed
		for i, in := range coalition {
			if in {
				h ^= uint64(i+1) * 0x9E3779B97F4A7C15
				h = (h << 13) | (h >> 51)
				h *= 0xBF58476D1CE4E5B9
			}
		}
		return float64(h%1000) / 1000.0, nil
	}}
}

func TestEfficiencyAxiomProperty(t *testing.T) {
	// Σ Shap_i = v(N) − v(∅) for arbitrary games.
	f := func(seed uint64, np uint8) bool {
		n := int(np)%6 + 1
		g := randomGame(n, seed)
		shap, err := ExactSubsets(context.Background(), g)
		if err != nil {
			return false
		}
		full := make([]bool, n)
		empty := make([]bool, n)
		for i := range full {
			full[i] = true
		}
		vFull, _ := g.Value(context.Background(), full)
		vEmpty, _ := g.Value(context.Background(), empty)
		sum := 0.0
		for _, s := range shap {
			sum += s
		}
		return approxEq(sum, vFull-vEmpty, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDummyAxiomProperty(t *testing.T) {
	// A player whose presence never changes v has Shapley value 0:
	// extend a random game with a dummy player and check.
	f := func(seed uint64, np uint8) bool {
		n := int(np)%5 + 1
		base := randomGame(n, seed)
		ext := GameFunc{N: n + 1, Fn: func(ctx context.Context, coalition []bool) (float64, error) {
			return base.Value(ctx, coalition[:n])
		}}
		shap, err := ExactSubsets(context.Background(), ext)
		return err == nil && approxEq(shap[n], 0, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDummyDoesNotPerturbOthersProperty(t *testing.T) {
	// Adding a dummy player leaves every other Shapley value unchanged —
	// the fact that lets the cell game drop irrelevant cells.
	f := func(seed uint64, np uint8) bool {
		n := int(np)%5 + 1
		base := randomGame(n, seed)
		ext := GameFunc{N: n + 1, Fn: func(ctx context.Context, coalition []bool) (float64, error) {
			return base.Value(ctx, coalition[:n])
		}}
		a, err1 := ExactSubsets(context.Background(), base)
		b, err2 := ExactSubsets(context.Background(), ext)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !approxEq(a[i], b[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSymmetryAxiom(t *testing.T) {
	// Interchangeable players get equal values: in the unanimity game all
	// members of T are symmetric.
	shap, err := ExactSubsets(context.Background(), unanimityGame(7, []int{2, 3, 5}))
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(shap[2], shap[3], 1e-12) || !approxEq(shap[3], shap[5], 1e-12) {
		t.Errorf("symmetric players differ: %v %v %v", shap[2], shap[3], shap[5])
	}
}

func TestLinearityAxiomProperty(t *testing.T) {
	// Shap(g1 + g2) = Shap(g1) + Shap(g2).
	f := func(s1, s2 uint64, np uint8) bool {
		n := int(np)%5 + 1
		g1, g2 := randomGame(n, s1), randomGame(n, s2)
		sum := GameFunc{N: n, Fn: func(ctx context.Context, c []bool) (float64, error) {
			a, _ := g1.Value(ctx, c)
			b, _ := g2.Value(ctx, c)
			return a + b, nil
		}}
		x, err1 := ExactSubsets(context.Background(), g1)
		y, err2 := ExactSubsets(context.Background(), g2)
		z, err3 := ExactSubsets(context.Background(), sum)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range z {
			if !approxEq(z[i], x[i]+y[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
