package shapley

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSamplePlayerConvergesOnPaperGame(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	want := []float64{1.0 / 6, 1.0 / 6, 2.0 / 3, 0}
	for p, w := range want {
		est, err := SamplePlayer(context.Background(), g, p, Options{Samples: 20000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(est.Mean, w, 0.02) {
			t.Errorf("player %d: sampled %v, want %v", p, est.Mean, w)
		}
		if est.N != 20000 {
			t.Errorf("player %d: N = %d", p, est.N)
		}
	}
}

func TestSampleAllConvergesOnPaperGame(t *testing.T) {
	ests, err := SampleAll(context.Background(), Deterministic{G: paperConstraintGame()}, Options{Samples: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 6, 1.0 / 6, 2.0 / 3, 0}
	for p, w := range want {
		if !approxEq(ests[p].Mean, w, 0.02) {
			t.Errorf("player %d: sampled %v, want %v", p, ests[p].Mean, w)
		}
	}
}

func TestSampleAllEfficiency(t *testing.T) {
	// Per permutation the marginals telescope, so Σ means = v(N) − v(∅)
	// exactly, not just in expectation.
	g := Deterministic{G: randomGame(6, 99)}
	ests, err := SampleAll(context.Background(), g, Options{Samples: 500, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, e := range ests {
		sum += e.Mean
	}
	full, empty := make([]bool, 6), make([]bool, 6)
	for i := range full {
		full[i] = true
	}
	vF, _ := g.G.Value(context.Background(), full)
	vE, _ := g.G.Value(context.Background(), empty)
	if !approxEq(sum, vF-vE, 1e-9) {
		t.Errorf("Σ means = %v, want %v", sum, vF-vE)
	}
}

func TestSamplingErrorShrinksWithM(t *testing.T) {
	// Mean absolute error over players must shrink roughly like 1/sqrt(m)
	// (E6); we assert monotone improvement with generous slack.
	g := Deterministic{G: paperConstraintGame()}
	exact, err := ExactSubsets(context.Background(), g.G)
	if err != nil {
		t.Fatal(err)
	}
	mae := func(m int) float64 {
		ests, err := SampleAll(context.Background(), g, Options{Samples: m, Seed: 1234})
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for p := range exact {
			s += math.Abs(ests[p].Mean - exact[p])
		}
		return s / float64(len(exact))
	}
	small, large := mae(50), mae(20000)
	if large >= small {
		t.Errorf("MAE did not shrink: m=50 → %v, m=20000 → %v", small, large)
	}
	if large > 0.02 {
		t.Errorf("MAE at m=20000 too high: %v", large)
	}
}

func TestSamplingDeterministicPerSeed(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	a, err := SampleAll(context.Background(), g, Options{Samples: 200, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleAll(context.Background(), g, Options{Samples: 200, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for p := range a {
		if a[p].Mean != b[p].Mean || a[p].N != b[p].N {
			t.Fatalf("player %d: runs differ: %v vs %v", p, a[p], b[p])
		}
	}
	c, err := SampleAll(context.Background(), g, Options{Samples: 200, Seed: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for p := range a {
		if a[p].Mean != c[p].Mean {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical estimates")
	}
}

func TestSamplePlayerEarlyStopping(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	est, err := SamplePlayer(context.Background(), g, 2, Options{Samples: 1 << 30, Seed: 9, Epsilon: 0.2, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	wantMax := hoeffdingSamples(0.2, 0.1, 1)
	if est.N > wantMax {
		t.Errorf("early stop did not cap samples: N = %d > %d", est.N, wantMax)
	}
	if !approxEq(est.Mean, 2.0/3, 0.2) {
		t.Errorf("estimate %v out of promised range around 2/3", est.Mean)
	}
}

func TestHoeffdingSamples(t *testing.T) {
	// m ≥ (2r²/ε²)·ln(2/δ): spot-check a hand-computed value.
	got := hoeffdingSamples(0.1, 0.05, 1)
	want := int(math.Ceil(2 / 0.01 * math.Log(40)))
	if got != want {
		t.Errorf("hoeffdingSamples = %d, want %d", got, want)
	}
	if hoeffdingSamples(0.5, 0.05, 2) <= hoeffdingSamples(0.5, 0.05, 1) {
		t.Error("larger range must need more samples")
	}
}

func TestSamplingOptionValidation(t *testing.T) {
	g := Deterministic{G: paperConstraintGame()}
	if _, err := SamplePlayer(context.Background(), g, 0, Options{Samples: 0}); err == nil {
		t.Error("zero samples must error")
	}
	if _, err := SamplePlayer(context.Background(), g, 9, Options{Samples: 10}); err == nil {
		t.Error("player out of range must error")
	}
	if _, err := SampleAll(context.Background(), g, Options{}); err == nil {
		t.Error("zero samples must error")
	}
	if out, err := SampleAll(context.Background(), Deterministic{G: GameFunc{N: 0}}, Options{Samples: 5}); err != nil || out != nil {
		t.Error("empty game must return nil, nil")
	}
}

func TestSamplingPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	g := Deterministic{G: GameFunc{N: 4, Fn: func(context.Context, []bool) (float64, error) { return 0, boom }}}
	if _, err := SampleAll(context.Background(), g, Options{Samples: 100, Workers: 4}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := SamplePlayer(context.Background(), g, 1, Options{Samples: 100}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestSamplingContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := Deterministic{G: paperConstraintGame()}
	if _, err := SampleAll(ctx, g, Options{Samples: 1000}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestSamplingStochasticGame(t *testing.T) {
	// A noisy additive game: SampleValue adds zero-mean noise. Estimates
	// must still converge to the true weights.
	w := []float64{0.3, 0.7}
	g := stochasticAdditive{w: w}
	ests, err := SampleAll(context.Background(), g, Options{Samples: 40000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for p := range w {
		if !approxEq(ests[p].Mean, w[p], 0.03) {
			t.Errorf("player %d: %v, want %v", p, ests[p].Mean, w[p])
		}
	}
}

type stochasticAdditive struct{ w []float64 }

func (s stochasticAdditive) NumPlayers() int { return len(s.w) }

func (s stochasticAdditive) SampleValue(_ context.Context, coalition []bool, rng *rand.Rand) (float64, error) {
	v := rng.NormFloat64() * 0.5 // zero-mean noise
	for i, in := range coalition {
		if in {
			v += s.w[i]
		}
	}
	return v, nil
}

func TestEstimateStatistics(t *testing.T) {
	var w welford
	for _, x := range []float64{1, 2, 3, 4} {
		w.add(x)
	}
	e := w.estimate(3)
	if e.Player != 3 || e.N != 4 || !approxEq(e.Mean, 2.5, 1e-12) {
		t.Fatalf("estimate = %+v", e)
	}
	// Sample variance of 1,2,3,4 is 5/3.
	if !approxEq(e.Variance, 5.0/3, 1e-12) {
		t.Errorf("Variance = %v", e.Variance)
	}
	if !approxEq(e.StdErr(), math.Sqrt(5.0/3/4), 1e-12) {
		t.Errorf("StdErr = %v", e.StdErr())
	}
	if !approxEq(e.CI95(), 1.96*e.StdErr(), 1e-12) {
		t.Errorf("CI95 = %v", e.CI95())
	}
	single := welford{}
	single.add(1)
	if !math.IsInf(single.estimate(0).StdErr(), 1) {
		t.Error("StdErr with n<2 must be +Inf")
	}
	if e.String() == "" {
		t.Error("String must render")
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := []float64{0.5, 1.5, -2, 3, 7, 0.25, -1, 4}
	var whole welford
	for _, x := range xs {
		whole.add(x)
	}
	var a, b welford
	for i, x := range xs {
		if i < 3 {
			a.add(x)
		} else {
			b.add(x)
		}
	}
	a.merge(b)
	if a.n != whole.n || !approxEq(a.mean, whole.mean, 1e-12) || !approxEq(a.m2, whole.m2, 1e-9) {
		t.Fatalf("merge mismatch: %+v vs %+v", a, whole)
	}
	var empty welford
	empty.merge(whole)
	if empty.n != whole.n || !approxEq(empty.mean, whole.mean, 1e-12) {
		t.Error("merge into empty")
	}
	cp := whole
	var zero welford
	cp.merge(zero)
	if cp != whole {
		t.Error("merging empty must be a no-op")
	}
}

func TestRandPermIsUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	counts := make([][]int, 4)
	for i := range counts {
		counts[i] = make([]int, 4)
	}
	perm := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		randPerm(rng, perm)
		for pos, p := range perm {
			counts[pos][p]++
		}
	}
	for pos := range counts {
		for p := range counts[pos] {
			frac := float64(counts[pos][p]) / n
			if math.Abs(frac-0.25) > 0.02 {
				t.Errorf("P(perm[%d]=%d) = %v, want 0.25", pos, p, frac)
			}
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	perm := make([]int, 9)
	for i := 0; i < 100; i++ {
		randPerm(rng, perm)
		seen := make([]bool, len(perm))
		for _, p := range perm {
			if p < 0 || p >= len(perm) || seen[p] {
				t.Fatalf("not a permutation: %v", perm)
			}
			seen[p] = true
		}
	}
}

func TestSampleAllParallelMatchesVarianceScale(t *testing.T) {
	// More workers must not bias the estimate (same expected value).
	g := Deterministic{G: paperConstraintGame()}
	one, err := SampleAll(context.Background(), g, Options{Samples: 8000, Seed: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := SampleAll(context.Background(), g, Options{Samples: 8000, Seed: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for p := range one {
		if !approxEq(one[p].Mean, eight[p].Mean, 0.05) {
			t.Errorf("player %d: 1-worker %v vs 8-worker %v", p, one[p].Mean, eight[p].Mean)
		}
	}
}

// TestHoeffdingTinyEpsilonRegression: a very small Epsilon used to overflow
// the Hoeffding sample bound into a negative int (float Inf -> int is
// implementation-defined), silently zeroing the sampling budget. The bound
// must clamp so the caller's Samples budget survives.
func TestHoeffdingTinyEpsilonRegression(t *testing.T) {
	for _, eps := range []float64{1e-300, 1e-12} {
		if h := hoeffdingSamples(eps, 0.05, 1); h <= 0 {
			t.Fatalf("hoeffdingSamples(%g) = %d, must stay positive", eps, h)
		}
	}
	g := Deterministic{G: paperConstraintGame()}
	est, err := SamplePlayer(context.Background(), g, 1, Options{Samples: 50, Seed: 3, Epsilon: 1e-300, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.N != 50 {
		t.Fatalf("tiny epsilon must clamp to the Samples budget: N = %d, want 50", est.N)
	}
}
