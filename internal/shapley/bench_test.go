package shapley

import (
	"context"
	"fmt"
	"testing"
)

func BenchmarkExactSubsets(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		g := randomGame(n, 1)
		b.Run(fmt.Sprintf("players=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ExactSubsets(context.Background(), g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSampleAllPermutations(b *testing.B) {
	g := Deterministic{G: randomGame(16, 2)}
	for _, m := range []int{64, 512} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SampleAll(context.Background(), g, Options{Samples: m, Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSampleAllParallel(b *testing.B) {
	g := Deterministic{G: randomGame(16, 2)}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SampleAll(context.Background(), g, Options{Samples: 512, Seed: int64(i), Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCachedValue(b *testing.B) {
	cached := NewCached(randomGame(16, 3))
	coalition := make([]bool, 16)
	for i := range coalition {
		coalition[i] = i%3 == 0
	}
	// Warm the entry once; the loop measures hit cost.
	if _, err := cached.Value(context.Background(), coalition); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cached.Value(context.Background(), coalition); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedWideValue measures the >64-player hit path — the packed
// []uint64 key replacing the old string fallback. The hit must not allocate.
func BenchmarkCachedWideValue(b *testing.B) {
	n := 96
	cached := NewCached(GameFunc{N: n, Fn: func(_ context.Context, c []bool) (float64, error) {
		s := 0.0
		for i, in := range c {
			if in {
				s += float64(i)
			}
		}
		return s, nil
	}})
	coalition := make([]bool, n)
	for i := range coalition {
		coalition[i] = i%3 == 0
	}
	if _, err := cached.Value(context.Background(), coalition); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cached.Value(context.Background(), coalition); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactInteraction(b *testing.B) {
	g := randomGame(10, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExactInteraction(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
}
