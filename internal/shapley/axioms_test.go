// Metamorphic invariant suite: the Shapley axioms the paper's games must
// satisfy regardless of black box, policy or execution engine. It lives in
// an external test package so it can drive the *real* games (core.CellGame,
// core.GroupGame) through the samplers — the package under test never
// imports core, preserving the black-box boundary.
//
//   - Efficiency: Σ_p φ_p = v(N) − v(∅). Exact computation satisfies it by
//     definition; SampleAll satisfies it *exactly* (up to float summation
//     error) because every permutation walk telescopes to v(N) − v(∅) and
//     every player receives the same sample count. Under the stochastic
//     ReplaceFromColumn policy v(∅) is a random realization per walk, so
//     the sum must land in [v(N)−1, v(N)] for the binary repair games.
//   - Null player: a cell no constraint mentions (outside the target's
//     row) never changes the repair, so its Shapley value is exactly 0
//     under deterministic policies — and every sampled marginal is 0, so
//     the estimate's variance is 0 too.
//
// Each invariant is checked across CellGame and GroupGame, both
// replacement policies, and cached (session engine) vs uncached execution,
// asserting cached ≡ uncached bit-identically along the way.
package shapley_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dc"
	"repro/internal/repair"
	"repro/internal/shapley"
	"repro/internal/table"
)

// axiomFixture is a small instance with a known-dummy column: D appears in
// no constraint, so its cells (outside the target row) are null players.
func axiomFixture(t *testing.T) (*table.Table, []*dc.Constraint, table.CellRef) {
	t.Helper()
	tbl := table.MustFromStrings([]string{"A", "B", "D"}, [][]string{
		{"x", "1", "p"},
		{"x", "2", "q"},
		{"x", "1", "r"},
		{"y", "3", "s"},
	})
	cs, err := dc.ParseSet("C1: !(t1.A = t2.A & t1.B != t2.B)")
	if err != nil {
		t.Fatal(err)
	}
	return tbl, cs, table.CellRef{Row: 1, Col: 1}
}

// axiomExplainers builds the uncached and cached (session-engine)
// explainers over the fixture.
func axiomExplainers(t *testing.T) map[string]*core.Explainer {
	t.Helper()
	tbl, cs, _ := axiomFixture(t)
	alg := repair.NewRuleRepair(cs)
	bare, err := core.NewExplainer(alg, cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(alg, cs, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*core.Explainer{"uncached": bare, "cached": sess.Explainer()}
}

// axiomGames builds the cell game and a column-grouped group game for one
// explainer and policy, both restricted to rosters that include the dummy
// players. It returns the games keyed by kind plus the dummy player index
// of each.
func axiomGames(t *testing.T, e *core.Explainer, policy core.ReplacementPolicy) map[string]struct {
	game  shapley.StochasticGame
	dummy int
} {
	t.Helper()
	ctx := context.Background()
	_, _, cell := axiomFixture(t)
	target, repaired, err := e.Target(ctx, cell)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired {
		t.Fatal("fixture cell must be repaired")
	}

	cellGame := e.NewCellGame(cell, target, policy)
	// Roster: the relevant cells plus one provably-null player — a D cell
	// outside the target's row.
	dummyRef := table.CellRef{Row: 2, Col: 2}
	roster := append(e.RelevantCells(cell), dummyRef)
	cellGame.RestrictPlayers(roster)
	// Enroll deterministic evaluations in the session's shared coalition
	// cache when the explainer carries an engine (a no-op for the uncached
	// explainer and the stochastic policy) — the "cached engine" leg of the
	// metamorphic matrix.
	cellGame.BindSharedCache()
	cellDummy := -1
	for k, ref := range cellGame.Players() {
		if ref == dummyRef {
			cellDummy = k
		}
	}
	if cellDummy < 0 {
		t.Fatal("dummy cell missing from roster")
	}

	groups := e.ColumnGroups(cell)
	groupGame := e.NewGroupGame(cell, target, policy, groups)
	groupGame.BindSharedCache()
	groupDummy := -1
	for k, g := range groupGame.Groups() {
		if g.Name == "col D" {
			groupDummy = k
		}
	}
	if groupDummy < 0 {
		t.Fatal("dummy column group missing")
	}

	return map[string]struct {
		game  shapley.StochasticGame
		dummy int
	}{
		"cell-game":  {cellGame, cellDummy},
		"group-game": {groupGame, groupDummy},
	}
}

// grandAndEmpty evaluates v(N) and v(∅) deterministically (null policy
// required for v(∅); v(N) masks nothing so any policy is deterministic
// there).
func grandAndEmpty(t *testing.T, g shapley.StochasticGame) (vN, vEmpty float64) {
	t.Helper()
	ctx := context.Background()
	n := g.NumPlayers()
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	var err error
	vN, err = g.SampleValue(ctx, full, nil)
	if err != nil {
		t.Fatal(err)
	}
	vEmpty, err = g.(shapley.Game).Value(ctx, make([]bool, n))
	if err != nil {
		t.Fatal(err)
	}
	return vN, vEmpty
}

// TestAxiomEfficiencySampled: Σφ over a SampleAll run telescopes to
// v(N) − v(∅) — exactly under the null policy, within the v(∅)∈[0,1]
// envelope under column sampling.
func TestAxiomEfficiencySampled(t *testing.T) {
	ctx := context.Background()
	opts := shapley.Options{Samples: 30, Seed: 41, Workers: 2}
	for engineKind, e := range axiomExplainers(t) {
		for policyName, policy := range map[string]core.ReplacementPolicy{
			"null": core.ReplaceWithNull, "column": core.ReplaceFromColumn,
		} {
			for gameKind, fx := range axiomGames(t, e, policy) {
				label := engineKind + "/" + policyName + "/" + gameKind
				ests, err := shapley.SampleAll(ctx, fx.game, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				sum := 0.0
				for _, est := range ests {
					sum += est.Mean
					if est.N != opts.Samples {
						t.Fatalf("%s: player %d got %d samples, want %d (efficiency needs uniform counts)",
							label, est.Player, est.N, opts.Samples)
					}
				}
				if policy == core.ReplaceWithNull {
					vN, vEmpty := grandAndEmpty(t, fx.game)
					if math.Abs(sum-(vN-vEmpty)) > 1e-9 {
						t.Fatalf("%s: Σφ = %v, want v(N)−v(∅) = %v", label, sum, vN-vEmpty)
					}
				} else {
					// v(∅) is a per-walk realization in [0, 1] for the binary
					// repair game; v(N) masks nothing and is deterministic.
					full := make([]bool, fx.game.NumPlayers())
					for i := range full {
						full[i] = true
					}
					vN, err := fx.game.SampleValue(ctx, full, nil)
					if err != nil {
						t.Fatal(err)
					}
					if sum > vN+1e-9 || sum < vN-1-1e-9 {
						t.Fatalf("%s: Σφ = %v outside [v(N)−1, v(N)] = [%v, %v]", label, sum, vN-1, vN)
					}
				}
			}
		}
	}
}

// TestAxiomEfficiencyExact: exact subset enumeration satisfies efficiency
// to float precision on both games, cached and uncached.
func TestAxiomEfficiencyExact(t *testing.T) {
	ctx := context.Background()
	for engineKind, e := range axiomExplainers(t) {
		for gameKind, fx := range axiomGames(t, e, core.ReplaceWithNull) {
			label := engineKind + "/" + gameKind
			g := fx.game.(shapley.Game)
			values, err := shapley.ExactSubsets(ctx, g)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			sum := 0.0
			for _, v := range values {
				sum += v
			}
			vN, vEmpty := grandAndEmpty(t, fx.game)
			if math.Abs(sum-(vN-vEmpty)) > 1e-9 {
				t.Fatalf("%s: Σφ = %v, want v(N)−v(∅) = %v", label, sum, vN-vEmpty)
			}
		}
	}
}

// TestAxiomNullPlayer: the dummy cell / dummy column group contributes
// nothing. Exactly zero (mean and variance) under the null policy; under
// column sampling each marginal pairs two independent realizations, so the
// estimate is only statistically zero — bounded well away from the real
// players' values for the fixed seeds.
func TestAxiomNullPlayer(t *testing.T) {
	ctx := context.Background()
	for engineKind, e := range axiomExplainers(t) {
		for policyName, policy := range map[string]core.ReplacementPolicy{
			"null": core.ReplaceWithNull, "column": core.ReplaceFromColumn,
		} {
			for gameKind, fx := range axiomGames(t, e, policy) {
				label := engineKind + "/" + policyName + "/" + gameKind
				ests, err := shapley.SampleAll(ctx, fx.game, shapley.Options{Samples: 60, Seed: 13, Workers: 2})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				est := ests[fx.dummy]
				if policy == core.ReplaceWithNull {
					if est.Mean != 0 || est.Variance != 0 {
						t.Fatalf("%s: null player estimate %+v, want exactly 0 (every marginal 0)", label, est)
					}
				} else if math.Abs(est.Mean) > 0.25 {
					t.Fatalf("%s: null player mean %v, want ≈0", label, est.Mean)
				}
			}
		}
	}
}

// TestAxiomCachedUncachedBitIdentical: the cached engine must not merely
// satisfy the axioms — it must reproduce the uncached estimates
// bit-for-bit across games and policies (the metamorphic relation tying
// this suite to the tentpole's golden contract).
func TestAxiomCachedUncachedBitIdentical(t *testing.T) {
	ctx := context.Background()
	exps := axiomExplainers(t)
	opts := shapley.Options{Samples: 24, Seed: 77, Workers: 3}
	for policyName, policy := range map[string]core.ReplacementPolicy{
		"null": core.ReplaceWithNull, "column": core.ReplaceFromColumn,
	} {
		cached := axiomGames(t, exps["cached"], policy)
		uncached := axiomGames(t, exps["uncached"], policy)
		for gameKind := range cached {
			label := policyName + "/" + gameKind
			a, err := shapley.SampleAll(ctx, cached[gameKind].game, opts)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			b, err := shapley.SampleAll(ctx, uncached[gameKind].game, opts)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s: %d vs %d estimates", label, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: estimate %d: cached %+v vs uncached %+v", label, i, a[i], b[i])
				}
			}
		}
	}
}
