package shapley

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func countingGame(n int, calls *atomic.Int64) Game {
	base := randomGame(n, 77)
	return GameFunc{N: n, Fn: func(ctx context.Context, c []bool) (float64, error) {
		calls.Add(1)
		return base.Value(ctx, c)
	}}
}

func TestCachedPreservesValues(t *testing.T) {
	var calls atomic.Int64
	g := countingGame(5, &calls)
	cached := NewCached(g)
	plain, err := ExactSubsets(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	viaCache, err := ExactSubsets(context.Background(), cached)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if !approxEq(plain[i], viaCache[i], 1e-12) {
			t.Errorf("player %d: %v vs %v", i, plain[i], viaCache[i])
		}
	}
}

func TestCachedDeduplicatesCalls(t *testing.T) {
	var calls atomic.Int64
	cached := NewCached(countingGame(4, &calls))
	// ExactOne for every player revisits the same 16 coalitions.
	for p := 0; p < 4; p++ {
		if _, err := ExactOne(context.Background(), cached, p); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got != 16 {
		t.Errorf("underlying calls = %d, want 16 (2^4 distinct coalitions)", got)
	}
	hits, misses := cached.Stats()
	if misses != 16 {
		t.Errorf("misses = %d, want 16", misses)
	}
	// 4 players × 2^3 subsets × 2 evals = 64 total lookups; 48 are hits.
	if hits != 48 {
		t.Errorf("hits = %d, want 48", hits)
	}
}

func TestCachedErrorNotCached(t *testing.T) {
	boom := errors.New("boom")
	fail := true
	g := GameFunc{N: 2, Fn: func(context.Context, []bool) (float64, error) {
		if fail {
			return 0, boom
		}
		return 1, nil
	}}
	cached := NewCached(g)
	coalition := []bool{true, false}
	if _, err := cached.Value(context.Background(), coalition); !errors.Is(err, boom) {
		t.Fatal("error must propagate")
	}
	fail = false
	v, err := cached.Value(context.Background(), coalition)
	if err != nil || v != 1 {
		t.Fatalf("after recovery: %v, %v — errors must not be cached", v, err)
	}
}

func TestCachedConcurrentAccess(t *testing.T) {
	var calls atomic.Int64
	cached := NewCached(countingGame(8, &calls))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			coalition := make([]bool, 8)
			for i := 0; i < 500; i++ {
				for b := 0; b < 8; b++ {
					coalition[b] = (i>>uint(b))&1 == 1
				}
				if _, err := cached.Value(context.Background(), coalition); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if calls.Load() > 8*256 {
		t.Errorf("unexpected call volume %d", calls.Load())
	}
	if cached.NumPlayers() != 8 {
		t.Error("NumPlayers must delegate")
	}
}

func TestAppendPackedWords(t *testing.T) {
	a := AppendPacked(nil, []bool{true, false, true})
	if len(a) != 1 || a[0] != 0b101 {
		t.Errorf("AppendPacked = %b", a)
	}
	if AppendPacked(nil, nil) != nil {
		t.Error("empty coalition must pack to no words")
	}
	// 65 players spill into a second word.
	long := make([]bool, 65)
	long[64] = true
	words := AppendPacked(nil, long)
	if len(words) != 2 || words[0] != 0 || words[1] != 1 {
		t.Errorf("bit 64 must land in word 1: %b", words)
	}
	// Reuse must overwrite, not append blindly.
	scratch := make([]uint64, 0, 4)
	w1 := AppendPacked(scratch, long)
	w2 := AppendPacked(w1[:0], []bool{true})
	if len(w2) != 1 || w2[0] != 1 {
		t.Errorf("scratch reuse broken: %b", w2)
	}
	// Distinct coalitions must hash apart (not a guarantee, but these tiny
	// cases must not collide) and equal ones identically.
	h1 := HashCoalition([]bool{true, false, true})
	h2 := HashCoalition([]bool{true, true, true})
	h3 := HashCoalition([]bool{true, false, true})
	if h1 == h2 {
		t.Error("distinct coalitions hashed identically")
	}
	if h1 != h3 {
		t.Error("equal coalitions must hash identically")
	}
	if HashCoalition(long) == HashCoalition(make([]bool, 65)) {
		t.Error("bit 64 must be represented in the hash")
	}
}

// TestCachedWideGame exercises the >64-player fallback (string keys) and
// checks packed/wide keys agree with the underlying game.
func TestCachedWideGame(t *testing.T) {
	n := 70
	g := GameFunc{N: n, Fn: func(_ context.Context, c []bool) (float64, error) {
		s := 0.0
		for i, in := range c {
			if in {
				s += float64(i + 1)
			}
		}
		return s, nil
	}}
	cached := NewCached(g)
	coalition := make([]bool, n)
	coalition[0], coalition[65], coalition[69] = true, true, true
	want := 1.0 + 66 + 70
	for round := 0; round < 2; round++ {
		v, err := cached.Value(context.Background(), coalition)
		if err != nil || v != want {
			t.Fatalf("round %d: %v, %v (want %v)", round, v, err, want)
		}
	}
	hits, misses := cached.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits %d misses %d, want 1/1", hits, misses)
	}
}

// TestCachedWideHitAllocFree pins the satellite contract of the packed
// []uint64 key: a wide-coalition cache hit allocates nothing (the old
// string fallback materialized a key string per lookup).
func TestCachedWideHitAllocFree(t *testing.T) {
	n := 100
	cached := NewCached(GameFunc{N: n, Fn: func(context.Context, []bool) (float64, error) {
		return 1, nil
	}})
	coalition := make([]bool, n)
	for i := range coalition {
		coalition[i] = i%2 == 0
	}
	if _, err := cached.Value(context.Background(), coalition); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := cached.Value(context.Background(), coalition); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("wide cache hit allocates %v objects per lookup, want 0", allocs)
	}
}

// TestPackCoalition checks the uint64 key is injective over distinct
// memberships and matches the byte-string key's bits.
func TestPackCoalition(t *testing.T) {
	a := []bool{true, false, true, false, false, false, false, false, true}
	if packCoalition(a) != 0b100000101 {
		t.Errorf("packCoalition = %b", packCoalition(a))
	}
	if packCoalition(nil) != 0 {
		t.Error("empty coalition must pack to 0")
	}
	full := make([]bool, 64)
	full[63] = true
	if packCoalition(full) != 1<<63 {
		t.Error("bit 63 must be representable")
	}
}

// TestCachedShardedConcurrency hammers all shards from many goroutines; the
// race detector plus deterministic totals validate the striping.
func TestCachedShardedConcurrency(t *testing.T) {
	var calls atomic.Int64
	cached := NewCached(countingGame(12, &calls))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			coalition := make([]bool, 12)
			for i := 0; i < 4096; i++ {
				for b := 0; b < 12; b++ {
					coalition[b] = (i>>uint(b))&1 == 1
				}
				if _, err := cached.Value(context.Background(), coalition); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := cached.Stats()
	if hits+misses != 8*4096 {
		t.Errorf("lookups = %d, want %d", hits+misses, 8*4096)
	}
	if misses < 4096 || calls.Load() > 8*4096 {
		t.Errorf("misses %d calls %d out of range", misses, calls.Load())
	}
}
