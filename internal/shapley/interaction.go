package shapley

import (
	"context"
	"fmt"
)

// ExactInteraction computes the pairwise Shapley interaction index
// (Grabisch & Roubens 1999) for every pair of players:
//
//	I(i,j) = Σ_{S ⊆ N\{i,j}} |S|!(n-|S|-2)!/(n-1)! · Δ_{ij}v(S)
//	Δ_{ij}v(S) = v(S∪{i,j}) − v(S∪{i}) − v(S∪{j}) + v(S)
//
// A positive I(i,j) means the players are complements (they achieve
// together what neither achieves alone — the paper's {C1, C2} pair), a
// negative value means substitutes (either suffices — C3 against the
// {C1, C2} pathway), and zero means independence.
//
// The result is a symmetric matrix with I[i][i] = 0 by convention. Cost is
// one pass over all 2^n coalitions, like ExactSubsets.
func ExactInteraction(ctx context.Context, g Game) ([][]float64, error) {
	n := g.NumPlayers()
	if n == 0 {
		return nil, nil
	}
	if n > maxExactSubsetPlayers {
		return nil, fmt.Errorf("%w: %d players (max %d)", ErrTooManyPlayers, n, maxExactSubsetPlayers)
	}
	// Materialize all values once (2^n floats).
	values := make([]float64, 1<<uint(n))
	coalition := make([]bool, n)
	for mask := range values {
		if mask%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for i := 0; i < n; i++ {
			coalition[i] = mask&(1<<uint(i)) != 0
		}
		v, err := g.Value(ctx, coalition)
		if err != nil {
			return nil, fmt.Errorf("shapley: evaluating coalition %b: %w", mask, err)
		}
		values[mask] = v
	}

	// w2[s] = s!(n-s-2)!/(n-1)! for |S| = s over S ⊆ N \ {i,j}.
	w2 := make([]float64, n-1)
	if n >= 2 {
		// w2[0] = (n-2)!/(n-1)! = 1/(n-1).
		w2[0] = 1 / float64(n-1)
		for s := 1; s <= n-2; s++ {
			w2[s] = w2[s-1] * float64(s) / float64(n-1-s)
		}
	}

	inter := make([][]float64, n)
	for i := range inter {
		inter[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for j := i + 1; j < n; j++ {
			bi, bj := 1<<uint(i), 1<<uint(j)
			var sum float64
			for mask := range values {
				if mask&bi != 0 || mask&bj != 0 {
					continue
				}
				s := popcount(mask)
				delta := values[mask|bi|bj] - values[mask|bi] - values[mask|bj] + values[mask]
				sum += w2[s] * delta
			}
			inter[i][j] = sum
			inter[j][i] = sum
		}
	}
	return inter, nil
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// ExactBanzhaf computes the (non-normalized) Banzhaf value of every player:
//
//	B(i) = 1/2^(n-1) · Σ_{S ⊆ N\{i}} (v(S∪{i}) − v(S))
//
// Banzhaf weighs every coalition equally where Shapley weighs by size; the
// two orderings usually agree but can diverge, which makes Banzhaf a cheap
// sanity ablation for the explanation ranking.
func ExactBanzhaf(ctx context.Context, g Game) ([]float64, error) {
	n := g.NumPlayers()
	if n == 0 {
		return nil, nil
	}
	if n > maxExactSubsetPlayers {
		return nil, fmt.Errorf("%w: %d players (max %d)", ErrTooManyPlayers, n, maxExactSubsetPlayers)
	}
	banzhaf := make([]float64, n)
	coalition := make([]bool, n)
	total := 1 << uint(n)
	for mask := 0; mask < total; mask++ {
		if mask%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for i := 0; i < n; i++ {
			coalition[i] = mask&(1<<uint(i)) != 0
		}
		v, err := g.Value(ctx, coalition)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if coalition[i] {
				banzhaf[i] += v
			} else {
				banzhaf[i] -= v
			}
		}
	}
	scale := 1 / float64(total/2)
	for i := range banzhaf {
		banzhaf[i] *= scale
	}
	return banzhaf, nil
}
