package shapley

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
)

// StochasticGame is a game whose characteristic function is itself an
// expectation approximated by sampling — the situation of Example 2.5,
// where a cell outside the coalition is replaced by a random draw from its
// column distribution. The sampler draws one realization per visit; the
// Monte-Carlo average then estimates the Shapley value of the expected
// game (Strumbelj & Kononenko, KAIS 2014).
type StochasticGame interface {
	// NumPlayers returns n; players are identified as 0..n-1.
	NumPlayers() int
	// SampleValue evaluates one random realization of the characteristic
	// function on the coalition, drawing any required randomness from rng.
	SampleValue(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error)
}

// Deterministic lifts a deterministic Game into a StochasticGame (the rng
// is ignored).
type Deterministic struct {
	// G is the underlying deterministic game.
	G Game
}

// NumPlayers implements StochasticGame.
func (d Deterministic) NumPlayers() int { return d.G.NumPlayers() }

// SampleValue implements StochasticGame.
func (d Deterministic) SampleValue(ctx context.Context, coalition []bool, _ *rand.Rand) (float64, error) {
	return d.G.Value(ctx, coalition)
}

// Estimate is the Monte-Carlo estimate of one player's Shapley value.
type Estimate struct {
	// Player is the player index.
	Player int
	// Mean is the sample mean of observed marginal contributions — the
	// Shapley estimate φ/m of Example 2.5.
	Mean float64
	// Variance is the unbiased sample variance of the marginals.
	Variance float64
	// N is the number of marginal samples.
	N int
}

// StdErr returns the standard error of the mean.
func (e Estimate) StdErr() float64 {
	if e.N < 2 {
		return math.Inf(1)
	}
	return math.Sqrt(e.Variance / float64(e.N))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval around Mean.
func (e Estimate) CI95() float64 { return 1.96 * e.StdErr() }

// String renders the estimate for logs.
func (e Estimate) String() string {
	return fmt.Sprintf("player %d: %.4f ± %.4f (n=%d)", e.Player, e.Mean, e.CI95(), e.N)
}

// Options configures the sampler.
type Options struct {
	// Samples is m: the number of sampled permutations. For SampleAll each
	// permutation yields one marginal per player; for SamplePlayer each
	// yields one marginal for that player. Must be positive.
	Samples int
	// Workers is the parallel fan-out; 0 means GOMAXPROCS. Workers only
	// changes scheduling, never results: iterations are partitioned into
	// chunks whose size and RNG streams depend only on (Samples, Seed), so
	// estimates are bit-identical for every Workers value.
	Workers int
	// Seed drives all randomness; runs with equal options are reproducible.
	Seed int64
	// Epsilon, when positive, enables early stopping: sampling for a
	// player stops once the Hoeffding bound guarantees the estimate is
	// within Epsilon of the true value of the sampled game with
	// probability 1−Delta. Requires marginals in [-Range, Range].
	Epsilon float64
	// Delta is the early-stopping failure probability (default 0.05).
	Delta float64
	// Range bounds |marginal| for early stopping (default 1, exact for the
	// binary repair games of the paper).
	Range float64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Delta <= 0 {
		o.Delta = 0.05
	}
	if o.Range <= 0 {
		o.Range = 1
	}
	return o
}

// hoeffdingSamples returns the m sufficient for P(|mean−μ| ≥ ε) ≤ δ with
// marginals in [−r, r]: m ≥ (2r²/ε²)·ln(2/δ). Tiny ε overflows the float
// bound past what an int can hold (converting +Inf to int is
// implementation-defined and lands negative on amd64); the result is
// clamped to MaxInt so callers keep their own Samples budget instead of
// computing a negative one.
func hoeffdingSamples(eps, delta, r float64) int {
	m := math.Ceil(2 * r * r / (eps * eps) * math.Log(2/delta))
	if math.IsNaN(m) || m >= float64(math.MaxInt) {
		return math.MaxInt
	}
	if m < 1 {
		return 1
	}
	return int(m)
}

// welford accumulates mean and variance in one pass (numerically stable).
type welford struct {
	n    int
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) merge(o welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

func (w *welford) estimate(player int) Estimate {
	e := Estimate{Player: player, Mean: w.mean, N: w.n}
	if w.n > 1 {
		e.Variance = w.m2 / float64(w.n-1)
	}
	return e
}

// marginalState is the per-worker scratch of the one-marginal-per-sample
// samplers (SamplePlayer, TopK): a permutation buffer, a coalition/prefix
// buffer, and — for incremental games — one borrowed walk reused across
// every chunk the worker runs, with the membership mirror that lets a
// DeltaWalk morph coalition to coalition instead of rebuilding from ∅.
type marginalState struct {
	perm      []int
	coalition []bool
	walk      CoalitionWalk
	morph     *walkMorph
}

// newMarginalState builds one worker's scratch for game g.
func newMarginalState(g StochasticGame) *marginalState {
	n := g.NumPlayers()
	st := &marginalState{perm: make([]int, n), coalition: make([]bool, n)}
	if st.walk = walkOrNil(g); st.walk != nil {
		if d, ok := st.walk.(DeltaWalk); ok {
			st.morph = newWalkMorph(d, n)
		}
	}
	return st
}

func (st *marginalState) close() {
	if st.walk != nil {
		st.walk.Close()
	}
}

// marginal draws one marginal contribution for player under perm, through
// the fastest protocol the game supports: coalition morphing (DeltaWalk),
// the prefix walk, or the generic mask rebuild. All three return the exact
// same value and consume rng identically (the equivalence contracts on
// CoalitionWalk and DeltaWalk).
//
//lint:hotpath
func (st *marginalState) marginal(ctx context.Context, g StochasticGame, perm []int, player int, rng *rand.Rand) (float64, error) {
	if st.morph != nil {
		return st.morph.marginal(ctx, perm, player, rng)
	}
	if st.walk != nil {
		return walkMarginal(ctx, st.walk, perm, player, rng)
	}
	coalition := st.coalition
	for i := range coalition {
		coalition[i] = false
	}
	for _, p := range perm {
		if p == player {
			break
		}
		coalition[p] = true
	}
	without, err := g.SampleValue(ctx, coalition, rng)
	if err != nil {
		return 0, err
	}
	coalition[player] = true
	with, err := g.SampleValue(ctx, coalition, rng)
	if err != nil {
		return 0, err
	}
	return with - without, nil
}

// SamplePlayer estimates one player's Shapley value with the
// Strumbelj–Kononenko procedure of Example 2.5: repeat m times — draw a
// random permutation of the players, form the coalition of players
// preceding the target, evaluate the game with and without the target, and
// average the differences.
func SamplePlayer(ctx context.Context, g StochasticGame, player int, opts Options) (Estimate, error) {
	opts = opts.withDefaults()
	n := g.NumPlayers()
	if player < 0 || player >= n {
		return Estimate{}, fmt.Errorf("shapley: player %d out of range 0..%d", player, n-1)
	}
	if opts.Samples <= 0 {
		return Estimate{}, fmt.Errorf("shapley: Samples must be positive, got %d", opts.Samples)
	}
	budget := opts.Samples
	if opts.Epsilon > 0 {
		if h := hoeffdingSamples(opts.Epsilon, opts.Delta, opts.Range); h < budget {
			budget = h
		}
	}
	accs, err := fanOut(ctx, opts, budget, 1,
		func() *marginalState { return newMarginalState(g) },
		(*marginalState).close,
		func(ctx context.Context, st *marginalState, rng *rand.Rand, iters int, acc []welford) error {
			for it := 0; it < iters; it++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				randPerm(rng, st.perm)
				m, err := st.marginal(ctx, g, st.perm, player, rng)
				if err != nil {
					return err
				}
				acc[0].add(m)
			}
			return nil
		})
	if err != nil {
		return Estimate{}, err
	}
	return accs[0].estimate(player), nil
}

// SampleAll estimates every player's Shapley value by permutation walks
// (Castro, Gómez & Tejada 2009): each sampled permutation is traversed
// once, evaluating the game on each prefix, which yields one marginal
// contribution for every player at n+1 evaluations per permutation —
// a factor-2n saving over running SamplePlayer per player.
func SampleAll(ctx context.Context, g StochasticGame, opts Options) ([]Estimate, error) {
	opts = opts.withDefaults()
	n := g.NumPlayers()
	if n == 0 {
		return nil, nil
	}
	if opts.Samples <= 0 {
		return nil, fmt.Errorf("shapley: Samples must be positive, got %d", opts.Samples)
	}
	accs, err := fanOut(ctx, opts, opts.Samples, n,
		func() *marginalState { return newMarginalState(g) },
		(*marginalState).close,
		func(ctx context.Context, st *marginalState, rng *rand.Rand, iters int, acc []welford) error {
			perm := st.perm
			if walk := st.walk; walk != nil {
				// Incremental fast path: the prefix walk grows by exactly one
				// player per step, so each step hands the game a single-cell
				// delta instead of a full coalition mask.
				for it := 0; it < iters; it++ {
					if err := ctx.Err(); err != nil {
						return err
					}
					randPerm(rng, perm)
					walk.Reset()
					st.morph.invalidate()
					prev, err := walk.Value(ctx, rng)
					if err != nil {
						return err
					}
					for _, p := range perm {
						walk.Include(p)
						v, err := walk.Value(ctx, rng)
						if err != nil {
							return err
						}
						acc[p].add(v - prev)
						prev = v
					}
				}
				return nil
			}
			coalition := st.coalition
			for it := 0; it < iters; it++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				randPerm(rng, perm)
				for i := range coalition {
					coalition[i] = false
				}
				prev, err := g.SampleValue(ctx, coalition, rng)
				if err != nil {
					return err
				}
				for _, p := range perm {
					coalition[p] = true
					v, err := g.SampleValue(ctx, coalition, rng)
					if err != nil {
						return err
					}
					acc[p].add(v - prev)
					prev = v
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]Estimate, n)
	for i := range out {
		out[i] = accs[i].estimate(i)
	}
	return out, nil
}

// Chunking constants for fanOut's deterministic schedule.
const (
	// minChunkIters keeps tiny budgets from collapsing into one stream,
	// which would serialize small interactive runs (m=8 still splits in
	// two), while bounding the per-chunk reseed overhead on mid budgets.
	minChunkIters = 4
	// maxFanChunks bounds the chunk-grid accumulator memory (chunks ×
	// players welfords) on huge budgets while leaving far more chunks than
	// any realistic worker count.
	maxFanChunks = 128
)

// fanChunk returns the chunk size for an iteration budget. It is a pure
// function of the budget — never of Workers — which is what makes the
// estimates independent of the fan-out.
func fanChunk(iters int) int {
	size := minChunkIters
	if c := (iters + maxFanChunks - 1) / maxFanChunks; c > size {
		size = c
	}
	return size
}

// fanOut splits iters into a deterministic chunk grid and schedules the
// chunks onto workers. Each chunk owns an RNG stream seeded by its chunk
// index and its own accumulators, and chunk accumulators are merged in
// chunk order after the last chunk completes — so the result is a pure
// function of (iters, Seed), bit-identical for every Workers value (the
// determinism contract CI's smoke job asserts). setup builds one reusable
// per-worker state (scratch buffers, a borrowed coalition walk) that
// amortizes across every chunk the worker runs; teardown releases it.
func fanOut[S any](ctx context.Context, opts Options, iters, players int, setup func() S, teardown func(S), work func(ctx context.Context, st S, rng *rand.Rand, iters int, acc []welford) error) ([]welford, error) {
	if iters <= 0 {
		return make([]welford, players), nil
	}
	size := fanChunk(iters)
	chunks := (iters + size - 1) / size
	workers := opts.Workers
	if workers > chunks {
		workers = chunks
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Streaming chunk-ordered merge: chunk c folds into the result as soon
	// as every chunk before it has — still strictly in chunk order (the
	// determinism invariant) — so retained accumulator memory is bounded by
	// the out-of-order completion window (≈ workers), not the whole grid,
	// and a worker whose chunk merges inline keeps reusing one buffer.
	merged := make([]welford, players)
	pending := make([][]welford, chunks)
	var mergeMu sync.Mutex
	nextMerge := 0
	// finish hands chunk c's accumulators to the merger; it reports whether
	// acc was consumed inline (the caller may then reuse the buffer).
	finish := func(c int, acc []welford) bool {
		mergeMu.Lock()
		defer mergeMu.Unlock()
		if c != nextMerge {
			pending[c] = acc
			return false
		}
		for p := range merged {
			merged[p].merge(acc[p])
		}
		nextMerge++
		//lint:allow ctxflow the drain of already-completed chunks under the merge lock is bounded by the chunk count, not sample-scaled
		for nextMerge < chunks && pending[nextMerge] != nil {
			for p := range merged {
				merged[p].merge(pending[nextMerge][p])
			}
			pending[nextMerge] = nil
			nextMerge++
		}
		return true
	}

	errs := make([]error, workers)
	var panicked atomic.Pointer[panicValue]
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A panic in the game (a black box bug, or an injected fault)
			// must not crash the process from a goroutine nobody can
			// recover: capture it, cancel the peers, and re-raise it on
			// the caller's goroutine after the fan-out drains.
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &panicValue{v: r})
					cancel()
				}
			}()
			st := setup()
			defer teardown(st)
			faults.Hit(faults.SiteWorkerStart)
			rng := rand.New(&splitmix{})
			var acc []welford
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				share := size
				if c == chunks-1 {
					share = iters - size*(chunks-1)
				}
				if acc == nil {
					acc = make([]welford, players)
				} else {
					clear(acc)
				}
				// Golden-ratio stride (0x9E3779B97F4A7C15 as a signed 64-bit
				// value) decorrelates per-chunk RNG streams; SplitMix64
				// reseeds in constant time, so the per-chunk reseed costs
				// nothing even for minimum-size chunks.
				const streamStride = -0x61C8864680B583EB
				rng.Seed(opts.Seed + int64(c)*streamStride)
				if err := work(ctx, st, rng, share, acc); err != nil {
					errs[w] = err
					cancel()
					return
				}
				if !finish(c, acc) {
					acc = nil // handed off to the merger
				}
			}
		}(w)
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.v)
	}
	// A failing worker cancels its peers, so peers report context.Canceled;
	// surface the root cause in preference to the induced cancellations.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return merged, nil
}

// panicValue carries a recovered worker panic to the caller goroutine.
type panicValue struct{ v any }

// splitmix is Vigna's SplitMix64 as a math/rand source: the chunk grid
// reseeds its stream once per chunk, and math/rand's default lagged
// Fibonacci source pays a ~607-word reinitialization per Seed — more than
// a minimum-size chunk's entire sampling work on fast games. SplitMix64
// seeds in O(1), draws faster, and passes BigCrush; the stride-decorrelated
// chunk seeds give it well-separated streams.
type splitmix struct{ s uint64 }

// Seed implements rand.Source. The raw seed is scrambled through a
// 64-bit finalizer (MurmurHash3) before becoming the state: chunk grids
// hand in arithmetic seed progressions, and SplitMix64's state walk is
// itself arithmetic — unscrambled, two chunks' streams could be (and with
// a gamma-multiple stride, provably were) the same sequence at a small
// offset, collapsing the effective sample count.
func (s *splitmix) Seed(seed int64) {
	z := uint64(seed)
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	s.s = z ^ (z >> 33)
}

// Uint64 implements rand.Source64.
func (s *splitmix) Uint64() uint64 {
	s.s += 0x9E3779B97F4A7C15
	z := s.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

// randPerm fills perm with a uniformly random permutation of 0..len-1
// (inside-out Fisher–Yates, no allocation).
func randPerm(rng *rand.Rand, perm []int) {
	for i := range perm {
		j := rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
}
