package shapley

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// StochasticGame is a game whose characteristic function is itself an
// expectation approximated by sampling — the situation of Example 2.5,
// where a cell outside the coalition is replaced by a random draw from its
// column distribution. The sampler draws one realization per visit; the
// Monte-Carlo average then estimates the Shapley value of the expected
// game (Strumbelj & Kononenko, KAIS 2014).
type StochasticGame interface {
	// NumPlayers returns n; players are identified as 0..n-1.
	NumPlayers() int
	// SampleValue evaluates one random realization of the characteristic
	// function on the coalition, drawing any required randomness from rng.
	SampleValue(ctx context.Context, coalition []bool, rng *rand.Rand) (float64, error)
}

// Deterministic lifts a deterministic Game into a StochasticGame (the rng
// is ignored).
type Deterministic struct {
	// G is the underlying deterministic game.
	G Game
}

// NumPlayers implements StochasticGame.
func (d Deterministic) NumPlayers() int { return d.G.NumPlayers() }

// SampleValue implements StochasticGame.
func (d Deterministic) SampleValue(ctx context.Context, coalition []bool, _ *rand.Rand) (float64, error) {
	return d.G.Value(ctx, coalition)
}

// Estimate is the Monte-Carlo estimate of one player's Shapley value.
type Estimate struct {
	// Player is the player index.
	Player int
	// Mean is the sample mean of observed marginal contributions — the
	// Shapley estimate φ/m of Example 2.5.
	Mean float64
	// Variance is the unbiased sample variance of the marginals.
	Variance float64
	// N is the number of marginal samples.
	N int
}

// StdErr returns the standard error of the mean.
func (e Estimate) StdErr() float64 {
	if e.N < 2 {
		return math.Inf(1)
	}
	return math.Sqrt(e.Variance / float64(e.N))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval around Mean.
func (e Estimate) CI95() float64 { return 1.96 * e.StdErr() }

// String renders the estimate for logs.
func (e Estimate) String() string {
	return fmt.Sprintf("player %d: %.4f ± %.4f (n=%d)", e.Player, e.Mean, e.CI95(), e.N)
}

// Options configures the sampler.
type Options struct {
	// Samples is m: the number of sampled permutations. For SampleAll each
	// permutation yields one marginal per player; for SamplePlayer each
	// yields one marginal for that player. Must be positive.
	Samples int
	// Workers is the parallel fan-out; 0 means GOMAXPROCS.
	Workers int
	// Seed drives all randomness; runs with equal options are reproducible.
	Seed int64
	// Epsilon, when positive, enables early stopping: sampling for a
	// player stops once the Hoeffding bound guarantees the estimate is
	// within Epsilon of the true value of the sampled game with
	// probability 1−Delta. Requires marginals in [-Range, Range].
	Epsilon float64
	// Delta is the early-stopping failure probability (default 0.05).
	Delta float64
	// Range bounds |marginal| for early stopping (default 1, exact for the
	// binary repair games of the paper).
	Range float64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Delta <= 0 {
		o.Delta = 0.05
	}
	if o.Range <= 0 {
		o.Range = 1
	}
	return o
}

// hoeffdingSamples returns the m sufficient for P(|mean−μ| ≥ ε) ≤ δ with
// marginals in [−r, r]: m ≥ (2r²/ε²)·ln(2/δ). Tiny ε overflows the float
// bound past what an int can hold (converting +Inf to int is
// implementation-defined and lands negative on amd64); the result is
// clamped to MaxInt so callers keep their own Samples budget instead of
// computing a negative one.
func hoeffdingSamples(eps, delta, r float64) int {
	m := math.Ceil(2 * r * r / (eps * eps) * math.Log(2/delta))
	if math.IsNaN(m) || m >= float64(math.MaxInt) {
		return math.MaxInt
	}
	if m < 1 {
		return 1
	}
	return int(m)
}

// welford accumulates mean and variance in one pass (numerically stable).
type welford struct {
	n    int
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) merge(o welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

func (w *welford) estimate(player int) Estimate {
	e := Estimate{Player: player, Mean: w.mean, N: w.n}
	if w.n > 1 {
		e.Variance = w.m2 / float64(w.n-1)
	}
	return e
}

// SamplePlayer estimates one player's Shapley value with the
// Strumbelj–Kononenko procedure of Example 2.5: repeat m times — draw a
// random permutation of the players, form the coalition of players
// preceding the target, evaluate the game with and without the target, and
// average the differences.
func SamplePlayer(ctx context.Context, g StochasticGame, player int, opts Options) (Estimate, error) {
	opts = opts.withDefaults()
	n := g.NumPlayers()
	if player < 0 || player >= n {
		return Estimate{}, fmt.Errorf("shapley: player %d out of range 0..%d", player, n-1)
	}
	if opts.Samples <= 0 {
		return Estimate{}, fmt.Errorf("shapley: Samples must be positive, got %d", opts.Samples)
	}
	budget := opts.Samples
	if opts.Epsilon > 0 {
		if h := hoeffdingSamples(opts.Epsilon, opts.Delta, opts.Range); h < budget {
			budget = h
		}
	}
	accs, err := fanOut(ctx, opts, budget, func(ctx context.Context, rng *rand.Rand, iters int, acc []welford) error {
		perm := make([]int, n)
		if walk := walkOrNil(g); walk != nil {
			defer walk.Close()
			for it := 0; it < iters; it++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				randPerm(rng, perm)
				m, err := walkMarginal(ctx, walk, perm, player, rng)
				if err != nil {
					return err
				}
				acc[0].add(m)
			}
			return nil
		}
		coalition := make([]bool, n)
		for it := 0; it < iters; it++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			randPerm(rng, perm)
			for i := range coalition {
				coalition[i] = false
			}
			for _, p := range perm {
				if p == player {
					break
				}
				coalition[p] = true
			}
			without, err := g.SampleValue(ctx, coalition, rng)
			if err != nil {
				return err
			}
			coalition[player] = true
			with, err := g.SampleValue(ctx, coalition, rng)
			if err != nil {
				return err
			}
			acc[0].add(with - without)
		}
		return nil
	}, 1)
	if err != nil {
		return Estimate{}, err
	}
	return accs[0].estimate(player), nil
}

// SampleAll estimates every player's Shapley value by permutation walks
// (Castro, Gómez & Tejada 2009): each sampled permutation is traversed
// once, evaluating the game on each prefix, which yields one marginal
// contribution for every player at n+1 evaluations per permutation —
// a factor-2n saving over running SamplePlayer per player.
func SampleAll(ctx context.Context, g StochasticGame, opts Options) ([]Estimate, error) {
	opts = opts.withDefaults()
	n := g.NumPlayers()
	if n == 0 {
		return nil, nil
	}
	if opts.Samples <= 0 {
		return nil, fmt.Errorf("shapley: Samples must be positive, got %d", opts.Samples)
	}
	accs, err := fanOut(ctx, opts, opts.Samples, func(ctx context.Context, rng *rand.Rand, iters int, acc []welford) error {
		perm := make([]int, n)
		if walk := walkOrNil(g); walk != nil {
			// Incremental fast path: the prefix walk grows by exactly one
			// player per step, so each step hands the game a single-cell
			// delta instead of a full coalition mask.
			defer walk.Close()
			for it := 0; it < iters; it++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				randPerm(rng, perm)
				walk.Reset()
				prev, err := walk.Value(ctx, rng)
				if err != nil {
					return err
				}
				for _, p := range perm {
					walk.Include(p)
					v, err := walk.Value(ctx, rng)
					if err != nil {
						return err
					}
					acc[p].add(v - prev)
					prev = v
				}
			}
			return nil
		}
		coalition := make([]bool, n)
		for it := 0; it < iters; it++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			randPerm(rng, perm)
			for i := range coalition {
				coalition[i] = false
			}
			prev, err := g.SampleValue(ctx, coalition, rng)
			if err != nil {
				return err
			}
			for _, p := range perm {
				coalition[p] = true
				v, err := g.SampleValue(ctx, coalition, rng)
				if err != nil {
					return err
				}
				acc[p].add(v - prev)
				prev = v
			}
		}
		return nil
	}, n)
	if err != nil {
		return nil, err
	}
	out := make([]Estimate, n)
	for i := range out {
		out[i] = accs[i].estimate(i)
	}
	return out, nil
}

// fanOut splits iters across workers, each with an independent RNG stream,
// and merges the per-player accumulators.
func fanOut(ctx context.Context, opts Options, iters int, work func(ctx context.Context, rng *rand.Rand, iters int, acc []welford) error, players int) ([]welford, error) {
	workers := opts.Workers
	if workers > iters {
		workers = iters
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	perWorker := make([][]welford, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := iters / workers
		if w < iters%workers {
			share++
		}
		perWorker[w] = make([]welford, players)
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			// Golden-ratio stride (0x9E3779B97F4A7C15 as a signed 64-bit
			// value) decorrelates per-worker RNG streams.
			const streamStride = -0x61C8864680B583EB
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*streamStride))
			if err := work(ctx, rng, share, perWorker[w]); err != nil {
				errs[w] = err
				cancel()
			}
		}(w, share)
	}
	wg.Wait()
	// A failing worker cancels its peers, so peers report context.Canceled;
	// surface the root cause in preference to the induced cancellations.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	merged := make([]welford, players)
	for w := range perWorker {
		for p := range merged {
			merged[p].merge(perWorker[w][p])
		}
	}
	return merged, nil
}

// randPerm fills perm with a uniformly random permutation of 0..len-1
// (inside-out Fisher–Yates, no allocation).
func randPerm(rng *rand.Rand, perm []int) {
	for i := range perm {
		j := rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
}
