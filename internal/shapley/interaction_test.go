package shapley

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestExactInteractionPaperGame(t *testing.T) {
	// The structure of Example 2.3: {0,1} are perfect complements (the
	// C1+C2 pathway), and each is a substitute of the veto-ish player 2
	// (C3). Player 3 is a dummy: all its interactions are 0.
	inter, err := ExactInteraction(context.Background(), paperConstraintGame())
	if err != nil {
		t.Fatal(err)
	}
	if inter[0][1] <= 0 {
		t.Errorf("I(C1,C2) = %v, want > 0 (complements)", inter[0][1])
	}
	if inter[0][2] >= 0 || inter[1][2] >= 0 {
		t.Errorf("I(C1,C3) = %v, I(C2,C3) = %v, want < 0 (substitutes)", inter[0][2], inter[1][2])
	}
	for i := 0; i < 4; i++ {
		if inter[i][3] != 0 || inter[3][i] != 0 {
			t.Errorf("dummy interactions must be 0, got I(%d,3) = %v", i, inter[i][3])
		}
		if inter[i][i] != 0 {
			t.Errorf("diagonal must be 0")
		}
	}
	// Symmetry of the matrix.
	for i := range inter {
		for j := range inter {
			if inter[i][j] != inter[j][i] {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

func TestExactInteractionAdditiveIsZero(t *testing.T) {
	// Additive games have no interactions at all.
	inter, err := ExactInteraction(context.Background(), additiveGame([]float64{1, -2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range inter {
		for j := range inter {
			if math.Abs(inter[i][j]) > 1e-12 {
				t.Errorf("I(%d,%d) = %v, want 0", i, j, inter[i][j])
			}
		}
	}
}

func TestExactInteractionUnanimityPair(t *testing.T) {
	// For the unanimity game on T = {0,1} with n = 2:
	// I(0,1) = Δv(∅) = v({0,1}) − v({0}) − v({1}) + v(∅) = 1.
	inter, err := ExactInteraction(context.Background(), unanimityGame(2, []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inter[0][1]-1) > 1e-12 {
		t.Errorf("I(0,1) = %v, want 1", inter[0][1])
	}
}

func TestExactInteractionLimits(t *testing.T) {
	if out, err := ExactInteraction(context.Background(), GameFunc{N: 0}); err != nil || out != nil {
		t.Error("empty game")
	}
	if _, err := ExactInteraction(context.Background(), GameFunc{N: 40}); !errors.Is(err, ErrTooManyPlayers) {
		t.Error("player cap")
	}
	boom := errors.New("boom")
	bad := GameFunc{N: 3, Fn: func(context.Context, []bool) (float64, error) { return 0, boom }}
	if _, err := ExactInteraction(context.Background(), bad); !errors.Is(err, boom) {
		t.Error("error propagation")
	}
}

func TestExactBanzhafKnownValues(t *testing.T) {
	// For the paper game, Banzhaf(i) = (1/2^3)·#{S ⊆ N\{i} : i pivots}.
	// Player 2 (C3) pivots for every S not containing {0,1} jointly:
	// 8 − 2 = 6 → 6/8. Players 0/1 pivot for S = {1}, {1,3} (resp.
	// {0}, {0,3}) → 2/8. Player 3 never pivots → 0.
	banzhaf, err := ExactBanzhaf(context.Background(), paperConstraintGame())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.25, 0.75, 0}
	for i := range want {
		if math.Abs(banzhaf[i]-want[i]) > 1e-12 {
			t.Errorf("Banzhaf[%d] = %v, want %v", i, banzhaf[i], want[i])
		}
	}
}

func TestExactBanzhafAdditiveEqualsShapley(t *testing.T) {
	// On additive games both indices return the weights.
	w := []float64{0.5, -1, 2}
	banzhaf, err := ExactBanzhaf(context.Background(), additiveGame(w))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(banzhaf[i]-w[i]) > 1e-12 {
			t.Errorf("Banzhaf[%d] = %v, want %v", i, banzhaf[i], w[i])
		}
	}
}

func TestBanzhafDummyAxiomProperty(t *testing.T) {
	f := func(seed uint64, np uint8) bool {
		n := int(np)%5 + 1
		base := randomGame(n, seed)
		ext := GameFunc{N: n + 1, Fn: func(ctx context.Context, coalition []bool) (float64, error) {
			return base.Value(ctx, coalition[:n])
		}}
		banzhaf, err := ExactBanzhaf(context.Background(), ext)
		return err == nil && math.Abs(banzhaf[n]) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBanzhafShapleyRankAgreementOnPaperGame(t *testing.T) {
	shap, err := ExactSubsets(context.Background(), paperConstraintGame())
	if err != nil {
		t.Fatal(err)
	}
	banzhaf, err := ExactBanzhaf(context.Background(), paperConstraintGame())
	if err != nil {
		t.Fatal(err)
	}
	// Same ordering: player 2 on top, then 0/1 tied, then 3.
	for _, pair := range [][2]int{{2, 0}, {2, 1}, {0, 3}, {1, 3}} {
		if !(shap[pair[0]] > shap[pair[1]]) || !(banzhaf[pair[0]] > banzhaf[pair[1]]) {
			t.Errorf("rank disagreement on pair %v", pair)
		}
	}
}

func TestExactBanzhafLimits(t *testing.T) {
	if out, err := ExactBanzhaf(context.Background(), GameFunc{N: 0}); err != nil || out != nil {
		t.Error("empty game")
	}
	if _, err := ExactBanzhaf(context.Background(), GameFunc{N: 40}); !errors.Is(err, ErrTooManyPlayers) {
		t.Error("player cap")
	}
}

func TestPopcount(t *testing.T) {
	for _, tc := range []struct{ x, want int }{{0, 0}, {1, 1}, {3, 2}, {255, 8}, {256, 1}, {0b1010101, 4}} {
		if got := popcount(tc.x); got != tc.want {
			t.Errorf("popcount(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}
