package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
)

// Pool is a bounded worker pool for disjoint-task fan-out. The bound is
// global: every Map call borrows helper slots from one shared budget and
// the caller always participates, so arbitrarily nested Map calls (a
// Shapley sampler worker whose repair pass parallelizes its bucket scans)
// run at most Workers goroutines beyond their callers and degrade
// gracefully to caller-only execution when the budget is spent.
//
// A nil *Pool is the serial pool: Workers reports 1 and Map runs every
// task on the caller. Callers therefore never need to special-case "no
// engine".
type Pool struct {
	workers int
	// slots is the helper budget (workers-1 tokens: the caller is the
	// always-available worker).
	slots chan struct{}
}

// NewPool builds a pool with the given worker budget; 0 means GOMAXPROCS.
func NewPool(workers int) *Pool {
	workers = defaultWorkers(workers)
	p := &Pool{workers: workers}
	if workers > 1 {
		p.slots = make(chan struct{}, workers-1)
		for i := 0; i < workers-1; i++ {
			p.slots <- struct{}{}
		}
	}
	return p
}

// Workers returns the pool's worker budget (1 for the nil/serial pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// IdleHelpers returns how many helper slots are currently available —
// Workers()-1 when no Map is in flight. It exists for admission control
// and for the worker-release regression tests: an aborted request must
// return every borrowed slot (a leak here would slowly strangle the
// session's parallelism).
func (p *Pool) IdleHelpers() int {
	if p == nil || p.slots == nil {
		return 0
	}
	return len(p.slots)
}

// PanicError wraps a panic recovered from a pool helper goroutine so it
// can be re-raised on the caller's goroutine. Without this, a panic in any
// black box running on a helper would crash the whole process from a
// goroutine no request handler can recover — the fleet-killing failure
// mode the fault model forbids.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (p *PanicError) Error() string { return fmt.Sprintf("exec: worker panic: %v", p.Value) }

// Unwrap exposes an error panic value to errors.Is/As chains.
func (p *PanicError) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Map runs fn(task) for every task in [0, tasks) and returns when all have
// completed. Tasks are claimed from an atomic counter by up to Workers
// goroutines including the caller; helper acquisition never blocks, so a
// saturated pool costs nothing beyond serial execution. fn must be safe
// for concurrent invocation on distinct tasks.
//
// A panic in fn — on the caller or on a helper — is re-raised on the
// caller's goroutine as a *PanicError after every helper has finished and
// returned its slot, so the process survives, no slot leaks, and
// per-request recovery (internal/server) can quarantine the offending
// session. If several tasks panic, the first recovered one wins.
//
// Map imposes no ordering: callers needing deterministic output either
// write to task-indexed slots (compute phase) or apply results serially
// afterwards — the pattern repair.PartitionedRepairer golden-tests.
func (p *Pool) Map(tasks int, fn func(task int)) {
	if tasks <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || tasks == 1 {
		for i := 0; i < tasks; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Pointer[PanicError]
	run := func() {
		// One recover scope per worker: the panicking task poisons the
		// worker (its remaining claims go unrun by it), but peers keep
		// draining, so every slot comes home before the re-raise.
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &PanicError{Value: r})
			}
		}()
		faults.Hit(faults.SiteWorkerStart)
		for {
			i := int(next.Add(1)) - 1
			if i >= tasks {
				return
			}
			if panicked.Load() != nil {
				return
			}
			fn(i)
		}
	}
	want := p.workers - 1
	if want > tasks-1 {
		want = tasks - 1
	}
	var wg sync.WaitGroup
acquire:
	for i := 0; i < want; i++ {
		select {
		case <-p.slots:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { p.slots <- struct{}{} }()
				run()
			}()
		default:
			break acquire
		}
	}
	run()
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		panic(pe)
	}
}
