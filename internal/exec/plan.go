package exec

import (
	"sync"

	"repro/internal/table"
)

// PlanCache memoizes compiled constraint-set query plans per
// (schema identity, DC-set fingerprint), so a session that re-explains,
// forks work tables, or cycles a constraint in and out of its set pays
// plan compilation once. The cached plan is opaque to exec (an `any`
// holding a *plan.Plan): this package knows games and tables, never
// constraints, and core is the layer that compiles and type-asserts.
//
// Invalidation rides the existing ladder: Engine.InvalidateCache — the
// AddDC/RemoveDC barrier — clears this cache with the coalition and
// repair caches. Entries are additionally self-invalidating by
// construction: a changed DC set changes the fingerprint and a schema
// swap changes the pointer identity, so stale entries can only go
// unreachable, never serve a wrong plan.
//
// Safe for concurrent use; a nil *PlanCache is a valid always-miss
// cache whose Store is a no-op.
type PlanCache struct {
	mu      sync.Mutex
	entries map[PlanKey]any
	hits    uint64
	misses  uint64
}

// PlanKey identifies one compiled plan: the schema by pointer identity
// (schemas are immutable; clones share their source's pointer) and the
// constraint set by fingerprint.
type PlanKey struct {
	Schema      *table.Schema
	Fingerprint uint64
}

// maxPlanEntries bounds the cache; past it (a server churning schemas
// and DC sets forever) the cache resets rather than growing without
// bound.
const maxPlanEntries = 64

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: make(map[PlanKey]any)}
}

// Lookup returns the cached plan for key, if any.
func (pc *PlanCache) Lookup(key PlanKey) (any, bool) {
	if pc == nil {
		return nil, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	p, ok := pc.entries[key]
	if ok {
		pc.hits++
	} else {
		pc.misses++
	}
	return p, ok
}

// Store caches a compiled plan under key.
func (pc *PlanCache) Store(key PlanKey, plan any) {
	if pc == nil || plan == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.entries) >= maxPlanEntries {
		clear(pc.entries)
	}
	pc.entries[key] = plan
}

// Len reports the number of cached plans.
func (pc *PlanCache) Len() int {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}

// Clear drops every cached plan.
func (pc *PlanCache) Clear() {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	clear(pc.entries)
}

// Stats reports cumulative lookup hits and misses.
func (pc *PlanCache) Stats() (hits, misses uint64) {
	if pc == nil {
		return 0, 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses
}
