package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/shapley"
)

func TestPoolMapCoversEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		for _, tasks := range []int{0, 1, 3, 100} {
			var done atomic.Int64
			seen := make([]atomic.Bool, tasks)
			p.Map(tasks, func(i int) {
				if seen[i].Swap(true) {
					t.Errorf("task %d ran twice", i)
				}
				done.Add(1)
			})
			if int(done.Load()) != tasks {
				t.Fatalf("workers=%d tasks=%d: ran %d", workers, tasks, done.Load())
			}
		}
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", p.Workers())
	}
	order := []int{}
	p.Map(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool must run in order: %v", order)
		}
	}
}

func TestPoolBudgetIsGlobal(t *testing.T) {
	// Nested Maps share one helper budget: track the peak number of
	// concurrently live goroutines and assert it never exceeds workers
	// (the helpers) plus the concurrent callers.
	const workers = 4
	p := NewPool(workers)
	var live, peak atomic.Int64
	task := func(int) {
		n := live.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		// Nested fan-out from inside a task.
		p.Map(3, func(int) {})
		live.Add(-1)
	}
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Map(50, task)
		}()
	}
	wg.Wait()
	// 3 callers + at most workers-1 helpers can run tasks concurrently.
	if got := peak.Load(); got > 3+int64(workers-1) {
		t.Fatalf("peak concurrency %d exceeds callers+helpers %d", got, 3+workers-1)
	}
}

func TestEngineGameIDInterning(t *testing.T) {
	e := NewEngine(1)
	a := e.GameID("constraints|cell=t5[Country]")
	b := e.GameID("cells|cell=t5[Country]")
	c := e.GameID("constraints|cell=t5[Country]")
	if a == b {
		t.Error("distinct descriptors must get distinct IDs")
	}
	if a != c {
		t.Error("same descriptor must intern to the same ID")
	}
	if NewEngine(1).GameID("x") == 0 {
		t.Error("IDs must be non-zero")
	}
}

func TestCoalitionCacheHitAndGenerationInvalidation(t *testing.T) {
	cache := NewCoalitionCache()
	coalition := []bool{true, false, true, true}
	cache.Store(1, 10, coalition, 0.75)
	if v, ok := cache.Lookup(1, 10, coalition); !ok || v != 0.75 {
		t.Fatalf("lookup = %v, %v", v, ok)
	}
	// A different game misses on the same coalition.
	if _, ok := cache.Lookup(2, 10, coalition); ok {
		t.Fatal("game IDs must partition the key space")
	}
	// A newer generation invalidates.
	if _, ok := cache.Lookup(1, 11, coalition); ok {
		t.Fatal("generation bump must invalidate")
	}
	// A stale store after the bump must not resurrect the old world.
	cache.Store(1, 10, coalition, 0.25)
	if _, ok := cache.Lookup(1, 11, coalition); ok {
		t.Fatal("stale store must be dropped")
	}
	// And the old generation can never hit again either.
	if _, ok := cache.Lookup(1, 10, coalition); ok {
		t.Fatal("older generation must never hit")
	}
}

func TestCoalitionCacheClearAndInvalidate(t *testing.T) {
	e := NewEngine(1)
	coalition := []bool{true, false}
	e.Cache().Store(1, 5, coalition, 2.5)
	if _, ok := e.Cache().Lookup(1, 5, coalition); !ok {
		t.Fatal("stored entry must hit")
	}
	e.InvalidateCache()
	if _, ok := e.Cache().Lookup(1, 5, coalition); ok {
		t.Fatal("InvalidateCache must drop entries")
	}
	// Interning restarts: the same descriptor gets a fresh ID afterwards,
	// so even un-cleared entries could never be reached — but they are
	// cleared anyway.
	a := e.GameID("d")
	e.InvalidateCache()
	if b := e.GameID("d"); b == a {
		t.Fatal("interning table must reset with the cache")
	}
	var nilEngine *Engine
	nilEngine.InvalidateCache() // must not panic
}

func TestCoalitionCacheWideKeys(t *testing.T) {
	cache := NewCoalitionCache()
	wide := make([]bool, 130)
	wide[0], wide[64], wide[129] = true, true, true
	cache.Store(7, 3, wide, 1.5)
	if v, ok := cache.Lookup(7, 3, wide); !ok || v != 1.5 {
		t.Fatalf("wide lookup = %v, %v", v, ok)
	}
	other := make([]bool, 130)
	other[0], other[64] = true, true
	if _, ok := cache.Lookup(7, 3, other); ok {
		t.Fatal("distinct wide coalitions must not collide")
	}
	// Hit path must not allocate.
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := cache.Lookup(7, 3, wide); !ok {
			t.Fatal("lost entry")
		}
	})
	if allocs != 0 {
		t.Errorf("wide lookup allocates %v objects, want 0", allocs)
	}
}

func TestCachedGameSharesAcrossGames(t *testing.T) {
	e := NewEngine(1)
	var gen uint64 = 1
	var calls atomic.Int64
	base := shapley.GameFunc{N: 5, Fn: func(_ context.Context, c []bool) (float64, error) {
		calls.Add(1)
		s := 0.0
		for i, in := range c {
			if in {
				s += float64(i + 1)
			}
		}
		return s, nil
	}}
	genFn := func() uint64 { return gen }
	g1 := e.CachedGame("game-A", genFn, base)
	g2 := e.CachedGame("game-A", genFn, base)
	coalition := []bool{true, true, false, false, true}
	ctx := context.Background()
	v1, err := g1.Value(ctx, coalition)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := g2.Value(ctx, coalition)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || calls.Load() != 1 {
		t.Fatalf("second game instance must hit the shared entry: calls=%d", calls.Load())
	}
	// A generation bump forces recomputation.
	gen = 2
	if _, err := g1.Value(ctx, coalition); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("generation bump must miss: calls=%d", calls.Load())
	}
	hits, misses := e.CacheStats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 1 hit, 2 misses", hits, misses)
	}
	if e.HitRate() <= 0 {
		t.Error("hit rate must be positive")
	}
}

func TestNilEngineFallsBack(t *testing.T) {
	var e *Engine
	if e.Pool() != nil || e.Workers() != 1 {
		t.Error("nil engine must expose the serial pool")
	}
	g := e.CachedGame("x", func() uint64 { return 0 }, shapley.GameFunc{N: 2, Fn: func(context.Context, []bool) (float64, error) { return 1, nil }})
	if v, err := g.Value(context.Background(), []bool{true, false}); err != nil || v != 1 {
		t.Fatalf("fallback cached game broken: %v %v", v, err)
	}
	if hits, misses := e.CacheStats(); hits != 0 || misses != 0 {
		t.Error("nil engine stats must be zero")
	}
}

func TestCoalitionCacheConcurrent(t *testing.T) {
	cache := NewCoalitionCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			coalition := make([]bool, 12)
			for i := 0; i < 4096; i++ {
				for b := 0; b < 12; b++ {
					coalition[b] = (i>>uint(b))&1 == 1
				}
				game := uint64(w % 3)
				if v, ok := cache.Lookup(game, 1, coalition); ok {
					if v != float64(i%7) && v != float64((i+int(game))%7) {
						// Values are per-(game, coalition); just exercise
						// the path — correctness is checked below.
						_ = v
					}
					continue
				}
				cache.Store(game, 1, coalition, float64(i))
			}
		}(w)
	}
	wg.Wait()
	hits, misses := cache.Stats()
	if hits+misses != 8*4096 {
		t.Fatalf("lookups = %d, want %d", hits+misses, 8*4096)
	}
}
