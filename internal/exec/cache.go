package exec

import (
	"context"
	"math"
	"slices"
	"sync"

	"repro/internal/faults"
	"repro/internal/shapley"
)

// floatBits exposes a value's bit pattern for fingerprinting ("bit-
// identical" is meant literally: -0.0 and 0.0, or two NaN payloads, are
// distinct cache states).
func floatBits(v float64) uint64 { return math.Float64bits(v) }

// cacheShards is the lock-striping factor of the shared cache; must be a
// power of two. Matches the per-game cache's striping so exact-enumeration
// fan-out never serializes on one mutex.
const cacheShards = 64

// CoalitionCache memoizes deterministic coalition values across *all* of a
// session's games, keyed by (gameID, packed coalition) and stamped with
// the table generation the value was computed at. Where the per-game
// shapley.Cached is built and discarded with its game, this cache survives
// the game: re-explaining a cell, switching between the constraint and the
// interaction screen, or re-running an exact group report after an
// unrelated edit was rolled back all hit values an earlier game already
// paid a black-box run for.
//
// Invalidation is by generation, lazily per shard: the first lookup
// carrying a new generation clears the shard, so Session.SetCell costs
// nothing up front and no stale value can ever be returned (the hammer
// test in core proves this under -race). Safe for concurrent use.
type CoalitionCache struct {
	shards [cacheShards]ccShard
}

// ccShard is one lock stripe; the padding keeps adjacent shards off the
// same cache line.
type ccShard struct {
	mu sync.Mutex
	// gen is the generation the shard's entries belong to; a lookup with a
	// different generation clears the shard first.
	gen    uint64
	narrow map[narrowKey]float64
	wide   map[uint64][]wideGameEntry
	hits   uint64
	misses uint64
	_      [24]byte
}

// narrowKey identifies a ≤64-player coalition of one game.
type narrowKey struct {
	game uint64
	bits uint64
}

// wideGameEntry is one >64-player entry: the owning game, the packed
// membership words, and the memoized value.
type wideGameEntry struct {
	game  uint64
	words []uint64
	v     float64
}

// NewCoalitionCache returns an empty shared cache.
func NewCoalitionCache() *CoalitionCache {
	c := &CoalitionCache{}
	for i := range c.shards {
		c.shards[i].narrow = make(map[narrowKey]float64)
		c.shards[i].wide = make(map[uint64][]wideGameEntry)
	}
	return c
}

// mix64 is the SplitMix64 finalizer (same scrambler as the per-game
// cache), so shard selection sees every key bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// syncGen prepares the shard for an access at generation gen (callers hold
// mu). Entries from an older generation are cleared — generations are
// monotonic, so they can never be asked for again. An access *older* than
// the shard (a value computed before a concurrent edit landed) reports
// false: the caller treats it as a miss or drops the store instead of
// resurrecting history.
func (s *ccShard) syncGen(gen uint64) bool {
	if s.gen == gen {
		return true
	}
	if gen < s.gen {
		return false
	}
	clear(s.narrow)
	clear(s.wide)
	s.gen = gen
	return true
}

// packNarrow folds a ≤64-player membership into one word.
func packNarrow(coalition []bool) uint64 {
	var bits uint64
	for i, in := range coalition {
		if in {
			bits |= 1 << uint(i)
		}
	}
	return bits
}

// wideStackWords sizes the stack buffer the wide-coalition paths pack
// into: Binding packs a coalition once per operation and probes the
// staging area and the shared cache with the same words, instead of each
// probe packing into its own lock-guarded scratch. Coalitions up to
// 64*wideStackWords players stay allocation-free; larger ones fall back
// to one append-grown heap buffer per operation.
const wideStackWords = 8

// Lookup returns the memoized value of (game, coalition) at generation
// gen, if present.
//
//lint:hotpath
func (c *CoalitionCache) Lookup(game, gen uint64, coalition []bool) (float64, bool) {
	if len(coalition) <= 64 {
		return c.lookupNarrow(game, gen, packNarrow(coalition))
	}
	var buf [wideStackWords]uint64
	words := shapley.AppendPacked(buf[:0], coalition)
	return c.lookupWide(game, gen, shapley.HashPacked(words)^mix64(game), words)
}

// lookupNarrow is Lookup for a pre-packed ≤64-player coalition.
func (c *CoalitionCache) lookupNarrow(game, gen, bits uint64) (float64, bool) {
	key := narrowKey{game: game, bits: bits}
	s := &c.shards[mix64(key.bits^mix64(key.game))&(cacheShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.syncGen(gen) {
		s.misses++
		return 0, false
	}
	v, ok := s.narrow[key]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return v, ok
}

// lookupWide is Lookup for a pre-packed >64-player coalition; h must be
// HashPacked(words)^mix64(game).
func (c *CoalitionCache) lookupWide(game, gen, h uint64, words []uint64) (float64, bool) {
	s := &c.shards[h&(cacheShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.syncGen(gen) {
		s.misses++
		return 0, false
	}
	for _, e := range s.wide[h] {
		if e.game == game && slices.Equal(e.words, words) {
			s.hits++
			return e.v, true
		}
	}
	s.misses++
	return 0, false
}

// Store memoizes the value of (game, coalition) computed at generation
// gen. A store carrying a generation older than the shard's is dropped —
// the table moved on while the value was being computed.
//
//lint:hotpath
func (c *CoalitionCache) Store(game, gen uint64, coalition []bool, v float64) {
	if len(coalition) <= 64 {
		c.storeNarrow(game, gen, packNarrow(coalition), v)
		return
	}
	c.storeWide(game, gen, shapley.AppendPacked(nil, coalition), v)
}

// storeNarrow stores a pre-packed ≤64-player coalition value (the direct
// Store path and Txn.Commit both land here).
func (c *CoalitionCache) storeNarrow(game, gen, bits uint64, v float64) {
	key := narrowKey{game: game, bits: bits}
	s := &c.shards[mix64(key.bits^mix64(key.game))&(cacheShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.syncGen(gen) {
		s.narrow[key] = v
	}
}

// storeWide stores a pre-packed >64-player coalition value.
func (c *CoalitionCache) storeWide(game, gen uint64, words []uint64, v float64) {
	c.storeWideH(game, gen, shapley.HashPacked(words)^mix64(game), words, v)
}

// storeWideH is storeWide with the chain key precomputed; h as in
// lookupWide.
func (c *CoalitionCache) storeWideH(game, gen, h uint64, words []uint64, v float64) {
	s := &c.shards[h&(cacheShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.syncGen(gen) {
		return
	}
	for _, e := range s.wide[h] {
		if e.game == game && slices.Equal(e.words, words) {
			return
		}
	}
	//lint:allow allocfree a first-time insert must own its packed key; hits (the steady state) return above without cloning
	s.wide[h] = append(s.wide[h], wideGameEntry{game: game, words: slices.Clone(words), v: v})
}

// Len returns the number of memoized entries across shards (test and
// diagnostics introspection; the abort-then-rerun suite pins Len to zero
// after an aborted explain).
func (c *CoalitionCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.narrow)
		//lint:allow detmap commutative integer sum; order-insensitive
		for _, es := range s.wide {
			n += len(es)
		}
		s.mu.Unlock()
	}
	return n
}

// Fingerprint folds every (game, generation, coalition, value) entry into
// one order-independent 64-bit digest: two caches fingerprint equal iff
// they memoize the same set of values. The chaos suite uses it to assert
// an aborted explain left the cache bit-identical to one that never ran.
func (c *CoalitionCache) Fingerprint() uint64 {
	var fp uint64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		//lint:allow detmap XOR fold is an order-independent digest by design
		for key, v := range s.narrow {
			fp ^= mix64(mix64(key.game) ^ mix64(key.bits) ^ mix64(s.gen) ^ mix64(uint64(floatBits(v))))
		}
		//lint:allow detmap XOR fold is an order-independent digest by design
		for h, es := range s.wide {
			for _, e := range es {
				w := mix64(e.game) ^ mix64(h) ^ mix64(s.gen) ^ mix64(uint64(floatBits(e.v)))
				for _, word := range e.words {
					w = mix64(w ^ word)
				}
				fp ^= mix64(w)
			}
		}
		s.mu.Unlock()
	}
	return fp
}

// Clear drops every entry (hit/miss statistics survive). Used when game
// identity itself moves — a session's constraint-set edit re-keys every
// game descriptor, turning all stored values into unreachable dead weight
// that a generation bump would never collect (generations track table
// edits only).
func (c *CoalitionCache) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		clear(s.narrow)
		clear(s.wide)
		s.mu.Unlock()
	}
}

// Stats returns cumulative hits and misses summed over shards.
func (c *CoalitionCache) Stats() (hits, misses uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// Binding is one game's handle on the shared coalition cache: the interned
// game ID plus the generation source. It is how *deterministic* evaluation
// paths outside the exact enumerators — the null-policy coalition
// evaluations inside the sampling loops (SampleAll, SamplePlayer, TopK) —
// participate in the shared cache without wrapping the game: the game keeps
// its walk/scratch fast paths and consults the binding per evaluation.
//
// The generation stamp read by Lookup must be handed back to the matching
// Store, so a value computed while a concurrent session edit lands is
// dropped rather than stored as current (the same ordering CachedGame
// uses). A nil *Binding is a valid "no shared cache" value: Lookup always
// misses and Store is a no-op.
type Binding struct {
	cache *CoalitionCache
	id    uint64
	gen   func() uint64
	// txn, when set, stages this binding's stores in the owning explain's
	// cache transaction instead of publishing them directly, and serves
	// the run's own staged values on lookup — the no-partial-work-poisoning
	// discipline (see Txn).
	txn *Txn
}

// Bind interns desc (see GameID for the descriptor contract) and returns
// the game's cache binding; nil on a nil engine.
func (e *Engine) Bind(desc string, gen func() uint64) *Binding {
	if e == nil {
		return nil
	}
	return &Binding{cache: e.cache, id: e.GameID(desc), gen: gen}
}

// Lookup returns the memoized value of the coalition at the current
// generation; gen must be passed to the Store that memoizes a miss.
//
//lint:hotpath
func (b *Binding) Lookup(coalition []bool) (v float64, gen uint64, ok bool) {
	if b == nil {
		return 0, 0, false
	}
	gen = b.gen()
	v, ok = b.lookupAt(gen, coalition)
	return v, gen, ok
}

// lookupAt packs and hashes the coalition once and probes the staging area
// and the shared cache with the same key.
func (b *Binding) lookupAt(gen uint64, coalition []bool) (float64, bool) {
	if len(coalition) <= 64 {
		bits := packNarrow(coalition)
		if v, ok := b.txn.stagedNarrow(b.id, gen, bits); ok {
			return v, true
		}
		return b.cache.lookupNarrow(b.id, gen, bits)
	}
	var buf [wideStackWords]uint64
	words := shapley.AppendPacked(buf[:0], coalition)
	h := shapley.HashPacked(words) ^ mix64(b.id)
	if v, ok := b.txn.stagedWide(b.id, gen, h, words); ok {
		return v, ok
	}
	return b.cache.lookupWide(b.id, gen, h, words)
}

// LookupAt is Lookup pinned to an explicit generation stamp — the walks'
// variant. A coalition walk evaluates against a scratch snapshot taken at
// a fixed generation, so both its lookups and its stores must carry that
// stamp: looking up at the *live* generation could hit a value another
// explain computed after a concurrent session edit, mixing two table
// states into one walk's estimates. A stale stamp (the table moved on)
// simply misses.
//
//lint:hotpath
func (b *Binding) LookupAt(gen uint64, coalition []bool) (float64, bool) {
	if b == nil {
		return 0, false
	}
	return b.lookupAt(gen, coalition)
}

// Store memoizes a value computed at the generation a prior Lookup
// reported. No-op on a nil binding. SiteCacheStore is the fault-injection
// checkpoint here: a scheduled cancellation lands exactly between
// computing a value and publishing it, the moment the
// no-partial-work-poisoning invariant guards.
//
//lint:hotpath
func (b *Binding) Store(gen uint64, coalition []bool, v float64) {
	if b == nil {
		return
	}
	faults.Hit(faults.SiteCacheStore)
	if len(coalition) <= 64 {
		bits := packNarrow(coalition)
		if b.txn != nil {
			b.txn.stageNarrow(b.id, gen, bits, v)
			return
		}
		b.cache.storeNarrow(b.id, gen, bits, v)
		return
	}
	var buf [wideStackWords]uint64
	words := shapley.AppendPacked(buf[:0], coalition)
	h := shapley.HashPacked(words) ^ mix64(b.id)
	if b.txn != nil {
		b.txn.stageWide(b.id, gen, h, words, v)
		return
	}
	b.cache.storeWideH(b.id, gen, h, words, v)
}

// CachedGame is a shapley.Game view over one game's slice of the shared
// cache: lookups and stores are stamped with the generation gen() reports,
// so values computed before a session edit can never satisfy a lookup
// after it.
type CachedGame struct {
	b *Binding
	g shapley.Game
}

// NumPlayers implements shapley.Game.
func (cg *CachedGame) NumPlayers() int { return cg.g.NumPlayers() }

// Value implements shapley.Game, consulting the shared cache first.
//
//lint:hotpath
func (cg *CachedGame) Value(ctx context.Context, coalition []bool) (float64, error) {
	v, gen, ok := cg.b.Lookup(coalition)
	if ok {
		return v, nil
	}
	v, err := cg.g.Value(ctx, coalition)
	if err != nil {
		return 0, err
	}
	cg.b.Store(gen, coalition, v)
	return v, nil
}
