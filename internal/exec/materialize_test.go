package exec

import (
	"testing"

	"repro/internal/table"
)

func diffFixture() []table.CellDiff {
	return []table.CellDiff{
		{Ref: table.CellRef{Row: 1, Col: 2}, Dirty: table.String("a"), Clean: table.String("b")},
		{Ref: table.CellRef{Row: 3, Col: 0}, Dirty: table.Int(1), Clean: table.Int(2)},
	}
}

func TestRepairCacheRoundTrip(t *testing.T) {
	c := NewRepairCache()
	if _, ok := c.Lookup("d", 7); ok {
		t.Fatal("empty cache must miss")
	}
	in := diffFixture()
	c.Store("d", 7, in)
	got, ok := c.Lookup("d", 7)
	if !ok {
		t.Fatal("stored entry must hit")
	}
	if len(got) != len(in) {
		t.Fatalf("got %d diffs, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("diff %d: got %+v want %+v", i, got[i], in[i])
		}
	}
	// The stored diff is a copy: mutating the caller's slice must not leak.
	in[0].Clean = table.String("corrupted")
	got, _ = c.Lookup("d", 7)
	if got[0].Clean.String() == "corrupted" {
		t.Fatal("cache must own a copy of the stored diff")
	}
}

func TestRepairCacheGenerationMismatch(t *testing.T) {
	c := NewRepairCache()
	c.Store("d", 7, diffFixture())
	if _, ok := c.Lookup("d", 8); ok {
		t.Fatal("newer generation must miss")
	}
	if _, ok := c.Lookup("d", 6); ok {
		t.Fatal("older generation must miss")
	}
	// A store at the new generation overwrites the descriptor's entry.
	c.Store("d", 8, nil)
	if got, ok := c.Lookup("d", 8); !ok || len(got) != 0 {
		t.Fatalf("overwritten entry: ok=%v diffs=%v", ok, got)
	}
	if _, ok := c.Lookup("d", 7); ok {
		t.Fatal("old generation entry must be gone after overwrite")
	}
}

func TestRepairCacheClearAndStats(t *testing.T) {
	c := NewRepairCache()
	c.Store("d", 1, diffFixture())
	if _, ok := c.Lookup("d", 1); !ok {
		t.Fatal("want hit")
	}
	c.Clear()
	if _, ok := c.Lookup("d", 1); ok {
		t.Fatal("cleared cache must miss")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

func TestRepairCacheBounded(t *testing.T) {
	c := NewRepairCache()
	for i := 0; i < maxRepairEntries+5; i++ {
		c.Store(string(rune('a'))+string(rune(i)), 1, nil)
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	if n > maxRepairEntries {
		t.Fatalf("cache grew to %d entries, cap is %d", n, maxRepairEntries)
	}
}

func TestRepairCacheNilSafe(t *testing.T) {
	var c *RepairCache
	if _, ok := c.Lookup("d", 1); ok {
		t.Fatal("nil cache must miss")
	}
	c.Store("d", 1, diffFixture()) // must not panic
	c.Clear()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil cache stats = (%d, %d)", h, m)
	}
}

func TestEngineRepairTargets(t *testing.T) {
	var nilEngine *Engine
	if nilEngine.RepairTargets() != nil {
		t.Fatal("nil engine must report a nil repair cache")
	}
	e := NewEngine(1)
	rc := e.RepairTargets()
	if rc == nil {
		t.Fatal("engine must carry a repair cache")
	}
	rc.Store("d", 3, diffFixture())
	e.InvalidateCache()
	if _, ok := rc.Lookup("d", 3); ok {
		t.Fatal("InvalidateCache must drop repair-target entries")
	}
}

func TestBindingNilSafe(t *testing.T) {
	var b *Binding
	if _, _, ok := b.Lookup([]bool{true}); ok {
		t.Fatal("nil binding must miss")
	}
	b.Store(1, []bool{true}, 1) // must not panic
	var nilEngine *Engine
	if nilEngine.Bind("d", func() uint64 { return 0 }) != nil {
		t.Fatal("nil engine must bind to nil")
	}
}

func TestBindingSharesCacheWithCachedGame(t *testing.T) {
	e := NewEngine(1)
	gen := func() uint64 { return 42 }
	b := e.Bind("game", gen)
	coalition := []bool{true, false, true}
	if _, _, ok := b.Lookup(coalition); ok {
		t.Fatal("fresh binding must miss")
	}
	_, g, _ := b.Lookup(coalition)
	b.Store(g, coalition, 0.5)
	if v, _, ok := b.Lookup(coalition); !ok || v != 0.5 {
		t.Fatalf("binding lookup after store = (%v, %v)", v, ok)
	}
	// A second binding for the same descriptor sees the same entries.
	b2 := e.Bind("game", gen)
	if v, _, ok := b2.Lookup(coalition); !ok || v != 0.5 {
		t.Fatalf("re-bound lookup = (%v, %v), want shared hit", v, ok)
	}
	// A different descriptor must not.
	b3 := e.Bind("other", gen)
	if _, _, ok := b3.Lookup(coalition); ok {
		t.Fatal("distinct descriptor must not share coalition values")
	}
	// A generation move invalidates.
	moved := e.Bind("game", func() uint64 { return 43 })
	if _, _, ok := moved.Lookup(coalition); ok {
		t.Fatal("generation bump must invalidate")
	}
}

func TestBindingStaleStoreDropped(t *testing.T) {
	e := NewEngine(1)
	cur := uint64(10)
	b := e.Bind("game", func() uint64 { return cur })
	coalition := []bool{true}
	_, gen, _ := b.Lookup(coalition)
	// A table edit lands while the value is being computed.
	cur = 11
	b.Store(gen, coalition, 0.25)
	if _, _, ok := b.Lookup(coalition); ok {
		t.Fatal("store stamped with a stale generation must be dropped")
	}
}
