package exec

import (
	"context"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/shapley"
	"repro/internal/table"
)

// TestTxnAbortLeavesCachesPristine is the package-level statement of the
// no-partial-work-poisoning invariant: every store staged in a transaction
// that aborts must leave the shared caches bit-identical to the run never
// having started.
func TestTxnAbortLeavesCachesPristine(t *testing.T) {
	e := NewEngine(1)
	// Pre-existing warm state, to prove abort does not clear it either.
	warm := []bool{true, false, true}
	e.Cache().Store(e.GameID("warm"), 1, warm, 0.5)
	baseLen, baseFp := e.Cache().Len(), e.Cache().Fingerprint()
	e.RepairTargets().Store("warm-repair", 1, []table.CellDiff{{Ref: table.CellRef{Row: 0, Col: 0}}})
	baseRepairs := e.RepairTargets().Len()

	txn := e.Begin()
	gen := func() uint64 { return 7 }
	b := txn.Bind("doomed", gen)
	b.Store(7, []bool{true, true}, 1.25)
	wide := make([]bool, 100)
	wide[0], wide[99] = true, true
	b.Store(7, wide, 2.5)
	txn.RepairStore("doomed-repair", 7, []table.CellDiff{{Ref: table.CellRef{Row: 1, Col: 1}}})

	// The run sees its own staged writes...
	if v, ok := b.LookupAt(7, []bool{true, true}); !ok || v != 1.25 {
		t.Fatalf("staged narrow lookup = %v, %v", v, ok)
	}
	if v, ok := b.LookupAt(7, wide); !ok || v != 2.5 {
		t.Fatalf("staged wide lookup = %v, %v", v, ok)
	}
	if _, ok := txn.RepairLookup("doomed-repair", 7); !ok {
		t.Fatal("staged repair diff must be visible inside the txn")
	}
	// ...but the shared caches have not.
	if got := e.Cache().Len(); got != baseLen {
		t.Fatalf("shared cache grew to %d before commit", got)
	}

	txn.Abort()
	if got := e.Cache().Len(); got != baseLen {
		t.Fatalf("post-abort cache len = %d, want %d", got, baseLen)
	}
	if got := e.Cache().Fingerprint(); got != baseFp {
		t.Fatalf("post-abort cache fingerprint changed: %x != %x", got, baseFp)
	}
	if got := e.RepairTargets().Len(); got != baseRepairs {
		t.Fatalf("post-abort repair cache len = %d, want %d", got, baseRepairs)
	}
	if v, ok := e.Cache().Lookup(e.GameID("warm"), 1, warm); !ok || v != 0.5 {
		t.Fatal("abort must not disturb pre-existing entries")
	}
}

// TestTxnCommitPublishes: committed stores land in the shared caches under
// their original generation stamps and survive for the next run.
func TestTxnCommitPublishes(t *testing.T) {
	e := NewEngine(1)
	txn := e.Begin()
	gen := func() uint64 { return 3 }
	b := txn.Bind("published", gen)
	narrow := []bool{true, false, true, false}
	b.Store(3, narrow, 4.5)
	wide := make([]bool, 70)
	wide[69] = true
	b.Store(3, wide, 5.5)
	txn.RepairStore("published-repair", 3, []table.CellDiff{{Ref: table.CellRef{Row: 2, Col: 0}}})
	txn.Commit()

	// A fresh (non-transactional) binding — the next run — must hit.
	nb := e.Bind("published", gen)
	if v, ok := nb.LookupAt(3, narrow); !ok || v != 4.5 {
		t.Fatalf("committed narrow value = %v, %v", v, ok)
	}
	if v, ok := nb.LookupAt(3, wide); !ok || v != 5.5 {
		t.Fatalf("committed wide value = %v, %v", v, ok)
	}
	if diffs, ok := e.RepairTargets().Lookup("published-repair", 3); !ok || len(diffs) != 1 {
		t.Fatalf("committed repair diff = %v, %v", diffs, ok)
	}
}

// TestTxnCommitKeepsGenerationGuards: values staged at an old generation
// are dropped by the caches' stale-store guards at commit, exactly as
// direct stores would have been.
func TestTxnCommitKeepsGenerationGuards(t *testing.T) {
	e := NewEngine(1)
	coalition := []bool{true, true, false}
	id := e.GameID("stale")
	// The world has moved to generation 9...
	e.Cache().Store(id, 9, coalition, 1.0)
	// ...while the txn staged a value computed back at generation 8.
	txn := e.Begin()
	b := txn.Bind("stale", func() uint64 { return 8 })
	b.Store(8, coalition, 99.0)
	txn.Commit()
	if _, ok := e.Cache().Lookup(id, 8, coalition); ok {
		t.Fatal("stale committed store must be dropped by the generation guard")
	}
	if v, ok := e.Cache().Lookup(id, 9, coalition); !ok || v != 1.0 {
		t.Fatal("current-generation entry must survive a stale commit")
	}
}

// TestTxnReadsFallThroughToSharedCache: a transactional binding still hits
// warm shared-cache entries from earlier committed runs.
func TestTxnReadsFallThroughToSharedCache(t *testing.T) {
	e := NewEngine(1)
	coalition := []bool{false, true}
	e.Cache().Store(e.GameID("fall"), 2, coalition, 7.5)
	txn := e.Begin()
	b := txn.Bind("fall", func() uint64 { return 2 })
	if v, ok := b.LookupAt(2, coalition); !ok || v != 7.5 {
		t.Fatalf("txn binding must read the warm shared entry: %v, %v", v, ok)
	}
	txn.Abort()
}

// TestTxnCachedGame: games wrapped through a txn stage rather than
// publish, and reads serve the run's own writes.
func TestTxnCachedGame(t *testing.T) {
	e := NewEngine(1)
	calls := 0
	base := shapley.GameFunc{N: 3, Fn: func(context.Context, []bool) (float64, error) {
		calls++
		return 1.0, nil
	}}
	gen := func() uint64 { return 1 }
	txn := e.Begin()
	g := txn.CachedGame("game", gen, base)
	ctx := context.Background()
	coalition := []bool{true, false, true}
	if _, err := g.Value(ctx, coalition); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Value(ctx, coalition); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("repeat coalition inside one txn must hit staging: %d calls", calls)
	}
	if e.Cache().Len() != 0 {
		t.Fatal("uncommitted game values must not reach the shared cache")
	}
	txn.Commit()
	if e.Cache().Len() != 1 {
		t.Fatalf("commit must publish the staged value: len=%d", e.Cache().Len())
	}
}

// TestTxnNilSafety: the nil txn (no engine) behaves as "no transaction".
func TestTxnNilSafety(t *testing.T) {
	var e *Engine
	txn := e.Begin()
	if txn != nil {
		t.Fatal("nil engine must begin a nil txn")
	}
	txn.Commit()
	txn.Abort()
	if b := txn.Bind("x", func() uint64 { return 0 }); b != nil {
		t.Fatal("nil txn must bind nil")
	}
	if _, ok := txn.RepairLookup("x", 0); ok {
		t.Fatal("nil txn repair lookup must miss")
	}
	txn.RepairStore("x", 0, nil) // must not panic
	g := txn.CachedGame("x", func() uint64 { return 0 }, shapley.GameFunc{N: 1, Fn: func(context.Context, []bool) (float64, error) { return 0, nil }})
	if g == nil {
		t.Fatal("nil txn CachedGame must still wrap")
	}
}

// TestTxnConcurrentStaging: one explain's fan-out workers all stage into
// the same txn concurrently (run with -race in CI).
func TestTxnConcurrentStaging(t *testing.T) {
	e := NewEngine(4)
	txn := e.Begin()
	b := txn.Bind("hammer", func() uint64 { return 1 })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := []bool{w&1 == 0, i&1 == 0, true}
				b.Store(1, c, float64(i))
				b.LookupAt(1, c)
			}
		}(w)
	}
	wg.Wait()
	txn.Commit()
	if got := e.Cache().Len(); got != 4 {
		t.Fatalf("distinct staged coalitions = %d, want 4", got)
	}
}

// TestBindingStoreHitsFaultSite: SiteCacheStore fires on every staged
// store, so a scheduled cancellation lands between computing a value and
// publishing it.
func TestBindingStoreHitsFaultSite(t *testing.T) {
	canceled := false
	inj := faults.NewInjector(faults.Rule{Site: faults.SiteCacheStore, Ordinal: 2, Kind: faults.KindCancel}).
		OnCancel(func() { canceled = true })
	defer faults.Activate(inj)()
	e := NewEngine(1)
	txn := e.Begin()
	b := txn.Bind("site", func() uint64 { return 1 })
	b.Store(1, []bool{true}, 1)
	if canceled {
		t.Fatal("ordinal 1 must not fire a rule scheduled at ordinal 2")
	}
	b.Store(1, []bool{false}, 2)
	if !canceled {
		t.Fatal("second store must trip the scheduled cancellation")
	}
	txn.Abort()
}
