package exec

import (
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/shapley"
	"repro/internal/table"
)

// Txn is one explain's transactional view of the session's shared caches:
// every coalition value and repair diff the run computes is staged
// privately and only published to the shared CoalitionCache / RepairCache
// by Commit. An aborted run (cancellation, deadline, injected fault,
// panic) calls Abort, which drops the staging wholesale — so the shared
// caches are left bit-identical to the run never having started, the
// no-partial-work-poisoning invariant of the fault model (doc.go,
// "Fault model and degradation ladder").
//
// Reads still see the run's own writes: Binding lookups consult the
// staging area first, then the shared cache, so repeat coalitions within
// one explain are served exactly as they were when stores were direct.
// Values are deterministic per (game, coalition, generation), which is
// what makes deferred publication invisible to results: a committed and
// an uncommitted run compute bit-identical estimates, the only difference
// is whether the *next* run starts warm.
//
// A nil *Txn is a valid "no transaction" value: Bind and the repair
// helpers fall through to direct cache access. A Txn is safe for the
// concurrent goroutines one explain fans out (sampler workers all staging
// into it), but must not be shared by concurrent explains — each run
// begins its own.
type Txn struct {
	e *Engine

	// staged counts every store into the transaction. Lookups load it
	// before taking the mutex: a shared-cache-warm explain never stages
	// anything, and its (hot, per-sample) staged-first lookups must cost
	// one atomic load, not a lock acquisition plus an empty map probe.
	// A lookup racing a concurrent store of a *different* key may read 0
	// and skip the maps — harmless, the shared cache answers exactly as it
	// would have inside the transaction; same-key compute-then-lookup
	// happens on one goroutine, which always sees its own increment.
	staged atomic.Uint64

	mu   sync.Mutex
	coal map[txnCoalKey]float64
	// wide holds >64-player staged stores, hash-chained exactly like the
	// shared cache's wide shards (hash → entries compared by game, gen and
	// packed words), so staged probes and Commit's republication cost what
	// the shared cache's own probes and stores do.
	wide    map[uint64][]txnWideEntry
	repairs map[string]txnRepairEntry
}

// txnCoalKey identifies one staged ≤64-player coalition value.
type txnCoalKey struct {
	game uint64
	gen  uint64
	bits uint64
}

// txnWideEntry is one staged >64-player coalition value.
type txnWideEntry struct {
	game  uint64
	gen   uint64
	words []uint64
	v     float64
}

// txnRepairEntry is one staged repair diff.
type txnRepairEntry struct {
	gen   uint64
	diffs []table.CellDiff
}

// Begin opens a cache transaction on the engine; nil on a nil engine
// (callers then run with direct, unstaged access — there are no shared
// caches to poison).
func (e *Engine) Begin() *Txn {
	if e == nil {
		return nil
	}
	return &Txn{e: e}
}

// Bind is Engine.Bind routed through the transaction: the returned
// binding's stores stage into the txn and its lookups see staged values
// first. On a nil txn it is exactly Engine.Bind on a nil engine (no cache).
func (t *Txn) Bind(desc string, gen func() uint64) *Binding {
	if t == nil {
		return nil
	}
	b := t.e.Bind(desc, gen)
	b.txn = t
	return b
}

// CachedGame is Engine.CachedGame with the binding routed through the
// transaction.
func (t *Txn) CachedGame(desc string, gen func() uint64, g shapley.Game) shapley.Game {
	if t == nil {
		return shapley.NewCached(g)
	}
	return &CachedGame{b: t.Bind(desc, gen), g: g}
}

// stageNarrow records one pre-packed ≤64-player coalition value in the
// staging area. The packed-key API (here and the three siblings below)
// exists so Binding can pack and hash one coalition exactly once per
// operation and probe staging and the shared cache with the same key —
// wide games evaluate tens of thousands of coalitions per explain, and a
// second packing pass per probe was a measured regression (soccer48 rows).
func (t *Txn) stageNarrow(game, gen, bits uint64, v float64) {
	key := txnCoalKey{game: game, gen: gen, bits: bits}
	t.staged.Add(1)
	t.mu.Lock()
	if t.coal == nil {
		t.coal = make(map[txnCoalKey]float64)
	}
	t.coal[key] = v
	t.mu.Unlock()
}

// stageWide records one pre-packed >64-player coalition value. h must be
// HashPacked(words)^mix64(game) — the same chain key the shared cache
// derives, so Commit republishes into the identical shard buckets. words
// is cloned on insert; callers may reuse the buffer.
func (t *Txn) stageWide(game, gen, h uint64, words []uint64, v float64) {
	t.staged.Add(1)
	t.mu.Lock()
	if t.wide == nil {
		t.wide = make(map[uint64][]txnWideEntry)
	}
	for i, e := range t.wide[h] {
		if e.game == game && e.gen == gen && slices.Equal(e.words, words) {
			t.wide[h][i].v = v
			t.mu.Unlock()
			return
		}
	}
	//lint:allow allocfree staging a new wide entry must own its packed key; restaging an existing key updates in place above
	t.wide[h] = append(t.wide[h], txnWideEntry{game: game, gen: gen, words: slices.Clone(words), v: v})
	t.mu.Unlock()
}

// stagedNarrow looks a pre-packed ≤64-player coalition value up in the
// staging area.
func (t *Txn) stagedNarrow(game, gen, bits uint64) (float64, bool) {
	if t == nil || t.staged.Load() == 0 {
		return 0, false
	}
	key := txnCoalKey{game: game, gen: gen, bits: bits}
	t.mu.Lock()
	v, ok := t.coal[key]
	t.mu.Unlock()
	return v, ok
}

// stagedWide looks a pre-packed >64-player coalition value up in the
// staging area; h as in stageWide.
func (t *Txn) stagedWide(game, gen, h uint64, words []uint64) (float64, bool) {
	if t == nil || t.staged.Load() == 0 {
		return 0, false
	}
	t.mu.Lock()
	for _, e := range t.wide[h] {
		if e.game == game && e.gen == gen && slices.Equal(e.words, words) {
			t.mu.Unlock()
			return e.v, true
		}
	}
	t.mu.Unlock()
	return 0, false
}

// RepairLookup is RepairCache.Lookup with the transaction's staged diffs
// consulted first. Nil-safe on both the txn and the engine's cache.
func (t *Txn) RepairLookup(desc string, gen uint64) ([]table.CellDiff, bool) {
	if t == nil {
		return nil, false
	}
	if t.staged.Load() != 0 {
		t.mu.Lock()
		e, ok := t.repairs[desc]
		t.mu.Unlock()
		if ok && e.gen == gen {
			return e.diffs, true
		}
	}
	return t.e.RepairTargets().Lookup(desc, gen)
}

// RepairStore stages one repair diff for publication at Commit.
func (t *Txn) RepairStore(desc string, gen uint64, diffs []table.CellDiff) {
	if t == nil {
		return
	}
	faults.Hit(faults.SiteCacheStore)
	t.staged.Add(1)
	t.mu.Lock()
	if t.repairs == nil {
		t.repairs = make(map[string]txnRepairEntry)
	}
	t.repairs[desc] = txnRepairEntry{gen: gen, diffs: append([]table.CellDiff(nil), diffs...)}
	t.mu.Unlock()
}

// Commit publishes every staged value to the shared caches. Stores carry
// their original generation stamps, so values computed before a concurrent
// table edit are dropped by the caches' generation guards exactly as
// direct stores would have been. Commit leaves the txn empty; committing
// a nil txn is a no-op.
func (t *Txn) Commit() {
	if t == nil {
		return
	}
	t.mu.Lock()
	coal, wide, repairs := t.coal, t.wide, t.repairs
	t.coal, t.wide, t.repairs = nil, nil, nil
	t.mu.Unlock()
	//lint:allow detmap republication into a keyed cache: keys are unique, last-write-wins per key, order cannot affect contents
	for key, v := range coal {
		t.e.cache.storeNarrow(key.game, key.gen, key.bits, v)
	}
	//lint:allow detmap republication into a keyed cache: keys are unique, last-write-wins per key, order cannot affect contents
	for h, es := range wide {
		for _, e := range es {
			t.e.cache.storeWideH(e.game, e.gen, h, e.words, e.v)
		}
	}
	//lint:allow detmap republication into a keyed store: descriptors are unique, order cannot affect contents
	for desc, e := range repairs {
		t.e.repairs.Store(desc, e.gen, e.diffs)
	}
}

// Abort drops every staged value. The shared caches never saw them, so
// post-abort they are bit-identical to the run never having started.
// Nil-safe.
func (t *Txn) Abort() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.coal, t.wide, t.repairs = nil, nil, nil
	t.mu.Unlock()
}
