// Package exec is the session-scoped execution layer of the T-REx engine:
// one Engine per iterative session owns the compute and cache every hot
// path of that session draws from.
//
//   - Pool: a bounded worker pool. Repair black boxes use it to fan
//     disjoint-bucket passes (full violation derivations, FD-chase group
//     fixes) across cores via repair.PartitionedRepairer; the budget is
//     global to the session, so nested parallelism — sampler workers each
//     running a parallel repair — cannot oversubscribe the machine.
//   - CoalitionCache: one generation-keyed coalition-value cache shared by
//     all of a session's games. Keys are (gameID, packed coalition) with
//     packed []uint64 words above 64 players; a bump of the session
//     table's mutation counter (table.Generation, driven by
//     core.Session.SetCell) invalidates every entry lazily instead of the
//     per-game caches being discarded wholesale between explains.
//   - Engine: glues the two together and interns stable game IDs from game
//     descriptors, so re-explaining the same cell after an unrelated
//     screen reuses every coalition value already paid for.
//   - RepairCache: the session's repair-target materialization — the
//     clean-table diff of the full black-box repair per (repair
//     descriptor, table generation), so repeat Target()/Repair() calls
//     replay a diff instead of re-running the black box.
//   - Binding: a game's handle on the shared coalition cache, which is how
//     the *sampled* deterministic paths (null-policy walks inside
//     SampleAll/SamplePlayer/TopK) participate in the cache without
//     wrapping the game or touching its RNG stream.
//
// The package sits below repair and core (it knows games and tables, never
// constraints or algorithms), which is what lets every layer share it
// without import cycles.
package exec

import (
	"runtime"
	"sync"

	"repro/internal/shapley"
)

// Engine is one session's execution context. Safe for concurrent use; the
// zero value is not usable — construct with NewEngine. A nil *Engine is a
// valid "no engine" value: Pool returns nil (serial) and CachedGame falls
// back to a private per-game cache.
type Engine struct {
	pool    *Pool
	cache   *CoalitionCache
	repairs *RepairCache
	plans   *PlanCache

	mu     sync.Mutex
	ids    map[string]uint64
	nextID uint64
}

// NewEngine builds an engine with a worker budget; 0 means GOMAXPROCS.
func NewEngine(workers int) *Engine {
	return &Engine{
		pool:    NewPool(workers),
		cache:   NewCoalitionCache(),
		repairs: NewRepairCache(),
		plans:   NewPlanCache(),
		ids:     make(map[string]uint64),
	}
}

// Pool returns the engine's worker pool; nil (the serial pool) on a nil
// engine.
func (e *Engine) Pool() *Pool {
	if e == nil {
		return nil
	}
	return e.pool
}

// Workers returns the pool's worker budget; 1 on a nil engine.
func (e *Engine) Workers() int { return e.Pool().Workers() }

// Cache returns the engine's shared coalition cache; nil on a nil engine.
func (e *Engine) Cache() *CoalitionCache {
	if e == nil {
		return nil
	}
	return e.cache
}

// RepairTargets returns the engine's repair-target cache; nil on a nil
// engine (a nil *RepairCache is a valid always-miss cache).
func (e *Engine) RepairTargets() *RepairCache {
	if e == nil {
		return nil
	}
	return e.repairs
}

// Plans returns the engine's compiled-plan cache; nil on a nil engine
// (a nil *PlanCache is a valid always-miss cache).
func (e *Engine) Plans() *PlanCache {
	if e == nil {
		return nil
	}
	return e.plans
}

// GameID interns a stable identifier for a game descriptor. Descriptors
// must identify the game's characteristic function up to the table
// generation: same descriptor ⇒ same function for any fixed generation.
// Callers achieve that by folding everything the function closes over —
// algorithm, constraint set, cell, target, policy, player roster — into
// the descriptor string (see core.Explainer).
//
// maxGameIDs bounds the interning map: a session that churns through more
// distinct games than that (constraint-set editing loops) starts over
// rather than growing forever. Fresh IDs never collide with evicted ones,
// so stale cache entries can only miss.
func (e *Engine) GameID(desc string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id, ok := e.ids[desc]; ok {
		return id
	}
	const maxGameIDs = 4096
	if len(e.ids) >= maxGameIDs {
		clear(e.ids)
		// Every stored coalition value now belongs to an ID no descriptor
		// can reach again; drop them rather than carry dead weight until
		// the next table edit.
		e.cache.Clear()
	}
	e.nextID++
	e.ids[desc] = e.nextID
	return e.nextID
}

// InvalidateCache drops every memoized coalition value, every memoized
// repair diff, every compiled constraint-set plan, and the game-ID
// interning table. core.Session calls it on
// constraint edits: AddDC and RemoveDC change every game and repair
// descriptor without touching the table generation, so the previous
// descriptors' entries would otherwise accumulate unreachably for the
// session's lifetime. No-op on a nil engine.
func (e *Engine) InvalidateCache() {
	if e == nil {
		return
	}
	e.mu.Lock()
	clear(e.ids)
	e.mu.Unlock()
	e.cache.Clear()
	e.repairs.Clear()
	e.plans.Clear()
}

// CachedGame wraps g with the engine's shared coalition cache under the
// descriptor's interned game ID; gen supplies the current table generation
// (normally table.Generation of the session's dirty table). On a nil
// engine it degrades to a private shapley.Cached, preserving the memoized
// semantics without sharing.
func (e *Engine) CachedGame(desc string, gen func() uint64, g shapley.Game) shapley.Game {
	if e == nil {
		return shapley.NewCached(g)
	}
	return &CachedGame{b: e.Bind(desc, gen), g: g}
}

// CacheStats reports the shared cache's cumulative hits and misses; zero
// on a nil engine.
func (e *Engine) CacheStats() (hits, misses uint64) {
	if e == nil {
		return 0, 0
	}
	return e.cache.Stats()
}

// HitRate returns hits/(hits+misses) of the shared cache, 0 before any
// lookup.
func (e *Engine) HitRate() float64 {
	hits, misses := e.CacheStats()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// defaultWorkers resolves a 0/negative worker request to GOMAXPROCS.
func defaultWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}
