package exec

import (
	"sync"

	"repro/internal/table"
)

// RepairCache is the repair-target materialization of a session: it
// memoizes the *diff* between a dirty table and its black-box repair, keyed
// by a repair descriptor (algorithm + constraint-set fingerprint, interned
// by core) and stamped with the table generation the repair ran at.
//
// Target() and every Explain* entry point re-run the full repair once per
// call to resolve the clean value of the cell of interest; within one
// session state the result is a pure function of (algorithm, constraint
// set, table contents), so repeat calls can replay the stored diff instead
// of re-running the black box. A diff, not the clean table, is stored: the
// dirty table is live session state, so the clean table is reconstructed
// as clone-plus-patch on demand, and target resolution for one cell needs
// no reconstruction at all (scan the diff).
//
// Invalidation mirrors the coalition cache's: any table mutation — a
// SetCell, a row insert or delete, a batch bracket — bumps the table
// generation, so the next Lookup misses and the next Store overwrites the
// descriptor's entry; AddDC/RemoveDC re-key every descriptor, and
// Engine.InvalidateCache drops the whole cache. Safe for concurrent use.
//
// Row identity: the stored diffs hold CellRefs whose Row indexes are only
// meaningful at the generation they were stamped with. A DeleteRow
// renumbers one survivor (the swap-delete rule moves the last row into
// the vacated index), so a diff replayed across a structural edit would
// silently patch the wrong tuple — the generation mismatch above is what
// makes that unrepresentable: structural edits always bump the
// generation, the stale entry can never be returned, and no remapping of
// cached CellRefs is ever attempted.
type RepairCache struct {
	mu      sync.Mutex
	entries map[string]repairEntry
	hits    uint64
	misses  uint64
}

// repairEntry is one memoized repair: the generation the diff was computed
// at and the diff itself (owned by the cache; callers get copies).
type repairEntry struct {
	gen   uint64
	diffs []table.CellDiff
}

// maxRepairEntries bounds the per-descriptor map: a session that churns
// through more distinct (algorithm, constraint-set) combinations starts
// over rather than growing forever.
const maxRepairEntries = 256

// NewRepairCache returns an empty repair-target cache.
func NewRepairCache() *RepairCache {
	return &RepairCache{entries: make(map[string]repairEntry)}
}

// Lookup returns the memoized repair diff for desc at generation gen. The
// returned slice is owned by the cache and must be treated as read-only;
// ok is false on a nil cache, an unknown descriptor, or a generation
// mismatch (the table was edited since the diff was stored).
func (c *RepairCache) Lookup(desc string, gen uint64) ([]table.CellDiff, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[desc]
	if !ok || e.gen != gen {
		c.misses++
		return nil, false
	}
	c.hits++
	return e.diffs, true
}

// Store memoizes the repair diff for desc at generation gen, overwriting
// any earlier entry for the descriptor (the edit loop only ever asks about
// the current generation, so older diffs are dead weight). The diff is
// copied; no-op on a nil cache.
func (c *RepairCache) Store(desc string, gen uint64, diffs []table.CellDiff) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[desc]; !ok && len(c.entries) >= maxRepairEntries {
		clear(c.entries)
	}
	c.entries[desc] = repairEntry{gen: gen, diffs: append([]table.CellDiff(nil), diffs...)}
}

// Len returns the number of memoized repair diffs (test and diagnostics
// introspection; zero after an aborted explain that started cold).
func (c *RepairCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops every entry (hit/miss statistics survive).
func (c *RepairCache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	clear(c.entries)
	c.mu.Unlock()
}

// Stats returns cumulative hits and misses.
func (c *RepairCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
